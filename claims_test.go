package adiv_test

import (
	"testing"

	"adiv"
)

// TestClaimAlphabetSizeInvariance verifies the paper's Section-5.3 claim
// that "the alphabet size of the training data does not affect the
// synthesis of foreign sequences, nor does it affect a sequence-based
// detector's ability to detect foreign sequences": rebuilding the whole
// evaluation under larger alphabets (and a different cycle length) leaves
// the Stide and Markov coverage shapes exactly where they were.
func TestClaimAlphabetSizeInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-corpus rebuild skipped in -short mode")
	}
	specs := []struct {
		name            string
		alphabet, cycle int
		excursionProb   float64
	}{
		{"alphabet-32", 32, 6, 0},
		{"alphabet-64", 64, 6, 0},
		// A shorter cycle raises the per-symbol excursion rate, so the
		// excursion probability is lowered to keep the rare symbols below
		// the 0.5% rarity cutoff.
		{"alphabet-12-cycle-4", 12, 4, 0.018},
	}
	for _, tc := range specs {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := adiv.NewDataSpec(tc.alphabet, tc.cycle)
			if err != nil {
				t.Fatal(err)
			}
			cfg := adiv.QuickConfig()
			cfg.Gen.TrainLen = 100_000
			cfg.Gen.BackgroundLen = 1_500
			cfg.Gen.Spec = &spec
			if tc.excursionProb != 0 {
				cfg.Gen.ExcursionProb = tc.excursionProb
			}
			corpus, err := adiv.BuildCorpus(cfg)
			if err != nil {
				t.Fatal(err)
			}

			stideMap, err := corpus.PerformanceMap(adiv.DetectorStide, adiv.StideFactory, adiv.DefaultEvalOptions())
			if err != nil {
				t.Fatal(err)
			}
			markovMap, err := corpus.PerformanceMap(adiv.DetectorMarkov, adiv.MarkovFactory, adiv.DefaultEvalOptions())
			if err != nil {
				t.Fatal(err)
			}
			for size := cfg.MinSize; size <= cfg.MaxSize; size++ {
				for dw := cfg.MinWindow; dw <= cfg.MaxWindow; dw++ {
					wantStide := adiv.OutcomeBlind
					if dw >= size {
						wantStide = adiv.OutcomeCapable
					}
					if got := stideMap.Outcome(size, dw); got != wantStide {
						t.Errorf("stide AS=%d DW=%d: %v, want %v", size, dw, got, wantStide)
					}
					wantMarkov := adiv.OutcomeWeak
					if dw >= size-1 {
						wantMarkov = adiv.OutcomeCapable
					}
					if got := markovMap.Outcome(size, dw); got != wantMarkov {
						t.Errorf("markov AS=%d DW=%d: %v, want %v", size, dw, got, wantMarkov)
					}
				}
			}
		})
	}
}
