package adiv

import "adiv/internal/online"

// Streaming deployment: push symbols one at a time, receive responses and
// alarms as windows complete. Output is element-for-element identical to
// batch scoring.
type (
	// StreamScorer scores a symbol stream incrementally.
	StreamScorer = online.Scorer
	// StreamAlarmer thresholds a stream scorer into an alarm stream.
	StreamAlarmer = online.Alarmer
	// StreamAlarm is one streaming alarm (window start position and
	// response).
	StreamAlarm = online.Alarm
)

// NewStreamScorer wraps a trained detector for incremental scoring.
func NewStreamScorer(det Detector) (*StreamScorer, error) { return online.NewScorer(det) }

// NewStreamAlarmer wraps a trained detector with a detection threshold for
// incremental alarming.
func NewStreamAlarmer(det Detector, threshold float64) (*StreamAlarmer, error) {
	return online.NewAlarmer(det, threshold)
}

// Streaming suppression pipeline (Section 7 as a component).
type (
	// VetoPipeline escalates a primary detector's streaming alarms only
	// when a veto detector corroborates them by element overlap.
	VetoPipeline = online.VetoPipeline
	// EscalatedAlarm is a corroborated streaming alarm.
	EscalatedAlarm = online.EscalatedAlarm
)

// NewVetoPipeline wraps two trained detectors with their thresholds into a
// streaming suppression pipeline.
func NewVetoPipeline(primary, veto Detector, primaryThreshold, vetoThreshold float64) (*VetoPipeline, error) {
	return online.NewVetoPipeline(primary, veto, primaryThreshold, vetoThreshold)
}
