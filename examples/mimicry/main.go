// Mimicry: the attacker's side of the window-size story. An attack payload
// is camouflaged by stitching it from sequences the monitored process
// really executes, so that every window up to a chosen width exists in the
// detector's normal database — the "manipulated to manifest as normal
// behavior" scenario of the paper's background section. The defense is the
// same dial the whole evaluation charts: widen the detector window past
// the camouflage width and the seams between borrowed contexts become
// foreign.
package main

import (
	"fmt"
	"log"

	"adiv"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	corpus, err := adiv.BuildCorpus(adiv.QuickConfig())
	if err != nil {
		return err
	}

	const camouflageWidth = 6
	var attack adiv.Stream
	visibleAt := 0
	for seed := uint64(1); seed <= 50; seed++ {
		s, err := adiv.Camouflage(corpus.TrainIndex, camouflageWidth, 60, seed)
		if err != nil {
			return err
		}
		w, err := adiv.MimicryDetectionWidth(corpus.TrainIndex, s, 2, adiv.MaxWindow)
		if err != nil {
			return err
		}
		if w > camouflageWidth {
			attack, visibleAt = s, w
			break
		}
	}
	if attack == nil {
		return fmt.Errorf("no camouflage became visible in the window range; try more seeds")
	}
	alpha := adiv.EvaluationAlphabet()
	fmt.Printf("camouflaged attack (every %d-window occurs in training):\n  %s\n",
		camouflageWidth, alpha.Format(attack))
	fmt.Printf("first foreign seam appears at window width %d\n\n", visibleAt)

	fmt.Println("stide's view of the attack as the window widens:")
	fmt.Println("DW   max response   verdict")
	for _, dw := range []int{3, camouflageWidth, visibleAt, adiv.MaxWindow} {
		det, err := adiv.NewStide(dw)
		if err != nil {
			return err
		}
		if err := det.Train(corpus.Training); err != nil {
			return err
		}
		responses, err := det.Score(attack)
		if err != nil {
			return err
		}
		maxResp := 0.0
		for _, r := range responses {
			if r > maxResp {
				maxResp = r
			}
		}
		verdict := "invisible"
		if maxResp == 1 {
			verdict = "caught"
		}
		fmt.Printf("%2d   %.2f           %s\n", dw, maxResp, verdict)
	}
	fmt.Println("\nthe camouflage holds exactly as far as the attacker's planning width;")
	fmt.Println("a defender whose window is longer sees the stitching.")
	return nil
}
