// Masquerade: the Lane & Brodley detector in its home setting — spotting an
// intruder typing at a legitimate user's shell — and the blind spot the
// paper exposes. The adjacency-weighted similarity metric flags a
// masquerader whose command mix is wholesale different, but a minimal
// foreign sequence embedded in otherwise-normal behavior slips by: the
// foreign window still resembles some normal window almost everywhere, so
// the similarity dips only slightly (the Figure-7 15 -> 10 effect) and
// never reaches the maximal response the strict threshold requires.
package main

import (
	"fmt"
	"log"

	"adiv"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	user := adiv.ShellTraceProfile()
	train, err := adiv.GenerateTrace(user, 10, 100_000)
	if err != nil {
		return err
	}
	session, err := adiv.GenerateTrace(user, 11, 3_000)
	if err != nil {
		return err
	}

	const dw = 6
	lb, err := adiv.NewLaneBrodley(dw)
	if err != nil {
		return err
	}
	if err := lb.Train(train); err != nil {
		return err
	}

	// Scenario 1: a masquerader with an alien command mix. The daemon
	// profile's symbols reinterpreted as shell commands stand in for an
	// intruder running unfamiliar tools in unfamiliar orders.
	intruder, err := adiv.GenerateTrace(adiv.DaemonTraceProfile(), 12, 60)
	if err != nil {
		return err
	}
	masq := append(append(adiv.Stream{}, session...), intruder...)
	placementMasq := adiv.Placement{Stream: masq, Start: len(session), AnomalyLen: len(intruder)}
	aMasq, err := adiv.AssessDetector(lb, placementMasq, adiv.DefaultEvalOptions())
	if err != nil {
		return err
	}
	fmt.Printf("masquerader block  (60 alien commands): outcome=%-7s maxResponse=%.3f\n",
		aMasq.Outcome, aMasq.MaxResponse)

	// Scenario 2: a minimal foreign sequence inside normal behavior.
	held, err := adiv.GenerateTrace(user, 13, 50_000)
	if err != nil {
		return err
	}
	stats, err := adiv.ScanMFS(train, held, 10)
	if err != nil {
		return err
	}
	var mfs adiv.Stream
	for _, size := range stats.Sizes() {
		if size >= 4 && size <= dw {
			mfs = stats.Examples[size]
			break
		}
	}
	if mfs == nil {
		return fmt.Errorf("no suitable MFS found in held-out session data")
	}
	placementMFS, err := adiv.InjectAt(session, mfs, len(session)/2)
	if err != nil {
		return err
	}
	aMFS, err := adiv.AssessDetector(lb, placementMFS, adiv.DefaultEvalOptions())
	if err != nil {
		return err
	}
	fmt.Printf("embedded MFS %v: outcome=%-7s maxResponse=%.3f\n",
		user.Alphabet.Format(mfs), aMFS.Outcome, aMFS.MaxResponse)

	// Stide on the same MFS, for contrast.
	stide, err := adiv.NewStide(dw)
	if err != nil {
		return err
	}
	if err := stide.Train(train); err != nil {
		return err
	}
	aStide, err := adiv.AssessDetector(stide, placementMFS, adiv.DefaultEvalOptions())
	if err != nil {
		return err
	}
	fmt.Printf("stide on the same MFS (DW=%d >= %d):       outcome=%-7s maxResponse=%.3f\n",
		dw, len(mfs), aStide.Outcome, aStide.MaxResponse)

	// At a sub-maximal threshold the L&B detector separates the two
	// scenarios; at the strict threshold of 1 it alarms on neither.
	const threshold = 0.8
	fmt.Printf("\nat detection threshold %.1f: masquerade alarms=%v, embedded MFS alarms=%v\n",
		threshold, aMasq.MaxResponse >= threshold, aMFS.MaxResponse >= threshold)
	fmt.Println("the L&B metric sees the gross masquerade but scores the embedded foreign")
	fmt.Println("sequence as close to normal — diversity in similarity metrics is diversity")
	fmt.Println("in what is detectable at all.")
	return nil
}
