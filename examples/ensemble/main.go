// Ensemble: the paper's Section-7 recipe as a working pipeline. An attack is
// known to manifest as a minimal foreign sequence of unknown length, so
// Stide alone is unreliable (its window may be too short). The Markov
// detector is deployed as the primary — it responds to the manifestation
// even one window short, and to rare sequences besides — and Stide, which
// only ever alarms on foreign sequences, vetoes the Markov detector's
// rare-sequence false alarms. The example measures false-alarm rates before
// and after gating on test data containing naturally occurring rare
// sequences.
package main

import (
	"fmt"
	"log"
	"os"

	"adiv"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	corpus, err := adiv.BuildCorpus(adiv.QuickConfig())
	if err != nil {
		return err
	}

	// Test data with natural rare content (not the clean background): this
	// is where a rare-sensitive detector pays in false alarms.
	noisy, err := corpus.NoisyStream(10_000, 1)
	if err != nil {
		return err
	}
	const size, dw = 7, 9
	placement, err := corpus.InjectInto(noisy, size, dw)
	if err != nil {
		return err
	}

	markov, err := adiv.NewMarkov(dw)
	if err != nil {
		return err
	}
	stide, err := adiv.NewStide(dw)
	if err != nil {
		return err
	}
	if err := adiv.TrainAll(corpus.Training, markov, stide); err != nil {
		return err
	}

	result, err := adiv.Suppress(markov, stide, placement,
		adiv.RareSensitiveThreshold, adiv.StrictThreshold)
	if err != nil {
		return err
	}
	if err := adiv.WriteSuppression(os.Stdout, result); err != nil {
		return err
	}

	reduction := result.Primary.FalseAlarms - result.Suppressed.FalseAlarms
	fmt.Printf("\nfalse alarms removed by the stide veto: %d of %d (hit preserved: %v)\n",
		reduction, result.Primary.FalseAlarms, result.Suppressed.Hit)

	// The veto is safe because stide's coverage is a subset of the markov
	// detector's: any alarm stide raises, the markov detector raises too.
	stideMap, err := corpus.PerformanceMap(adiv.DetectorStide, adiv.StideFactory, adiv.DefaultEvalOptions())
	if err != nil {
		return err
	}
	markovMap, err := corpus.PerformanceMap(adiv.DetectorMarkov, adiv.MarkovFactory, adiv.DefaultEvalOptions())
	if err != nil {
		return err
	}
	fmt.Printf("markov coverage contains stide coverage: %v\n", markovMap.CoversAtLeast(stideMap))
	fmt.Printf("cells only markov detects (DW = AS-1 edge): %v\n", adiv.CoverageGain(stideMap, markovMap))
	return nil
}
