// Syscalls: an intrusion-detection scenario in the style of the system-call
// work the paper builds on (Forrest et al.'s "sense of self"). A daemon's
// normal behavior is learned from a simulated system-call trace; an attack
// then manifests as a short burst of calls the daemon never makes in that
// order (a minimal foreign sequence found automatically in held-out data).
//
// The example demonstrates two of the paper's operational lessons:
//
//  1. Injection control matters (Section 5.4.2): dropping the anomaly at an
//     arbitrary position manufactures foreign *boundary* sequences, and the
//     detector "detects" the anomaly even with a window too short to see
//     it. A boundary-safe injection removes the artifact.
//  2. With boundaries controlled, detection depends on the relationship
//     between window size and anomaly length: Stide needs DW >= AS, the
//     Markov detector reaches a maximal response at DW = AS-1.
package main

import (
	"fmt"
	"log"

	"adiv"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	profile := adiv.DaemonTraceProfile()
	train, err := adiv.GenerateTrace(profile, 1, 200_000)
	if err != nil {
		return err
	}
	background, err := adiv.GenerateTrace(profile, 2, 5_000)
	if err != nil {
		return err
	}

	// Find an attack manifestation: scan held-out data for minimal foreign
	// sequences — real traces are replete with them (Section 4.1) — and
	// keep one whose natural surroundings already satisfy the
	// boundary-sequence constraint, so it can be evaluated in place.
	held, err := adiv.GenerateTrace(profile, 3, 50_000)
	if err != nil {
		return err
	}
	attack, safe, err := findAttack(train, held)
	if err != nil {
		return err
	}
	fmt.Printf("attack manifestation (length-%d MFS at its natural position): %s\n",
		len(attack), profile.Alphabet.Format(attack))

	// Lesson 1: naive injection manufactures boundary artifacts.
	naive, err := adiv.InjectAt(background, attack, len(background)/2)
	if err != nil {
		return err
	}
	shortDW := len(attack) - 2
	stideShort, err := trainedStide(train, shortDW)
	if err != nil {
		return err
	}
	aNaive, err := adiv.AssessDetector(stideShort, naive, adiv.DefaultEvalOptions())
	if err != nil {
		return err
	}
	aSafe, err := adiv.AssessDetector(stideShort, safe, adiv.DefaultEvalOptions())
	if err != nil {
		return err
	}
	fmt.Printf("\nstide(DW=%d, window SHORTER than the anomaly):\n", shortDW)
	fmt.Printf("  naive injection:         %-8s (boundary sequences register as foreign)\n", aNaive.Outcome)
	fmt.Printf("  boundary-safe injection: %-8s (the anomaly itself is invisible)\n", aSafe.Outcome)

	// Lesson 2: the window/anomaly-length dependence, boundaries controlled.
	fmt.Println("\ndetection vs window size (boundary-safe; response is the in-span maximum):")
	fmt.Println("DW   stide          markov")
	for _, dw := range []int{len(attack) - 2, len(attack) - 1, len(attack), len(attack) + 2} {
		stide, err := trainedStide(train, dw)
		if err != nil {
			return err
		}
		markov, err := adiv.NewMarkov(dw)
		if err != nil {
			return err
		}
		if err := markov.Train(train); err != nil {
			return err
		}
		sa, err := adiv.AssessDetector(stide, safe, adiv.DefaultEvalOptions())
		if err != nil {
			return err
		}
		ma, err := adiv.AssessDetector(markov, safe, adiv.DefaultEvalOptions())
		if err != nil {
			return err
		}
		fmt.Printf("%2d   %-8s %.2f  %-8s %.2f\n", dw, sa.Outcome, sa.MaxResponse, ma.Outcome, ma.MaxResponse)
	}
	fmt.Println("\nstide needs DW >= anomaly length; the markov detector reaches a maximal")
	fmt.Println("response one window earlier and responds weakly even below that.")
	return nil
}

// findAttack scans held-out data for a boundary-safe natural MFS occurrence
// of a length the example's window sweep can bracket.
func findAttack(train, held adiv.Stream) (adiv.Stream, adiv.Placement, error) {
	ix := adiv.NewSequenceIndex(train)
	for size := 5; size <= 9; size++ {
		placements, err := adiv.NaturalPlacements(ix, held, 12, size-2, size+3, 0)
		if err != nil {
			return nil, adiv.Placement{}, err
		}
		for _, p := range placements {
			if p.AnomalyLen == size {
				return p.Anomaly(), p, nil
			}
		}
	}
	return nil, adiv.Placement{}, fmt.Errorf("no boundary-safe natural MFS occurrence found; try other seeds")
}

func trainedStide(train adiv.Stream, dw int) (adiv.Detector, error) {
	d, err := adiv.NewStide(dw)
	if err != nil {
		return nil, err
	}
	if err := d.Train(train); err != nil {
		return nil, err
	}
	return d, nil
}
