// Livemonitor: the Section-7 ensemble as a streaming pipeline. Symbols from
// a monitored source arrive one at a time; the rare-sensitive primary
// (t-stide) and the foreign-only veto (Stide) run side by side, and an
// alarm is escalated only when the veto corroborates it — false alarms on
// naturally occurring rare sequences are logged and dropped in flight.
package main

import (
	"fmt"
	"log"

	"adiv"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	corpus, err := adiv.BuildCorpus(adiv.QuickConfig())
	if err != nil {
		return err
	}

	// Monitored stream: data with natural rare content plus one injected
	// attack manifestation (a size-6 minimal foreign sequence).
	noisy, err := corpus.NoisyStream(6_000, 3)
	if err != nil {
		return err
	}
	const size, dw = 6, 8
	placement, err := corpus.InjectInto(noisy, size, dw)
	if err != nil {
		return err
	}

	primary, err := adiv.NewTStide(dw, adiv.RareCutoff)
	if err != nil {
		return err
	}
	veto, err := adiv.NewStide(dw)
	if err != nil {
		return err
	}
	if err := adiv.TrainAll(corpus.Training, primary, veto); err != nil {
		return err
	}
	// The Section-7 recipe as one component: the rare-sensitive primary
	// proposes, the foreign-only veto disposes.
	pipe, err := adiv.NewVetoPipeline(primary, veto, adiv.StrictThreshold, adiv.StrictThreshold)
	if err != nil {
		return err
	}

	attackCaught := false
	escalated := 0
	for _, sym := range placement.Stream {
		alarms, err := pipe.Push(sym)
		if err != nil {
			return err
		}
		for _, a := range alarms {
			escalated++
			inSpan := a.Primary.Position >= placement.Start-dw+1 &&
				a.Primary.Position <= placement.Start+size-1
			if inSpan {
				attackCaught = true
			}
			fmt.Printf("ESCALATED alarm at window %6d (in attack span: %v)\n",
				a.Primary.Position, inSpan)
		}
	}
	fmt.Printf("\nstream of %d symbols: %d alarms escalated, %d rare-sequence alarms suppressed\n",
		len(placement.Stream), escalated, pipe.Suppressed())
	fmt.Printf("attack manifestation caught: %v\n", attackCaught)
	return nil
}
