// Quickstart: synthesize the evaluation data, train one detector, and see
// where it is — and is not — able to detect an unequivocally anomalous
// event.
package main

import (
	"fmt"
	"log"
	"os"

	"adiv"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Build a reduced evaluation corpus: a training stream (98% common
	// cycle, ~2% rare excursions), a clean background stream, and one test
	// stream per anomaly size with a verified minimal foreign sequence
	// (MFS) injected under the boundary-sequence constraint.
	corpus, err := adiv.BuildCorpus(adiv.QuickConfig())
	if err != nil {
		return err
	}
	alpha := adiv.EvaluationAlphabet()
	fmt.Println("injected anomalies (all verified foreign + minimal + rare-composed):")
	for _, size := range corpus.Sizes() {
		fmt.Printf("  size %d: %s\n", size, alpha.Format(corpus.Anomalies[size].Sequence))
	}

	// Train Stide with a window of 6 and deploy it on the size-4 and
	// size-9 test streams: the first anomaly fits inside the window and is
	// detected; the second does not and is invisible.
	det, err := adiv.NewStide(6)
	if err != nil {
		return err
	}
	if err := det.Train(corpus.Training); err != nil {
		return err
	}
	for _, size := range []int{4, 9} {
		a, err := adiv.AssessDetector(det, corpus.Placements[size], adiv.DefaultEvalOptions())
		if err != nil {
			return err
		}
		fmt.Printf("stide(DW=6) on size-%d MFS: outcome=%s maxResponse=%.2f\n",
			size, a.Outcome, a.MaxResponse)
	}

	// The same comparison over the whole grid is a performance map.
	m, err := corpus.PerformanceMap(adiv.DetectorStide, adiv.StideFactory, adiv.DefaultEvalOptions())
	if err != nil {
		return err
	}
	fmt.Println()
	return adiv.WriteMap(os.Stdout, m)
}
