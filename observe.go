package adiv

import (
	"io"

	"adiv/internal/core"
	"adiv/internal/detector"
	"adiv/internal/obs"
)

// Observability: every long batch run in this repository — corpus
// synthesis, dozens of detector trainings, the 8×14 evaluation grid, the
// streaming pipeline — can record run telemetry into a Metrics registry
// and narrate progress as NDJSON events. The registry's JSON snapshot
// (schema adiv.obs/v2, pinned by a golden test) is the substrate for
// benchmark-trajectory tracking across PRs. All instrumentation is
// disabled by passing a nil registry, at zero cost.
type (
	// Metrics is a registry of counters, gauges, fixed-bin histograms,
	// and accumulated timing spans. All methods are nil-safe: a nil
	// *Metrics disables instrumentation wherever it is accepted.
	Metrics = obs.Registry
	// MetricsSnapshot is the machine-readable state of a Metrics registry.
	MetricsSnapshot = obs.Snapshot
	// EventLog writes structured NDJSON events (one JSON object per line).
	EventLog = obs.EventLog
	// EventFields carries the payload of one event.
	EventFields = obs.Fields
	// Progress tracks a run's grid progress (rows, cells, throughput, ETA)
	// for the -status introspection server's /runz endpoint; set one as
	// EvalOptions.Progress on every map of a run. Nil-safe like Metrics.
	Progress = obs.Progress
	// RunStatus is the JSON document /runz serves (schema adiv.runz/v1).
	RunStatus = obs.RunStatus
	// Tracer records per-event execution spans (monotonic start/end,
	// trace/span/parent IDs, worker lane, key=value attributes) into a
	// bounded ring for Chrome/Perfetto export. Attach one to a Metrics
	// registry with SetTracer and upgraded call sites start emitting; a
	// nil *Tracer no-ops everything at zero cost.
	Tracer = obs.Tracer
	// TraceEvent is one recorded span or instant marker.
	TraceEvent = obs.SpanEvent
	// TraceReport is the analysis diagnose -trace prints: critical path,
	// per-worker occupancy, top self-time spans, family cost rollups.
	TraceReport = obs.TraceReport
	// QuantileSketch is a fixed-memory streaming quantile estimator
	// (DDSketch-style, ±1% relative error, ~17KB regardless of stream
	// length). Registries hand them out by name; snapshots, /metrics, and
	// /runz surface their p50/p90/p99.
	QuantileSketch = obs.Sketch
	// SketchStats is one sketch's snapshot: count, sum, extremes, and the
	// p50/p90/p99 estimates.
	SketchStats = obs.SketchStats
	// AlertJournal records streaming alarm dispositions as NDJSON (schema
	// adiv.alerts/v1): Alarmers journal raised, a VetoPipeline resolves
	// each to escalated or suppressed. Nil-safe like every obs handle.
	AlertJournal = obs.AlertJournal
	// AlertRecord is one journaled alarm disposition.
	AlertRecord = obs.AlertRecord
	// AlertReport is the offline analysis diagnose -alerts prints:
	// per-family disposition counts, score quantiles, and the replayed
	// watchdog findings.
	AlertReport = obs.AlertReport
	// AlertAnalysisOptions tunes the offline alert analysis; the zero
	// value selects the documented defaults.
	AlertAnalysisOptions = obs.AlertAnalysisOptions
	// Watchdog evaluates detector-health rules (silent / saturated /
	// storm) against a registry's counters on ticks; firing rules degrade
	// /healthz and emit watch.* events.
	Watchdog = obs.Watchdog
)

// MetricsSchemaVersion identifies the snapshot JSON schema downstream
// tooling can depend on.
const MetricsSchemaVersion = obs.SchemaVersion

// TraceSchemaVersion identifies the execution-trace export schema carried
// in the Chrome trace file's otherData block.
const TraceSchemaVersion = obs.TraceSchemaVersion

// AlertSchemaVersion identifies the alert-journal NDJSON record schema.
const AlertSchemaVersion = obs.AlertSchemaVersion

// Alert dispositions: every alarm is journaled as raised; a veto pipeline
// later resolves it to escalated (corroborated) or suppressed (expired
// without corroboration).
const (
	DispositionRaised     = obs.DispositionRaised
	DispositionEscalated  = obs.DispositionEscalated
	DispositionSuppressed = obs.DispositionSuppressed
)

// NewAlertJournal returns an alert journal writing NDJSON records to w (a
// nil writer keeps only the in-memory tail /alertz serves).
func NewAlertJournal(w io.Writer) *AlertJournal { return obs.NewAlertJournal(w) }

// ReadAlertsFile parses an NDJSON alert journal, tolerating a torn final
// line from an interrupted run.
func ReadAlertsFile(path string) ([]AlertRecord, error) { return obs.ReadAlertsFile(path) }

// AnalyzeAlerts computes per-family disposition counts, score quantiles,
// and replayed watchdog findings (storm / saturated / silent over symbol
// positions) from journaled alert records.
func AnalyzeAlerts(recs []AlertRecord, opts AlertAnalysisOptions) AlertReport {
	return obs.AnalyzeAlerts(recs, opts)
}

// NewWatchdog returns a detector-health watchdog over m's counters with no
// rules; add silent/saturated/storm rules and tick it on a wall clock.
func NewWatchdog(m *Metrics) *Watchdog { return obs.NewWatchdog(m) }

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.New() }

// NewTracer returns a tracer retaining the most recent capacity spans
// (capacity <= 0 selects the default, 65536).
func NewTracer(capacity int) *Tracer { return obs.NewTracer(capacity) }

// AnalyzeTrace computes the critical path, per-lane occupancy, top-N
// self-time spans, and per-detector-family cost rollups of a span set.
func AnalyzeTrace(spans []TraceEvent, topN int) TraceReport { return obs.AnalyzeTrace(spans, topN) }

// NewEventLog returns an event log writing NDJSON lines to w.
func NewEventLog(w io.Writer) *EventLog { return obs.NewEventLog(w) }

// ObserveDetector wraps a detector with run telemetry recorded into m:
// per-training durations (train/<name>/dwNN spans), scoring durations and
// cumulative throughput in symbols/sec, and the response distribution
// (responses/<name> histogram with exact-extreme counts). A nil registry
// returns the detector unwrapped, so the disabled path costs nothing.
func ObserveDetector(det Detector, m *Metrics) Detector { return detector.Observed(det, m) }

// BuildCorpusObserved is BuildCorpus with run telemetry — synthesis and
// injection spans, corpus.start/corpus.done events — recorded into m (nil
// disables it).
func BuildCorpusObserved(cfg Config, m *Metrics) (*Corpus, error) {
	return core.BuildCorpusObserved(cfg, m)
}
