package adiv

import (
	"io"

	"adiv/internal/core"
	"adiv/internal/detector"
	"adiv/internal/obs"
)

// Observability: every long batch run in this repository — corpus
// synthesis, dozens of detector trainings, the 8×14 evaluation grid, the
// streaming pipeline — can record run telemetry into a Metrics registry
// and narrate progress as NDJSON events. The registry's JSON snapshot
// (schema adiv.obs/v1, pinned by a golden test) is the substrate for
// benchmark-trajectory tracking across PRs. All instrumentation is
// disabled by passing a nil registry, at zero cost.
type (
	// Metrics is a registry of counters, gauges, fixed-bin histograms,
	// and accumulated timing spans. All methods are nil-safe: a nil
	// *Metrics disables instrumentation wherever it is accepted.
	Metrics = obs.Registry
	// MetricsSnapshot is the machine-readable state of a Metrics registry.
	MetricsSnapshot = obs.Snapshot
	// EventLog writes structured NDJSON events (one JSON object per line).
	EventLog = obs.EventLog
	// EventFields carries the payload of one event.
	EventFields = obs.Fields
	// Progress tracks a run's grid progress (rows, cells, throughput, ETA)
	// for the -status introspection server's /runz endpoint; set one as
	// EvalOptions.Progress on every map of a run. Nil-safe like Metrics.
	Progress = obs.Progress
	// RunStatus is the JSON document /runz serves (schema adiv.runz/v1).
	RunStatus = obs.RunStatus
)

// MetricsSchemaVersion identifies the snapshot JSON schema downstream
// tooling can depend on.
const MetricsSchemaVersion = obs.SchemaVersion

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.New() }

// NewEventLog returns an event log writing NDJSON lines to w.
func NewEventLog(w io.Writer) *EventLog { return obs.NewEventLog(w) }

// ObserveDetector wraps a detector with run telemetry recorded into m:
// per-training durations (train/<name>/dwNN spans), scoring durations and
// cumulative throughput in symbols/sec, and the response distribution
// (responses/<name> histogram with exact-extreme counts). A nil registry
// returns the detector unwrapped, so the disabled path costs nothing.
func ObserveDetector(det Detector, m *Metrics) Detector { return detector.Observed(det, m) }

// BuildCorpusObserved is BuildCorpus with run telemetry — synthesis and
// injection spans, corpus.start/corpus.done events — recorded into m (nil
// disables it).
func BuildCorpusObserved(cfg Config, m *Metrics) (*Corpus, error) {
	return core.BuildCorpusObserved(cfg, m)
}
