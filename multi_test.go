package adiv_test

import (
	"testing"

	"adiv"
)

// TestMultiEventHitRates injects a battery of anomalies of mixed sizes
// into one long clean stream and measures per-event hit rates: Stide at a
// fixed window hits exactly the events its window covers (size <= DW) and
// misses the rest, with zero false alarms on the clean background — the
// Figure-5 diagonal re-measured as hit-rate statistics over independent
// events.
func TestMultiEventHitRates(t *testing.T) {
	corpus := sharedCorpus(t)
	const dw = 6
	// Three events the window covers (sizes 3,5,6) and three it cannot
	// (sizes 7,8,9).
	sizes := []int{3, 7, 5, 8, 6, 9}
	mp, err := corpus.InjectMultiInto(adiv.Stream(corpus.Background), sizes, dw)
	if err != nil {
		t.Fatal(err)
	}
	if len(mp.Events) != len(sizes) {
		t.Fatalf("%d events placed, want %d", len(mp.Events), len(sizes))
	}

	det, err := adiv.NewStide(dw)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.Train(corpus.Training); err != nil {
		t.Fatal(err)
	}
	stats, err := adiv.AssessMultiAlarms(det, mp, adiv.StrictThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events != 6 || stats.Hits != 3 {
		t.Errorf("hits %d of %d, want exactly the 3 events with size <= DW", stats.Hits, stats.Events)
	}
	if stats.FalseAlarms != 0 {
		t.Errorf("%d false alarms on clean background", stats.FalseAlarms)
	}
	if stats.HitRate() != 0.5 {
		t.Errorf("hit rate %v, want 0.5", stats.HitRate())
	}

	// Per-event ground truth: each covered event is individually capable.
	for i, size := range sizes {
		p, err := mp.Placement(i)
		if err != nil {
			t.Fatal(err)
		}
		a, err := adiv.AssessDetector(det, p, adiv.DefaultEvalOptions())
		if err != nil {
			t.Fatal(err)
		}
		want := adiv.OutcomeBlind
		if size <= dw {
			want = adiv.OutcomeCapable
		}
		if a.Outcome != want {
			t.Errorf("event %d (size %d): outcome %v, want %v", i, size, a.Outcome, want)
		}
	}
}
