package adiv_test

import (
	"strings"
	"testing"

	"adiv"
)

// TestGoldenStideMapRendering pins the exact rendered layout of Figure 5
// on the shared corpus: any change to the map's shape or the renderer's
// format shows up as a diff against this golden block.
func TestGoldenStideMapRendering(t *testing.T) {
	m := sharedMap(t, adiv.DetectorStide, adiv.StideFactory, adiv.DefaultEvalOptions())
	var sb strings.Builder
	if err := adiv.WriteMap(&sb, m); err != nil {
		t.Fatal(err)
	}
	const golden = `Performance map: stide (window 2-15 vs anomaly size 2-9)
DW 15 | * * * * * * * *
DW 14 | * * * * * * * *
DW 13 | * * * * * * * *
DW 12 | * * * * * * * *
DW 11 | * * * * * * * *
DW 10 | * * * * * * * *
DW  9 | * * * * * * * *
DW  8 | * * * * * * * .
DW  7 | * * * * * * . .
DW  6 | * * * * * . . .
DW  5 | * * * * . . . .
DW  4 | * * * . . . . .
DW  3 | * * . . . . . .
DW  2 | * . . . . . . .
      +----------------
   AS   2 3 4 5 6 7 8 9
legend: * capable (maximal response)  w weak  . blind
`
	if got := sb.String(); got != golden {
		t.Errorf("rendered map differs from golden:\n--- got ---\n%s--- want ---\n%s", got, golden)
	}
}

// TestSynthesizeMFSFacade exercises the brute-force search on the
// evaluation corpus: the found sequences verify independently.
func TestSynthesizeMFSFacade(t *testing.T) {
	corpus := sharedCorpus(t)
	for _, size := range []int{3, 5} {
		report, err := adiv.SynthesizeMFS(corpus.TrainIndex, size, adiv.AlphabetSize, adiv.RareCutoff, 11)
		if err != nil {
			t.Fatalf("SynthesizeMFS(size=%d): %v", size, err)
		}
		if len(report.Sequence) != size || !report.Foreign || !report.Minimal {
			t.Errorf("size %d: report %+v", size, report)
		}
		check, err := adiv.VerifyMFS(corpus.TrainIndex, report.Sequence, adiv.RareCutoff)
		if err != nil {
			t.Fatal(err)
		}
		if !check.Foreign || !check.Minimal {
			t.Errorf("size %d: re-verification failed: %+v", size, check)
		}
	}
}
