// Command report regenerates the complete experimental record — every
// figure, the combination analysis, the parameter ablations, and the
// MFS-prevalence check — as one Markdown document, the machine-produced
// counterpart of EXPERIMENTS.md.
//
// Usage:
//
//	report [-quick] [-out FILE] [-metrics-out FILE] [-progress]
//	       [-status ADDR] [-trace FILE] [-alerts FILE] [-cpuprofile FILE]
//	       [-memprofile FILE] [-checkpoint DIR] [-resume] [-shard i/N]
//
// The default (full-scale) run synthesizes the paper's one-million-element
// training stream and takes a few minutes, dominated by the fourteen
// neural-network trainings; -progress narrates the grid runs and
// -metrics-out records where the time went (timings reported in
// docs/full-report.md come from this instrumentation). With -checkpoint DIR
// every grid cell of the figure maps and the ablation maps is journaled
// (ablation points under parameter-qualified keys), so an interrupted
// full-scale run restarted with -resume replays the finished cells —
// including whole finished neural-network rows, which then skip training —
// and evaluates only the remainder. -shard i/N restricts the run to one
// shard of an N-way grid partition (journaling to DIR/shard-i-of-N), so N
// worker processes or machines can split a full-scale report and a merged
// journal renders it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"adiv"
	"adiv/internal/runflags"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "use the reduced configuration")
	out := fs.String("out", "", "write the report to this file (default stdout)")
	obsFlags := runflags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	cfg := adiv.DefaultConfig()
	if *quick {
		cfg = adiv.QuickConfig()
	}
	obsRun, err := obsFlags.Start(os.Stderr)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := obsRun.Close(); err == nil {
			err = cerr
		}
	}()
	obsRun.Announce("run.start", adiv.EventFields{
		"cmd":      "report",
		"quick":    *quick,
		"trainLen": cfg.Gen.TrainLen,
		"windows":  fmt.Sprintf("%d-%d", cfg.MinWindow, cfg.MaxWindow),
		"sizes":    fmt.Sprintf("%d-%d", cfg.MinSize, cfg.MaxSize),
		"jobs":     obsRun.Scheduler().Workers(),
	})
	fmt.Fprintf(os.Stderr, "report: building corpus (training length %d)...\n", cfg.Gen.TrainLen)
	obsRun.Progress().SetPhase("corpus")
	corpus, err := adiv.BuildCorpusObserved(cfg, obsRun.Metrics)
	if err != nil {
		return err
	}
	metrics := obsRun.Metrics

	// The report always evaluates the same fixed figure + ablation set, so
	// the fingerprint needs no extra parameters beyond the corpus itself.
	ckpt, err := obsRun.OpenJournal(corpus.Fingerprint("report",
		[]string{adiv.DetectorLaneBrodley, adiv.DetectorMarkov, adiv.DetectorStide, adiv.DetectorNeuralNet, "tstide", "markov-smoothed"},
		""))
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "# Regenerated experimental record\n\n")
	fmt.Fprintf(w, "Configuration: training %d symbols, background %d, anomaly sizes %d-%d, windows %d-%d, rare cutoff %.3f%%, seed %d.\n\n",
		cfg.Gen.TrainLen, cfg.Gen.BackgroundLen, cfg.MinSize, cfg.MaxSize,
		cfg.MinWindow, cfg.MaxWindow, cfg.RareCutoff*100, cfg.Gen.Seed)

	if err := figure2(w, corpus); err != nil {
		return err
	}
	obsRun.Progress().SetPhase("figures")
	maps, err := figures3to6(w, corpus, obsRun.Scheduler(), obsRun.Progress(), ckpt, obsRun, metrics)
	if err != nil {
		return err
	}
	if err := figure7(w); err != nil {
		return err
	}
	if err := combination(w, corpus, maps); err != nil {
		return err
	}
	obsRun.Progress().SetPhase("ablations")
	if err := ablations(w, corpus, obsRun.Scheduler(), obsRun.Progress(), ckpt, obsRun, metrics); err != nil {
		return err
	}
	return prevalence(w)
}

func figure2(w io.Writer, corpus *adiv.Corpus) error {
	fmt.Fprintf(w, "## Figure 2 — incident span (DW=5, AS=8)\n\n```\n")
	if err := adiv.WriteIncidentSpan(w, adiv.EvaluationAlphabet(), corpus.Placements[8], 5); err != nil {
		return err
	}
	fmt.Fprintf(w, "```\n\n")
	return nil
}

func figures3to6(w io.Writer, corpus *adiv.Corpus, sched *adiv.GridScheduler, prog *adiv.Progress, ckpt *adiv.CheckpointJournal, obsRun *runflags.Run, metrics *adiv.Metrics) (map[string]*adiv.Map, error) {
	order := []struct {
		figure int
		name   string
	}{
		{3, adiv.DetectorLaneBrodley},
		{4, adiv.DetectorMarkov},
		{5, adiv.DetectorStide},
		{6, adiv.DetectorNeuralNet},
	}
	maps := make(map[string]*adiv.Map, len(order))
	for _, item := range order {
		factory, opts, err := adiv.DetectorFactory(item.name)
		if err != nil {
			return nil, err
		}
		opts.Scheduler = sched
		opts.Progress = prog
		opts.Checkpoint = ckpt
		opts.ShardIndex, opts.ShardCount = obsRun.Shard()
		fmt.Fprintf(os.Stderr, "report: figure %d (%s)...\n", item.figure, item.name)
		m, err := corpus.PerformanceMapObserved(item.name, factory, opts, metrics)
		if err != nil {
			return nil, err
		}
		maps[item.name] = m
		fmt.Fprintf(w, "## Figure %d — %s performance map\n\n```\n", item.figure, item.name)
		if err := adiv.WriteMap(w, m); err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "```\n\n")
	}
	return maps, nil
}

func figure7(w io.Writer) error {
	fmt.Fprintf(w, "## Figure 7 — Lane & Brodley similarity walkthrough\n\n```\n")
	a := adiv.EvaluationAlphabet()
	normal := adiv.Stream{0, 1, 2, 3, 4}
	foreign := adiv.Stream{0, 1, 2, 3, 0}
	weights, total, err := adiv.LBSimilarityWeights(normal, normal)
	if err != nil {
		return err
	}
	if err := adiv.WriteSimilarity(w, a, normal, normal, weights, total, adiv.LBMaxSimilarity(5)); err != nil {
		return err
	}
	weights, total, err = adiv.LBSimilarityWeights(normal, foreign)
	if err != nil {
		return err
	}
	if err := adiv.WriteSimilarity(w, a, normal, foreign, weights, total, adiv.LBMaxSimilarity(5)); err != nil {
		return err
	}
	fmt.Fprintf(w, "```\n\n")
	return nil
}

func combination(w io.Writer, corpus *adiv.Corpus, maps map[string]*adiv.Map) error {
	fmt.Fprintf(os.Stderr, "report: section 7 (combination)...\n")
	fmt.Fprintf(w, "## Section 7 — combining detectors\n\n")
	stideMap := maps[adiv.DetectorStide]
	markovMap := maps[adiv.DetectorMarkov]
	lbMap := maps[adiv.DetectorLaneBrodley]

	fmt.Fprintf(w, "- stide detects %d cells; markov %d; lb %d\n",
		stideMap.CountOutcome(adiv.OutcomeCapable),
		markovMap.CountOutcome(adiv.OutcomeCapable),
		lbMap.CountOutcome(adiv.OutcomeCapable))
	fmt.Fprintf(w, "- markov ⊇ stide: %v; gain cells (DW=AS-1 edge): %v\n",
		markovMap.CoversAtLeast(stideMap), adiv.CoverageGain(stideMap, markovMap))
	fmt.Fprintf(w, "- lb adds over stide: %v (the null result)\n\n", adiv.CoverageGain(stideMap, lbMap))

	fmt.Fprintf(w, "Pairwise coverage relations:\n\n```\n")
	if err := adiv.WriteCoverageRelations(w, []*adiv.Map{stideMap, markovMap, lbMap}); err != nil {
		return err
	}
	fmt.Fprintf(w, "```\n\n")

	noisy, err := corpus.NoisyStream(20_000, 1)
	if err != nil {
		return err
	}
	const size, dw = 6, 8
	placement, err := corpus.InjectInto(noisy, size, dw)
	if err != nil {
		return err
	}
	markov, err := adiv.NewMarkov(dw)
	if err != nil {
		return err
	}
	stide, err := adiv.NewStide(dw)
	if err != nil {
		return err
	}
	if err := adiv.TrainAllWithCorpus(corpus.TrainingDBs(), markov, stide); err != nil {
		return err
	}
	result, err := adiv.Suppress(markov, stide, placement, adiv.RareSensitiveThreshold, adiv.StrictThreshold)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "False-alarm suppression on rare-containing data (AS=%d, DW=%d, %d symbols):\n\n```\n",
		size, dw, len(placement.Stream))
	if err := adiv.WriteSuppression(w, result); err != nil {
		return err
	}
	fmt.Fprintf(w, "```\n\n")
	return nil
}

func ablations(w io.Writer, corpus *adiv.Corpus, sched *adiv.GridScheduler, prog *adiv.Progress, ckpt *adiv.CheckpointJournal, obsRun *runflags.Run, metrics *adiv.Metrics) error {
	fmt.Fprintf(os.Stderr, "report: ablations...\n")
	opts := adiv.DefaultEvalOptions()
	opts.Scheduler = sched
	opts.Progress = prog
	opts.Checkpoint = ckpt
	opts.ShardIndex, opts.ShardCount = obsRun.Shard()
	fmt.Fprintf(w, "## Parameter ablations\n\n")
	fmt.Fprintf(w, "t-stide rarity cutoff (coverage cells of %d vs false alarms on rare data):\n\n", 112)
	fmt.Fprintf(w, "| cutoff | capable cells | false alarms |\n|---|---|---|\n")
	noisy, err := corpus.NoisyStream(10_000, 1)
	if err != nil {
		return err
	}
	placement, err := corpus.InjectInto(noisy, 6, 8)
	if err != nil {
		return err
	}
	for _, cutoff := range []float64{0.0001, 0.001, 0.005, 0.02} {
		factory := func(dw int) (adiv.Detector, error) { return adiv.NewTStide(dw, cutoff) }
		// Each cutoff rebuilds the "tstide" map, so the journal key carries
		// the cutoff — otherwise the points' cells would collide.
		opts.CheckpointKey = fmt.Sprintf("tstide[cutoff=%g]", cutoff)
		m, err := corpus.PerformanceMapObserved("tstide", factory, opts, metrics)
		if err != nil {
			return err
		}
		det, err := adiv.NewTStide(8, cutoff)
		if err != nil {
			return err
		}
		if err := adiv.TrainWithCorpus(det, corpus.TrainingDBs()); err != nil {
			return err
		}
		stats, err := adiv.AssessAlarms(det, placement, adiv.StrictThreshold)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "| %.4f | %d | %d |\n", cutoff, m.CountOutcome(adiv.OutcomeCapable), stats.FalseAlarms)
	}
	fmt.Fprintf(w, "\n")

	// Smoothed Markov collapse.
	factory := func(dw int) (adiv.Detector, error) { return adiv.NewSmoothedMarkov(dw, 0.05) }
	opts.CheckpointKey = "markov-smoothed[lambda=0.05]"
	strict, err := corpus.PerformanceMapObserved("markov-smoothed", factory, opts, metrics)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Laplace-smoothed Markov (λ=0.05) at the strict threshold: %d capable cells (maximum-likelihood: 91).\n\n",
		strict.CountOutcome(adiv.OutcomeCapable))
	return nil
}

func prevalence(w io.Writer) error {
	fmt.Fprintf(os.Stderr, "report: MFS prevalence...\n")
	fmt.Fprintf(w, "## Section 4.1 — MFS prevalence in quasi-natural traces\n\n")
	for _, profile := range []*adiv.TraceProfile{adiv.DaemonTraceProfile(), adiv.ShellTraceProfile()} {
		train, err := adiv.GenerateTrace(profile, 1, 200_000)
		if err != nil {
			return err
		}
		test, err := adiv.GenerateTrace(profile, 2, 50_000)
		if err != nil {
			return err
		}
		stats, err := adiv.ScanMFS(train, test, 12)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "- profile %q: %d MFS occurrences over %d positions, lengths %v\n",
			profile.Name, stats.Total(), stats.Positions, stats.Sizes())
	}
	fmt.Fprintf(w, "\n")
	return nil
}
