package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-nosuch"}); err == nil {
		t.Errorf("unknown flag accepted")
	}
}

func TestRunQuickFullReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full report regeneration skipped in -short mode")
	}
	out := filepath.Join(t.TempDir(), "report.md")
	if err := run([]string{"-quick", "-out", out}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	report := string(data)
	for _, want := range []string{
		"# Regenerated experimental record",
		"## Figure 2 — incident span",
		"## Figure 5 — stide performance map",
		"## Figure 7 — Lane & Brodley similarity walkthrough",
		"markov ⊇ stide: true",
		"## Parameter ablations",
		"## Section 4.1 — MFS prevalence",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestRunBadOutPath(t *testing.T) {
	if err := run([]string{"-quick", "-out", "/nonexistent-dir/report.md"}); err == nil {
		t.Errorf("unwritable output path accepted")
	}
}
