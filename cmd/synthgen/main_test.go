package main

import (
	"path/filepath"
	"testing"

	"adiv/internal/corpusio"
)

func TestRunMissingOut(t *testing.T) {
	if err := run(nil); err == nil {
		t.Errorf("missing -out accepted")
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-nosuch"}); err == nil {
		t.Errorf("unknown flag accepted")
	}
}

func TestRunWritesLoadableCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus build skipped in -short mode")
	}
	dir := t.TempDir()
	if err := run([]string{"-quick", "-out", dir, "-train", "60000", "-background", "600"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	corpus, err := corpusio.Load(dir)
	if err != nil {
		t.Fatalf("loading written corpus: %v", err)
	}
	if len(corpus.Training) != 60000 {
		t.Errorf("training length %d", len(corpus.Training))
	}
	if len(corpus.Placements) != 8 {
		t.Errorf("%d placements", len(corpus.Placements))
	}
	if _, err := filepath.Glob(filepath.Join(dir, "test_as*.txt")); err != nil {
		t.Errorf("glob: %v", err)
	}
}
