// Command synthgen synthesizes the full evaluation data suite — training
// stream, clean background, and one test stream per anomaly size with a
// verified minimal foreign sequence injected — and writes it to a directory
// (streams as whitespace-separated decimal text plus a JSON manifest).
//
// Usage:
//
//	synthgen -out DIR [-quick] [-seed N] [-train N] [-background N]
package main

import (
	"flag"
	"fmt"
	"os"

	"adiv"
	"adiv/internal/corpusio"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "synthgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("synthgen", flag.ContinueOnError)
	out := fs.String("out", "", "output directory (required)")
	quick := fs.Bool("quick", false, "use the reduced configuration")
	seed := fs.Uint64("seed", 0, "override the generator seed (0 keeps the default)")
	train := fs.Int("train", 0, "override the training-stream length (0 keeps the default)")
	background := fs.Int("background", 0, "override the background length (0 keeps the default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("missing required -out directory")
	}

	cfg := adiv.DefaultConfig()
	if *quick {
		cfg = adiv.QuickConfig()
	}
	if *seed != 0 {
		cfg.Gen.Seed = *seed
	}
	if *train != 0 {
		cfg.Gen.TrainLen = *train
	}
	if *background != 0 {
		cfg.Gen.BackgroundLen = *background
	}

	fmt.Printf("synthesizing corpus: training %d symbols, background %d, anomaly sizes %d-%d\n",
		cfg.Gen.TrainLen, cfg.Gen.BackgroundLen, cfg.MinSize, cfg.MaxSize)
	corpus, err := adiv.BuildCorpus(cfg)
	if err != nil {
		return err
	}
	a := adiv.EvaluationAlphabet()
	for _, size := range corpus.Sizes() {
		rep := corpus.Anomalies[size]
		fmt.Printf("  size %d: MFS %-22s foreign=%v minimal=%v rareParts=%v (max part freq %.5f)\n",
			size, a.Format(rep.Sequence), rep.Foreign, rep.Minimal, rep.RareParts, rep.MaxPartFreq)
	}
	path, err := corpusio.Save(corpus, *out)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
