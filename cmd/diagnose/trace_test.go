package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"adiv/internal/obs"
)

// writeTestTrace exports a small deterministic trace file: a main-lane corpus
// build, per-row training, live cells on two worker lanes, one replayed cell,
// and a scoring child — enough to exercise every section of the report.
func writeTestTrace(t *testing.T) string {
	t.Helper()
	cur := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	tr := obs.NewTracer(64)
	tr.SetClock(func() time.Time { return cur })
	advance := func(d time.Duration) { cur = cur.Add(d) }

	build := tr.Start("corpus/build", "corpus")
	build.SetLane(obs.LaneMain)
	advance(40 * time.Millisecond)
	build.End()

	train := tr.Start("train/stide/dw05", "train")
	train.SetLane(0)
	train.SetAttr("detector", "stide")
	advance(10 * time.Millisecond)
	train.End()

	cell0 := tr.Start("cell/stide", "cell")
	cell0.SetLane(0)
	cell0.SetAttr("detector", "stide")
	score := cell0.Child("score/stide", "score")
	advance(15 * time.Millisecond)
	score.End()
	advance(5 * time.Millisecond)
	cell0.End()

	cell1 := tr.Start("cell/markov", "cell")
	cell1.SetLane(1)
	cell1.SetAttr("detector", "markov")
	advance(25 * time.Millisecond)
	cell1.End()

	replay := tr.Start("cell/stide", "replay")
	replay.SetAttr("detector", "stide")
	replay.End()

	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tr.WriteChromeFile(path); err != nil {
		t.Fatalf("writing test trace: %v", err)
	}
	return path
}

// TestTraceReport runs the full report over a seeded trace and checks every
// section appears with the right headline numbers.
func TestTraceReport(t *testing.T) {
	path := writeTestTrace(t)
	var sb strings.Builder
	if err := run(&sb, []string{"-trace", path}); err != nil {
		t.Fatalf("diagnose -trace: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"schema " + obs.TraceSchemaVersion,
		"spans: 6",
		"cell spans: 2 (plus 1 replayed from checkpoint)",
		"wall clock:",
		"critical path",
		"worker occupancy:",
		"worker 0",
		"worker 1",
		"main",
		"top spans by self-time:",
		"per-detector-family cost",
		"stide",
		"markov",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestTraceReportTopN: -top bounds the self-time table.
func TestTraceReportTopN(t *testing.T) {
	path := writeTestTrace(t)
	var sb strings.Builder
	if err := run(&sb, []string{"-trace", path, "-top", "1"}); err != nil {
		t.Fatalf("diagnose -trace -top 1: %v", err)
	}
	out := sb.String()
	_, table, ok := strings.Cut(out, "top spans by self-time:")
	if !ok {
		t.Fatalf("no self-time section:\n%s", out)
	}
	table, _, _ = strings.Cut(table, "\nper-detector")
	rows := 0
	for _, line := range strings.Split(table, "\n") {
		if strings.Contains(line, "/") { // span names carry a slash
			rows++
		}
	}
	if rows != 1 {
		t.Errorf("-top 1 printed %d rows:\n%s", rows, table)
	}
}

func TestTraceReportMissingFile(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-trace", filepath.Join(t.TempDir(), "nope.json")}); err == nil {
		t.Error("missing trace file accepted")
	}
}

func TestTraceReportForeignSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "foreign.json")
	doc := `{"displayTimeUnit":"ms","otherData":{"schema":"someone.else/v9"},"traceEvents":[]}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run(&sb, []string{"-trace", path}); err == nil {
		t.Error("foreign-schema trace accepted")
	}
}
