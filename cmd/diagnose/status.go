package main

// Remote run inspection: -status-url points diagnose at the introspection
// server another command exposed with -status, and it renders that run's
// /runz progress document and top /metrics counters as one table — the
// operator's one-shot "how far along is the grid" query without curl+jq.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"adiv"
)

// topCounters is how many exposition counters the snapshot table shows.
const topCounters = 5

// statusSnapshot dispatches on the -status-url form: one address renders that
// run's full progress document; a comma-separated list renders the aggregated
// fleet view of a sharded run (one row per worker, summed totals).
func statusSnapshot(w io.Writer, urls string) error {
	var bases []string
	for _, u := range strings.Split(urls, ",") {
		if u = strings.TrimSpace(u); u != "" {
			bases = append(bases, normalizeBase(u))
		}
	}
	switch len(bases) {
	case 0:
		return fmt.Errorf("diagnose: -status-url holds no addresses")
	case 1:
		return statusOne(w, bases[0])
	default:
		return statusFleet(w, bases)
	}
}

// normalizeBase turns a host:port or URL into a scheme-qualified base URL.
func normalizeBase(base string) string {
	base = strings.TrimSuffix(base, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return base
}

// statusFleet aggregates the /runz documents of a sharded run's workers into
// one table: a row per worker (its shard identity, phase, cell progress,
// throughput, ETA), then fleet totals — cells and rates sum, the ETA is the
// slowest worker's. Unreachable workers render as such and surface in the
// returned error after the reachable rows are printed, so one dead worker
// doesn't blind the operator to the rest of the fleet.
func statusFleet(w io.Writer, bases []string) error {
	fmt.Fprintf(w, "fleet status from %d workers\n\n", len(bases))
	fmt.Fprintf(w, "%-28s %-8s %-10s %14s %12s %10s\n", "worker", "shard", "phase", "cells", "rate", "ETA")
	var errs []error
	var done, total int
	var rate, maxETA float64
	etaUnknown := false
	for _, base := range bases {
		var status adiv.RunStatus
		body, err := fetch(base + "/runz")
		if err == nil {
			if jerr := json.Unmarshal(body, &status); jerr != nil {
				err = fmt.Errorf("diagnose: %s/runz is not a run status document: %w", base, jerr)
			}
		}
		if err != nil {
			fmt.Fprintf(w, "%-28s %s\n", base, "unreachable")
			errs = append(errs, err)
			continue
		}
		shard := status.Shard
		if shard == "" {
			shard = "-"
		}
		fmt.Fprintf(w, "%-28s %-8s %-10s %7d/%-6d %9.2f/s %10s\n",
			base, shard, status.Phase, status.CellsDone, status.CellsTotal,
			status.CellsPerSec, formatETA(status.ETASeconds))
		done += status.CellsDone
		total += status.CellsTotal
		rate += status.CellsPerSec
		if status.ETASeconds < 0 {
			etaUnknown = true
		} else if status.ETASeconds > maxETA {
			maxETA = status.ETASeconds
		}
	}
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(done) / float64(total)
	}
	eta := maxETA
	if etaUnknown {
		eta = -1
	}
	fmt.Fprintf(w, "\nfleet: %d/%d cells (%.1f%%)   rate: %.2f cells/s   ETA: %s\n",
		done, total, pct, rate, formatETA(eta))
	return errors.Join(errs...)
}

// statusOne fetches base's /runz and /metrics and pretty-prints them.
func statusOne(w io.Writer, base string) error {
	var status adiv.RunStatus
	body, err := fetch(base + "/runz")
	if err != nil {
		return err
	}
	if err := json.Unmarshal(body, &status); err != nil {
		return fmt.Errorf("diagnose: %s/runz is not a run status document: %w", base, err)
	}
	expo, err := fetch(base + "/metrics")
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "run status from %s (schema %s)\n\n", base, status.Schema)
	if len(status.Run) > 0 {
		keys := make([]string, 0, len(status.Run))
		for k := range status.Run {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s=%v", k, status.Run[k]))
		}
		fmt.Fprintf(w, "run: %s\n", strings.Join(parts, " "))
	}
	pct := 0.0
	if status.CellsTotal > 0 {
		pct = 100 * float64(status.CellsDone) / float64(status.CellsTotal)
	}
	if status.Shard != "" {
		fmt.Fprintf(w, "shard: %s of a distributed run\n", status.Shard)
	}
	fmt.Fprintf(w, "phase: %-12s uptime: %s\n", status.Phase, (time.Duration(status.UptimeMs) * time.Millisecond).Round(time.Second))
	fmt.Fprintf(w, "cells: %d/%d (%.1f%%)   rate: %.2f cells/s   ETA: %s\n\n",
		status.CellsDone, status.CellsTotal, pct, status.CellsPerSec, formatETA(status.ETASeconds))

	if len(status.Maps) > 0 {
		fmt.Fprintf(w, "%-20s %10s %10s %-14s %s\n", "map", "rows", "cells", "active", "state")
		for _, m := range status.Maps {
			state := "running"
			if m.Done {
				state = "done"
			} else if m.RowsStarted == 0 {
				state = "pending"
			}
			active := "-"
			if len(m.ActiveWindows) > 0 {
				active = fmt.Sprint(m.ActiveWindows)
			}
			fmt.Fprintf(w, "%-20s %6d/%-3d %6d/%-3d %-14s %s\n",
				m.Name, m.RowsDone, m.RowsTotal, m.CellsDone, m.CellsTotal, active, state)
		}
		fmt.Fprintln(w)
	}

	counters := parseExpoValues(expo)
	if len(counters) > 0 {
		fmt.Fprintf(w, "top counters (/metrics):\n")
		for i, c := range counters {
			if i == topCounters {
				break
			}
			fmt.Fprintf(w, "  %-40s %s\n", c.name, strconv.FormatFloat(c.value, 'g', -1, 64))
		}
	}
	return nil
}

func fetch(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, fmt.Errorf("diagnose: fetching %s: %w", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("diagnose: reading %s: %w", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("diagnose: %s returned %s", url, resp.Status)
	}
	return body, nil
}

func formatETA(s float64) string {
	switch {
	case s < 0:
		return "unknown"
	case s == 0:
		return "complete"
	default:
		return (time.Duration(s * float64(time.Second))).Round(time.Second).String()
	}
}

type expoValue struct {
	name  string
	value float64
}

// parseExpoValues extracts single-valued samples (counters and gauges; no
// labels) from a Prometheus text exposition, sorted by value descending
// then name, so "which counters dominate this run" reads off the top.
func parseExpoValues(expo []byte) []expoValue {
	var out []expoValue
	sc := bufio.NewScanner(strings.NewReader(string(expo)))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.Contains(line, "{") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			continue
		}
		out = append(out, expoValue{name: name, value: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].value != out[j].value {
			return out[i].value > out[j].value
		}
		return out[i].name < out[j].name
	})
	return out
}
