package main

import (
	"fmt"
	"io"
	"os"
	"text/tabwriter"
	"time"

	"adiv/internal/obs"
)

// traceReport reads an exported Chrome trace (a -trace FILE from any driver)
// and prints the analysis a timeline viewer can't surface directly: the
// critical path bounding the run's wall clock, per-worker occupancy, the
// spans dominating self-time, and per-detector-family cost rollups.
func traceReport(w io.Writer, path string, topN int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	meta, spans, err := obs.ReadChromeTrace(f)
	if err != nil {
		return fmt.Errorf("reading %s: %w", path, err)
	}
	rep := obs.AnalyzeTrace(spans, topN)

	fmt.Fprintf(w, "trace %s", path)
	if meta.Schema != "" {
		fmt.Fprintf(w, " (schema %s, trace id %016x)", meta.Schema, meta.TraceID)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "spans: %d (plus %d instants)\n", rep.SpanCount, rep.InstantCount)
	fmt.Fprintf(w, "cell spans: %d", rep.CellSpans)
	if rep.ReplaySpans > 0 {
		fmt.Fprintf(w, " (plus %d replayed from checkpoint)", rep.ReplaySpans)
	}
	fmt.Fprintln(w)
	if meta.Dropped > 0 {
		fmt.Fprintf(w, "dropped: %d of %d spans fell out of the bounded ring before export\n",
			meta.Dropped, meta.Total)
	}
	if rep.SpanCount == 0 {
		return nil
	}
	fmt.Fprintf(w, "wall clock: %s\n", round(rep.Wall))

	fmt.Fprintf(w, "\ncritical path (%s, %.0f%% of wall — the chain no extra workers can shorten):\n",
		round(rep.CriticalTotal), pct(rep.CriticalTotal, rep.Wall))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  start\tduration\tlane\tspan")
	for _, ev := range rep.CriticalPath {
		fmt.Fprintf(tw, "  %s\t%s\t%s\t%s\n", round(ev.Start), round(ev.Dur), laneName(ev.Lane), ev.Name)
	}
	tw.Flush()

	if len(rep.Lanes) > 0 {
		fmt.Fprintln(w, "\nworker occupancy:")
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  lane\tspans\tbusy\toccupancy\tidle")
		for _, ls := range rep.Lanes {
			fmt.Fprintf(tw, "  %s\t%d\t%s\t%.1f%%\t%.1f%%\n",
				laneName(ls.Lane), ls.Spans, round(ls.Busy), 100*ls.Occupancy, 100*(1-ls.Occupancy))
		}
		tw.Flush()
	}

	if len(rep.TopSelf) > 0 {
		fmt.Fprintln(w, "\ntop spans by self-time:")
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  self\ttotal\tcount\tname")
		for _, ns := range rep.TopSelf {
			fmt.Fprintf(tw, "  %s\t%s\t%d\t%s\n", round(ns.Self), round(ns.Total), ns.Count, ns.Name)
		}
		tw.Flush()
	}

	if len(rep.Families) > 0 {
		fmt.Fprintln(w, "\nper-detector-family cost (score time runs inside cells; shown, not re-added):")
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  detector\tspans\ttrain\tcells\tother\ttotal\t(score)")
		for _, fs := range rep.Families {
			fmt.Fprintf(tw, "  %s\t%d\t%s\t%s\t%s\t%s\t(%s)\n", fs.Detector, fs.Spans,
				round(fs.Train), round(fs.Cell), round(fs.Other), round(fs.Total), round(fs.Score))
		}
		tw.Flush()
	}
	return nil
}

// laneName renders a lane index the way the Chrome export names its threads.
func laneName(lane int) string {
	switch lane {
	case obs.LaneMain:
		return "main"
	case obs.LaneAsync:
		return "-"
	default:
		return fmt.Sprintf("worker %d", lane)
	}
}

// round trims durations to a readable precision without losing short spans.
func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(time.Microsecond)
	default:
		return d
	}
}

// pct is the percentage of part in whole, 0 when whole is unknown.
func pct(part, whole time.Duration) float64 {
	if whole <= 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}
