package main

import (
	"io"

	"adiv"
)

// alertsReport renders the -alerts analysis: parse the NDJSON journal
// (tolerating a torn final line from an interrupted run), aggregate
// per-detector disposition counts and score quantiles, and replay the
// watchdog rules offline over the journal's position buckets.
func alertsReport(w io.Writer, path string) error {
	recs, err := adiv.ReadAlertsFile(path)
	if err != nil {
		return err
	}
	rep := adiv.AnalyzeAlerts(recs, adiv.AlertAnalysisOptions{})
	rep.WriteText(w)
	return nil
}
