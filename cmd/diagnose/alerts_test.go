package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"adiv"
)

// seedAlertJournal writes a journal whose markov family storms (60 raised
// alerts packed into the first position bucket) and then goes silent, while
// a sparse stide family stays healthy — so the report carries per-family
// quantiles and at least one watchdog firing.
func seedAlertJournal(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "alerts.ndjson")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	j := adiv.NewAlertJournal(f)
	for i := 0; i < 60; i++ {
		j.Append(adiv.AlertRecord{
			Position:    i,
			Detector:    "markov",
			Score:       0.5 + float64(i)/200, // spread so the quantiles separate
			Threshold:   0.5,
			Disposition: adiv.DispositionRaised,
		})
	}
	j.Append(adiv.AlertRecord{Position: 3, Detector: "markov", Score: 0.9, Threshold: 0.5, Disposition: adiv.DispositionSuppressed})
	j.Append(adiv.AlertRecord{Position: 500, Detector: "stide", Score: 1, Threshold: 1, Disposition: adiv.DispositionRaised})
	j.Append(adiv.AlertRecord{Position: 500, Detector: "stide", Score: 1, Threshold: 1, Disposition: adiv.DispositionEscalated})
	j.Append(adiv.AlertRecord{Position: 2000, Detector: "stide", Score: 1, Threshold: 1, Disposition: adiv.DispositionRaised})
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestAlertsReportSeeded is the acceptance fixture: diagnose -alerts renders
// a seeded journal with per-family score quantiles and at least one watchdog
// firing.
func TestAlertsReportSeeded(t *testing.T) {
	path := seedAlertJournal(t)
	var sb strings.Builder
	if err := run(&sb, []string{"-alerts", path}); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "Alert journal: 64 record(s)") {
		t.Errorf("missing journal header:\n%s", out)
	}
	// Per-family rows with non-degenerate quantiles: markov's p50 and p99
	// come from the seeded 0.5..0.795 spread, so p50 < p99.
	row := regexp.MustCompile(`(?m)^markov\s+60\s+0\s+1\s+59\s+\S+\s+(\S+)\s+\S+\s+(\S+)$`)
	m := row.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no markov family row:\n%s", out)
	}
	if !(m[1] < m[2]) { // string compare suffices for fixed-width %.4f here
		t.Errorf("markov quantiles not separated: p50=%s p99=%s", m[1], m[2])
	}
	if !strings.Contains(out, "\nstide") {
		t.Errorf("missing stide family row:\n%s", out)
	}
	if !strings.Contains(out, "Watchdog:") || strings.Contains(out, "no rule fired") {
		t.Errorf("expected at least one watchdog firing:\n%s", out)
	}
	if !strings.Contains(out, "storm: markov") {
		t.Errorf("expected the markov storm to be flagged:\n%s", out)
	}
	if !strings.Contains(out, "silent: markov") {
		t.Errorf("expected markov's silence after the storm to be flagged:\n%s", out)
	}
}

// TestAlertsReportMissingFile: a bad path is a loud error, not an empty
// report.
func TestAlertsReportMissingFile(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-alerts", filepath.Join(t.TempDir(), "nope.ndjson")}); err == nil {
		t.Fatal("missing journal accepted")
	}
}
