// Command diagnose walks the paper's Figure-1 decision chain for a chosen
// detector deployment against the synthetic evaluation data: given an
// anomaly size, a detector, and a deployed window, it reports whether the
// attack would be detected and — if not — exactly which stage broke
// (not anomalous / not detectable by this algorithm / detector mistuned).
//
// Usage:
//
//	diagnose [-detector stide] [-size 7] [-window 5] [-quick]
//	diagnose -status-url HOST:PORT[,HOST:PORT...]
//	diagnose -trace FILE [-top N]
//	diagnose -alerts FILE
//
// With -status-url, diagnose instead inspects a live run: it fetches /runz
// and /metrics from the introspection server another command exposed with
// -status and prints one progress table (phase, cells done/total, ETA,
// per-map rows, top counters). A comma-separated list of addresses renders
// the aggregated fleet view of a sharded run (-shard i/N workers): one row
// per worker plus summed cells and throughput, with the ETA of the slowest
// worker; unreachable workers are reported without hiding the rest.
//
// With -trace, diagnose analyzes an execution trace another command exported
// with -trace FILE: it prints the critical path (the sequential chain
// bounding the run's wall clock), per-worker occupancy and idle time, the
// top spans by self-time, and per-detector-family cost rollups.
//
// With -alerts, diagnose analyzes a streaming alert journal another command
// wrote with -alerts FILE (NDJSON, schema adiv.alerts/v1): per-detector
// disposition counts (raised / escalated / suppressed / pending), score
// quantiles at sketch resolution, alert rate per 1000 stream positions, and
// an offline replay of the detector-health watchdog rules (storm, saturated,
// silent) over the journal's position buckets.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"adiv"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "diagnose:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("diagnose", flag.ContinueOnError)
	detName := fs.String("detector", adiv.DetectorStide, "detector family (stide|markov|nn|lb|tstide)")
	size := fs.Int("size", 7, "anomaly size (2-9)")
	window := fs.Int("window", 5, "deployed detector window")
	quick := fs.Bool("quick", true, "use the reduced configuration")
	statusURL := fs.String("status-url", "", "inspect a live run instead: fetch /runz and /metrics from this -status server (host:port or URL) and print a progress table; a comma-separated list aggregates a sharded run's workers into one fleet view")
	tracePath := fs.String("trace", "", "analyze an exported execution trace instead: print critical path, worker occupancy, and cost rollups for this Chrome trace JSON file")
	top := fs.Int("top", 10, "with -trace, how many spans to rank by self-time")
	alertsPath := fs.String("alerts", "", "analyze a streaming alert journal instead: print per-detector disposition counts, score quantiles, and offline watchdog findings for this NDJSON file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *statusURL != "" {
		return statusSnapshot(w, *statusURL)
	}
	if *tracePath != "" {
		return traceReport(w, *tracePath, *top)
	}
	if *alertsPath != "" {
		return alertsReport(w, *alertsPath)
	}

	cfg := adiv.DefaultConfig()
	if *quick {
		cfg = adiv.QuickConfig()
	}
	corpus, err := adiv.BuildCorpus(cfg)
	if err != nil {
		return err
	}
	p, ok := corpus.Placements[*size]
	if !ok {
		return fmt.Errorf("no size-%d anomaly in the corpus (sizes %v)", *size, corpus.Sizes())
	}
	factory, opts, err := adiv.DetectorFactory(*detName)
	if err != nil {
		return err
	}

	verdict, err := adiv.Diagnose(adiv.DiagnosisInputs{
		Manifests:      true,
		Observed:       true,
		TrainIndex:     corpus.TrainIndex,
		RareCutoff:     cfg.RareCutoff,
		Placement:      p,
		Factory:        factory,
		MinWindow:      cfg.MinWindow,
		MaxWindow:      cfg.MaxWindow,
		DeployedWindow: *window,
		Train:          corpus.Training,
		Opts:           opts,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "detector %s, deployed window %d, size-%d minimal foreign sequence\n",
		*detName, *window, *size)
	fmt.Fprintln(w, verdict)
	if len(verdict.DetectableWindows) > 0 {
		fmt.Fprintf(w, "windows at which this detector family registers a maximal response: %v\n",
			verdict.DetectableWindows)
	} else if verdict.FailedAt == adiv.StageDetectable {
		fmt.Fprintln(w, "no window in the evaluated range detects this anomaly — the blindness is")
		fmt.Fprintln(w, "structural (the detector's similarity metric, not its tuning)")
	}
	return nil
}
