package main

import (
	"strings"
	"testing"
)

func TestRunUnknownDetector(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus build skipped in -short mode")
	}
	var sb strings.Builder
	if err := run(&sb, []string{"-detector", "nosuch"}); err == nil {
		t.Errorf("unknown detector accepted")
	}
}

func TestRunUnknownSize(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus build skipped in -short mode")
	}
	var sb strings.Builder
	if err := run(&sb, []string{"-size", "11"}); err == nil {
		t.Errorf("size outside corpus accepted")
	}
}

func TestRunMistunedStide(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus build skipped in -short mode")
	}
	var sb strings.Builder
	if err := run(&sb, []string{"-detector", "stide", "-size", "7", "-window", "5"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "NOT DETECTED") || !strings.Contains(out, "E:") {
		t.Errorf("expected a mistuned (stage E) verdict:\n%s", out)
	}
}
