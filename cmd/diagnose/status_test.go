package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// cannedStatusServer serves a fixed mid-run /runz document and a small
// /metrics exposition, standing in for a perfmap run's -status server.
func cannedStatusServer(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/runz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{
  "schema": "adiv.runz/v1",
  "run": {"cmd": "perfmap", "quick": true},
  "phase": "grid",
  "startedAt": "2026-08-06T12:00:00Z",
  "uptimeMs": 90000,
  "cellsDone": 56,
  "cellsTotal": 112,
  "cellsPerSec": 0.62,
  "etaSeconds": 90.3,
  "maps": [
    {"name": "stide", "rowsTotal": 14, "rowsStarted": 14, "rowsDone": 14,
     "cellsDone": 112, "cellsTotal": 112, "done": true},
    {"name": "markov", "rowsTotal": 14, "rowsStarted": 6, "rowsDone": 2,
     "activeWindows": [4, 5, 6, 7], "cellsDone": 23, "cellsTotal": 112, "done": false}
  ]
}`))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`# HELP adiv_eval_cells_stide cumulative count of eval/cells/stide
# TYPE adiv_eval_cells_stide counter
adiv_eval_cells_stide 112
adiv_eval_cells_markov 23
adiv_sched_tasks_started 141
adiv_sched_tasks_done 137
adiv_online_threshold 0.95
adiv_corpus_build 1
adiv_responses_stide_bucket{le="0.5"} 9
`))
	})
	return httptest.NewServer(mux)
}

func TestStatusSnapshot(t *testing.T) {
	ts := cannedStatusServer(t)
	defer ts.Close()

	var sb strings.Builder
	if err := run(&sb, []string{"-status-url", ts.URL}); err != nil {
		t.Fatalf("run -status-url: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"schema adiv.runz/v1",
		"cmd=perfmap",
		"phase: grid",
		"cells: 56/112 (50.0%)",
		"rate: 0.62 cells/s",
		"ETA: 1m30s",
		"stide",
		"markov",
		"[4 5 6 7]",
		"done",
		"running",
		"adiv_sched_tasks_started",
		"141",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("snapshot missing %q:\n%s", want, out)
		}
	}
	// Top-5 cut: 6 plain samples were served, so the smallest must be
	// dropped, and the labeled histogram bucket line never parsed.
	if strings.Contains(out, "adiv_online_threshold") {
		t.Errorf("smallest counter should fall outside the top %d:\n%s", topCounters, out)
	}
	if strings.Contains(out, "bucket") {
		t.Errorf("labeled sample leaked into the counter table:\n%s", out)
	}
}

func TestStatusSnapshotHostPortForm(t *testing.T) {
	ts := cannedStatusServer(t)
	defer ts.Close()
	var sb strings.Builder
	hostport := strings.TrimPrefix(ts.URL, "http://")
	if err := run(&sb, []string{"-status-url", hostport + "/"}); err != nil {
		t.Fatalf("run -status-url %s/: %v", hostport, err)
	}
	if !strings.Contains(sb.String(), "phase: grid") {
		t.Errorf("host:port form failed:\n%s", sb.String())
	}
}

func TestStatusSnapshotErrors(t *testing.T) {
	notFound := httptest.NewServer(http.NotFoundHandler())
	defer notFound.Close()
	var sb strings.Builder
	if err := run(&sb, []string{"-status-url", notFound.URL}); err == nil ||
		!strings.Contains(err.Error(), "404") {
		t.Errorf("non-200 /runz not reported: %v", err)
	}

	notJSON := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("not json"))
	}))
	defer notJSON.Close()
	if err := run(&sb, []string{"-status-url", notJSON.URL}); err == nil ||
		!strings.Contains(err.Error(), "not a run status document") {
		t.Errorf("malformed /runz not reported: %v", err)
	}

	unreachable := notFound.URL // server already closed below
	notFound.Close()
	if err := run(&sb, []string{"-status-url", unreachable}); err == nil {
		t.Error("unreachable server not reported")
	}
}

// shardStatusServer serves a /runz document for one worker of a sharded run.
func shardStatusServer(t *testing.T, shard string, done, total int, rate, eta float64) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/runz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"schema":"adiv.runz/v1","phase":"grid","shard":%q,`+
			`"startedAt":"2026-08-06T12:00:00Z","uptimeMs":1000,`+
			`"cellsDone":%d,"cellsTotal":%d,"cellsPerSec":%g,"etaSeconds":%g,"maps":[]}`,
			shard, done, total, rate, eta)
	})
	return httptest.NewServer(mux)
}

// TestStatusFleet aggregates three shard workers: one row per worker with its
// shard identity, summed cells and rates, and the slowest worker's ETA.
func TestStatusFleet(t *testing.T) {
	a := shardStatusServer(t, "1/3", 10, 40, 2.0, 15)
	b := shardStatusServer(t, "2/3", 20, 40, 1.0, 20)
	c := shardStatusServer(t, "3/3", 40, 40, 0.5, 0)
	defer a.Close()
	defer b.Close()
	defer c.Close()

	var sb strings.Builder
	urls := a.URL + "," + b.URL + "," + c.URL
	if err := run(&sb, []string{"-status-url", urls}); err != nil {
		t.Fatalf("run -status-url fleet: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"fleet status from 3 workers",
		"1/3", "2/3", "3/3",
		"10/40", "20/40", "40/40",
		"fleet: 70/120 cells (58.3%)",
		"rate: 3.50 cells/s",
		"ETA: 20s",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fleet view missing %q:\n%s", want, out)
		}
	}
}

// TestStatusFleetPartialOutage keeps rendering reachable workers when one is
// down, and still reports the failure through the returned error.
func TestStatusFleetPartialOutage(t *testing.T) {
	alive := shardStatusServer(t, "1/2", 5, 10, 1.0, 5)
	defer alive.Close()
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	var sb strings.Builder
	err := run(&sb, []string{"-status-url", alive.URL + "," + deadURL})
	if err == nil {
		t.Fatal("dead worker not reported in the error")
	}
	out := sb.String()
	if !strings.Contains(out, "1/2") || !strings.Contains(out, "5/10") {
		t.Errorf("reachable worker not rendered despite outage:\n%s", out)
	}
	if !strings.Contains(out, "unreachable") {
		t.Errorf("dead worker row missing:\n%s", out)
	}
	if !strings.Contains(out, "fleet: 5/10 cells") {
		t.Errorf("fleet totals missing:\n%s", out)
	}
}
