// Command sweep runs the parameter-sensitivity studies behind the paper's
// "heavily dependent on the parameter values of the detectors" finding and
// emits CSV series.
//
// Modes:
//
//	-mode threshold   detection-threshold sweep per detector on
//	                  rare-containing test data (hit rate, false-alarm
//	                  rate, AUC) — the coverage-vs-false-alarm trade-off
//	-mode nn          neural-network tuning grid (epochs × learning rate):
//	                  capable cells out of the full evaluation grid
//	-mode cutoff      t-stide rarity-cutoff sweep: coverage and false
//	                  alarms as the cutoff moves
//	-mode profile     per-detector response distributions on clean versus
//	                  rare-containing data
//	-mode hmm         HMM hidden-state-count sweep
//
// Usage:
//
//	sweep -mode threshold [-quick=false] [-window N] [-size N] [-trials N]
//
// NOTE: unlike the other commands, sweep defaults to the REDUCED (-quick)
// configuration, because most modes retrain dozens of detectors; pass
// -quick=false for the paper-scale run. The active configuration is
// announced as a run.start event on stderr at startup. The shared
// observability flags (-metrics-out, -progress, -status, -trace, -alerts,
// -cpuprofile, -memprofile) are also accepted; -status serves live grid progress at
// /runz while the nn and cutoff modes run. The map-building modes (nn,
// cutoff) honor -checkpoint DIR / -resume: every grid cell of every
// parameter point is journaled under a parameter-qualified key (e.g.
// "nn[epochs=25,lr=0.1]"), so a resumed sweep skips the parameter points
// it already finished. -shard i/N evaluates one shard of an N-way grid
// partition (journaling to DIR/shard-i-of-N); checkpoint.Merge reassembles
// the shard journals for a final -resume rendering run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"adiv"
	"adiv/internal/runflags"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) (err error) {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	mode := fs.String("mode", "threshold", "sweep mode: threshold, nn, cutoff, profile, or hmm")
	quick := fs.Bool("quick", true, "use the reduced configuration — NOTE: defaults to true, unlike the other commands, because sweeps retrain dozens of detectors; pass -quick=false for the paper-scale (one-million-element) run")
	window := fs.Int("window", 8, "detector window")
	size := fs.Int("size", 6, "anomaly size")
	trials := fs.Int("trials", 5, "number of rare-containing test streams (threshold mode)")
	obsFlags := runflags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := adiv.DefaultConfig()
	if *quick {
		cfg = adiv.QuickConfig()
	}
	obsRun, err := obsFlags.Start(os.Stderr)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := obsRun.Close(); err == nil {
			err = cerr
		}
	}()
	config := "default (paper-scale)"
	if *quick {
		config = "quick (reduced)"
	}
	obsRun.Announce("run.start", adiv.EventFields{
		"cmd":           "sweep",
		"mode":          *mode,
		"config":        config,
		"quick":         *quick,
		"trainLen":      cfg.Gen.TrainLen,
		"backgroundLen": cfg.Gen.BackgroundLen,
		"windows":       fmt.Sprintf("%d-%d", cfg.MinWindow, cfg.MaxWindow),
		"sizes":         fmt.Sprintf("%d-%d", cfg.MinSize, cfg.MaxSize),
		"jobs":          obsRun.Scheduler().Workers(),
	})
	obsRun.Progress().SetPhase("corpus")
	corpus, err := adiv.BuildCorpusObserved(cfg, obsRun.Metrics)
	if err != nil {
		return err
	}
	obsRun.Progress().SetPhase(*mode)

	// Only the map-building modes journal cells; the others open the
	// journal anyway so a mismatched -checkpoint configuration is refused
	// up front rather than silently ignored.
	ckpt, err := obsRun.OpenJournal(corpus.Fingerprint("sweep", []string{*mode},
		fmt.Sprintf("mode=%s,window=%d,size=%d", *mode, *window, *size)))
	if err != nil {
		return err
	}

	switch *mode {
	case "threshold":
		return thresholdSweep(w, corpus, *window, *size, *trials)
	case "nn":
		return nnGrid(w, corpus, obsRun.Scheduler(), obsRun.Progress(), ckpt, obsRun, obsRun.Metrics)
	case "cutoff":
		return cutoffSweep(w, corpus, *window, *size, obsRun.Scheduler(), obsRun.Progress(), ckpt, obsRun, obsRun.Metrics)
	case "profile":
		return profiles(w, corpus, *window)
	case "hmm":
		return hmmStates(w, corpus, obsRun.Scheduler().Workers())
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}

// hmmStates sweeps the HMM's hidden-state count and reports how well the
// model tracks the clean background (its maximum response after burn-in):
// too few states alias a cycle position and the predictive probability
// collapses to ~0.5 there; enough states track the process down to the
// excursion mass. The shared -j flag sets the Baum-Welch E-step workers;
// the trained model is bit-identical for every worker count, so -j only
// changes wall-clock.
func hmmStates(w io.Writer, corpus *adiv.Corpus, workers int) error {
	fmt.Fprintln(w, "states,max_background_response,mean_background_response")
	for _, states := range []int{4, 6, 8, 10, 12, 16} {
		cfg := adiv.DefaultHMMConfig()
		cfg.States = states
		cfg.Workers = workers
		det, err := adiv.NewHMM(cfg)
		if err != nil {
			return err
		}
		if err := adiv.TrainWithCorpus(det, corpus.TrainingDBs()); err != nil {
			return err
		}
		responses, err := det.Score(corpus.Background[:1_000])
		if err != nil {
			return err
		}
		settled := responses[12:]
		maxR, sum := 0.0, 0.0
		for _, r := range settled {
			if r > maxR {
				maxR = r
			}
			sum += r
		}
		fmt.Fprintf(w, "%d,%.4f,%.4f\n", states, maxR, sum/float64(len(settled)))
	}
	return nil
}

// profiles renders each detector's response distribution on clean
// background versus rare-containing data — the operator's view when
// placing a detection threshold.
func profiles(w io.Writer, corpus *adiv.Corpus, window int) error {
	noisy, err := corpus.NoisyStream(8_000, 1)
	if err != nil {
		return err
	}
	for _, name := range []string{adiv.DetectorStide, adiv.DetectorMarkov, adiv.DetectorLaneBrodley} {
		det, err := adiv.NewDetector(name, window)
		if err != nil {
			return err
		}
		if err := adiv.TrainWithCorpus(det, corpus.TrainingDBs()); err != nil {
			return err
		}
		for label, stream := range map[string]adiv.Stream{"clean background": corpus.Background, "rare-containing": noisy} {
			p, err := adiv.ProfileResponses(det, stream, 10)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "== %s on %s ==\n", name, label)
			if err := adiv.WriteProfile(w, p); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// thresholdSweep traces each detector's ROC over rare-containing trials.
func thresholdSweep(w io.Writer, corpus *adiv.Corpus, window, size, trials int) error {
	placements := make([]adiv.Placement, 0, trials)
	for i := 0; i < trials; i++ {
		noisy, err := corpus.NoisyStream(8_000, uint64(i+1))
		if err != nil {
			return err
		}
		p, err := corpus.InjectInto(noisy, size, window)
		if err != nil {
			return err
		}
		placements = append(placements, p)
	}
	thresholds := []float64{0.5, 0.8, 0.9, 0.95, 0.98, 0.99, 0.999, 1}

	fmt.Fprintln(w, "detector,threshold,hit_rate,false_alarm_rate")
	for _, name := range []string{adiv.DetectorStide, adiv.DetectorMarkov, adiv.DetectorTStide, adiv.DetectorLaneBrodley} {
		det, err := adiv.NewDetector(name, window)
		if err != nil {
			return err
		}
		if err := adiv.TrainWithCorpus(det, corpus.TrainingDBs()); err != nil {
			return err
		}
		curve, err := adiv.ROC(det, placements, thresholds)
		if err != nil {
			return err
		}
		for _, pt := range curve.Points {
			fmt.Fprintf(w, "%s,%.4f,%.3f,%.6f\n", name, pt.Threshold, pt.HitRate, pt.FalseAlarmRate)
		}
		auc, err := curve.AUC()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "# %s AUC = %.4f\n", name, auc)
	}
	return nil
}

// nnGrid charts coverage across neural-network tuning parameters.
func nnGrid(w io.Writer, corpus *adiv.Corpus, sched *adiv.GridScheduler, prog *adiv.Progress, ckpt *adiv.CheckpointJournal, obsRun *runflags.Run, metrics *adiv.Metrics) error {
	total := (corpus.Config.MaxSize - corpus.Config.MinSize + 1) *
		(corpus.Config.MaxWindow - corpus.Config.MinWindow + 1)
	opts := adiv.NeuralNetEvalOptions()
	opts.Scheduler = sched
	opts.Progress = prog
	opts.Checkpoint = ckpt
	opts.ShardIndex, opts.ShardCount = obsRun.Shard()
	fmt.Fprintln(w, "epochs,learning_rate,capable_cells,total_cells")
	for _, epochs := range []int{1, 25, 100, 400} {
		for _, lr := range []float64{0.01, 0.1, 0.25} {
			cfg := adiv.DefaultNNConfig()
			cfg.Epochs = epochs
			cfg.LearningRate = lr
			// Every parameter point rebuilds the "nn" map, so the journal
			// key must carry the parameters — identical (window, size)
			// coordinates from different points would otherwise collide.
			opts.CheckpointKey = fmt.Sprintf("nn[epochs=%d,lr=%g]", epochs, lr)
			m, err := corpus.PerformanceMapObserved("nn", adiv.NeuralNetFactory(cfg), opts, metrics)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%d,%.3f,%d,%d\n", epochs, lr, m.CountOutcome(adiv.OutcomeCapable), total)
		}
	}
	return nil
}

// cutoffSweep charts t-stide's coverage and false alarms against its
// rarity cutoff.
func cutoffSweep(w io.Writer, corpus *adiv.Corpus, window, size int, sched *adiv.GridScheduler, prog *adiv.Progress, ckpt *adiv.CheckpointJournal, obsRun *runflags.Run, metrics *adiv.Metrics) error {
	noisy, err := corpus.NoisyStream(10_000, 1)
	if err != nil {
		return err
	}
	placement, err := corpus.InjectInto(noisy, size, window)
	if err != nil {
		return err
	}
	opts := adiv.DefaultEvalOptions()
	opts.Scheduler = sched
	opts.Progress = prog
	opts.Checkpoint = ckpt
	opts.ShardIndex, opts.ShardCount = obsRun.Shard()
	fmt.Fprintln(w, "cutoff,capable_cells,false_alarms_on_rare_data")
	for _, cutoff := range []float64{0.0001, 0.001, 0.005, 0.02, 0.1} {
		factory := func(dw int) (adiv.Detector, error) { return adiv.NewTStide(dw, cutoff) }
		// Each cutoff rebuilds the "tstide" map; the journal key carries the
		// cutoff so the points' (window, size) cells cannot collide.
		opts.CheckpointKey = fmt.Sprintf("tstide[cutoff=%g]", cutoff)
		m, err := corpus.PerformanceMapObserved("tstide", factory, opts, metrics)
		if err != nil {
			return err
		}
		det, err := adiv.NewTStide(window, cutoff)
		if err != nil {
			return err
		}
		if err := adiv.TrainWithCorpus(det, corpus.TrainingDBs()); err != nil {
			return err
		}
		stats, err := adiv.AssessAlarms(det, placement, adiv.StrictThreshold)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%.4f,%d,%d\n", cutoff, m.CountOutcome(adiv.OutcomeCapable), stats.FalseAlarms)
	}
	return nil
}
