package main

import (
	"strings"
	"testing"
)

func TestRunBadFlags(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-nosuch"}); err == nil {
		t.Errorf("unknown flag accepted")
	}
}

func TestRunUnknownMode(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus build skipped in -short mode")
	}
	var sb strings.Builder
	if err := run(&sb, []string{"-mode", "nosuch"}); err == nil {
		t.Errorf("unknown mode accepted")
	}
}

func TestRunCutoffSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("cutoff sweep skipped in -short mode")
	}
	var sb strings.Builder
	if err := run(&sb, []string{"-mode", "cutoff"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "cutoff,capable_cells,false_alarms_on_rare_data") {
		t.Errorf("missing CSV header:\n%s", out)
	}
	if !strings.Contains(out, "0.0050,112,") {
		t.Errorf("missing the full-coverage row at the classic cutoff:\n%s", out)
	}
}

func TestRunProfileMode(t *testing.T) {
	if testing.Short() {
		t.Skip("profile mode skipped in -short mode")
	}
	var sb strings.Builder
	if err := run(&sb, []string{"-mode", "profile"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"== stide on", "== markov on", "response profile:"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestRunHMMStatesSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("hmm sweep skipped in -short mode")
	}
	var sb strings.Builder
	if err := run(&sb, []string{"-mode", "hmm"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "states,max_background_response") {
		t.Errorf("missing CSV header:\n%s", out)
	}
	// The well-sized model tracks the background down to the excursion
	// mass (~3%).
	if !strings.Contains(out, "10,0.0") {
		t.Errorf("10-state row missing or off:\n%s", out)
	}
}

func TestRunThresholdSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus build skipped in -short mode")
	}
	var sb strings.Builder
	if err := run(&sb, []string{"-mode", "threshold", "-trials", "2"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "detector,threshold,hit_rate,false_alarm_rate") {
		t.Errorf("missing CSV header:\n%s", out)
	}
	if !strings.Contains(out, "# stide AUC") {
		t.Errorf("missing AUC line:\n%s", out)
	}
}
