// Command serve runs the multi-tenant streaming detection daemon: thousands
// of concurrent symbol streams, each scored by its own trained detector
// instance, routed across worker shards with bounded queues and explicit
// backpressure.
//
// Usage:
//
//	serve [-http ADDR] [-tcp ADDR] [-detector FAMILY] [-window N]
//	      [-threshold T] [-veto FAMILY] [-veto-window N] [-veto-threshold T]
//	      [-shards N] [-queue N] [-max-batch N] [-train-len N] [-quick]
//	      [-metrics-out FILE] [-progress] [-status ADDR] [-alerts FILE]
//	      [-trace FILE] [-cpuprofile FILE] [-memprofile FILE]
//
// Two transports share one scoring core. POST /v1/push accepts NDJSON lines
// ({"tenant":"t0","symbols":[1,2,3]}), one response line per request; the
// -tcp listener speaks the compact length-prefixed framing in
// internal/serve for load-generator throughput. A tenant's detector is
// created on first contact (trained against a shared corpus cache, so the
// marginal cost is one model allocation) and retired to a pool when the
// tenant closes.
//
// Backpressure is explicit: a tenant whose shard queue is full receives
// HTTP 429 or a Busy frame immediately — the daemon never buffers
// unboundedly. On SIGTERM/SIGINT the daemon drains: intake stops (503 /
// Busy "draining"), every accepted batch is scored, responses are
// delivered, then the observation stack flushes (alert journal, metrics
// snapshot, trace export) and the process exits 0 printing the clean-drain
// invariant (accepted == scored).
//
// With -alerts FILE every threshold crossing is journaled per tenant as
// NDJSON (schema adiv.alerts/v1), served live at /alertz under -status, and
// the detector-health watchdog arms. With -veto the per-tenant unit is the
// Section-7 corroboration pipeline instead: alarms are escalations, and the
// journal carries full raised/escalated/suppressed dispositions.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"adiv"
	"adiv/internal/gen"
	"adiv/internal/obs"
	"adiv/internal/online"
	"adiv/internal/runflags"
	"adiv/internal/seq"
	"adiv/internal/serve"
)

func main() {
	stop := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		<-sig
		signal.Stop(sig) // a second signal kills the process
		close(stop)
	}()
	if err := run(os.Stdout, os.Args[1:], stop); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

// statusTick is how often the live tenant/throughput counters are published
// to /runz.
const statusTick = 500 * time.Millisecond

func run(w io.Writer, args []string, stop <-chan struct{}) (err error) {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	httpAddr := fs.String("http", "127.0.0.1:8400", "NDJSON ingest listener address (:0 picks a free port, announced as httpAddr in run.start)")
	tcpAddr := fs.String("tcp", "", "optional frame-protocol listener address (:0 picks a free port, announced as tcpAddr)")
	detName := fs.String("detector", adiv.DetectorStide, "detector family per tenant (stide, markov, lb, nn, tstide)")
	window := fs.Int("window", 6, "detector window")
	threshold := fs.Float64("threshold", 1.0, "alarm threshold in (0,1]; 0 serves raw responses without alarming")
	vetoName := fs.String("veto", "", "veto detector family; enables the corroboration pipeline (alarms become escalations)")
	vetoWindow := fs.Int("veto-window", 0, "veto detector window (default: -window)")
	vetoThreshold := fs.Float64("veto-threshold", 1.0, "veto alarm threshold in (0,1]")
	shards := fs.Int("shards", runtime.NumCPU(), "scoring worker shards; each tenant is pinned to one")
	queue := fs.Int("queue", 128, "bounded per-shard queue depth; a full queue rejects with 429/Busy")
	maxBatch := fs.Int("max-batch", 8192, "largest accepted batch, in events")
	trainLen := fs.Int("train-len", 0, "training stream length (0: paper-faithful, or the -quick reduction)")
	quick := fs.Bool("quick", false, "reduced training stream for fast startup")
	obsFlags := runflags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := gen.DefaultConfig()
	if *quick {
		cfg.TrainLen = 50_000
	}
	if *trainLen > 0 {
		cfg.TrainLen = *trainLen
	}
	g, err := gen.New(cfg)
	if err != nil {
		return err
	}

	obsRun, err := obsFlags.Start(os.Stderr)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := obsRun.Close(); err == nil {
			err = cerr
		}
	}()

	fmt.Fprintf(w, "training corpus (%d symbols)...\n", cfg.TrainLen)
	obsRun.Progress().SetPhase("corpus")
	corpus := seq.NewCorpus(g.Training())
	factory, err := tenantFactory(corpus, *detName, *window, *threshold, *vetoName, *vetoWindow, *vetoThreshold, obsRun.Alerts())
	if err != nil {
		return err
	}

	srv, err := serve.NewServer(serve.Config{
		Shards:       *shards,
		QueueDepth:   *queue,
		MaxBatch:     *maxBatch,
		AlphabetSize: g.Alphabet().Size(),
		NewTenant:    factory,
		Registry:     obsRun.Metrics,
	})
	if err != nil {
		return err
	}

	httpLn, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		return fmt.Errorf("binding -http %s: %w", *httpAddr, err)
	}
	httpSrv := &http.Server{Handler: serve.NewHTTPHandler(srv)}
	httpErr := make(chan error, 1)
	go func() {
		if serr := httpSrv.Serve(httpLn); serr != nil && serr != http.ErrServerClosed {
			httpErr <- serr
		}
	}()

	var tcpSrv *serve.TCPServer
	tcpErr := make(chan error, 1)
	announced := obs.Fields{
		"cmd":       "serve",
		"httpAddr":  httpLn.Addr().String(),
		"detector":  *detName,
		"window":    *window,
		"threshold": *threshold,
		"veto":      *vetoName,
		"shards":    srv.Shards(),
		"queue":     *queue,
		"trainLen":  cfg.TrainLen,
	}
	if *tcpAddr != "" {
		tcpLn, err := net.Listen("tcp", *tcpAddr)
		if err != nil {
			return fmt.Errorf("binding -tcp %s: %w", *tcpAddr, err)
		}
		tcpSrv = serve.NewTCPServer(srv, tcpLn)
		announced["tcpAddr"] = tcpSrv.Addr().String()
		go func() {
			if serr := tcpSrv.Serve(); serr != nil {
				tcpErr <- serr
			}
		}()
	}
	obsRun.Announce("run.start", announced)
	fmt.Fprintf(w, "serving: http %s", httpLn.Addr())
	if tcpSrv != nil {
		fmt.Fprintf(w, ", tcp %s", tcpSrv.Addr())
	}
	fmt.Fprintf(w, " (%d shards, queue %d)\n", srv.Shards(), *queue)

	// Publish live serving counters to /runz until shutdown.
	obsRun.Progress().SetPhase("serving")
	tickStop := make(chan struct{})
	tickDone := make(chan struct{})
	go func() {
		defer close(tickDone)
		tick := time.NewTicker(statusTick)
		defer tick.Stop()
		for {
			select {
			case <-tickStop:
				return
			case <-tick.C:
				publishStats(obsRun.Progress(), srv.Stats())
			}
		}
	}()

	select {
	case <-stop:
		fmt.Fprintln(w, "signal received, draining...")
	case err := <-httpErr:
		return fmt.Errorf("http listener: %w", err)
	case err := <-tcpErr:
		return fmt.Errorf("tcp listener: %w", err)
	}

	// Drain ordering: stop intake (both transports refuse new work and
	// their in-flight requests complete), flush the shard queues so every
	// accepted batch is scored, then let obsRun.Close (deferred) flush the
	// alert journal, metrics snapshot, and trace. Zero accepted events are
	// lost: the invariant below is checked, not assumed.
	obsRun.Progress().SetPhase("draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if serr := httpSrv.Shutdown(shutCtx); serr != nil {
		fmt.Fprintf(w, "http shutdown: %v\n", serr)
	}
	if tcpSrv != nil {
		tcpSrv.Shutdown()
	}
	stats := srv.Drain()
	close(tickStop)
	<-tickDone
	publishStats(obsRun.Progress(), stats)

	if stats.Accepted != stats.Scored {
		return fmt.Errorf("drain lost events: accepted %d != scored %d", stats.Accepted, stats.Scored)
	}
	fmt.Fprintf(w, "clean drain: %d accepted == %d scored (%d alarms, %d busy rejections)\n",
		stats.Accepted, stats.Scored, stats.Alarms, stats.Busy)
	obsRun.Announce("serve.drained", obs.Fields{
		"accepted": stats.Accepted,
		"scored":   stats.Scored,
		"alarms":   stats.Alarms,
		"busy":     stats.Busy,
	})
	return nil
}

func publishStats(p *obs.Progress, stats serve.Stats) {
	p.SetExtra(obs.Fields{
		"tenants":  stats.Tenants,
		"accepted": stats.Accepted,
		"scored":   stats.Scored,
		"alarms":   stats.Alarms,
		"busy":     stats.Busy,
	})
}

// tenantFactory builds the per-tenant scoring unit: a raw Scorer
// (threshold 0), a journaling Alarmer, or — with a veto family — the full
// corroboration pipeline. Every unit trains against the shared corpus, so
// per-width sequence databases are built once and reused across tenants.
func tenantFactory(corpus *seq.Corpus, detName string, window int, threshold float64,
	vetoName string, vetoWindow int, vetoThreshold float64, journal *obs.AlertJournal) (func() (serve.TenantScorer, error), error) {
	if threshold < 0 || threshold > 1 {
		return nil, fmt.Errorf("threshold %v outside [0,1]", threshold)
	}
	if vetoWindow == 0 {
		vetoWindow = window
	}
	newTrained := func(name string, win int) (adiv.Detector, error) {
		det, err := adiv.NewDetector(name, win)
		if err != nil {
			return nil, err
		}
		if err := adiv.TrainWithCorpus(det, corpus); err != nil {
			return nil, err
		}
		return det, nil
	}
	// Validate eagerly so a bad flag fails at startup, not on first tenant.
	if _, err := newTrained(detName, window); err != nil {
		return nil, err
	}
	if vetoName != "" {
		if _, err := newTrained(vetoName, vetoWindow); err != nil {
			return nil, fmt.Errorf("veto: %w", err)
		}
		if threshold <= 0 {
			return nil, fmt.Errorf("-veto requires a positive -threshold")
		}
		return func() (serve.TenantScorer, error) {
			primary, err := newTrained(detName, window)
			if err != nil {
				return nil, err
			}
			veto, err := newTrained(vetoName, vetoWindow)
			if err != nil {
				return nil, err
			}
			p, err := online.NewVetoPipeline(primary, veto, threshold, vetoThreshold)
			if err != nil {
				return nil, err
			}
			p.SetJournal(journal)
			return serve.PipelineTenant{P: p}, nil
		}, nil
	}
	if threshold > 0 {
		return func() (serve.TenantScorer, error) {
			det, err := newTrained(detName, window)
			if err != nil {
				return nil, err
			}
			a, err := online.NewAlarmer(det, threshold)
			if err != nil {
				return nil, err
			}
			a.SetJournal(journal)
			return serve.AlarmerTenant{A: a}, nil
		}, nil
	}
	return func() (serve.TenantScorer, error) {
		det, err := newTrained(detName, window)
		if err != nil {
			return nil, err
		}
		s, err := online.NewScorer(det)
		if err != nil {
			return nil, err
		}
		return serve.ScorerTenant{S: s}, nil
	}, nil
}
