package main

import (
	"reflect"
	"testing"
)

func TestStripFlags(t *testing.T) {
	tests := []struct {
		name string
		in   []string
		want []string
	}{
		{
			"separate values",
			[]string{"-quick", "-fanout", "3", "-checkpoint", "dir", "-status", ":0"},
			[]string{"-quick", "-checkpoint", "dir"},
		},
		{
			"equals form",
			[]string{"-fanout=3", "-csv", "-metrics-out=m.json", "-j", "4"},
			[]string{"-csv", "-j", "4"},
		},
		{
			"double dash",
			[]string{"--fanout", "3", "--trace", "t.json", "--progress"},
			[]string{"--progress"},
		},
		{
			"boolean before positional stays intact",
			[]string{"-shard", "2/3", "-quick"},
			[]string{"-quick"},
		},
		{
			"nothing to strip",
			[]string{"-quick", "-csv", "-j", "2"},
			[]string{"-quick", "-csv", "-j", "2"},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := stripFlags(tc.in, perProcessFlags, boolFlags)
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("stripFlags(%v) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

// TestStripFlagsBooleanValueless pins the valueless set: stripping a boolean
// flag must not swallow the argument after it.
func TestStripFlagsBooleanValueless(t *testing.T) {
	got := stripFlags([]string{"-resume", "-checkpoint", "dir"},
		map[string]bool{"resume": true}, boolFlags)
	want := []string{"-checkpoint", "dir"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("stripFlags = %v, want %v", got, want)
	}
}

func TestRunFanoutValidation(t *testing.T) {
	if err := run(discard{}, []string{"-fanout", "3"}); err == nil {
		t.Error("fanout without -checkpoint accepted")
	}
	if err := run(discard{}, []string{"-fanout", "3", "-checkpoint", t.TempDir(), "-shard", "1/3"}); err == nil {
		t.Error("-fanout combined with -shard accepted")
	}
	if err := run(discard{}, []string{"-fanout", "-2", "-checkpoint", t.TempDir()}); err == nil {
		t.Error("negative -fanout accepted")
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
