package main

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"adiv/internal/checkpoint"
	"adiv/internal/runflags"
)

// perProcessFlags are the runtime flags that must not be forwarded to fanout
// workers: each names a per-process resource (a listen address, an output
// file) that N workers would fight over, or is the fanout control itself.
// Workers that need them can be launched by hand with explicit -shard flags.
var perProcessFlags = map[string]bool{
	"fanout":      true,
	"shard":       true,
	"status":      true,
	"metrics-out": true,
	"cpuprofile":  true,
	"memprofile":  true,
	"trace":       true,
}

// stripFlags removes the named flags (with their values) from a parsed
// argument list, handling the forms -name value, -name=value, and --name.
// valueless marks flags that never consume a following argument (booleans).
func stripFlags(args []string, names map[string]bool, valueless map[string]bool) []string {
	out := make([]string, 0, len(args))
	for i := 0; i < len(args); i++ {
		arg := args[i]
		name, hasValue := "", false
		if strings.HasPrefix(arg, "-") {
			name = strings.TrimLeft(arg, "-")
			if eq := strings.IndexByte(name, '='); eq >= 0 {
				name, hasValue = name[:eq], true
			}
		}
		if name != "" && names[name] {
			if !hasValue && !valueless[name] && i+1 < len(args) {
				i++ // the flag's value travels with it
			}
			continue
		}
		out = append(out, arg)
	}
	return out
}

// boolFlags are the perfmap flags that never take a separate value argument;
// stripFlags needs to know them so it doesn't swallow the argument after a
// stripped boolean.
var boolFlags = map[string]bool{
	"quick": true, "csv": true, "json": true, "progress": true, "resume": true,
}

// runFanout is the -fanout N coordinator: it re-executes this binary N times
// with -shard i/N (each worker evaluating its slice of the grid into
// DIR/shard-i-of-N/grid.journal), waits for all workers, merges the shard
// journals into DIR/grid.journal with conflict detection, and finally renders
// the figures in-process from the merged journal via -resume. The final
// rendering pass replays every cell bit-identically, so fanout output on
// stdout matches a serial run's byte for byte (coordination narration goes to
// stderr).
func runFanout(w io.Writer, args []string, n int, f *runflags.Flags) error {
	if n < 1 {
		return fmt.Errorf("-fanout %d: need at least 1 worker", n)
	}
	if f.Checkpoint == "" {
		return fmt.Errorf("-fanout requires -checkpoint DIR (the workers rendezvous through their shard journals)")
	}
	if f.Shard != "" {
		return fmt.Errorf("-fanout and -shard are mutually exclusive: fanout assigns shards itself")
	}
	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("locating worker binary: %w", err)
	}

	workerArgs := stripFlags(args, perProcessFlags, boolFlags)
	type worker struct {
		index int
		cmd   *exec.Cmd
		log   *os.File
	}
	var workers []worker
	var srcs []string
	for i := 1; i <= n; i++ {
		shardDir := filepath.Join(f.Checkpoint, checkpoint.ShardDirName(i, n))
		if err := os.MkdirAll(shardDir, 0o755); err != nil {
			return err
		}
		srcs = append(srcs, filepath.Join(shardDir, checkpoint.JournalFile))
		// -resume lets a re-run fanout continue partially-journaled shards
		// instead of refusing them.
		cargs := append(append([]string(nil), workerArgs...),
			"-shard", fmt.Sprintf("%d/%d", i, n), "-resume")
		log, err := os.Create(filepath.Join(shardDir, "worker.log"))
		if err != nil {
			return err
		}
		cmd := exec.Command(exe, cargs...)
		cmd.Stdout = log
		cmd.Stderr = log
		if err := cmd.Start(); err != nil {
			log.Close()
			return fmt.Errorf("starting worker %d/%d: %w", i, n, err)
		}
		fmt.Fprintf(os.Stderr, "perfmap: fanout worker %d/%d started (pid %d, log %s)\n",
			i, n, cmd.Process.Pid, log.Name())
		workers = append(workers, worker{index: i, cmd: cmd, log: log})
	}

	var failed []string
	for _, wk := range workers {
		err := wk.cmd.Wait()
		wk.log.Close()
		if err != nil {
			failed = append(failed, fmt.Sprintf("worker %d/%d: %v (see %s)", wk.index, n, err, wk.log.Name()))
			continue
		}
		fmt.Fprintf(os.Stderr, "perfmap: fanout worker %d/%d finished\n", wk.index, n)
	}
	if len(failed) > 0 {
		return fmt.Errorf("fanout workers failed:\n  %s", strings.Join(failed, "\n  "))
	}

	dst := filepath.Join(f.Checkpoint, checkpoint.JournalFile)
	stats, err := checkpoint.Merge(dst, srcs)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "perfmap: merged %d shard journals into %s: %d cells", stats.Shards, dst, stats.Cells)
	if stats.Duplicates > 0 || stats.Superseded > 0 || stats.TornBytes > 0 {
		fmt.Fprintf(os.Stderr, " (%d duplicates, %d superseded, %d torn bytes dropped)",
			stats.Duplicates, stats.Superseded, stats.TornBytes)
	}
	fmt.Fprintln(os.Stderr)

	// Final render: the same invocation minus -fanout, resuming from the
	// merged journal. Every cell replays, so -j no longer affects the bytes.
	renderArgs := append(stripFlags(args, map[string]bool{"fanout": true, "resume": true}, boolFlags), "-resume")
	return run(w, renderArgs)
}
