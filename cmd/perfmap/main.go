// Command perfmap regenerates the paper's figures: the incident-span
// diagram (Figure 2), the four detector performance maps (Figures 3-6), and
// the Lane & Brodley similarity walkthrough (Figure 7).
//
// Usage:
//
//	perfmap [flags]
//
//	-figure N        regenerate only figure N (2-7); default all
//	-detector name   regenerate only this detector's map (lb|markov|stide|nn)
//	-regime name     classification regime: strict (threshold 1, default)
//	                 or rare (count strong rare-sequence responses as hits)
//	-quick           use the reduced configuration (fast; identical shapes)
//	-csv             additionally emit each map as CSV to stdout
//	-metrics-out F   write a JSON metrics snapshot (corpus-build duration,
//	                 per-detector training durations, scoring throughput,
//	                 per-cell evaluation timing) to F at exit
//	-progress        emit NDJSON progress events to stderr during grid runs
//	-status ADDR     serve live introspection on ADDR while the run is in
//	                 flight: /metrics (Prometheus text, histograms and
//	                 quantile-sketch summaries included), /runz (JSON grid
//	                 progress + ETA + sketch quantiles), /eventz (recent
//	                 events), /alertz (alert-journal tail, with -alerts),
//	                 /tracez (live span timeline stats), /healthz,
//	                 /debug/pprof; :0 picks a free port, announced as
//	                 statusAddr in the run.start event
//	-trace F         record per-event execution spans (corpus synthesis,
//	                 per-window trainings, every grid cell with its worker
//	                 lane) and write a Chrome trace_event JSON file to F at
//	                 exit; open it in Perfetto (ui.perfetto.dev) or feed it
//	                 to `diagnose -trace F` for critical-path analysis
//	-alerts F        journal streaming alarm dispositions to F as NDJSON
//	                 (schema adiv.alerts/v1) and arm the detector-health
//	                 watchdog; mainly useful under ensemble, which replays
//	                 a stream through the veto pipeline — analyze with
//	                 `diagnose -alerts F`
//	-cpuprofile F / -memprofile F   write runtime/pprof profiles
//	-j N             bound concurrent grid work (default runtime.NumCPU);
//	                 one pool is shared across all maps of the run
//	-checkpoint DIR  journal every completed grid cell to DIR/grid.journal
//	                 so a crashed or interrupted run can pick up where it
//	                 stopped
//	-resume          continue the journal in -checkpoint DIR: journaled
//	                 cells replay bit-identically (fully journaled rows
//	                 skip training outright), remaining cells run live;
//	                 refused if the journal was written under different
//	                 parameters
//	-shard i/N       evaluate only shard i of an N-way grid partition (a
//	                 deterministic hash of each cell's coordinates),
//	                 journaling to DIR/shard-i-of-N/grid.journal; N such
//	                 workers — processes or machines sharing nothing but
//	                 the configuration — cover the grid exactly once
//	-fanout N        run the whole distributed pipeline locally: spawn N
//	                 -shard workers, wait, merge their journals into
//	                 DIR/grid.journal (refusing conflicting duplicate
//	                 cells), and render the figures from the merged
//	                 journal — stdout is byte-identical to a serial run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"adiv"
	"adiv/internal/runflags"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "perfmap:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) (err error) {
	fs := flag.NewFlagSet("perfmap", flag.ContinueOnError)
	figure := fs.Int("figure", 0, "regenerate only this figure (2-7); 0 means all")
	detName := fs.String("detector", "", "regenerate only this detector's map (lb|markov|stide|nn)")
	regime := fs.String("regime", "strict", "classification regime: strict or rare")
	quick := fs.Bool("quick", false, "use the reduced configuration")
	csv := fs.Bool("csv", false, "additionally emit maps as CSV")
	asJSON := fs.Bool("json", false, "additionally emit maps as JSON")
	fanout := fs.Int("fanout", 0, "spawn N local worker processes, each evaluating one shard of the grid into -checkpoint DIR/shard-i-of-N, then merge the shard journals and render the maps from the merged journal; requires -checkpoint")
	obsFlags := runflags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *fanout != 0 {
		// The fanout coordinator branches before Start: the final rendering
		// pass it ends with re-enters run() and performs the one Start (and
		// -status bind, profile capture, ...) of this process.
		return runFanout(w, args, *fanout, obsFlags)
	}

	cfg := adiv.DefaultConfig()
	if *quick {
		cfg = adiv.QuickConfig()
	}

	obsRun, err := obsFlags.Start(os.Stderr)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := obsRun.Close(); err == nil {
			err = cerr
		}
	}()
	obsRun.Announce("run.start", adiv.EventFields{
		"cmd":      "perfmap",
		"quick":    *quick,
		"trainLen": cfg.Gen.TrainLen,
		"windows":  fmt.Sprintf("%d-%d", cfg.MinWindow, cfg.MaxWindow),
		"sizes":    fmt.Sprintf("%d-%d", cfg.MinSize, cfg.MaxSize),
		"regime":   *regime,
		"jobs":     obsRun.Scheduler().Workers(),
	})

	// Figure 7 needs no corpus.
	if *figure == 7 {
		return writeFigure7(w)
	}

	fmt.Fprintf(w, "building corpus (training length %d)...\n", cfg.Gen.TrainLen)
	obsRun.Progress().SetPhase("corpus")
	corpus, err := adiv.BuildCorpusObserved(cfg, obsRun.Metrics)
	if err != nil {
		return err
	}
	obsRun.Progress().SetPhase("grid")

	figures := map[int]string{3: adiv.DetectorLaneBrodley, 4: adiv.DetectorMarkov, 5: adiv.DetectorStide, 6: adiv.DetectorNeuralNet}
	wantFigure := func(n int) bool { return *figure == 0 || *figure == n }

	// The journal fingerprint pins exactly what this invocation evaluates:
	// the selected detector set and regime join the corpus parameters, so a
	// -detector stide journal never leaks cells into a full run (or vice
	// versa) and a -regime rare journal never resumes a strict one.
	var selected []string
	for _, n := range []int{3, 4, 5, 6} {
		if name := figures[n]; wantFigure(n) && (*detName == "" || *detName == name) {
			selected = append(selected, name)
		}
	}
	ckpt, err := obsRun.OpenJournal(corpus.Fingerprint("perfmap", selected, "regime="+*regime))
	if err != nil {
		return err
	}

	if wantFigure(2) && *detName == "" {
		if err := writeFigure2(w, corpus); err != nil {
			return err
		}
	}
	for _, n := range []int{3, 4, 5, 6} {
		name := figures[n]
		if !wantFigure(n) || (*detName != "" && *detName != name) {
			continue
		}
		factory, opts, err := adiv.DetectorFactory(name)
		if err != nil {
			return err
		}
		if *regime == "rare" && name != adiv.DetectorNeuralNet {
			opts = adiv.RareSensitiveEvalOptions()
		}
		// All maps of the run evaluate on one -j-bounded pool, report into
		// one progress tracker (what -status serves as /runz), and journal
		// into one checkpoint (nil without -checkpoint).
		opts.Scheduler = obsRun.Scheduler()
		opts.Progress = obsRun.Progress()
		opts.Checkpoint = ckpt
		opts.ShardIndex, opts.ShardCount = obsRun.Shard()
		m, err := corpus.PerformanceMapObserved(name, factory, opts, obsRun.Metrics)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\nFigure %d —", n)
		if err := adiv.WriteMap(w, m); err != nil {
			return err
		}
		if *csv {
			if err := adiv.WriteMapCSV(w, m); err != nil {
				return err
			}
		}
		if *asJSON {
			data, err := json.Marshal(m)
			if err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s\n", data); err != nil {
				return err
			}
		}
	}
	// One corpus feeds every map: each width's training database is built
	// at most once and shared across stide/tstide/lb/markov/nn rows.
	hits, misses := corpus.TrainingDBs().Stats()
	fmt.Fprintf(w, "\ntraining-DB cache: %d databases built, %d reuses\n", misses, hits)
	obsRun.Announce("corpus.cache", adiv.EventFields{"built": misses, "reused": hits})

	if wantFigure(7) && *detName == "" && *figure == 0 {
		return writeFigure7(w)
	}
	return nil
}

func writeFigure2(w io.Writer, corpus *adiv.Corpus) error {
	const size, width = 8, 5 // the paper's Figure 2 parameters
	p, ok := corpus.Placements[size]
	if !ok {
		return fmt.Errorf("corpus has no size-%d placement", size)
	}
	fmt.Fprintln(w, "\nFigure 2 — boundary sequences and incident span")
	return adiv.WriteIncidentSpan(w, adiv.EvaluationAlphabet(), p, width)
}

func writeFigure7(w io.Writer) error {
	// The paper's shell-command example: two identical size-5 sequences,
	// then a pair differing only in the final element.
	names := []string{"cd", "<1>", "ls", "laf", "tar"}
	a := adiv.EvaluationAlphabet()
	normal := adiv.Stream{0, 1, 2, 3, 4}
	foreign := adiv.Stream{0, 1, 2, 3, 0} // last element mismatches
	fmt.Fprintln(w, "\nFigure 7 — Lane & Brodley similarity calculation")
	fmt.Fprintf(w, "(symbols stand for the paper's commands %v)\n", names)

	weights, total, err := adiv.LBSimilarityWeights(normal, normal)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "identical sequences:")
	if err := adiv.WriteSimilarity(w, a, normal, normal, weights, total, adiv.LBMaxSimilarity(len(normal))); err != nil {
		return err
	}
	weights, total, err = adiv.LBSimilarityWeights(normal, foreign)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "normal vs foreign (final element differs):")
	return adiv.WriteSimilarity(w, a, normal, foreign, weights, total, adiv.LBMaxSimilarity(len(normal)))
}
