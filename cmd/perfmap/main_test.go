package main

import (
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"adiv/internal/obs"
)

func TestRunBadFlags(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-nosuch"}); err == nil {
		t.Errorf("unknown flag accepted")
	}
}

func TestRunFigure7(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-figure", "7"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"similarity 15 of maximum 15", "similarity 10 of maximum 15"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunJobsInvariance pins the -j contract end to end: the rendered maps
// are byte-identical whether the grid evaluates on one worker or many.
func TestRunJobsInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus build skipped in -short mode")
	}
	build := func(jobs string) string {
		var sb strings.Builder
		if err := run(&sb, []string{"-quick", "-figure", "5", "-csv", "-j", jobs}); err != nil {
			t.Fatalf("run -j %s: %v", jobs, err)
		}
		return sb.String()
	}
	serial := build("1")
	parallel := build(strconv.Itoa(runtime.NumCPU() + 2))
	if serial != parallel {
		t.Errorf("output differs between -j 1 and -j %d:\n--- j=1 ---\n%s\n--- parallel ---\n%s",
			runtime.NumCPU()+2, serial, parallel)
	}
}

func TestRunSingleDetectorQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus build skipped in -short mode")
	}
	var sb strings.Builder
	if err := run(&sb, []string{"-quick", "-figure", "5", "-csv"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "Performance map: stide") {
		t.Errorf("missing map header:\n%s", out)
	}
	if !strings.Contains(out, "stide,2,2,capable") {
		t.Errorf("missing CSV row:\n%s", out)
	}
}

// stripCacheLine drops the training-DB cache summary from driver output: a
// fully resumed run trains nothing, so its cache counters legitimately
// differ from an uninterrupted run's while every map byte stays identical.
func stripCacheLine(out string) string {
	lines := strings.Split(out, "\n")
	kept := lines[:0]
	for _, l := range lines {
		if !strings.Contains(l, "training-DB cache") {
			kept = append(kept, l)
		}
	}
	return strings.Join(kept, "\n")
}

// TestRunCheckpointResume pins the driver-level resume-equivalence
// contract: a -resume run over a complete journal replays every cell and
// renders maps byte-identical to a run that never checkpointed — and the
// journal is refused under a changed configuration or a missing -resume.
func TestRunCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus build skipped in -short mode")
	}
	dir := t.TempDir()
	build := func(extra ...string) (string, error) {
		var sb strings.Builder
		args := append([]string{"-quick", "-figure", "5", "-csv", "-json", "-j", "2"}, extra...)
		err := run(&sb, args)
		return sb.String(), err
	}

	plain, err := build()
	if err != nil {
		t.Fatalf("uncheckpointed run: %v", err)
	}
	first, err := build("-checkpoint", dir)
	if err != nil {
		t.Fatalf("journaling run: %v", err)
	}
	if stripCacheLine(first) != stripCacheLine(plain) {
		t.Errorf("journaling changed the rendered output:\n--- plain ---\n%s\n--- journaled ---\n%s", plain, first)
	}

	// The journal exists now: continuing demands an explicit -resume, and a
	// differently configured invocation is refused even with it.
	if _, err := build("-checkpoint", dir); err == nil || !strings.Contains(err.Error(), "-resume") {
		t.Fatalf("re-run without -resume: err = %v, want a refusal naming -resume", err)
	}
	var sb strings.Builder
	err = run(&sb, []string{"-quick", "-figure", "4", "-j", "2", "-checkpoint", dir, "-resume"})
	if err == nil || !strings.Contains(err.Error(), "different configuration") {
		t.Fatalf("mismatched resume: err = %v, want a different-configuration refusal", err)
	}

	resumed, err := build("-checkpoint", dir, "-resume")
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if stripCacheLine(resumed) != stripCacheLine(plain) {
		t.Errorf("resumed output differs from uninterrupted run:\n--- plain ---\n%s\n--- resumed ---\n%s", plain, resumed)
	}
}

// TestRunStatusWithMemProfile runs the driver with both -status and
// -memprofile set: the run must succeed, write a non-empty heap profile,
// and shut the status server down cleanly (the teardown-ordering contract
// runflags pins in detail; this is the end-to-end driver check).
func TestRunStatusWithMemProfile(t *testing.T) {
	mem := filepath.Join(t.TempDir(), "mem.pprof")
	var sb strings.Builder
	if err := run(&sb, []string{"-figure", "7", "-status", "127.0.0.1:0", "-memprofile", mem}); err != nil {
		t.Fatalf("run with -status and -memprofile: %v", err)
	}
	if st, err := os.Stat(mem); err != nil || st.Size() == 0 {
		t.Errorf("heap profile missing or empty (err=%v)", err)
	}
}

// TestRunStatusQuickGrid drives a real quick grid with the status server
// enabled: the run must complete cleanly and render the map unchanged.
// (The mid-run scrape behavior itself is pinned by the runflags and eval
// package tests; statusAddr goes to stderr, out of reach of run's writer.)
func TestRunStatusQuickGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus build skipped in -short mode")
	}
	var sb strings.Builder
	if err := run(&sb, []string{"-quick", "-figure", "5", "-status", "127.0.0.1:0"}); err != nil {
		t.Fatalf("run -quick -status: %v", err)
	}
	if !strings.Contains(sb.String(), "Performance map: stide") {
		t.Errorf("missing map header:\n%s", sb.String())
	}
}

// TestRunTraceExport drives -trace end to end: a quick grid run must export
// a readable Chrome trace whose span timeline carries every grid cell with
// its worker lane and detector attributes.
func TestRunTraceExport(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus build skipped in -short mode")
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	var sb strings.Builder
	if err := run(&sb, []string{"-quick", "-figure", "5", "-j", "2", "-trace", path}); err != nil {
		t.Fatalf("run -trace: %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	defer f.Close()
	meta, spans, err := obs.ReadChromeTrace(f)
	if err != nil {
		t.Fatalf("exported trace unreadable: %v", err)
	}
	if meta.Schema != obs.TraceSchemaVersion {
		t.Errorf("schema = %q", meta.Schema)
	}
	rep := obs.AnalyzeTrace(spans, 5)
	// Figure 5 is stide's full grid: 8 sizes x 14 windows.
	if rep.CellSpans != 112 {
		t.Errorf("cell spans = %d, want 112", rep.CellSpans)
	}
	if len(rep.Lanes) == 0 || rep.CriticalTotal <= 0 {
		t.Errorf("analysis degenerate: lanes=%d critical=%v", len(rep.Lanes), rep.CriticalTotal)
	}
	var foundCorpus, foundTrain bool
	for _, ev := range spans {
		switch {
		case ev.Name == "corpus/build":
			foundCorpus = true
		case strings.HasPrefix(ev.Name, "train/stide/"):
			foundTrain = true
		}
	}
	if !foundCorpus || !foundTrain {
		t.Errorf("timeline missing corpus/train spans (corpus=%v train=%v)", foundCorpus, foundTrain)
	}
}
