package main

import (
	"strings"
	"testing"
)

func TestRunBadFlags(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-nosuch"}); err == nil {
		t.Errorf("unknown flag accepted")
	}
}

func TestRunFigure7(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-figure", "7"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"similarity 15 of maximum 15", "similarity 10 of maximum 15"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSingleDetectorQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus build skipped in -short mode")
	}
	var sb strings.Builder
	if err := run(&sb, []string{"-quick", "-figure", "5", "-csv"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "Performance map: stide") {
		t.Errorf("missing map header:\n%s", out)
	}
	if !strings.Contains(out, "stide,2,2,capable") {
		t.Errorf("missing CSV row:\n%s", out)
	}
}
