// Command serveload replays synthetic tenant streams against a running
// serve daemon and reports end-to-end throughput and latency.
//
// Usage:
//
//	serveload [-tcp ADDR | -addr ADDR] [-tenants N] [-events N] [-batch N]
//	          [-rate EVENTS/SEC] [-inject-size N] [-inject-pos P]
//	          [-window N] [-verify-journal FILE]
//	          [-metrics-out FILE] [-progress] [-status ADDR] ...
//
// Each tenant replays a deterministic noisy stream (the same generator the
// experiments use, seeded per tenant) with one canonical minimal-foreign
// sequence injected at a known position, so a journaling daemon must alarm
// there — -verify-journal checks exactly that after the run, per tenant,
// and exits nonzero if any tenant's injection went undetected.
//
// The -tcp transport (the daemon's frame protocol) is preferred for load;
// -addr drives the NDJSON HTTP endpoint instead. Busy rejections are
// retried with backoff and counted — backpressure is part of the protocol,
// not an error. Per-batch round-trip latency lands in a quantile sketch;
// the run prints achieved events/sec with p50/p95/p99.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"adiv/internal/gen"
	"adiv/internal/inject"
	"adiv/internal/obs"
	"adiv/internal/runflags"
	"adiv/internal/seq"
	"adiv/internal/serve"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "serveload:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) (err error) {
	fs := flag.NewFlagSet("serveload", flag.ContinueOnError)
	tcpAddr := fs.String("tcp", "", "serve daemon frame-protocol address (preferred)")
	httpAddr := fs.String("addr", "", "serve daemon HTTP address (host:port) for the NDJSON transport")
	tenants := fs.Int("tenants", 3, "concurrent tenant streams")
	events := fs.Int("events", 10_000, "events per tenant")
	batch := fs.Int("batch", 256, "events per request batch")
	rate := fs.Float64("rate", 0, "aggregate target events/sec across tenants (0: unpaced)")
	injectSize := fs.Int("inject-size", 6, "canonical minimal-foreign-sequence size injected per tenant (0: no injection)")
	injectPos := fs.Int("inject-pos", -1, "injection position in each tenant's stream (-1: midpoint)")
	window := fs.Int("window", 6, "daemon detector window, for the -verify-journal position slack")
	verify := fs.String("verify-journal", "", "after the run, require one journaled alarm per tenant at the injected position in this adiv.alerts/v1 file")
	obsFlags := runflags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*tcpAddr == "") == (*httpAddr == "") {
		return errors.New("exactly one of -tcp or -addr is required")
	}
	if *tenants < 1 || *events < 1 || *batch < 1 {
		return errors.New("-tenants, -events, and -batch must be positive")
	}

	obsRun, err := obsFlags.Start(os.Stderr)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := obsRun.Close(); err == nil {
			err = cerr
		}
	}()
	obsRun.Announce("run.start", obs.Fields{
		"cmd":     "serveload",
		"tenants": *tenants,
		"events":  *events,
		"batch":   *batch,
		"rate":    *rate,
	})

	g, err := gen.New(gen.DefaultConfig())
	if err != nil {
		return err
	}
	pos := *injectPos
	if pos < 0 {
		pos = *events / 2
	}
	if pos > *events {
		return fmt.Errorf("-inject-pos %d beyond -events %d", pos, *events)
	}
	streams := make([]seq.Stream, *tenants)
	for i := range streams {
		stream := g.Noisy(*events, uint64(i))
		if *injectSize > 0 {
			mfs, err := gen.CanonicalMFS(*injectSize)
			if err != nil {
				return err
			}
			p, err := inject.At(stream, mfs, pos)
			if err != nil {
				return err
			}
			stream = p.Stream
		}
		streams[i] = stream
	}

	// Latency lands in the run's registry when observation is on (served
	// under -status, snapshotted by -metrics-out), in a standalone sketch
	// otherwise.
	latency := obsRun.Metrics.Sketch("load/latency")
	if latency == nil {
		latency = obs.NewSketch()
	}
	perTenantRate := *rate / float64(*tenants)

	var sent, busyRetries atomic.Int64
	var wg sync.WaitGroup
	errs := make([]error, *tenants)
	obsRun.Progress().SetPhase("load")
	start := time.Now()
	for i := 0; i < *tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := fmt.Sprintf("load-%d", i)
			var c client
			var cerr error
			if *tcpAddr != "" {
				c, cerr = dialFrames(*tcpAddr)
			} else {
				c = &httpClient{base: "http://" + *httpAddr}
			}
			if cerr != nil {
				errs[i] = cerr
				return
			}
			defer c.close()
			errs[i] = drive(c, tenant, streams[i], *batch, perTenantRate, latency, &sent, &busyRetries)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for i, e := range errs {
		if e != nil {
			return fmt.Errorf("tenant %d: %w", i, e)
		}
	}

	total := sent.Load()
	eps := float64(total) / elapsed.Seconds()
	fmt.Fprintf(w, "%d tenants x %d events in %v: %.0f events/sec aggregate (%d busy retries)\n",
		*tenants, *events, elapsed.Round(time.Millisecond), eps, busyRetries.Load())
	fmt.Fprintf(w, "batch latency: p50 %s  p95 %s  p99 %s\n",
		durOf(latency.Quantile(0.50)), durOf(latency.Quantile(0.95)), durOf(latency.Quantile(0.99)))
	obsRun.Announce("load.done", obs.Fields{
		"events":       total,
		"eventsPerSec": eps,
		"busyRetries":  busyRetries.Load(),
		"p99Seconds":   latency.Quantile(0.99),
	})

	if *verify != "" {
		if *injectSize == 0 {
			return errors.New("-verify-journal requires -inject-size > 0")
		}
		obsRun.Progress().SetPhase("verify")
		if err := verifyJournal(w, *verify, *tenants, pos, *injectSize, *window); err != nil {
			return err
		}
	}
	return nil
}

func durOf(seconds float64) time.Duration {
	return time.Duration(seconds * float64(time.Second)).Round(time.Microsecond)
}

// client is one tenant's transport: push scores a batch (retrying busy
// rejections internally is the driver's job — push returns errBusy).
type client interface {
	push(tenant string, syms seq.Stream, closeAfter bool) error
	close()
}

var errBusy = errors.New("busy")

// drive replays one tenant's stream in batches, pacing to ratePerTenant
// events/sec (0: unpaced) by expected-elapsed sleep, observing per-batch
// round-trip latency.
func drive(c client, tenant string, stream seq.Stream, batch int, ratePerTenant float64, latency *obs.Sketch, sent, busyRetries *atomic.Int64) error {
	backoff := time.Millisecond
	pushed := 0
	start := time.Now()
	for off := 0; off < len(stream); {
		end := off + batch
		if end > len(stream) {
			end = len(stream)
		}
		closeAfter := end == len(stream)
		t0 := time.Now()
		err := c.push(tenant, stream[off:end], closeAfter)
		if errors.Is(err, errBusy) {
			busyRetries.Add(1)
			time.Sleep(backoff)
			if backoff < 64*time.Millisecond {
				backoff *= 2
			}
			continue
		}
		if err != nil {
			return err
		}
		latency.Observe(time.Since(t0).Seconds())
		backoff = time.Millisecond
		n := end - off
		off = end
		pushed += n
		sent.Add(int64(n))
		if ratePerTenant > 0 {
			expected := time.Duration(float64(pushed) / ratePerTenant * float64(time.Second))
			if ahead := expected - time.Since(start); ahead > 0 {
				time.Sleep(ahead)
			}
		}
	}
	return nil
}

// frameClient drives the daemon's TCP frame protocol synchronously: one
// quiet events frame, one ack.
type frameClient struct {
	conn net.Conn
	r    *bufio.Reader
	buf  []byte
}

func dialFrames(addr string) (client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &frameClient{conn: conn, r: bufio.NewReaderSize(conn, 64*1024)}, nil
}

func (c *frameClient) push(tenant string, syms seq.Stream, closeAfter bool) error {
	typ := uint8(serve.FrameEventsQuiet)
	if closeAfter {
		// Close scores the final batch and retires the tenant in one frame.
		typ = serve.FrameClose
	}
	body := make([]byte, len(syms))
	for i, s := range syms {
		body[i] = byte(s)
	}
	c.buf = serve.AppendFrame(c.buf[:0], serve.Frame{Type: typ, Tenant: tenant, Body: body})
	if _, err := c.conn.Write(c.buf); err != nil {
		return err
	}
	f, err := serve.ReadFrame(c.r, 0)
	if err != nil {
		return err
	}
	switch f.Type {
	case serve.FrameScores, serve.FrameClosed:
		accepted, _, _, err := serve.ParseScoresBody(f.Body)
		if err != nil {
			return err
		}
		if accepted != len(syms) {
			return fmt.Errorf("ack for %d of %d events", accepted, len(syms))
		}
		return nil
	case serve.FrameBusy:
		return errBusy
	case serve.FrameError:
		return fmt.Errorf("server error: %s", f.Body)
	default:
		return fmt.Errorf("unexpected frame type %d", f.Type)
	}
}

func (c *frameClient) close() { c.conn.Close() }

// httpClient drives the NDJSON endpoint, one request line per batch.
type httpClient struct {
	base string
	hc   http.Client
}

func (c *httpClient) push(tenant string, syms seq.Stream, closeAfter bool) error {
	req := serve.PushRequest{Tenant: tenant, Symbols: make([]int, len(syms)), Quiet: true, Close: closeAfter}
	for i, s := range syms {
		req.Symbols[i] = int(s)
	}
	line, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := c.hc.Post(c.base+"/v1/push", "application/x-ndjson", bytes.NewReader(append(line, '\n')))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests:
		return errBusy
	default:
		return fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	var ack serve.PushResponse
	if err := json.Unmarshal(bytes.TrimSpace(body), &ack); err != nil {
		return fmt.Errorf("bad response %q: %w", body, err)
	}
	if ack.Error != "" {
		return errors.New(ack.Error)
	}
	if ack.Accepted != len(syms) {
		return fmt.Errorf("ack for %d of %d events", ack.Accepted, len(syms))
	}
	return nil
}

func (c *httpClient) close() {}

// verifyJournal checks the daemon's alert journal for the injected
// anomalies: every tenant must have at least one raised or escalated record
// positioned within the injection's detection span (the anomaly plus one
// window of slack on each side — a window that overlaps the foreign content
// starts up to window-1 elements before it).
func verifyJournal(w io.Writer, path string, tenants, pos, size, window int) error {
	recs, err := obs.ReadAlertsFile(path)
	if err != nil {
		return err
	}
	lo, hi := pos-window, pos+size+window
	missing := 0
	for i := 0; i < tenants; i++ {
		tenant := fmt.Sprintf("load-%d", i)
		found := 0
		for _, rec := range recs {
			if rec.Tenant != tenant {
				continue
			}
			if rec.Disposition != obs.DispositionRaised && rec.Disposition != obs.DispositionEscalated {
				continue
			}
			if rec.Position >= lo && rec.Position <= hi {
				found++
			}
		}
		if found == 0 {
			fmt.Fprintf(w, "verify: tenant %s: NO alarm in [%d,%d]\n", tenant, lo, hi)
			missing++
		} else {
			fmt.Fprintf(w, "verify: tenant %s: %d alarms in [%d,%d]\n", tenant, found, lo, hi)
		}
	}
	if missing > 0 {
		return fmt.Errorf("verify: %d of %d tenants missed the injected anomaly", missing, tenants)
	}
	fmt.Fprintf(w, "verify: all %d tenants alarmed on the injected anomaly\n", tenants)
	return nil
}
