package main

import (
	"path/filepath"
	"strings"
	"testing"

	"adiv"
)

func TestRunBadFlags(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-nosuch"}); err == nil {
		t.Errorf("unknown flag accepted")
	}
}

// TestRunAlertsJournal: with -alerts the run replays the rare-containing
// stream through the streaming veto pipeline and the journal on disk carries
// the full disposition history — raised candidates resolved to escalated
// (the injected foreign anomaly) and suppressed (uncorroborated rare
// sequences), the same split the batch suppression analysis reports.
func TestRunAlertsJournal(t *testing.T) {
	if testing.Short() {
		t.Skip("full combination analysis skipped in -short mode")
	}
	path := filepath.Join(t.TempDir(), "alerts.ndjson")
	var sb strings.Builder
	if err := run(&sb, []string{"-quick", "-noisy", "6000", "-alerts", path}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if out := sb.String(); !strings.Contains(out, "== streaming alert replay") {
		t.Errorf("output missing the streaming replay section:\n%s", out)
	}
	recs, err := adiv.ReadAlertsFile(path)
	if err != nil {
		t.Fatalf("journal unreadable: %v", err)
	}
	byDisp := map[string]int{}
	for _, rec := range recs {
		if rec.Detector != "markov" {
			t.Errorf("journaled detector %q, want markov (the veto must not journal)", rec.Detector)
		}
		byDisp[rec.Disposition]++
	}
	if byDisp[adiv.DispositionRaised] == 0 || byDisp[adiv.DispositionEscalated] == 0 || byDisp[adiv.DispositionSuppressed] == 0 {
		t.Errorf("journal dispositions = %v, want all three represented", byDisp)
	}
	rep := adiv.AnalyzeAlerts(recs, adiv.AlertAnalysisOptions{})
	if len(rep.Families) != 1 || rep.Families[0].Score.Count == 0 {
		t.Errorf("analysis families = %+v", rep.Families)
	}
}

func TestRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full combination analysis skipped in -short mode")
	}
	var sb strings.Builder
	if err := run(&sb, []string{"-quick", "-noisy", "6000"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"markov coverage contains stide coverage: true",
		"cells lb adds over stide (the paper's null result): []",
		"false_alarms=0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}
