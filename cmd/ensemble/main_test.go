package main

import (
	"strings"
	"testing"
)

func TestRunBadFlags(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-nosuch"}); err == nil {
		t.Errorf("unknown flag accepted")
	}
}

func TestRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full combination analysis skipped in -short mode")
	}
	var sb strings.Builder
	if err := run(&sb, []string{"-quick", "-noisy", "6000"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"markov coverage contains stide coverage: true",
		"cells lb adds over stide (the paper's null result): []",
		"false_alarms=0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}
