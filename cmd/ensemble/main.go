// Command ensemble runs the paper's Section-7 detector-combination
// analysis:
//
//  1. Coverage algebra over the performance maps — the Markov detector's
//     coverage strictly contains Stide's (gain at the DW = AS-1 edge), and
//     adding Lane & Brodley to Stide gains nothing.
//  2. False-alarm suppression — on test data containing naturally occurring
//     rare sequences, the rare-sensitive Markov detector alone raises false
//     alarms; gating its alarms on Stide's suppresses them while keeping
//     the minimal-foreign-sequence hit.
//
// Usage:
//
//	ensemble [-quick] [-window N] [-size N] [-noisy N] [-j N]
//	         [-checkpoint DIR] [-resume] [-shard i/N]
//	         [-metrics-out FILE] [-progress] [-status ADDR] [-alerts FILE]
//	         [-trace FILE] [-cpuprofile FILE] [-memprofile FILE]
//
// With -checkpoint DIR every completed grid cell of the four coverage maps
// is journaled; an interrupted run restarted with -resume replays the
// journaled cells bit-identically and evaluates only the remainder.
// -shard i/N restricts the run to one shard of an N-way grid partition,
// journaling to DIR/shard-i-of-N for a later checkpoint merge.
//
// With -alerts FILE the run additionally replays the suppression
// experiment's rare-containing stream through the streaming veto pipeline
// (Markov primary, Stide veto) before the coverage analysis, journaling
// every alarm disposition — raised, escalated, suppressed — to FILE as
// NDJSON (schema adiv.alerts/v1). Under -status the journal tail is served
// live at /alertz while the coverage grids evaluate, and the detector-health
// watchdog degrades /healthz on alarm storms or a silenced stream. Analyze
// the journal afterwards with diagnose -alerts FILE.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"adiv"
	"adiv/internal/gen"
	"adiv/internal/inject"
	"adiv/internal/runflags"
	"adiv/internal/seq"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ensemble:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) (err error) {
	fs := flag.NewFlagSet("ensemble", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "use the reduced configuration")
	window := fs.Int("window", 8, "detector window for the suppression experiment")
	size := fs.Int("size", 6, "anomaly size for the suppression experiment")
	noisyLen := fs.Int("noisy", 20_000, "length of the rare-containing test stream")
	obsFlags := runflags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := adiv.DefaultConfig()
	if *quick {
		cfg = adiv.QuickConfig()
	}
	obsRun, err := obsFlags.Start(os.Stderr)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := obsRun.Close(); err == nil {
			err = cerr
		}
	}()
	obsRun.Announce("run.start", adiv.EventFields{
		"cmd":      "ensemble",
		"quick":    *quick,
		"trainLen": cfg.Gen.TrainLen,
		"window":   *window,
		"size":     *size,
		"noisy":    *noisyLen,
		"jobs":     obsRun.Scheduler().Workers(),
	})
	fmt.Fprintf(w, "building corpus (training length %d)...\n", cfg.Gen.TrainLen)
	obsRun.Progress().SetPhase("corpus")
	corpus, err := adiv.BuildCorpusObserved(cfg, obsRun.Metrics)
	if err != nil {
		return err
	}

	// The suppression experiment's parameters ride along in the journal
	// fingerprint even though only the coverage maps journal cells: a
	// journal written by a differently parameterized invocation is refused.
	ckpt, err := obsRun.OpenJournal(corpus.Fingerprint("ensemble",
		[]string{adiv.DetectorStide, adiv.DetectorMarkov, adiv.DetectorLaneBrodley, adiv.DetectorTStide},
		fmt.Sprintf("window=%d,size=%d,noisy=%d", *window, *size, *noisyLen)))
	if err != nil {
		return err
	}

	if obsRun.Alerts() != nil {
		// Streaming replay first: the journal (and /alertz under -status)
		// carries records for the whole duration of the long coverage phase.
		obsRun.Progress().SetPhase("alerts")
		if err := streamingAlertAnalysis(w, corpus, *window, *size, *noisyLen, obsRun); err != nil {
			return err
		}
	}
	obsRun.Progress().SetPhase("coverage")
	if err := coverageAnalysis(w, corpus, obsRun.Scheduler(), obsRun.Progress(), ckpt, obsRun, obsRun.Metrics); err != nil {
		return err
	}
	obsRun.Progress().SetPhase("suppression")
	if err := suppressionAnalysis(w, corpus, *window, *size, *noisyLen, obsRun.Metrics); err != nil {
		return err
	}
	// All four coverage maps and the suppression detectors trained off one
	// shared per-width database cache.
	hits, misses := corpus.TrainingDBs().Stats()
	fmt.Fprintf(w, "\ntraining-DB cache: %d databases built, %d reuses\n", misses, hits)
	obsRun.Announce("corpus.cache", adiv.EventFields{"built": misses, "reused": hits})
	return nil
}

func coverageAnalysis(w io.Writer, corpus *adiv.Corpus, sched *adiv.GridScheduler, prog *adiv.Progress, ckpt *adiv.CheckpointJournal, obsRun *runflags.Run, metrics *adiv.Metrics) error {
	opts := adiv.DefaultEvalOptions()
	// The four family maps share one bounded pool: expensive rows of one
	// family interleave with cheap rows of another. They also report into
	// one progress tracker, so a -status scrape sees all four grids, and
	// journal into one checkpoint (nil without -checkpoint).
	opts.Scheduler = sched
	opts.Progress = prog
	opts.Checkpoint = ckpt
	opts.ShardIndex, opts.ShardCount = obsRun.Shard()
	stideMap, err := corpus.PerformanceMapObserved(adiv.DetectorStide, adiv.StideFactory, opts, metrics)
	if err != nil {
		return err
	}
	markovMap, err := corpus.PerformanceMapObserved(adiv.DetectorMarkov, adiv.MarkovFactory, opts, metrics)
	if err != nil {
		return err
	}
	lbMap, err := corpus.PerformanceMapObserved(adiv.DetectorLaneBrodley, adiv.LaneBrodleyFactory, opts, metrics)
	if err != nil {
		return err
	}
	tstideMap, err := corpus.PerformanceMapObserved(adiv.DetectorTStide, adiv.TStideFactory, opts, metrics)
	if err != nil {
		return err
	}

	fmt.Fprintln(w, "\n== coverage algebra (strict threshold) ==")
	fmt.Fprintf(w, "stide detects %d cells; markov %d; lb %d; tstide %d\n",
		stideMap.CountOutcome(adiv.OutcomeCapable),
		markovMap.CountOutcome(adiv.OutcomeCapable),
		lbMap.CountOutcome(adiv.OutcomeCapable),
		tstideMap.CountOutcome(adiv.OutcomeCapable))
	fmt.Fprintln(w, "\npairwise coverage relations (row relative to column):")
	if err := adiv.WriteCoverageRelations(w, []*adiv.Map{stideMap, markovMap, lbMap, tstideMap}); err != nil {
		return err
	}
	fmt.Fprintf(w, "markov coverage contains stide coverage: %v\n", markovMap.CoversAtLeast(stideMap))
	gain := adiv.CoverageGain(stideMap, markovMap)
	fmt.Fprintf(w, "cells markov adds over stide (the edge of the space): %v\n", gain)
	fmt.Fprintf(w, "cells lb adds over stide (the paper's null result): %v\n",
		adiv.CoverageGain(stideMap, lbMap))
	union, err := adiv.UnionCoverage(stideMap, lbMap)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "stide+lb union detects %d cells (stide alone: %d)\n",
		union.CountOutcome(adiv.OutcomeCapable), stideMap.CountOutcome(adiv.OutcomeCapable))
	return nil
}

// streamingAlertAnalysis replays the suppression experiment's stream through
// the streaming veto pipeline with the run's alert journal attached: the
// Markov primary journals every candidate alarm as raised and the
// Stide-gated pipeline resolves each to escalated or suppressed, so -alerts
// captures the full disposition history of the Section-7 recipe in its
// deployment shape. Runs only under -alerts; the batch suppression analysis
// and its output are unchanged without it.
func streamingAlertAnalysis(w io.Writer, corpus *adiv.Corpus, window, size, noisyLen int, obsRun *runflags.Run) error {
	rep, ok := corpus.Anomalies[size]
	if !ok {
		return fmt.Errorf("corpus has no size-%d anomaly", size)
	}
	g, err := gen.New(corpus.Config.Gen)
	if err != nil {
		return err
	}
	noisy := g.Noisy(noisyLen, 1)
	placement, err := injectIntoNoisy(corpus, noisy, rep.Sequence, window)
	if err != nil {
		return err
	}
	markov, err := adiv.NewMarkov(window)
	if err != nil {
		return err
	}
	stide, err := adiv.NewStide(window)
	if err != nil {
		return err
	}
	if err := adiv.TrainAllWithCorpus(corpus.TrainingDBs(), markov, stide); err != nil {
		return err
	}
	pipe, err := adiv.NewVetoPipeline(markov, stide, adiv.RareSensitiveThreshold, adiv.StrictThreshold)
	if err != nil {
		return err
	}
	pipe.Instrument(obsRun.Metrics)
	pipe.SetJournal(obsRun.Alerts())
	escalated, err := pipe.PushAll(placement.Stream)
	if err != nil {
		return err
	}
	counts := obsRun.Alerts().Counts()
	fmt.Fprintf(w, "\n== streaming alert replay (-alerts, DW=%d, AS=%d) ==\n", window, size)
	fmt.Fprintf(w, "replayed %d symbols through the markov→stide veto pipeline:\n", len(placement.Stream))
	fmt.Fprintf(w, "%d raised, %d escalated, %d suppressed (journal: %s)\n",
		counts[adiv.DispositionRaised], len(escalated), pipe.Suppressed(), obsRun.AlertsPath())
	obsRun.Announce("alerts.replay", adiv.EventFields{
		"symbols":    len(placement.Stream),
		"raised":     counts[adiv.DispositionRaised],
		"escalated":  len(escalated),
		"suppressed": pipe.Suppressed(),
	})
	return nil
}

func suppressionAnalysis(w io.Writer, corpus *adiv.Corpus, window, size, noisyLen int, metrics *adiv.Metrics) error {
	rep, ok := corpus.Anomalies[size]
	if !ok {
		return fmt.Errorf("corpus has no size-%d anomaly", size)
	}
	g, err := gen.New(corpus.Config.Gen)
	if err != nil {
		return err
	}
	noisy := g.Noisy(noisyLen, 1)
	placement, err := injectIntoNoisy(corpus, noisy, rep.Sequence, window)
	if err != nil {
		return err
	}

	markov, err := adiv.NewMarkov(window)
	if err != nil {
		return err
	}
	stide, err := adiv.NewStide(window)
	if err != nil {
		return err
	}
	if err := adiv.TrainAllWithCorpus(corpus.TrainingDBs(), markov, stide); err != nil {
		return err
	}

	fmt.Fprintf(w, "\n== suppression on rare-containing data (stream length %d, AS=%d, DW=%d) ==\n",
		len(placement.Stream), size, window)
	result, err := adiv.Suppress(markov, stide, placement, adiv.RareSensitiveThreshold, adiv.StrictThreshold)
	if err != nil {
		return err
	}
	if err := adiv.WriteSuppression(w, result); err != nil {
		return err
	}
	fmt.Fprintln(w, "the markov detector alone alarms on every naturally occurring rare sequence;")
	fmt.Fprintln(w, "gating on stide (which only ever alarms on foreign sequences) removes them")
	fmt.Fprintln(w, "while the minimal-foreign-sequence hit survives.")
	return nil
}

// injectIntoNoisy places the anomaly into the rare-containing stream at a
// boundary-safe position (only the widths actually deployed need to hold).
func injectIntoNoisy(corpus *adiv.Corpus, noisy seq.Stream, anomaly seq.Stream, window int) (adiv.Placement, error) {
	opts := inject.Options{MinWidth: window, MaxWidth: window, ContextWidths: true}
	return inject.Inject(corpus.TrainIndex, noisy, anomaly, opts)
}
