package main

import (
	"strings"
	"testing"
)

func TestRunUnknownProfile(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-profile", "nosuch"}); err == nil {
		t.Errorf("unknown profile accepted")
	}
}

func TestRunMismatchedFiles(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-trainfile", "x"}); err == nil {
		t.Errorf("trainfile without testfile accepted")
	}
}

func TestRunGeneratedScan(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-profile", "shell", "-train", "30000", "-test", "8000", "-max", "8"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "minimal foreign sequences in test data:") {
		t.Errorf("missing summary:\n%s", out)
	}
}
