// Command mfscan reproduces the observation behind the paper's Section 4.1:
// (quasi-)natural data is replete with minimal foreign sequences of varying
// lengths. It generates training and held-out test traces from a simulated
// process profile (or reads them from files) and counts the minimal foreign
// sequences the test trace exhibits with respect to the training trace.
//
// Usage:
//
//	mfscan [-profile daemon|shell] [-train N] [-test N] [-max N] [-seed N]
//	mfscan -trainfile PATH -testfile PATH [-max N]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"adiv"
	"adiv/internal/corpusio"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mfscan:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("mfscan", flag.ContinueOnError)
	profileName := fs.String("profile", "daemon", "trace profile: daemon or shell")
	trainLen := fs.Int("train", 200_000, "training trace length")
	testLen := fs.Int("test", 50_000, "test trace length")
	maxSize := fs.Int("max", 12, "largest MFS length to scan for")
	seed := fs.Uint64("seed", 42, "generation seed")
	trainFile := fs.String("trainfile", "", "read the training trace from this file instead of generating")
	testFile := fs.String("testfile", "", "read the test trace from this file instead of generating")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var train, test adiv.Stream
	var alpha *adiv.Alphabet
	switch {
	case *trainFile != "" && *testFile != "":
		var err error
		if train, err = corpusio.ReadStreamFile(*trainFile); err != nil {
			return err
		}
		if test, err = corpusio.ReadStreamFile(*testFile); err != nil {
			return err
		}
	case *trainFile == "" && *testFile == "":
		profile, ok := adiv.TraceProfiles()[*profileName]
		if !ok {
			return fmt.Errorf("unknown profile %q (want one of daemon, shell, webserver)", *profileName)
		}
		alpha = profile.Alphabet
		var err error
		if train, err = adiv.GenerateTrace(profile, *seed, *trainLen); err != nil {
			return err
		}
		if test, err = adiv.GenerateTrace(profile, *seed+1, *testLen); err != nil {
			return err
		}
		fmt.Fprintf(w, "profile %q: training %d symbols, test %d symbols\n",
			profile.Name, len(train), len(test))
	default:
		return fmt.Errorf("-trainfile and -testfile must be given together")
	}

	stats, err := adiv.ScanMFS(train, test, *maxSize)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "minimal foreign sequences in test data: %d total over %d positions\n",
		stats.Total(), stats.Positions)
	for _, size := range stats.Sizes() {
		example := ""
		if ex, ok := stats.Examples[size]; ok {
			if alpha != nil {
				example = alpha.Format(ex)
			} else {
				example = adiv.EvaluationAlphabet().Format(ex)
			}
		}
		fmt.Fprintf(w, "  length %2d: %6d occurrences   e.g. [%s]\n", size, stats.CountBySize[size], example)
	}
	if stats.Total() == 0 {
		fmt.Fprintln(w, "  (none found — test data fully covered by training)")
	}
	return nil
}
