// Figure-by-figure reproduction tests: one test per figure of the paper's
// evaluation, asserting the qualitative result the figure reports. The
// paper-vs-measured record is in EXPERIMENTS.md; these tests keep that
// record true on every run.
package adiv_test

import (
	"strings"
	"testing"

	"adiv"
)

// TestFigure2IncidentSpan reproduces Figure 2: with a detector window of 5
// and a foreign sequence of size 8, the incident span comprises all
// 5-element sequences containing at least one element of the anomaly —
// DW-1+AS = 12 windows — and the boundary sequences flank the injection.
func TestFigure2IncidentSpan(t *testing.T) {
	corpus := sharedCorpus(t)
	p := corpus.Placements[8]
	lo, hi, ok := p.IncidentSpan(5)
	if !ok {
		t.Fatal("no incident span")
	}
	if got, want := hi-lo+1, 5-1+8; got != want {
		t.Errorf("incident span holds %d windows, want %d", got, want)
	}

	var sb strings.Builder
	if err := adiv.WriteIncidentSpan(&sb, adiv.EvaluationAlphabet(), p, 5); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "F F F F F F F F") {
		t.Errorf("rendering lacks the 8 anomaly marks:\n%s", out)
	}
	if !strings.Contains(out, "+ + + + F") || !strings.Contains(out, "F + + + +") {
		t.Errorf("rendering lacks DW-1 boundary marks on each side:\n%s", out)
	}
}

// TestFigure3LBMap reproduces Figure 3: the Lane & Brodley detector is
// blind across the entire evaluated space — no (anomaly size, window) cell
// ever registers a maximal response.
func TestFigure3LBMap(t *testing.T) {
	m := sharedMap(t, adiv.DetectorLaneBrodley, adiv.LaneBrodleyFactory, adiv.DefaultEvalOptions())
	if got := m.CountOutcome(adiv.OutcomeCapable); got != 0 {
		t.Errorf("L&B detects %d cells, want 0 (blind across the space)", got)
	}
	corpus := sharedCorpus(t)
	for size := corpus.Config.MinSize; size <= corpus.Config.MaxSize; size++ {
		for dw := corpus.Config.MinWindow; dw <= corpus.Config.MaxWindow; dw++ {
			if a := m.At(size, dw); a.MaxResponse >= 1 {
				t.Errorf("AS=%d DW=%d: maximal response %v", size, dw, a.MaxResponse)
			}
		}
	}
	// The blindness mechanism (Section 7): even when the whole anomaly is
	// visible (DW = AS) the similarity to the closest normal sequence
	// keeps the response well below 1.
	for size := corpus.Config.MinSize; size <= corpus.Config.MaxSize; size++ {
		if a := m.At(size, size); a.MaxResponse > 0.95 {
			t.Errorf("AS=DW=%d: response %v unexpectedly close to maximal", size, a.MaxResponse)
		}
	}
}

// TestFigure4MarkovMap reproduces Figure 4 in both threshold regimes. At
// the paper's strict threshold the Markov detector registers a maximal
// response exactly when a foreign (DW+1)-gram falls in the incident span —
// DW >= AS-1, one diagonal earlier than Stide (the "edge of the space"
// gain) — and responds weakly everywhere below. Counting its strong
// rare-sequence responses as hits (the rare-sensitive regime) extends its
// coverage to the entire space, the reading of the paper's conclusion.
func TestFigure4MarkovMap(t *testing.T) {
	corpus := sharedCorpus(t)
	strict := sharedMap(t, adiv.DetectorMarkov, adiv.MarkovFactory, adiv.DefaultEvalOptions())
	for size := corpus.Config.MinSize; size <= corpus.Config.MaxSize; size++ {
		for dw := corpus.Config.MinWindow; dw <= corpus.Config.MaxWindow; dw++ {
			want := adiv.OutcomeWeak
			if dw >= size-1 {
				want = adiv.OutcomeCapable
			}
			if got := strict.Outcome(size, dw); got != want {
				t.Errorf("strict: AS=%d DW=%d outcome %v, want %v", size, dw, got, want)
			}
		}
	}

	rare := sharedMap(t, "markov-rare", adiv.MarkovFactory, adiv.RareSensitiveEvalOptions())
	cells := (corpus.Config.MaxSize - corpus.Config.MinSize + 1) * (corpus.Config.MaxWindow - corpus.Config.MinWindow + 1)
	if got := rare.CountOutcome(adiv.OutcomeCapable); got != cells {
		t.Errorf("rare-sensitive regime covers %d of %d cells, want all", got, cells)
	}
}

// TestFigure5StideMap reproduces Figure 5: Stide detects the minimal
// foreign sequence exactly when its window is at least as long as the
// anomaly, and is completely blind below that diagonal.
func TestFigure5StideMap(t *testing.T) {
	corpus := sharedCorpus(t)
	m := sharedMap(t, adiv.DetectorStide, adiv.StideFactory, adiv.DefaultEvalOptions())
	for size := corpus.Config.MinSize; size <= corpus.Config.MaxSize; size++ {
		for dw := corpus.Config.MinWindow; dw <= corpus.Config.MaxWindow; dw++ {
			want := adiv.OutcomeBlind
			if dw >= size {
				want = adiv.OutcomeCapable
			}
			if got := m.Outcome(size, dw); got != want {
				t.Errorf("AS=%d DW=%d outcome %v, want %v", size, dw, got, want)
			}
		}
	}
	// Undefined regions: anomaly size 1 and window 1 were not evaluated.
	if got := m.Outcome(1, 5); got != adiv.OutcomeUndefined {
		t.Errorf("AS=1 cell outcome %v, want undefined", got)
	}
	if got := m.Outcome(5, 1); got != adiv.OutcomeUndefined {
		t.Errorf("DW=1 cell outcome %v, want undefined", got)
	}
}

// TestFigure6NNMap reproduces Figure 6: the well-tuned neural network
// mimics the Markov detector — its coverage contains Stide's and the
// Markov detector's strict-regime coverage — while an undertrained network
// loses cells (the tuning-sensitivity caveat of Section 7).
func TestFigure6NNMap(t *testing.T) {
	if testing.Short() {
		t.Skip("neural-network map training skipped in -short mode")
	}
	nn := sharedMap(t, adiv.DetectorNeuralNet, adiv.NeuralNetFactory(adiv.DefaultNNConfig()), adiv.NeuralNetEvalOptions())
	markov := sharedMap(t, adiv.DetectorMarkov, adiv.MarkovFactory, adiv.DefaultEvalOptions())
	stide := sharedMap(t, adiv.DetectorStide, adiv.StideFactory, adiv.DefaultEvalOptions())
	if !nn.CoversAtLeast(markov) {
		t.Errorf("well-tuned NN coverage does not contain the Markov detector's")
	}
	if !nn.CoversAtLeast(stide) {
		t.Errorf("well-tuned NN coverage does not contain Stide's")
	}

	// Mimicry is asserted at the coverage level above (the paper's sense).
	// Pointwise agreement is deliberately NOT asserted: the learned
	// approximation both over-suppresses rarely-trained contexts and
	// generalizes over naturally-foreign gram combinations in rare data,
	// so its graded responses differ from the Markov detector's away from
	// the injected anomaly even though its detection coverage matches.

	// Mistuned network: a crippled learning constant and a single epoch
	// leave the softmax near its initialization, so the anomaly signal
	// stays weak (Section 7: "some combinations of these values may result
	// in weakened anomaly signals").
	mistuned := adiv.DefaultNNConfig()
	mistuned.Epochs = 1
	mistuned.LearningRate = 0.001
	corpus := sharedCorpus(t)
	weakMap, err := corpus.PerformanceMap("nn-mistuned", adiv.NeuralNetFactory(mistuned), adiv.NeuralNetEvalOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got, full := weakMap.CountOutcome(adiv.OutcomeCapable), nn.CountOutcome(adiv.OutcomeCapable); got >= full {
		t.Errorf("mistuned NN detects %d cells, tuned %d; expected a loss", got, full)
	}
}

// TestSection7CombinationCoverage reproduces the combination findings:
// Stide's coverage is a strict subset of the Markov detector's, the gain
// sits exactly on the DW = AS-1 edge, and adding Lane & Brodley to Stide
// gains nothing at all.
func TestSection7CombinationCoverage(t *testing.T) {
	corpus := sharedCorpus(t)
	stide := sharedMap(t, adiv.DetectorStide, adiv.StideFactory, adiv.DefaultEvalOptions())
	markov := sharedMap(t, adiv.DetectorMarkov, adiv.MarkovFactory, adiv.DefaultEvalOptions())
	lb := sharedMap(t, adiv.DetectorLaneBrodley, adiv.LaneBrodleyFactory, adiv.DefaultEvalOptions())

	if !markov.CoversAtLeast(stide) {
		t.Errorf("Markov coverage does not contain Stide coverage")
	}
	if stide.CoversAtLeast(markov) {
		t.Errorf("Stide coverage unexpectedly contains Markov coverage")
	}
	gain := adiv.CoverageGain(stide, markov)
	for _, cell := range gain {
		size, dw := cell[0], cell[1]
		if dw != size-1 {
			t.Errorf("Markov gain cell (AS=%d, DW=%d) off the DW=AS-1 edge", size, dw)
		}
	}
	if want := corpus.Config.MaxSize - corpus.Config.MinSize; len(gain) != want {
		t.Errorf("gain has %d cells, want %d (one per size with DW >= 2)", len(gain), want)
	}

	if g := adiv.CoverageGain(stide, lb); len(g) != 0 {
		t.Errorf("L&B adds %v over Stide, want nothing", g)
	}
	union, err := adiv.UnionCoverage(stide, lb)
	if err != nil {
		t.Fatal(err)
	}
	if union.CountOutcome(adiv.OutcomeCapable) != stide.CountOutcome(adiv.OutcomeCapable) {
		t.Errorf("Stide+L&B union differs from Stide alone")
	}
}

// TestSection7Suppression reproduces the operational recipe: on test data
// containing naturally occurring rare sequences, the rare-sensitive Markov
// detector raises false alarms that the Stide veto removes entirely, while
// the minimal-foreign-sequence hit survives.
func TestSection7Suppression(t *testing.T) {
	corpus := sharedCorpus(t)
	noisy, err := corpus.NoisyStream(8_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	const size, dw = 6, 8
	placement, err := corpus.InjectInto(noisy, size, dw)
	if err != nil {
		t.Fatal(err)
	}
	markov, err := adiv.NewMarkov(dw)
	if err != nil {
		t.Fatal(err)
	}
	stide, err := adiv.NewStide(dw)
	if err != nil {
		t.Fatal(err)
	}
	if err := adiv.TrainAll(corpus.Training, markov, stide); err != nil {
		t.Fatal(err)
	}
	r, err := adiv.Suppress(markov, stide, placement, adiv.RareSensitiveThreshold, adiv.StrictThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Primary.Hit {
		t.Errorf("Markov alone missed the anomaly")
	}
	if r.Primary.FalseAlarms == 0 {
		t.Errorf("Markov alone raised no false alarms on rare-containing data; the experiment is vacuous")
	}
	if r.Suppressed.FalseAlarms != 0 {
		t.Errorf("Stide veto left %d false alarms", r.Suppressed.FalseAlarms)
	}
	if !r.Suppressed.Hit {
		t.Errorf("Stide veto lost the hit")
	}
}

// TestNaturalMFSPrevalence reproduces the Section 4.1 observation on the
// quasi-natural substitute traces: held-out data contains minimal foreign
// sequences of several distinct lengths.
func TestNaturalMFSPrevalence(t *testing.T) {
	for _, profile := range []*adiv.TraceProfile{
		adiv.DaemonTraceProfile(),
		adiv.ShellTraceProfile(),
		adiv.WebServerTraceProfile(),
	} {
		train, err := adiv.GenerateTrace(profile, 1, 150_000)
		if err != nil {
			t.Fatal(err)
		}
		test, err := adiv.GenerateTrace(profile, 2, 50_000)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := adiv.ScanMFS(train, test, 12)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Total() < 3 {
			t.Errorf("profile %q: only %d MFS occurrences in held-out data", profile.Name, stats.Total())
		}
		if len(stats.Sizes()) < 2 {
			t.Errorf("profile %q: MFS lengths %v, want several distinct lengths", profile.Name, stats.Sizes())
		}
	}
}

// TestFigure7LBSimilarity pins the Figure-7 walkthrough via the public API:
// identical size-5 sequences score 15 = DW(DW+1)/2; mismatching only the
// final element drops the score merely to 10 = DW(DW-1)/2.
func TestFigure7LBSimilarity(t *testing.T) {
	normal := adiv.Stream{0, 1, 2, 3, 4}
	foreign := adiv.Stream{0, 1, 2, 3, 0}
	sim, err := adiv.LBSimilarity(normal, normal)
	if err != nil {
		t.Fatal(err)
	}
	if sim != 15 || adiv.LBMaxSimilarity(5) != 15 {
		t.Errorf("identical similarity %d (max %d), want 15", sim, adiv.LBMaxSimilarity(5))
	}
	weights, total, err := adiv.LBSimilarityWeights(normal, foreign)
	if err != nil {
		t.Fatal(err)
	}
	if total != 10 {
		t.Errorf("edge-mismatch similarity %d, want 10", total)
	}
	want := []int{1, 2, 3, 4, 0}
	for i := range want {
		if weights[i] != want[i] {
			t.Errorf("weights %v, want %v", weights, want)
			break
		}
	}
}
