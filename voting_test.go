package adiv_test

import (
	"testing"

	"adiv"
)

// TestVotingQuorumTradeOff runs a three-member committee (t-stide, Markov,
// Stide) over rare-containing data with one injected MFS and sweeps the
// quorum. Raising the quorum monotonically reduces false alarms; the hit
// survives as long as the quorum stays within the number of members whose
// coverage actually includes the anomaly — one more face of the paper's
// message that combination quality is a structural question, not a
// majority-vote free lunch.
func TestVotingQuorumTradeOff(t *testing.T) {
	corpus := sharedCorpus(t)
	noisy, err := corpus.NoisyStream(8_000, 6)
	if err != nil {
		t.Fatal(err)
	}
	const size, dw = 6, 8 // DW >= AS: all three members can see the anomaly
	placement, err := corpus.InjectInto(noisy, size, dw)
	if err != nil {
		t.Fatal(err)
	}

	tstide, err := adiv.NewTStide(dw, adiv.RareCutoff)
	if err != nil {
		t.Fatal(err)
	}
	markov, err := adiv.NewMarkov(dw)
	if err != nil {
		t.Fatal(err)
	}
	stide, err := adiv.NewStide(dw)
	if err != nil {
		t.Fatal(err)
	}
	if err := adiv.TrainAll(corpus.Training, tstide, markov, stide); err != nil {
		t.Fatal(err)
	}

	members := []adiv.Detector{tstide, markov, stide}
	thresholds := []float64{adiv.StrictThreshold, adiv.RareSensitiveThreshold, adiv.StrictThreshold}
	var rates []float64
	for quorum := 1; quorum <= 3; quorum++ {
		voter := &adiv.Voter{Members: members, Thresholds: thresholds, Quorum: quorum}
		stats, err := voter.AssessVote(placement)
		if err != nil {
			t.Fatal(err)
		}
		if !stats.Hit {
			t.Errorf("quorum %d: missed the anomaly (all members cover DW >= AS)", quorum)
		}
		rates = append(rates, stats.FalseAlarmRate())
	}
	for i := 1; i < len(rates); i++ {
		if rates[i] > rates[i-1] {
			t.Errorf("false-alarm rate rose with quorum: %v", rates)
		}
	}
	// The two rare-sensitive members agree on rare excursions, so quorum 2
	// still false-alarms; requiring the foreign-only Stide too cuts the
	// rate sharply. It does not reach zero: long windows of rare data can
	// be naturally foreign (never-seen motif combinations), and all three
	// members rightly alarm there — those are real anomalies that merely
	// are not the injected one.
	if rates[0] == 0 {
		t.Errorf("union raised no false alarms; the trade-off is vacuous")
	}
	if rates[2] >= rates[0]/4 {
		t.Errorf("full quorum rate %v did not cut the union rate %v sharply", rates[2], rates[0])
	}
}

// TestVotingFacadeValidation exercises the facade-level validation path.
func TestVotingFacadeValidation(t *testing.T) {
	v := &adiv.Voter{}
	if _, err := v.AssessVote(adiv.Placement{Stream: make(adiv.Stream, 10), Start: 2, AnomalyLen: 2}); err == nil {
		t.Errorf("empty voter accepted")
	}
}

// TestFalseAlarmInterval attaches a Wilson interval to a suppression run's
// rates: the unsuppressed rate's interval excludes zero, the suppressed
// one starts at it.
func TestFalseAlarmInterval(t *testing.T) {
	corpus := sharedCorpus(t)
	noisy, err := corpus.NoisyStream(8_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	placement, err := corpus.InjectInto(noisy, 6, 8)
	if err != nil {
		t.Fatal(err)
	}
	markov, err := adiv.NewMarkov(8)
	if err != nil {
		t.Fatal(err)
	}
	stide, err := adiv.NewStide(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := adiv.TrainAll(corpus.Training, markov, stide); err != nil {
		t.Fatal(err)
	}
	r, err := adiv.Suppress(markov, stide, placement, adiv.RareSensitiveThreshold, adiv.StrictThreshold)
	if err != nil {
		t.Fatal(err)
	}
	before, err := adiv.FalseAlarmInterval(r.Primary)
	if err != nil {
		t.Fatal(err)
	}
	after, err := adiv.FalseAlarmInterval(r.Suppressed)
	if err != nil {
		t.Fatal(err)
	}
	if before.Lo <= 0 {
		t.Errorf("unsuppressed interval %+v should exclude zero", before)
	}
	if after.Lo != 0 {
		t.Errorf("suppressed interval %+v should start at zero", after)
	}
	if !before.Contains(r.Primary.FalseAlarmRate()) {
		t.Errorf("interval %+v excludes its own point estimate %v", before, r.Primary.FalseAlarmRate())
	}
}
