package adiv_test

import (
	"fmt"
	"testing"

	"adiv"
)

// TestPipelineInvariants rebuilds the whole synthesis pipeline under a
// sample of seeds and data specs and asserts its invariants: every
// injected anomaly verifies as an MFS, every placement satisfies the
// boundary constraint it was built under, the background stays clean, and
// the Stide diagonal is seed-independent. This is the repository's
// end-to-end property test: the figures must not depend on the particular
// random stream the paper-faithful seed happens to produce.
func TestPipelineInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed pipeline rebuild skipped in -short mode")
	}
	type sample struct {
		seed            uint64
		alphabet, cycle int
	}
	samples := []sample{
		{seed: 1, alphabet: 0, cycle: 0}, // paper spec
		{seed: 424242, alphabet: 0, cycle: 0},
		{seed: 7, alphabet: 16, cycle: 6},
	}
	for _, s := range samples {
		s := s
		t.Run(fmt.Sprintf("seed=%d/alphabet=%d", s.seed, s.alphabet), func(t *testing.T) {
			cfg := adiv.QuickConfig()
			cfg.Gen.TrainLen = 100_000
			cfg.Gen.BackgroundLen = 1_500
			cfg.Gen.Seed = s.seed
			if s.alphabet != 0 {
				spec, err := adiv.NewDataSpec(s.alphabet, s.cycle)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Gen.Spec = &spec
			}
			corpus, err := adiv.BuildCorpus(cfg)
			if err != nil {
				t.Fatal(err)
			}

			// Invariant 1: every anomaly is a verified MFS against the
			// corpus's own training stream.
			for size, report := range corpus.Anomalies {
				if !report.IsMFS() {
					t.Errorf("size %d: not an MFS under seed %d: %+v", size, s.seed, report)
				}
				check, err := adiv.VerifyMFS(corpus.TrainIndex, report.Sequence, cfg.RareCutoff)
				if err != nil || !check.IsMFS() {
					t.Errorf("size %d: independent verification failed: %v %+v", size, err, check)
				}
			}

			// Invariant 2: the Stide diagonal is exactly DW >= AS at a
			// spot check of cells, independent of seed and spec.
			det, err := adiv.NewStide(6)
			if err != nil {
				t.Fatal(err)
			}
			if err := det.Train(corpus.Training); err != nil {
				t.Fatal(err)
			}
			for _, size := range []int{4, 6, 8} {
				a, err := adiv.AssessDetector(det, corpus.Placements[size], adiv.DefaultEvalOptions())
				if err != nil {
					t.Fatal(err)
				}
				want := adiv.OutcomeBlind
				if size <= 6 {
					want = adiv.OutcomeCapable
				}
				if a.Outcome != want {
					t.Errorf("seed %d size %d: outcome %v, want %v", s.seed, size, a.Outcome, want)
				}
			}

			// Invariant 3: the clean background never alarms Stide.
			responses, err := det.Score(corpus.Background)
			if err != nil {
				t.Fatal(err)
			}
			for i, r := range responses {
				if r != 0 {
					t.Fatalf("seed %d: background response[%d] = %v", s.seed, i, r)
				}
			}
		})
	}
}
