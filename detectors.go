package adiv

import (
	"fmt"

	"adiv/internal/detector"
	"adiv/internal/detector/compose"
	"adiv/internal/detector/hmm"
	"adiv/internal/detector/lbr"
	"adiv/internal/detector/markovdet"
	"adiv/internal/detector/nnet"
	"adiv/internal/detector/stide"
	"adiv/internal/detector/tstide"
	"adiv/internal/eval"
	"adiv/internal/seq"
)

// Detector is the common interface of the four sequence-based anomaly
// detectors: train a model of normal behavior from a stream, then score a
// test stream with per-position responses in [0,1] (1 = maximal anomaly).
type Detector = detector.Detector

// NNConfig holds the neural-network detector's tuning parameters.
type NNConfig = nnet.Config

// Factory constructs one detector per window length; performance-map
// builders call it once per row of the evaluation grid.
type Factory = eval.Factory

// Detector names accepted by NewDetector and used in reports. The first
// four are the paper's detectors; t-stide (Warrender et al. 1999) is the
// frequency-thresholded Stide variant included as the rare-sensitive
// exact-match baseline.
const (
	DetectorStide       = "stide"
	DetectorMarkov      = "markov"
	DetectorNeuralNet   = "nn"
	DetectorLaneBrodley = "lb"
	DetectorTStide      = "tstide"
)

// DetectorNames lists the four evaluated detectors in the paper's
// presentation order (Figures 3-6: L&B, Markov, Stide, neural net).
func DetectorNames() []string {
	return []string{DetectorLaneBrodley, DetectorMarkov, DetectorStide, DetectorNeuralNet}
}

// AllDetectorNames additionally includes the t-stide extension.
func AllDetectorNames() []string {
	return append(DetectorNames(), DetectorTStide)
}

// NewStide returns an untrained Stide detector.
func NewStide(window int) (Detector, error) { return stide.New(window) }

// NewMarkov returns an untrained Markov conditional-probability detector.
func NewMarkov(window int) (Detector, error) { return markovdet.New(window) }

// NewLaneBrodley returns an untrained Lane & Brodley detector.
func NewLaneBrodley(window int) (Detector, error) { return lbr.New(window) }

// DefaultNNConfig returns well-tuned neural-network parameters for the
// evaluation data.
func DefaultNNConfig() NNConfig { return nnet.DefaultConfig() }

// NewNeuralNet returns an untrained neural-network detector with the given
// tuning parameters.
func NewNeuralNet(window int, cfg NNConfig) (Detector, error) { return nnet.New(window, cfg) }

// NewTStide returns an untrained t-stide detector with the given rarity
// cutoff (relative frequency in (0,1); the classic value is RareCutoff).
func NewTStide(window int, cutoff float64) (Detector, error) { return tstide.New(window, cutoff) }

// TrainWithCorpus trains a detector from a shared training-database cache:
// detectors whose models derive from fixed-width sequence databases (the
// five window detectors) fetch them from the cache, built at most once per
// width; others (e.g. the HMM) fall back to Train on the corpus's stream.
// Both paths produce exactly the model Train would.
func TrainWithCorpus(det Detector, dbs *SequenceCorpus) error {
	return detector.TrainWith(det, dbs)
}

// NewDetector constructs a detector by name with default parameters.
func NewDetector(name string, window int) (Detector, error) {
	switch name {
	case DetectorStide:
		return NewStide(window)
	case DetectorMarkov:
		return NewMarkov(window)
	case DetectorNeuralNet:
		return NewNeuralNet(window, DefaultNNConfig())
	case DetectorLaneBrodley:
		return NewLaneBrodley(window)
	case DetectorTStide:
		return NewTStide(window, RareCutoff)
	default:
		return nil, fmt.Errorf("adiv: unknown detector %q (want one of %v)", name, AllDetectorNames())
	}
}

// Ready-made factories for performance-map construction.
var (
	// StideFactory builds Stide detectors.
	StideFactory Factory = func(dw int) (Detector, error) { return NewStide(dw) }
	// MarkovFactory builds Markov detectors.
	MarkovFactory Factory = func(dw int) (Detector, error) { return NewMarkov(dw) }
	// LaneBrodleyFactory builds Lane & Brodley detectors.
	LaneBrodleyFactory Factory = func(dw int) (Detector, error) { return NewLaneBrodley(dw) }
	// TStideFactory builds t-stide detectors at the classic 0.5% cutoff.
	TStideFactory Factory = func(dw int) (Detector, error) { return NewTStide(dw, RareCutoff) }
)

// NeuralNetFactory builds neural-network detectors with the given
// configuration.
func NeuralNetFactory(cfg NNConfig) Factory {
	return func(dw int) (Detector, error) { return NewNeuralNet(dw, cfg) }
}

// DetectorFactory returns the default factory for a detector name, paired
// with the classification options its response scale calls for (exact
// extremes for the deterministic detectors, the documented tolerances for
// the neural network).
func DetectorFactory(name string) (Factory, EvalOptions, error) {
	switch name {
	case DetectorStide:
		return StideFactory, DefaultEvalOptions(), nil
	case DetectorMarkov:
		return MarkovFactory, DefaultEvalOptions(), nil
	case DetectorLaneBrodley:
		return LaneBrodleyFactory, DefaultEvalOptions(), nil
	case DetectorNeuralNet:
		return NeuralNetFactory(DefaultNNConfig()), NeuralNetEvalOptions(), nil
	case DetectorTStide:
		return TStideFactory, DefaultEvalOptions(), nil
	default:
		return nil, EvalOptions{}, fmt.Errorf("adiv: unknown detector %q (want one of %v)", name, AllDetectorNames())
	}
}

// HMMConfig holds the hidden-Markov-model detector's structure and
// training parameters.
type HMMConfig = hmm.Config

// DefaultHMMConfig returns HMM parameters suited to the evaluation data.
func DefaultHMMConfig() HMMConfig { return hmm.DefaultConfig() }

// NewHMM returns an untrained hidden-Markov-model detector (Warrender et
// al. 1999's fourth data model), an extension beyond the paper's four
// window detectors: it consumes single events against a recurrent hidden
// state (Window = Extent = 1) and scores each symbol by one minus its
// one-step predictive probability.
func NewHMM(cfg HMMConfig) (Detector, error) { return hmm.New(cfg) }

// NewSmoothedMarkov returns a Markov detector with Laplace (add-lambda)
// smoothed conditional probabilities. Smoothing removes the exact-zero
// estimates, so under the strict detection threshold the detector's
// coverage evaporates — a parameter-sensitivity ablation.
func NewSmoothedMarkov(window int, lambda float64) (Detector, error) {
	return markovdet.NewSmoothed(window, lambda)
}

// WithSmoothing decorates a detector with trailing-frame mean smoothing
// (Stide's locality-frame-count idea, generalized). The paper's evaluation
// deliberately bypasses this stage; it is provided for the ablations.
func WithSmoothing(inner Detector, frame int) (Detector, error) {
	return compose.NewSmoothed(inner, frame)
}

// WithQuantization decorates a detector by snapping responses at or above
// floor to exactly 1.
func WithQuantization(inner Detector, floor float64) (Detector, error) {
	return compose.NewQuantized(inner, floor)
}

// StideLFC applies Stide's locality frame count to a raw response
// sequence: each output is the fraction of mismatches in the trailing
// frame.
func StideLFC(responses []float64, frame int) ([]float64, error) {
	return stide.LFC(responses, frame)
}

// ResponseProfile characterizes a detector's response distribution over a
// stream (summary statistics, histogram, exact extreme counts).
type ResponseProfile = eval.Profile

// ProfileResponses scores a stream with a trained detector and profiles
// the response distribution into the given number of bins.
func ProfileResponses(det Detector, stream seq.Stream, bins int) (ResponseProfile, error) {
	return eval.ProfileResponses(det, stream, bins)
}

// LBSimilarity computes the Lane & Brodley adjacency-weighted similarity of
// two equal-length sequences (the Figure-7 calculation).
func LBSimilarity(x, y Stream) (int, error) { return lbr.Similarity(x, y) }

// LBSimilarityWeights additionally returns the per-position weights of the
// calculation.
func LBSimilarityWeights(x, y Stream) (weights []int, total int, err error) {
	return lbr.SimilarityWeights(x, y)
}

// LBMaxSimilarity returns the metric's maximum DW(DW+1)/2 for a window
// length.
func LBMaxSimilarity(window int) int { return lbr.MaxSimilarity(window) }
