package adiv_test

import (
	"testing"

	"adiv"
)

// TestAblationLFCShiftsDiagonal charts what the paper's Section 5.5
// deliberately excluded: Stide's locality frame count. Smoothing the
// responses over a trailing frame of size f means a lone minimal foreign
// sequence saturates the frame only when the incident span holds at least
// f foreign windows — DW-AS+1 >= f — so the detection diagonal shifts up
// by f-1 rows. Noise suppression is bought with exactly the coverage the
// paper's evaluation charts.
func TestAblationLFCShiftsDiagonal(t *testing.T) {
	corpus := sharedCorpus(t)
	const frame = 3
	factory := func(dw int) (adiv.Detector, error) {
		inner, err := adiv.NewStide(dw)
		if err != nil {
			return nil, err
		}
		return adiv.WithSmoothing(inner, frame)
	}
	m, err := corpus.PerformanceMap("stide+lfc", factory, adiv.DefaultEvalOptions())
	if err != nil {
		t.Fatal(err)
	}
	for size := corpus.Config.MinSize; size <= corpus.Config.MaxSize; size++ {
		for dw := corpus.Config.MinWindow; dw <= corpus.Config.MaxWindow; dw++ {
			got := m.Outcome(size, dw)
			switch {
			case dw >= size+frame-1:
				if got != adiv.OutcomeCapable {
					t.Errorf("AS=%d DW=%d: %v, want capable (shifted diagonal)", size, dw, got)
				}
			case dw >= size:
				// Foreign windows exist but too few to saturate the frame.
				if got != adiv.OutcomeWeak {
					t.Errorf("AS=%d DW=%d: %v, want weak", size, dw, got)
				}
			default:
				if got != adiv.OutcomeBlind {
					t.Errorf("AS=%d DW=%d: %v, want blind", size, dw, got)
				}
			}
		}
	}
}

// TestAblationSmoothedMarkovCollapse: Laplace smoothing removes the
// exact-zero probability estimates, so under the paper's strict detection
// threshold the Markov detector's coverage collapses from 91 cells to
// none — while a floor of 0.98 restores full coverage. The detector did
// not change; one estimation constant moved every boundary on the map.
func TestAblationSmoothedMarkovCollapse(t *testing.T) {
	corpus := sharedCorpus(t)
	factory := func(dw int) (adiv.Detector, error) { return adiv.NewSmoothedMarkov(dw, 0.05) }

	strict, err := corpus.PerformanceMap("markov-smoothed", factory, adiv.DefaultEvalOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := strict.CountOutcome(adiv.OutcomeCapable); got != 0 {
		t.Errorf("smoothed Markov detects %d cells at the strict threshold, want 0", got)
	}

	relaxed, err := corpus.PerformanceMap("markov-smoothed", factory, adiv.RareSensitiveEvalOptions())
	if err != nil {
		t.Fatal(err)
	}
	cells := (corpus.Config.MaxSize - corpus.Config.MinSize + 1) *
		(corpus.Config.MaxWindow - corpus.Config.MinWindow + 1)
	if got := relaxed.CountOutcome(adiv.OutcomeCapable); got != cells {
		t.Errorf("smoothed Markov detects %d of %d cells at floor 0.98", got, cells)
	}
}

// TestAblationSmoothingPreservesRanking: light Laplace smoothing barely
// perturbs the Markov detector's graded responses — their pointwise
// correlation with the maximum-likelihood detector stays near 1 — yet the
// strict-threshold coverage still collapses (the previous test). The
// threshold regime, not the response landscape, is what moved.
func TestAblationSmoothingPreservesRanking(t *testing.T) {
	corpus := sharedCorpus(t)
	ml, err := adiv.NewMarkov(8)
	if err != nil {
		t.Fatal(err)
	}
	smoothed, err := adiv.NewSmoothedMarkov(8, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if err := adiv.TrainAll(corpus.Training, ml, smoothed); err != nil {
		t.Fatal(err)
	}
	noisy, err := corpus.NoisyStream(5_000, 4)
	if err != nil {
		t.Fatal(err)
	}
	r, err := adiv.ResponseCorrelation(ml, smoothed, noisy)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.999 {
		t.Errorf("ML-vs-smoothed correlation %v, want ≈1", r)
	}
}

// TestAblationQuantizationRestoresLB: quantization is the other direction
// of the threshold knob — snapping L&B's sub-maximal responses to 1 at a
// floor of 0.25 makes the structurally blind detector "capable" wherever
// its window covers the whole anomaly. What reads as detection coverage is
// partly an artifact of where the floor sits.
func TestAblationQuantizationRestoresLB(t *testing.T) {
	corpus := sharedCorpus(t)
	factory := func(dw int) (adiv.Detector, error) {
		inner, err := adiv.NewLaneBrodley(dw)
		if err != nil {
			return nil, err
		}
		return adiv.WithQuantization(inner, 0.25)
	}
	m, err := corpus.PerformanceMap("lb@0.25", factory, adiv.DefaultEvalOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := m.CountOutcome(adiv.OutcomeCapable); got == 0 {
		t.Errorf("quantized L&B still detects nothing; the floor knob should matter")
	}
	// The raw detector remains blind (Figure 3).
	raw := sharedMap(t, adiv.DetectorLaneBrodley, adiv.LaneBrodleyFactory, adiv.DefaultEvalOptions())
	if raw.CountOutcome(adiv.OutcomeCapable) != 0 {
		t.Errorf("raw L&B unexpectedly capable")
	}
}
