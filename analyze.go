package adiv

import (
	"io"

	"adiv/internal/anomaly"
	"adiv/internal/ensemble"
	"adiv/internal/eval"
	"adiv/internal/inject"
	"adiv/internal/report"
	"adiv/internal/rng"
	"adiv/internal/seq"
	"adiv/internal/stats"
	"adiv/internal/trace"
)

// Combination analysis (paper Section 7).
type (
	// SuppressionResult compares a primary detector alone against the
	// primary gated by a suppressor.
	SuppressionResult = ensemble.SuppressionResult
	// CoverageRelation classifies how one detector's coverage relates to
	// another's (equal / subset / superset / overlapping / disjoint).
	CoverageRelation = ensemble.Relation
	// ROCCurve is a detector's threshold-swept operating characteristic.
	ROCCurve = eval.ROCCurve
	// ROCPoint is one point of an ROC estimate.
	ROCPoint = eval.ROCPoint
)

// CoverageRelation values.
const (
	CoverageEqual       = ensemble.Equal
	CoverageSubsetOf    = ensemble.SubsetOf
	CoverageSupersetOf  = ensemble.SupersetOf
	CoverageOverlapping = ensemble.Overlapping
	CoverageDisjoint    = ensemble.Disjoint
)

// RelateCoverage classifies detector a's coverage relative to detector b's.
func RelateCoverage(a, b *Map) CoverageRelation { return ensemble.Relate(a, b) }

// WriteCoverageRelations renders the pairwise coverage-relation matrix of
// the given maps.
func WriteCoverageRelations(w io.Writer, maps []*Map) error {
	return ensemble.WriteRelationMatrix(w, maps)
}

// ROC evaluates a trained detector over multiple trials at each threshold
// and assembles its operating characteristic.
func ROC(det Detector, placements []Placement, thresholds []float64) (ROCCurve, error) {
	return eval.ROC(det, placements, thresholds)
}

// Voting combiner: k-of-n element-level voting over several detectors.
type (
	// Voter combines trained detectors by k-of-n voting over stream
	// elements.
	Voter = ensemble.Voter
	// VoteStats tallies a voter's output against one placement.
	VoteStats = ensemble.VoteStats
	// Interval is a two-sided confidence interval.
	Interval = stats.Interval
)

// FalseAlarmInterval returns the 95% Wilson score interval for an alarm
// tally's false-alarm rate, so reported rates carry their uncertainty.
func FalseAlarmInterval(s AlarmStats) (Interval, error) {
	return stats.WilsonInterval(s.FalseAlarms, s.Positions, 1.96)
}

// ResponseCorrelation returns the Pearson correlation of two trained
// detectors' response sequences over the same stream — the measurable form
// of "the neural-net detector mimics the Markov detector".
func ResponseCorrelation(a, b Detector, stream Stream) (float64, error) {
	return eval.ResponseCorrelation(a, b, stream)
}

// UnionCoverage combines two performance maps by the better outcome per
// cell: deploy both detectors, alarm on either.
func UnionCoverage(a, b *Map) (*Map, error) { return ensemble.UnionCoverage(a, b) }

// IntersectCoverage combines two performance maps by the worse outcome per
// cell: alarm only when both detectors agree.
func IntersectCoverage(a, b *Map) (*Map, error) { return ensemble.IntersectCoverage(a, b) }

// CoverageGain returns the cells detector b detects that detector a does
// not: the added value of diversity. Empty for Stide+L&B; the DW = AS-1
// edge for Stide+Markov.
func CoverageGain(a, b *Map) [][2]int { return ensemble.Gain(a, b) }

// Suppress runs the trained primary and suppressor detectors over a test
// stream and keeps only the primary's alarms corroborated by the
// suppressor — the paper's Markov-detects / Stide-vetoes pipeline.
func Suppress(primary, suppressor Detector, p Placement, primaryThreshold, suppressorThreshold float64) (SuppressionResult, error) {
	return ensemble.Suppress(primary, suppressor, p, primaryThreshold, suppressorThreshold)
}

// TrainAll trains each detector on the training stream.
func TrainAll(train Stream, dets ...Detector) error { return ensemble.TrainAll(train, dets...) }

// TrainAllWithCorpus trains each detector from a shared training-database
// cache (see TrainWithCorpus), so several detectors at one window reuse a
// single database build.
func TrainAllWithCorpus(dbs *SequenceCorpus, dets ...Detector) error {
	return ensemble.TrainAllCorpus(dbs, dets...)
}

// AssessDetector scores a placement with a trained detector and classifies
// the maximal in-span response (blind / weak / capable).
func AssessDetector(det Detector, p Placement, opts EvalOptions) (Assessment, error) {
	return eval.Assess(det, p, opts)
}

// AssessAlarms tallies hits and false alarms of a trained detector on a
// placement at a detection threshold.
func AssessAlarms(det Detector, p Placement, threshold float64) (AlarmStats, error) {
	return eval.AssessAlarms(det, p, threshold)
}

// Multi-anomaly streams.
type (
	// MultiPlacement is a test stream holding several injected anomalies.
	MultiPlacement = inject.MultiPlacement
	// InjectedEvent locates one anomaly within a multi-anomaly stream.
	InjectedEvent = inject.Event
	// MultiAlarmStats tallies per-event hits and false alarms.
	MultiAlarmStats = eval.MultiAlarmStats
)

// AssessMultiAlarms deploys a trained detector on a multi-anomaly stream
// at a detection threshold.
func AssessMultiAlarms(det Detector, mp MultiPlacement, threshold float64) (MultiAlarmStats, error) {
	return eval.AssessMultiAlarms(det, mp, threshold)
}

// ROCMulti assembles an operating characteristic from one multi-anomaly
// stream (hit rate = fraction of injected events detected per threshold).
func ROCMulti(det Detector, mp MultiPlacement, thresholds []float64) (ROCCurve, error) {
	return eval.ROCMulti(det, mp, thresholds)
}

// SweepThresholds evaluates a trained detector across detection thresholds.
func SweepThresholds(det Detector, p Placement, thresholds []float64) ([]OperatingPoint, error) {
	return eval.Sweep(det, p, thresholds)
}

// InjectAt inserts an anomaly into background data before the given index
// without validating the boundary constraint.
func InjectAt(background, anom Stream, pos int) (Placement, error) {
	return inject.At(background, anom, pos)
}

// ErrNoValidPosition reports that no injection point satisfies the
// boundary-sequence constraint; produce a replacement anomaly and retry.
var ErrNoValidPosition = inject.ErrNoValidPosition

// InjectBoundarySafe searches the background for an injection point whose
// boundary sequences — mixed windows of every width in [minWidth, maxWidth]
// plus their (width+1)-gram contexts — all occur in the indexed training
// stream (the paper's Section 5.4.2 procedure). It returns
// ErrNoValidPosition when the anomaly admits no such point.
func InjectBoundarySafe(trainIx *SequenceIndex, background, anom Stream, minWidth, maxWidth int) (Placement, error) {
	opts := inject.Options{MinWidth: minWidth, MaxWidth: maxWidth, ContextWidths: true}
	return inject.Inject(trainIx, background, anom, opts)
}

// Rendering (the paper's figures as text).

// WriteMap renders a performance map in the layout of Figures 3-6.
func WriteMap(w io.Writer, m *Map) error { return report.WriteMap(w, m) }

// WriteMapCSV emits a performance map as CSV rows.
func WriteMapCSV(w io.Writer, m *Map) error { return report.WriteMapCSV(w, m) }

// WriteIncidentSpan renders the Figure-2 incident-span diagram.
func WriteIncidentSpan(w io.Writer, a *Alphabet, p Placement, width int) error {
	return report.WriteIncidentSpan(w, a, p, width)
}

// WriteSimilarity renders the Figure-7 similarity walkthrough.
func WriteSimilarity(w io.Writer, a *Alphabet, x, y Stream, weights []int, total, maximum int) error {
	return report.WriteSimilarity(w, a, x, y, weights, total, maximum)
}

// WriteSuppression renders a Section-7 suppression comparison.
func WriteSuppression(w io.Writer, r SuppressionResult) error {
	return report.WriteSuppression(w, r)
}

// WriteProfile renders a response-distribution profile as an ASCII
// histogram.
func WriteProfile(w io.Writer, p ResponseProfile) error {
	return report.WriteProfile(w, p)
}

// Quasi-natural traces (Section 4.1 substitution).
type (
	// TraceProfile is a stochastic behavioral profile generating
	// quasi-natural process traces.
	TraceProfile = trace.Profile
	// MFSStats summarizes minimal foreign sequences found in a stream.
	MFSStats = trace.MFSStats
)

// DaemonTraceProfile models a network daemon's system-call stream.
func DaemonTraceProfile() *TraceProfile { return trace.DaemonProfile() }

// ShellTraceProfile models an interactive shell session's command stream.
func ShellTraceProfile() *TraceProfile { return trace.ShellProfile() }

// WebServerTraceProfile models a request-serving worker's event stream.
func WebServerTraceProfile() *TraceProfile { return trace.WebServerProfile() }

// TraceProfiles returns the built-in quasi-natural profiles by name.
func TraceProfiles() map[string]*TraceProfile {
	return map[string]*TraceProfile{
		"daemon":    DaemonTraceProfile(),
		"shell":     ShellTraceProfile(),
		"webserver": WebServerTraceProfile(),
	}
}

// GenerateTrace emits approximately n symbols from a profile with a
// deterministic seed.
func GenerateTrace(p *TraceProfile, seed uint64, n int) (Stream, error) {
	return p.Generate(rng.New(seed), n)
}

// ScanMFS scans a test stream against training data for minimal foreign
// sequences up to maxSize long.
func ScanMFS(train, test Stream, maxSize int) (MFSStats, error) {
	return trace.ScanMFS(seq.NewIndex(train), test, maxSize)
}

// NaturalPlacements locates minimal foreign sequences at their natural
// positions in a test stream and keeps the occurrences whose surroundings
// already satisfy the boundary-sequence constraint for widths
// [minWidth, maxWidth] (plus predictor contexts), ready to evaluate in
// place. limit bounds the number returned (0 = all).
func NaturalPlacements(trainIx *SequenceIndex, test Stream, maxSize, minWidth, maxWidth, limit int) ([]Placement, error) {
	opts := inject.Options{MinWidth: minWidth, MaxWidth: maxWidth, ContextWidths: true}
	return trace.NaturalPlacements(trainIx, test, maxSize, opts, limit)
}

// SynthesizeMFS searches for a minimal foreign sequence of the given size
// with respect to the indexed training stream by the paper's brute-force
// strategy: extend rare occurring sequences until one turns foreign while
// its proper subsequences keep occurring. The returned report carries the
// verified sequence; ErrNoMFSFound is returned when the search exhausts.
func SynthesizeMFS(trainIx *SequenceIndex, size, alphabetSize int, rareCutoff float64, seed uint64) (AnomalyReport, error) {
	return anomaly.Synthesize(trainIx, size, alphabetSize, rareCutoff, rng.New(seed), 0)
}

// VerifyMFS checks a candidate sequence against the indexed training
// stream (foreign / minimal / composed of rare parts).
func VerifyMFS(trainIx *SequenceIndex, candidate Stream, rareCutoff float64) (AnomalyReport, error) {
	return anomaly.Verify(trainIx, candidate, rareCutoff)
}

// ErrNoMFSFound reports an exhausted minimal-foreign-sequence search.
var ErrNoMFSFound = anomaly.ErrNotFound

// NewSequenceIndex builds a multi-width sequence index over a stream.
func NewSequenceIndex(stream Stream) *SequenceIndex { return seq.NewIndex(stream) }
