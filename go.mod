module adiv

go 1.22
