// Benchmark harness: one bench per reproduced figure (the code that
// regenerates each figure's data is what each bench measures), plus
// detector micro-benchmarks and the ablation sweeps called out in
// DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
package adiv_test

import (
	"fmt"
	"io"
	"testing"

	"adiv"
)

// benchCorpus shares the reduced corpus with the figure tests. Corpus
// construction cost is excluded from every figure bench via b.ResetTimer.
func benchCorpus(b *testing.B) *adiv.Corpus {
	b.Helper()
	return sharedCorpus(b)
}

// BenchmarkFigure2IncidentSpan measures incident-span computation and
// rendering for the paper's Figure-2 parameters (DW=5, AS=8).
func BenchmarkFigure2IncidentSpan(b *testing.B) {
	corpus := benchCorpus(b)
	p := corpus.Placements[8]
	a := adiv.EvaluationAlphabet()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := adiv.WriteIncidentSpan(io.Discard, a, p, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// figureMapBench measures regenerating one detector's full performance map
// (train at every window 2-15, score all eight test streams).
func figureMapBench(b *testing.B, name string, factory adiv.Factory, opts adiv.EvalOptions) {
	corpus := benchCorpus(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := corpus.PerformanceMap(name, factory, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(m.Cells()) == 0 {
			b.Fatal("empty map")
		}
	}
}

// BenchmarkFigure3LBMap regenerates the Lane & Brodley performance map.
func BenchmarkFigure3LBMap(b *testing.B) {
	figureMapBench(b, adiv.DetectorLaneBrodley, adiv.LaneBrodleyFactory, adiv.DefaultEvalOptions())
}

// BenchmarkFigure4MarkovMap regenerates the Markov performance map.
func BenchmarkFigure4MarkovMap(b *testing.B) {
	figureMapBench(b, adiv.DetectorMarkov, adiv.MarkovFactory, adiv.DefaultEvalOptions())
}

// BenchmarkFigure5StideMap regenerates the Stide performance map.
func BenchmarkFigure5StideMap(b *testing.B) {
	figureMapBench(b, adiv.DetectorStide, adiv.StideFactory, adiv.DefaultEvalOptions())
}

// BenchmarkFigure6NNMap regenerates the neural-network performance map
// (fourteen network trainings per iteration; by far the heaviest figure).
func BenchmarkFigure6NNMap(b *testing.B) {
	figureMapBench(b, adiv.DetectorNeuralNet, adiv.NeuralNetFactory(adiv.DefaultNNConfig()), adiv.NeuralNetEvalOptions())
}

// BenchmarkFigure7LBSimilarity measures the Figure-7 similarity
// calculation.
func BenchmarkFigure7LBSimilarity(b *testing.B) {
	normal := adiv.Stream{0, 1, 2, 3, 4}
	foreign := adiv.Stream{0, 1, 2, 3, 0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := adiv.LBSimilarity(normal, foreign); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSection7Suppression regenerates the false-alarm-suppression
// experiment: Markov primary, Stide veto, rare-containing test data.
func BenchmarkSection7Suppression(b *testing.B) {
	corpus := benchCorpus(b)
	noisy, err := corpus.NoisyStream(8_000, 1)
	if err != nil {
		b.Fatal(err)
	}
	placement, err := corpus.InjectInto(noisy, 6, 8)
	if err != nil {
		b.Fatal(err)
	}
	markov, err := adiv.NewMarkov(8)
	if err != nil {
		b.Fatal(err)
	}
	stide, err := adiv.NewStide(8)
	if err != nil {
		b.Fatal(err)
	}
	if err := adiv.TrainAll(corpus.Training, markov, stide); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := adiv.Suppress(markov, stide, placement, adiv.RareSensitiveThreshold, adiv.StrictThreshold)
		if err != nil {
			b.Fatal(err)
		}
		if !r.Suppressed.Hit {
			b.Fatal("suppression lost the hit")
		}
	}
}

// BenchmarkMFSScan regenerates the Section-4.1 prevalence measurement on
// quasi-natural daemon traces.
func BenchmarkMFSScan(b *testing.B) {
	profile := adiv.DaemonTraceProfile()
	train, err := adiv.GenerateTrace(profile, 1, 150_000)
	if err != nil {
		b.Fatal(err)
	}
	test, err := adiv.GenerateTrace(profile, 2, 50_000)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, err := adiv.ScanMFS(train, test, 12)
		if err != nil {
			b.Fatal(err)
		}
		if stats.Positions == 0 {
			b.Fatal("empty scan")
		}
	}
}

// BenchmarkCorpusBuild measures the end-to-end data-synthesis pipeline
// (training generation, anomaly verification, boundary-safe injection).
func BenchmarkCorpusBuild(b *testing.B) {
	cfg := adiv.QuickConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := adiv.BuildCorpus(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// trainedDetector builds and trains one detector on the shared corpus.
func trainedDetector(b *testing.B, name string, dw int) adiv.Detector {
	b.Helper()
	corpus := benchCorpus(b)
	det, err := adiv.NewDetector(name, dw)
	if err != nil {
		b.Fatal(err)
	}
	if err := det.Train(corpus.Training); err != nil {
		b.Fatal(err)
	}
	return det
}

// BenchmarkDetectorScore compares the detectors' scoring throughput at
// the same window length on the same stream — the diversity of similarity
// metrics has a cost axis too.
func BenchmarkDetectorScore(b *testing.B) {
	for _, name := range adiv.AllDetectorNames() {
		b.Run(name, func(b *testing.B) {
			corpus := benchCorpus(b)
			det := trainedDetector(b, name, 8)
			stream := corpus.Placements[6].Stream
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := det.Score(stream); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(len(stream)))
		})
	}
}

// BenchmarkDetectorTrain compares training cost across the detectors.
func BenchmarkDetectorTrain(b *testing.B) {
	for _, name := range adiv.AllDetectorNames() {
		b.Run(name, func(b *testing.B) {
			corpus := benchCorpus(b)
			det, err := adiv.NewDetector(name, 8)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := det.Train(corpus.Training); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationWindow sweeps the detector window for Stide — the
// parameter the paper identifies as decisive — measuring how scoring cost
// scales with DW.
func BenchmarkAblationWindow(b *testing.B) {
	for _, dw := range []int{2, 6, 10, 15} {
		b.Run(fmt.Sprintf("DW=%d", dw), func(b *testing.B) {
			corpus := benchCorpus(b)
			det := trainedDetector(b, adiv.DetectorStide, dw)
			stream := corpus.Placements[6].Stream
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := det.Score(stream); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationNNDepth compares the single- and two-hidden-layer
// architectures at equal total training effort.
func BenchmarkAblationNNDepth(b *testing.B) {
	configs := map[string]adiv.NNConfig{}
	shallow := adiv.DefaultNNConfig()
	shallow.Epochs = 100
	configs["1-layer"] = shallow
	deep := shallow
	deep.Hidden2 = 12
	configs["2-layer"] = deep
	for _, name := range []string{"1-layer", "2-layer"} {
		cfg := configs[name]
		b.Run(name, func(b *testing.B) {
			corpus := benchCorpus(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				det, err := adiv.NewNeuralNet(6, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := det.Train(corpus.Training); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationNNEpochs sweeps the neural network's training epochs,
// the tuning knob behind the Figure-6 sensitivity result.
func BenchmarkAblationNNEpochs(b *testing.B) {
	for _, epochs := range []int{10, 100, 400} {
		b.Run(fmt.Sprintf("epochs=%d", epochs), func(b *testing.B) {
			corpus := benchCorpus(b)
			cfg := adiv.DefaultNNConfig()
			cfg.Epochs = epochs
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				det, err := adiv.NewNeuralNet(6, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := det.Train(corpus.Training); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStreamingScore measures the online scoring adapter: "stream" is
// a whole-stream PushAll including scorer construction (comparable to
// BenchmarkDetectorScore/stide), "push" is the steady-state per-symbol hot
// path, which must not allocate at all — the benchmark asserts the
// zero-alloc contract outright, like BenchmarkWindowCursor.
func BenchmarkStreamingScore(b *testing.B) {
	corpus := benchCorpus(b)
	det := trainedDetector(b, adiv.DetectorStide, 8)
	stream := corpus.Placements[6].Stream
	b.Run("stream", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			scorer, err := adiv.NewStreamScorer(det)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := scorer.PushAll(stream); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(len(stream)))
	})
	b.Run("push", func(b *testing.B) {
		scorer, err := adiv.NewStreamScorer(det)
		if err != nil {
			b.Fatal(err)
		}
		// Warm past the initial window fill so every timed push scores.
		for _, sym := range stream[:16] {
			if _, _, err := scorer.Push(sym); err != nil {
				b.Fatal(err)
			}
		}
		if allocs := testing.AllocsPerRun(100, func() {
			if _, _, err := scorer.Push(stream[0]); err != nil {
				b.Fatal(err)
			}
		}); allocs != 0 {
			b.Fatalf("steady-state push allocates %v times, want 0", allocs)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := scorer.Push(stream[i%len(stream)]); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(1)
	})
}

// BenchmarkStreamingScoreTelemetry is BenchmarkStreamingScore/push with the
// full detection-telemetry stack attached — per-family latency and response
// sketches, alarm counters, and an alert journal on the thresholding layer.
// The delta against the uninstrumented push is the whole telemetry cost,
// and the zero-allocation steady-state contract must survive it (asserted
// outright, like the uninstrumented benchmark).
func BenchmarkStreamingScoreTelemetry(b *testing.B) {
	corpus := benchCorpus(b)
	det := trainedDetector(b, adiv.DetectorStide, 8)
	// Steady state means non-alarming: journal appends happen only on
	// alarms, so the benchmark pushes the training stream (every window
	// known to the detector) rather than anomaly-bearing test data.
	stream := corpus.Training
	alarmer, err := adiv.NewStreamAlarmer(det, 0.999)
	if err != nil {
		b.Fatal(err)
	}
	alarmer.Instrument(adiv.NewMetrics())
	alarmer.SetJournal(adiv.NewAlertJournal(nil))
	// Warm past the initial window fill so every timed push scores.
	for _, sym := range stream[:16] {
		if _, _, err := alarmer.Push(sym); err != nil {
			b.Fatal(err)
		}
	}
	// The probe walks the stream in order (a constant symbol would form a
	// foreign window, alarm, and journal — not steady state).
	next := 16
	if allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := alarmer.Push(stream[next%len(stream)]); err != nil {
			b.Fatal(err)
		}
		next++
	}); allocs != 0 {
		b.Fatalf("instrumented steady-state push allocates %v times, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := alarmer.Push(stream[(next+i)%len(stream)]); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(1)
}

// BenchmarkAblationLFC compares raw Stide against LFC-smoothed Stide — the
// post-processing stage the paper's evaluation sets aside.
func BenchmarkAblationLFC(b *testing.B) {
	for _, frame := range []int{0, 8, 32} {
		name := "raw"
		if frame > 0 {
			name = fmt.Sprintf("frame=%d", frame)
		}
		b.Run(name, func(b *testing.B) {
			corpus := benchCorpus(b)
			var det adiv.Detector = trainedDetector(b, adiv.DetectorStide, 8)
			if frame > 0 {
				var err error
				det, err = adiv.WithSmoothing(det, frame)
				if err != nil {
					b.Fatal(err)
				}
			}
			stream := corpus.Placements[6].Stream
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := det.Score(stream); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMarkovSmoothing compares maximum-likelihood against
// Laplace-smoothed Markov estimation — smoothing forfeits the exact-1
// responses the strict threshold requires.
func BenchmarkAblationMarkovSmoothing(b *testing.B) {
	for _, lambda := range []float64{0, 0.01, 1} {
		b.Run(fmt.Sprintf("lambda=%v", lambda), func(b *testing.B) {
			corpus := benchCorpus(b)
			det, err := adiv.NewSmoothedMarkov(8, lambda)
			if err != nil {
				b.Fatal(err)
			}
			if err := det.Train(corpus.Training); err != nil {
				b.Fatal(err)
			}
			stream := corpus.Placements[6].Stream
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := det.Score(stream); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkROC measures a four-threshold ROC estimate over three
// rare-containing trials.
func BenchmarkROC(b *testing.B) {
	corpus := benchCorpus(b)
	det := trainedDetector(b, adiv.DetectorMarkov, 8)
	var placements []adiv.Placement
	for i := 0; i < 3; i++ {
		noisy, err := corpus.NoisyStream(6_000, uint64(20+i))
		if err != nil {
			b.Fatal(err)
		}
		p, err := corpus.InjectInto(noisy, 6, 8)
		if err != nil {
			b.Fatal(err)
		}
		placements = append(placements, p)
	}
	thresholds := []float64{0.5, 0.9, 0.98, 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		curve, err := adiv.ROC(det, placements, thresholds)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := curve.AUC(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiagnose measures one Figure-1 decision-chain walk (a full
// window sweep of trained Stide detectors).
func BenchmarkDiagnose(b *testing.B) {
	corpus := benchCorpus(b)
	factory, opts, err := adiv.DetectorFactory(adiv.DetectorStide)
	if err != nil {
		b.Fatal(err)
	}
	in := adiv.DiagnosisInputs{
		Manifests:      true,
		Observed:       true,
		TrainIndex:     corpus.TrainIndex,
		RareCutoff:     adiv.RareCutoff,
		Placement:      corpus.Placements[7],
		Factory:        factory,
		MinWindow:      2,
		MaxWindow:      10,
		DeployedWindow: 5,
		Train:          corpus.Training,
		Opts:           opts,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := adiv.Diagnose(in)
		if err != nil {
			b.Fatal(err)
		}
		if v.Detected {
			b.Fatal("expected a mistuned verdict")
		}
	}
}

// BenchmarkHMM measures the extension detector's Baum-Welch training and
// forward-recursion scoring, per (states × alphabet) configuration so the
// kernel's cost scaling is visible per shape. "train" and "score" with no
// shape suffix are the evaluation default (DefaultHMMConfig, inferred
// alphabet), comparable across snapshots.
func BenchmarkHMM(b *testing.B) {
	corpus := benchCorpus(b)
	shapes := []struct {
		label    string
		states   int
		alphabet int // 0 infers from training, the default
	}{
		{"", 10, 0},
		{"states=4,k=auto", 4, 0},
		{"states=10,k=64", 10, 64},
	}
	for _, sh := range shapes {
		cfg := adiv.DefaultHMMConfig()
		cfg.States = sh.states
		cfg.AlphabetSize = sh.alphabet
		trainName, scoreName := "train", "score"
		if sh.label != "" {
			trainName += "/" + sh.label
			scoreName += "/" + sh.label
		}
		b.Run(trainName, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				det, err := adiv.NewHMM(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := det.Train(corpus.Training); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(scoreName, func(b *testing.B) {
			det, err := adiv.NewHMM(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := det.Train(corpus.Training); err != nil {
				b.Fatal(err)
			}
			stream := corpus.Placements[6].Stream
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := det.Score(stream); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(len(stream)))
		})
	}
}

// BenchmarkInjection measures the boundary-safe injection search.
func BenchmarkInjection(b *testing.B) {
	corpus := benchCorpus(b)
	m, err := adiv.CanonicalMFS(6)
	if err != nil {
		b.Fatal(err)
	}
	ix := corpus.TrainIndex
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := adiv.InjectBoundarySafe(ix, corpus.Background, m, 2, 15); err != nil {
			b.Fatal(err)
		}
	}
}

// gridTrain trains the four DB-backed detector families at every window of
// the evaluation grid, either each from the raw training stream or all from
// one shared training-database cache.
func gridTrain(b *testing.B, train adiv.Stream, dbs *adiv.SequenceCorpus) {
	b.Helper()
	for _, name := range []string{adiv.DetectorStide, adiv.DetectorTStide, adiv.DetectorLaneBrodley, adiv.DetectorMarkov} {
		for dw := 2; dw <= 15; dw++ {
			det, err := adiv.NewDetector(name, dw)
			if err != nil {
				b.Fatal(err)
			}
			if dbs != nil {
				err = adiv.TrainWithCorpus(det, dbs)
			} else {
				err = det.Train(train)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkGridTrainUncached trains the full four-family evaluation grid
// with each detector rebuilding its sequence databases from the raw stream
// — the pre-cache cost of one perfmap/ensemble run's training phase.
func BenchmarkGridTrainUncached(b *testing.B) {
	corpus := benchCorpus(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gridTrain(b, corpus.Training, nil)
	}
}

// BenchmarkGridTrainCached trains the same grid through a shared
// training-corpus cache: each width's database is built once and reused by
// every family that wants it (a fresh cache per iteration, so the build
// cost is measured, just not repeated).
func BenchmarkGridTrainCached(b *testing.B) {
	corpus := benchCorpus(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dbs := adiv.NewSequenceCorpus(corpus.Training)
		gridTrain(b, nil, dbs)
	}
}

// BenchmarkNNTrainKernel isolates the neural-network training kernel — the
// hot loop behind BenchmarkFigure6NNMap — across SGD granularities:
// "seq" is exact per-example SGD (the reference semantics every figure is
// pinned to), "batch" applies per-example gradients batch-wise with a
// worker pool (bit-identical for every worker count).
func BenchmarkNNTrainKernel(b *testing.B) {
	corpus := benchCorpus(b)
	base := adiv.DefaultNNConfig()
	base.Epochs = 100
	variants := []struct {
		name string
		mut  func(*adiv.NNConfig)
	}{
		{"seq", func(*adiv.NNConfig) {}},
		{"batch8", func(c *adiv.NNConfig) { c.BatchSize = 8 }},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			cfg := base
			v.mut(&cfg)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				det, err := adiv.NewNeuralNet(6, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := det.Train(corpus.Training); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWindowCursor measures the zero-allocation window-scoring
// primitive: a reused cursor walking every window of the test stream with a
// keyed count lookup per step. The benchmark asserts the zero-alloc
// contract outright — a regression fails the bench, not just a number.
func BenchmarkWindowCursor(b *testing.B) {
	corpus := benchCorpus(b)
	stream := corpus.Placements[6].Stream
	db := corpus.TrainingDBs()
	grams, err := db.DB(8)
	if err != nil {
		b.Fatal(err)
	}
	cur := adiv.NewWindowCursor(stream, 8)
	walk := func() int {
		cur.Reset(stream, 8)
		hits := 0
		for w, ok := cur.Next(); ok; w, ok = cur.Next() {
			if grams.CountBytes(w) > 0 {
				hits++
			}
		}
		return hits
	}
	if allocs := testing.AllocsPerRun(10, func() { walk() }); allocs != 0 {
		b.Fatalf("cursor walk allocates %v times per pass, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if walk() == 0 {
			b.Fatal("no window of the test stream appears in training")
		}
	}
	b.SetBytes(int64(len(stream)))
}

// BenchmarkDetectorScoreObserved pins down the cost of the observability
// wrapper around Detector.Score. "baseline" is the raw detector;
// "disabled" wraps with a nil registry (ObserveDetector returns the
// detector unwrapped, so this must match baseline exactly); "enabled"
// pays for the span, symbol counter, response histogram, and throughput
// gauge. Compare ns/op across the three to verify that runs without
// -metrics-out are unaffected.
func BenchmarkDetectorScoreObserved(b *testing.B) {
	corpus := benchCorpus(b)
	stream := corpus.Placements[6].Stream
	variants := []struct {
		name string
		wrap func(adiv.Detector) adiv.Detector
	}{
		{"baseline", func(d adiv.Detector) adiv.Detector { return d }},
		{"disabled", func(d adiv.Detector) adiv.Detector { return adiv.ObserveDetector(d, nil) }},
		{"enabled", func(d adiv.Detector) adiv.Detector { return adiv.ObserveDetector(d, adiv.NewMetrics()) }},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			det := v.wrap(trainedDetector(b, adiv.DetectorStide, 8))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := det.Score(stream); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(len(stream)))
		})
	}
}
