package adiv_test

import (
	"testing"

	"adiv"
)

// TestMimicryEvadesWindowMatching reproduces the Section-2 background
// observation that attacks can be manipulated to manifest as normal
// behavior: a camouflaged sequence whose every width-6 window occurs in
// training draws zero response from Stide at DW <= 6 — and from the
// Markov detector at DW < 6 — while a detector looking through a longer
// window catches the seams between the borrowed contexts.
func TestMimicryEvadesWindowMatching(t *testing.T) {
	corpus := sharedCorpus(t)
	const camouflageWidth = 6

	// Find a deterministic seed whose camouflage becomes visible somewhere
	// in the evaluated window range (virtually all do).
	var attack adiv.Stream
	visibleAt := 0
	for seed := uint64(1); seed <= 30; seed++ {
		s, err := adiv.Camouflage(corpus.TrainIndex, camouflageWidth, 60, seed)
		if err != nil {
			t.Fatal(err)
		}
		w, err := adiv.MimicryDetectionWidth(corpus.TrainIndex, s, 2, adiv.MaxWindow)
		if err != nil {
			t.Fatal(err)
		}
		if w > camouflageWidth {
			attack, visibleAt = s, w
			break
		}
	}
	if attack == nil {
		t.Fatal("no camouflage seed produced a walk visible within the window range")
	}

	// Stide up to the camouflage width: every response exactly zero —
	// the "attack" reads as completely normal.
	for dw := 2; dw <= camouflageWidth; dw++ {
		det, err := adiv.NewStide(dw)
		if err != nil {
			t.Fatal(err)
		}
		if err := det.Train(corpus.Training); err != nil {
			t.Fatal(err)
		}
		responses, err := det.Score(attack)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range responses {
			if r != 0 {
				t.Fatalf("stide(DW=%d) response[%d] = %v on camouflaged attack", dw, i, r)
			}
		}
	}

	// A window at the detection width sees a foreign seam.
	det, err := adiv.NewStide(visibleAt)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.Train(corpus.Training); err != nil {
		t.Fatal(err)
	}
	responses, err := det.Score(attack)
	if err != nil {
		t.Fatal(err)
	}
	caught := false
	for _, r := range responses {
		if r == 1 {
			caught = true
		}
	}
	if !caught {
		t.Errorf("stide(DW=%d) failed to catch the seam DetectionWidth reported", visibleAt)
	}

	// The Markov detector needs its (DW+1)-grams normal: blind strictly
	// below the camouflage width.
	markov, err := adiv.NewMarkov(camouflageWidth - 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := markov.Train(corpus.Training); err != nil {
		t.Fatal(err)
	}
	responses, err = markov.Score(attack)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range responses {
		if r == 1 {
			t.Errorf("markov(DW=%d) maximal response[%d] on camouflaged attack", camouflageWidth-1, i)
		}
	}
}
