package adiv

import (
	"adiv/internal/alphabet"
	"adiv/internal/anomaly"
	"adiv/internal/checkpoint"
	"adiv/internal/core"
	"adiv/internal/eval"
	"adiv/internal/gen"
	"adiv/internal/inject"
	"adiv/internal/seq"
)

// Core data types.
type (
	// Symbol is one categorical element of a data stream.
	Symbol = alphabet.Symbol
	// Stream is a stream of categorical symbols.
	Stream = seq.Stream
	// Alphabet describes the symbol domain of a stream.
	Alphabet = alphabet.Alphabet
	// SequenceDB is a fixed-width sequence database with occurrence counts.
	SequenceDB = seq.DB
	// SequenceIndex caches sequence databases of one stream at many widths.
	SequenceIndex = seq.Index
	// SequenceCorpus is a concurrency-safe, build-once cache of sequence
	// databases over one immutable training stream; detectors trained
	// through it share per-width databases instead of rebuilding them.
	SequenceCorpus = seq.Corpus
	// AnomalyReport records how a candidate sequence relates to training
	// data (foreign / minimal / composed of rare parts).
	AnomalyReport = anomaly.Report
	// Placement is an anomaly injected into background data.
	Placement = inject.Placement
	// WindowCursor iterates the overlapping fixed-width windows of a stream
	// without per-window allocation; pair it with SequenceDB's byte-keyed
	// lookups (CountBytes, ContainsBytes) for zero-allocation scoring loops.
	WindowCursor = seq.Cursor
)

// Evaluation types.
type (
	// Config parameterizes a full evaluation run.
	Config = core.Config
	// Corpus is the complete evaluation data suite.
	Corpus = core.Corpus
	// EvalOptions tunes blind/weak/capable classification.
	EvalOptions = eval.Options
	// Outcome classifies a detector's reaction to an injected anomaly.
	Outcome = eval.Outcome
	// Assessment is one detector deployment on one test stream.
	Assessment = eval.Assessment
	// Map is a detector performance map over the evaluation grid.
	Map = eval.Map
	// AlarmStats tallies hits and false alarms at a detection threshold.
	AlarmStats = eval.AlarmStats
	// OperatingPoint is one point of a detection-threshold sweep.
	OperatingPoint = eval.OperatingPoint
	// GridScheduler is a bounded worker pool for performance-map grid work;
	// set it as EvalOptions.Scheduler to share one pool across every map of
	// a run (the commands' -j flag).
	GridScheduler = eval.Scheduler
	// CheckpointJournal is the append-only cell journal behind the
	// commands' -checkpoint/-resume flags; set it as
	// EvalOptions.Checkpoint to make grid runs crash-recoverable.
	CheckpointJournal = checkpoint.Journal
	// CheckpointFingerprint pins the run configuration a journal was
	// written under; resuming under a different fingerprint is refused.
	// Build one with Corpus.Fingerprint.
	CheckpointFingerprint = checkpoint.Fingerprint
)

// OpenCheckpoint opens (or, with resume, continues) a cell journal under
// dir for the fingerprinted run — the library-level counterpart of the
// commands' -checkpoint/-resume flags.
func OpenCheckpoint(dir string, fp CheckpointFingerprint, resume bool) (*CheckpointJournal, error) {
	return checkpoint.Open(dir, fp, resume)
}

// Outcome values.
const (
	OutcomeUndefined = eval.Undefined
	OutcomeBlind     = eval.Blind
	OutcomeWeak      = eval.Weak
	OutcomeCapable   = eval.Capable
)

// Paper-dictated evaluation constants.
const (
	// AlphabetSize is the evaluation alphabet size (8).
	AlphabetSize = gen.AlphabetSize
	// RareCutoff is the rare-sequence relative-frequency bound (0.5%).
	RareCutoff = gen.RareCutoff
	// MinAnomalySize and MaxAnomalySize bound the MFS lengths (2-9).
	MinAnomalySize = gen.MinAnomalySize
	MaxAnomalySize = gen.MaxAnomalySize
	// MinWindow and MaxWindow bound the detector windows (2-15).
	MinWindow = gen.MinWindow
	MaxWindow = gen.MaxWindow
)

// Detection-threshold regimes of the evaluation.
const (
	// StrictThreshold recognizes only maximally anomalous (foreign)
	// responses as hits — the paper's headline regime ("the detection
	// threshold was set to 1 for all detectors").
	StrictThreshold = 1.0
	// RareSensitiveThreshold additionally counts strong rare-sequence
	// responses as hits. On the evaluation data the Markov detector's
	// rare-transition responses sit at 1-P(excursion) ≈ 0.985, so 0.98
	// turns its coverage from the DW >= AS-1 edge region into the entire
	// space — at the price of false alarms on naturally occurring rare
	// sequences (Section 7).
	RareSensitiveThreshold = 0.98
)

// DefaultConfig returns the paper-faithful evaluation parameters
// (one-million-element training stream, sizes 2-9, windows 2-15).
func DefaultConfig() Config { return core.DefaultConfig() }

// QuickConfig returns a reduced configuration sized for tests and examples.
func QuickConfig() Config { return core.QuickConfig() }

// BuildCorpus synthesizes and verifies the full evaluation data suite.
func BuildCorpus(cfg Config) (*Corpus, error) { return core.BuildCorpus(cfg) }

// DefaultEvalOptions matches the paper's strict regime: only responses of 1
// count as maximal.
func DefaultEvalOptions() EvalOptions { return eval.DefaultOptions() }

// RareSensitiveEvalOptions classifies strong rare-sequence responses as
// maximal, the regime under which the Markov detector "covers the entire
// space under consideration" (paper Section 8).
func RareSensitiveEvalOptions() EvalOptions {
	return EvalOptions{CapableAt: RareSensitiveThreshold, BlindBelow: 1e-9}
}

// NeuralNetEvalOptions is the documented classification regime for the
// neural-network detector, whose softmax outputs approach but never reach
// the exact extremes: responses at or above 0.999 count as maximal and
// responses below 0.001 count as zero.
func NeuralNetEvalOptions() EvalOptions {
	return EvalOptions{CapableAt: 0.999, BlindBelow: 1e-3}
}

// NewWindowCursor returns a cursor over the width-length windows of s. The
// stream is byte-encoded once; each Next yields an overlapping subslice of
// that buffer, valid until the next Reset.
func NewWindowCursor(s Stream, width int) *WindowCursor { return seq.NewCursor(s, width) }

// NewGridScheduler returns a bounded pool running at most workers grid
// tasks concurrently; workers < 1 means runtime.NumCPU.
func NewGridScheduler(workers int) *GridScheduler { return eval.NewScheduler(workers) }

// NewSequenceCorpus returns a shared training-database cache over stream
// (copied). Pass it to TrainWithCorpus to train many detectors and window
// widths without rebuilding per-width sequence databases.
func NewSequenceCorpus(stream Stream) *SequenceCorpus { return seq.NewCorpus(stream) }

// EvaluationAlphabet returns the 8-symbol alphabet of the synthetic
// evaluation data.
func EvaluationAlphabet() *Alphabet { return alphabet.MustNew(gen.AlphabetSize) }

// DataSpec selects the synthetic-data construction: the common cycle, the
// alphabet, and the rare symbols carrying the excursions. The default
// (paper) spec uses alphabet 8 with a 6-symbol cycle; alternative specs
// support the alphabet-size-invariance experiments (assign one to
// Config.Gen.Spec).
type DataSpec = gen.Spec

// NewDataSpec returns a construction with the given alphabet size and
// cycle length (cycle 1..cycleLen; symbol 0 and the last symbol are rare).
func NewDataSpec(alphabetSize, cycleLen int) (DataSpec, error) {
	return gen.NewSpec(alphabetSize, cycleLen)
}

// DefaultDataSpec returns the paper's construction.
func DefaultDataSpec() DataSpec { return gen.DefaultSpec() }

// CanonicalMFS returns the canonical minimal foreign sequence of the given
// size (2-9) for the synthetic evaluation data.
func CanonicalMFS(size int) (Stream, error) { return gen.CanonicalMFS(size) }
