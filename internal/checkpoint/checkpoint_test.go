package checkpoint

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"adiv/internal/obs"
)

func testFingerprint() Fingerprint {
	return Fingerprint{
		Command:       "perfmap",
		AlphabetSize:  8,
		Seed:          42,
		TrainLen:      1000,
		BackgroundLen: 200,
		MinSize:       2,
		MaxSize:       9,
		MinWindow:     2,
		MaxWindow:     15,
		RareCutoff:    0.005,
		Detectors:     []string{"stide", "nn"},
		CorpusHash:    "fnv1a:deadbeef",
	}
}

func testRecord(key string, window, size int) CellRecord {
	return CellRecord{
		Key:      key,
		Detector: key,
		Window:   window,
		Size:     size,
		RespBits: math.Float64bits(0.25 * float64(window+size)),
		Outcome:  (window + size) % 4,
	}
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fp := testFingerprint()
	j, err := Open(dir, fp, false)
	if err != nil {
		t.Fatalf("Open fresh: %v", err)
	}
	var want []CellRecord
	for window := 2; window <= 4; window++ {
		for size := 2; size <= 5; size++ {
			rec := testRecord("stide", window, size)
			if err := j.Append(rec); err != nil {
				t.Fatalf("Append: %v", err)
			}
			want = append(want, rec)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	back, err := Open(dir, fp, true)
	if err != nil {
		t.Fatalf("Open resume: %v", err)
	}
	defer back.Close()
	if back.Resumed() != len(want) {
		t.Fatalf("Resumed = %d, want %d", back.Resumed(), len(want))
	}
	for _, rec := range want {
		got, ok := back.Lookup(rec.Key, rec.Window, rec.Size)
		if !ok {
			t.Fatalf("Lookup(%s, %d, %d) missed", rec.Key, rec.Window, rec.Size)
		}
		if got != rec {
			t.Errorf("Lookup(%s, %d, %d) = %+v, want %+v", rec.Key, rec.Window, rec.Size, got, rec)
		}
	}
	if _, ok := back.Lookup("stide", 99, 2); ok {
		t.Errorf("Lookup of unjournaled cell hit")
	}
	if _, ok := back.Lookup("markov", 2, 2); ok {
		t.Errorf("Lookup under wrong key hit")
	}
}

func TestJournalRefusesWithoutResume(t *testing.T) {
	dir := t.TempDir()
	fp := testFingerprint()
	j, err := Open(dir, fp, false)
	if err != nil {
		t.Fatalf("Open fresh: %v", err)
	}
	if err := j.Append(testRecord("stide", 2, 2)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	j.Close()
	if _, err := Open(dir, fp, false); err == nil {
		t.Fatalf("reopening existing journal without resume succeeded")
	} else if !strings.Contains(err.Error(), "-resume") {
		t.Errorf("refusal does not mention -resume: %v", err)
	}
}

func TestJournalRefusesFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, testFingerprint(), false)
	if err != nil {
		t.Fatalf("Open fresh: %v", err)
	}
	j.Close()

	cases := map[string]func(*Fingerprint){
		"seed":      func(fp *Fingerprint) { fp.Seed++ },
		"grid":      func(fp *Fingerprint) { fp.MaxWindow++ },
		"detectors": func(fp *Fingerprint) { fp.Detectors = []string{"stide"} },
		"corpus":    func(fp *Fingerprint) { fp.CorpusHash = "fnv1a:feedface" },
		"extra":     func(fp *Fingerprint) { fp.Extra = "rare" },
	}
	for name, mutate := range cases {
		fp := testFingerprint()
		mutate(&fp)
		if _, err := Open(dir, fp, true); err == nil {
			t.Errorf("%s: resume with mismatched fingerprint succeeded", name)
		} else if !strings.Contains(err.Error(), "different configuration") {
			t.Errorf("%s: unexpected error: %v", name, err)
		}
	}

	// The unmutated fingerprint still resumes.
	back, err := Open(dir, testFingerprint(), true)
	if err != nil {
		t.Fatalf("resume with matching fingerprint: %v", err)
	}
	back.Close()
}

func TestJournalRecoversTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	fp := testFingerprint()
	j, err := Open(dir, fp, false)
	if err != nil {
		t.Fatalf("Open fresh: %v", err)
	}
	for size := 2; size <= 6; size++ {
		if err := j.Append(testRecord("stide", 3, size)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	j.Close()

	path := filepath.Join(dir, JournalFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the file mid-way through the final record: the torn write a
	// SIGKILL leaves behind.
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	back, err := Open(dir, fp, true)
	if err != nil {
		t.Fatalf("Open after truncation: %v", err)
	}
	if back.Resumed() != 4 {
		t.Fatalf("Resumed = %d after torn tail, want 4", back.Resumed())
	}
	if _, ok := back.Lookup("stide", 3, 6); ok {
		t.Errorf("torn record still replayable")
	}
	// The tail was truncated away, so appending continues from a clean
	// boundary: the re-evaluated cell must round-trip.
	rec := testRecord("stide", 3, 6)
	if err := back.Append(rec); err != nil {
		t.Fatalf("Append after recovery: %v", err)
	}
	back.Close()

	again, err := Open(dir, fp, true)
	if err != nil {
		t.Fatalf("reopen after recovered append: %v", err)
	}
	defer again.Close()
	if again.Resumed() != 5 {
		t.Fatalf("Resumed = %d after recovered append, want 5", again.Resumed())
	}
	if got, ok := again.Lookup("stide", 3, 6); !ok || got != rec {
		t.Errorf("recovered append lost: got %+v ok=%v", got, ok)
	}
}

func TestJournalRecoversBitFlip(t *testing.T) {
	dir := t.TempDir()
	fp := testFingerprint()
	j, err := Open(dir, fp, false)
	if err != nil {
		t.Fatalf("Open fresh: %v", err)
	}
	for size := 2; size <= 5; size++ {
		if err := j.Append(testRecord("nn", 7, size)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	j.Close()

	path := filepath.Join(dir, JournalFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit in the third cell record; CRC must catch it and
	// recovery must keep the two records before it.
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)-60] ^= 0x10
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}

	back, err := Open(dir, fp, true)
	if err != nil {
		t.Fatalf("Open after bit flip: %v", err)
	}
	defer back.Close()
	if back.Resumed() >= 4 {
		t.Fatalf("Resumed = %d after bit flip, want < 4", back.Resumed())
	}
	for size := 2; size < 2+back.Resumed(); size++ {
		if _, ok := back.Lookup("nn", 7, size); !ok {
			t.Errorf("valid-prefix record (size %d) lost", size)
		}
	}
}

func TestJournalCorruptHeaderRestarts(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, JournalFile)
	garbage := []byte("not a journal at all")
	if err := os.WriteFile(path, garbage, 0o644); err != nil {
		t.Fatal(err)
	}
	fp := testFingerprint()
	j, err := Open(dir, fp, true)
	if err != nil {
		t.Fatalf("Open over corrupt header: %v", err)
	}
	if j.Resumed() != 0 {
		t.Fatalf("Resumed = %d from corrupt header, want 0", j.Resumed())
	}
	// The unreadable predecessor is preserved, not destroyed.
	if got := j.CorruptPath(); got != path+CorruptSuffix {
		t.Fatalf("CorruptPath = %q, want %q", got, path+CorruptSuffix)
	}
	preserved, err := os.ReadFile(path + CorruptSuffix)
	if err != nil {
		t.Fatalf("reading preserved corrupt journal: %v", err)
	}
	if string(preserved) != string(garbage) {
		t.Fatalf("preserved corrupt journal content changed: %q", preserved)
	}
	reg := obs.New()
	j.Instrument(reg)
	if got := reg.Counter("ckpt/corrupt").Value(); got != 1 {
		t.Errorf("ckpt/corrupt = %d, want 1", got)
	}
	if err := j.Append(testRecord("stide", 2, 2)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	j.Close()
	back, err := Open(dir, fp, true)
	if err != nil {
		t.Fatalf("reopen restarted journal: %v", err)
	}
	defer back.Close()
	if back.Resumed() != 1 {
		t.Fatalf("Resumed = %d after restart, want 1", back.Resumed())
	}
	if back.CorruptPath() != "" {
		t.Errorf("healthy reopen reports CorruptPath %q", back.CorruptPath())
	}
}

// TestJournalCorruptHeaderPreservesCells is the data-loss regression test:
// a journal holding completed cells whose header takes a bit flip must not
// be clobbered in place. Without -resume the open refuses outright and the
// file survives byte-for-byte; with -resume the unreadable file is renamed
// to grid.journal.corrupt — every journaled byte still on disk — and a
// fresh journal starts in its place.
func TestJournalCorruptHeaderPreservesCells(t *testing.T) {
	dir := t.TempDir()
	fp := testFingerprint()
	j, err := Open(dir, fp, false)
	if err != nil {
		t.Fatalf("Open fresh: %v", err)
	}
	for size := 2; size <= 6; size++ {
		if err := j.Append(testRecord("stide", 3, size)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	j.Close()

	path := filepath.Join(dir, JournalFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit inside the header payload: the CRC no longer matches,
	// so the whole journal loses its provenance.
	flipped := append([]byte(nil), data...)
	flipped[frameOverhead+2] ^= 0x08
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}

	// Without resume: hard refusal, file untouched.
	if _, err := Open(dir, fp, false); err == nil {
		t.Fatalf("Open over corrupt header without resume succeeded")
	} else if !strings.Contains(err.Error(), "-resume") {
		t.Errorf("refusal does not mention -resume: %v", err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("journal destroyed by refused open: %v", err)
	}
	if string(after) != string(flipped) {
		t.Fatalf("refused open modified the journal in place")
	}

	// With resume: preserved as .corrupt, byte-for-byte, and a fresh
	// journal takes its place.
	back, err := Open(dir, fp, true)
	if err != nil {
		t.Fatalf("Open with resume over corrupt header: %v", err)
	}
	defer back.Close()
	if back.Resumed() != 0 {
		t.Fatalf("Resumed = %d from corrupt journal, want 0", back.Resumed())
	}
	preserved, err := os.ReadFile(path + CorruptSuffix)
	if err != nil {
		t.Fatalf("corrupt journal not preserved: %v", err)
	}
	if string(preserved) != string(flipped) {
		t.Fatalf("preserved corrupt journal diverges from the original bytes")
	}
}

// TestJournalLastWriteWins pins the duplicate-append contract Merge relies
// on: both frames stay in the file, Lookup and a reopened journal's replay
// map return the latest record, and the supersession is surfaced through
// Superseded and ckpt/cells_superseded instead of happening silently.
func TestJournalLastWriteWins(t *testing.T) {
	dir := t.TempDir()
	fp := testFingerprint()
	j, err := Open(dir, fp, false)
	if err != nil {
		t.Fatalf("Open fresh: %v", err)
	}
	reg := obs.New()
	j.Instrument(reg)

	first := testRecord("stide", 3, 4)
	second := first
	second.RespBits = math.Float64bits(0.875)
	second.Outcome = 2
	if err := j.Append(first); err != nil {
		t.Fatalf("Append first: %v", err)
	}
	if err := j.Append(second); err != nil {
		t.Fatalf("Append duplicate: %v", err)
	}
	if got, ok := j.Lookup("stide", 3, 4); !ok || got != second {
		t.Fatalf("Lookup after duplicate append = %+v ok=%v, want latest %+v", got, ok, second)
	}
	if j.Superseded() != 1 {
		t.Errorf("Superseded = %d, want 1", j.Superseded())
	}
	if got := reg.Counter("ckpt/cells_superseded").Value(); got != 1 {
		t.Errorf("ckpt/cells_superseded = %d, want 1", got)
	}
	j.Close()

	// Both frames are in the file (the journal is append-only)...
	data, err := os.ReadFile(filepath.Join(dir, JournalFile))
	if err != nil {
		t.Fatal(err)
	}
	if _, recs, _ := decodeAll(data); len(recs) != 2 {
		t.Fatalf("journal holds %d frames, want both duplicate frames (2)", len(recs))
	}

	// ...but replay keeps only the last, and reports the supersession.
	back, err := Open(dir, fp, true)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer back.Close()
	if back.Resumed() != 2 {
		t.Fatalf("Resumed = %d, want 2 frames recovered", back.Resumed())
	}
	if back.Cells() != 1 {
		t.Fatalf("Cells = %d after duplicate replay, want 1", back.Cells())
	}
	if got, ok := back.Lookup("stide", 3, 4); !ok || got != second {
		t.Fatalf("replayed Lookup = %+v ok=%v, want latest %+v", got, ok, second)
	}
	if back.Superseded() != 1 {
		t.Errorf("replayed Superseded = %d, want 1", back.Superseded())
	}
	reg2 := obs.New()
	back.Instrument(reg2)
	if got := reg2.Counter("ckpt/cells_superseded").Value(); got != 1 {
		t.Errorf("replayed ckpt/cells_superseded = %d, want 1", got)
	}
}

func TestJournalRejectsInvalidRecord(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, testFingerprint(), false)
	if err != nil {
		t.Fatalf("Open fresh: %v", err)
	}
	defer j.Close()
	for name, rec := range map[string]CellRecord{
		"empty key":    {Window: 2, Size: 2},
		"zero window":  {Key: "stide", Size: 2},
		"zero size":    {Key: "stide", Window: 2},
		"outcome high": {Key: "stide", Window: 2, Size: 2, Outcome: 4},
	} {
		if err := j.Append(rec); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestJournalNilSafety(t *testing.T) {
	var j *Journal
	if err := j.Append(testRecord("stide", 2, 2)); err != nil {
		t.Errorf("nil Append errored: %v", err)
	}
	if _, ok := j.Lookup("stide", 2, 2); ok {
		t.Errorf("nil Lookup hit")
	}
	if err := j.Close(); err != nil {
		t.Errorf("nil Close errored: %v", err)
	}
	if j.Cells() != 0 || j.Resumed() != 0 || j.Path() != "" {
		t.Errorf("nil accessors not zero")
	}
	j.Instrument(obs.New())
}

// TestJournalConcurrentAppends hammers one journal from many goroutines —
// the scheduler-worker shape BuildMapCorpus produces — and checks every
// record survives a reopen. Run under -race this is the package's
// concurrency gate (CI runs it in the explicit race step).
func TestJournalConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	fp := testFingerprint()
	j, err := Open(dir, fp, false)
	if err != nil {
		t.Fatalf("Open fresh: %v", err)
	}
	reg := obs.New()
	j.Instrument(reg)

	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				rec := testRecord(fmt.Sprintf("det%d", w), i/8+2, i%8+2)
				if err := j.Append(rec); err != nil {
					t.Errorf("worker %d: Append: %v", w, err)
					return
				}
				j.Lookup(rec.Key, rec.Window, rec.Size)
				j.Cells()
			}
		}(w)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := reg.Counter("ckpt/cells_appended").Value(); got != workers*perWorker {
		t.Errorf("ckpt/cells_appended = %d, want %d", got, workers*perWorker)
	}

	back, err := Open(dir, fp, true)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer back.Close()
	if back.Resumed() != workers*perWorker {
		t.Fatalf("Resumed = %d, want %d", back.Resumed(), workers*perWorker)
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			want := testRecord(fmt.Sprintf("det%d", w), i/8+2, i%8+2)
			if got, ok := back.Lookup(want.Key, want.Window, want.Size); !ok || got != want {
				t.Fatalf("worker %d record %d lost or mangled: %+v ok=%v", w, i, got, ok)
			}
		}
	}
}

func TestJournalInstrumentCounters(t *testing.T) {
	dir := t.TempDir()
	fp := testFingerprint()
	j, err := Open(dir, fp, false)
	if err != nil {
		t.Fatalf("Open fresh: %v", err)
	}
	reg := obs.New()
	j.Instrument(reg)
	if err := j.Append(testRecord("stide", 2, 2)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	j.Lookup("stide", 2, 2) // hit
	j.Lookup("stide", 2, 3) // miss
	if got := reg.Counter("ckpt/cells_replayed").Value(); got != 1 {
		t.Errorf("ckpt/cells_replayed = %d, want 1", got)
	}
	if got := reg.Counter("ckpt/bytes").Value(); got <= 0 {
		t.Errorf("ckpt/bytes = %d, want > 0", got)
	}
	j.Close()

	// Reopening and instrumenting accounts the recovered prefix as bytes.
	back, err := Open(dir, fp, true)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer back.Close()
	reg2 := obs.New()
	back.Instrument(reg2)
	if got := reg2.Counter("ckpt/bytes").Value(); got <= 0 {
		t.Errorf("resumed ckpt/bytes = %d, want > 0", got)
	}
}
