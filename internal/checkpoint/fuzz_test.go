package checkpoint

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeedJournal builds a small valid journal in memory for the fuzz
// corpus: header plus three cell records.
func fuzzSeedJournal(t interface{ Fatalf(string, ...any) }) []byte {
	hdr, err := encodeFrame(header{Schema: SchemaVersion, Fingerprint: testFingerprint()})
	if err != nil {
		t.Fatalf("encoding header: %v", err)
	}
	out := append([]byte(nil), hdr...)
	for size := 2; size <= 4; size++ {
		frame, err := encodeFrame(CellRecord{
			Key: "stide", Detector: "stide", Window: 3, Size: size,
			RespBits: math.Float64bits(1.0), Outcome: 3,
		})
		if err != nil {
			t.Fatalf("encoding record: %v", err)
		}
		out = append(out, frame...)
	}
	return out
}

// FuzzJournalDecode guards recovery against arbitrary journal bytes
// (mirroring corpusio's FuzzReadStream): decodeAll must never panic, must
// report a valid prefix no longer than the input, and the prefix it keeps
// must be stable — re-decoding exactly those bytes yields the same header
// and records, which is what makes truncate-and-continue recovery sound.
func FuzzJournalDecode(f *testing.F) {
	valid := fuzzSeedJournal(f)
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-5])         // torn tail
	f.Add(valid[:11])                   // torn header
	f.Add([]byte("garbage bytes here")) // no framing at all
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-20] ^= 0x40
	f.Add(flipped) // bit flip in the last record
	huge := append([]byte(nil), valid...)
	huge = append(huge, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0) // absurd length prefix
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, recs, validLen := decodeAll(data)
		if validLen < 0 || validLen > len(data) {
			t.Fatalf("valid prefix length %d outside [0,%d]", validLen, len(data))
		}
		if hdr == nil && len(recs) != 0 {
			t.Fatalf("recovered %d records without a header", len(recs))
		}
		for i, rec := range recs {
			if !rec.valid() {
				t.Fatalf("recovered implausible record %d: %+v", i, rec)
			}
		}
		// Recovery stability: the accepted prefix re-decodes to itself.
		hdr2, recs2, validLen2 := decodeAll(data[:validLen])
		if validLen2 != validLen || len(recs2) != len(recs) || (hdr == nil) != (hdr2 == nil) {
			t.Fatalf("re-decoding valid prefix diverged: %d/%d records, %d/%d bytes",
				len(recs2), len(recs), validLen2, validLen)
		}
		for i := range recs {
			if recs[i] != recs2[i] {
				t.Fatalf("record %d changed across re-decode: %+v vs %+v", i, recs[i], recs2[i])
			}
		}
	})
}

// FuzzMerge drives Merge over three arbitrary shard files: it must never
// panic, and whenever it succeeds the merged journal must itself be fully
// valid — a decodable header followed by nothing but valid records, with no
// torn tail of its own.
func FuzzMerge(f *testing.F) {
	valid := fuzzSeedJournal(f)
	shard1, err := encodeFrame(header{Schema: SchemaVersion, Fingerprint: WithShard(testFingerprint(), 1, 2)})
	if err != nil {
		f.Fatalf("encoding shard header: %v", err)
	}
	shard2, err := encodeFrame(header{Schema: SchemaVersion, Fingerprint: WithShard(testFingerprint(), 2, 2)})
	if err != nil {
		f.Fatalf("encoding shard header: %v", err)
	}
	rec, err := encodeFrame(CellRecord{Key: "stide", Detector: "stide", Window: 2, Size: 2, RespBits: math.Float64bits(1.0), Outcome: 3})
	if err != nil {
		f.Fatalf("encoding record: %v", err)
	}
	f.Add(valid, valid, valid)
	f.Add(append([]byte(nil), shard1...), append([]byte(nil), shard2...), []byte{})
	f.Add(append(append([]byte(nil), shard1...), rec...), append(append([]byte(nil), shard2...), rec...), valid[:11])
	f.Add([]byte("garbage"), valid, valid[:len(valid)-5])

	f.Fuzz(func(t *testing.T, a, b, c []byte) {
		dir := t.TempDir()
		var srcs []string
		for i, data := range [][]byte{a, b, c} {
			path := filepath.Join(dir, fmt.Sprintf("shard%d.journal", i))
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			srcs = append(srcs, path)
		}
		dst := filepath.Join(dir, JournalFile)
		stats, err := Merge(dst, srcs)
		if err != nil {
			return // refusal (foreign shards, headerless input, conflicts) is fine
		}
		merged, err := os.ReadFile(dst)
		if err != nil {
			t.Fatalf("successful Merge left no journal: %v", err)
		}
		hdr, recs, validLen := decodeAll(merged)
		if hdr == nil {
			t.Fatalf("merged journal has no decodable header")
		}
		if validLen != len(merged) {
			t.Fatalf("merged journal carries a torn tail: %d valid of %d bytes", validLen, len(merged))
		}
		if len(recs) != stats.Cells {
			t.Fatalf("merged journal holds %d records, stats claim %d cells", len(recs), stats.Cells)
		}
		if ShardLabel(hdr.Fingerprint) != "" {
			t.Fatalf("merged journal still carries a shard qualifier: %q", hdr.Fingerprint.Extra)
		}
	})
}

// FuzzJournalOpen drives the full Open path over arbitrary file contents:
// it must never panic, and whenever it succeeds the journal must accept a
// fresh append and survive a reopen.
func FuzzJournalOpen(f *testing.F) {
	valid := fuzzSeedJournal(f)
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-7])
	f.Add([]byte("x"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, JournalFile), data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := Open(dir, testFingerprint(), true)
		if err != nil {
			return // refusal (e.g. foreign fingerprint in a valid header) is fine
		}
		rec := CellRecord{Key: "probe", Detector: "probe", Window: 1, Size: 1, Outcome: 1}
		if err := j.Append(rec); err != nil {
			t.Fatalf("Append after Open: %v", err)
		}
		if err := j.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		back, err := Open(dir, testFingerprint(), true)
		if err != nil {
			t.Fatalf("reopen after recovered append: %v", err)
		}
		defer back.Close()
		if got, ok := back.Lookup("probe", 1, 1); !ok || got != rec {
			t.Fatalf("probe record lost across reopen: %+v ok=%v", got, ok)
		}
	})
}
