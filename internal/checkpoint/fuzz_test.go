package checkpoint

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeedJournal builds a small valid journal in memory for the fuzz
// corpus: header plus three cell records.
func fuzzSeedJournal(t interface{ Fatalf(string, ...any) }) []byte {
	hdr, err := encodeFrame(header{Schema: SchemaVersion, Fingerprint: testFingerprint()})
	if err != nil {
		t.Fatalf("encoding header: %v", err)
	}
	out := append([]byte(nil), hdr...)
	for size := 2; size <= 4; size++ {
		frame, err := encodeFrame(CellRecord{
			Key: "stide", Detector: "stide", Window: 3, Size: size,
			RespBits: math.Float64bits(1.0), Outcome: 3,
		})
		if err != nil {
			t.Fatalf("encoding record: %v", err)
		}
		out = append(out, frame...)
	}
	return out
}

// FuzzJournalDecode guards recovery against arbitrary journal bytes
// (mirroring corpusio's FuzzReadStream): decodeAll must never panic, must
// report a valid prefix no longer than the input, and the prefix it keeps
// must be stable — re-decoding exactly those bytes yields the same header
// and records, which is what makes truncate-and-continue recovery sound.
func FuzzJournalDecode(f *testing.F) {
	valid := fuzzSeedJournal(f)
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-5])         // torn tail
	f.Add(valid[:11])                   // torn header
	f.Add([]byte("garbage bytes here")) // no framing at all
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-20] ^= 0x40
	f.Add(flipped) // bit flip in the last record
	huge := append([]byte(nil), valid...)
	huge = append(huge, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0) // absurd length prefix
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, recs, validLen := decodeAll(data)
		if validLen < 0 || validLen > len(data) {
			t.Fatalf("valid prefix length %d outside [0,%d]", validLen, len(data))
		}
		if hdr == nil && len(recs) != 0 {
			t.Fatalf("recovered %d records without a header", len(recs))
		}
		for i, rec := range recs {
			if !rec.valid() {
				t.Fatalf("recovered implausible record %d: %+v", i, rec)
			}
		}
		// Recovery stability: the accepted prefix re-decodes to itself.
		hdr2, recs2, validLen2 := decodeAll(data[:validLen])
		if validLen2 != validLen || len(recs2) != len(recs) || (hdr == nil) != (hdr2 == nil) {
			t.Fatalf("re-decoding valid prefix diverged: %d/%d records, %d/%d bytes",
				len(recs2), len(recs), validLen2, validLen)
		}
		for i := range recs {
			if recs[i] != recs2[i] {
				t.Fatalf("record %d changed across re-decode: %+v vs %+v", i, recs[i], recs2[i])
			}
		}
	})
}

// FuzzJournalOpen drives the full Open path over arbitrary file contents:
// it must never panic, and whenever it succeeds the journal must accept a
// fresh append and survive a reopen.
func FuzzJournalOpen(f *testing.F) {
	valid := fuzzSeedJournal(f)
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-7])
	f.Add([]byte("x"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, JournalFile), data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := Open(dir, testFingerprint(), true)
		if err != nil {
			return // refusal (e.g. foreign fingerprint in a valid header) is fine
		}
		rec := CellRecord{Key: "probe", Detector: "probe", Window: 1, Size: 1, Outcome: 1}
		if err := j.Append(rec); err != nil {
			t.Fatalf("Append after Open: %v", err)
		}
		if err := j.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		back, err := Open(dir, testFingerprint(), true)
		if err != nil {
			t.Fatalf("reopen after recovered append: %v", err)
		}
		defer back.Close()
		if got, ok := back.Lookup("probe", 1, 1); !ok || got != rec {
			t.Fatalf("probe record lost across reopen: %+v ok=%v", got, ok)
		}
	})
}
