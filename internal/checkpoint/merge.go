package checkpoint

import (
	"fmt"
	"os"
	"sort"
)

// MergeStats summarizes a successful Merge.
type MergeStats struct {
	// Shards is how many shard journals were merged.
	Shards int
	// Cells is how many distinct cells the merged journal holds.
	Cells int
	// Duplicates counts cells journaled identically by more than one shard
	// (a cell re-run after a shard-count change, or an overlapping manual
	// run); identical duplicates merge silently.
	Duplicates int
	// Superseded counts within-shard duplicate appends collapsed by the
	// journal's last-write-wins contract before cross-shard comparison.
	Superseded int
	// TornBytes is how many trailing bytes of torn or corrupt shard tails
	// were dropped across all shards (each shard keeps its longest valid
	// prefix, exactly as Open would).
	TornBytes int64
}

// Merge assembles the shard journals at srcs into one combined journal at
// dst, written atomically (temp file + rename).
//
// Every shard must carry a decodable header, and after stripping each
// header's shard qualifier all fingerprints must be equal — shards of
// different runs (different corpus, grid, detector set, or extra) refuse to
// merge, naming the offending file. Within a shard, duplicate appends of
// one cell key collapse last-write-wins (the journal's documented Append
// contract). Across shards, a cell journaled by more than one shard must be
// bit-identical everywhere it appears: a conflicting duplicate — same
// (key, window, size) with differing response bits or outcome — is a hard
// error naming the cell and both sources, because silently picking either
// record would make the merged map depend on shard order. Torn tails are
// tolerated per shard just as Open tolerates them.
//
// The merged journal is headed by the base fingerprint (no shard
// qualifier) and its records are sorted by (key, window, size), so merging
// the same shards always produces byte-identical output and the combined
// journal resumes under the unsharded run's own fingerprint.
func Merge(dst string, srcs []string) (MergeStats, error) {
	var stats MergeStats
	if len(srcs) == 0 {
		return stats, fmt.Errorf("checkpoint: merge: no shard journals given")
	}
	var base Fingerprint
	merged := make(map[cellKey]CellRecord)
	origin := make(map[cellKey]string)
	for i, src := range srcs {
		data, err := os.ReadFile(src)
		if err != nil {
			return stats, fmt.Errorf("checkpoint: merge: %w", err)
		}
		hdr, recs, validLen := decodeAll(data)
		if hdr == nil {
			return stats, fmt.Errorf("checkpoint: merge: %s has no decodable journal header; not a shard journal (or corrupted past recovery)", src)
		}
		b := BaseFingerprint(hdr.Fingerprint)
		if i == 0 {
			base = b
		} else if !base.Equal(b) {
			return stats, fmt.Errorf("checkpoint: merge: %s was written under a different configuration (%s) than %s (%s); shards of different runs cannot merge",
				src, b.canonical(), srcs[0], base.canonical())
		}
		stats.TornBytes += int64(len(data) - validLen)

		// Collapse within-shard duplicates last-write-wins before the
		// cross-shard comparison, mirroring the replay map Open builds.
		local := make(map[cellKey]CellRecord, len(recs))
		for _, rec := range recs {
			k := cellKey{rec.Key, rec.Window, rec.Size}
			if _, dup := local[k]; dup {
				stats.Superseded++
			}
			local[k] = rec
		}
		for _, k := range sortedKeys(local) {
			rec := local[k]
			prev, seen := merged[k]
			if !seen {
				merged[k] = rec
				origin[k] = src
				continue
			}
			if prev != rec {
				return stats, fmt.Errorf("checkpoint: merge conflict on cell %s (window %d, size %d): %s holds respBits=%016x outcome=%d, %s holds respBits=%016x outcome=%d; shards disagree on a completed cell",
					k.key, k.window, k.size, origin[k], prev.RespBits, prev.Outcome, src, rec.RespBits, rec.Outcome)
			}
			stats.Duplicates++
		}
		stats.Shards++
	}
	stats.Cells = len(merged)

	out, err := encodeFrame(header{Schema: SchemaVersion, Fingerprint: base})
	if err != nil {
		return stats, err
	}
	for _, k := range sortedKeys(merged) {
		frame, err := encodeFrame(merged[k])
		if err != nil {
			return stats, err
		}
		out = append(out, frame...)
	}
	tmp := dst + ".tmp"
	if err := os.WriteFile(tmp, out, 0o644); err != nil {
		return stats, fmt.Errorf("checkpoint: merge: %w", err)
	}
	if err := os.Rename(tmp, dst); err != nil {
		os.Remove(tmp) //nolint:errcheck // best-effort cleanup of the temp file
		return stats, fmt.Errorf("checkpoint: merge: %w", err)
	}
	return stats, nil
}

// sortedKeys orders a cell map by (key, window, size) — the journal's
// deterministic serialization order.
func sortedKeys(m map[cellKey]CellRecord) []cellKey {
	keys := make([]cellKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].key != keys[j].key {
			return keys[i].key < keys[j].key
		}
		if keys[i].window != keys[j].window {
			return keys[i].window < keys[j].window
		}
		return keys[i].size < keys[j].size
	})
	return keys
}
