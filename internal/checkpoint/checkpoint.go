// Package checkpoint persists completed grid cells so an interrupted
// performance-map run can resume without recomputing them: an append-only
// journal of length-prefixed, CRC-checked records, one per evaluated
// (map, window, size) cell, headed by a fingerprint of the run
// configuration.
//
// The journal is built for the training-stack failure model: the process
// may die at any instant (crash, OOM kill, Ctrl-C), so a record is written
// the moment its cell completes, a torn or bit-flipped tail is detected by
// the per-record CRC and truncated away on the next open (the longest valid
// prefix survives), and the fingerprint refuses to marry a journal to a run
// with different parameters — a resumed run must be byte-identical to an
// uninterrupted one, which only holds when alphabet, seeds, grid bounds,
// detector set, and corpus content all match.
//
// The same substrate scales a grid across processes: ShardOf partitions the
// cell set deterministically by hash(key, window, size) mod N, each worker
// journals its share under a shard-qualified fingerprint (WithShard) in its
// own shard directory, and Merge verifies the shards belong to one run,
// rejects conflicting duplicate cells, and assembles the combined journal a
// final unsharded -resume run replays into the full map.
package checkpoint

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"adiv/internal/obs"
)

// SchemaVersion identifies the journal header schema.
const SchemaVersion = "adiv.ckpt/v1"

// JournalFile is the journal's file name inside the checkpoint directory.
const JournalFile = "grid.journal"

// CorruptSuffix is appended to JournalFile when Open preserves a journal
// whose header could not be decoded: the unreadable file is renamed to
// "grid.journal.corrupt" instead of being truncated in place, so completed
// cells (and the evidence of what corrupted them) survive the restart.
const CorruptSuffix = ".corrupt"

// maxRecordLen bounds a single record's payload. Cell records are well
// under a kilobyte; the cap keeps a corrupted length prefix from demanding
// a gigantic allocation during recovery.
const maxRecordLen = 1 << 20

// frameOverhead is the per-record framing cost: a uint32 payload length
// followed by a uint32 CRC-32 (IEEE) of the payload.
const frameOverhead = 8

// Fingerprint pins everything a resumed run must share with the run that
// wrote the journal. Two runs with equal fingerprints evaluate identical
// grids over identical data, so their cell results are interchangeable;
// any field differing means the journaled cells describe a different
// experiment and Open refuses to resume.
type Fingerprint struct {
	// Command names the driver that owns the journal (perfmap, sweep,
	// ensemble, report); their grids interleave differently even over one
	// corpus.
	Command string `json:"command"`
	// AlphabetSize, Seed, TrainLen and BackgroundLen pin the synthetic
	// data generator.
	AlphabetSize  int    `json:"alphabetSize"`
	Seed          uint64 `json:"seed"`
	TrainLen      int    `json:"trainLen"`
	BackgroundLen int    `json:"backgroundLen"`
	// MinSize/MaxSize and MinWindow/MaxWindow pin the evaluated grid.
	MinSize   int `json:"minSize"`
	MaxSize   int `json:"maxSize"`
	MinWindow int `json:"minWindow"`
	MaxWindow int `json:"maxWindow"`
	// RareCutoff pins the rare-sequence bound of the configuration.
	RareCutoff float64 `json:"rareCutoff"`
	// Detectors lists the detector families the run evaluates.
	Detectors []string `json:"detectors"`
	// CorpusHash digests the actual stream content (training, background,
	// every placement) — the backstop that catches any data difference the
	// configuration fields above fail to express.
	CorpusHash string `json:"corpusHash"`
	// Extra carries run-mode qualifiers (classification regime, sweep
	// mode) that change cell outcomes without changing the corpus.
	Extra string `json:"extra,omitempty"`
}

// canonical renders the fingerprint as comparison-stable bytes.
func (fp Fingerprint) canonical() []byte {
	data, err := json.Marshal(fp)
	if err != nil {
		// Fingerprint holds only strings, ints and floats; Marshal cannot
		// fail on it short of memory corruption.
		panic(fmt.Sprintf("checkpoint: marshaling fingerprint: %v", err))
	}
	return data
}

// Equal reports whether two fingerprints describe the same run.
func (fp Fingerprint) Equal(other Fingerprint) bool {
	return string(fp.canonical()) == string(other.canonical())
}

// header is the journal's first record.
type header struct {
	Schema      string      `json:"schema"`
	Fingerprint Fingerprint `json:"fingerprint"`
}

// CellRecord is one journaled grid cell: the coordinates that key it and
// the bit-exact evaluation result. MaxResponse travels as raw IEEE-754 bits
// so a replayed assessment is indistinguishable — down to the last float
// digit a renderer might print — from the one the original run computed.
type CellRecord struct {
	// Key namespaces the cell: the performance-map name, parameter-
	// qualified by sweep drivers that rebuild one family under several
	// configurations (e.g. "nn[epochs=25,lr=0.1]").
	Key string `json:"key"`
	// Detector is the detector's self-reported name, preserved because it
	// may differ from the map name the grid was built under.
	Detector string `json:"detector"`
	// Window and Size are the cell's grid coordinates.
	Window int `json:"window"`
	Size   int `json:"size"`
	// RespBits is math.Float64bits of the cell's maximum response.
	RespBits uint64 `json:"respBits"`
	// Outcome is the classified eval.Outcome as an integer.
	Outcome int `json:"outcome"`
}

// valid reports whether the record could have been written by a real run;
// recovery treats an invalid record as the start of the corrupt tail.
func (r CellRecord) valid() bool {
	return r.Key != "" && r.Window >= 1 && r.Size >= 1 && r.Outcome >= 0 && r.Outcome <= 3
}

// cellKey indexes the replay map.
type cellKey struct {
	key          string
	window, size int
}

// Journal is an open checkpoint journal. Append and Lookup are safe for
// concurrent use from scheduler workers; all exported methods are no-ops
// (or miss) on a nil receiver, so uncheckpointed runs thread a nil journal
// at the cost of a pointer test — the same contract as obs.
type Journal struct {
	mu    sync.Mutex
	f     *os.File
	path  string
	fp    Fingerprint
	cells map[cellKey]CellRecord

	// resumed counts the records recovered from disk at Open.
	resumed int

	// superseded counts duplicate appends of an already-journaled cell key
	// — both at Open (duplicate frames recovered from disk) and live. The
	// journal's contract is last-write-wins: every frame stays in the file,
	// the replay map keeps only the latest record per (key, window, size),
	// and Merge relies on exactly this collapse for its conflict detection.
	superseded int

	// corruptPath is where Open preserved an unreadable predecessor journal
	// ("" when the open found a healthy or absent file).
	corruptPath string

	// Telemetry handles; nil when uninstrumented.
	replayed, appended, bytes, supersededC *obs.Counter
}

// Open opens (or creates) the journal under dir with the given fingerprint.
//
// A fresh directory starts an empty journal headed by fp. An existing
// journal is resumed only when resume is true AND its header fingerprint
// equals fp: its valid record prefix is loaded for replay, any torn or
// corrupt tail is truncated away, and subsequent appends continue the file.
// An existing journal with resume false is refused (the caller must opt in
// to reuse), as is a fingerprint mismatch — replaying cells computed under
// different parameters would silently corrupt the resumed run. A journal
// whose header itself is unreadable carries no provable provenance and
// cannot be resumed, but it is never destroyed: without resume Open refuses
// outright (the file is left untouched for forensics), and with resume the
// unreadable file is preserved as JournalFile+CorruptSuffix — its path
// reported by CorruptPath — before a fresh journal is started in its place.
func Open(dir string, fp Fingerprint, resume bool) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	path := filepath.Join(dir, JournalFile)
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	hdr, recs, validLen := decodeAll(data)
	if hdr != nil && !resume {
		return nil, fmt.Errorf("checkpoint: journal %s already holds %d cells; pass -resume to continue it or remove the directory", path, len(recs))
	}
	if hdr != nil && !hdr.Fingerprint.Equal(fp) {
		return nil, fmt.Errorf("checkpoint: journal %s was written under a different configuration (journal %s, run %s); refusing to resume",
			path, hdr.Fingerprint.canonical(), fp.canonical())
	}
	corruptPath := ""
	if hdr == nil && len(data) > 0 {
		// The file holds bytes but no decodable header: whatever cells it
		// carried cannot be trusted, but silently truncating them would
		// destroy completed work with no warning and no backup. Refuse
		// unless the caller opted into a restart with resume; even then,
		// preserve the unreadable file beside the fresh journal.
		preserved := path + CorruptSuffix
		if !resume {
			return nil, fmt.Errorf("checkpoint: journal %s exists but its header is unreadable; pass -resume to preserve it as %s and restart, or remove the directory", path, preserved)
		}
		if err := os.Rename(path, preserved); err != nil {
			return nil, fmt.Errorf("checkpoint: preserving corrupt journal: %w", err)
		}
		corruptPath = preserved
	}

	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	j := &Journal{f: f, path: path, fp: fp, corruptPath: corruptPath, cells: make(map[cellKey]CellRecord, len(recs))}
	if hdr == nil {
		// Fresh journal: either no prior file, or the corrupt predecessor
		// was just renamed out of the way.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, fmt.Errorf("checkpoint: truncating %s: %w", path, err)
		}
		frame, err := encodeFrame(header{Schema: SchemaVersion, Fingerprint: fp})
		if err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.Write(frame); err != nil {
			f.Close()
			return nil, fmt.Errorf("checkpoint: writing header: %w", err)
		}
		return j, nil
	}
	// Resume: drop the corrupt tail (if any) and continue appending after
	// the last valid record.
	if validLen < len(data) {
		if err := f.Truncate(int64(validLen)); err != nil {
			f.Close()
			return nil, fmt.Errorf("checkpoint: truncating corrupt tail of %s: %w", path, err)
		}
	}
	if _, err := f.Seek(int64(validLen), 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	for _, rec := range recs {
		k := cellKey{rec.Key, rec.Window, rec.Size}
		if _, dup := j.cells[k]; dup {
			j.superseded++
		}
		j.cells[k] = rec
	}
	j.resumed = len(recs)
	return j, nil
}

// Instrument records journal telemetry into reg: ckpt/cells_replayed
// (journaled cells handed back to a grid builder), ckpt/cells_appended
// (cells journaled this run), ckpt/bytes (journal size, including the
// prefix recovered at Open), ckpt/cells_superseded (duplicate appends
// collapsed by the last-write-wins replay map, counting those already found
// on disk at Open), and ckpt/corrupt (1 when Open preserved an unreadable
// predecessor journal). A nil registry disables instrumentation.
func (j *Journal) Instrument(reg *obs.Registry) {
	if j == nil || reg == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.replayed = reg.Counter("ckpt/cells_replayed")
	j.appended = reg.Counter("ckpt/cells_appended")
	j.bytes = reg.Counter("ckpt/bytes")
	j.supersededC = reg.Counter("ckpt/cells_superseded")
	j.supersededC.Add(int64(j.superseded))
	if j.corruptPath != "" {
		reg.Counter("ckpt/corrupt").Inc()
	}
	if st, err := j.f.Stat(); err == nil {
		j.bytes.Add(st.Size())
	}
}

// Fingerprint returns the fingerprint the journal was opened with.
func (j *Journal) Fingerprint() Fingerprint {
	if j == nil {
		return Fingerprint{}
	}
	return j.fp
}

// Path returns the journal file's path ("" on a nil journal).
func (j *Journal) Path() string {
	if j == nil {
		return ""
	}
	return j.path
}

// Resumed returns how many cell records were recovered from disk at Open.
func (j *Journal) Resumed() int {
	if j == nil {
		return 0
	}
	return j.resumed
}

// CorruptPath returns where Open preserved an unreadable predecessor
// journal, or "" when the open found a healthy (or absent) file.
func (j *Journal) CorruptPath() string {
	if j == nil {
		return ""
	}
	return j.corruptPath
}

// Superseded returns how many appends overwrote an already-journaled cell
// key under the last-write-wins contract (including duplicate frames found
// on disk at Open).
func (j *Journal) Superseded() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.superseded
}

// Cells returns how many distinct cells the journal currently holds.
func (j *Journal) Cells() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.cells)
}

// Lookup returns the journaled record for the cell, if present. A hit
// counts toward ckpt/cells_replayed: grid builders call Lookup exactly once
// per cell and replay every hit.
func (j *Journal) Lookup(key string, window, size int) (CellRecord, bool) {
	if j == nil {
		return CellRecord{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	rec, ok := j.cells[cellKey{key, window, size}]
	if ok {
		j.replayed.Inc()
	}
	return rec, ok
}

// Append journals one completed cell. The record reaches the operating
// system before Append returns (one unbuffered write), so a process killed
// an instant later loses at most the record a torn write left half-framed —
// which the next Open's CRC check truncates away.
//
// Appending a cell key that is already journaled is legal and follows the
// last-write-wins contract: both frames stay in the file (the journal is
// append-only), but Lookup — and the replay map a later Open rebuilds, and
// the per-shard collapse Merge performs — returns only the latest record.
// Each supersession is surfaced through Superseded and the
// ckpt/cells_superseded counter rather than hidden.
func (j *Journal) Append(rec CellRecord) error {
	if j == nil {
		return nil
	}
	if !rec.valid() {
		return fmt.Errorf("checkpoint: invalid cell record %+v", rec)
	}
	frame, err := encodeFrame(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("checkpoint: journal %s is closed", j.path)
	}
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("checkpoint: appending to %s: %w", j.path, err)
	}
	k := cellKey{rec.Key, rec.Window, rec.Size}
	if _, dup := j.cells[k]; dup {
		j.superseded++
		j.supersededC.Inc()
	}
	j.cells[k] = rec
	j.appended.Inc()
	j.bytes.Add(int64(len(frame)))
	return nil
}

// Close flushes and closes the journal file. Safe to call more than once.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	if err != nil {
		return fmt.Errorf("checkpoint: closing %s: %w", j.path, err)
	}
	return nil
}

// encodeFrame renders v as one framed record: payload length, CRC-32
// (IEEE) of the payload, payload.
func encodeFrame(v any) ([]byte, error) {
	payload, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: encoding record: %w", err)
	}
	frame := make([]byte, frameOverhead+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameOverhead:], payload)
	return frame, nil
}

// decodeAll parses journal bytes into the header and the cell records of
// the longest valid prefix, returning that prefix's byte length. It never
// fails: any framing violation — truncated frame, oversize length, CRC
// mismatch, malformed JSON, implausible record — ends the valid prefix at
// the preceding record. A missing or corrupt first record yields a nil
// header (and, necessarily, no records: without a header there is no
// provenance to trust cells under).
func decodeAll(data []byte) (hdr *header, recs []CellRecord, validLen int) {
	off := 0
	for {
		payload, next, ok := nextFrame(data, off)
		if !ok {
			return hdr, recs, off
		}
		if hdr == nil {
			var h header
			if err := json.Unmarshal(payload, &h); err != nil || h.Schema != SchemaVersion {
				return nil, nil, 0
			}
			hdr = &h
		} else {
			var rec CellRecord
			if err := json.Unmarshal(payload, &rec); err != nil || !rec.valid() {
				return hdr, recs, off
			}
			recs = append(recs, rec)
		}
		off = next
	}
}

// nextFrame decodes the frame at off, returning its payload and the offset
// of the following frame. ok is false when no complete, checksummed frame
// starts at off.
func nextFrame(data []byte, off int) (payload []byte, next int, ok bool) {
	if off+frameOverhead > len(data) {
		return nil, 0, false
	}
	n := int(binary.LittleEndian.Uint32(data[off : off+4]))
	if n > maxRecordLen || off+frameOverhead+n > len(data) {
		return nil, 0, false
	}
	sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
	payload = data[off+frameOverhead : off+frameOverhead+n]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, 0, false
	}
	return payload, off + frameOverhead + n, true
}
