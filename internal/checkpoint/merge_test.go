package checkpoint

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestShardOfPartition(t *testing.T) {
	const count = 3
	seen := make(map[int]int)
	for _, key := range []string{"stide", "nn", "nn[epochs=25,lr=0.1]", "tstide[cutoff=0.001]"} {
		for window := 2; window <= 15; window++ {
			for size := 2; size <= 9; size++ {
				s := ShardOf(key, window, size, count)
				if s < 0 || s >= count {
					t.Fatalf("ShardOf(%q, %d, %d, %d) = %d outside [0,%d)", key, window, size, count, s, count)
				}
				if again := ShardOf(key, window, size, count); again != s {
					t.Fatalf("ShardOf not deterministic for (%q, %d, %d)", key, window, size)
				}
				seen[s]++
			}
		}
	}
	for s := 0; s < count; s++ {
		if seen[s] == 0 {
			t.Errorf("shard %d received no cells across the full grid", s)
		}
	}
	if ShardOf("stide", 2, 2, 1) != 0 || ShardOf("stide", 2, 2, 0) != 0 {
		t.Errorf("degenerate shard counts must map to shard 0")
	}
	// The key terminator keeps (key, window) ambiguity out of the hash:
	// different cells may share a shard but must be hashed as distinct
	// identities. Spot-check a former collision shape across many counts.
	differs := false
	for count := 2; count <= 17; count++ {
		if ShardOf("a", 12, 3, count) != ShardOf("a1", 2, 3, count) {
			differs = true
			break
		}
	}
	if !differs {
		t.Errorf("ShardOf hashes (\"a\",12) and (\"a1\",2) identically at every count 2..17")
	}
}

func TestWithShardFingerprint(t *testing.T) {
	fp := testFingerprint()
	fp.Extra = "regime=strict"
	sharded := WithShard(fp, 2, 3)
	if sharded.Extra != "regime=strict;shard=2/3" {
		t.Fatalf("WithShard Extra = %q", sharded.Extra)
	}
	if sharded.Equal(fp) {
		t.Fatalf("shard-qualified fingerprint equals the base — shards could cross-resume")
	}
	if got := ShardLabel(sharded); got != "2/3" {
		t.Errorf("ShardLabel = %q, want 2/3", got)
	}
	if got := ShardLabel(fp); got != "" {
		t.Errorf("ShardLabel of unsharded fingerprint = %q, want empty", got)
	}
	if !BaseFingerprint(sharded).Equal(fp) {
		t.Errorf("BaseFingerprint(%q) does not recover the base", sharded.Extra)
	}

	// Empty Extra: the qualifier stands alone and strips back to empty.
	bare := testFingerprint()
	shardedBare := WithShard(bare, 1, 4)
	if shardedBare.Extra != "shard=1/4" {
		t.Fatalf("WithShard on empty Extra = %q", shardedBare.Extra)
	}
	if !BaseFingerprint(shardedBare).Equal(bare) {
		t.Errorf("BaseFingerprint did not strip a bare shard qualifier")
	}
}

// writeShardJournal materializes one shard journal under dir holding recs,
// headed by the base fingerprint qualified as shard index/count.
func writeShardJournal(t *testing.T, dir string, base Fingerprint, index, count int, recs []CellRecord) string {
	t.Helper()
	shardDir := filepath.Join(dir, ShardDirName(index, count))
	j, err := Open(shardDir, WithShard(base, index, count), false)
	if err != nil {
		t.Fatalf("open shard %d/%d: %v", index, count, err)
	}
	for _, rec := range recs {
		if err := j.Append(rec); err != nil {
			t.Fatalf("append to shard %d/%d: %v", index, count, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close shard %d/%d: %v", index, count, err)
	}
	return filepath.Join(shardDir, JournalFile)
}

// TestMergeProperty is the merge property test: three shards partitioned by
// ShardOf — with an overlapping duplicate cell, a within-shard superseded
// append, and one torn tail — must merge into a journal whose replay map
// equals a serial reference journal's exactly, and the merged bytes must be
// deterministic across repeated merges.
func TestMergeProperty(t *testing.T) {
	dir := t.TempDir()
	base := testFingerprint()
	const count = 3

	// The full cell set a serial run would journal.
	var all []CellRecord
	for _, key := range []string{"stide", "nn"} {
		for window := 2; window <= 6; window++ {
			for size := 2; size <= 7; size++ {
				all = append(all, testRecord(key, window, size))
			}
		}
	}

	// Partition by ShardOf, exactly as sharded workers would.
	parts := make([][]CellRecord, count)
	for _, rec := range all {
		s := ShardOf(rec.Key, rec.Window, rec.Size, count)
		parts[s] = append(parts[s], rec)
	}
	// Shard 1 additionally re-journals one of shard 0's cells identically
	// (an overlap, legal) and appends one of its own cells twice with an
	// earlier bogus result first (superseded by last-write-wins).
	overlap := parts[0][0]
	parts[1] = append(parts[1], overlap)
	stale := parts[1][0]
	stale.RespBits = math.Float64bits(0.015625)
	parts[1] = append([]CellRecord{stale}, parts[1]...)

	var srcs []string
	for i := 0; i < count; i++ {
		srcs = append(srcs, writeShardJournal(t, dir, base, i+1, count, parts[i]))
	}
	// Tear shard 2's tail mid-record, as a SIGKILL would.
	torn, err := os.ReadFile(srcs[2])
	if err != nil {
		t.Fatal(err)
	}
	tornRec := parts[2][len(parts[2])-1]
	if err := os.WriteFile(srcs[2], torn[:len(torn)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	dst := filepath.Join(dir, JournalFile)
	stats, err := Merge(dst, srcs)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if stats.Shards != count {
		t.Errorf("Shards = %d, want %d", stats.Shards, count)
	}
	if stats.Duplicates != 1 {
		t.Errorf("Duplicates = %d, want 1 (the overlap cell)", stats.Duplicates)
	}
	if stats.Superseded != 1 {
		t.Errorf("Superseded = %d, want 1 (the stale duplicate append)", stats.Superseded)
	}
	if stats.TornBytes == 0 {
		t.Errorf("TornBytes = 0, want > 0 for the torn shard tail")
	}
	if stats.Cells != len(all)-1 {
		t.Errorf("Cells = %d, want %d (full grid minus the torn-away record)", stats.Cells, len(all)-1)
	}

	// The merged journal resumes under the UNSHARDED fingerprint and its
	// replay map matches the serial reference cell for cell.
	merged, err := Open(dir, base, true)
	if err != nil {
		t.Fatalf("opening merged journal: %v", err)
	}
	defer merged.Close()
	for _, rec := range all {
		if rec == tornRec {
			if _, ok := merged.Lookup(rec.Key, rec.Window, rec.Size); ok {
				t.Errorf("torn-away record (%s, %d, %d) resurfaced in the merge", rec.Key, rec.Window, rec.Size)
			}
			continue
		}
		got, ok := merged.Lookup(rec.Key, rec.Window, rec.Size)
		if !ok {
			t.Fatalf("merged journal missing cell (%s, %d, %d)", rec.Key, rec.Window, rec.Size)
		}
		if got != rec {
			t.Errorf("merged cell (%s, %d, %d) = %+v, want the serial record %+v", rec.Key, rec.Window, rec.Size, got, rec)
		}
	}

	// Determinism: merging again produces byte-identical output.
	first, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	merged.Close()
	if _, err := Merge(dst, srcs); err != nil {
		t.Fatalf("second Merge: %v", err)
	}
	second, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Errorf("repeated merges of identical shards produced different bytes")
	}
}

func TestMergeConflictNamesCell(t *testing.T) {
	dir := t.TempDir()
	base := testFingerprint()
	rec := testRecord("stide", 4, 5)
	conflicting := rec
	conflicting.RespBits = math.Float64bits(0.375)
	srcs := []string{
		writeShardJournal(t, dir, base, 1, 2, []CellRecord{testRecord("stide", 2, 2), rec}),
		writeShardJournal(t, dir, base, 2, 2, []CellRecord{conflicting, testRecord("stide", 3, 3)}),
	}
	_, err := Merge(filepath.Join(dir, JournalFile), srcs)
	if err == nil {
		t.Fatalf("merge of conflicting duplicate cells succeeded")
	}
	for _, want := range []string{"conflict", "stide", "window 4", "size 5"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("conflict error %q does not name %q", err, want)
		}
	}
	if _, statErr := os.Stat(filepath.Join(dir, JournalFile)); !os.IsNotExist(statErr) {
		t.Errorf("failed merge left a merged journal behind")
	}
}

func TestMergeRefusesForeignShards(t *testing.T) {
	dir := t.TempDir()
	base := testFingerprint()
	other := testFingerprint()
	other.Seed++
	srcs := []string{
		writeShardJournal(t, dir, base, 1, 2, []CellRecord{testRecord("stide", 2, 2)}),
		writeShardJournal(t, dir, other, 2, 2, []CellRecord{testRecord("stide", 3, 3)}),
	}
	if _, err := Merge(filepath.Join(dir, JournalFile), srcs); err == nil {
		t.Fatalf("merge across different base fingerprints succeeded")
	} else if !strings.Contains(err.Error(), "different configuration") {
		t.Errorf("unexpected refusal: %v", err)
	}
}

func TestMergeRefusesHeaderlessShard(t *testing.T) {
	dir := t.TempDir()
	base := testFingerprint()
	good := writeShardJournal(t, dir, base, 1, 2, []CellRecord{testRecord("stide", 2, 2)})
	bad := filepath.Join(dir, "broken.journal")
	if err := os.WriteFile(bad, []byte("zeroed by a dying disk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(filepath.Join(dir, JournalFile), []string{good, bad}); err == nil {
		t.Fatalf("merge with a headerless shard succeeded")
	} else if !strings.Contains(err.Error(), "broken.journal") {
		t.Errorf("refusal does not name the broken shard: %v", err)
	}
	if _, err := Merge(filepath.Join(dir, JournalFile), nil); err == nil {
		t.Fatalf("merge of zero shards succeeded")
	}
}

func TestMergeSingleShardDegenerate(t *testing.T) {
	dir := t.TempDir()
	base := testFingerprint()
	recs := []CellRecord{testRecord("nn", 2, 2), testRecord("nn", 2, 3)}
	src := writeShardJournal(t, dir, base, 1, 1, recs)
	dst := filepath.Join(dir, JournalFile)
	stats, err := Merge(dst, []string{src})
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if stats.Shards != 1 || stats.Cells != len(recs) || stats.Duplicates != 0 {
		t.Errorf("stats = %+v, want 1 shard, %d cells, 0 duplicates", stats, len(recs))
	}
	merged, err := Open(dir, base, true)
	if err != nil {
		t.Fatalf("opening merged journal: %v", err)
	}
	defer merged.Close()
	if merged.Resumed() != len(recs) {
		t.Errorf("Resumed = %d, want %d", merged.Resumed(), len(recs))
	}
}

func BenchmarkMerge(b *testing.B) {
	dir := b.TempDir()
	base := testFingerprint()
	const count = 4
	parts := make([][]CellRecord, count)
	for k := 0; k < 8; k++ {
		key := fmt.Sprintf("nn[epochs=%d]", k)
		for window := 2; window <= 15; window++ {
			for size := 2; size <= 9; size++ {
				s := ShardOf(key, window, size, count)
				parts[s] = append(parts[s], testRecord(key, window, size))
			}
		}
	}
	var srcs []string
	for i := 0; i < count; i++ {
		shardDir := filepath.Join(dir, ShardDirName(i+1, count))
		j, err := Open(shardDir, WithShard(base, i+1, count), false)
		if err != nil {
			b.Fatal(err)
		}
		for _, rec := range parts[i] {
			if err := j.Append(rec); err != nil {
				b.Fatal(err)
			}
		}
		j.Close()
		srcs = append(srcs, filepath.Join(shardDir, JournalFile))
	}
	dst := filepath.Join(dir, JournalFile)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Merge(dst, srcs); err != nil {
			b.Fatal(err)
		}
	}
}
