package checkpoint

// Sharding: a grid run can be partitioned across N cooperating worker
// processes, each evaluating the cells a deterministic hash assigns to it
// and journaling them into its own shard journal. The shard identity is
// pinned into the journal fingerprint's Extra, so a shard journal can never
// be resumed by a differently-sharded run (or by the unsharded final run)
// and shards of different runs can never be cross-merged; Merge strips the
// qualifier again when it assembles the combined journal.

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"strings"
)

// shardTag prefixes the shard qualifier inside Fingerprint.Extra.
const shardTag = "shard="

// extraSep separates qualifiers inside Fingerprint.Extra. The drivers'
// own extras use commas ("mode=nn,window=8"), so a semicolon-delimited
// shard qualifier can always be recognized and stripped unambiguously.
const extraSep = ";"

// ShardOf deterministically assigns the cell to one of count shards by
// hashing its full identity (checkpoint key, window, size). The assignment
// is a pure function of the cell and the shard count — every worker of a
// sharded run computes the same partition without coordination, and the
// same cell can never be claimed by two shards. count < 2 puts every cell
// in shard 0.
func ShardOf(key string, window, size, count int) int {
	if count < 2 {
		return 0
	}
	h := fnv.New32a()
	io.WriteString(h, key) //nolint:errcheck // fnv never errors
	var buf [9]byte
	// A terminator between the key and the coordinates keeps ("a", 12, 3)
	// and ("a1", 2, 3) from ever colliding byte-wise.
	buf[0] = 0xff
	binary.LittleEndian.PutUint32(buf[1:5], uint32(window))
	binary.LittleEndian.PutUint32(buf[5:9], uint32(size))
	h.Write(buf[:])
	return int(h.Sum32() % uint32(count))
}

// ShardQualifier renders the Extra qualifier pinning shard index (1-based)
// of count, e.g. "shard=2/3".
func ShardQualifier(index, count int) string {
	return fmt.Sprintf("%s%d/%d", shardTag, index, count)
}

// ShardDirName is the per-shard journal directory under the run's
// -checkpoint DIR, e.g. "shard-2-of-3".
func ShardDirName(index, count int) string {
	return fmt.Sprintf("shard-%d-of-%d", index, count)
}

// WithShard returns fp with the shard identity appended to its Extra. A
// shard journal's fingerprint therefore differs from the unsharded run's
// (and from every other shard's): Open refuses to resume across the
// boundary, and Merge uses the base fingerprint (shard stripped) to verify
// the shards belong to one run.
func WithShard(fp Fingerprint, index, count int) Fingerprint {
	q := ShardQualifier(index, count)
	if fp.Extra == "" {
		fp.Extra = q
	} else {
		fp.Extra += extraSep + q
	}
	return fp
}

// BaseFingerprint returns fp with any shard qualifier stripped from Extra —
// the fingerprint of the unsharded run the shard belongs to. A fingerprint
// without a shard qualifier is returned unchanged.
func BaseFingerprint(fp Fingerprint) Fingerprint {
	base, _ := splitShardExtra(fp.Extra)
	fp.Extra = base
	return fp
}

// ShardLabel returns the shard qualifier carried by fp's Extra ("2/3"), or
// "" when fp is not a shard fingerprint.
func ShardLabel(fp Fingerprint) string {
	_, shard := splitShardExtra(fp.Extra)
	return strings.TrimPrefix(shard, shardTag)
}

// splitShardExtra separates an Extra string into the non-shard qualifiers
// (rejoined in order) and the shard qualifier, if any.
func splitShardExtra(extra string) (base, shard string) {
	if extra == "" {
		return "", ""
	}
	var kept []string
	for _, part := range strings.Split(extra, extraSep) {
		if strings.HasPrefix(part, shardTag) {
			shard = part
			continue
		}
		kept = append(kept, part)
	}
	return strings.Join(kept, extraSep), shard
}
