// Package markov implements the first-order Markov chain substrate used to
// synthesize the evaluation data.
//
// The paper's training stream (Section 5.3) "was constructed using a
// Markov-model transition matrix": a deterministic common cycle occupying
// 98% of the stream, with a small amount of nondeterminism producing the
// rare sequences needed to compose minimal-foreign-sequence anomalies. This
// package provides the transition-matrix model itself; package gen builds
// the paper's specific matrix on top of it.
package markov

import (
	"fmt"
	"math"

	"adiv/internal/alphabet"
	"adiv/internal/rng"
	"adiv/internal/seq"
)

// Chain is a first-order Markov chain over a finite symbol alphabet: an
// initial distribution and a row-stochastic transition matrix.
type Chain struct {
	size    int
	initial []float64
	trans   [][]float64 // trans[from][to]
}

// NewChain returns a chain with the given initial distribution and
// transition matrix. Rows must be probability distributions; validation is
// exact up to a small tolerance to absorb floating-point construction error.
func NewChain(initial []float64, trans [][]float64) (*Chain, error) {
	size := len(initial)
	if size == 0 {
		return nil, fmt.Errorf("markov: empty initial distribution")
	}
	if size > alphabet.MaxSize {
		return nil, fmt.Errorf("markov: alphabet size %d exceeds maximum %d", size, alphabet.MaxSize)
	}
	if err := checkDistribution(initial); err != nil {
		return nil, fmt.Errorf("markov: initial distribution: %w", err)
	}
	if len(trans) != size {
		return nil, fmt.Errorf("markov: transition matrix has %d rows, want %d", len(trans), size)
	}
	c := &Chain{
		size:    size,
		initial: append([]float64(nil), initial...),
		trans:   make([][]float64, size),
	}
	for i, row := range trans {
		if len(row) != size {
			return nil, fmt.Errorf("markov: transition row %d has %d columns, want %d", i, len(row), size)
		}
		if err := checkDistribution(row); err != nil {
			return nil, fmt.Errorf("markov: transition row %d: %w", i, err)
		}
		c.trans[i] = append([]float64(nil), row...)
	}
	return c, nil
}

const distTolerance = 1e-9

func checkDistribution(p []float64) error {
	sum := 0.0
	for i, v := range p {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("entry %d is %v, want a probability", i, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > distTolerance {
		return fmt.Errorf("sums to %v, want 1", sum)
	}
	return nil
}

// Size returns the alphabet size of the chain.
func (c *Chain) Size() int { return c.size }

// Prob returns the one-step transition probability P(to | from).
func (c *Chain) Prob(from, to alphabet.Symbol) float64 {
	if int(from) >= c.size || int(to) >= c.size {
		return 0
	}
	return c.trans[from][to]
}

// InitialProb returns the probability of starting in state s.
func (c *Chain) InitialProb(s alphabet.Symbol) float64 {
	if int(s) >= c.size {
		return 0
	}
	return c.initial[s]
}

// Generate produces a stream of n symbols by sampling the chain with the
// supplied random source.
func (c *Chain) Generate(src *rng.Source, n int) seq.Stream {
	if n <= 0 {
		return nil
	}
	out := make(seq.Stream, n)
	out[0] = sample(src, c.initial)
	for i := 1; i < n; i++ {
		out[i] = sample(src, c.trans[out[i-1]])
	}
	return out
}

// sample draws one symbol from the distribution p by inverse-CDF sampling.
func sample(src *rng.Source, p []float64) alphabet.Symbol {
	u := src.Float64()
	acc := 0.0
	for i, v := range p {
		acc += v
		if u < acc {
			return alphabet.Symbol(i)
		}
	}
	// Floating-point slack: fall back to the last state with nonzero mass.
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] > 0 {
			return alphabet.Symbol(i)
		}
	}
	return 0
}

// LogLikelihood returns the log-probability of the stream under the chain,
// or negative infinity if the stream contains an impossible transition.
func (c *Chain) LogLikelihood(stream seq.Stream) float64 {
	if len(stream) == 0 {
		return 0
	}
	ll := math.Log(c.InitialProb(stream[0]))
	for i := 1; i < len(stream); i++ {
		ll += math.Log(c.Prob(stream[i-1], stream[i]))
	}
	return ll
}

// Stationary estimates the stationary distribution of the chain by power
// iteration from the initial distribution. It returns the estimate after the
// given number of iterations (or earlier once the change drops below a small
// tolerance).
func (c *Chain) Stationary(iterations int) []float64 {
	cur := append([]float64(nil), c.initial...)
	next := make([]float64, c.size)
	for it := 0; it < iterations; it++ {
		for j := range next {
			next[j] = 0
		}
		for i, pi := range cur {
			if pi == 0 {
				continue
			}
			for j, pij := range c.trans[i] {
				next[j] += pi * pij
			}
		}
		delta := 0.0
		for j := range next {
			delta += math.Abs(next[j] - cur[j])
		}
		cur, next = next, cur
		if delta < 1e-12 {
			break
		}
	}
	return cur
}

// EntropyRate returns the chain's entropy rate in bits per symbol,
// H = -Σ_i π_i Σ_j P_ij log2 P_ij, with π the stationary distribution
// estimated by power iteration. It quantifies how predictable the
// generated data is — the paper's training stream is engineered to be
// almost deterministic (~98% cycle), which is what makes its rare content
// rare.
func (c *Chain) EntropyRate() float64 {
	pi := c.Stationary(10_000)
	h := 0.0
	for i, p := range pi {
		if p == 0 {
			continue
		}
		rowH := 0.0
		for _, q := range c.trans[i] {
			if q > 0 {
				rowH -= q * math.Log2(q)
			}
		}
		h += p * rowH
	}
	return h
}

// Estimate fits a first-order chain to a stream by maximum likelihood with
// add-zero smoothing: unseen transitions get probability zero, and rows for
// unseen states fall back to the uniform distribution so the result is a
// valid chain. size is the alphabet size.
func Estimate(stream seq.Stream, size int) (*Chain, error) {
	if size < 1 {
		return nil, fmt.Errorf("markov: non-positive alphabet size %d", size)
	}
	counts := make([][]float64, size)
	rowTotals := make([]float64, size)
	for i := range counts {
		counts[i] = make([]float64, size)
	}
	for i := 1; i < len(stream); i++ {
		from, to := stream[i-1], stream[i]
		if int(from) >= size || int(to) >= size {
			return nil, fmt.Errorf("markov: symbol outside alphabet of size %d at position %d", size, i)
		}
		counts[from][to]++
		rowTotals[from]++
	}
	trans := make([][]float64, size)
	for i := range trans {
		trans[i] = make([]float64, size)
		if rowTotals[i] == 0 {
			for j := range trans[i] {
				trans[i][j] = 1 / float64(size)
			}
			continue
		}
		for j := range trans[i] {
			trans[i][j] = counts[i][j] / rowTotals[i]
		}
	}
	initial := make([]float64, size)
	if len(stream) > 0 {
		initial[stream[0]] = 1
	} else {
		for i := range initial {
			initial[i] = 1 / float64(size)
		}
	}
	return NewChain(initial, trans)
}
