package markov

import (
	"math"
	"testing"

	"adiv/internal/alphabet"
	"adiv/internal/rng"
	"adiv/internal/seq"
)

func twoState() *Chain {
	c, err := NewChain(
		[]float64{1, 0},
		[][]float64{{0.9, 0.1}, {0.4, 0.6}},
	)
	if err != nil {
		panic(err)
	}
	return c
}

func TestNewChainValidation(t *testing.T) {
	valid := [][]float64{{0.5, 0.5}, {1, 0}}
	tests := []struct {
		name    string
		initial []float64
		trans   [][]float64
	}{
		{"empty initial", nil, valid},
		{"initial not summing to 1", []float64{0.3, 0.3}, valid},
		{"negative initial", []float64{-0.5, 1.5}, valid},
		{"NaN initial", []float64{math.NaN(), 1}, valid},
		{"row count mismatch", []float64{1, 0}, [][]float64{{1, 0}}},
		{"column count mismatch", []float64{1, 0}, [][]float64{{1, 0}, {1}}},
		{"row not stochastic", []float64{1, 0}, [][]float64{{0.5, 0.4}, {1, 0}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewChain(tt.initial, tt.trans); err == nil {
				t.Errorf("NewChain accepted invalid input")
			}
		})
	}
	if _, err := NewChain([]float64{1, 0}, valid); err != nil {
		t.Errorf("NewChain rejected valid input: %v", err)
	}
}

func TestProbAndInitial(t *testing.T) {
	c := twoState()
	if got := c.Prob(0, 1); got != 0.1 {
		t.Errorf("Prob(0,1) = %v", got)
	}
	if got := c.Prob(1, 1); got != 0.6 {
		t.Errorf("Prob(1,1) = %v", got)
	}
	if got := c.Prob(5, 0); got != 0 {
		t.Errorf("Prob of out-of-range state = %v", got)
	}
	if got := c.InitialProb(0); got != 1 {
		t.Errorf("InitialProb(0) = %v", got)
	}
	if got := c.InitialProb(9); got != 0 {
		t.Errorf("InitialProb(9) = %v", got)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	c := twoState()
	a := c.Generate(rng.New(5), 500)
	b := c.Generate(rng.New(5), 500)
	if len(a) != 500 || len(b) != 500 {
		t.Fatalf("lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
}

func TestGenerateRespectsSupport(t *testing.T) {
	// A deterministic cycle 0 -> 1 -> 2 -> 0.
	c, err := NewChain(
		[]float64{1, 0, 0},
		[][]float64{{0, 1, 0}, {0, 0, 1}, {1, 0, 0}},
	)
	if err != nil {
		t.Fatal(err)
	}
	s := c.Generate(rng.New(1), 99)
	for i, sym := range s {
		if want := alphabet.Symbol(i % 3); sym != want {
			t.Fatalf("position %d: %d, want %d", i, sym, want)
		}
	}
}

func TestGenerateEmpty(t *testing.T) {
	if got := twoState().Generate(rng.New(1), 0); got != nil {
		t.Errorf("Generate(0) = %v, want nil", got)
	}
}

func TestLogLikelihood(t *testing.T) {
	c := twoState()
	ll := c.LogLikelihood(seq.Stream{0, 0, 1})
	want := math.Log(1) + math.Log(0.9) + math.Log(0.1)
	if math.Abs(ll-want) > 1e-12 {
		t.Errorf("LogLikelihood = %v, want %v", ll, want)
	}
	if got := c.LogLikelihood(nil); got != 0 {
		t.Errorf("LogLikelihood(empty) = %v", got)
	}
	if got := c.LogLikelihood(seq.Stream{1, 0}); !math.IsInf(math.Log(0), -1) && got == 0 {
		t.Errorf("expected finite value; got %v", got)
	}
	// Starting state 1 has initial probability 0.
	if got := c.LogLikelihood(seq.Stream{1}); !math.IsInf(got, -1) {
		t.Errorf("impossible start: LogLikelihood = %v, want -Inf", got)
	}
}

func TestStationarySumsToOne(t *testing.T) {
	pi := twoState().Stationary(1000)
	sum := 0.0
	for _, p := range pi {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("stationary distribution sums to %v", sum)
	}
	// Analytic stationary distribution of the two-state chain:
	// pi0 = 0.4/(0.1+0.4) = 0.8.
	if math.Abs(pi[0]-0.8) > 1e-6 {
		t.Errorf("pi[0] = %v, want 0.8", pi[0])
	}
}

func TestEntropyRate(t *testing.T) {
	// Deterministic cycle: zero entropy.
	cycle, err := NewChain(
		[]float64{1, 0, 0},
		[][]float64{{0, 1, 0}, {0, 0, 1}, {1, 0, 0}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if h := cycle.EntropyRate(); h != 0 {
		t.Errorf("deterministic cycle entropy %v, want 0", h)
	}
	// Uniform coin: 1 bit per symbol.
	coin, err := NewChain(
		[]float64{0.5, 0.5},
		[][]float64{{0.5, 0.5}, {0.5, 0.5}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if h := coin.EntropyRate(); math.Abs(h-1) > 1e-9 {
		t.Errorf("fair coin entropy %v, want 1", h)
	}
	// The two-state test chain: H = pi0*H(0.9) + pi1*H(0.6) with pi0=0.8.
	h09 := -(0.9*math.Log2(0.9) + 0.1*math.Log2(0.1))
	h06 := -(0.6*math.Log2(0.6) + 0.4*math.Log2(0.4))
	want := 0.8*h09 + 0.2*h06
	if h := twoState().EntropyRate(); math.Abs(h-want) > 1e-6 {
		t.Errorf("two-state entropy %v, want %v", h, want)
	}
}

func TestEstimateRecoversChain(t *testing.T) {
	c := twoState()
	s := c.Generate(rng.New(123), 200_000)
	est, err := Estimate(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	for from := alphabet.Symbol(0); from < 2; from++ {
		for to := alphabet.Symbol(0); to < 2; to++ {
			if math.Abs(est.Prob(from, to)-c.Prob(from, to)) > 0.01 {
				t.Errorf("Prob(%d,%d): estimated %v, true %v", from, to, est.Prob(from, to), c.Prob(from, to))
			}
		}
	}
}

func TestEstimateErrors(t *testing.T) {
	if _, err := Estimate(seq.Stream{0, 1}, 0); err == nil {
		t.Errorf("Estimate with size 0 succeeded")
	}
	if _, err := Estimate(seq.Stream{0, 5}, 2); err == nil {
		t.Errorf("Estimate with out-of-alphabet symbol succeeded")
	}
}

func TestEstimateUnseenStateUniform(t *testing.T) {
	est, err := Estimate(seq.Stream{0, 0, 0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for to := alphabet.Symbol(0); to < 3; to++ {
		if got := est.Prob(2, to); math.Abs(got-1.0/3) > 1e-12 {
			t.Errorf("unseen state row: Prob(2,%d) = %v, want 1/3", to, got)
		}
	}
}
