package markovdet

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"adiv/internal/alphabet"
	"adiv/internal/detector"
	"adiv/internal/seq"
)

func mk(vals ...int) seq.Stream {
	s := make(seq.Stream, len(vals))
	for i, v := range vals {
		s[i] = alphabet.Symbol(v)
	}
	return s
}

func TestNewValidatesWindow(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Errorf("New(0) succeeded")
	}
	d, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Window() != 2 || d.Extent() != 3 || d.Name() != "markov" {
		t.Errorf("metadata: %s window %d extent %d", d.Name(), d.Window(), d.Extent())
	}
}

func TestScoreBeforeTrain(t *testing.T) {
	d, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Score(mk(1, 2)); !errors.Is(err, detector.ErrNotTrained) {
		t.Errorf("Score before Train: %v", err)
	}
}

func TestConditionalProbabilities(t *testing.T) {
	d, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	// Stream 0 1 0 1 0 2: contexts "0" x3 (→1,→1,→2), "1" x2 (→0,→0).
	if err := d.Train(mk(0, 1, 0, 1, 0, 2)); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		gram seq.Stream
		want float64
	}{
		{mk(0, 1), 2.0 / 3},
		{mk(0, 2), 1.0 / 3},
		{mk(0, 0), 0},
		{mk(1, 0), 1},
		{mk(2, 0), 0}, // context "2" occurs only as the final element: count 1, no continuation recorded
		{mk(3, 0), 0}, // unseen context
	}
	for _, tt := range tests {
		got, err := d.Prob(tt.gram)
		if err != nil {
			t.Fatalf("Prob(%v): %v", tt.gram, err)
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Prob(%v) = %v, want %v", tt.gram, got, tt.want)
		}
	}
	if _, err := d.Prob(mk(1, 2, 3)); err == nil {
		t.Errorf("Prob of wrong-length gram succeeded")
	}
}

func TestScoreComplementsProb(t *testing.T) {
	d, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Train(mk(0, 1, 0, 1, 0, 2)); err != nil {
		t.Fatal(err)
	}
	test := mk(0, 1, 0, 0)
	responses, err := d.Score(test)
	if err != nil {
		t.Fatal(err)
	}
	if len(responses) != 3 {
		t.Fatalf("%d responses, want 3", len(responses))
	}
	want := []float64{1 - 2.0/3, 0, 1} // P(1|0)=2/3, P(0|1)=1, P(0|0)=0
	for i := range want {
		if math.Abs(responses[i]-want[i]) > 1e-12 {
			t.Errorf("response[%d] = %v, want %v", i, responses[i], want[i])
		}
	}
}

func TestDeterministicStreamScoresZero(t *testing.T) {
	d, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	var cyc seq.Stream
	for i := 0; i < 50; i++ {
		cyc = append(cyc, 0, 1, 2, 3, 4)
	}
	if err := d.Train(cyc); err != nil {
		t.Fatal(err)
	}
	responses, err := d.Score(cyc[:30])
	if err != nil {
		t.Fatal(err)
	}
	// The training stream's final context has no recorded continuation, so
	// one context per cycle estimates P = 49/50 instead of 1; responses
	// are therefore bounded by 1/50, not exactly zero.
	for i, r := range responses {
		if r > 1.0/50+1e-12 {
			t.Errorf("response[%d] = %v on fully deterministic data", i, r)
		}
	}
}

// TestResponsesInUnitInterval: for arbitrary training and test data, every
// response lies in [0,1].
func TestResponsesInUnitInterval(t *testing.T) {
	check := func(trainRaw, testRaw []byte, wRaw uint8) bool {
		w := int(wRaw%3) + 1
		train := seq.FromBytes(clamp(trainRaw, 5))
		test := seq.FromBytes(clamp(testRaw, 5))
		if len(train) < w+1 || len(test) < w+1 {
			return true
		}
		d, err := New(w)
		if err != nil {
			return false
		}
		if err := d.Train(train); err != nil {
			return false
		}
		responses, err := d.Score(test)
		if err != nil {
			return false
		}
		for _, r := range responses {
			if r < 0 || r > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestForeignGramScoresOne: a (DW+1)-gram absent from training must always
// receive the maximal response.
func TestForeignGramScoresOne(t *testing.T) {
	check := func(trainRaw, testRaw []byte, wRaw uint8) bool {
		w := int(wRaw%3) + 1
		train := seq.FromBytes(clamp(trainRaw, 4))
		test := seq.FromBytes(clamp(testRaw, 4))
		if len(train) < w+1 || len(test) < w+1 {
			return true
		}
		d, err := New(w)
		if err != nil {
			return false
		}
		if err := d.Train(train); err != nil {
			return false
		}
		responses, err := d.Score(test)
		if err != nil {
			return false
		}
		grams, err := seq.Build(train, w+1)
		if err != nil {
			return false
		}
		for i, r := range responses {
			if grams.IsForeign(test[i:i+w+1]) && r != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStreamTooShort(t *testing.T) {
	d, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Train(mk(0, 1, 2, 3, 4, 0, 1, 2, 3, 4)); err != nil {
		t.Fatal(err)
	}
	// Extent is DW+1 = 5; a 4-element stream is too short.
	if _, err := d.Score(mk(0, 1, 2, 3)); !errors.Is(err, detector.ErrStreamTooShort) {
		t.Errorf("short stream: %v", err)
	}
}

func clamp(raw []byte, k byte) []byte {
	out := make([]byte, len(raw))
	for i, b := range raw {
		out[i] = b % k
	}
	return out
}
