// Package markovdet implements the Markov-based anomaly detector (paper
// Section 5.2; in the style of Jha, Tan & Maxion 2001 and Teng et al. 1990).
//
// For every fixed-length sequence of size DW obtained from the test data the
// detector calculates the conditional probability that the (DW+1)st element
// follows it, estimated by maximum likelihood from the training data:
//
//	P(next | context) = count(context·next) / count(context)
//
// The response is 1 - P: 0 for a transition that always happens, 1 for a
// transition never seen in training (including a context never seen at all).
// Because the estimate is frequency-based, the detector responds not only to
// foreign sequences (response exactly 1) but also, weakly, to rare
// transitions (response close to 1) — the source of both its superior
// coverage and its higher false-alarm propensity (paper Section 7).
package markovdet

import (
	"fmt"

	"adiv/internal/detector"
	"adiv/internal/seq"
)

// Detector is a Markov conditional-probability detector. Construct with New.
type Detector struct {
	window   int
	lambda   float64 // Laplace smoothing constant; 0 = maximum likelihood
	k        int     // alphabet size inferred at training (for smoothing)
	contexts *seq.DB // DW-grams
	grams    *seq.DB // (DW+1)-grams
}

var _ detector.Detector = (*Detector)(nil)

// New returns an untrained Markov detector with the given window length.
// The smallest meaningful window is 1 (the Markov assumption proper); the
// paper deploys it from 2 upward to align the axes across detectors.
func New(window int) (*Detector, error) {
	if err := detector.ValidateWindow(window); err != nil {
		return nil, err
	}
	return &Detector{window: window}, nil
}

// NewSmoothed returns a Markov detector with Laplace (add-lambda)
// smoothing of the conditional probabilities:
//
//	P(next | ctx) = (count(ctx·next) + λ) / (count(ctx) + λ·K)
//
// Smoothing is the textbook cure for zero-probability estimates — and an
// instructive ablation here: with λ > 0 no transition ever scores exactly
// 1, so under the paper's strict detection threshold the detector's entire
// coverage evaporates. Parameter values decide detectability.
func NewSmoothed(window int, lambda float64) (*Detector, error) {
	if err := detector.ValidateWindow(window); err != nil {
		return nil, err
	}
	if lambda < 0 {
		return nil, fmt.Errorf("markovdet: negative smoothing constant %v", lambda)
	}
	return &Detector{window: window, lambda: lambda}, nil
}

// Lambda returns the Laplace smoothing constant (0 for maximum likelihood).
func (d *Detector) Lambda() float64 { return d.lambda }

// Name implements detector.Detector.
func (d *Detector) Name() string { return "markov" }

// Window implements detector.Detector.
func (d *Detector) Window() int { return d.window }

// Extent implements detector.Detector: each response covers the context
// window plus the predicted element.
func (d *Detector) Extent() int { return d.window + 1 }

// Train estimates the conditional transition probabilities from the
// training stream by counting DW-grams and (DW+1)-grams.
func (d *Detector) Train(train seq.Stream) error {
	contexts, err := seq.Build(train, d.window)
	if err != nil {
		return fmt.Errorf("markovdet: %w", err)
	}
	grams, err := seq.Build(train, d.window+1)
	if err != nil {
		return fmt.Errorf("markovdet: %w", err)
	}
	k := 0
	for _, s := range train {
		if int(s)+1 > k {
			k = int(s) + 1
		}
	}
	d.contexts, d.grams, d.k = contexts, grams, k
	return nil
}

// TrainCorpus implements detector.CorpusTrainer: both gram databases (DW
// and DW+1) come from the shared corpus cache, and the alphabet size is the
// corpus's cached scan — the same model Train computes, without re-walking
// the stream. The databases are shared and treated as read-only.
func (d *Detector) TrainCorpus(c *seq.Corpus) error {
	contexts, err := c.DB(d.window)
	if err != nil {
		return fmt.Errorf("markovdet: %w", err)
	}
	grams, err := c.DB(d.window + 1)
	if err != nil {
		return fmt.Errorf("markovdet: %w", err)
	}
	d.contexts, d.grams, d.k = contexts, grams, c.AlphabetSize()
	return nil
}

// Prob returns the trained estimate of P(next | context) for the
// (window+1)-gram g (context plus next element). A context never seen in
// training has probability 0 for every continuation.
func (d *Detector) Prob(g seq.Stream) (float64, error) {
	if d.contexts == nil {
		return 0, detector.ErrNotTrained
	}
	if len(g) != d.window+1 {
		return 0, fmt.Errorf("markovdet: gram length %d, want %d", len(g), d.window+1)
	}
	ctxCount := d.contexts.Count(g[:d.window])
	if d.lambda == 0 {
		if ctxCount == 0 {
			return 0, nil
		}
		return float64(d.grams.Count(g)) / float64(ctxCount), nil
	}
	denom := float64(ctxCount) + d.lambda*float64(d.k)
	if denom == 0 {
		return 0, nil
	}
	return (float64(d.grams.Count(g)) + d.lambda) / denom, nil
}

// probBytes is Prob for a byte-encoded, length-checked (window+1)-gram: the
// allocation-free estimate the score loop uses on overlapping subslices of
// the encoded test stream.
func (d *Detector) probBytes(gram []byte) float64 {
	ctxCount := d.contexts.CountBytes(gram[:d.window])
	if d.lambda == 0 {
		if ctxCount == 0 {
			return 0
		}
		return float64(d.grams.CountBytes(gram)) / float64(ctxCount)
	}
	denom := float64(ctxCount) + d.lambda*float64(d.k)
	if denom == 0 {
		return 0
	}
	return (float64(d.grams.CountBytes(gram)) + d.lambda) / denom
}

// Score implements detector.Detector: responses[i] = 1 - P(test[i+DW] |
// test[i:i+DW]), one response per (DW+1)-gram of the test stream, i.e. one
// per element beginning at the (DW+1)st element as the paper puts it.
func (d *Detector) Score(test seq.Stream) ([]float64, error) {
	if err := detector.CheckScorable(d.contexts != nil, d.window+1, test); err != nil {
		return nil, err
	}
	n := seq.NumWindows(len(test), d.window+1)
	out := make([]float64, n)
	// Encode the test stream once; each gram is an overlapping subslice, so
	// the loop performs two counted map lookups and no allocation per gram.
	b := test.Bytes()
	for i := 0; i < n; i++ {
		out[i] = 1 - d.probBytes(b[i:i+d.window+1])
	}
	return out, nil
}

// ScoreWindowBytes implements detector.WindowByteScorer: the single-gram
// streaming fast path, two counted lookups and no allocation.
func (d *Detector) ScoreWindowBytes(w []byte) (float64, error) {
	if d.contexts == nil {
		return 0, detector.ErrNotTrained
	}
	if len(w) != d.window+1 {
		return 0, fmt.Errorf("markovdet: gram length %d, want %d", len(w), d.window+1)
	}
	return 1 - d.probBytes(w), nil
}
