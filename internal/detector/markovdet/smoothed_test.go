package markovdet

import (
	"math"
	"testing"
)

func TestNewSmoothedValidation(t *testing.T) {
	if _, err := NewSmoothed(0, 0.1); err == nil {
		t.Errorf("window 0 accepted")
	}
	if _, err := NewSmoothed(2, -1); err == nil {
		t.Errorf("negative lambda accepted")
	}
	d, err := NewSmoothed(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if d.Lambda() != 0.5 {
		t.Errorf("Lambda() = %v", d.Lambda())
	}
}

func TestSmoothedProbabilities(t *testing.T) {
	d, err := NewSmoothed(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Stream 0 1 0 1 0 2: alphabet size 3; context "0" count 3, gram
	// "0 1" count 2 → (2+1)/(3+3) = 0.5.
	if err := d.Train(mk(0, 1, 0, 1, 0, 2)); err != nil {
		t.Fatal(err)
	}
	p, err := d.Prob(mk(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.5) > 1e-12 {
		t.Errorf("P(1|0) = %v, want 0.5", p)
	}
	// Never-seen transition is smoothed above zero: (0+1)/(3+3).
	p, err = d.Prob(mk(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-1.0/6) > 1e-12 {
		t.Errorf("P(0|0) = %v, want 1/6", p)
	}
	// Unseen context: (0+1)/(0+3).
	p, err = d.Prob(mk(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Context "2" occurs once (final element): count 1 → (0+1)/(1+3).
	if math.Abs(p-0.25) > 1e-12 {
		t.Errorf("P(0|2) = %v, want 1/4", p)
	}
}

// TestSmoothingForfeitsMaximalResponses: the strict-threshold lesson — a
// smoothed detector never scores exactly 1, even on a foreign gram.
func TestSmoothingForfeitsMaximalResponses(t *testing.T) {
	ml, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := NewSmoothed(2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	var train []byte
	for i := 0; i < 50; i++ {
		train = append(train, 0, 1, 2, 3)
	}
	trainStream := mk(bytesToInts(train)...)
	if err := ml.Train(trainStream); err != nil {
		t.Fatal(err)
	}
	if err := sm.Train(trainStream); err != nil {
		t.Fatal(err)
	}
	test := mk(0, 1, 3) // gram (0 1 -> 3) is foreign
	mlResp, err := ml.Score(test)
	if err != nil {
		t.Fatal(err)
	}
	smResp, err := sm.Score(test)
	if err != nil {
		t.Fatal(err)
	}
	if mlResp[0] != 1 {
		t.Errorf("maximum-likelihood response %v, want exactly 1", mlResp[0])
	}
	if smResp[0] >= 1 {
		t.Errorf("smoothed response %v, want strictly below 1", smResp[0])
	}
	if smResp[0] < 0.9 {
		t.Errorf("smoothed response %v implausibly low for a foreign gram", smResp[0])
	}
}

func bytesToInts(b []byte) []int {
	out := make([]int, len(b))
	for i, v := range b {
		out[i] = int(v)
	}
	return out
}

func TestZeroLambdaMatchesNew(t *testing.T) {
	a, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSmoothed(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	train := mk(0, 1, 0, 1, 0, 2)
	if err := a.Train(train); err != nil {
		t.Fatal(err)
	}
	if err := b.Train(train); err != nil {
		t.Fatal(err)
	}
	test := mk(0, 1, 0, 0, 2, 1)
	ra, err := a.Score(test)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Score(test)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Errorf("response[%d]: %v vs %v", i, ra[i], rb[i])
		}
	}
}
