package detector

import (
	"errors"
	"testing"

	"adiv/internal/seq"
)

// fake is a minimal Detector for registry tests.
type fake struct{ window int }

func (f *fake) Name() string                          { return "fake" }
func (f *fake) Window() int                           { return f.window }
func (f *fake) Extent() int                           { return f.window }
func (f *fake) Train(seq.Stream) error                { return nil }
func (f *fake) Score(t seq.Stream) ([]float64, error) { return make([]float64, len(t)), nil }

var _ Detector = (*fake)(nil)

func TestValidateWindow(t *testing.T) {
	if err := ValidateWindow(1); err != nil {
		t.Errorf("ValidateWindow(1) = %v", err)
	}
	for _, w := range []int{0, -5} {
		if err := ValidateWindow(w); err == nil {
			t.Errorf("ValidateWindow(%d) accepted", w)
		}
	}
}

func TestCheckScorable(t *testing.T) {
	if err := CheckScorable(false, 3, make(seq.Stream, 10)); !errors.Is(err, ErrNotTrained) {
		t.Errorf("untrained: %v, want ErrNotTrained", err)
	}
	if err := CheckScorable(true, 5, make(seq.Stream, 4)); !errors.Is(err, ErrStreamTooShort) {
		t.Errorf("short stream: %v, want ErrStreamTooShort", err)
	}
	if err := CheckScorable(true, 5, make(seq.Stream, 5)); err != nil {
		t.Errorf("exact-length stream rejected: %v", err)
	}
}

func TestRegistry(t *testing.T) {
	Register("fake", func(w int) (Detector, error) { return &fake{window: w}, nil })
	d, err := New("fake", 4)
	if err != nil {
		t.Fatalf("New(fake): %v", err)
	}
	if d.Window() != 4 || d.Name() != "fake" {
		t.Errorf("constructed detector %s window %d", d.Name(), d.Window())
	}
	if _, err := New("nosuch", 4); err == nil {
		t.Errorf("New of unregistered name succeeded")
	}
	found := false
	for _, n := range Names() {
		if n == "fake" {
			found = true
		}
	}
	if !found {
		t.Errorf("Names() = %v does not include fake", Names())
	}
}

func TestRegisterNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Register(nil) did not panic")
		}
	}()
	Register("nil-factory", nil)
}
