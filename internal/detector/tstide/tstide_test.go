package tstide

import (
	"errors"
	"testing"
	"testing/quick"

	"adiv/internal/alphabet"
	"adiv/internal/detector"
	"adiv/internal/seq"
)

func mk(vals ...int) seq.Stream {
	s := make(seq.Stream, len(vals))
	for i, v := range vals {
		s[i] = alphabet.Symbol(v)
	}
	return s
}

// trainStream: 198 copies of "0 1" plus one "2 3" burst: pairs (0,1),(1,0)
// common, (1,2),(2,3),(3,0) rare singletons.
func trainStream() seq.Stream {
	var s seq.Stream
	for i := 0; i < 99; i++ {
		s = append(s, 0, 1)
	}
	s = append(s, 2, 3)
	for i := 0; i < 99; i++ {
		s = append(s, 0, 1)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 0.01); err == nil {
		t.Errorf("New(0, ...) succeeded")
	}
	for _, cutoff := range []float64{0, 1, -0.1, 1.5} {
		if _, err := New(2, cutoff); err == nil {
			t.Errorf("cutoff %v accepted", cutoff)
		}
	}
	d, err := New(4, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	if d.Window() != 4 || d.Extent() != 4 || d.Name() != "tstide" || d.Cutoff() != 0.005 {
		t.Errorf("metadata: %s window %d extent %d cutoff %v", d.Name(), d.Window(), d.Extent(), d.Cutoff())
	}
}

func TestScoreBeforeTrain(t *testing.T) {
	d, err := New(2, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Score(mk(0, 1, 0)); !errors.Is(err, detector.ErrNotTrained) {
		t.Errorf("Score before Train: %v", err)
	}
}

func TestRespondsToRareAndForeign(t *testing.T) {
	d, err := New(2, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Train(trainStream()); err != nil {
		t.Fatal(err)
	}
	// Test stream 0 1 2 3 1 1: pairs 01(common) 12(rare) 23(rare) 31(foreign) 11(foreign).
	got, err := d.Score(mk(0, 1, 2, 3, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1, 1, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("response[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestStideSubset: every window plain Stide alarms on (foreign), t-stide
// alarms on too; t-stide adds only rare windows. Checked over random data.
func TestStideSubset(t *testing.T) {
	check := func(trainRaw, testRaw []byte, wRaw uint8) bool {
		w := int(wRaw%3) + 1
		train := seq.FromBytes(clamp(trainRaw, 4))
		test := seq.FromBytes(clamp(testRaw, 4))
		if len(train) < w || len(test) < w {
			return true
		}
		d, err := New(w, 0.3)
		if err != nil {
			return false
		}
		if err := d.Train(train); err != nil {
			return false
		}
		responses, err := d.Score(test)
		if err != nil {
			return false
		}
		db, err := seq.Build(train, w)
		if err != nil {
			return false
		}
		for i, r := range responses {
			win := test[i : i+w]
			foreign := db.IsForeign(win)
			rare := db.IsRare(win, 0.3)
			want := 0.0
			if foreign || rare {
				want = 1.0
			}
			if r != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func clamp(raw []byte, k byte) []byte {
	out := make([]byte, len(raw))
	for i, b := range raw {
		out[i] = b % k
	}
	return out
}

func TestCutoffBoundary(t *testing.T) {
	// The pair (2,3) occurs once among 397 windows ≈ 0.252%: rare at a
	// 0.3% cutoff, normal at 0.2%.
	sensitive, err := New(2, 0.003)
	if err != nil {
		t.Fatal(err)
	}
	strict, err := New(2, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	if err := sensitive.Train(trainStream()); err != nil {
		t.Fatal(err)
	}
	if err := strict.Train(trainStream()); err != nil {
		t.Fatal(err)
	}
	rs, err := sensitive.Score(mk(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := strict.Score(mk(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if rs[0] != 1 {
		t.Errorf("0.3%% cutoff: response %v, want 1", rs[0])
	}
	if rt[0] != 0 {
		t.Errorf("0.2%% cutoff: response %v, want 0", rt[0])
	}
}
