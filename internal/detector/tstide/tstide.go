// Package tstide implements t-stide, the frequency-thresholded Stide
// variant of Warrender, Forrest & Pearlmutter (1999) — "stide with
// frequency threshold". The paper under reproduction discusses it
// implicitly: rare sequences "are detectable by some detectors, e.g.,
// Markov-based detectors, but are not detectable by others, e.g., Stide"
// (Section 5.1), and cites [20] for the 0.5% rarity definition that t-stide
// introduced. t-stide is the minimal change to Stide that crosses that
// divide: a test window raises the maximal response not only when it is
// foreign but also when its training frequency falls below the threshold.
//
// On the evaluation data it therefore behaves like the rare-sensitive
// regime of the Markov detector — covering the whole (anomaly size ×
// window) space, at the price of alarming on every naturally occurring
// rare sequence — which makes it the second data point for the paper's
// coverage-versus-false-alarms trade-off, and a second candidate primary
// for the Stide-suppression pipeline of Section 7.
package tstide

import (
	"fmt"

	"adiv/internal/detector"
	"adiv/internal/seq"
)

// DefaultRareCutoff is the relative-frequency threshold of the original
// t-stide and of the paper's rare-sequence definition: 0.5%.
const DefaultRareCutoff = 0.005

// Detector is a t-stide instance. Construct with New.
type Detector struct {
	window int
	cutoff float64
	normal *seq.DB
}

var _ detector.Detector = (*Detector)(nil)

// New returns an untrained t-stide with the given window length and rarity
// cutoff (a relative frequency in (0,1); windows at or above it are
// normal).
func New(window int, cutoff float64) (*Detector, error) {
	if err := detector.ValidateWindow(window); err != nil {
		return nil, err
	}
	if cutoff <= 0 || cutoff >= 1 {
		return nil, fmt.Errorf("tstide: rarity cutoff %v outside (0,1)", cutoff)
	}
	return &Detector{window: window, cutoff: cutoff}, nil
}

// Name implements detector.Detector.
func (d *Detector) Name() string { return "tstide" }

// Window implements detector.Detector.
func (d *Detector) Window() int { return d.window }

// Extent implements detector.Detector.
func (d *Detector) Extent() int { return d.window }

// Cutoff returns the rarity cutoff the detector was configured with.
func (d *Detector) Cutoff() float64 { return d.cutoff }

// Train records every training window with its occurrence count.
func (d *Detector) Train(train seq.Stream) error {
	db, err := seq.Build(train, d.window)
	if err != nil {
		return fmt.Errorf("tstide: %w", err)
	}
	d.normal = db
	return nil
}

// TrainCorpus implements detector.CorpusTrainer: the counted window
// database is fetched from the shared corpus cache (read-only) instead of
// rebuilt from the stream.
func (d *Detector) TrainCorpus(c *seq.Corpus) error {
	db, err := c.DB(d.window)
	if err != nil {
		return fmt.Errorf("tstide: %w", err)
	}
	d.normal = db
	return nil
}

// Score implements detector.Detector: response 1 for windows that are
// foreign or rarer than the cutoff, 0 otherwise — Stide's exact match
// hardened with the frequency threshold.
func (d *Detector) Score(test seq.Stream) ([]float64, error) {
	if err := detector.CheckScorable(d.normal != nil, d.window, test); err != nil {
		return nil, err
	}
	n := seq.NumWindows(len(test), d.window)
	out := make([]float64, n)
	// Encode the test stream once and fold the foreign and rare predicates
	// into a single counted lookup per window: foreign means count 0, rare
	// means a positive count below the cutoff fraction of training windows.
	b := test.Bytes()
	limit := d.cutoff * float64(d.normal.Total())
	for i := 0; i < n; i++ {
		c := d.normal.CountBytes(b[i : i+d.window])
		if c == 0 || float64(c) < limit {
			out[i] = 1
		}
	}
	return out, nil
}

// ScoreWindowBytes implements detector.WindowByteScorer: the single-window
// streaming fast path — one counted lookup against the same rarity limit
// the batch loop computes, and no allocation.
func (d *Detector) ScoreWindowBytes(w []byte) (float64, error) {
	if d.normal == nil {
		return 0, detector.ErrNotTrained
	}
	if len(w) != d.window {
		return 0, fmt.Errorf("tstide: window length %d, want %d", len(w), d.window)
	}
	limit := d.cutoff * float64(d.normal.Total())
	c := d.normal.CountBytes(w)
	if c == 0 || float64(c) < limit {
		return 1, nil
	}
	return 0, nil
}
