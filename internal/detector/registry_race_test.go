package detector

import (
	"fmt"
	"sync"
	"testing"

	"adiv/internal/seq"
)

// TestRegistryConcurrent hammers the registry from many goroutines at once:
// registrations, lookups (both hits and misses), and Names snapshots. The
// registry is package-global state shared by every command, so it must be
// safe under -race. Names are prefixed "racetest-" to stay clear of the
// names other tests assert on.
func TestRegistryConcurrent(t *testing.T) {
	const (
		writers = 8
		readers = 8
		rounds  = 200
	)
	factory := func(w int) (Detector, error) { return &fake{window: w}, nil }

	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				Register(fmt.Sprintf("racetest-%d-%d", id, r%4), factory)
			}
		}(i)
	}
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				name := fmt.Sprintf("racetest-%d-%d", id%writers, r%4)
				if d, err := New(name, 3); err == nil {
					if _, serr := d.Score(seq.Stream{0, 1, 2, 3}); serr != nil {
						t.Errorf("Score on %s: %v", name, serr)
					}
				}
				if _, err := New("racetest-never-registered", 3); err == nil {
					t.Error("New on unregistered name succeeded")
				}
				Names()
			}
		}(i)
	}
	wg.Wait()

	// Every writer's names must be resolvable once the dust settles.
	for id := 0; id < writers; id++ {
		for v := 0; v < 4; v++ {
			name := fmt.Sprintf("racetest-%d-%d", id, v)
			if _, err := New(name, 2); err != nil {
				t.Errorf("New(%s) after concurrent registration: %v", name, err)
			}
		}
	}
}
