// Package nnet implements the neural-network-based anomaly detector (Debar
// et al. 1992; paper Section 5.2): a multilayer feed-forward network that
// predicts the next categorical element from the current fixed-length
// window. The network has no explicit probabilistic machinery, but its
// learned approximation mimics the conditional probabilities of the Markov
// detector — including, as the paper stresses (Section 7), a strong
// dependence on the art of setting its tuning parameters (hidden nodes,
// learning constant, momentum constant, training epochs).
//
// Architecture: the DW-symbol context is one-hot encoded (DW blocks of
// alphabet-size inputs), fed through one tanh hidden layer, and read out as
// a softmax distribution over the next symbol. Training minimizes
// cross-entropy by stochastic gradient descent with momentum over the
// distinct (context, next) grams of the training stream, each weighted by
// its occurrence count — an exact reweighting of per-window SGD that makes
// training time independent of the (million-element) stream length. The
// anomaly response for a test position is 1 minus the predicted probability
// of the element actually observed.
package nnet

import (
	"fmt"
	"math"
	"sort"

	"adiv/internal/alphabet"
	"adiv/internal/detector"
	"adiv/internal/rng"
	"adiv/internal/seq"
)

// Config holds the network's tuning parameters. The paper's point that "the
// performance of a multi-layer, feed-forward network relies on a balance of
// parameter values" is reproduced by the ablation benches, which sweep these.
type Config struct {
	// Hidden is the number of units in the first hidden (tanh) layer.
	Hidden int
	// Hidden2, when positive, adds a second hidden (tanh) layer of that
	// size between the first layer and the softmax readout — the fuller
	// "multilayer" architecture of Debar et al.; 0 keeps a single layer.
	Hidden2 int
	// LearningRate is the SGD learning constant.
	LearningRate float64
	// Momentum is the momentum constant applied to weight updates.
	Momentum float64
	// Epochs is the maximum number of passes over the distinct training
	// grams.
	Epochs int
	// TargetLoss, when positive, stops training early once an epoch's mean
	// weighted cross-entropy falls below it. Early stopping keeps the
	// fourteen trainings of a performance map cheap without changing the
	// converged behavior.
	TargetLoss float64
	// AlphabetSize fixes the symbol domain; 0 infers it from the training
	// stream (largest symbol observed plus one).
	AlphabetSize int
	// Seed seeds weight initialization and example shuffling.
	Seed uint64
	// BatchSize selects the SGD granularity. 0 or 1 is exact per-example
	// SGD — the reference semantics every figure is pinned to. Values > 1
	// compute each batch's per-example gradients at the batch-start weights
	// and apply them with momentum in fixed index order, which trades exact
	// per-example updates for intra-batch parallelism while keeping the
	// trained weights a pure function of (data, config): bit-identical for
	// every worker count.
	BatchSize int
	// Workers bounds the goroutines computing per-example gradients within
	// a batch; 0 means GOMAXPROCS. It has no effect when BatchSize ≤ 1 and
	// never affects the trained weights, only the wall-clock.
	Workers int
}

// DefaultConfig returns a well-tuned configuration for the evaluation data:
// enough capacity and epochs for the learned conditional probabilities of
// never-observed continuations to fall effectively to zero.
func DefaultConfig() Config {
	return Config{
		Hidden:       24,
		LearningRate: 0.25,
		Momentum:     0.7,
		Epochs:       400,
		Seed:         7,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Hidden < 1 {
		return fmt.Errorf("nnet: non-positive hidden layer size %d", c.Hidden)
	}
	if c.Hidden2 < 0 {
		return fmt.Errorf("nnet: negative second hidden layer size %d", c.Hidden2)
	}
	if c.LearningRate <= 0 || math.IsNaN(c.LearningRate) {
		return fmt.Errorf("nnet: non-positive learning rate %v", c.LearningRate)
	}
	if c.Momentum < 0 || c.Momentum >= 1 {
		return fmt.Errorf("nnet: momentum %v outside [0,1)", c.Momentum)
	}
	if c.Epochs < 1 {
		return fmt.Errorf("nnet: non-positive epoch count %d", c.Epochs)
	}
	if c.TargetLoss < 0 || math.IsNaN(c.TargetLoss) {
		return fmt.Errorf("nnet: negative target loss %v", c.TargetLoss)
	}
	if c.AlphabetSize < 0 || c.AlphabetSize > alphabet.MaxSize {
		return fmt.Errorf("nnet: alphabet size %d outside [0,%d]", c.AlphabetSize, alphabet.MaxSize)
	}
	if c.BatchSize < 0 {
		return fmt.Errorf("nnet: negative batch size %d", c.BatchSize)
	}
	if c.Workers < 0 {
		return fmt.Errorf("nnet: negative worker count %d", c.Workers)
	}
	return nil
}

// Detector is a neural-network next-element predictor. Construct with New.
type Detector struct {
	window int
	cfg    Config
	net    *network
}

var _ detector.Detector = (*Detector)(nil)

// New returns an untrained neural-network detector with the given window
// length and configuration.
func New(window int, cfg Config) (*Detector, error) {
	if err := detector.ValidateWindow(window); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Detector{window: window, cfg: cfg}, nil
}

// Name implements detector.Detector.
func (d *Detector) Name() string { return "nn" }

// Window implements detector.Detector.
func (d *Detector) Window() int { return d.window }

// Extent implements detector.Detector: like the Markov detector, each
// response covers the context window plus the predicted element.
func (d *Detector) Extent() int { return d.window + 1 }

// Config returns the detector's tuning parameters.
func (d *Detector) Config() Config { return d.cfg }

// Train fits the network to the training stream's (DW+1)-grams.
func (d *Detector) Train(train seq.Stream) error {
	k := d.cfg.AlphabetSize
	if k == 0 {
		for _, s := range train {
			if int(s)+1 > k {
				k = int(s) + 1
			}
		}
	}
	grams, err := seq.Build(train, d.window+1)
	if err != nil {
		return fmt.Errorf("nnet: %w", err)
	}
	return d.fit(grams, k, len(train))
}

// TrainCorpus implements detector.CorpusTrainer: the (DW+1)-gram database
// comes from the shared corpus cache and the inferred alphabet size from
// the corpus's cached scan. The database is read shared and never written;
// the SGD examples are the detector's own weighted copies.
func (d *Detector) TrainCorpus(c *seq.Corpus) error {
	k := d.cfg.AlphabetSize
	if k == 0 {
		k = c.AlphabetSize()
	}
	grams, err := c.DB(d.window + 1)
	if err != nil {
		return fmt.Errorf("nnet: %w", err)
	}
	return d.fit(grams, k, c.Len())
}

// fit runs the weighted-SGD training loop over a built gram database.
// streamLen only labels the no-grams error.
func (d *Detector) fit(grams *seq.DB, k, streamLen int) error {
	if k < 2 {
		return fmt.Errorf("nnet: degenerate alphabet of size %d", k)
	}
	if grams.Total() == 0 {
		return fmt.Errorf("nnet: training stream of length %d holds no %d-gram", streamLen, d.window+1)
	}

	// Collect the distinct grams as (key, count) pairs without copying the
	// key bytes, and sort: the keys are equal-length context·next strings,
	// so lexicographic key order is exactly the legacy (context, next)
	// order. The sorted order fixes both the weight-normalization sum and
	// the shuffle indices, keeping training bit-identical.
	type keyedGram struct {
		key   string
		count int
	}
	pairs := make([]keyedGram, 0, grams.Distinct())
	grams.EachKey(func(key string, count int) {
		pairs = append(pairs, keyedGram{key, count})
	})
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].key < pairs[j].key })

	ex := &exampleSet{
		window:  d.window,
		ctx:     make([]byte, 0, len(pairs)*d.window),
		targets: make([]uint8, len(pairs)),
		weights: make([]float64, len(pairs)),
	}
	totalW := 0.0
	for i, p := range pairs {
		ex.ctx = append(ex.ctx, p.key[:d.window]...)
		ex.targets[i] = p.key[d.window]
		ex.weights[i] = float64(p.count)
		totalW += ex.weights[i]
	}
	// Normalize weights to mean 1 so the learning rate keeps its usual
	// meaning.
	scale := float64(len(pairs)) / totalW
	for i := range ex.weights {
		ex.weights[i] *= scale
	}

	net := newNetwork(d.window, k, d.cfg.Hidden, d.cfg.Hidden2, rng.New(d.cfg.Seed))
	net.trainSGD(ex, d.cfg)
	d.net = net
	return nil
}

// Prob returns the trained network's predicted probability of the last
// element of g given the preceding window.
func (d *Detector) Prob(g seq.Stream) (float64, error) {
	if d.net == nil {
		return 0, detector.ErrNotTrained
	}
	if len(g) != d.window+1 {
		return 0, fmt.Errorf("nnet: gram length %d, want %d", len(g), d.window+1)
	}
	b := g.Bytes()
	probs := d.net.forward(b[:d.window])
	next := int(b[d.window])
	if next >= len(probs) {
		return 0, nil
	}
	return probs[next], nil
}

// Score implements detector.Detector: responses[i] = 1 - P̂(test[i+DW] |
// test[i:i+DW]) under the trained network.
func (d *Detector) Score(test seq.Stream) ([]float64, error) {
	if err := detector.CheckScorable(d.net != nil, d.window+1, test); err != nil {
		return nil, err
	}
	b := test.Bytes()
	n := seq.NumWindows(len(test), d.window+1)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		probs := d.net.forward(b[i : i+d.window])
		next := int(b[i+d.window])
		p := 0.0
		if next < len(probs) {
			p = probs[next]
		}
		out[i] = 1 - p
	}
	return out, nil
}
