package nnet

import (
	"math"

	"adiv/internal/rng"
)

// network is a feed-forward net over one-hot encoded symbol windows with a
// softmax readout and one or two tanh hidden layers. Because the input is
// a concatenation of one-hot blocks, the first-layer matrix product
// reduces to summing one column per window position, which both forward
// and step exploit; no dense input vector is ever materialized.
type network struct {
	window  int // context length DW
	k       int // alphabet size
	hidden  int
	hidden2 int // 0 = single hidden layer

	// First layer: w1[j][pos*k+sym] is the weight from input (pos, sym) to
	// hidden unit j; b1 the hidden biases.
	w1, v1  [][]float64
	b1, vb1 []float64
	// Optional middle layer: wm[m][j] from hidden j to hidden2 unit m.
	wm, vm  [][]float64
	bm, vbm []float64
	// Output layer: w2[o][t] from the top hidden layer to output o.
	w2, v2  [][]float64
	b2, vb2 []float64

	// Scratch buffers reused across calls. The network is therefore not
	// safe for concurrent use; the detector types own one each.
	h, dh, h2, dh2, probs, dout []float64
}

// top returns the size of the hidden layer feeding the output.
func (n *network) top() int {
	if n.hidden2 > 0 {
		return n.hidden2
	}
	return n.hidden
}

func newNetwork(window, k, hidden, hidden2 int, src *rng.Source) *network {
	n := &network{window: window, k: k, hidden: hidden, hidden2: hidden2}
	inputs := window * k
	inScale := 1 / math.Sqrt(float64(window)) // each pattern activates DW inputs
	n.w1 = randomMatrix(src, hidden, inputs, inScale)
	n.v1 = zeroMatrix(hidden, inputs)
	n.b1 = make([]float64, hidden)
	n.vb1 = make([]float64, hidden)
	if hidden2 > 0 {
		mScale := 1 / math.Sqrt(float64(hidden))
		n.wm = randomMatrix(src, hidden2, hidden, mScale)
		n.vm = zeroMatrix(hidden2, hidden)
		n.bm = make([]float64, hidden2)
		n.vbm = make([]float64, hidden2)
		n.h2 = make([]float64, hidden2)
		n.dh2 = make([]float64, hidden2)
	}
	top := n.top()
	tScale := 1 / math.Sqrt(float64(top))
	n.w2 = randomMatrix(src, k, top, tScale)
	n.v2 = zeroMatrix(k, top)
	n.b2 = make([]float64, k)
	n.vb2 = make([]float64, k)
	n.h = make([]float64, hidden)
	n.dh = make([]float64, hidden)
	n.probs = make([]float64, k)
	n.dout = make([]float64, k)
	return n
}

func randomMatrix(src *rng.Source, rows, cols int, scale float64) [][]float64 {
	m := make([][]float64, rows)
	for i := range m {
		m[i] = make([]float64, cols)
		for j := range m[i] {
			m[i][j] = (src.Float64()*2 - 1) * scale
		}
	}
	return m
}

func zeroMatrix(rows, cols int) [][]float64 {
	m := make([][]float64, rows)
	for i := range m {
		m[i] = make([]float64, cols)
	}
	return m
}

// forward runs the context (byte-encoded window) through the network and
// returns the softmax output distribution. The returned slice is a scratch
// buffer owned by the network, valid until the next forward or step call.
func (n *network) forward(context []byte) []float64 {
	for j := 0; j < n.hidden; j++ {
		a := n.b1[j]
		row := n.w1[j]
		for pos, sym := range context {
			a += row[pos*n.k+int(sym)]
		}
		n.h[j] = math.Tanh(a)
	}
	topAct := n.h
	if n.hidden2 > 0 {
		for m := 0; m < n.hidden2; m++ {
			a := n.bm[m]
			row := n.wm[m]
			for j := 0; j < n.hidden; j++ {
				a += row[j] * n.h[j]
			}
			n.h2[m] = math.Tanh(a)
		}
		topAct = n.h2
	}
	maxLogit := math.Inf(-1)
	for o := 0; o < n.k; o++ {
		a := n.b2[o]
		row := n.w2[o]
		for t := range topAct {
			a += row[t] * topAct[t]
		}
		n.probs[o] = a
		if a > maxLogit {
			maxLogit = a
		}
	}
	sum := 0.0
	for o := 0; o < n.k; o++ {
		n.probs[o] = math.Exp(n.probs[o] - maxLogit)
		sum += n.probs[o]
	}
	for o := 0; o < n.k; o++ {
		n.probs[o] /= sum
	}
	return n.probs
}

// step performs one weighted SGD-with-momentum update on the cross-entropy
// loss for a single (context, target) example and returns the example's
// weighted loss before the update.
func (n *network) step(context []byte, target int, weight, lr, momentum float64) float64 {
	probs := n.forward(context)
	loss := weight * crossEntropy(probs[target])

	// Softmax + cross-entropy gradient at the output.
	for o := 0; o < n.k; o++ {
		n.dout[o] = probs[o]
	}
	n.dout[target] -= 1

	topAct, topDelta := n.h, n.dh
	if n.hidden2 > 0 {
		topAct, topDelta = n.h2, n.dh2
	}

	// Top hidden deltas through the tanh derivative.
	for t := range topAct {
		s := 0.0
		for o := 0; o < n.k; o++ {
			s += n.w2[o][t] * n.dout[o]
		}
		topDelta[t] = s * (1 - topAct[t]*topAct[t])
	}
	// With a middle layer, propagate further down to the first hidden.
	if n.hidden2 > 0 {
		for j := 0; j < n.hidden; j++ {
			s := 0.0
			for m := 0; m < n.hidden2; m++ {
				s += n.wm[m][j] * n.dh2[m]
			}
			n.dh[j] = s * (1 - n.h[j]*n.h[j])
		}
	}

	step := lr * weight

	// Output-layer update against the top activations.
	for o := 0; o < n.k; o++ {
		g := n.dout[o]
		row, vel := n.w2[o], n.v2[o]
		for t := range topAct {
			vel[t] = momentum*vel[t] - step*g*topAct[t]
			row[t] += vel[t]
		}
		n.vb2[o] = momentum*n.vb2[o] - step*g
		n.b2[o] += n.vb2[o]
	}

	// Middle-layer update.
	if n.hidden2 > 0 {
		for m := 0; m < n.hidden2; m++ {
			g := n.dh2[m]
			row, vel := n.wm[m], n.vm[m]
			for j := 0; j < n.hidden; j++ {
				vel[j] = momentum*vel[j] - step*g*n.h[j]
				row[j] += vel[j]
			}
			n.vbm[m] = momentum*n.vbm[m] - step*g
			n.bm[m] += n.vbm[m]
		}
	}

	// First-layer update: only the DW active inputs have nonzero gradient.
	for j := 0; j < n.hidden; j++ {
		g := n.dh[j]
		row, vel := n.w1[j], n.v1[j]
		for pos, sym := range context {
			i := pos*n.k + int(sym)
			vel[i] = momentum*vel[i] - step*g
			row[i] += vel[i]
		}
		n.vb1[j] = momentum*n.vb1[j] - step*g
		n.b1[j] += n.vb1[j]
	}
	return loss
}

// crossEntropy returns -log(p) with a floor that keeps the loss finite
// when the softmax underflows.
func crossEntropy(p float64) float64 {
	const floor = 1e-300
	if p < floor {
		p = floor
	}
	return -math.Log(p)
}
