package nnet

import (
	"math"
	"runtime"
	"sync"

	"adiv/internal/rng"
)

// velFloor flushes momentum velocities to exact zero before they reach the
// subnormal float range. When an example's gradient vanishes (the network
// has learned it), its velocities decay geometrically — ×momentum per step —
// toward zero and, left alone, spend thousands of steps as subnormal
// numbers; on common x86 cores every multiply on a subnormal operand takes a
// microcode assist costing ~100 cycles, which profiling showed dominating
// the whole training run. Flushing below 1e-300 removes the penalty without
// changing the trained network: adding a magnitude-≤1e-300 velocity to a
// normal-scale weight is a bitwise no-op (far below the weight's ulp), and
// the reference-equivalence test pins the bit-identity end to end.
const velFloor = 1e-300

// network is a feed-forward net over one-hot encoded symbol windows with a
// softmax readout and one or two tanh hidden layers. Because the input is a
// concatenation of one-hot blocks, the first-layer matvec reduces to
// summing one weight column per window position; no dense input vector is
// ever materialized.
//
// All weight matrices are flat []float64. The first layer is stored
// column-major — w1[i*hidden+j] connects one-hot input i = pos*k+sym to
// hidden unit j — so the column gather in forward and the sparse update in
// apply both walk contiguous memory. The middle and output layers are
// row-major (wm[m*hidden+j], w2[o*top+t]), matching their dense access.
//
// Determinism contract: newNetwork consumes the seeded PCG stream in the
// exact order of the legacy row-major implementation, and every
// floating-point accumulation in forward/backprop/apply preserves the
// legacy per-accumulator operand order, so trained weights are bit-for-bit
// identical to the reference (see reference_test.go).
type network struct {
	window  int // context length DW
	k       int // alphabet size
	hidden  int
	hidden2 int // 0 = single hidden layer

	w1, v1  []float64 // first layer, column-major
	b1, vb1 []float64
	wm, vm  []float64 // optional middle layer, row-major
	bm, vbm []float64
	w2, v2  []float64 // output layer, row-major
	b2, vb2 []float64

	// Scratch owned by the sequential paths (forward for scoring, step for
	// per-example SGD, sg for apply). The network is therefore not safe for
	// concurrent use except through the explicit gradient fan-out in
	// trainSGD, where every worker gets a private grad slot and scratch and
	// the weights are read-only for the duration of the fan-out.
	g0 grad
	s0 scratch
	sg []float64 // apply: per-hidden-unit step*delta, len hidden
}

// grad holds one example's backpropagated gradient signals plus the
// activations its weight update needs. Slots are written by exactly one
// backprop call and read by exactly one apply call.
type grad struct {
	h, h2   []float64 // tanh activations per hidden layer
	dout    []float64 // output delta: softmax minus one-hot target
	dh, dh2 []float64 // hidden deltas through the tanh derivative
	loss    float64   // weighted cross-entropy at the pre-update weights
}

// scratch is per-worker temporary storage for backprop: the softmax buffer
// and the shared accumulation buffer for the delta back-propagation.
type scratch struct {
	probs []float64
	acc   []float64 // len max(hidden, top)
}

// top returns the size of the hidden layer feeding the output.
func (n *network) top() int {
	if n.hidden2 > 0 {
		return n.hidden2
	}
	return n.hidden
}

func newNetwork(window, k, hidden, hidden2 int, src *rng.Source) *network {
	n := &network{window: window, k: k, hidden: hidden, hidden2: hidden2}
	inputs := window * k
	inScale := 1 / math.Sqrt(float64(window)) // each pattern activates DW inputs
	// The legacy layout filled w1 row-major (hidden rows × inputs cols); the
	// column-major array must consume the PCG stream in that same (j, i)
	// order to initialize bit-identically.
	n.w1 = make([]float64, inputs*hidden)
	for j := 0; j < hidden; j++ {
		for i := 0; i < inputs; i++ {
			n.w1[i*hidden+j] = (src.Float64()*2 - 1) * inScale
		}
	}
	n.v1 = make([]float64, inputs*hidden)
	n.b1 = make([]float64, hidden)
	n.vb1 = make([]float64, hidden)
	if hidden2 > 0 {
		mScale := 1 / math.Sqrt(float64(hidden))
		n.wm = randomFlat(src, hidden2*hidden, mScale)
		n.vm = make([]float64, hidden2*hidden)
		n.bm = make([]float64, hidden2)
		n.vbm = make([]float64, hidden2)
	}
	top := n.top()
	tScale := 1 / math.Sqrt(float64(top))
	n.w2 = randomFlat(src, k*top, tScale)
	n.v2 = make([]float64, k*top)
	n.b2 = make([]float64, k)
	n.vb2 = make([]float64, k)
	n.g0 = n.newGrad()
	n.s0 = n.newScratch()
	n.sg = make([]float64, hidden)
	return n
}

// randomFlat fills a flat row-major matrix; linear fill order equals the
// legacy row-then-column fill, so the PCG stream is consumed identically.
func randomFlat(src *rng.Source, size int, scale float64) []float64 {
	m := make([]float64, size)
	for i := range m {
		m[i] = (src.Float64()*2 - 1) * scale
	}
	return m
}

func (n *network) newGrad() grad {
	g := grad{
		h:    make([]float64, n.hidden),
		dh:   make([]float64, n.hidden),
		dout: make([]float64, n.k),
	}
	if n.hidden2 > 0 {
		g.h2 = make([]float64, n.hidden2)
		g.dh2 = make([]float64, n.hidden2)
	}
	return g
}

func (n *network) newScratch() scratch {
	accLen := n.hidden
	if t := n.top(); t > accLen {
		accLen = t
	}
	return scratch{probs: make([]float64, n.k), acc: make([]float64, accLen)}
}

// forward runs the context (byte-encoded window) through the network and
// returns the softmax output distribution. The returned slice is scratch
// owned by the network, valid until the next forward or step call.
func (n *network) forward(context []byte) []float64 {
	n.forwardInto(context, n.g0.h, n.g0.h2, n.s0.probs)
	return n.s0.probs
}

// forwardInto runs the forward pass writing activations and the softmax
// into caller-provided buffers, so gradient workers can run concurrently
// against the shared (read-only) weights.
func (n *network) forwardInto(context []byte, h, h2, probs []float64) {
	hidden := n.hidden
	// First layer: gather one contiguous weight column per window position.
	// Per hidden unit the addition order is bias first, then positions in
	// ascending order — the legacy accumulation order. The explicit
	// equal-length reslices let the compiler drop the bounds checks from
	// the gather loop.
	h = h[:hidden]
	copy(h, n.b1)
	for pos, sym := range context {
		off := (pos*n.k + int(sym)) * hidden
		col := n.w1[off : off+hidden]
		for j, w := range col {
			h[j] += w
		}
	}
	for j, a := range h {
		h[j] = math.Tanh(a)
	}
	topAct := h
	if n.hidden2 > 0 {
		for m := 0; m < n.hidden2; m++ {
			a := n.bm[m]
			row := n.wm[m*hidden : m*hidden+hidden]
			for j, w := range row {
				a += w * h[j]
			}
			h2[m] = math.Tanh(a)
		}
		topAct = h2
	}
	topN := len(topAct)
	maxLogit := math.Inf(-1)
	for o := 0; o < n.k; o++ {
		a := n.b2[o]
		row := n.w2[o*topN:][:topN]
		for t, w := range row {
			a += w * topAct[t]
		}
		probs[o] = a
		if a > maxLogit {
			maxLogit = a
		}
	}
	sum := 0.0
	for o := 0; o < n.k; o++ {
		probs[o] = math.Exp(probs[o] - maxLogit)
		sum += probs[o]
	}
	for o := 0; o < n.k; o++ {
		probs[o] /= sum
	}
}

// backprop computes one example's weighted loss and gradient signals at the
// current weights, writing into g. It does not touch the weights, so any
// number of backprop calls with distinct g and s may run concurrently.
func (n *network) backprop(context []byte, target int, weight float64, g *grad, s *scratch) {
	n.forwardInto(context, g.h, g.h2, s.probs)
	g.loss = weight * crossEntropy(s.probs[target])

	// Softmax + cross-entropy gradient at the output. Like the velocity
	// flush, gradient signals are flushed to zero below velFloor: on a
	// converged example the non-target softmax tails underflow toward the
	// subnormal range and would otherwise drag every downstream multiply
	// through microcode assists. A ≤1e-300 gradient moves no weight (its
	// largest possible update is far below any weight's ulp).
	for o := 0; o < n.k; o++ {
		d := s.probs[o]
		if d < velFloor {
			d = 0
		}
		g.dout[o] = d
	}
	g.dout[target] -= 1

	topAct, topDelta := g.h, g.dh
	if n.hidden2 > 0 {
		topAct, topDelta = g.h2, g.dh2
	}

	// Top hidden deltas through the tanh derivative. The legacy code walked
	// a w2 column per t; accumulating o-outer into a zeroed buffer performs
	// the same per-t addition sequence (o ascending) over contiguous rows.
	topN := len(topAct)
	acc := s.acc[:topN]
	for t := range acc {
		acc[t] = 0
	}
	for o := 0; o < n.k; o++ {
		d := g.dout[o]
		row := n.w2[o*topN:][:topN]
		for t, w := range row {
			acc[t] += w * d
		}
	}
	for t, a := range acc {
		d := a * (1 - topAct[t]*topAct[t])
		if math.Abs(d) < velFloor {
			d = 0
		}
		topDelta[t] = d
	}
	// With a middle layer, propagate further down to the first hidden.
	if n.hidden2 > 0 {
		hidden := n.hidden
		acc := s.acc[:hidden]
		for j := range acc {
			acc[j] = 0
		}
		for m := 0; m < n.hidden2; m++ {
			d := g.dh2[m]
			row := n.wm[m*hidden:][:hidden]
			for j, w := range row {
				acc[j] += w * d
			}
		}
		for j, a := range acc {
			d := a * (1 - g.h[j]*g.h[j])
			if math.Abs(d) < velFloor {
				d = 0
			}
			g.dh[j] = d
		}
	}
}

// apply performs the SGD-with-momentum weight update for one example's
// gradient, with step = learning rate × example weight. Updates mutate the
// weights and must run serially, in fixed example order for determinism.
func (n *network) apply(context []byte, g *grad, step, momentum float64) {
	topAct := g.h
	if n.hidden2 > 0 {
		topAct = g.h2
	}
	topN := len(topAct)

	// Output-layer update against the top activations.
	for o := 0; o < n.k; o++ {
		sg := step * g.dout[o]
		row := n.w2[o*topN:][:topN]
		vel := n.v2[o*topN:][:topN]
		for t, a := range topAct {
			v := momentum*vel[t] - sg*a
			if math.Abs(v) < velFloor {
				v = 0
			}
			vel[t] = v
			row[t] += v
		}
		v := momentum*n.vb2[o] - sg
		if math.Abs(v) < velFloor {
			v = 0
		}
		n.vb2[o] = v
		n.b2[o] += v
	}

	// Middle-layer update.
	if n.hidden2 > 0 {
		hidden := n.hidden
		for m := 0; m < n.hidden2; m++ {
			sg := step * g.dh2[m]
			row := n.wm[m*hidden:][:hidden]
			vel := n.vm[m*hidden:][:hidden]
			for j, a := range g.h {
				v := momentum*vel[j] - sg*a
				if math.Abs(v) < velFloor {
					v = 0
				}
				vel[j] = v
				row[j] += v
			}
			v := momentum*n.vbm[m] - sg
			if math.Abs(v) < velFloor {
				v = 0
			}
			n.vbm[m] = v
			n.bm[m] += v
		}
	}

	// First-layer update: only the DW active inputs have nonzero gradient,
	// and each is a contiguous column. Every (input, hidden) weight is
	// touched exactly once (window positions map to distinct one-hot
	// inputs), so the pos-outer walk updates the same weights with the same
	// arithmetic as the legacy j-outer walk.
	hidden := n.hidden
	sg := n.sg[:hidden]
	for j, d := range g.dh[:hidden] {
		sg[j] = step * d
	}
	for pos, sym := range context {
		off := (pos*n.k + int(sym)) * hidden
		wcol := n.w1[off:][:hidden]
		vcol := n.v1[off:][:hidden]
		for j, s := range sg {
			v := momentum*vcol[j] - s
			if math.Abs(v) < velFloor {
				v = 0
			}
			vcol[j] = v
			wcol[j] += v
		}
	}
	for j, s := range sg {
		v := momentum*n.vb1[j] - s
		if math.Abs(v) < velFloor {
			v = 0
		}
		n.vb1[j] = v
		n.b1[j] += v
	}
}

// step performs one weighted SGD-with-momentum update on the cross-entropy
// loss for a single (context, target) example and returns the example's
// weighted loss before the update.
func (n *network) step(context []byte, target int, weight, lr, momentum float64) float64 {
	n.backprop(context, target, weight, &n.g0, &n.s0)
	n.apply(context, &n.g0, lr*weight, momentum)
	return n.g0.loss
}

// exampleSet is the flat training-example storage fit prepares: contexts
// are concatenated into one byte buffer, parallel arrays hold the target
// symbol and SGD weight per example.
type exampleSet struct {
	window  int
	ctx     []byte // len = count*window
	targets []uint8
	weights []float64
}

func (e *exampleSet) count() int { return len(e.targets) }

func (e *exampleSet) context(i int) []byte {
	return e.ctx[i*e.window : (i+1)*e.window]
}

// trainSGD runs the epoch loop over the prepared example set.
//
// With BatchSize ≤ 1 this is exact per-example SGD in seeded shuffle order —
// the reference semantics, bit-identical to the legacy implementation. With
// BatchSize > 1 each batch's per-example gradients are computed at the
// batch-start weights (fanned across Workers goroutines) and applied with
// momentum in fixed index order, so the trained weights are a pure function
// of (data, config) and bit-identical for every worker count.
func (n *network) trainSGD(ex *exampleSet, cfg Config) {
	lr, momentum := cfg.LearningRate, cfg.Momentum
	src := rng.New(cfg.Seed ^ 0xA5A5A5A5A5A5A5A5)
	order := make([]int, ex.count())
	for i := range order {
		order[i] = i
	}

	batch := cfg.BatchSize
	if batch < 1 {
		batch = 1
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > batch {
		workers = batch
	}
	var slots []grad
	var scratches []scratch
	if batch > 1 {
		slots = make([]grad, batch)
		for i := range slots {
			slots[i] = n.newGrad()
		}
		scratches = make([]scratch, workers)
		for i := range scratches {
			scratches[i] = n.newScratch()
		}
	}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		src.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		epochLoss := 0.0
		if batch == 1 {
			for _, idx := range order {
				epochLoss += n.step(ex.context(idx), int(ex.targets[idx]), ex.weights[idx], lr, momentum)
			}
		} else {
			for start := 0; start < len(order); start += batch {
				end := start + batch
				if end > len(order) {
					end = len(order)
				}
				chunk := order[start:end]
				n.gradients(ex, chunk, slots, scratches, workers)
				for i, idx := range chunk {
					n.apply(ex.context(idx), &slots[i], lr*ex.weights[idx], momentum)
					epochLoss += slots[i].loss
				}
			}
		}
		if cfg.TargetLoss > 0 && epochLoss/float64(len(order)) < cfg.TargetLoss {
			break
		}
	}
}

// gradients computes the chunk's per-example gradients at the current
// weights. Slot i always receives example chunk[i] regardless of the worker
// count, which is what makes the subsequent fixed-order apply loop
// worker-count-independent.
func (n *network) gradients(ex *exampleSet, chunk []int, slots []grad, scratches []scratch, workers int) {
	if workers <= 1 || len(chunk) == 1 {
		s := &scratches[0]
		for i, idx := range chunk {
			n.backprop(ex.context(idx), int(ex.targets[idx]), ex.weights[idx], &slots[i], s)
		}
		return
	}
	if workers > len(chunk) {
		workers = len(chunk)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := &scratches[w]
			for i := w; i < len(chunk); i += workers {
				idx := chunk[i]
				n.backprop(ex.context(idx), int(ex.targets[idx]), ex.weights[idx], &slots[i], s)
			}
		}(w)
	}
	wg.Wait()
}

// crossEntropy returns -log(p) with a floor that keeps the loss finite
// when the softmax underflows.
func crossEntropy(p float64) float64 {
	const floor = 1e-300
	if p < floor {
		p = floor
	}
	return -math.Log(p)
}
