package nnet

import (
	"errors"
	"math"
	"testing"

	"adiv/internal/alphabet"
	"adiv/internal/detector"
	"adiv/internal/seq"
)

func mk(vals ...int) seq.Stream {
	s := make(seq.Stream, len(vals))
	for i, v := range vals {
		s[i] = alphabet.Symbol(v)
	}
	return s
}

// quickCfg is a small configuration that trains in milliseconds.
func quickCfg() Config {
	cfg := DefaultConfig()
	cfg.Hidden = 12
	cfg.Epochs = 150
	return cfg
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero hidden", func(c *Config) { c.Hidden = 0 }},
		{"zero lr", func(c *Config) { c.LearningRate = 0 }},
		{"NaN lr", func(c *Config) { c.LearningRate = math.NaN() }},
		{"negative momentum", func(c *Config) { c.Momentum = -0.1 }},
		{"momentum one", func(c *Config) { c.Momentum = 1 }},
		{"zero epochs", func(c *Config) { c.Epochs = 0 }},
		{"alphabet too large", func(c *Config) { c.AlphabetSize = 1000 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Errorf("Validate accepted invalid config")
			}
			if _, err := New(2, cfg); err == nil {
				t.Errorf("New accepted invalid config")
			}
		})
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("DefaultConfig invalid: %v", err)
	}
}

func TestNewValidatesWindow(t *testing.T) {
	if _, err := New(0, DefaultConfig()); err == nil {
		t.Errorf("New(0) succeeded")
	}
	d, err := New(3, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if d.Window() != 3 || d.Extent() != 4 || d.Name() != "nn" {
		t.Errorf("metadata: %s window %d extent %d", d.Name(), d.Window(), d.Extent())
	}
}

func TestScoreBeforeTrain(t *testing.T) {
	d, err := New(2, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Score(mk(0, 1, 2)); !errors.Is(err, detector.ErrNotTrained) {
		t.Errorf("Score before Train: %v", err)
	}
}

func TestTrainDegenerateData(t *testing.T) {
	d, err := New(2, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Train(mk(0, 0, 0, 0)); err == nil {
		t.Errorf("Train on single-symbol alphabet succeeded")
	}
	if err := d.Train(mk(0, 1)); err == nil {
		t.Errorf("Train on stream with no (DW+1)-gram succeeded")
	}
}

// cyclic returns n repetitions of 0 1 2 3.
func cyclic(n int) seq.Stream {
	var s seq.Stream
	for i := 0; i < n; i++ {
		s = append(s, 0, 1, 2, 3)
	}
	return s
}

func TestLearnsDeterministicTransitions(t *testing.T) {
	d, err := New(2, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Train(cyclic(50)); err != nil {
		t.Fatal(err)
	}
	// P(2 | 0 1) should be close to 1; P(3 | 0 1) close to 0.
	pGood, err := d.Prob(mk(0, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if pGood < 0.95 {
		t.Errorf("P(2|0 1) = %v, want > 0.95", pGood)
	}
	pBad, err := d.Prob(mk(0, 1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if pBad > 0.02 {
		t.Errorf("P(3|0 1) = %v, want < 0.02", pBad)
	}
}

func TestScoreSeparatesNormalFromForeign(t *testing.T) {
	d, err := New(2, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Train(cyclic(50)); err != nil {
		t.Fatal(err)
	}
	// Test stream 0 1 2 0: grams (0 1 2) normal, (1 2 0)? training has
	// (1 2 3) only → (1 2 0) is a never-seen continuation.
	responses, err := d.Score(mk(0, 1, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(responses) != 2 {
		t.Fatalf("%d responses, want 2", len(responses))
	}
	if responses[0] > 0.05 {
		t.Errorf("normal gram response %v, want ≈0", responses[0])
	}
	if responses[1] < 0.95 {
		t.Errorf("foreign-continuation response %v, want ≈1", responses[1])
	}
}

func TestDeterministicTraining(t *testing.T) {
	train := cyclic(30)
	test := mk(0, 1, 2, 3, 0, 1)
	var first []float64
	for run := 0; run < 2; run++ {
		d, err := New(2, quickCfg())
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Train(train); err != nil {
			t.Fatal(err)
		}
		responses, err := d.Score(test)
		if err != nil {
			t.Fatal(err)
		}
		if run == 0 {
			first = responses
			continue
		}
		for i := range responses {
			if responses[i] != first[i] {
				t.Fatalf("training not deterministic: run 2 response[%d] %v vs %v", i, responses[i], first[i])
			}
		}
	}
}

func TestSeedChangesWeights(t *testing.T) {
	train := cyclic(30)
	cfgA, cfgB := quickCfg(), quickCfg()
	cfgB.Seed = cfgA.Seed + 1
	// Undertrain so initialization differences remain visible.
	cfgA.Epochs, cfgB.Epochs = 3, 3
	da, err := New(2, cfgA)
	if err != nil {
		t.Fatal(err)
	}
	db, err := New(2, cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if err := da.Train(train); err != nil {
		t.Fatal(err)
	}
	if err := db.Train(train); err != nil {
		t.Fatal(err)
	}
	pa, err := da.Prob(mk(0, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	pb, err := db.Prob(mk(0, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if pa == pb {
		t.Errorf("different seeds produced identical undertrained probabilities")
	}
}

func TestResponsesInUnitInterval(t *testing.T) {
	d, err := New(2, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Train(cyclic(30)); err != nil {
		t.Fatal(err)
	}
	responses, err := d.Score(mk(3, 3, 3, 0, 1, 2, 2, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i, r := range responses {
		if r < 0 || r > 1 {
			t.Errorf("response[%d] = %v outside [0,1]", i, r)
		}
		sum += r
	}
	if math.IsNaN(sum) {
		t.Errorf("responses contain NaN")
	}
}

func TestProbDistributionSumsToOne(t *testing.T) {
	d, err := New(2, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Train(cyclic(30)); err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for next := 0; next < 4; next++ {
		p, err := d.Prob(mk(0, 1, next))
		if err != nil {
			t.Fatal(err)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("softmax distribution sums to %v", sum)
	}
}

func TestProbErrors(t *testing.T) {
	d, err := New(2, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Prob(mk(0, 1, 2)); !errors.Is(err, detector.ErrNotTrained) {
		t.Errorf("Prob before Train: %v", err)
	}
	if err := d.Train(cyclic(20)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Prob(mk(0, 1)); err == nil {
		t.Errorf("Prob of wrong-length gram succeeded")
	}
}

func TestExplicitAlphabetSize(t *testing.T) {
	cfg := quickCfg()
	cfg.AlphabetSize = 6
	d, err := New(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Train(cyclic(30)); err != nil {
		t.Fatal(err)
	}
	// Symbols 4 and 5 are in the declared alphabet but never trained on;
	// their probability must be defined (and small).
	p, err := d.Prob(mk(0, 1, 5))
	if err != nil {
		t.Fatal(err)
	}
	if p < 0 || p > 0.5 {
		t.Errorf("P(5|0 1) = %v", p)
	}
}

func TestStreamTooShort(t *testing.T) {
	d, err := New(3, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Train(cyclic(20)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Score(mk(0, 1, 2)); !errors.Is(err, detector.ErrStreamTooShort) {
		t.Errorf("short stream: %v", err)
	}
}

func TestTwoHiddenLayers(t *testing.T) {
	cfg := quickCfg()
	cfg.Hidden2 = 8
	cfg.Epochs = 250
	d, err := New(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Train(cyclic(50)); err != nil {
		t.Fatal(err)
	}
	pGood, err := d.Prob(mk(0, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if pGood < 0.9 {
		t.Errorf("two-layer P(2|0 1) = %v, want > 0.9", pGood)
	}
	pBad, err := d.Prob(mk(0, 1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if pBad > 0.05 {
		t.Errorf("two-layer P(3|0 1) = %v, want < 0.05", pBad)
	}
	// Distribution still sums to one.
	sum := 0.0
	for next := 0; next < 4; next++ {
		p, err := d.Prob(mk(0, 1, next))
		if err != nil {
			t.Fatal(err)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("two-layer softmax sums to %v", sum)
	}
}

func TestHidden2Validation(t *testing.T) {
	cfg := quickCfg()
	cfg.Hidden2 = -1
	if err := cfg.Validate(); err == nil {
		t.Errorf("negative Hidden2 accepted")
	}
}

func TestTargetLossStopsEarly(t *testing.T) {
	// With a loose target the trained probabilities stay farther from the
	// extremes than fully trained ones: indirect evidence the loop exited
	// early, without exposing epoch counters.
	full := quickCfg()
	early := quickCfg()
	early.TargetLoss = 0.5
	train := cyclic(50)

	df, err := New(2, full)
	if err != nil {
		t.Fatal(err)
	}
	de, err := New(2, early)
	if err != nil {
		t.Fatal(err)
	}
	if err := df.Train(train); err != nil {
		t.Fatal(err)
	}
	if err := de.Train(train); err != nil {
		t.Fatal(err)
	}
	pf, err := df.Prob(mk(0, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	pe, err := de.Prob(mk(0, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if pe >= pf {
		t.Errorf("early-stopped P=%v not below fully trained P=%v", pe, pf)
	}
	// Still a usable model: the dominant continuation wins.
	if pe < 0.4 {
		t.Errorf("early-stopped P=%v implausibly low", pe)
	}
}

func TestTargetLossValidation(t *testing.T) {
	cfg := quickCfg()
	cfg.TargetLoss = -1
	if err := cfg.Validate(); err == nil {
		t.Errorf("negative target loss accepted")
	}
}

// TestUndertrainedNetworkIsWeak reproduces the paper's tuning-sensitivity
// caveat in miniature: with almost no training the anomaly signal for a
// foreign continuation stays far from maximal.
func TestUndertrainedNetworkIsWeak(t *testing.T) {
	cfg := quickCfg()
	cfg.Epochs = 1
	d, err := New(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Train(cyclic(50)); err != nil {
		t.Fatal(err)
	}
	p, err := d.Prob(mk(0, 1, 3)) // foreign continuation
	if err != nil {
		t.Fatal(err)
	}
	if 1-p > 0.999 {
		t.Errorf("undertrained network already maximal: response %v", 1-p)
	}
}
