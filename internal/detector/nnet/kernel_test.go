package nnet

import (
	"math"
	"testing"

	"adiv/internal/alphabet"
	"adiv/internal/seq"
)

// kernelTestStream synthesizes a deterministic training stream with enough
// structure that the network actually converges (repeated motifs) and
// enough variety that every layer's gradients stay busy for a while.
func kernelTestStream(n int) seq.Stream {
	s := make(seq.Stream, n)
	state := uint64(42)
	for i := range s {
		state = state*6364136223846793005 + 1442695040888963407
		switch {
		case i%7 < 4:
			s[i] = alphabet.Symbol(i % 5)
		default:
			s[i] = alphabet.Symbol((state >> 58) % 8)
		}
	}
	return s
}

// flatW1 converts the reference network's row-major first layer to the
// kernel's column-major flat layout for bitwise comparison.
func flatW1(ref [][]float64, hidden, inputs int) []float64 {
	out := make([]float64, inputs*hidden)
	for j := 0; j < hidden; j++ {
		for i := 0; i < inputs; i++ {
			out[i*hidden+j] = ref[j][i]
		}
	}
	return out
}

// flatRows concatenates a row-major [][]float64 into the kernel's flat form.
func flatRows(ref [][]float64) []float64 {
	var out []float64
	for _, row := range ref {
		out = append(out, row...)
	}
	return out
}

func bitsEqual(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", label, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s[%d] = %x (%v), want %x (%v)",
				label, i, math.Float64bits(got[i]), got[i],
				math.Float64bits(want[i]), want[i])
		}
	}
}

// TestKernelMatchesReference pins the kernel's determinism contract: the
// flat column-major implementation (including the subnormal velocity flush)
// trains to weights bit-for-bit identical to the retained legacy
// implementation, across layer depths, early stopping, and momentum
// settings.
func TestKernelMatchesReference(t *testing.T) {
	train := kernelTestStream(4000)
	const window = 6

	configs := map[string]Config{
		"one-layer": {
			Hidden: 10, LearningRate: 0.25, Momentum: 0.7, Epochs: 60, Seed: 7,
		},
		"two-layer": {
			Hidden: 8, Hidden2: 6, LearningRate: 0.2, Momentum: 0.6, Epochs: 40, Seed: 11,
		},
		"early-stop": {
			Hidden: 10, LearningRate: 0.25, Momentum: 0.7, Epochs: 200,
			TargetLoss: 0.5, Seed: 7,
		},
		"no-momentum": {
			Hidden: 6, LearningRate: 0.3, Momentum: 0, Epochs: 30, Seed: 3,
		},
	}

	grams, err := seq.Build(train, window+1)
	if err != nil {
		t.Fatal(err)
	}
	k := 8

	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			d, err := New(window, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Train(train); err != nil {
				t.Fatal(err)
			}
			ref := refFit(grams, window, k, cfg)

			net := d.net
			bitsEqual(t, "w1", net.w1, flatW1(ref.w1, cfg.Hidden, window*k))
			bitsEqual(t, "b1", net.b1, ref.b1)
			if cfg.Hidden2 > 0 {
				bitsEqual(t, "wm", net.wm, flatRows(ref.wm))
				bitsEqual(t, "bm", net.bm, ref.bm)
			}
			bitsEqual(t, "w2", net.w2, flatRows(ref.w2))
			bitsEqual(t, "b2", net.b2, ref.b2)

			// The scoring path must agree bitwise as well.
			test := kernelTestStream(500)
			got, err := d.Score(test)
			if err != nil {
				t.Fatal(err)
			}
			b := test.Bytes()
			for i, r := range got {
				probs := ref.forward(b[i : i+window])
				want := 1 - probs[int(b[i+window])]
				if math.Float64bits(r) != math.Float64bits(want) {
					t.Fatalf("score[%d] = %v, want %v", i, r, want)
				}
			}
		})
	}
}

// TestParallelTrainingDeterminism pins the worker-count independence of
// batched training: for BatchSize > 1, gradients are computed by a worker
// pool but reduced in fixed index order, so the trained weights must be
// bit-identical for every worker count.
func TestParallelTrainingDeterminism(t *testing.T) {
	train := kernelTestStream(4000)
	const window = 6
	base := Config{
		Hidden: 10, Hidden2: 5, LearningRate: 0.2, Momentum: 0.7,
		Epochs: 30, Seed: 7, BatchSize: 8,
	}

	trainNet := func(workers int) *network {
		cfg := base
		cfg.Workers = workers
		d, err := New(window, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Train(train); err != nil {
			t.Fatal(err)
		}
		return d.net
	}

	want := trainNet(1)
	for _, workers := range []int{2, 4, 32} {
		got := trainNet(workers)
		bitsEqual(t, "w1", got.w1, want.w1)
		bitsEqual(t, "b1", got.b1, want.b1)
		bitsEqual(t, "wm", got.wm, want.wm)
		bitsEqual(t, "bm", got.bm, want.bm)
		bitsEqual(t, "w2", got.w2, want.w2)
		bitsEqual(t, "b2", got.b2, want.b2)
	}
}

// TestBatchConfigValidation covers the new Config fields.
func TestBatchConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatchSize = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative BatchSize validated")
	}
	cfg = DefaultConfig()
	cfg.Workers = -2
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative Workers validated")
	}
	cfg = DefaultConfig()
	cfg.BatchSize = 16
	cfg.Workers = 4
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid batch config rejected: %v", err)
	}
}

// TestBatchedTrainingScores sanity-checks that batched training still
// learns: on a fully predictable cyclic stream the detector must score the
// learned transitions near 0 and a never-observed target symbol near 1.
func TestBatchedTrainingScores(t *testing.T) {
	train := make(seq.Stream, 2000)
	for i := range train {
		train[i] = alphabet.Symbol(i % 5)
	}
	const window = 6
	cfg := Config{
		Hidden: 12, LearningRate: 0.25, Momentum: 0.7, Epochs: 120,
		Seed: 7, AlphabetSize: 8, BatchSize: 4, Workers: 4,
	}
	d, err := New(window, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Train(train); err != nil {
		t.Fatal(err)
	}
	normal, err := d.Score(train[:100])
	if err != nil {
		t.Fatal(err)
	}
	// Symbol 6 never occurs in training, so its predicted probability must
	// have been driven toward zero for every context.
	foreign := make(seq.Stream, 40)
	for i := range foreign {
		foreign[i] = 6
	}
	anomalous, err := d.Score(foreign)
	if err != nil {
		t.Fatal(err)
	}
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if m := mean(normal); m > 0.2 {
		t.Fatalf("batched training did not learn the cycle: normal mean response %v", m)
	}
	if m := mean(anomalous); m < 0.8 {
		t.Fatalf("batched training did not reject the foreign symbol: anomalous mean response %v", m)
	}
}
