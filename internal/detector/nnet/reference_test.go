package nnet

// This file retains the pre-kernel network implementation verbatim (dense
// row-major [][]float64 storage, per-example forward/step) as a test-only
// reference. The equivalence test in kernel_test.go trains both
// implementations on the same data and asserts the weights are bit-for-bit
// identical, which is the repo's determinism contract for the flat
// column-major kernel: same seeded PCG consumption, same floating-point
// operation order, same trained network.

import (
	"math"
	"sort"

	"adiv/internal/rng"
	"adiv/internal/seq"
)

type refNetwork struct {
	window  int
	k       int
	hidden  int
	hidden2 int

	w1, v1  [][]float64
	b1, vb1 []float64
	wm, vm  [][]float64
	bm, vbm []float64
	w2, v2  [][]float64
	b2, vb2 []float64

	h, dh, h2, dh2, probs, dout []float64
}

func (n *refNetwork) top() int {
	if n.hidden2 > 0 {
		return n.hidden2
	}
	return n.hidden
}

func newRefNetwork(window, k, hidden, hidden2 int, src *rng.Source) *refNetwork {
	n := &refNetwork{window: window, k: k, hidden: hidden, hidden2: hidden2}
	inputs := window * k
	inScale := 1 / math.Sqrt(float64(window))
	n.w1 = refRandomMatrix(src, hidden, inputs, inScale)
	n.v1 = refZeroMatrix(hidden, inputs)
	n.b1 = make([]float64, hidden)
	n.vb1 = make([]float64, hidden)
	if hidden2 > 0 {
		mScale := 1 / math.Sqrt(float64(hidden))
		n.wm = refRandomMatrix(src, hidden2, hidden, mScale)
		n.vm = refZeroMatrix(hidden2, hidden)
		n.bm = make([]float64, hidden2)
		n.vbm = make([]float64, hidden2)
		n.h2 = make([]float64, hidden2)
		n.dh2 = make([]float64, hidden2)
	}
	top := n.top()
	tScale := 1 / math.Sqrt(float64(top))
	n.w2 = refRandomMatrix(src, k, top, tScale)
	n.v2 = refZeroMatrix(k, top)
	n.b2 = make([]float64, k)
	n.vb2 = make([]float64, k)
	n.h = make([]float64, hidden)
	n.dh = make([]float64, hidden)
	n.probs = make([]float64, k)
	n.dout = make([]float64, k)
	return n
}

func refRandomMatrix(src *rng.Source, rows, cols int, scale float64) [][]float64 {
	m := make([][]float64, rows)
	for i := range m {
		m[i] = make([]float64, cols)
		for j := range m[i] {
			m[i][j] = (src.Float64()*2 - 1) * scale
		}
	}
	return m
}

func refZeroMatrix(rows, cols int) [][]float64 {
	m := make([][]float64, rows)
	for i := range m {
		m[i] = make([]float64, cols)
	}
	return m
}

func (n *refNetwork) forward(context []byte) []float64 {
	for j := 0; j < n.hidden; j++ {
		a := n.b1[j]
		row := n.w1[j]
		for pos, sym := range context {
			a += row[pos*n.k+int(sym)]
		}
		n.h[j] = math.Tanh(a)
	}
	topAct := n.h
	if n.hidden2 > 0 {
		for m := 0; m < n.hidden2; m++ {
			a := n.bm[m]
			row := n.wm[m]
			for j := 0; j < n.hidden; j++ {
				a += row[j] * n.h[j]
			}
			n.h2[m] = math.Tanh(a)
		}
		topAct = n.h2
	}
	maxLogit := math.Inf(-1)
	for o := 0; o < n.k; o++ {
		a := n.b2[o]
		row := n.w2[o]
		for t := range topAct {
			a += row[t] * topAct[t]
		}
		n.probs[o] = a
		if a > maxLogit {
			maxLogit = a
		}
	}
	sum := 0.0
	for o := 0; o < n.k; o++ {
		n.probs[o] = math.Exp(n.probs[o] - maxLogit)
		sum += n.probs[o]
	}
	for o := 0; o < n.k; o++ {
		n.probs[o] /= sum
	}
	return n.probs
}

func (n *refNetwork) step(context []byte, target int, weight, lr, momentum float64) float64 {
	probs := n.forward(context)
	loss := weight * crossEntropy(probs[target])

	for o := 0; o < n.k; o++ {
		n.dout[o] = probs[o]
	}
	n.dout[target] -= 1

	topAct, topDelta := n.h, n.dh
	if n.hidden2 > 0 {
		topAct, topDelta = n.h2, n.dh2
	}

	for t := range topAct {
		s := 0.0
		for o := 0; o < n.k; o++ {
			s += n.w2[o][t] * n.dout[o]
		}
		topDelta[t] = s * (1 - topAct[t]*topAct[t])
	}
	if n.hidden2 > 0 {
		for j := 0; j < n.hidden; j++ {
			s := 0.0
			for m := 0; m < n.hidden2; m++ {
				s += n.wm[m][j] * n.dh2[m]
			}
			n.dh[j] = s * (1 - n.h[j]*n.h[j])
		}
	}

	step := lr * weight

	for o := 0; o < n.k; o++ {
		g := n.dout[o]
		row, vel := n.w2[o], n.v2[o]
		for t := range topAct {
			vel[t] = momentum*vel[t] - step*g*topAct[t]
			row[t] += vel[t]
		}
		n.vb2[o] = momentum*n.vb2[o] - step*g
		n.b2[o] += n.vb2[o]
	}

	if n.hidden2 > 0 {
		for m := 0; m < n.hidden2; m++ {
			g := n.dh2[m]
			row, vel := n.wm[m], n.vm[m]
			for j := 0; j < n.hidden; j++ {
				vel[j] = momentum*vel[j] - step*g*n.h[j]
				row[j] += vel[j]
			}
			n.vbm[m] = momentum*n.vbm[m] - step*g
			n.bm[m] += n.vbm[m]
		}
	}

	for j := 0; j < n.hidden; j++ {
		g := n.dh[j]
		row, vel := n.w1[j], n.v1[j]
		for pos, sym := range context {
			i := pos*n.k + int(sym)
			vel[i] = momentum*vel[i] - step*g
			row[i] += vel[i]
		}
		n.vb1[j] = momentum*n.vb1[j] - step*g
		n.b1[j] += n.vb1[j]
	}
	return loss
}

type refExample struct {
	context []byte
	next    int
	weight  float64
}

// refFit replicates the pre-kernel fit loop: weighted examples from the
// distinct grams, sorted deterministically, weights normalized to mean 1,
// per-example SGD in seeded shuffle order.
func refFit(grams *seq.DB, window, k int, cfg Config) *refNetwork {
	examples := make([]refExample, 0, grams.Distinct())
	grams.Each(func(w seq.Stream, count int) {
		b := w.Bytes()
		examples = append(examples, refExample{
			context: b[:window],
			next:    int(b[window]),
			weight:  float64(count),
		})
	})
	sort.Slice(examples, func(i, j int) bool {
		ci, cj := examples[i].context, examples[j].context
		if c := refCompareBytes(ci, cj); c != 0 {
			return c < 0
		}
		return examples[i].next < examples[j].next
	})
	totalW := 0.0
	for _, e := range examples {
		totalW += e.weight
	}
	scale := float64(len(examples)) / totalW
	for i := range examples {
		examples[i].weight *= scale
	}

	net := newRefNetwork(window, k, cfg.Hidden, cfg.Hidden2, rng.New(cfg.Seed))
	src := rng.New(cfg.Seed ^ 0xA5A5A5A5A5A5A5A5)
	order := make([]int, len(examples))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		src.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		epochLoss := 0.0
		for _, idx := range order {
			e := examples[idx]
			epochLoss += net.step(e.context, e.next, e.weight, cfg.LearningRate, cfg.Momentum)
		}
		if cfg.TargetLoss > 0 && epochLoss/float64(len(order)) < cfg.TargetLoss {
			break
		}
	}
	return net
}

func refCompareBytes(a, b []byte) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return len(a) - len(b)
}
