package hmm

import (
	"errors"
	"math"
	"testing"

	"adiv/internal/alphabet"
	"adiv/internal/detector"
	"adiv/internal/seq"
)

func mk(vals ...int) seq.Stream {
	s := make(seq.Stream, len(vals))
	for i, v := range vals {
		s[i] = alphabet.Symbol(v)
	}
	return s
}

func cyclic(n int) seq.Stream {
	var s seq.Stream
	for i := 0; i < n; i++ {
		s = append(s, 0, 1, 2, 3)
	}
	return s
}

func quickCfg() Config {
	cfg := DefaultConfig()
	cfg.States = 4
	cfg.Iterations = 25
	cfg.MaxTrainSymbols = 2_000
	return cfg
}

func TestConfigValidation(t *testing.T) {
	tests := []func(*Config){
		func(c *Config) { c.States = 0 },
		func(c *Config) { c.Iterations = 0 },
		func(c *Config) { c.MaxTrainSymbols = -1 },
		func(c *Config) { c.AlphabetSize = 1000 },
		func(c *Config) { c.Smoothing = -1 },
	}
	for i, mutate := range tests {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("New accepted mutation %d", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("DefaultConfig invalid: %v", err)
	}
}

func TestMetadata(t *testing.T) {
	d, err := New(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "hmm" || d.Window() != 1 || d.Extent() != 1 {
		t.Errorf("metadata %s %d %d", d.Name(), d.Window(), d.Extent())
	}
}

func TestScoreBeforeTrain(t *testing.T) {
	d, err := New(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Score(mk(0, 1)); !errors.Is(err, detector.ErrNotTrained) {
		t.Errorf("Score before Train: %v", err)
	}
}

func TestTrainDegenerate(t *testing.T) {
	d, err := New(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Train(mk(0, 0, 0)); err == nil {
		t.Errorf("single-symbol alphabet accepted")
	}
	if err := d.Train(mk(0)); err == nil {
		t.Errorf("length-1 stream accepted")
	}
}

func TestLearnsCycle(t *testing.T) {
	d, err := New(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Train(cyclic(400)); err != nil {
		t.Fatal(err)
	}
	// On continued cycle data the predictive probabilities settle near 1.
	probs, err := d.PredictiveProb(cyclic(20))
	if err != nil {
		t.Fatal(err)
	}
	settled := probs[8:] // allow burn-in while the belief localizes
	for i, p := range settled {
		if p < 0.8 {
			t.Errorf("predictive prob[%d] = %v on in-distribution data", i+8, p)
		}
	}
}

func TestRespondsToForeignSymbolOrder(t *testing.T) {
	d, err := New(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Train(cyclic(400)); err != nil {
		t.Fatal(err)
	}
	// Burn in on the cycle, then break the order: ... 0 1 2 3 0 0.
	test := append(cyclic(5), 0, 0)
	responses, err := d.Score(test)
	if err != nil {
		t.Fatal(err)
	}
	anomalyResp := responses[len(responses)-1]
	normalResp := responses[len(responses)-3] // final in-order symbol
	if anomalyResp < 0.5 {
		t.Errorf("out-of-order symbol response %v, want high", anomalyResp)
	}
	if anomalyResp <= normalResp {
		t.Errorf("anomaly response %v not above normal response %v", anomalyResp, normalResp)
	}
}

func TestUnseenSymbolMaximal(t *testing.T) {
	cfg := quickCfg()
	cfg.AlphabetSize = 6 // leaves symbols 4,5 trained only via smoothing
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Train(cyclic(200)); err != nil {
		t.Fatal(err)
	}
	test := append(cyclic(3), 5)
	responses, err := d.Score(test)
	if err != nil {
		t.Fatal(err)
	}
	if r := responses[len(responses)-1]; r < 0.99 {
		t.Errorf("never-seen symbol response %v, want ≈1", r)
	}
	// A symbol outside even the declared alphabet scores exactly 1.
	test = append(cyclic(3), 7)
	responses, err = d.Score(test)
	if err != nil {
		t.Fatal(err)
	}
	if r := responses[len(responses)-1]; r != 1 {
		t.Errorf("out-of-alphabet symbol response %v, want 1", r)
	}
}

func TestResponsesInUnitInterval(t *testing.T) {
	d, err := New(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Train(cyclic(200)); err != nil {
		t.Fatal(err)
	}
	responses, err := d.Score(mk(3, 3, 0, 1, 2, 3, 2, 1, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range responses {
		if r < 0 || r > 1 || math.IsNaN(r) {
			t.Errorf("response[%d] = %v", i, r)
		}
	}
	if len(responses) != 10 {
		t.Errorf("%d responses, want one per symbol", len(responses))
	}
}

func TestDeterministicTraining(t *testing.T) {
	train := cyclic(300)
	test := mk(0, 1, 2, 3, 0, 1, 0)
	var first []float64
	for run := 0; run < 2; run++ {
		d, err := New(quickCfg())
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Train(train); err != nil {
			t.Fatal(err)
		}
		responses, err := d.Score(test)
		if err != nil {
			t.Fatal(err)
		}
		if run == 0 {
			first = responses
			continue
		}
		for i := range responses {
			if responses[i] != first[i] {
				t.Fatalf("training not deterministic at %d", i)
			}
		}
	}
}

func TestTruncationBoundsTrainingWork(t *testing.T) {
	cfg := quickCfg()
	cfg.MaxTrainSymbols = 500
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A long stream trains fine because EM sees only the prefix.
	if err := d.Train(cyclic(100_000)); err != nil {
		t.Fatal(err)
	}
	probs, err := d.PredictiveProb(cyclic(10))
	if err != nil {
		t.Fatal(err)
	}
	if probs[len(probs)-1] < 0.5 {
		t.Errorf("truncated training failed to learn the cycle: %v", probs)
	}
}
