// Package hmm implements a hidden-Markov-model anomaly detector in the
// style of Warrender, Forrest & Pearlmutter (1999) — the fourth data model
// of the paper's key reference [20], alongside stide, t-stide and the
// frequency/rule methods. The model is a fully-connected HMM over hidden
// states with categorical emissions, trained by Baum-Welch
// (expectation-maximization with scaled forward-backward) on the training
// stream; at test time the detector runs the scaled forward recursion and
// scores each symbol by one minus its one-step predictive probability
// P(o_t | o_1..t-1) — near 0 while the model tracks the process, near 1
// when the observed symbol is (nearly) impossible given every plausible
// hidden state.
//
// Unlike the paper's four window detectors, the HMM consumes single events
// against a recurrent hidden state, so its "window" is effectively
// unbounded; it is provided as an extension point on the same Detector
// interface (Window = Extent = 1).
package hmm

import (
	"fmt"
	"math"

	"adiv/internal/alphabet"
	"adiv/internal/detector"
	"adiv/internal/rng"
	"adiv/internal/seq"
)

// Config holds the HMM's structure and training parameters.
type Config struct {
	// States is the number of hidden states. Warrender et al. sized it
	// near the process's alphabet; that remains a good default.
	States int
	// Iterations bounds the Baum-Welch passes.
	Iterations int
	// MaxTrainSymbols truncates the training stream for EM (Baum-Welch is
	// O(states² · length) per pass; the evaluation's million-element
	// stream is heavily redundant). 0 keeps the whole stream.
	MaxTrainSymbols int
	// AlphabetSize fixes the emission domain; 0 infers it from training.
	AlphabetSize int
	// Seed seeds the parameter initialization.
	Seed uint64
	// Smoothing is the additive constant applied when normalizing
	// re-estimated rows, keeping the model ergodic.
	Smoothing float64
}

// DefaultConfig returns a configuration suited to the evaluation data:
// enough states for the 6-position cycle plus the excursion interiors (8
// states leave a cycle position aliased and the predictive probability
// stuck near 0.5 there; 10 track it cleanly).
func DefaultConfig() Config {
	return Config{
		States:          10,
		Iterations:      30,
		MaxTrainSymbols: 20_000,
		Seed:            13,
		Smoothing:       1e-6,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.States < 1 {
		return fmt.Errorf("hmm: non-positive state count %d", c.States)
	}
	if c.Iterations < 1 {
		return fmt.Errorf("hmm: non-positive iteration count %d", c.Iterations)
	}
	if c.MaxTrainSymbols < 0 {
		return fmt.Errorf("hmm: negative training truncation %d", c.MaxTrainSymbols)
	}
	if c.AlphabetSize < 0 || c.AlphabetSize > alphabet.MaxSize {
		return fmt.Errorf("hmm: alphabet size %d outside [0,%d]", c.AlphabetSize, alphabet.MaxSize)
	}
	if c.Smoothing < 0 {
		return fmt.Errorf("hmm: negative smoothing %v", c.Smoothing)
	}
	return nil
}

// Detector is an HMM anomaly detector. Construct with New.
type Detector struct {
	cfg   Config
	k     int         // alphabet size
	pi    []float64   // initial state distribution
	trans [][]float64 // trans[i][j] = P(state j | state i)
	emit  [][]float64 // emit[i][o] = P(symbol o | state i)
}

var _ detector.Detector = (*Detector)(nil)

// New returns an untrained HMM detector.
func New(cfg Config) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Detector{cfg: cfg}, nil
}

// Name implements detector.Detector.
func (d *Detector) Name() string { return "hmm" }

// Window implements detector.Detector. The HMM carries unbounded context
// in its hidden state; the nominal window is one event.
func (d *Detector) Window() int { return 1 }

// Extent implements detector.Detector: one response per symbol.
func (d *Detector) Extent() int { return 1 }

// Config returns the detector's configuration.
func (d *Detector) Config() Config { return d.cfg }

// Train fits the model to the training stream by Baum-Welch.
func (d *Detector) Train(train seq.Stream) error {
	k := d.cfg.AlphabetSize
	if k == 0 {
		for _, s := range train {
			if int(s)+1 > k {
				k = int(s) + 1
			}
		}
	}
	if k < 2 {
		return fmt.Errorf("hmm: degenerate alphabet of size %d", k)
	}
	obs := train
	if d.cfg.MaxTrainSymbols > 0 && len(obs) > d.cfg.MaxTrainSymbols {
		obs = obs[:d.cfg.MaxTrainSymbols]
	}
	if len(obs) < 2 {
		return fmt.Errorf("hmm: training stream of length %d too short", len(obs))
	}

	n := d.cfg.States
	src := rng.New(d.cfg.Seed)
	pi := randomDistribution(src, n)
	trans := make([][]float64, n)
	emit := make([][]float64, n)
	for i := 0; i < n; i++ {
		trans[i] = randomDistribution(src, n)
		emit[i] = randomDistribution(src, k)
	}

	for iter := 0; iter < d.cfg.Iterations; iter++ {
		baumWelchPass(obs, pi, trans, emit, d.cfg.Smoothing)
	}
	d.k, d.pi, d.trans, d.emit = k, pi, trans, emit
	return nil
}

// randomDistribution draws a random probability vector bounded away from
// zero so that EM starts ergodic.
func randomDistribution(src *rng.Source, n int) []float64 {
	p := make([]float64, n)
	sum := 0.0
	for i := range p {
		p[i] = 0.1 + src.Float64()
		sum += p[i]
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}

// baumWelchPass performs one EM pass with scaled forward-backward,
// updating pi, trans and emit in place.
func baumWelchPass(obs seq.Stream, pi []float64, trans, emit [][]float64, smoothing float64) {
	n := len(pi)
	k := len(emit[0])
	T := len(obs)

	alpha := make([][]float64, T)
	beta := make([][]float64, T)
	scale := make([]float64, T)
	for t := range alpha {
		alpha[t] = make([]float64, n)
		beta[t] = make([]float64, n)
	}

	// Scaled forward.
	for i := 0; i < n; i++ {
		alpha[0][i] = pi[i] * emit[i][obs[0]]
	}
	scale[0] = normalize(alpha[0])
	for t := 1; t < T; t++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for i := 0; i < n; i++ {
				s += alpha[t-1][i] * trans[i][j]
			}
			alpha[t][j] = s * emit[j][obs[t]]
		}
		scale[t] = normalize(alpha[t])
	}

	// Scaled backward (using the forward scales).
	for i := 0; i < n; i++ {
		beta[T-1][i] = 1
	}
	for t := T - 2; t >= 0; t-- {
		for i := 0; i < n; i++ {
			s := 0.0
			for j := 0; j < n; j++ {
				s += trans[i][j] * emit[j][obs[t+1]] * beta[t+1][j]
			}
			beta[t][i] = s / safeScale(scale[t+1])
		}
	}

	// Accumulate expected counts.
	transNum := zeroMatrix(n, n)
	gammaSum := make([]float64, n)   // over t < T-1, for transition rows
	emitNum := zeroMatrix(n, k)      // gamma-weighted emissions
	gammaTotal := make([]float64, n) // over all t, for emission rows
	gamma0 := make([]float64, n)

	for t := 0; t < T; t++ {
		gt := 0.0
		g := make([]float64, n)
		for i := 0; i < n; i++ {
			g[i] = alpha[t][i] * beta[t][i]
			gt += g[i]
		}
		if gt == 0 {
			continue
		}
		for i := 0; i < n; i++ {
			g[i] /= gt
			gammaTotal[i] += g[i]
			emitNum[i][obs[t]] += g[i]
			if t == 0 {
				gamma0[i] = g[i]
			}
			if t < T-1 {
				gammaSum[i] += g[i]
			}
		}
		if t < T-1 {
			den := 0.0
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					den += alpha[t][i] * trans[i][j] * emit[j][obs[t+1]] * beta[t+1][j]
				}
			}
			if den == 0 {
				continue
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					xi := alpha[t][i] * trans[i][j] * emit[j][obs[t+1]] * beta[t+1][j] / den
					transNum[i][j] += xi
				}
			}
		}
	}

	// Re-estimate with additive smoothing.
	copy(pi, gamma0)
	addSmoothAndNormalize(pi, smoothing)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			trans[i][j] = transNum[i][j]
		}
		addSmoothAndNormalize(trans[i], smoothing)
		for o := 0; o < k; o++ {
			emit[i][o] = emitNum[i][o]
		}
		addSmoothAndNormalize(emit[i], smoothing)
	}
}

func zeroMatrix(rows, cols int) [][]float64 {
	m := make([][]float64, rows)
	for i := range m {
		m[i] = make([]float64, cols)
	}
	return m
}

// normalize scales p to sum 1 and returns the pre-normalization sum.
func normalize(p []float64) float64 {
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if sum > 0 {
		for i := range p {
			p[i] /= sum
		}
	}
	return sum
}

func safeScale(s float64) float64 {
	if s <= 0 {
		return 1
	}
	return s
}

func addSmoothAndNormalize(p []float64, smoothing float64) {
	sum := 0.0
	for i := range p {
		p[i] += smoothing
		sum += p[i]
	}
	if sum == 0 {
		for i := range p {
			p[i] = 1 / float64(len(p))
		}
		return
	}
	for i := range p {
		p[i] /= sum
	}
}

// Score implements detector.Detector: responses[t] = 1 - P(test[t] |
// test[0..t-1]) under the trained model, computed by the scaled forward
// recursion. The first response conditions on the initial distribution.
func (d *Detector) Score(test seq.Stream) ([]float64, error) {
	if err := detector.CheckScorable(d.pi != nil, 1, test); err != nil {
		return nil, err
	}
	n := d.cfg.States
	cur := append([]float64(nil), d.pi...)
	next := make([]float64, n)
	out := make([]float64, len(test))
	for t, sym := range test {
		o := int(sym)
		p := 0.0
		if o < d.k {
			if t == 0 {
				for i := 0; i < n; i++ {
					next[i] = cur[i] * d.emit[i][o]
					p += next[i]
				}
			} else {
				for j := 0; j < n; j++ {
					s := 0.0
					for i := 0; i < n; i++ {
						s += cur[i] * d.trans[i][j]
					}
					next[j] = s * d.emit[j][o]
					p += next[j]
				}
			}
		}
		out[t] = 1 - math.Min(1, p)
		if p > 0 {
			for i := 0; i < n; i++ {
				next[i] /= p
			}
			cur, next = next, cur
		} else {
			// An impossible symbol: reset belief to the stationary-ish
			// initial distribution and keep scoring.
			copy(cur, d.pi)
		}
	}
	return out, nil
}

// PredictiveProb returns the model's one-step predictive probabilities for
// the stream (1 - Score), mainly for tests and analysis.
func (d *Detector) PredictiveProb(test seq.Stream) ([]float64, error) {
	responses, err := d.Score(test)
	if err != nil {
		return nil, err
	}
	for i, r := range responses {
		responses[i] = 1 - r
	}
	return responses, nil
}
