// Package hmm implements a hidden-Markov-model anomaly detector in the
// style of Warrender, Forrest & Pearlmutter (1999) — the fourth data model
// of the paper's key reference [20], alongside stide, t-stide and the
// frequency/rule methods. The model is a fully-connected HMM over hidden
// states with categorical emissions, trained by Baum-Welch
// (expectation-maximization with scaled forward-backward) on the training
// stream; at test time the detector runs the scaled forward recursion and
// scores each symbol by one minus its one-step predictive probability
// P(o_t | o_1..t-1) — near 0 while the model tracks the process, near 1
// when the observed symbol is (nearly) impossible given every plausible
// hidden state.
//
// Unlike the paper's four window detectors, the HMM consumes single events
// against a recurrent hidden state, so its "window" is effectively
// unbounded; it is provided as an extension point on the same Detector
// interface (Window = Extent = 1).
//
// Training runs on flat row-major parameter and trellis arrays with one
// scratch allocation per Train call (kernel.go); the pre-kernel
// implementation is retained verbatim in reference_test.go and the trained
// model is pinned bit-for-bit against it, for every seed and worker count.
package hmm

import (
	"fmt"
	"math"

	"adiv/internal/alphabet"
	"adiv/internal/detector"
	"adiv/internal/rng"
	"adiv/internal/seq"
)

// Config holds the HMM's structure and training parameters.
type Config struct {
	// States is the number of hidden states. Warrender et al. sized it
	// near the process's alphabet; that remains a good default.
	States int
	// Iterations bounds the Baum-Welch passes.
	Iterations int
	// MaxTrainSymbols truncates the training stream for EM (Baum-Welch is
	// O(states² · length) per pass; the evaluation's million-element
	// stream is heavily redundant). 0 keeps the whole stream.
	MaxTrainSymbols int
	// AlphabetSize fixes the emission domain; 0 infers it from training.
	AlphabetSize int
	// Seed seeds the parameter initialization.
	Seed uint64
	// Smoothing is the additive constant applied when normalizing
	// re-estimated rows, keeping the model ergodic.
	Smoothing float64
	// Workers bounds the goroutines of the Baum-Welch E-step; 0 or 1 runs
	// the fused sequential kernel. The parallel E-step partitions work so
	// that no floating-point reduction ever crosses a goroutine boundary
	// (per-timestep normalizers, per-state accumulator rows), so the
	// trained model is bit-identical for every worker count — worker count
	// only affects wall-clock, never the model.
	Workers int
}

// DefaultConfig returns a configuration suited to the evaluation data:
// enough states for the 6-position cycle plus the excursion interiors (8
// states leave a cycle position aliased and the predictive probability
// stuck near 0.5 there; 10 track it cleanly).
func DefaultConfig() Config {
	return Config{
		States:          10,
		Iterations:      30,
		MaxTrainSymbols: 20_000,
		Seed:            13,
		Smoothing:       1e-6,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.States < 1 {
		return fmt.Errorf("hmm: non-positive state count %d", c.States)
	}
	if c.Iterations < 1 {
		return fmt.Errorf("hmm: non-positive iteration count %d", c.Iterations)
	}
	if c.MaxTrainSymbols < 0 {
		return fmt.Errorf("hmm: negative training truncation %d", c.MaxTrainSymbols)
	}
	if c.AlphabetSize < 0 || c.AlphabetSize > alphabet.MaxSize {
		return fmt.Errorf("hmm: alphabet size %d outside [0,%d]", c.AlphabetSize, alphabet.MaxSize)
	}
	if c.Smoothing < 0 {
		return fmt.Errorf("hmm: negative smoothing %v", c.Smoothing)
	}
	if c.Workers < 0 {
		return fmt.Errorf("hmm: negative worker count %d", c.Workers)
	}
	return nil
}

// Detector is an HMM anomaly detector. Construct with New.
//
// The trained model lives in flat row-major arrays: trans[i*n+j] is
// P(state j | state i), emit[i*k+o] is P(symbol o | state i), and emitT is
// the k×n transpose of emit kept alongside so the forward recursions read
// per-symbol emission columns with unit stride.
type Detector struct {
	cfg   Config
	n     int       // state count (== cfg.States, cached for indexing)
	k     int       // alphabet size
	pi    []float64 // initial state distribution
	trans []float64 // n×n row-major: trans[i*n+j] = P(state j | state i)
	emit  []float64 // n×k row-major: emit[i*k+o] = P(symbol o | state i)
	emitT []float64 // k×n transpose of emit
}

var _ detector.Detector = (*Detector)(nil)

// New returns an untrained HMM detector.
func New(cfg Config) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Detector{cfg: cfg}, nil
}

// Name implements detector.Detector.
func (d *Detector) Name() string { return "hmm" }

// Window implements detector.Detector. The HMM carries unbounded context
// in its hidden state; the nominal window is one event.
func (d *Detector) Window() int { return 1 }

// Extent implements detector.Detector: one response per symbol.
func (d *Detector) Extent() int { return 1 }

// Config returns the detector's configuration.
func (d *Detector) Config() Config { return d.cfg }

// Train fits the model to the training stream by Baum-Welch.
func (d *Detector) Train(train seq.Stream) error {
	k := d.cfg.AlphabetSize
	if k == 0 {
		for _, s := range train {
			if int(s)+1 > k {
				k = int(s) + 1
			}
		}
	}
	if k < 2 {
		return fmt.Errorf("hmm: degenerate alphabet of size %d", k)
	}
	obs := train
	if d.cfg.MaxTrainSymbols > 0 && len(obs) > d.cfg.MaxTrainSymbols {
		obs = obs[:d.cfg.MaxTrainSymbols]
	}
	if len(obs) < 2 {
		return fmt.Errorf("hmm: training stream of length %d too short", len(obs))
	}

	n := d.cfg.States
	src := rng.New(d.cfg.Seed)
	pi := make([]float64, n)
	trans := make([]float64, n*n)
	emit := make([]float64, n*k)
	// Identical RNG consumption order to the reference: pi first, then per
	// state one transition row followed by one emission row.
	randomDistributionInto(src, pi)
	for i := 0; i < n; i++ {
		randomDistributionInto(src, trans[i*n:(i+1)*n])
		randomDistributionInto(src, emit[i*k:(i+1)*k])
	}

	sc := newBWScratch(len(obs), n, k)
	sc.setEmitT(emit)
	for iter := 0; iter < d.cfg.Iterations; iter++ {
		baumWelchPassFlat(obs, pi, trans, emit, d.cfg.Smoothing, sc, d.cfg.Workers)
	}
	d.n, d.k, d.pi, d.trans, d.emit = n, k, pi, trans, emit
	d.emitT = append([]float64(nil), sc.emitT...)
	return nil
}

// randomDistributionInto fills p with a random probability vector bounded
// away from zero so that EM starts ergodic — the same draws and arithmetic
// as the reference's randomDistribution, minus its allocation.
func randomDistributionInto(src *rng.Source, p []float64) {
	sum := 0.0
	for i := range p {
		p[i] = 0.1 + src.Float64()
		sum += p[i]
	}
	for i := range p {
		p[i] /= sum
	}
}

// Score implements detector.Detector: responses[t] = 1 - P(test[t] |
// test[0..t-1]) under the trained model, computed by the scaled forward
// recursion. The first response conditions on the initial distribution.
func (d *Detector) Score(test seq.Stream) ([]float64, error) {
	if err := detector.CheckScorable(d.pi != nil, 1, test); err != nil {
		return nil, err
	}
	n := d.n
	cur := append([]float64(nil), d.pi...)
	next := make([]float64, n)
	out := make([]float64, len(test))
	for t, sym := range test {
		o := int(sym)
		p := 0.0
		if o < d.k {
			et := d.emitT[o*n : o*n+n]
			if t == 0 {
				for i := range next {
					next[i] = cur[i] * et[i]
					p += next[i]
				}
			} else {
				// The belief update Σ_i cur[i]·trans[i][j] runs i-outer over
				// unit-stride transition rows; each next[j] still sums its
				// terms in ascending i, so the responses match the reference
				// recursion bit for bit.
				for j := range next {
					next[j] = 0
				}
				for i, cv := range cur {
					row := d.trans[i*n : i*n+n]
					for j := range row {
						next[j] += cv * row[j]
					}
				}
				for j := range next {
					next[j] *= et[j]
					p += next[j]
				}
			}
		}
		out[t] = 1 - math.Min(1, p)
		if p > 0 {
			for i := 0; i < n; i++ {
				next[i] /= p
			}
			cur, next = next, cur
		} else {
			// An impossible symbol: reset belief to the stationary-ish
			// initial distribution and keep scoring.
			copy(cur, d.pi)
		}
	}
	return out, nil
}

// PredictiveProb returns the model's one-step predictive probabilities for
// the stream (1 - Score), mainly for tests and analysis.
func (d *Detector) PredictiveProb(test seq.Stream) ([]float64, error) {
	responses, err := d.Score(test)
	if err != nil {
		return nil, err
	}
	for i, r := range responses {
		responses[i] = 1 - r
	}
	return responses, nil
}

// ScoreWindowBytes implements detector.WindowByteScorer for streaming
// deployment: the HMM's extent is one symbol, and the single-window
// response is one minus the symbol's probability under the initial state
// distribution — exactly Score of a one-symbol stream, without its trellis
// allocations. (The batch recursion's evolving belief state is a property
// of scoring one long stream; the streaming adapter scores each window
// independently for every detector family.)
func (d *Detector) ScoreWindowBytes(w []byte) (float64, error) {
	if d.pi == nil {
		return 0, detector.ErrNotTrained
	}
	if len(w) != 1 {
		return 0, fmt.Errorf("hmm: window length %d, want 1", len(w))
	}
	o := int(w[0])
	p := 0.0
	if o < d.k {
		et := d.emitT[o*d.n:][:d.n]
		for i, pv := range d.pi {
			p += pv * et[i]
		}
	}
	return 1 - math.Min(1, p), nil
}
