package hmm

// This file retains the pre-kernel Baum-Welch and forward-scoring
// implementation verbatim ([][]float64 trellises, per-pass and per-timestep
// allocation) as a test-only reference. The equivalence tests below train
// both implementations on the same data and assert the model parameters and
// responses are bit-for-bit identical — the repo's determinism contract for
// the flat kernel, across seeds, shapes and worker counts.

import (
	"fmt"
	"math"
	"testing"

	"adiv/internal/alphabet"
	"adiv/internal/rng"
	"adiv/internal/seq"
)

// refModel is the reference's trained model: pi, trans and emit as nested
// slices, exactly as the pre-kernel Detector stored them.
type refModel struct {
	k     int
	pi    []float64
	trans [][]float64
	emit  [][]float64
}

// refTrain is the pre-kernel Detector.Train, verbatim apart from returning
// the model instead of storing it on the receiver.
func refTrain(cfg Config, train seq.Stream) (*refModel, error) {
	k := cfg.AlphabetSize
	if k == 0 {
		for _, s := range train {
			if int(s)+1 > k {
				k = int(s) + 1
			}
		}
	}
	if k < 2 {
		return nil, fmt.Errorf("hmm: degenerate alphabet of size %d", k)
	}
	obs := train
	if cfg.MaxTrainSymbols > 0 && len(obs) > cfg.MaxTrainSymbols {
		obs = obs[:cfg.MaxTrainSymbols]
	}
	if len(obs) < 2 {
		return nil, fmt.Errorf("hmm: training stream of length %d too short", len(obs))
	}

	n := cfg.States
	src := rng.New(cfg.Seed)
	pi := refRandomDistribution(src, n)
	trans := make([][]float64, n)
	emit := make([][]float64, n)
	for i := 0; i < n; i++ {
		trans[i] = refRandomDistribution(src, n)
		emit[i] = refRandomDistribution(src, k)
	}

	for iter := 0; iter < cfg.Iterations; iter++ {
		refBaumWelchPass(obs, pi, trans, emit, cfg.Smoothing)
	}
	return &refModel{k: k, pi: pi, trans: trans, emit: emit}, nil
}

func refRandomDistribution(src *rng.Source, n int) []float64 {
	p := make([]float64, n)
	sum := 0.0
	for i := range p {
		p[i] = 0.1 + src.Float64()
		sum += p[i]
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}

func refBaumWelchPass(obs seq.Stream, pi []float64, trans, emit [][]float64, smoothing float64) {
	n := len(pi)
	k := len(emit[0])
	T := len(obs)

	alpha := make([][]float64, T)
	beta := make([][]float64, T)
	scale := make([]float64, T)
	for t := range alpha {
		alpha[t] = make([]float64, n)
		beta[t] = make([]float64, n)
	}

	// Scaled forward.
	for i := 0; i < n; i++ {
		alpha[0][i] = pi[i] * emit[i][obs[0]]
	}
	scale[0] = refNormalize(alpha[0])
	for t := 1; t < T; t++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for i := 0; i < n; i++ {
				s += alpha[t-1][i] * trans[i][j]
			}
			alpha[t][j] = s * emit[j][obs[t]]
		}
		scale[t] = refNormalize(alpha[t])
	}

	// Scaled backward (using the forward scales).
	for i := 0; i < n; i++ {
		beta[T-1][i] = 1
	}
	for t := T - 2; t >= 0; t-- {
		for i := 0; i < n; i++ {
			s := 0.0
			for j := 0; j < n; j++ {
				s += trans[i][j] * emit[j][obs[t+1]] * beta[t+1][j]
			}
			beta[t][i] = s / refSafeScale(scale[t+1])
		}
	}

	// Accumulate expected counts.
	transNum := refZeroMatrix(n, n)
	gammaSum := make([]float64, n)   // over t < T-1, for transition rows
	emitNum := refZeroMatrix(n, k)   // gamma-weighted emissions
	gammaTotal := make([]float64, n) // over all t, for emission rows
	gamma0 := make([]float64, n)

	for t := 0; t < T; t++ {
		gt := 0.0
		g := make([]float64, n)
		for i := 0; i < n; i++ {
			g[i] = alpha[t][i] * beta[t][i]
			gt += g[i]
		}
		if gt == 0 {
			continue
		}
		for i := 0; i < n; i++ {
			g[i] /= gt
			gammaTotal[i] += g[i]
			emitNum[i][obs[t]] += g[i]
			if t == 0 {
				gamma0[i] = g[i]
			}
			if t < T-1 {
				gammaSum[i] += g[i]
			}
		}
		if t < T-1 {
			den := 0.0
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					den += alpha[t][i] * trans[i][j] * emit[j][obs[t+1]] * beta[t+1][j]
				}
			}
			if den == 0 {
				continue
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					xi := alpha[t][i] * trans[i][j] * emit[j][obs[t+1]] * beta[t+1][j] / den
					transNum[i][j] += xi
				}
			}
		}
	}

	// Re-estimate with additive smoothing.
	copy(pi, gamma0)
	refAddSmoothAndNormalize(pi, smoothing)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			trans[i][j] = transNum[i][j]
		}
		refAddSmoothAndNormalize(trans[i], smoothing)
		for o := 0; o < k; o++ {
			emit[i][o] = emitNum[i][o]
		}
		refAddSmoothAndNormalize(emit[i], smoothing)
	}
}

func refZeroMatrix(rows, cols int) [][]float64 {
	m := make([][]float64, rows)
	for i := range m {
		m[i] = make([]float64, cols)
	}
	return m
}

func refNormalize(p []float64) float64 {
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if sum > 0 {
		for i := range p {
			p[i] /= sum
		}
	}
	return sum
}

func refSafeScale(s float64) float64 {
	if s <= 0 {
		return 1
	}
	return s
}

func refAddSmoothAndNormalize(p []float64, smoothing float64) {
	sum := 0.0
	for i := range p {
		p[i] += smoothing
		sum += p[i]
	}
	if sum == 0 {
		for i := range p {
			p[i] = 1 / float64(len(p))
		}
		return
	}
	for i := range p {
		p[i] /= sum
	}
}

// refScore is the pre-kernel Detector.Score, verbatim on a refModel.
func (m *refModel) refScore(test seq.Stream) []float64 {
	n := len(m.pi)
	cur := append([]float64(nil), m.pi...)
	next := make([]float64, n)
	out := make([]float64, len(test))
	for t, sym := range test {
		o := int(sym)
		p := 0.0
		if o < m.k {
			if t == 0 {
				for i := 0; i < n; i++ {
					next[i] = cur[i] * m.emit[i][o]
					p += next[i]
				}
			} else {
				for j := 0; j < n; j++ {
					s := 0.0
					for i := 0; i < n; i++ {
						s += cur[i] * m.trans[i][j]
					}
					next[j] = s * m.emit[j][o]
					p += next[j]
				}
			}
		}
		out[t] = 1 - math.Min(1, p)
		if p > 0 {
			for i := 0; i < n; i++ {
				next[i] /= p
			}
			cur, next = next, cur
		} else {
			copy(cur, m.pi)
		}
	}
	return out
}

// refTrainStream synthesizes a deterministic quasi-cyclic training stream
// over the given alphabet: a repeating base cycle with seeded excursions,
// enough structure for Baum-Welch to move parameters on every pass.
func refTrainStream(seed uint64, length, k int) seq.Stream {
	src := rng.New(seed)
	out := make(seq.Stream, 0, length)
	pos := 0
	for len(out) < length {
		if src.Float64() < 0.1 {
			out = append(out, alphabet.Symbol(src.Intn(k)), alphabet.Symbol(src.Intn(k)))
		}
		out = append(out, alphabet.Symbol(pos%k))
		pos++
	}
	return out[:length]
}

// TestKernelMatchesReference trains the flat kernel and the verbatim
// reference on identical data across seeds, shapes and worker counts and
// requires bit-for-bit identical models and responses.
func TestKernelMatchesReference(t *testing.T) {
	shapes := []struct {
		states, k int
	}{
		{4, 6},
		{10, 8},
		{7, 12},
	}
	for _, shape := range shapes {
		for _, seed := range []uint64{1, 7, 13, 99} {
			for _, workers := range []int{0, 1, 2, 3, 8} {
				name := fmt.Sprintf("states=%d/k=%d/seed=%d/workers=%d", shape.states, shape.k, seed, workers)
				t.Run(name, func(t *testing.T) {
					cfg := Config{
						States:     shape.states,
						Iterations: 8,
						Seed:       seed,
						Smoothing:  1e-6,
						Workers:    workers,
					}
					train := refTrainStream(seed+101, 700, shape.k)
					test := refTrainStream(seed+202, 300, shape.k)

					ref, err := refTrain(cfg, train)
					if err != nil {
						t.Fatal(err)
					}
					det, err := New(cfg)
					if err != nil {
						t.Fatal(err)
					}
					if err := det.Train(train); err != nil {
						t.Fatal(err)
					}

					if det.k != ref.k {
						t.Fatalf("alphabet size %d, reference %d", det.k, ref.k)
					}
					n := cfg.States
					compareBits(t, "pi", det.pi, ref.pi)
					for i := 0; i < n; i++ {
						compareBits(t, fmt.Sprintf("trans[%d]", i), det.trans[i*n:(i+1)*n], ref.trans[i])
						compareBits(t, fmt.Sprintf("emit[%d]", i), det.emit[i*det.k:(i+1)*det.k], ref.emit[i])
					}

					got, err := det.Score(test)
					if err != nil {
						t.Fatal(err)
					}
					compareBits(t, "responses", got, ref.refScore(test))
				})
			}
		}
	}
}

// TestKernelWorkerCountInvariance pins the stronger per-pass property on a
// longer stream: the model is a pure function of (data, config) with the
// worker count erased.
func TestKernelWorkerCountInvariance(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Iterations = 4
	train := refTrainStream(5, 4_000, 8)

	var base *Detector
	for _, workers := range []int{1, 2, 5, 16} {
		c := cfg
		c.Workers = workers
		det, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		if err := det.Train(train); err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = det
			continue
		}
		compareBits(t, fmt.Sprintf("pi(workers=%d)", workers), det.pi, base.pi)
		compareBits(t, fmt.Sprintf("trans(workers=%d)", workers), det.trans, base.trans)
		compareBits(t, fmt.Sprintf("emit(workers=%d)", workers), det.emit, base.emit)
	}
}

// TestTrainAllocs pins the kernel's allocation budget: a full Train must
// cost a fixed handful of allocations (model + scratch), not per-pass or
// per-timestep garbage. The reference implementation spends ~60K
// allocations per pass on this shape.
func TestTrainAllocs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Iterations = 3
	train := refTrainStream(9, 5_000, 8)
	det, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		if err := det.Train(train); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 40 {
		t.Fatalf("Train allocates %v times, want a fixed scratch budget (<= 40)", allocs)
	}
}

// compareBits asserts two float slices are bit-for-bit identical.
func compareBits(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", what, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s[%d] = %x (%v), reference %x (%v)",
				what, i, math.Float64bits(got[i]), got[i],
				math.Float64bits(want[i]), want[i])
		}
	}
}
