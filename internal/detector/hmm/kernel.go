package hmm

import (
	"sync"

	"adiv/internal/seq"
)

// This file is the Baum-Welch training kernel: one EM pass over flat
// row-major trellis arrays with all scratch preallocated once per Train
// call, replacing the reference implementation's per-pass [][]float64
// trellises and per-timestep gamma slices (~60K allocations per pass on
// the evaluation config).
//
// Determinism contract: every floating-point operation keeps the operand
// values and evaluation order of the reference pass in reference_test.go,
// so the trained model is bit-identical to it. The optional parallel
// E-step preserves the contract for every worker count by only
// parallelizing computations whose outputs are disjoint — per-timestep
// normalizers (gt, den) across time chunks, per-state accumulator rows
// across state chunks — and never splitting a floating-point reduction
// across goroutines.

// bwScratch holds every buffer one Baum-Welch pass needs, sized once for a
// (T, n, k) shape and reused across iterations.
type bwScratch struct {
	T, n, k int

	alpha []float64 // T×n row-major forward trellis
	beta  []float64 // T×n row-major backward trellis
	scale []float64 // T forward scale factors
	emitT []float64 // k×n transpose of emit, rebuilt after each M-step

	g     []float64 // n: per-timestep gamma row (sequential path)
	xiBuf []float64 // n×n: per-timestep xi numerators (sequential path)

	gt  []float64 // T: per-timestep gamma normalizers (parallel path)
	den []float64 // T: per-timestep xi denominators (parallel path)

	transNum   []float64 // n×n expected transition counts
	emitNum    []float64 // n×k expected emission counts
	gammaSum   []float64 // n, over t < T-1, for transition rows
	gammaTotal []float64 // n, over all t, for emission rows
	gamma0     []float64 // n, gamma at t = 0
}

// newBWScratch allocates scratch for a (T, n, k) training shape.
func newBWScratch(T, n, k int) *bwScratch {
	return &bwScratch{
		T: T, n: n, k: k,
		alpha:      make([]float64, T*n),
		beta:       make([]float64, T*n),
		scale:      make([]float64, T),
		emitT:      make([]float64, k*n),
		g:          make([]float64, n),
		xiBuf:      make([]float64, n*n),
		gt:         make([]float64, T),
		den:        make([]float64, T),
		transNum:   make([]float64, n*n),
		emitNum:    make([]float64, n*k),
		gammaSum:   make([]float64, n),
		gammaTotal: make([]float64, n),
		gamma0:     make([]float64, n),
	}
}

// setEmitT rebuilds the k×n emission transpose from the n×k emit matrix.
// A pure relayout: the forward and backward recursions read emission
// probabilities per observed symbol, and the transpose makes that a
// unit-stride row instead of a stride-k gather.
func (s *bwScratch) setEmitT(emit []float64) {
	n, k := s.n, s.k
	for i := 0; i < n; i++ {
		for o := 0; o < k; o++ {
			s.emitT[o*n+i] = emit[i*k+o]
		}
	}
}

// baumWelchPassFlat performs one EM pass with scaled forward-backward over
// the flat parameter arrays, updating pi, trans and emit in place. obs must
// be an index-safe symbol stream (values < k); workers > 1 selects the
// deterministic parallel E-step.
func baumWelchPassFlat(obs seq.Stream, pi, trans, emit []float64, smoothing float64, s *bwScratch, workers int) {
	n, k, T := s.n, s.k, s.T
	alpha, beta, scale, emitT := s.alpha, s.beta, s.scale, s.emitT

	// Scaled forward. The reference computes alpha[t][j] as
	// Σ_i alpha[t-1][i]·trans[i][j] scaled by emit[j][obs[t]]; running the
	// sum i-outer over unit-stride transition rows accumulates each j's
	// terms in the same ascending-i order, so every value is bit-identical.
	{
		et := emitT[int(obs[0])*n:][:n]
		a0 := alpha[:n]
		for i := range a0 {
			a0[i] = pi[i] * et[i]
		}
		scale[0] = normalizeFlat(a0)
	}
	for t := 1; t < T; t++ {
		ar := alpha[t*n:][:n]
		for j := range ar {
			ar[j] = 0
		}
		prev := alpha[(t-1)*n:][:n]
		for i, av := range prev {
			row := trans[i*n:][:n]
			for j, tv := range row {
				ar[j] += av * tv
			}
		}
		et := emitT[int(obs[t])*n:][:n]
		for j := range ar {
			ar[j] *= et[j]
		}
		scale[t] = normalizeFlat(ar)
	}

	// Scaled backward (using the forward scales).
	{
		bl := beta[(T-1)*n:][:n]
		for i := range bl {
			bl[i] = 1
		}
	}
	for t := T - 2; t >= 0; t-- {
		et := emitT[int(obs[t+1])*n:][:n]
		bn := beta[(t+1)*n:][:n]
		br := beta[t*n:][:n]
		sc := safeScaleFlat(scale[t+1])
		for i := range br {
			row := trans[i*n:][:n]
			sum := 0.0
			for j, tv := range row {
				sum += tv * et[j] * bn[j]
			}
			br[i] = sum / sc
		}
	}

	// Expected counts.
	zeroFlat(s.transNum)
	zeroFlat(s.emitNum)
	zeroFlat(s.gammaSum)
	zeroFlat(s.gammaTotal)
	zeroFlat(s.gamma0)
	if workers > 1 {
		accumulateParallel(obs, trans, s, workers)
	} else {
		accumulateSequential(obs, trans, s)
	}

	// Re-estimate with additive smoothing.
	copy(pi, s.gamma0)
	addSmoothAndNormalizeFlat(pi, smoothing)
	for i := 0; i < n; i++ {
		copy(trans[i*n:][:n], s.transNum[i*n:][:n])
		addSmoothAndNormalizeFlat(trans[i*n:][:n], smoothing)
		copy(emit[i*k:][:k], s.emitNum[i*k:][:k])
		addSmoothAndNormalizeFlat(emit[i*k:][:k], smoothing)
	}
	s.setEmitT(emit)
}

// accumulateSequential is the fused single-worker E-step: one loop over t
// computing the gamma row and the xi numerators, with the xi numerators
// staged in an n×n buffer so the denominator sum and the count update share
// one product evaluation instead of recomputing the four-factor chain.
func accumulateSequential(obs seq.Stream, trans []float64, s *bwScratch) {
	n, k, T := s.n, s.k, s.T
	alpha, beta, emitT := s.alpha, s.beta, s.emitT
	g, xiBuf := s.g, s.xiBuf
	gammaTotal, gammaSum, gamma0 := s.gammaTotal, s.gammaSum, s.gamma0
	emitNum, transNum := s.emitNum, s.transNum

	for t := 0; t < T; t++ {
		ar := alpha[t*n:][:n]
		br := beta[t*n:][:n]
		gt := 0.0
		for i := range g {
			g[i] = ar[i] * br[i]
			gt += g[i]
		}
		if gt == 0 {
			continue
		}
		o := int(obs[t])
		last := t == T-1
		for i := range g {
			gi := g[i] / gt
			gammaTotal[i] += gi
			emitNum[i*k+o] += gi
			if t == 0 {
				gamma0[i] = gi
			}
			if !last {
				gammaSum[i] += gi
			}
		}
		if last {
			continue
		}
		et := emitT[int(obs[t+1])*n:][:n]
		bn := beta[(t+1)*n:][:n]
		den := 0.0
		for i, av := range ar {
			row := trans[i*n:][:n]
			xb := xiBuf[i*n:][:n]
			for j, tv := range row {
				p := av * tv * et[j] * bn[j]
				xb[j] = p
				den += p
			}
		}
		if den == 0 {
			continue
		}
		for i := 0; i < n; i++ {
			xb := xiBuf[i*n:][:n]
			tn := transNum[i*n:][:n]
			for j := range xb {
				tn[j] += xb[j] / den
			}
		}
	}
}

// accumulateParallel is the deterministic multi-worker E-step. Two
// barrier-separated phases: first the per-timestep normalizers gt[t] and
// den[t], parallel over contiguous time chunks (each t's reduction is
// computed whole by one worker, in the reference's operand order); then the
// per-state accumulators, parallel over contiguous state chunks (each
// accumulator slot is owned by exactly one worker and accumulates its
// per-timestep contributions in ascending t, the reference order). No
// floating-point sum ever crosses a worker boundary, so the result is
// bit-identical to the sequential path for every worker count.
func accumulateParallel(obs seq.Stream, trans []float64, s *bwScratch, workers int) {
	n, k, T := s.n, s.k, s.T
	alpha, beta, emitT := s.alpha, s.beta, s.emitT
	gt, den := s.gt, s.den

	// Phase 1: normalizers, parallel over time.
	runChunks(T, workers, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			ar := alpha[t*n:][:n]
			br := beta[t*n:][:n]
			sum := 0.0
			for i := range ar {
				sum += ar[i] * br[i]
			}
			gt[t] = sum
			if t == T-1 || sum == 0 {
				continue
			}
			et := emitT[int(obs[t+1])*n:][:n]
			bn := beta[(t+1)*n:][:n]
			d := 0.0
			for i, av := range ar {
				row := trans[i*n:][:n]
				for j, tv := range row {
					d += av * tv * et[j] * bn[j]
				}
			}
			den[t] = d
		}
	})

	// Phase 2: accumulators, parallel over states. Each worker owns the
	// rows of a contiguous state chunk and walks t ascending, so every
	// accumulator slot sums exactly the reference's contribution sequence.
	runChunks(n, workers, func(ilo, ihi int) {
		gammaTotal, gammaSum, gamma0 := s.gammaTotal, s.gammaSum, s.gamma0
		emitNum, transNum := s.emitNum, s.transNum
		for t := 0; t < T; t++ {
			gtv := gt[t]
			if gtv == 0 {
				continue
			}
			ar := alpha[t*n:][:n]
			br := beta[t*n:][:n]
			o := int(obs[t])
			last := t == T-1
			for i := ilo; i < ihi; i++ {
				gi := (ar[i] * br[i]) / gtv
				gammaTotal[i] += gi
				emitNum[i*k+o] += gi
				if t == 0 {
					gamma0[i] = gi
				}
				if !last {
					gammaSum[i] += gi
				}
			}
			if last {
				continue
			}
			d := den[t]
			if d == 0 {
				continue
			}
			et := emitT[int(obs[t+1])*n:][:n]
			bn := beta[(t+1)*n:][:n]
			for i := ilo; i < ihi; i++ {
				av := ar[i]
				row := trans[i*n:][:n]
				tn := transNum[i*n:][:n]
				for j, tv := range row {
					tn[j] += av * tv * et[j] * bn[j] / d
				}
			}
		}
	})
}

// runChunks splits [0, total) into one contiguous chunk per worker and runs
// fn on each concurrently. The chunk boundaries depend only on total and
// workers, never on scheduling.
func runChunks(total, workers int, fn func(lo, hi int)) {
	if workers > total {
		workers = total
	}
	if workers <= 1 {
		fn(0, total)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * total / workers
		hi := (w + 1) * total / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func zeroFlat(p []float64) {
	for i := range p {
		p[i] = 0
	}
}

// normalizeFlat scales p to sum 1 and returns the pre-normalization sum —
// the reference's normalize on a flat row.
func normalizeFlat(p []float64) float64 {
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if sum > 0 {
		for i := range p {
			p[i] /= sum
		}
	}
	return sum
}

func safeScaleFlat(s float64) float64 {
	if s <= 0 {
		return 1
	}
	return s
}

// addSmoothAndNormalizeFlat is the reference's addSmoothAndNormalize on a
// flat row.
func addSmoothAndNormalizeFlat(p []float64, smoothing float64) {
	sum := 0.0
	for i := range p {
		p[i] += smoothing
		sum += p[i]
	}
	if sum == 0 {
		for i := range p {
			p[i] = 1 / float64(len(p))
		}
		return
	}
	for i := range p {
		p[i] /= sum
	}
}
