// Package stide implements the Stide anomaly detector (Forrest et al. 1996;
// Warrender et al. 1999), the paper's pure sequence-matching detector.
//
// Stide slides a window of fixed length DW across the training data and
// stores every distinct window in a database of normal sequences. At test
// time each window either matches a normal sequence (response 0) or does not
// (response 1); no frequencies or probabilities are involved, which is
// precisely why Stide is structurally blind to rare-but-seen sequences and
// to any foreign sequence longer than its window (paper Sections 5.2, 7).
//
// The locality frame count (LFC) noise-suppression stage of the original
// system is implemented as an optional post-processor; the paper's
// evaluation explicitly sets it aside (Section 5.5) and so do the figure
// harnesses, but the ablation bench exercises it.
package stide

import (
	"fmt"

	"adiv/internal/detector"
	"adiv/internal/seq"
)

// Detector is a Stide instance. Construct with New; the zero value is not
// usable.
type Detector struct {
	window int
	normal *seq.DB
}

var _ detector.Detector = (*Detector)(nil)

// New returns an untrained Stide with the given detector-window length.
func New(window int) (*Detector, error) {
	if err := detector.ValidateWindow(window); err != nil {
		return nil, err
	}
	return &Detector{window: window}, nil
}

// Name implements detector.Detector.
func (d *Detector) Name() string { return "stide" }

// Window implements detector.Detector.
func (d *Detector) Window() int { return d.window }

// Extent implements detector.Detector: Stide judges exactly one window per
// response.
func (d *Detector) Extent() int { return d.window }

// Train stores every distinct training window in the normal database.
func (d *Detector) Train(train seq.Stream) error {
	db, err := seq.Build(train, d.window)
	if err != nil {
		return fmt.Errorf("stide: %w", err)
	}
	d.normal = db
	return nil
}

// TrainCorpus implements detector.CorpusTrainer: the normal database is
// fetched from the shared corpus cache (and therefore shared, read-only)
// instead of rebuilt from the stream.
func (d *Detector) TrainCorpus(c *seq.Corpus) error {
	db, err := c.DB(d.window)
	if err != nil {
		return fmt.Errorf("stide: %w", err)
	}
	d.normal = db
	return nil
}

// NormalCount returns the number of distinct sequences in the trained
// normal database, or 0 before training.
func (d *Detector) NormalCount() int {
	if d.normal == nil {
		return 0
	}
	return d.normal.Distinct()
}

// Score implements detector.Detector: response 1 for each test window
// absent from the normal database, 0 otherwise.
func (d *Detector) Score(test seq.Stream) ([]float64, error) {
	if err := detector.CheckScorable(d.normal != nil, d.window, test); err != nil {
		return nil, err
	}
	n := seq.NumWindows(len(test), d.window)
	out := make([]float64, n)
	// Encode the test stream once and query each window as an overlapping
	// subslice: the whole score loop performs no per-window allocation.
	b := test.Bytes()
	for i := 0; i < n; i++ {
		if !d.normal.ContainsBytes(b[i : i+d.window]) {
			out[i] = 1
		}
	}
	return out, nil
}

// LFC applies Stide's locality frame count to a response sequence: each
// output position reports the number of mismatches within the trailing
// frame of the given size, normalized to [0,1]. It is exported for the
// extension/ablation experiments only; the paper's evaluation bypasses it.
func LFC(responses []float64, frame int) ([]float64, error) {
	if frame < 1 {
		return nil, fmt.Errorf("stide: non-positive locality frame %d", frame)
	}
	out := make([]float64, len(responses))
	mismatches := 0
	for i, r := range responses {
		if r >= 1 {
			mismatches++
		}
		if i >= frame {
			if responses[i-frame] >= 1 {
				mismatches--
			}
		}
		window := frame
		if i+1 < frame {
			window = i + 1
		}
		out[i] = float64(mismatches) / float64(window)
	}
	return out, nil
}

// ScoreWindowBytes implements detector.WindowByteScorer: the single-window
// streaming fast path, one hash lookup and no allocation.
func (d *Detector) ScoreWindowBytes(w []byte) (float64, error) {
	if d.normal == nil {
		return 0, detector.ErrNotTrained
	}
	if len(w) != d.window {
		return 0, fmt.Errorf("stide: window length %d, want %d", len(w), d.window)
	}
	if !d.normal.ContainsBytes(w) {
		return 1, nil
	}
	return 0, nil
}
