package stide

import (
	"errors"
	"testing"
	"testing/quick"

	"adiv/internal/alphabet"
	"adiv/internal/detector"
	"adiv/internal/seq"
)

func mk(vals ...int) seq.Stream {
	s := make(seq.Stream, len(vals))
	for i, v := range vals {
		s[i] = alphabet.Symbol(v)
	}
	return s
}

func TestNewValidatesWindow(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Errorf("New(0) succeeded")
	}
	d, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	if d.Window() != 3 || d.Extent() != 3 || d.Name() != "stide" {
		t.Errorf("detector metadata: %s window %d extent %d", d.Name(), d.Window(), d.Extent())
	}
}

func TestScoreBeforeTrain(t *testing.T) {
	d, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Score(mk(1, 2, 3)); !errors.Is(err, detector.ErrNotTrained) {
		t.Errorf("Score before Train: %v", err)
	}
}

func TestBinaryResponses(t *testing.T) {
	d, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	// Train on 1 2 3 1 2 3: pairs 12, 23, 31.
	if err := d.Train(mk(1, 2, 3, 1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	if d.NormalCount() != 3 {
		t.Errorf("NormalCount() = %d, want 3", d.NormalCount())
	}
	// Test stream 1 2 3 2 1: pairs 12(ok) 23(ok) 32(foreign) 21(foreign).
	got, err := d.Score(mk(1, 2, 3, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0, 1, 1}
	if len(got) != len(want) {
		t.Fatalf("got %d responses, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("response[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestStreamTooShort(t *testing.T) {
	d, err := New(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Train(mk(1, 2, 3, 4, 5, 1, 2, 3, 4, 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Score(mk(1, 2)); !errors.Is(err, detector.ErrStreamTooShort) {
		t.Errorf("short stream: %v", err)
	}
}

func TestRetrainReplacesModel(t *testing.T) {
	d, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Train(mk(1, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := d.Train(mk(2, 2, 2)); err != nil {
		t.Fatal(err)
	}
	got, err := d.Score(mk(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 0 {
		t.Errorf("after retrain: %v, want [1 0]", got)
	}
}

// TestMatchesDatabaseSemantics: Stide's response must be exactly the
// foreignness indicator of each window, for random streams.
func TestMatchesDatabaseSemantics(t *testing.T) {
	check := func(trainRaw, testRaw []byte, wRaw uint8) bool {
		w := int(wRaw%4) + 1
		train := seq.FromBytes(clamp(trainRaw, 4))
		test := seq.FromBytes(clamp(testRaw, 4))
		if len(train) < w || len(test) < w {
			return true
		}
		d, err := New(w)
		if err != nil {
			return false
		}
		if err := d.Train(train); err != nil {
			return false
		}
		responses, err := d.Score(test)
		if err != nil {
			return false
		}
		db, err := seq.Build(train, w)
		if err != nil {
			return false
		}
		for i := range responses {
			want := 0.0
			if db.IsForeign(test[i : i+w]) {
				want = 1.0
			}
			if responses[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func clamp(raw []byte, k byte) []byte {
	out := make([]byte, len(raw))
	for i, b := range raw {
		out[i] = b % k
	}
	return out
}

func TestLFC(t *testing.T) {
	responses := []float64{0, 1, 1, 0, 0, 0, 1}
	got, err := LFC(responses, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0.5, 2.0 / 3, 2.0 / 3, 1.0 / 3, 0, 1.0 / 3}
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if diff := got[i] - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("LFC[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if _, err := LFC(responses, 0); err == nil {
		t.Errorf("LFC(frame=0) succeeded")
	}
}

func TestLFCSuppressesIsolatedMismatch(t *testing.T) {
	// A single mismatch in a long clean stretch yields a low LFC score; a
	// dense burst yields a high one — the noise-suppression property.
	isolated := make([]float64, 20)
	isolated[10] = 1
	burst := make([]float64, 20)
	for i := 8; i < 14; i++ {
		burst[i] = 1
	}
	li, err := LFC(isolated, 6)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := LFC(burst, 6)
	if err != nil {
		t.Fatal(err)
	}
	maxIso, maxBurst := maxOf(li), maxOf(lb)
	if maxIso >= maxBurst {
		t.Errorf("isolated max %v not below burst max %v", maxIso, maxBurst)
	}
	if maxBurst != 1 {
		t.Errorf("dense burst max %v, want 1", maxBurst)
	}
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
