package detector

// WindowByteScorer is the optional streaming fast path of a detector:
// score exactly one extent-length window, presented as its byte encoding
// (seq.Stream.AppendBytes layout), without the batch Score call's response
// slice or stream re-encoding.
//
// Contract: for a trained detector whose batch Score of an extent-length
// stream w yields the single response r, ScoreWindowBytes of w's byte
// encoding must return exactly r — bit for bit — or the corresponding
// error (ErrNotTrained before training). Implementations must not retain w
// and must not allocate in the success path; the online scorer's
// steady-state zero-allocation guarantee is built on both properties.
type WindowByteScorer interface {
	ScoreWindowBytes(w []byte) (float64, error)
}

// AsWindowByteScorer returns d's streaming fast path if it offers one,
// unwrapping instrumentation layers (anything exposing Unwrap() Detector)
// until a scorer or a bare detector is reached. Callers that unwrap this
// way bypass the wrapper's per-Score telemetry by design — the streaming
// adapter records its own online/* metrics instead, keeping spans and
// histograms off the per-symbol hot path.
func AsWindowByteScorer(d Detector) (WindowByteScorer, bool) {
	for d != nil {
		if ws, ok := d.(WindowByteScorer); ok {
			return ws, true
		}
		u, ok := d.(interface{ Unwrap() Detector })
		if !ok {
			return nil, false
		}
		d = u.Unwrap()
	}
	return nil, false
}
