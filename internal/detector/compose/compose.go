// Package compose provides detector decorators: wrappers that transform a
// detector's response stream while preserving the detector interface, so
// post-processing stages can be charted on the same performance maps as
// the detectors themselves.
//
// Two stages from the literature are provided. Smoothed applies Stide's
// locality-frame-count idea generically — each response becomes the mean
// of the trailing frame — which suppresses isolated blips and rewards
// bursts (the paper's evaluation deliberately bypasses this stage, Section
// 5.5; here it is an ablation). Quantized snaps responses at or above a
// floor to exactly 1, the "detection threshold becomes critical" knob that
// turns graded detectors (neural network, Markov) into binary ones.
package compose

import (
	"fmt"

	"adiv/internal/detector"
	"adiv/internal/seq"
)

// Smoothed decorates a detector with trailing-frame mean smoothing.
type Smoothed struct {
	inner detector.Detector
	frame int
}

var _ detector.Detector = (*Smoothed)(nil)

// NewSmoothed wraps a detector with a locality frame of the given size.
func NewSmoothed(inner detector.Detector, frame int) (*Smoothed, error) {
	if inner == nil {
		return nil, fmt.Errorf("compose: nil inner detector")
	}
	if frame < 1 {
		return nil, fmt.Errorf("compose: non-positive frame %d", frame)
	}
	return &Smoothed{inner: inner, frame: frame}, nil
}

// Name implements detector.Detector.
func (d *Smoothed) Name() string { return d.inner.Name() + "+lfc" }

// Window implements detector.Detector.
func (d *Smoothed) Window() int { return d.inner.Window() }

// Extent implements detector.Detector. Smoothing is causal (trailing
// frame), so each smoothed response still covers the inner extent.
func (d *Smoothed) Extent() int { return d.inner.Extent() }

// Frame returns the locality frame size.
func (d *Smoothed) Frame() int { return d.frame }

// Train implements detector.Detector.
func (d *Smoothed) Train(train seq.Stream) error { return d.inner.Train(train) }

// Score implements detector.Detector: each response is the mean of the
// inner detector's responses over the trailing frame (clipped at the
// stream start).
func (d *Smoothed) Score(test seq.Stream) ([]float64, error) {
	raw, err := d.inner.Score(test)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(raw))
	sum := 0.0
	for i, r := range raw {
		sum += r
		if i >= d.frame {
			sum -= raw[i-d.frame]
		}
		window := d.frame
		if i+1 < d.frame {
			window = i + 1
		}
		out[i] = sum / float64(window)
	}
	return out, nil
}

// Quantized decorates a detector by snapping responses at or above a floor
// to exactly 1, leaving others untouched.
type Quantized struct {
	inner detector.Detector
	floor float64
}

var _ detector.Detector = (*Quantized)(nil)

// NewQuantized wraps a detector with a maximal-response floor in (0,1].
func NewQuantized(inner detector.Detector, floor float64) (*Quantized, error) {
	if inner == nil {
		return nil, fmt.Errorf("compose: nil inner detector")
	}
	if floor <= 0 || floor > 1 {
		return nil, fmt.Errorf("compose: floor %v outside (0,1]", floor)
	}
	return &Quantized{inner: inner, floor: floor}, nil
}

// Name implements detector.Detector.
func (d *Quantized) Name() string { return d.inner.Name() + "@1" }

// Window implements detector.Detector.
func (d *Quantized) Window() int { return d.inner.Window() }

// Extent implements detector.Detector.
func (d *Quantized) Extent() int { return d.inner.Extent() }

// Floor returns the quantization floor.
func (d *Quantized) Floor() float64 { return d.floor }

// Train implements detector.Detector.
func (d *Quantized) Train(train seq.Stream) error { return d.inner.Train(train) }

// Score implements detector.Detector.
func (d *Quantized) Score(test seq.Stream) ([]float64, error) {
	out, err := d.inner.Score(test)
	if err != nil {
		return nil, err
	}
	for i, r := range out {
		if r >= d.floor {
			out[i] = 1
		}
	}
	return out, nil
}
