package compose

import (
	"math"
	"testing"

	"adiv/internal/alphabet"
	"adiv/internal/detector"
	"adiv/internal/detector/stide"
	"adiv/internal/seq"
)

func mk(vals ...int) seq.Stream {
	s := make(seq.Stream, len(vals))
	for i, v := range vals {
		s[i] = alphabet.Symbol(v)
	}
	return s
}

// scripted replays canned responses.
type scripted struct {
	responses []float64
	trained   bool
}

func (s *scripted) Name() string           { return "scripted" }
func (s *scripted) Window() int            { return 2 }
func (s *scripted) Extent() int            { return 2 }
func (s *scripted) Train(seq.Stream) error { s.trained = true; return nil }
func (s *scripted) Score(test seq.Stream) ([]float64, error) {
	if err := detector.CheckScorable(s.trained, 2, test); err != nil {
		return nil, err
	}
	out := make([]float64, len(test)-1)
	copy(out, s.responses)
	return out, nil
}

var _ detector.Detector = (*scripted)(nil)

func TestNewSmoothedValidation(t *testing.T) {
	inner := &scripted{}
	if _, err := NewSmoothed(nil, 3); err == nil {
		t.Errorf("nil inner accepted")
	}
	if _, err := NewSmoothed(inner, 0); err == nil {
		t.Errorf("frame 0 accepted")
	}
	d, err := NewSmoothed(inner, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "scripted+lfc" || d.Window() != 2 || d.Extent() != 2 || d.Frame() != 3 {
		t.Errorf("metadata %s %d %d %d", d.Name(), d.Window(), d.Extent(), d.Frame())
	}
}

func TestSmoothedMeans(t *testing.T) {
	inner := &scripted{responses: []float64{0, 1, 1, 0, 0, 0, 1}}
	d, err := NewSmoothed(inner, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Train(nil); err != nil {
		t.Fatal(err)
	}
	got, err := d.Score(make(seq.Stream, 8))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0.5, 2.0 / 3, 2.0 / 3, 1.0 / 3, 0, 1.0 / 3}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("smoothed[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSmoothedSuppressesIsolatedMismatch(t *testing.T) {
	// An isolated maximal response is diluted; a burst saturates — the
	// locality-frame-count rationale.
	isolated := make([]float64, 20)
	isolated[10] = 1
	burst := make([]float64, 20)
	for i := 8; i < 14; i++ {
		burst[i] = 1
	}
	score := func(responses []float64) float64 {
		d, err := NewSmoothed(&scripted{responses: responses}, 6)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Train(nil); err != nil {
			t.Fatal(err)
		}
		out, err := d.Score(make(seq.Stream, 21))
		if err != nil {
			t.Fatal(err)
		}
		maxResp := 0.0
		for _, r := range out {
			if r > maxResp {
				maxResp = r
			}
		}
		return maxResp
	}
	if iso, bst := score(isolated), score(burst); iso >= bst || bst != 1 {
		t.Errorf("isolated max %v, burst max %v; want isolated < burst = 1", iso, bst)
	}
}

func TestQuantized(t *testing.T) {
	inner := &scripted{responses: []float64{0, 0.5, 0.95, 0.99, 1}}
	if _, err := NewQuantized(nil, 0.9); err == nil {
		t.Errorf("nil inner accepted")
	}
	for _, floor := range []float64{0, 1.5, -0.2} {
		if _, err := NewQuantized(inner, floor); err == nil {
			t.Errorf("floor %v accepted", floor)
		}
	}
	d, err := NewQuantized(inner, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "scripted@1" || d.Floor() != 0.99 {
		t.Errorf("metadata %s %v", d.Name(), d.Floor())
	}
	if err := d.Train(nil); err != nil {
		t.Fatal(err)
	}
	got, err := d.Score(make(seq.Stream, 6))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0.5, 0.95, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("quantized[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestSmoothedWithRealStide: end to end, smoothing a real Stide turns an
// isolated foreign window into a sub-maximal response while a foreign
// burst stays maximal.
func TestSmoothedWithRealStide(t *testing.T) {
	inner, err := stide.New(2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewSmoothed(inner, 4)
	if err != nil {
		t.Fatal(err)
	}
	var train seq.Stream
	for i := 0; i < 50; i++ {
		train = append(train, 0, 1, 2, 3)
	}
	if err := d.Train(train); err != nil {
		t.Fatal(err)
	}
	// One isolated foreign pair (3,1) inside otherwise-normal data.
	responses, err := d.Score(mk(0, 1, 2, 3, 1, 2, 3, 0, 1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range responses {
		if r >= 1 {
			t.Errorf("smoothed response[%d] = %v; isolated mismatch should not saturate", i, r)
		}
	}
	// A wall of foreign pairs saturates the frame.
	responses, err = d.Score(mk(3, 1, 3, 1, 3, 1, 3, 1, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	saturated := false
	for _, r := range responses {
		if r == 1 {
			saturated = true
		}
	}
	if !saturated {
		t.Errorf("foreign burst never saturated the frame: %v", responses)
	}
}

func TestDecoratorsPropagateErrors(t *testing.T) {
	inner := &scripted{} // untrained
	d, err := NewSmoothed(inner, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Score(mk(0, 1, 2)); err == nil {
		t.Errorf("smoothed score of untrained inner succeeded")
	}
	q, err := NewQuantized(inner, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Score(mk(0, 1, 2)); err == nil {
		t.Errorf("quantized score of untrained inner succeeded")
	}
}
