package lbr

import (
	"errors"
	"testing"
	"testing/quick"

	"adiv/internal/alphabet"
	"adiv/internal/detector"
	"adiv/internal/seq"
)

func mk(vals ...int) seq.Stream {
	s := make(seq.Stream, len(vals))
	for i, v := range vals {
		s[i] = alphabet.Symbol(v)
	}
	return s
}

// TestFigure7Similarity pins the paper's worked example: two identical
// size-5 sequences score 15; the same pair with only the final element
// mismatched scores 10.
func TestFigure7Similarity(t *testing.T) {
	normal := mk(0, 1, 2, 3, 4)
	identical, err := Similarity(normal, normal)
	if err != nil {
		t.Fatal(err)
	}
	if identical != 15 {
		t.Errorf("identical similarity = %d, want 15", identical)
	}
	if MaxSimilarity(5) != 15 {
		t.Errorf("MaxSimilarity(5) = %d", MaxSimilarity(5))
	}
	foreign := mk(0, 1, 2, 3, 0)
	weak, err := Similarity(normal, foreign)
	if err != nil {
		t.Fatal(err)
	}
	if weak != 10 {
		t.Errorf("edge-mismatch similarity = %d, want 10", weak)
	}
}

func TestSimilarityWeights(t *testing.T) {
	weights, total, err := SimilarityWeights(mk(0, 1, 2, 3, 4), mk(0, 9, 2, 3, 4))
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 0, 1, 2, 3}
	for i := range want {
		if weights[i] != want[i] {
			t.Errorf("weights = %v, want %v", weights, want)
			break
		}
	}
	if total != 7 {
		t.Errorf("total = %d, want 7", total)
	}
}

func TestSimilarityMismatchedLengths(t *testing.T) {
	if _, err := Similarity(mk(1, 2), mk(1, 2, 3)); err == nil {
		t.Errorf("length mismatch accepted")
	}
	if _, _, err := SimilarityWeights(mk(1), mk(1, 2)); err == nil {
		t.Errorf("length mismatch accepted by SimilarityWeights")
	}
}

func TestSimilarityBounds(t *testing.T) {
	check := func(aRaw, bRaw []byte) bool {
		n := len(aRaw)
		if len(bRaw) < n {
			n = len(bRaw)
		}
		if n == 0 || n > 32 {
			return true
		}
		a := seq.FromBytes(aRaw[:n])
		b := seq.FromBytes(bRaw[:n])
		sim, err := Similarity(a, b)
		if err != nil {
			return false
		}
		return sim >= 0 && sim <= MaxSimilarity(n)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestSimilaritySymmetry(t *testing.T) {
	check := func(raw []byte) bool {
		if len(raw) < 2 {
			return true
		}
		half := len(raw) / 2
		a := seq.FromBytes(raw[:half])
		b := seq.FromBytes(raw[half : 2*half])
		ab, err := Similarity(a, b)
		if err != nil {
			return false
		}
		ba, err := Similarity(b, a)
		if err != nil {
			return false
		}
		return ab == ba
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestAdjacencyBias(t *testing.T) {
	// The same number of matches scores higher when the matches are
	// adjacent: that bias is the root of the paper's L&B blindness result.
	base := mk(0, 0, 0, 0, 0, 0)
	adjacent := mk(0, 0, 0, 1, 1, 1)  // 3 adjacent matches: 1+2+3 = 6
	scattered := mk(0, 1, 0, 1, 0, 1) // 3 scattered matches: 1+1+1 = 3
	sa, err := Similarity(base, adjacent)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := Similarity(base, scattered)
	if err != nil {
		t.Fatal(err)
	}
	if sa != 6 || ss != 3 {
		t.Errorf("adjacent %d (want 6), scattered %d (want 3)", sa, ss)
	}
}

func TestNewValidatesWindow(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Errorf("New(0) succeeded")
	}
	d, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	if d.Window() != 4 || d.Extent() != 4 || d.Name() != "lb" {
		t.Errorf("metadata: %s window %d extent %d", d.Name(), d.Window(), d.Extent())
	}
}

func TestScoreBeforeTrain(t *testing.T) {
	d, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Score(mk(1, 2, 3)); !errors.Is(err, detector.ErrNotTrained) {
		t.Errorf("Score before Train: %v", err)
	}
}

func TestScoreAgainstMostSimilar(t *testing.T) {
	d, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	// Training 1 2 3 1 2 3 1: windows 123, 231, 312.
	if err := d.Train(mk(1, 2, 3, 1, 2, 3, 1)); err != nil {
		t.Fatal(err)
	}
	if d.NormalCount() != 3 {
		t.Errorf("NormalCount() = %d, want 3", d.NormalCount())
	}
	// Test window 1 2 4: best match 1 2 3 gives weights 1,2,0 → 3 of 6.
	responses, err := d.Score(mk(1, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := responses[0], 1-3.0/6; got != want {
		t.Errorf("response = %v, want %v", got, want)
	}
	// An exactly normal window scores 0.
	responses, err = d.Score(mk(2, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if responses[0] != 0 {
		t.Errorf("normal window response = %v, want 0", responses[0])
	}
}

func TestMaximalResponseRequiresTotalMismatch(t *testing.T) {
	d, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Train(mk(0, 1, 0, 1)); err != nil {
		t.Fatal(err)
	}
	// Window 2 3 shares no position with 01 or 10: response exactly 1.
	responses, err := d.Score(mk(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if responses[0] != 1 {
		t.Errorf("fully mismatching window response = %v, want 1", responses[0])
	}
	// Window 0 3 matches 01 at position 0: response < 1.
	responses, err = d.Score(mk(0, 3))
	if err != nil {
		t.Fatal(err)
	}
	if responses[0] >= 1 {
		t.Errorf("partially matching window response = %v, want < 1", responses[0])
	}
}

func TestResponsesInUnitInterval(t *testing.T) {
	check := func(trainRaw, testRaw []byte, wRaw uint8) bool {
		w := int(wRaw%4) + 1
		train := seq.FromBytes(trainRaw)
		test := seq.FromBytes(testRaw)
		if len(train) < w || len(test) < w {
			return true
		}
		d, err := New(w)
		if err != nil {
			return false
		}
		if err := d.Train(train); err != nil {
			return false
		}
		responses, err := d.Score(test)
		if err != nil {
			return false
		}
		for _, r := range responses {
			if r < 0 || r > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
