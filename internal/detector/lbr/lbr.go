// Package lbr implements the Lane & Brodley anomaly detector (Lane &
// Brodley 1997; paper Section 5.2 and Figure 7).
//
// The detector stores the distinct fixed-length sequences of the training
// data as its model of normal behavior. Its similarity metric compares two
// equal-length sequences position by position: a mismatching position
// contributes 0, and a matching position contributes a weight that grows
// with the length of the adjacent run of matches —
//
//	w(i) = 0            if x[i] != y[i]
//	w(i) = 1 + w(i-1)   if x[i] == y[i]      (w(-1) = 0)
//
// so identical sequences of length DW score DW(DW+1)/2 and totally
// dissimilar sequences score 0. A test sequence's similarity is its maximum
// over the stored normal sequences; the anomaly response is that similarity
// complemented into [0,1]. The adjacency bias is exactly what blinds the
// detector to minimal foreign sequences: a foreign sequence differing from a
// normal one only at an edge position scores DW(DW-1)/2 — barely below the
// maximum (Figure 7's 15 -> 10 dip for DW=5) and nowhere near the maximal
// response that the paper's detection threshold of 1 requires.
package lbr

import (
	"fmt"

	"adiv/internal/detector"
	"adiv/internal/seq"
)

// Detector is a Lane & Brodley instance. Construct with New.
type Detector struct {
	window int
	normal [][]byte // distinct training windows, byte-encoded
}

var _ detector.Detector = (*Detector)(nil)

// New returns an untrained Lane & Brodley detector with the given window
// length.
func New(window int) (*Detector, error) {
	if err := detector.ValidateWindow(window); err != nil {
		return nil, err
	}
	return &Detector{window: window}, nil
}

// Name implements detector.Detector.
func (d *Detector) Name() string { return "lb" }

// Window implements detector.Detector.
func (d *Detector) Window() int { return d.window }

// Extent implements detector.Detector.
func (d *Detector) Extent() int { return d.window }

// MaxSimilarity returns the metric's maximum value DW(DW+1)/2 for a window
// length of dw: the score of two identical sequences.
func MaxSimilarity(dw int) int { return dw * (dw + 1) / 2 }

// Similarity computes the Lane & Brodley adjacency-weighted similarity of
// two sequences of equal length. It returns an error on a length mismatch.
func Similarity(x, y seq.Stream) (int, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("lbr: similarity of sequences with lengths %d and %d", len(x), len(y))
	}
	sim, run := 0, 0
	for i := range x {
		if x[i] == y[i] {
			run++
			sim += run
		} else {
			run = 0
		}
	}
	return sim, nil
}

// SimilarityWeights returns the per-position weight contributions of the
// similarity calculation alongside the total, the decomposition shown in the
// paper's Figure 7 (the "step curve").
func SimilarityWeights(x, y seq.Stream) (weights []int, total int, err error) {
	if len(x) != len(y) {
		return nil, 0, fmt.Errorf("lbr: similarity of sequences with lengths %d and %d", len(x), len(y))
	}
	weights = make([]int, len(x))
	run := 0
	for i := range x {
		if x[i] == y[i] {
			run++
			weights[i] = run
			total += run
		} else {
			run = 0
		}
	}
	return weights, total, nil
}

// Train stores the distinct training windows as the profile of normal
// behavior, in deterministic (lexicographic) order.
func (d *Detector) Train(train seq.Stream) error {
	db, err := seq.Build(train, d.window)
	if err != nil {
		return fmt.Errorf("lbr: %w", err)
	}
	d.setProfile(db)
	return nil
}

// TrainCorpus implements detector.CorpusTrainer: the window database comes
// from the shared corpus cache. The profile itself is the detector's own
// copy (byte-encoded, outside the DB), so sharing the DB is safe.
func (d *Detector) TrainCorpus(c *seq.Corpus) error {
	db, err := c.DB(d.window)
	if err != nil {
		return fmt.Errorf("lbr: %w", err)
	}
	d.setProfile(db)
	return nil
}

// setProfile extracts the distinct training windows from a built database.
func (d *Detector) setProfile(db *seq.DB) {
	normal := make([][]byte, 0, db.Distinct())
	for _, w := range db.Common(0) { // Common(0) = all distinct windows, sorted
		normal = append(normal, w.Bytes())
	}
	d.normal = normal
}

// NormalCount returns the number of stored normal sequences, or 0 before
// training.
func (d *Detector) NormalCount() int { return len(d.normal) }

// similarityBytes is Similarity specialized to byte-encoded windows on both
// sides, avoiding per-comparison conversions in the scoring hot path.
func similarityBytes(x, y []byte) int {
	sim, run := 0, 0
	for i := range x {
		if x[i] == y[i] {
			run++
			sim += run
		} else {
			run = 0
		}
	}
	return sim
}

// Score implements detector.Detector: for each test window, the response is
// 1 - maxSim/MaxSimilarity(DW), where maxSim is the similarity to the most
// similar stored normal sequence. A response of 1 therefore requires the
// window to share no position with any normal sequence.
func (d *Detector) Score(test seq.Stream) ([]float64, error) {
	if err := detector.CheckScorable(d.normal != nil, d.window, test); err != nil {
		return nil, err
	}
	simMax := float64(MaxSimilarity(d.window))
	n := seq.NumWindows(len(test), d.window)
	out := make([]float64, n)
	// Encode the test stream once; each window compared is an overlapping
	// subslice of the encoded buffer.
	b := test.Bytes()
	for i := 0; i < n; i++ {
		w := b[i : i+d.window]
		best := 0
		for _, normal := range d.normal {
			if s := similarityBytes(normal, w); s > best {
				best = s
				if best == int(simMax) {
					break
				}
			}
		}
		out[i] = 1 - float64(best)/simMax
	}
	return out, nil
}

// ScoreWindowBytes implements detector.WindowByteScorer: the single-window
// streaming fast path — the batch loop's best-similarity search over the
// normal profile, with no allocation.
func (d *Detector) ScoreWindowBytes(w []byte) (float64, error) {
	if d.normal == nil {
		return 0, detector.ErrNotTrained
	}
	if len(w) != d.window {
		return 0, fmt.Errorf("lbr: window length %d, want %d", len(w), d.window)
	}
	simMax := float64(MaxSimilarity(d.window))
	best := 0
	for _, normal := range d.normal {
		if s := similarityBytes(normal, w); s > best {
			best = s
			if best == int(simMax) {
				break
			}
		}
	}
	return 1 - float64(best)/simMax, nil
}
