// Package detector defines the common anatomy of the sequence-based anomaly
// detectors under study (paper Section 4.2): a mechanism for modeling normal
// behavior (Train), a metric for measuring deviation from that model
// (Score), and a thresholding mechanism applied downstream by the evaluation
// harness. The four detectors are deliberately invariant in the first and
// third components — all consume fixed-length sequences of categorical data
// and all are thresholded identically — and diverse only in the second, the
// similarity metric, which is the single dimension of diversity the paper
// isolates.
package detector

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"adiv/internal/seq"
)

// Detector is a sequence-based anomaly detector.
//
// Responses are real values in [0, 1] where 0 means completely normal and 1
// means maximal abnormality (paper Section 5.5). Score returns one response
// per position: responses[i] is the detector's judgment of the stream
// elements test[i : i+Extent()].
type Detector interface {
	// Name identifies the detector ("stide", "markov", "nn", "lb").
	Name() string
	// Window returns the detector-window length DW the detector was
	// configured with.
	Window() int
	// Extent returns the number of consecutive stream elements each
	// response covers: DW for pure window-matching detectors (Stide, L&B),
	// DW+1 for next-element predictors (Markov, neural network) whose unit
	// of judgment is the window plus the predicted element.
	Extent() int
	// Train builds the model of normal behavior from the training stream.
	// Training replaces any previous model.
	Train(train seq.Stream) error
	// Score returns the per-position responses over the test stream. It
	// returns an error if called before Train or if the stream is shorter
	// than Extent().
	Score(test seq.Stream) ([]float64, error)
}

// CorpusTrainer is the optional training fast path alongside Detector.Train:
// detectors whose models derive from fixed-width sequence databases
// implement it to fetch those databases from a shared seq.Corpus instead of
// rebuilding them from the raw stream — on the evaluation grid every window
// width is shared by three detectors, so the cache collapses dozens of
// million-element build passes into one per width. Implementations must
// treat every *seq.DB obtained from the corpus as read-only: the databases
// are shared across detectors and goroutines.
type CorpusTrainer interface {
	// TrainCorpus builds the model of normal behavior from the corpus's
	// cached databases. Like Train, it replaces any previous model.
	TrainCorpus(c *seq.Corpus) error
}

// TrainWith trains d from the shared corpus when the detector supports the
// fast path, falling back to Train on the corpus's stream otherwise. Both
// paths produce exactly the same model: TrainCorpus implementations derive
// it from databases that Build would have produced from the same stream.
func TrainWith(d Detector, c *seq.Corpus) error {
	if c == nil {
		return errors.New("detector: nil training corpus")
	}
	if ct, ok := d.(CorpusTrainer); ok {
		return ct.TrainCorpus(c)
	}
	return d.Train(c.Stream())
}

// ErrNotTrained is returned by Score when the detector has no model yet.
var ErrNotTrained = errors.New("detector: not trained")

// ErrStreamTooShort is returned by Score when the test stream cannot hold a
// single detector window.
var ErrStreamTooShort = errors.New("detector: test stream shorter than detector extent")

// ValidateWindow rejects non-positive detector windows with a uniform error.
func ValidateWindow(dw int) error {
	if dw < 1 {
		return fmt.Errorf("detector: non-positive window %d", dw)
	}
	return nil
}

// CheckScorable is the shared precondition check for Score implementations.
func CheckScorable(trained bool, extent int, test seq.Stream) error {
	if !trained {
		return ErrNotTrained
	}
	if len(test) < extent {
		return fmt.Errorf("%w: stream length %d, extent %d", ErrStreamTooShort, len(test), extent)
	}
	return nil
}

// Factory constructs a detector with the given window from an opaque
// per-detector configuration established at registration time.
type Factory func(window int) (Detector, error)

// registry maps detector names to factories. It is populated by Register,
// typically from package adiv which wires the concrete implementations.
var registry = struct {
	mu sync.RWMutex
	m  map[string]Factory
}{m: make(map[string]Factory)}

// Register associates a detector name with a factory. Registering a name
// twice replaces the earlier factory; registering a nil factory is a
// programming error and panics.
func Register(name string, f Factory) {
	if f == nil {
		panic("detector: Register with nil factory")
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	registry.m[name] = f
}

// New constructs a registered detector by name.
func New(name string, window int) (Detector, error) {
	registry.mu.RLock()
	f, ok := registry.m[name]
	registry.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("detector: unknown detector %q (registered: %v)", name, Names())
	}
	return f(window)
}

// Names returns the registered detector names in sorted order.
func Names() []string {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	names := make([]string, 0, len(registry.m))
	for n := range registry.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
