package detector

import (
	"fmt"

	"adiv/internal/obs"
	"adiv/internal/seq"
)

// responseBins is the bin count of the per-detector response-distribution
// histogram, matching the profile resolution the sweep command renders.
const responseBins = 10

// Observed wraps a detector with run telemetry recorded into reg:
//
//   - span  train/<name>/dwNN          — per-training duration
//   - span  score/<name>               — per-call scoring duration; when a
//     tracer is attached each Score call also records a trace span
//     (category "score", detector attribute) on its own async track
//   - ctr   symbols/<name>             — symbols scored
//   - gauge throughput_sps/<name>      — cumulative scoring throughput
//   - hist  responses/<name>           — response distribution (10 bins,
//     exact-extreme counts mirroring eval.Profile)
//   - sketch score_latency/<name>      — per-Score-call latency quantiles
//     (seconds)
//   - sketch responses_q/<name>        — response quantiles at sketch
//     resolution (the histogram's 10 bins cannot resolve a p99)
//
// Training carries no trace span of its own: in grid runs the scheduler's
// lane-stamped train task span covers the same interval with worker
// attribution, and a second identical span would double-count the family
// rollups.
//
// A nil registry disables observation entirely: the detector is returned
// unwrapped, so the disabled path has zero overhead by construction.
func Observed(d Detector, reg *obs.Registry) Detector {
	if reg == nil || d == nil {
		return d
	}
	name := d.Name()
	return &observed{
		Detector:   d,
		reg:        reg,
		name:       name,
		trainSpan:  fmt.Sprintf("train/%s/dw%02d", name, d.Window()),
		scoreSpan:  "score/" + name,
		score:      reg.Timing("score/" + name),
		symbols:    reg.Counter("symbols/" + name),
		throughput: reg.Gauge("throughput_sps/" + name),
		responses:  reg.Histogram("responses/"+name, responseBins),
		scoreLat:   reg.Sketch("score_latency/" + name),
		responsesQ: reg.Sketch("responses_q/" + name),
	}
}

// observed decorates a Detector with metrics recording. Train and Score
// delegate to the inner detector; Name/Window/Extent pass through via
// embedding, so evaluation output is unchanged by instrumentation.
type observed struct {
	Detector
	reg        *obs.Registry
	name       string
	trainSpan  string
	scoreSpan  string
	score      *obs.Timing
	symbols    *obs.Counter
	throughput *obs.Gauge
	responses  *obs.Histogram
	scoreLat   *obs.Sketch
	responsesQ *obs.Sketch
}

// Unwrap returns the detector being observed.
func (o *observed) Unwrap() Detector { return o.Detector }

func (o *observed) Train(train seq.Stream) error {
	sp := o.reg.Span(o.trainSpan)
	err := o.Detector.Train(train)
	sp.End()
	return err
}

// TrainCorpus times corpus-backed training under the same span as Train and
// dispatches through TrainWith, so wrapping never hides the inner
// detector's fast path (nor invents one: detectors without corpus support
// fall back to Train on the corpus's stream).
func (o *observed) TrainCorpus(c *seq.Corpus) error {
	sp := o.reg.Span(o.trainSpan)
	err := TrainWith(o.Detector, c)
	sp.End()
	return err
}

func (o *observed) Score(test seq.Stream) ([]float64, error) {
	sp := o.reg.SpanTraced(o.scoreSpan, "score")
	sp.SetAttr("detector", o.name)
	responses, err := o.Detector.Score(test)
	o.scoreLat.Observe(sp.End().Seconds())
	if err != nil {
		return nil, err
	}
	o.symbols.Add(int64(len(test)))
	o.responses.ObserveAll(responses)
	o.responsesQ.ObserveAll(responses)
	if total := o.score.Total(); total > 0 {
		o.throughput.Set(float64(o.symbols.Value()) / total.Seconds())
	}
	return responses, nil
}
