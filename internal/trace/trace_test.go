package trace

import (
	"testing"

	"adiv/internal/alphabet"
	"adiv/internal/inject"
	"adiv/internal/rng"
	"adiv/internal/seq"
)

func TestBuiltinProfilesValidate(t *testing.T) {
	for _, p := range []*Profile{DaemonProfile(), ShellProfile(), WebServerProfile()} {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %q invalid: %v", p.Name, err)
		}
		s, err := p.Generate(rng.New(1), 5_000)
		if err != nil {
			t.Errorf("profile %q: %v", p.Name, err)
			continue
		}
		if err := p.Alphabet.Validate(s); err != nil {
			t.Errorf("profile %q generated out-of-alphabet data: %v", p.Name, err)
		}
	}
}

func TestProfileValidation(t *testing.T) {
	a := alphabet.MustNew(4)
	block := Block{Symbols: seq.Stream{0, 1}, Weight: 1}
	valid := Phase{Name: "p", Blocks: []Block{block}, MeanLength: 10}
	tests := []struct {
		name    string
		profile Profile
	}{
		{"no alphabet", Profile{Name: "x", Phases: []Phase{valid}}},
		{"no phases", Profile{Name: "x", Alphabet: a}},
		{"no blocks", Profile{Name: "x", Alphabet: a, Phases: []Phase{{Name: "p", MeanLength: 5}}}},
		{"zero mean length", Profile{Name: "x", Alphabet: a,
			Phases: []Phase{{Name: "p", Blocks: []Block{block}}}}},
		{"empty block", Profile{Name: "x", Alphabet: a,
			Phases: []Phase{{Name: "p", MeanLength: 5, Blocks: []Block{{Weight: 1}}}}}},
		{"zero weight", Profile{Name: "x", Alphabet: a,
			Phases: []Phase{{Name: "p", MeanLength: 5, Blocks: []Block{{Symbols: seq.Stream{0}}}}}}},
		{"out-of-alphabet block", Profile{Name: "x", Alphabet: a,
			Phases: []Phase{{Name: "p", MeanLength: 5, Blocks: []Block{{Symbols: seq.Stream{9}, Weight: 1}}}}}},
		{"bad next", Profile{Name: "x", Alphabet: a,
			Phases: []Phase{{Name: "p", MeanLength: 5, Blocks: []Block{block}, Next: []int{3}}}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.profile.Validate(); err == nil {
				t.Errorf("Validate accepted invalid profile")
			}
			if _, err := tt.profile.Generate(rng.New(1), 100); err == nil {
				t.Errorf("Generate accepted invalid profile")
			}
		})
	}
}

func TestGenerateLengthAndAlphabet(t *testing.T) {
	p := DaemonProfile()
	s, err := p.Generate(rng.New(7), 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) < 10_000 || len(s) > 10_050 {
		t.Errorf("generated %d symbols, want ≈10000 (block-boundary overshoot only)", len(s))
	}
	if err := p.Alphabet.Validate(s); err != nil {
		t.Errorf("generated stream outside alphabet: %v", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := ShellProfile()
	a, err := p.Generate(rng.New(3), 2_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Generate(rng.New(3), 2_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	p := ShellProfile()
	a, err := p.Generate(rng.New(3), 2_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Generate(rng.New(4), 2_000)
	if err != nil {
		t.Fatal(err)
	}
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	same := 0
	for i := 0; i < n; i++ {
		if a[i] == b[i] {
			same++
		}
	}
	if same == n {
		t.Errorf("different seeds produced identical traces")
	}
}

func TestScanMFSHandcrafted(t *testing.T) {
	// Training: repetitions of 0 1 2 3 with one burst 1 3.
	var train seq.Stream
	for i := 0; i < 50; i++ {
		train = append(train, 0, 1, 2, 3)
	}
	train = append(train, 1, 3, 0, 1, 2, 3)
	ix := seq.NewIndex(train)

	// Test stream: normal cycle, then "2 3 1 3" (pair 3 1 is foreign? 3 is
	// followed by 0 or... training has "3 1"? after burst: ...3, 1, 3, 0...
	// so "3 1" does occur? The burst is 1 3 then 0: pairs (3,1)? Let me
	// place a clean case: "0 2" never occurs in training (0 always followed
	// by 1), while "0" and "2" both occur: an MFS of length 2.
	test := seq.Stream{0, 1, 2, 3, 0, 2, 3, 0, 1}
	stats, err := ScanMFS(ix, test, 6)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CountBySize[2] == 0 {
		t.Errorf("length-2 MFS (0 2) not found: %+v", stats.CountBySize)
	}
	if stats.Total() == 0 || len(stats.Sizes()) == 0 {
		t.Errorf("empty stats: %+v", stats)
	}
	ex, ok := stats.Examples[2]
	if !ok || len(ex) != 2 {
		t.Errorf("no length-2 example recorded")
	}
}

func TestScanMFSCleanTest(t *testing.T) {
	var train seq.Stream
	for i := 0; i < 50; i++ {
		train = append(train, 0, 1, 2, 3)
	}
	ix := seq.NewIndex(train)
	stats, err := ScanMFS(ix, train[:40], 6)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Total() != 0 {
		t.Errorf("found %d MFSs in data identical to training", stats.Total())
	}
}

func TestScanMFSValidation(t *testing.T) {
	ix := seq.NewIndex(seq.Stream{0, 1, 0, 1})
	if _, err := ScanMFS(ix, seq.Stream{0, 1}, 1); err == nil {
		t.Errorf("maxSize 1 accepted")
	}
}

func TestScanMFSSkipsForeignSymbols(t *testing.T) {
	// Symbol 5 never occurs in training: sequences containing it are
	// foreign but not MFSs (their length-1 parts do not all occur).
	ix := seq.NewIndex(seq.Stream{0, 1, 0, 1, 0})
	stats, err := ScanMFS(ix, seq.Stream{0, 5, 1, 0}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Total() != 0 {
		t.Errorf("foreign-symbol windows miscounted as MFSs: %+v", stats.CountBySize)
	}
}

func TestNaturalPlacements(t *testing.T) {
	profile := DaemonProfile()
	train, err := profile.Generate(rng.New(1), 150_000)
	if err != nil {
		t.Fatal(err)
	}
	held, err := profile.Generate(rng.New(9), 60_000)
	if err != nil {
		t.Fatal(err)
	}
	ix := seq.NewIndex(train)
	opts := inject.Options{MinWidth: 3, MaxWidth: 8, ContextWidths: true}
	placements, err := NaturalPlacements(ix, held, 12, opts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(placements) == 0 {
		t.Skip("no boundary-safe natural occurrence with this seed; scan logic covered elsewhere")
	}
	if len(placements) > 3 {
		t.Errorf("limit ignored: %d placements", len(placements))
	}
	for _, p := range placements {
		ok, err := inject.Valid(ix, p, opts)
		if err != nil || !ok {
			t.Errorf("returned placement invalid: %v, %v", ok, err)
		}
		minimal, err := ix.IsMinimalForeign(p.Anomaly())
		if err != nil || !minimal {
			t.Errorf("placement anomaly not minimal foreign: %v, %v", minimal, err)
		}
	}
}

func TestNaturalPlacementsValidatesOptions(t *testing.T) {
	ix := seq.NewIndex(seq.Stream{0, 1, 0, 1})
	if _, err := NaturalPlacements(ix, seq.Stream{0, 1}, 5, inject.Options{MinWidth: 0, MaxWidth: 2}, 0); err == nil {
		t.Errorf("invalid options accepted")
	}
}
