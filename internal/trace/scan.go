package trace

import (
	"fmt"
	"sort"

	"adiv/internal/inject"
	"adiv/internal/seq"
)

// MFSStats summarizes the minimal foreign sequences found in a test stream
// with respect to a training stream, reproducing the observation of the
// paper's Section 4.1 (after Tan & Maxion 2002): natural data is replete
// with minimal foreign sequences of varying lengths.
type MFSStats struct {
	// CountBySize maps MFS length to the number of positions in the test
	// stream where a minimal foreign sequence of that length starts.
	CountBySize map[int]int
	// Examples holds one example MFS per length, keyed by length.
	Examples map[int]seq.Stream
	// Positions is the number of test positions examined.
	Positions int

	// occurrences records every (position, size) found, in stream order,
	// backing NaturalPlacements.
	occurrences []occurrence
}

type occurrence struct{ pos, size int }

// Total returns the total number of MFS occurrences found.
func (s MFSStats) Total() int {
	n := 0
	for _, c := range s.CountBySize {
		n += c
	}
	return n
}

// Sizes returns the MFS lengths observed, ascending.
func (s MFSStats) Sizes() []int {
	sizes := make([]int, 0, len(s.CountBySize))
	for k := range s.CountBySize {
		sizes = append(sizes, k)
	}
	sort.Ints(sizes)
	return sizes
}

// NaturalPlacements locates minimal foreign sequences at their natural
// positions in a test stream and keeps those whose surroundings satisfy the
// boundary-sequence constraint in place: every window (of each width in
// opts) mixing anomaly and neighboring elements occurs in the training
// data. Such occurrences are directly usable as evaluation placements —
// "there is no difference between a minimal foreign sequence embedded in
// synthetic vs. natural data" (paper Section 8) — without any injection.
// Results are ordered by position; max limits how many are returned
// (0 = all).
func NaturalPlacements(trainIx *seq.Index, test seq.Stream, maxSize int, opts inject.Options, limit int) ([]inject.Placement, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	stats, err := ScanMFS(trainIx, test, maxSize)
	if err != nil {
		return nil, err
	}
	var out []inject.Placement
	for _, occ := range stats.occurrences {
		p := inject.Placement{Stream: test, Start: occ.pos, AnomalyLen: occ.size}
		ok, err := inject.Valid(trainIx, p, opts)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, p)
			if limit > 0 && len(out) >= limit {
				break
			}
		}
	}
	return out, nil
}

// ScanMFS scans a test stream against a training index for occurrences of
// minimal foreign sequences up to maxSize long.
//
// A position i contributes an MFS of length L when test[i:i+L] is foreign to
// the training stream while both of its (L-1)-length subsequences occur. The
// scan finds, for each i, the shortest foreign sequence starting at i; if
// that sequence's proper subsequences all occur it is minimal by
// construction of "shortest" on the prefix side, and the suffix side is
// verified explicitly.
//
// The scan is a single pass over the automaton's matching statistics
// (retained as the per-position probe loop in reference_test.go, which pins
// this implementation's full output). With S[j-1] the longest suffix of
// test[:j] occurring in training, d(j) = j - S[j-1] is the start of that
// suffix and is non-decreasing in j, and test[i:j] occurs iff d(j) <= i. So
// for each i the shortest foreign window ends at the first j > i with
// d(j) > i — a two-pointer sweep, O(len(test)) total instead of O(len(test)
// · maxSize) automaton walks, allocating one int32 slice for S.
func ScanMFS(trainIx *seq.Index, test seq.Stream, maxSize int) (MFSStats, error) {
	if maxSize < 2 {
		return MFSStats{}, fmt.Errorf("trace: maxSize %d too small for minimal foreign sequences", maxSize)
	}
	// The maps hold at most maxSize-1 keys. The oversized hint keeps the
	// bucket count well past the key count so overflow-bucket allocation —
	// a function of the per-process map hash seed — cannot occur, keeping
	// the scan's allocs/op stable run-to-run for the bench-check contract.
	stats := MFSStats{
		CountBySize: make(map[int]int, 4*maxSize),
		Examples:    make(map[int]seq.Stream, 4*maxSize),
		Positions:   len(test),
	}
	auto := trainIx.Automaton()
	ms := auto.AppendMatchLens(make([]int32, 0, len(test)), test)
	scanMFSMatchStats(test, ms, maxSize, &stats)
	return stats, nil
}

// scanMFSMatchStats is the allocation-free sweep at the core of ScanMFS,
// split out so the regression guard can assert its steady-state allocation
// count. ms must be the matching statistics of test (AppendMatchLens).
func scanMFSMatchStats(test seq.Stream, ms []int32, maxSize int, stats *MFSStats) {
	n := len(test)
	j := 0 // exclusive end of the current candidate window, 1-based
	for i := 0; i < n; i++ {
		if j < i+1 {
			j = i + 1
		}
		// Advance to the first j whose window test[i:j] is foreign:
		// d(j) = j - S[j-1] > i. d is non-decreasing, so j never retreats
		// as i grows and the sweep is linear.
		for j <= n && int(j-int(ms[j-1])) <= i {
			j++
		}
		if j > n {
			// Even test[i:n] occurs in training; by monotonicity the same
			// holds for every later start.
			return
		}
		l := j - i
		if l < 2 || l > maxSize {
			// A foreign single symbol, or first foreignness beyond the
			// probe bound — the reference records nothing here.
			continue
		}
		// The prefix test[i:j-1] occurs (j was the *first* foreign end);
		// minimality still requires the suffix test[i+1:j] to occur, i.e.
		// d(j) <= i+1, and d(j) > i already, so d(j) == i+1 exactly.
		if int(j-int(ms[j-1])) == i+1 {
			stats.CountBySize[l]++
			stats.occurrences = append(stats.occurrences, occurrence{pos: i, size: l})
			if _, ok := stats.Examples[l]; !ok {
				stats.Examples[l] = test[i:j].Clone()
			}
		}
	}
}
