package trace

import (
	"fmt"
	"sort"

	"adiv/internal/inject"
	"adiv/internal/seq"
)

// MFSStats summarizes the minimal foreign sequences found in a test stream
// with respect to a training stream, reproducing the observation of the
// paper's Section 4.1 (after Tan & Maxion 2002): natural data is replete
// with minimal foreign sequences of varying lengths.
type MFSStats struct {
	// CountBySize maps MFS length to the number of positions in the test
	// stream where a minimal foreign sequence of that length starts.
	CountBySize map[int]int
	// Examples holds one example MFS per length, keyed by length.
	Examples map[int]seq.Stream
	// Positions is the number of test positions examined.
	Positions int

	// occurrences records every (position, size) found, in stream order,
	// backing NaturalPlacements.
	occurrences []occurrence
}

type occurrence struct{ pos, size int }

// Total returns the total number of MFS occurrences found.
func (s MFSStats) Total() int {
	n := 0
	for _, c := range s.CountBySize {
		n += c
	}
	return n
}

// Sizes returns the MFS lengths observed, ascending.
func (s MFSStats) Sizes() []int {
	sizes := make([]int, 0, len(s.CountBySize))
	for k := range s.CountBySize {
		sizes = append(sizes, k)
	}
	sort.Ints(sizes)
	return sizes
}

// NaturalPlacements locates minimal foreign sequences at their natural
// positions in a test stream and keeps those whose surroundings satisfy the
// boundary-sequence constraint in place: every window (of each width in
// opts) mixing anomaly and neighboring elements occurs in the training
// data. Such occurrences are directly usable as evaluation placements —
// "there is no difference between a minimal foreign sequence embedded in
// synthetic vs. natural data" (paper Section 8) — without any injection.
// Results are ordered by position; max limits how many are returned
// (0 = all).
func NaturalPlacements(trainIx *seq.Index, test seq.Stream, maxSize int, opts inject.Options, limit int) ([]inject.Placement, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	stats, err := ScanMFS(trainIx, test, maxSize)
	if err != nil {
		return nil, err
	}
	var out []inject.Placement
	for _, occ := range stats.occurrences {
		p := inject.Placement{Stream: test, Start: occ.pos, AnomalyLen: occ.size}
		ok, err := inject.Valid(trainIx, p, opts)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, p)
			if limit > 0 && len(out) >= limit {
				break
			}
		}
	}
	return out, nil
}

// ScanMFS scans a test stream against a training index for occurrences of
// minimal foreign sequences up to maxSize long.
//
// A position i contributes an MFS of length L when test[i:i+L] is foreign to
// the training stream while both of its (L-1)-length subsequences occur. The
// scan finds, for each i, the shortest foreign sequence starting at i; if
// that sequence's proper subsequences all occur it is minimal by
// construction of "shortest" on the prefix side, and the suffix side is
// verified explicitly.
func ScanMFS(trainIx *seq.Index, test seq.Stream, maxSize int) (MFSStats, error) {
	if maxSize < 2 {
		return MFSStats{}, fmt.Errorf("trace: maxSize %d too small for minimal foreign sequences", maxSize)
	}
	stats := MFSStats{
		CountBySize: make(map[int]int),
		Examples:    make(map[int]seq.Stream),
		Positions:   len(test),
	}
	// The scan probes many lengths per position; the suffix automaton
	// answers each probe in O(length) regardless of length, where per-width
	// databases would need one build per width.
	auto := trainIx.Automaton()
	for i := 0; i < len(test); i++ {
		// Find the shortest L such that test[i:i+L] is foreign. Once a
		// prefix is foreign every extension is too, so stop at the first.
		for l := 1; l <= maxSize && i+l <= len(test); l++ {
			candidate := test[i : i+l]
			if !auto.IsForeign(candidate) {
				continue
			}
			if l < 2 {
				break // a foreign symbol, not an MFS
			}
			// The prefix test[i:i+l-1] occurs (l was the *first* foreign
			// length); minimality still requires the suffix to occur.
			if auto.Contains(candidate[1:]) {
				stats.CountBySize[l]++
				stats.occurrences = append(stats.occurrences, occurrence{pos: i, size: l})
				if _, ok := stats.Examples[l]; !ok {
					stats.Examples[l] = candidate.Clone()
				}
			}
			break
		}
	}
	return stats, nil
}
