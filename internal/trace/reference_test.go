package trace

// The pre-kernel ScanMFS — the per-position, per-length automaton probe
// loop — retained verbatim as the behavioral reference for the single-pass
// matching-statistics scan. refScanMFS is the exact implementation the
// sweep replaced; TestScanMatchesReference compares the full MFSStats
// (counts, examples, occurrence order) across random streams and probe
// bounds.

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"adiv/internal/alphabet"
	"adiv/internal/rng"
	"adiv/internal/seq"
)

// refScanMFS is the retained pre-kernel implementation of ScanMFS.
func refScanMFS(trainIx *seq.Index, test seq.Stream, maxSize int) (MFSStats, error) {
	if maxSize < 2 {
		return MFSStats{}, fmt.Errorf("trace: maxSize %d too small for minimal foreign sequences", maxSize)
	}
	stats := MFSStats{
		CountBySize: make(map[int]int),
		Examples:    make(map[int]seq.Stream),
		Positions:   len(test),
	}
	auto := trainIx.Automaton()
	for i := 0; i < len(test); i++ {
		// Find the shortest L such that test[i:i+L] is foreign. Once a
		// prefix is foreign every extension is too, so stop at the first.
		for l := 1; l <= maxSize && i+l <= len(test); l++ {
			candidate := test[i : i+l]
			if !auto.IsForeign(candidate) {
				continue
			}
			if l < 2 {
				break // a foreign symbol, not an MFS
			}
			// The prefix test[i:i+l-1] occurs (l was the *first* foreign
			// length); minimality still requires the suffix to occur.
			if auto.Contains(candidate[1:]) {
				stats.CountBySize[l]++
				stats.occurrences = append(stats.occurrences, occurrence{pos: i, size: l})
				if _, ok := stats.Examples[l]; !ok {
					stats.Examples[l] = candidate.Clone()
				}
			}
			break
		}
	}
	return stats, nil
}

// refScanStream synthesizes a stream with enough structure that foreign
// windows of several lengths arise: a noisy cycle over k symbols.
func refScanStream(seed uint64, length, k int) seq.Stream {
	src := rng.New(seed)
	out := make(seq.Stream, length)
	for i := range out {
		if src.Float64() < 0.15 {
			out[i] = alphabet.Symbol(src.Intn(k))
		} else {
			out[i] = alphabet.Symbol(i % k)
		}
	}
	return out
}

// TestScanMatchesReference compares ScanMFS against the retained reference
// over random train/test pairs, alphabet widths and probe bounds: identical
// counts, identical examples, identical occurrence positions in identical
// order.
func TestScanMatchesReference(t *testing.T) {
	for _, k := range []int{3, 6, 17} {
		for _, maxSize := range []int{2, 4, 9} {
			for seed := uint64(1); seed <= 5; seed++ {
				train := refScanStream(seed, 600, k)
				test := refScanStream(seed+100, 400, k)
				ix := seq.NewIndex(train)

				want, err := refScanMFS(ix, test, maxSize)
				if err != nil {
					t.Fatalf("reference scan: %v", err)
				}
				got, err := ScanMFS(ix, test, maxSize)
				if err != nil {
					t.Fatalf("scan: %v", err)
				}

				name := fmt.Sprintf("k=%d maxSize=%d seed=%d", k, maxSize, seed)
				if !reflect.DeepEqual(got.CountBySize, want.CountBySize) {
					t.Fatalf("%s: CountBySize %v, reference %v", name, got.CountBySize, want.CountBySize)
				}
				if !reflect.DeepEqual(got.Examples, want.Examples) {
					t.Fatalf("%s: Examples %v, reference %v", name, got.Examples, want.Examples)
				}
				if !reflect.DeepEqual(got.occurrences, want.occurrences) {
					t.Fatalf("%s: occurrences %v, reference %v", name, got.occurrences, want.occurrences)
				}
				if got.Positions != want.Positions {
					t.Fatalf("%s: Positions %d, reference %d", name, got.Positions, want.Positions)
				}
			}
		}
	}
}

// TestScanMatchesReferenceForeignSymbols covers test streams containing
// symbols the training stream never emits (no automaton edge anywhere).
func TestScanMatchesReferenceForeignSymbols(t *testing.T) {
	train := refScanStream(3, 500, 5)
	test := refScanStream(7, 300, 9) // symbols 5..8 are foreign to training
	ix := seq.NewIndex(train)
	want, err := refScanMFS(ix, test, 6)
	if err != nil {
		t.Fatalf("reference scan: %v", err)
	}
	got, err := ScanMFS(ix, test, 6)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if !reflect.DeepEqual(got.CountBySize, want.CountBySize) {
		t.Fatalf("CountBySize %v, reference %v", got.CountBySize, want.CountBySize)
	}
	if !reflect.DeepEqual(got.occurrences, want.occurrences) {
		t.Fatalf("occurrences diverge from reference")
	}
}

// TestScanSweepAllocs guards the scan inner loop: with the automaton built
// and matching statistics in hand, the sweep itself performs only the
// bounded map/occurrence bookkeeping — far under one allocation per
// position — so window-probe churn can't silently return.
func TestScanSweepAllocs(t *testing.T) {
	train := refScanStream(11, 2000, 8)
	test := refScanStream(12, 1500, 8)
	auto := seq.NewIndex(train).Automaton()
	ms := auto.AppendMatchLens(make([]int32, 0, len(test)), test)

	stats := MFSStats{
		CountBySize: make(map[int]int),
		Examples:    make(map[int]seq.Stream),
		Positions:   len(test),
		occurrences: make([]occurrence, 0, len(test)),
	}
	allocs := testing.AllocsPerRun(20, func() {
		stats.occurrences = stats.occurrences[:0]
		scanMFSMatchStats(test, ms, 9, &stats)
	})
	// Steady state re-fills the preallocated occurrence list and touches
	// already-populated maps; a handful of allocations covers map growth
	// jitter, versus two automaton walks per position before the kernel.
	if allocs > 8 {
		t.Fatalf("MFS sweep allocated %.0f times per scan, want <= 8", allocs)
	}
	if math.IsNaN(allocs) {
		t.Fatalf("AllocsPerRun returned NaN")
	}
}

// TestMatchLensAllocs pins AppendMatchLens as allocation-free when dst has
// capacity.
func TestMatchLensAllocs(t *testing.T) {
	train := refScanStream(21, 1000, 6)
	test := refScanStream(22, 800, 6)
	auto := seq.NewIndex(train).Automaton()
	dst := make([]int32, 0, len(test))
	allocs := testing.AllocsPerRun(50, func() {
		dst = auto.AppendMatchLens(dst[:0], test)
	})
	if allocs != 0 {
		t.Fatalf("AppendMatchLens allocated %.0f times, want 0", allocs)
	}
}
