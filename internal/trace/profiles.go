package trace

import (
	"adiv/internal/alphabet"
	"adiv/internal/seq"
)

// Built-in profiles. They intentionally mirror the structure of the traces
// the literature studies: a daemon with a dominant service loop and rare
// error handling (sendmail/lpr-style), and an interactive shell session with
// task-switching (the Lane & Brodley masquerade-detection setting).

// symbolic shorthands used by the built-in profiles.
func syms(names ...alphabet.Symbol) seq.Stream { return seq.Stream(names) }

// DaemonProfile models a network daemon: a long accept/serve/log loop with
// an occasional authentication branch and a rare error-recovery path. The
// 20-symbol alphabet stands in for a system-call repertoire.
func DaemonProfile() *Profile {
	a, err := alphabet.WithNames([]string{
		"accept", "read", "parse", "lookup", "write", "log", // 0-5: service loop
		"auth", "crypt", "setuid", // 6-8: auth branch
		"stat", "open", "mmap", "close", // 9-12: file handling
		"fork", "exec", "wait", // 13-15: delivery
		"sigact", "unlink", "abortlog", "exit", // 16-19: error path
	})
	if err != nil {
		// Static construction; a failure is a programming error.
		panic(err)
	}
	return &Profile{
		Name:     "daemon",
		Alphabet: a,
		Phases: []Phase{
			{
				Name:       "serve",
				MeanLength: 400,
				Blocks: []Block{
					{Symbols: syms(0, 1, 2, 3, 4, 5), Weight: 60},      // plain request
					{Symbols: syms(0, 1, 2, 6, 7, 8, 4, 5), Weight: 8}, // authenticated request
					{Symbols: syms(9, 10, 11, 1, 12), Weight: 6},       // config reload
					{Symbols: syms(0, 1, 2, 3, 3, 3, 4, 5), Weight: 4}, // retried lookup
				},
				Next: []int{0, 0, 0, 1},
			},
			{
				Name:       "deliver",
				MeanLength: 60,
				Blocks: []Block{
					{Symbols: syms(13, 14, 15, 5), Weight: 20},
					{Symbols: syms(13, 14, 16, 15, 5), Weight: 2}, // child signalled
					{Symbols: syms(10, 4, 12, 17), Weight: 1},     // spool cleanup
				},
				Next: []int{0, 0, 0, 0, 2},
			},
			{
				Name:       "recover",
				MeanLength: 12,
				Blocks: []Block{
					{Symbols: syms(16, 18, 5, 19), Weight: 1}, // rare error path
					{Symbols: syms(16, 9, 10, 12), Weight: 2},
				},
				Next: []int{0},
			},
		},
	}
}

// WebServerProfile models a request-serving worker over a 24-symbol
// repertoire: a dominant static-file fast path, a dynamic-handler path
// with database access, periodic housekeeping, and a rare crash-recovery
// branch — the long-tailed mixture that makes held-out web traces rich in
// minimal foreign sequences.
func WebServerProfile() *Profile {
	a, err := alphabet.WithNames([]string{
		"accept", "readreq", "parsehdr", "route", // 0-3: front end
		"statf", "openf", "sendfile", "closef", // 4-7: static path
		"handler", "dbconn", "query", "dbfree", "render", // 8-12: dynamic path
		"writeresp", "logline", "keepalive", "closecon", // 13-16: back end
		"gcpass", "rotatelog", "reload", // 17-19: housekeeping
		"sigchld", "respawn", "panicdump", "resume", // 20-23: recovery
	})
	if err != nil {
		panic(err)
	}
	return &Profile{
		Name:     "webserver",
		Alphabet: a,
		Phases: []Phase{
			{
				Name:       "serve",
				MeanLength: 600,
				Blocks: []Block{
					{Symbols: syms(0, 1, 2, 3, 4, 5, 6, 7, 13, 14, 15), Weight: 55}, // static hit
					{Symbols: syms(0, 1, 2, 3, 8, 9, 10, 11, 12, 13, 14, 16), Weight: 18},
					{Symbols: syms(0, 1, 2, 3, 4, 13, 14, 16), Weight: 10}, // 404-ish
					{Symbols: syms(0, 1, 2, 3, 8, 9, 10, 10, 11, 12, 13, 14, 15), Weight: 5},
				},
				Next: []int{0, 0, 0, 1},
			},
			{
				Name:       "housekeep",
				MeanLength: 30,
				Blocks: []Block{
					{Symbols: syms(17, 14), Weight: 8},
					{Symbols: syms(18, 14), Weight: 3},
					{Symbols: syms(19, 2, 14), Weight: 1},
				},
				Next: []int{0, 0, 0, 0, 0, 2},
			},
			{
				Name:       "recover",
				MeanLength: 10,
				Blocks: []Block{
					{Symbols: syms(20, 21, 14), Weight: 3},
					{Symbols: syms(22, 14, 23), Weight: 1}, // rare panic path
				},
				Next: []int{0},
			},
		},
	}
}

// ShellProfile models an interactive user session over a 16-command
// repertoire: bursts of per-task commands with occasional context switches,
// the data shape of the Lane & Brodley masquerade work.
func ShellProfile() *Profile {
	a, err := alphabet.WithNames([]string{
		"cd", "ls", "cat", "vi", "make", "gcc", "run", "grep",
		"cp", "mv", "rm", "man", "mail", "ps", "kill", "logout",
	})
	if err != nil {
		panic(err)
	}
	return &Profile{
		Name:     "shell",
		Alphabet: a,
		Phases: []Phase{
			{
				Name:       "edit-compile",
				MeanLength: 120,
				Blocks: []Block{
					{Symbols: syms(3, 4, 5, 6), Weight: 30}, // vi make gcc run
					{Symbols: syms(3, 4, 6), Weight: 15},
					{Symbols: syms(7, 2, 3), Weight: 8}, // grep cat vi
					{Symbols: syms(1, 2), Weight: 10},   // ls cat
				},
				Next: []int{0, 0, 1, 2},
			},
			{
				Name:       "file-admin",
				MeanLength: 40,
				Blocks: []Block{
					{Symbols: syms(0, 1, 8, 9), Weight: 10}, // cd ls cp mv
					{Symbols: syms(0, 1, 10), Weight: 4},    // cd ls rm
					{Symbols: syms(11, 2), Weight: 2},       // man cat
				},
				Next: []int{0, 0, 2},
			},
			{
				Name:       "mail-and-procs",
				MeanLength: 25,
				Blocks: []Block{
					{Symbols: syms(12, 12, 2), Weight: 6}, // mail mail cat
					{Symbols: syms(13, 14), Weight: 1},    // ps kill (rare)
					{Symbols: syms(13, 1), Weight: 3},
				},
				Next: []int{0, 1},
			},
		},
	}
}
