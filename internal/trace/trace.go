// Package trace simulates quasi-natural process traces: streams that look
// like the system-call and shell-command data of the paper's Section 4.1
// references (UNM sendmail/lpr-style traces, masquerade-detection command
// histories) without requiring those datasets, which are not available
// offline. It substitutes for the paper's "natural data" in exactly one
// claim — that natural data "was found to be replete with minimal foreign
// sequences of varying lengths" — by exercising the identical scanning code
// path over data with realistic structure: per-process behavioral phases,
// nested loops, branches taken with skewed probabilities, and rare error
// paths.
//
// A Profile is a small stochastic grammar: a set of phases, each a loop over
// weighted action blocks, with phase transitions. Generated traces exhibit
// the heavy repetition plus occasional rare excursions that make minimal
// foreign sequences plentiful across held-out data.
package trace

import (
	"fmt"

	"adiv/internal/alphabet"
	"adiv/internal/rng"
	"adiv/internal/seq"
)

// Block is one weighted action block inside a phase: a fixed burst of
// symbols emitted atomically, chosen with probability proportional to
// Weight.
type Block struct {
	// Symbols is the burst emitted when the block fires.
	Symbols seq.Stream
	// Weight is the block's relative selection weight within its phase;
	// must be positive.
	Weight float64
}

// Phase is one behavioral phase of a simulated process: a loop that fires
// weighted blocks until the phase's length budget is spent, then hands over
// to the next phase.
type Phase struct {
	// Name labels the phase in diagnostics.
	Name string
	// Blocks are the weighted alternatives fired inside the phase.
	Blocks []Block
	// MeanLength is the expected number of symbols emitted before leaving
	// the phase; must be positive.
	MeanLength int
	// Next holds the indices of candidate successor phases, chosen
	// uniformly; an empty Next wraps to phase 0.
	Next []int
}

// Profile is a complete simulated process: an alphabet and its phases.
type Profile struct {
	// Name labels the profile ("sendmail-like", "shell-session", ...).
	Name string
	// Alphabet is the symbol domain the phases draw from.
	Alphabet *alphabet.Alphabet
	// Phases are the behavioral phases; generation starts in Phases[0].
	Phases []Phase
}

// Validate reports structural errors in the profile.
func (p *Profile) Validate() error {
	if p.Alphabet == nil {
		return fmt.Errorf("trace: profile %q has no alphabet", p.Name)
	}
	if len(p.Phases) == 0 {
		return fmt.Errorf("trace: profile %q has no phases", p.Name)
	}
	for i, ph := range p.Phases {
		if len(ph.Blocks) == 0 {
			return fmt.Errorf("trace: profile %q phase %d (%s) has no blocks", p.Name, i, ph.Name)
		}
		if ph.MeanLength <= 0 {
			return fmt.Errorf("trace: profile %q phase %d (%s) has non-positive mean length", p.Name, i, ph.Name)
		}
		for j, b := range ph.Blocks {
			if len(b.Symbols) == 0 {
				return fmt.Errorf("trace: profile %q phase %d block %d is empty", p.Name, i, j)
			}
			if b.Weight <= 0 {
				return fmt.Errorf("trace: profile %q phase %d block %d has non-positive weight", p.Name, i, j)
			}
			if err := p.Alphabet.Validate(b.Symbols); err != nil {
				return fmt.Errorf("trace: profile %q phase %d block %d: %w", p.Name, i, j, err)
			}
		}
		for _, n := range ph.Next {
			if n < 0 || n >= len(p.Phases) {
				return fmt.Errorf("trace: profile %q phase %d references phase %d of %d", p.Name, i, n, len(p.Phases))
			}
		}
	}
	return nil
}

// Generate emits approximately n symbols from the profile (generation stops
// at the first block boundary at or after n).
func (p *Profile) Generate(src *rng.Source, n int) (seq.Stream, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	out := make(seq.Stream, 0, n+16)
	phase := 0
	for len(out) < n {
		ph := &p.Phases[phase]
		budget := ph.MeanLength/2 + src.Intn(ph.MeanLength+1) // mean ≈ MeanLength
		emitted := 0
		for emitted < budget && len(out) < n {
			b := pickBlock(src, ph.Blocks)
			out = append(out, b.Symbols...)
			emitted += len(b.Symbols)
		}
		phase = nextPhase(src, ph, len(p.Phases))
	}
	return out, nil
}

func pickBlock(src *rng.Source, blocks []Block) *Block {
	total := 0.0
	for i := range blocks {
		total += blocks[i].Weight
	}
	u := src.Float64() * total
	acc := 0.0
	for i := range blocks {
		acc += blocks[i].Weight
		if u < acc {
			return &blocks[i]
		}
	}
	return &blocks[len(blocks)-1]
}

func nextPhase(src *rng.Source, ph *Phase, numPhases int) int {
	if len(ph.Next) == 0 {
		return 0
	}
	n := ph.Next[src.Intn(len(ph.Next))]
	if n >= numPhases {
		return 0
	}
	return n
}
