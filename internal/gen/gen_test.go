package gen

import (
	"strings"
	"testing"

	"adiv/internal/alphabet"
	"adiv/internal/seq"
)

// testConfig returns a shortened configuration; the structural properties
// under test hold at any length.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.TrainLen = 150_000
	cfg.BackgroundLen = 3_000
	return cfg
}

// sharedTraining caches one generated training stream for the package's
// heavier tests.
var sharedTraining = func() func(t *testing.T) (seq.Stream, *seq.Index) {
	var (
		stream seq.Stream
		ix     *seq.Index
	)
	return func(t *testing.T) (seq.Stream, *seq.Index) {
		t.Helper()
		if stream == nil {
			g, err := New(testConfig())
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			stream = g.Training()
			ix = seq.NewIndex(stream)
		}
		return stream, ix
	}
}()

func TestCanonicalMFSShapes(t *testing.T) {
	tests := []struct {
		size int
		want string
	}{
		{2, "7 7"},
		{3, "7 0 7"},
		{5, "7 0 0 0 7"},
		{9, "7 0 0 0 0 0 0 0 7"},
	}
	a := alphabet.MustNew(AlphabetSize)
	for _, tt := range tests {
		m, err := CanonicalMFS(tt.size)
		if err != nil {
			t.Fatalf("CanonicalMFS(%d): %v", tt.size, err)
		}
		if got := a.Format(m); got != tt.want {
			t.Errorf("CanonicalMFS(%d) = %q, want %q", tt.size, got, tt.want)
		}
	}
	for _, bad := range []int{0, 1, 10, -1} {
		if _, err := CanonicalMFS(bad); err == nil {
			t.Errorf("CanonicalMFS(%d) succeeded", bad)
		}
	}
}

// TestCanonicalFamilyIsAntichain: no canonical MFS is a substring of
// another, the property that lets the motif set support all sizes at once.
func TestCanonicalFamilyIsAntichain(t *testing.T) {
	family := make(map[int]string)
	for size := MinAnomalySize; size <= MaxAnomalySize; size++ {
		m, err := CanonicalMFS(size)
		if err != nil {
			t.Fatal(err)
		}
		family[size] = string(m.Bytes())
	}
	for a, sa := range family {
		for b, sb := range family {
			if a != b && strings.Contains(sb, sa) {
				t.Errorf("canonical MFS of size %d is a substring of size %d", a, b)
			}
		}
	}
}

// TestNoMotifContainsAnyCanonicalMFS: emitting motifs must never realize a
// canonical MFS in the training stream.
func TestNoMotifContainsAnyCanonicalMFS(t *testing.T) {
	for size := MinAnomalySize; size <= MaxAnomalySize; size++ {
		m, err := CanonicalMFS(size)
		if err != nil {
			t.Fatal(err)
		}
		needle := string(m.Bytes())
		for _, motif := range Motifs() {
			if strings.Contains(string(motif.Bytes()), needle) {
				t.Errorf("motif %v contains canonical MFS of size %d", motif, size)
			}
		}
	}
}

func TestMotifsDeduplicated(t *testing.T) {
	motifs := Motifs()
	seen := make(map[string]bool)
	for _, m := range motifs {
		k := string(m.Bytes())
		if seen[k] {
			t.Errorf("duplicate motif %v", m)
		}
		seen[k] = true
		for _, s := range m {
			if s != 0 && s != 7 {
				t.Errorf("motif %v uses non-rare symbol %d", m, s)
			}
		}
	}
	// Sizes 2..9 contribute prefixes/suffixes of lengths 1..8; the size-2
	// prefix and suffix coincide ("7"), and the "7 0..." prefixes differ
	// from "0 ... 7" suffixes, so 15 distinct motifs result.
	if len(motifs) != 15 {
		t.Errorf("got %d motifs, want 15", len(motifs))
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"short training", func(c *Config) { c.TrainLen = 10 }},
		{"short background", func(c *Config) { c.BackgroundLen = 5 }},
		{"zero excursion", func(c *Config) { c.ExcursionProb = 0 }},
		{"excursion too large", func(c *Config) { c.ExcursionProb = 0.7 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Errorf("Validate accepted invalid config")
			}
			if _, err := New(cfg); err == nil {
				t.Errorf("New accepted invalid config")
			}
		})
	}
}

func TestTrainingDeterministic(t *testing.T) {
	g1, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	g2, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, b := g1.Training(), g2.Training()
	if len(a) != len(b) || len(a) != testConfig().TrainLen {
		t.Fatalf("lengths %d, %d, want %d", len(a), len(b), testConfig().TrainLen)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("training streams with equal seeds diverged at %d", i)
		}
	}
}

func TestTrainingAlphabetAndRareMass(t *testing.T) {
	training, _ := sharedTraining(t)
	a := alphabet.MustNew(AlphabetSize)
	if err := a.Validate(training); err != nil {
		t.Fatalf("training stream outside alphabet: %v", err)
	}
	rare := 0
	for _, s := range training {
		if s == 0 || s == 7 {
			rare++
		}
	}
	frac := float64(rare) / float64(len(training))
	if frac < 0.01 || frac > 0.03 {
		t.Errorf("rare-symbol mass = %.4f, want ≈0.02 (paper: ~2%%)", frac)
	}
}

// TestBackgroundIsClean: every window of the background, at every width up
// to the maximum detector window plus one, occurs (commonly) in training —
// the paper's requirement that background data contain no spurious foreign
// or rare sequences.
func TestBackgroundIsClean(t *testing.T) {
	training, ix := sharedTraining(t)
	_ = training
	g, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	background := g.Background()
	for width := 1; width <= MaxWindow+1; width++ {
		db, err := ix.DB(width)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i+width <= len(background); i++ {
			w := background[i : i+width]
			if !db.Contains(w) {
				t.Fatalf("width %d: background window at %d is foreign to training", width, i)
			}
			if db.IsRare(w, RareCutoff) {
				t.Fatalf("width %d: background window at %d is rare in training", width, i)
			}
		}
	}
}

// TestCanonicalMFSIsForeignAndMinimal: with respect to an actual generated
// training stream, every canonical MFS verifies foreign + minimal, and its
// proper parts are rare.
func TestCanonicalMFSIsForeignAndMinimal(t *testing.T) {
	_, ix := sharedTraining(t)
	for size := MinAnomalySize; size <= MaxAnomalySize; size++ {
		m, err := CanonicalMFS(size)
		if err != nil {
			t.Fatal(err)
		}
		minimal, err := ix.IsMinimalForeign(m)
		if err != nil {
			t.Fatal(err)
		}
		if !minimal {
			t.Errorf("canonical MFS of size %d is not minimal foreign in generated training data", size)
		}
		if size > 2 {
			db, err := ix.DB(size - 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, part := range []seq.Stream{m[:size-1], m[1:]} {
				if !db.IsRare(part, RareCutoff) {
					t.Errorf("size %d: part %v not rare (freq %.5f)", size, part, db.RelFreq(part))
				}
			}
		}
	}
}

func TestPureCyclePhase(t *testing.T) {
	s := PureCycle(14)
	cycle := Cycle()
	for i, sym := range s {
		if sym != cycle[i%len(cycle)] {
			t.Fatalf("position %d: %d, want %d", i, sym, cycle[i%len(cycle)])
		}
	}
}

func TestNoisyStreamsDiffer(t *testing.T) {
	g, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, b := g.Noisy(5000, 1), g.Noisy(5000, 2)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Errorf("noisy substreams 1 and 2 are identical")
	}
	// And the same substream is reproducible.
	c := g.Noisy(5000, 1)
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("noisy substream 1 not reproducible at %d", i)
		}
	}
}

func TestChainEntropyRateIsLow(t *testing.T) {
	g, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The evaluation chain is nearly deterministic: its only branching is
	// the rare excursion choice at the cycle end. Entropy stays well under
	// a tenth of a bit per symbol.
	h := g.Chain().EntropyRate()
	if h <= 0 || h > 0.1 {
		t.Errorf("generator entropy rate %v bits/symbol, want small positive", h)
	}
}

func TestChainStationaryMatchesEmpirical(t *testing.T) {
	training, _ := sharedTraining(t)
	g, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	pi := g.Chain().Stationary(10_000)
	// Aggregate stationary mass by emitted symbol and compare with the
	// empirical symbol frequencies of the training stream.
	sum := 0.0
	for _, p := range pi {
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("stationary distribution sums to %v", sum)
	}
	counts := make([]float64, AlphabetSize)
	for _, s := range training {
		counts[s]++
	}
	symMass := make([]float64, AlphabetSize)
	for state, p := range pi {
		symMass[g.emit[state]] += p
	}
	for sym := 0; sym < AlphabetSize; sym++ {
		emp := counts[sym] / float64(len(training))
		if diff := symMass[sym] - emp; diff > 0.01 || diff < -0.01 {
			t.Errorf("symbol %d: stationary mass %.4f vs empirical %.4f", sym, symMass[sym], emp)
		}
	}
}
