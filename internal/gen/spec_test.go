package gen

import (
	"encoding/json"
	"strings"
	"testing"

	"adiv/internal/seq"
)

func TestNewSpecValidation(t *testing.T) {
	tests := []struct {
		alphabet, cycle int
		wantErr         bool
	}{
		{8, 6, false},
		{32, 6, false},
		{8, 1, true},   // cycle too short
		{7, 6, true},   // no room for rare symbols
		{500, 6, true}, // alphabet too large
		{4, 2, false},
	}
	for _, tt := range tests {
		_, err := NewSpec(tt.alphabet, tt.cycle)
		if (err != nil) != tt.wantErr {
			t.Errorf("NewSpec(%d,%d) error = %v, wantErr %v", tt.alphabet, tt.cycle, err, tt.wantErr)
		}
	}
}

func TestSpecAccessors(t *testing.T) {
	s, err := NewSpec(32, 6)
	if err != nil {
		t.Fatal(err)
	}
	if s.AlphabetSize() != 32 {
		t.Errorf("AlphabetSize() = %d", s.AlphabetSize())
	}
	cycle := s.Cycle()
	if len(cycle) != 6 || cycle[0] != 1 || cycle[5] != 6 {
		t.Errorf("Cycle() = %v", cycle)
	}
	// Returned cycle is a copy.
	cycle[0] = 9
	if s.Cycle()[0] != 1 {
		t.Errorf("Cycle() aliases internal state")
	}
	m, err := s.CanonicalMFS(4)
	if err != nil {
		t.Fatal(err)
	}
	if m[0] != 31 || m[1] != 0 || m[2] != 0 || m[3] != 31 {
		t.Errorf("CanonicalMFS(4) = %v (alphabet 32)", m)
	}
}

func TestDefaultSpecMatchesPackageFunctions(t *testing.T) {
	s := DefaultSpec()
	if got, want := s.Cycle(), Cycle(); string(got.Bytes()) != string(want.Bytes()) {
		t.Errorf("spec cycle %v vs package cycle %v", got, want)
	}
	for size := MinAnomalySize; size <= MaxAnomalySize; size++ {
		a, err := s.CanonicalMFS(size)
		if err != nil {
			t.Fatal(err)
		}
		b, err := CanonicalMFS(size)
		if err != nil {
			t.Fatal(err)
		}
		if string(a.Bytes()) != string(b.Bytes()) {
			t.Errorf("size %d: spec %v vs package %v", size, a, b)
		}
	}
	if len(s.Motifs()) != len(Motifs()) {
		t.Errorf("motif counts differ")
	}
}

// TestSpecFamilyAntichain: the canonical family stays substring-free for a
// non-default spec.
func TestSpecFamilyAntichain(t *testing.T) {
	s, err := NewSpec(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	family := make(map[int]string)
	for size := MinAnomalySize; size <= MaxAnomalySize; size++ {
		m, err := s.CanonicalMFS(size)
		if err != nil {
			t.Fatal(err)
		}
		family[size] = string(m.Bytes())
	}
	for a, sa := range family {
		for b, sb := range family {
			if a != b && strings.Contains(sb, sa) {
				t.Errorf("size-%d MFS is a substring of size-%d", a, b)
			}
		}
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	orig, err := NewSpec(32, 5)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.AlphabetSize() != orig.AlphabetSize() {
		t.Errorf("alphabet %d, want %d", back.AlphabetSize(), orig.AlphabetSize())
	}
	if string(back.Cycle().Bytes()) != string(orig.Cycle().Bytes()) {
		t.Errorf("cycle %v, want %v", back.Cycle(), orig.Cycle())
	}
	mo, err := orig.CanonicalMFS(5)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := back.CanonicalMFS(5)
	if err != nil {
		t.Fatal(err)
	}
	if string(mo.Bytes()) != string(mb.Bytes()) {
		t.Errorf("canonical MFS changed across round trip")
	}
}

func TestSpecJSONRejectsCorrupt(t *testing.T) {
	for _, bad := range []string{
		`{"alphabetSize":0,"cycle":[1,2],"rareA":0,"rareB":1}`,
		`{"alphabetSize":8,"cycle":[1],"rareA":0,"rareB":7}`,
		`{"alphabetSize":8,"cycle":[1,9],"rareA":0,"rareB":7}`,
		`{"alphabetSize":8,"cycle":[1,2],"rareA":0,"rareB":9}`,
		`not json`,
	} {
		var s Spec
		if err := json.Unmarshal([]byte(bad), &s); err == nil {
			t.Errorf("corrupt spec %q accepted", bad)
		}
	}
}

// TestGeneratorWithCustomSpec: the full generation pipeline works under a
// larger alphabet and the canonical MFS verifies against the stream.
func TestGeneratorWithCustomSpec(t *testing.T) {
	spec, err := NewSpec(32, 6)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.TrainLen = 120_000
	cfg.Spec = &spec
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	train := g.Training()
	if err := g.Alphabet().Validate(train); err != nil {
		t.Fatalf("training outside alphabet: %v", err)
	}
	ix := seq.NewIndex(train)
	for _, size := range []int{2, 5, 9} {
		m, err := spec.CanonicalMFS(size)
		if err != nil {
			t.Fatal(err)
		}
		minimal, err := ix.IsMinimalForeign(m)
		if err != nil || !minimal {
			t.Errorf("size %d: canonical MFS not minimal foreign under alphabet 32: %v, %v", size, minimal, err)
		}
	}
}
