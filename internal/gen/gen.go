// Package gen synthesizes the evaluation data of Tan & Maxion (DSN 2005,
// Section 5.3–5.4.1): a Markov-model training stream over an 8-symbol
// alphabet in which 98% of the data is a repetition of a fixed 6-symbol
// common cycle and the remaining ~2% consists of rare sequences produced by
// a small amount of nondeterminism in the generation matrix, plus the clean
// background test data composed solely of common sequences.
//
// # Construction
//
// The generating Markov chain has one state per cycle position plus one
// state per position of each "excursion motif". From the last cycle state
// the chain either continues the cycle (probability 1-ε) or enters one of
// the motifs (probability ε, uniform over motifs), emits it in full, and
// resumes the cycle. Motifs are drawn from the rare symbols {0,7}, which the
// common cycle (1 2 3 4 5 6) never uses.
//
// The motif set is chosen so that the canonical minimal foreign sequence of
// every size AS in [2,9] is supported: for the canonical MFS m of size AS,
// the two proper (AS-1)-subsequences m[:AS-1] and m[1:] are motifs. This
// guarantees (a) every proper contiguous subsequence of m occurs in
// training, as a substring of an emitted motif, (b) m itself never occurs —
// the canonical MFS family is an antichain under the substring relation and
// motifs are flanked by cycle symbols — and (c) the injection of m directly
// after a cycle boundary produces only boundary sequences that exist in the
// training data (paper Section 5.4.2), because training contains m[:AS-1]
// and m[1:] in exactly that cycle context.
package gen

import (
	"fmt"

	"adiv/internal/alphabet"
	"adiv/internal/markov"
	"adiv/internal/obs"
	"adiv/internal/rng"
	"adiv/internal/seq"
)

// Paper-dictated constants.
const (
	// AlphabetSize is the training-data alphabet size (paper Section 5.3).
	AlphabetSize = 8
	// TrainLen is the paper's training-stream length of one million elements.
	TrainLen = 1_000_000
	// RareCutoff is the paper's rare-sequence definition: relative frequency
	// below 0.5% in the training data.
	RareCutoff = 0.005
	// MinAnomalySize and MaxAnomalySize bound the minimal-foreign-sequence
	// lengths evaluated (paper: "sizes 2 to 9").
	MinAnomalySize = 2
	MaxAnomalySize = 9
	// MinWindow and MaxWindow bound the detector-window lengths evaluated
	// (paper: "2 to 15").
	MinWindow = 2
	MaxWindow = 15
)

// Cycle returns the common 6-symbol cycle (1 2 3 4 5 6) whose repetition
// forms 98% of the training stream and 100% of the background test data
// (the paper's construction; see Spec for generalized ones).
func Cycle() seq.Stream {
	return DefaultSpec().Cycle()
}

// CanonicalMFS returns the canonical minimal foreign sequence of the given
// size with respect to the paper-spec training data:
//
//	size 2:  7 7
//	size k:  7 0^(k-2) 7   (k >= 3)
//
// The family is an antichain under the substring relation, so supporting the
// proper subsequences of one member in training never accidentally realizes
// another member.
func CanonicalMFS(size int) (seq.Stream, error) {
	return DefaultSpec().CanonicalMFS(size)
}

// Motifs returns the paper-spec excursion motif set: for every anomaly
// size, the two proper (size-1)-subsequences of the canonical MFS,
// deduplicated in a deterministic order.
func Motifs() []seq.Stream {
	return DefaultSpec().Motifs()
}

// Config parameterizes the data generator. The zero value is not useful;
// start from DefaultConfig.
type Config struct {
	// TrainLen is the number of symbols in the training stream.
	TrainLen int
	// BackgroundLen is the number of symbols in each background test stream.
	BackgroundLen int
	// ExcursionProb is the probability, at the end of each cycle, of
	// branching into a rare excursion motif instead of restarting the cycle.
	ExcursionProb float64
	// Seed seeds the deterministic generator.
	Seed uint64
	// Spec selects the data construction; nil uses the paper's DefaultSpec
	// (alphabet 8, 6-symbol cycle). Alternative specs support the
	// alphabet-size-invariance experiments.
	Spec *Spec
}

// spec resolves the configured construction, defaulting to the paper's.
func (c Config) spec() Spec {
	if c.Spec != nil {
		return *c.Spec
	}
	return DefaultSpec()
}

// DefaultConfig returns the paper-faithful configuration: a one-million-
// element training stream with ~2% rare content.
func DefaultConfig() Config {
	return Config{
		TrainLen:      TrainLen,
		BackgroundLen: 20_000,
		// With mean motif length 4.5 and cycle length 6, symbol mass from
		// excursions is ε·4.5/(6+ε·4.5); ε=0.0272 yields ≈2%.
		ExcursionProb: 0.0272,
		Seed:          20050628, // DSN 2005 conference date; any fixed value works
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.TrainLen < 10*len(c.spec().cycle) {
		return fmt.Errorf("gen: training length %d too short", c.TrainLen)
	}
	if c.BackgroundLen < MaxWindow*2 {
		return fmt.Errorf("gen: background length %d too short", c.BackgroundLen)
	}
	if c.ExcursionProb <= 0 || c.ExcursionProb >= 0.5 {
		return fmt.Errorf("gen: excursion probability %v outside (0, 0.5)", c.ExcursionProb)
	}
	return nil
}

// Generator produces the training stream, background streams, and noisy
// (rare-containing) streams from the paper's Markov model.
type Generator struct {
	cfg    Config
	spec   Spec
	chain  *markov.Chain
	emit   []alphabet.Symbol
	alpha  *alphabet.Alphabet
	motifs []seq.Stream
	reg    *obs.Registry
}

// Instrument records synthesis telemetry (per-stream spans under gen/*,
// the gen/symbols counter) into reg. A nil registry disables it (the
// default).
func (g *Generator) Instrument(reg *obs.Registry) { g.reg = reg }

// New constructs a Generator from cfg.
func New(cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	spec := cfg.spec()
	motifs := spec.Motifs()
	chain, emit, err := buildChain(spec, cfg.ExcursionProb, motifs)
	if err != nil {
		return nil, err
	}
	alpha, err := alphabet.New(spec.AlphabetSize())
	if err != nil {
		return nil, fmt.Errorf("gen: %w", err)
	}
	return &Generator{
		cfg:    cfg,
		spec:   spec,
		chain:  chain,
		emit:   emit,
		alpha:  alpha,
		motifs: motifs,
	}, nil
}

// buildChain expands cycle positions and motif positions into the state
// space of a first-order Markov chain with deterministic per-state symbol
// emission — the "Markov-model transition matrix" of the paper.
func buildChain(spec Spec, eps float64, motifs []seq.Stream) (*markov.Chain, []alphabet.Symbol, error) {
	cycle := spec.Cycle()
	nStates := len(cycle)
	motifStart := make([]int, len(motifs))
	for i, m := range motifs {
		motifStart[i] = nStates
		nStates += len(m)
	}
	emit := make([]alphabet.Symbol, nStates)
	for i, s := range cycle {
		emit[i] = s
	}
	for i, m := range motifs {
		copy(emit[motifStart[i]:], m)
	}

	trans := make([][]float64, nStates)
	for i := range trans {
		trans[i] = make([]float64, nStates)
	}
	// Cycle interior: deterministic progression.
	for i := 0; i < len(cycle)-1; i++ {
		trans[i][i+1] = 1
	}
	// Cycle end: restart with probability 1-ε, else enter a motif.
	last := len(cycle) - 1
	trans[last][0] = 1 - eps
	per := eps / float64(len(motifs))
	for i := range motifs {
		trans[last][motifStart[i]] = per
	}
	// Motif interiors: deterministic progression; motif ends resume the cycle.
	for i, m := range motifs {
		for j := 0; j < len(m)-1; j++ {
			trans[motifStart[i]+j][motifStart[i]+j+1] = 1
		}
		trans[motifStart[i]+len(m)-1][0] = 1
	}

	initial := make([]float64, nStates)
	initial[0] = 1
	chain, err := markov.NewChain(initial, trans)
	if err != nil {
		return nil, nil, fmt.Errorf("gen: building chain: %w", err)
	}
	return chain, emit, nil
}

// Alphabet returns the evaluation alphabet (size 8 under the paper spec).
func (g *Generator) Alphabet() *alphabet.Alphabet { return g.alpha }

// Spec returns the data construction the generator follows.
func (g *Generator) Spec() Spec { return g.spec }

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// Chain exposes the expanded-state generating chain, mainly for analysis and
// tests (stationary rare-symbol mass, likelihoods).
func (g *Generator) Chain() *markov.Chain { return g.chain }

// traced opens one of the generator's telemetry spans with an execution-trace
// span (category "corpus") on the main lane — synthesis always runs on the
// caller's goroutine, before any grid workers exist.
func (g *Generator) traced(name string) *obs.Span {
	sp := g.reg.SpanTraced(name, "corpus")
	sp.SetLane(obs.LaneMain)
	return sp
}

// Training generates the training stream: cfg.TrainLen symbols from the
// generating chain, seeded deterministically from cfg.Seed.
func (g *Generator) Training() seq.Stream {
	defer g.traced("gen/training").End()
	src := rng.New(g.cfg.Seed)
	return g.project(g.chain.Generate(src, g.cfg.TrainLen))
}

// Noisy generates a stream of n symbols from the same model as Training but
// from an independent substream of the seed; it contains naturally occurring
// rare sequences and is the substrate for the Section-7 false-alarm
// experiments.
func (g *Generator) Noisy(n int, stream uint64) seq.Stream {
	defer g.traced("gen/noisy").End()
	src := rng.New(g.cfg.Seed ^ (0x9E3779B97F4A7C15 * (stream + 1)))
	return g.project(g.chain.Generate(src, n))
}

// Background generates the clean background test data (paper Section
// 5.4.1): cfg.BackgroundLen symbols of pure cycle repetition, starting at
// cycle phase 0, containing no rare or foreign sequences of any width.
func (g *Generator) Background() seq.Stream {
	defer g.traced("gen/background").End()
	return g.spec.PureCycle(g.cfg.BackgroundLen)
}

// PureCycle returns n symbols of uninterrupted common-cycle repetition
// under the paper spec.
func PureCycle(n int) seq.Stream {
	return DefaultSpec().PureCycle(n)
}

// project maps a state stream from the expanded chain to emitted symbols.
func (g *Generator) project(states seq.Stream) seq.Stream {
	out := make(seq.Stream, len(states))
	for i, st := range states {
		out[i] = g.emit[st]
	}
	g.reg.Counter("gen/symbols").Add(int64(len(out)))
	return out
}
