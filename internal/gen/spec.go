package gen

import (
	"encoding/json"
	"fmt"

	"adiv/internal/alphabet"
	"adiv/internal/seq"
)

// Spec generalizes the evaluation-data construction beyond the paper's
// exact parameters: a common cycle over an arbitrary-size alphabet, with
// two designated rare symbols carrying the excursion motifs. The paper
// argues (Section 5.3) that "the alphabet size of the training data does
// not affect the synthesis of foreign sequences, nor does it affect a
// sequence-based detector's ability to detect foreign sequences"; Spec
// makes that claim testable by re-running the whole evaluation at other
// alphabet and cycle sizes (see the alphabet-invariance test at the
// repository root).
type Spec struct {
	alphabetSize int
	cycle        seq.Stream
	rareA, rareB alphabet.Symbol
}

// DefaultSpec returns the paper's construction: alphabet 8, common cycle
// 1 2 3 4 5 6, rare symbols 0 and 7.
func DefaultSpec() Spec {
	return Spec{
		alphabetSize: AlphabetSize,
		cycle:        seq.Stream{1, 2, 3, 4, 5, 6},
		rareA:        0,
		rareB:        7,
	}
}

// NewSpec returns a construction with the given alphabet size and cycle
// length: the cycle is 1..cycleLen, symbol 0 and the alphabet's last
// symbol carry the excursions. The alphabet must leave the last symbol
// outside the cycle (alphabetSize >= cycleLen+2) and the cycle must have
// at least two symbols.
func NewSpec(alphabetSize, cycleLen int) (Spec, error) {
	if cycleLen < 2 {
		return Spec{}, fmt.Errorf("gen: cycle length %d too short", cycleLen)
	}
	if alphabetSize < cycleLen+2 {
		return Spec{}, fmt.Errorf("gen: alphabet size %d leaves no rare symbols beside a %d-cycle", alphabetSize, cycleLen)
	}
	if alphabetSize > alphabet.MaxSize {
		return Spec{}, fmt.Errorf("gen: alphabet size %d exceeds maximum %d", alphabetSize, alphabet.MaxSize)
	}
	cycle := make(seq.Stream, cycleLen)
	for i := range cycle {
		cycle[i] = alphabet.Symbol(i + 1)
	}
	return Spec{
		alphabetSize: alphabetSize,
		cycle:        cycle,
		rareA:        0,
		rareB:        alphabet.Symbol(alphabetSize - 1),
	}, nil
}

// AlphabetSize returns the spec's alphabet size.
func (s Spec) AlphabetSize() int { return s.alphabetSize }

// Cycle returns a copy of the spec's common cycle.
func (s Spec) Cycle() seq.Stream { return s.cycle.Clone() }

// CanonicalMFS returns the spec's canonical minimal foreign sequence of
// the given size: b b for size 2 and b a^(size-2) b otherwise, over the
// spec's two rare symbols. The family is an antichain under the substring
// relation for any choice of distinct rare symbols.
func (s Spec) CanonicalMFS(size int) (seq.Stream, error) {
	if size < MinAnomalySize || size > MaxAnomalySize {
		return nil, fmt.Errorf("gen: anomaly size %d outside [%d,%d]", size, MinAnomalySize, MaxAnomalySize)
	}
	m := make(seq.Stream, size)
	m[0] = s.rareB
	m[size-1] = s.rareB
	for i := 1; i < size-1; i++ {
		m[i] = s.rareA
	}
	return m, nil
}

// Motifs returns the spec's excursion motif set: the two proper
// (size-1)-subsequences of each canonical MFS, deduplicated.
func (s Spec) Motifs() []seq.Stream {
	seen := make(map[string]bool, 2*(MaxAnomalySize-MinAnomalySize+1))
	var out []seq.Stream
	add := func(m seq.Stream) {
		k := string(m.Bytes())
		if !seen[k] {
			seen[k] = true
			out = append(out, m)
		}
	}
	for size := MinAnomalySize; size <= MaxAnomalySize; size++ {
		m, err := s.CanonicalMFS(size)
		if err != nil {
			// Unreachable: the loop stays within the valid range.
			panic(err)
		}
		add(m[:size-1].Clone())
		add(m[1:].Clone())
	}
	return out
}

// PureCycle returns n symbols of uninterrupted cycle repetition under the
// spec.
func (s Spec) PureCycle(n int) seq.Stream {
	out := make(seq.Stream, n)
	for i := range out {
		out[i] = s.cycle[i%len(s.cycle)]
	}
	return out
}

// MarshalJSON implements json.Marshaler so specs survive corpus
// persistence despite their unexported fields.
func (s Spec) MarshalJSON() ([]byte, error) {
	cycle := make([]int, len(s.cycle))
	for i, sym := range s.cycle {
		cycle[i] = int(sym)
	}
	return json.Marshal(map[string]interface{}{
		"alphabetSize": s.alphabetSize,
		"cycle":        cycle,
		"rareA":        int(s.rareA),
		"rareB":        int(s.rareB),
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *Spec) UnmarshalJSON(data []byte) error {
	var raw struct {
		AlphabetSize int   `json:"alphabetSize"`
		Cycle        []int `json:"cycle"`
		RareA        int   `json:"rareA"`
		RareB        int   `json:"rareB"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	if raw.AlphabetSize < 1 || raw.AlphabetSize > alphabet.MaxSize {
		return fmt.Errorf("gen: persisted spec alphabet size %d out of range", raw.AlphabetSize)
	}
	if len(raw.Cycle) < 2 {
		return fmt.Errorf("gen: persisted spec cycle of length %d", len(raw.Cycle))
	}
	cycle := make(seq.Stream, len(raw.Cycle))
	for i, v := range raw.Cycle {
		if v < 0 || v >= raw.AlphabetSize {
			return fmt.Errorf("gen: persisted spec cycle symbol %d outside alphabet", v)
		}
		cycle[i] = alphabet.Symbol(v)
	}
	if raw.RareA < 0 || raw.RareA >= raw.AlphabetSize || raw.RareB < 0 || raw.RareB >= raw.AlphabetSize {
		return fmt.Errorf("gen: persisted spec rare symbols (%d,%d) outside alphabet", raw.RareA, raw.RareB)
	}
	s.alphabetSize = raw.AlphabetSize
	s.cycle = cycle
	s.rareA = alphabet.Symbol(raw.RareA)
	s.rareB = alphabet.Symbol(raw.RareB)
	return nil
}
