package online

import (
	"errors"
	"sync"
)

// Pooling: a multi-tenant serving tier keeps one streaming component
// (Scorer, Alarmer, or VetoPipeline) per live tenant, and tenants churn —
// streams open, drain, and close by the thousand. Constructing a component
// is cheap once the training databases are cached, but not free (detector
// construction, model wiring, buffer allocation), so the serving tier
// recycles them through a free list.
//
// The pool's contract is strict because its failure mode is cross-tenant
// data leakage: a component handed out by Get carries NO state from its
// previous tenant — Put resets it before it joins the free list, so a
// recycled Scorer reports Seen() == 0, Recent() empty, and produces
// push-for-push the same responses a freshly constructed one would.
// online_test.go pins that with a recycled-vs-fresh bit-equality test.

// Resettable is the component contract the pool recycles: Reset must return
// the component to its just-constructed state (model retained, all
// per-stream state cleared).
type Resettable interface {
	Reset()
}

// Pool is a free list of per-tenant streaming components over a shared
// factory. Safe for concurrent use. The zero value is unusable; construct
// with NewPool.
type Pool[T Resettable] struct {
	mu      sync.Mutex
	factory func() (T, error)
	free    []T
	created int64
	reused  int64
}

// NewPool returns a pool that manufactures components with factory when the
// free list is empty. The factory typically closes over a shared read-only
// seq.Corpus so per-component training is a cache lookup, not a stream pass.
func NewPool[T Resettable](factory func() (T, error)) (*Pool[T], error) {
	if factory == nil {
		return nil, errors.New("online: nil pool factory")
	}
	return &Pool[T]{factory: factory}, nil
}

// Get returns a clean component: a recycled one from the free list (reset
// at Put time) or a freshly manufactured one.
func (p *Pool[T]) Get() (T, error) {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		x := p.free[n-1]
		var zero T
		p.free[n-1] = zero // don't retain beyond the hand-off
		p.free = p.free[:n-1]
		p.reused++
		p.mu.Unlock()
		return x, nil
	}
	p.created++
	p.mu.Unlock()
	return p.factory()
}

// Put resets the component and returns it to the free list. Resetting here
// rather than in Get means a component never sits in the pool carrying a
// previous tenant's stream state.
func (p *Pool[T]) Put(x T) {
	x.Reset()
	p.mu.Lock()
	p.free = append(p.free, x)
	p.mu.Unlock()
}

// Stats reports how many components were ever manufactured and how many
// Gets were satisfied from the free list.
func (p *Pool[T]) Stats() (created, reused int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.created, p.reused
}

// Idle returns the current free-list length.
func (p *Pool[T]) Idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}

// ScorerPool is a pool of per-tenant stream scorers.
type ScorerPool = Pool[*Scorer]

// NewScorerPool returns a pool of Scorers over the factory.
func NewScorerPool(factory func() (*Scorer, error)) (*ScorerPool, error) {
	return NewPool(factory)
}

// AlarmerPool is a pool of per-tenant thresholded alarmers.
type AlarmerPool = Pool[*Alarmer]

// NewAlarmerPool returns a pool of Alarmers over the factory.
func NewAlarmerPool(factory func() (*Alarmer, error)) (*AlarmerPool, error) {
	return NewPool(factory)
}

// PipelinePool is a pool of per-tenant veto pipelines.
type PipelinePool = Pool[*VetoPipeline]

// NewPipelinePool returns a pool of VetoPipelines over the factory.
func NewPipelinePool(factory func() (*VetoPipeline, error)) (*PipelinePool, error) {
	return NewPool(factory)
}
