package online

import (
	"testing"

	"adiv/internal/detector/stide"
	"adiv/internal/detector/tstide"
	"adiv/internal/seq"
)

// TestCorroborateFreshPrimaryAfterOlderEscalation is the regression test for
// the missed-escalation bug: when one push's veto window corroborates an
// older pending primary, the fresh primary alarm raised by the same push
// must still be checked against earlier veto windows. The old logic gated
// that check on len(escalated) == 0, so the fresh primary stayed pending
// and was later counted suppressed.
func TestCorroborateFreshPrimaryAfterOlderEscalation(t *testing.T) {
	p := &VetoPipeline{primaryExtent: 2, vetoExtent: 2}
	p.pending = []Alarm{{Position: 0}}
	p.vetoCovered = []int{10}

	// This push raises a primary at window 11 and a veto at window 1. The
	// veto corroborates the old pending alarm at 0 (windows [0,2) and
	// [1,3) overlap) but not the fresh primary at 11; the fresh primary
	// instead overlaps the earlier veto window at 10 ([11,13) vs [10,12)).
	escalated := p.corroborate(Alarm{Position: 11}, true, Alarm{Position: 1}, true)

	if len(escalated) != 2 {
		t.Fatalf("%d escalations, want 2 (old pending + fresh primary): %+v", len(escalated), escalated)
	}
	if escalated[0].Primary.Position != 0 || escalated[0].VetoPosition != 1 {
		t.Errorf("first escalation %+v, want pending alarm 0 corroborated by veto window 1", escalated[0])
	}
	if escalated[1].Primary.Position != 11 || escalated[1].VetoPosition != 10 {
		t.Errorf("second escalation %+v, want fresh primary 11 corroborated by veto window 10", escalated[1])
	}
	if len(p.pending) != 0 {
		t.Errorf("pending %+v after full corroboration, want empty", p.pending)
	}
}

// TestCorroborateSamePushDoubleAlarm checks the common same-push case: one
// symbol completes both a primary and a corroborating veto window, while the
// same veto window also corroborates an older pending alarm. Both
// escalations must surface from the single push.
func TestCorroborateSamePushDoubleAlarm(t *testing.T) {
	p := &VetoPipeline{primaryExtent: 3, vetoExtent: 3}
	p.pending = []Alarm{{Position: 4}}

	escalated := p.corroborate(Alarm{Position: 5}, true, Alarm{Position: 5}, true)

	if len(escalated) != 2 {
		t.Fatalf("%d escalations, want 2: %+v", len(escalated), escalated)
	}
	for _, e := range escalated {
		if e.VetoPosition != 5 {
			t.Errorf("escalation %+v corroborated by veto window %d, want 5", e, e.VetoPosition)
		}
	}
	if escalated[0].Primary.Position != 4 || escalated[1].Primary.Position != 5 {
		t.Errorf("escalated primaries %+v, want positions 4 and 5", escalated)
	}
	if len(p.pending) != 0 {
		t.Errorf("pending %+v, want empty", p.pending)
	}
}

// TestVetoPipelineSuppressedAccounting pins the Suppressed counter: primary
// alarms that expire uncorroborated are counted exactly once, and
// corroborated alarms are never counted.
func TestVetoPipelineSuppressedAccounting(t *testing.T) {
	var train seq.Stream
	for i := 0; i < 200; i++ {
		train = append(train, 0, 1, 2, 3)
	}
	train = append(train, 0, 3)
	for i := 0; i < 200; i++ {
		train = append(train, 0, 1, 2, 3)
	}
	primary, err := tstide.New(2, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	veto, err := stide.New(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := primary.Train(train); err != nil {
		t.Fatal(err)
	}
	if err := veto.Train(train); err != nil {
		t.Fatal(err)
	}
	pipe, err := NewVetoPipeline(primary, veto, 1, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Two rare-but-seen pairs (0 3) alarm the primary only; one foreign
	// pair (1 1) alarms both. Long normal tails push the stream past the
	// expiry horizon so the uncorroborated alarms settle.
	test := mk(0, 1, 2, 3, 0, 3, 0, 1, 2, 3, 0, 3, 0, 1, 2, 3, 1, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3)
	escalated, err := pipe.PushAll(test)
	if err != nil {
		t.Fatal(err)
	}
	if len(escalated) == 0 {
		t.Fatalf("foreign pair was not escalated")
	}
	if got := pipe.Suppressed(); got != 2 {
		t.Errorf("Suppressed() = %d, want 2 (the two rare-only alarms)", got)
	}
}
