// Package online adapts the batch detectors to streaming deployment: push
// one symbol at a time, receive the detector's response for each window as
// it completes — the shape a production intrusion-detection pipeline
// consumes, and the shape the paper's detectors originally ran in.
//
// The adapter maintains a sliding buffer of the detector's extent and
// scores it on every push, so a Scorer's output is element-for-element
// identical to scoring the whole stream in one batch call (a property the
// tests pin). Each push costs one extent-sized scoring call; for the
// detectors in this repository that is a handful of map lookups or a small
// matrix product.
package online

import (
	"errors"
	"fmt"
	"time"

	"adiv/internal/alphabet"
	"adiv/internal/detector"
	"adiv/internal/obs"
	"adiv/internal/seq"
)

// responseBins is the resolution of the streaming response-distribution
// histogram, matching the batch profile resolution.
const responseBins = 10

// responseRingLen is the capacity of the scorer's recent-response ring:
// enough context for a corroboration window or a status probe, small
// enough to live inline in the Scorer.
const responseRingLen = 64

// Scorer scores a symbol stream incrementally with a trained detector.
// It is not safe for concurrent use.
//
// When the detector offers the detector.WindowByteScorer fast path
// (captured once at construction, never re-asserted per push), the scorer
// maintains the sliding window directly in a pooled byte buffer and each
// steady-state push performs zero allocations: no response slice, no
// stream re-encoding, no interface re-boxing. Detectors without the fast
// path keep the batch-Score push path unchanged (retained verbatim as the
// reference in reference_test.go, which pins both paths response-for-
// response against it).
type Scorer struct {
	det    detector.Detector
	fast   detector.WindowByteScorer // nil: slow path via det.Score
	extent int
	buf    seq.Stream // slow-path sliding window
	bbuf   []byte     // fast-path byte-encoded sliding window
	seen   int

	// ring holds the most recent responses (newest at (ringN-1) mod len),
	// preallocated so recording a response never allocates.
	ring  [responseRingLen]float64
	ringN int

	// Telemetry handles; nil when uninstrumented (the default), costing a
	// single pointer test per push.
	symbols       *obs.Counter
	responses     *obs.Histogram
	lastResponse  *obs.Gauge
	pushLatency   *obs.Sketch  // per-push wall latency, seconds
	responsesQ    *obs.Sketch  // per-family response quantiles
	responseCount *obs.Counter // per-family responses, the watchdog's pulse
}

// Instrument records streaming telemetry into reg: the online/symbols
// pushed counter, the online/responses distribution histogram, the
// online/last_response live gauge (what a /metrics scrape of a long-lived
// streaming deployment reads as "the detector's current output"), and the
// per-family detection-quality sketches — online/push_latency/<family>
// (per-push wall latency in seconds) and online/responses_q/<family>
// (response quantiles) — plus the online/responses/<family> counter the
// silent-detector watchdog rule watches. A nil registry disables
// instrumentation. All telemetry preserves the zero-allocation
// steady-state push contract.
func (s *Scorer) Instrument(reg *obs.Registry) {
	if reg == nil {
		s.symbols, s.responses, s.lastResponse = nil, nil, nil
		s.pushLatency, s.responsesQ, s.responseCount = nil, nil, nil
		return
	}
	family := s.det.Name()
	s.symbols = reg.Counter("online/symbols")
	s.responses = reg.Histogram("online/responses", responseBins)
	s.lastResponse = reg.Gauge("online/last_response")
	s.pushLatency = reg.Sketch("online/push_latency/" + family)
	s.responsesQ = reg.Sketch("online/responses_q/" + family)
	s.responseCount = reg.Counter("online/responses/" + family)
}

// NewScorer wraps a trained detector. Training state is verified lazily on
// the first push (the detector interface exposes no trained-ness probe).
func NewScorer(det detector.Detector) (*Scorer, error) {
	if det == nil {
		return nil, errors.New("online: nil detector")
	}
	extent := det.Extent()
	if extent < 1 {
		return nil, fmt.Errorf("online: detector %s reports extent %d", det.Name(), extent)
	}
	s := &Scorer{
		det:    det,
		extent: extent,
	}
	if fast, ok := detector.AsWindowByteScorer(det); ok {
		s.fast = fast
		s.bbuf = make([]byte, 0, extent)
	} else {
		s.buf = make(seq.Stream, 0, extent)
	}
	return s, nil
}

// Detector returns the wrapped detector.
func (s *Scorer) Detector() detector.Detector { return s.det }

// Seen returns the number of symbols pushed since construction or Reset.
func (s *Scorer) Seen() int { return s.seen }

// Reset clears the sliding buffer and response ring, starting a new
// stream. The trained model is retained; everything per-stream — the
// sliding window, Seen, and the Recent ring — is cleared, so a Reset
// scorer is observationally identical to a freshly constructed one. This
// is the contract the multi-tenant serving tier's scorer pool relies on: a
// scorer recycled from one tenant to another must not leak the previous
// tenant's ring contents or Seen count. The ring slots are zeroed
// explicitly (not just the logical length) so even a future ring-reading
// bug cannot resurrect another tenant's responses.
func (s *Scorer) Reset() {
	s.buf = s.buf[:0]
	s.bbuf = s.bbuf[:0]
	s.seen = 0
	s.ringN = 0
	s.ring = [responseRingLen]float64{}
}

// record books a completed window's response into the ring and telemetry.
func (s *Scorer) record(r float64) {
	s.ring[s.ringN%responseRingLen] = r
	s.ringN++
	if s.responses != nil {
		s.responses.Observe(r)
		s.lastResponse.Set(r)
		s.responsesQ.Observe(r)
		s.responseCount.Inc()
	}
}

// Recent appends the most recent responses (up to responseRingLen, oldest
// first) to dst and returns it — the live tail a corroboration layer or a
// status probe reads without touching the push path. Recent reflects only
// the current stream: after Reset it returns nothing until new windows
// complete, and it can never surface responses recorded before the Reset
// (the multi-tenant recycling guarantee; see Reset).
func (s *Scorer) Recent(dst []float64) []float64 {
	n := s.ringN
	if n > responseRingLen {
		n = responseRingLen
	}
	for i := 0; i < n; i++ {
		dst = append(dst, s.ring[(s.ringN-n+i)%responseRingLen])
	}
	return dst
}

// Push feeds one symbol. Once the buffer holds a full extent, every push
// yields the response for the window ending at this symbol; ready is false
// during the initial fill. Instrumented scorers additionally observe the
// push's wall latency into the per-family latency sketch (time.Now and
// Sketch.Observe both allocate nothing, so the steady-state contract
// holds).
func (s *Scorer) Push(sym alphabet.Symbol) (response float64, ready bool, err error) {
	if s.pushLatency == nil {
		return s.push(sym)
	}
	start := time.Now()
	response, ready, err = s.push(sym)
	s.pushLatency.Observe(time.Since(start).Seconds())
	return response, ready, err
}

func (s *Scorer) push(sym alphabet.Symbol) (response float64, ready bool, err error) {
	s.seen++
	if s.symbols != nil {
		s.symbols.Inc()
	}
	if s.fast != nil {
		if len(s.bbuf) < s.extent {
			s.bbuf = append(s.bbuf, byte(sym))
			if len(s.bbuf) < s.extent {
				return 0, false, nil
			}
		} else {
			copy(s.bbuf, s.bbuf[1:])
			s.bbuf[s.extent-1] = byte(sym)
		}
		r, err := s.fast.ScoreWindowBytes(s.bbuf)
		if err != nil {
			return 0, false, fmt.Errorf("online: %w", err)
		}
		s.record(r)
		return r, true, nil
	}
	if len(s.buf) < s.extent {
		s.buf = append(s.buf, sym)
		if len(s.buf) < s.extent {
			return 0, false, nil
		}
	} else {
		copy(s.buf, s.buf[1:])
		s.buf[s.extent-1] = sym
	}
	responses, err := s.det.Score(s.buf)
	if err != nil {
		return 0, false, fmt.Errorf("online: %w", err)
	}
	if len(responses) != 1 {
		return 0, false, fmt.Errorf("online: scoring one window yielded %d responses", len(responses))
	}
	s.record(responses[0])
	return responses[0], true, nil
}

// PushAll feeds a whole slice and returns the responses produced, one per
// completed window — identical to the detector's batch Score of the same
// data when the Scorer starts empty. The response slice is sized once on
// the first completed window, the call's only allocation on the fast path.
func (s *Scorer) PushAll(stream seq.Stream) ([]float64, error) {
	var out []float64
	for i, sym := range stream {
		r, ready, err := s.Push(sym)
		if err != nil {
			return nil, err
		}
		if ready {
			if out == nil {
				out = make([]float64, 0, len(stream)-i)
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// Alarm is one thresholded streaming alarm.
type Alarm struct {
	// Position is the index (in pushed symbols, 0-based) of the first
	// element of the alarming window.
	Position int
	// Response is the response that crossed the threshold.
	Response float64
}

// Alarmer thresholds a Scorer's responses into an alarm stream.
// It is not safe for concurrent use.
type Alarmer struct {
	scorer    *Scorer
	threshold float64
	alarms    *obs.Counter

	// Per-family telemetry and the structured alert journal; all nil when
	// disabled (alarms are rare, so journaling sits off the hot path).
	alarmsFam    *obs.Counter
	interArrival *obs.Sketch // symbol-position gaps between alarms
	lastAlarmPos int
	journal      *obs.AlertJournal

	// tenant stamps journal records in multi-tenant deployments; empty in
	// the single-stream drivers, which keeps their journal lines unchanged.
	tenant string
}

// Instrument records streaming telemetry into reg: the underlying scorer's
// metrics, the online/alarms raised counter (plus the per-family
// online/alarms/<family> counter the saturation watchdog rules watch), the
// deployed detection threshold as the online/threshold gauge, and the
// online/alarm_interarrival/<family> sketch of symbol-position gaps
// between consecutive alarms (position gaps, not wall time, so the
// distribution is deterministic for a given stream). A nil registry
// disables instrumentation.
func (a *Alarmer) Instrument(reg *obs.Registry) {
	a.scorer.Instrument(reg)
	if reg == nil {
		a.alarms, a.alarmsFam, a.interArrival = nil, nil, nil
		return
	}
	family := a.scorer.det.Name()
	a.alarms = reg.Counter("online/alarms")
	a.alarmsFam = reg.Counter("online/alarms/" + family)
	a.interArrival = reg.Sketch("online/alarm_interarrival/" + family)
	reg.Gauge("online/threshold").Set(a.threshold)
}

// SetJournal attaches a structured alert journal: every alarm this Alarmer
// raises is appended as a DispositionRaised record. A nil journal detaches.
func (a *Alarmer) SetJournal(j *obs.AlertJournal) {
	a.journal = j
}

// SetTenant sets the tenant identity stamped into every journal record this
// Alarmer appends — a multi-tenant serving tier journals all tenants into
// one file and the tenant field is what keeps their alert streams apart.
// Empty (the default) omits the field, preserving the single-stream
// drivers' journal shape. A pooled Alarmer keeps its tenant until re-set,
// so the serving tier re-stamps on every pool Get.
func (a *Alarmer) SetTenant(tenant string) {
	a.tenant = tenant
}

// Scorer returns the underlying stream scorer (for Seen/Recent probes).
func (a *Alarmer) Scorer() *Scorer { return a.scorer }

// Threshold returns the deployed detection threshold.
func (a *Alarmer) Threshold() float64 { return a.threshold }

// NewAlarmer wraps a trained detector with a detection threshold.
func NewAlarmer(det detector.Detector, threshold float64) (*Alarmer, error) {
	if threshold <= 0 || threshold > 1 {
		return nil, fmt.Errorf("online: threshold %v outside (0,1]", threshold)
	}
	scorer, err := NewScorer(det)
	if err != nil {
		return nil, err
	}
	return &Alarmer{scorer: scorer, threshold: threshold, lastAlarmPos: -1}, nil
}

// Push feeds one symbol and reports whether it completed an alarming
// window; if so the returned alarm describes it.
func (a *Alarmer) Push(sym alphabet.Symbol) (Alarm, bool, error) {
	_, _, alarm, raised, err := a.PushScored(sym)
	return alarm, raised, err
}

// PushScored feeds one symbol and returns both the window response (the
// serving tier replies with responses whether or not they alarm) and any
// alarm it raised. ready is false during the initial window fill.
func (a *Alarmer) PushScored(sym alphabet.Symbol) (response float64, ready bool, alarm Alarm, raised bool, err error) {
	r, ready, err := a.scorer.Push(sym)
	if err != nil || !ready || r < a.threshold {
		return r, ready, Alarm{}, false, err
	}
	alarm = Alarm{
		Position: a.scorer.Seen() - a.scorer.extent,
		Response: r,
	}
	if a.alarms != nil {
		a.alarms.Inc()
		a.alarmsFam.Inc()
		if a.lastAlarmPos >= 0 {
			a.interArrival.Observe(float64(alarm.Position - a.lastAlarmPos))
		}
	}
	a.lastAlarmPos = alarm.Position
	a.journal.Append(obs.AlertRecord{
		Tenant:      a.tenant,
		Position:    alarm.Position,
		Detector:    a.scorer.det.Name(),
		Score:       alarm.Response,
		Threshold:   a.threshold,
		Disposition: obs.DispositionRaised,
	})
	return r, true, alarm, true, nil
}

// PushAll feeds a slice and collects the alarms raised.
func (a *Alarmer) PushAll(stream seq.Stream) ([]Alarm, error) {
	var out []Alarm
	for _, sym := range stream {
		alarm, raised, err := a.Push(sym)
		if err != nil {
			return nil, err
		}
		if raised {
			out = append(out, alarm)
		}
	}
	return out, nil
}

// Reset clears the underlying scorer and the alarm inter-arrival state.
func (a *Alarmer) Reset() {
	a.scorer.Reset()
	a.lastAlarmPos = -1
}
