// Package online adapts the batch detectors to streaming deployment: push
// one symbol at a time, receive the detector's response for each window as
// it completes — the shape a production intrusion-detection pipeline
// consumes, and the shape the paper's detectors originally ran in.
//
// The adapter maintains a sliding buffer of the detector's extent and
// scores it on every push, so a Scorer's output is element-for-element
// identical to scoring the whole stream in one batch call (a property the
// tests pin). Each push costs one extent-sized scoring call; for the
// detectors in this repository that is a handful of map lookups or a small
// matrix product.
package online

import (
	"errors"
	"fmt"

	"adiv/internal/alphabet"
	"adiv/internal/detector"
	"adiv/internal/obs"
	"adiv/internal/seq"
)

// responseBins is the resolution of the streaming response-distribution
// histogram, matching the batch profile resolution.
const responseBins = 10

// Scorer scores a symbol stream incrementally with a trained detector.
// It is not safe for concurrent use.
type Scorer struct {
	det    detector.Detector
	extent int
	buf    seq.Stream
	seen   int

	// Telemetry handles; nil when uninstrumented (the default), costing a
	// single pointer test per push.
	symbols      *obs.Counter
	responses    *obs.Histogram
	lastResponse *obs.Gauge
}

// Instrument records streaming telemetry into reg: the online/symbols
// pushed counter, the online/responses distribution histogram, and the
// online/last_response live gauge (what a /metrics scrape of a long-lived
// streaming deployment reads as "the detector's current output"). A nil
// registry disables instrumentation.
func (s *Scorer) Instrument(reg *obs.Registry) {
	if reg == nil {
		s.symbols, s.responses, s.lastResponse = nil, nil, nil
		return
	}
	s.symbols = reg.Counter("online/symbols")
	s.responses = reg.Histogram("online/responses", responseBins)
	s.lastResponse = reg.Gauge("online/last_response")
}

// NewScorer wraps a trained detector. Training state is verified lazily on
// the first push (the detector interface exposes no trained-ness probe).
func NewScorer(det detector.Detector) (*Scorer, error) {
	if det == nil {
		return nil, errors.New("online: nil detector")
	}
	extent := det.Extent()
	if extent < 1 {
		return nil, fmt.Errorf("online: detector %s reports extent %d", det.Name(), extent)
	}
	return &Scorer{
		det:    det,
		extent: extent,
		buf:    make(seq.Stream, 0, extent),
	}, nil
}

// Detector returns the wrapped detector.
func (s *Scorer) Detector() detector.Detector { return s.det }

// Seen returns the number of symbols pushed since construction or Reset.
func (s *Scorer) Seen() int { return s.seen }

// Reset clears the sliding buffer, starting a new stream.
func (s *Scorer) Reset() {
	s.buf = s.buf[:0]
	s.seen = 0
}

// Push feeds one symbol. Once the buffer holds a full extent, every push
// yields the response for the window ending at this symbol; ready is false
// during the initial fill.
func (s *Scorer) Push(sym alphabet.Symbol) (response float64, ready bool, err error) {
	s.seen++
	if s.symbols != nil {
		s.symbols.Inc()
	}
	if len(s.buf) < s.extent {
		s.buf = append(s.buf, sym)
	} else {
		copy(s.buf, s.buf[1:])
		s.buf[s.extent-1] = sym
	}
	if len(s.buf) < s.extent {
		return 0, false, nil
	}
	responses, err := s.det.Score(s.buf)
	if err != nil {
		return 0, false, fmt.Errorf("online: %w", err)
	}
	if len(responses) != 1 {
		return 0, false, fmt.Errorf("online: scoring one window yielded %d responses", len(responses))
	}
	if s.responses != nil {
		s.responses.Observe(responses[0])
		s.lastResponse.Set(responses[0])
	}
	return responses[0], true, nil
}

// PushAll feeds a whole slice and returns the responses produced, one per
// completed window — identical to the detector's batch Score of the same
// data when the Scorer starts empty.
func (s *Scorer) PushAll(stream seq.Stream) ([]float64, error) {
	var out []float64
	for _, sym := range stream {
		r, ready, err := s.Push(sym)
		if err != nil {
			return nil, err
		}
		if ready {
			out = append(out, r)
		}
	}
	return out, nil
}

// Alarm is one thresholded streaming alarm.
type Alarm struct {
	// Position is the index (in pushed symbols, 0-based) of the first
	// element of the alarming window.
	Position int
	// Response is the response that crossed the threshold.
	Response float64
}

// Alarmer thresholds a Scorer's responses into an alarm stream.
// It is not safe for concurrent use.
type Alarmer struct {
	scorer    *Scorer
	threshold float64
	alarms    *obs.Counter
}

// Instrument records streaming telemetry into reg: the underlying scorer's
// metrics, the online/alarms raised counter, and the deployed detection
// threshold as the online/threshold gauge, so a /metrics scrape shows the
// operating point alongside the alarm counts it produced. A nil registry
// disables instrumentation.
func (a *Alarmer) Instrument(reg *obs.Registry) {
	a.scorer.Instrument(reg)
	if reg == nil {
		a.alarms = nil
		return
	}
	a.alarms = reg.Counter("online/alarms")
	reg.Gauge("online/threshold").Set(a.threshold)
}

// NewAlarmer wraps a trained detector with a detection threshold.
func NewAlarmer(det detector.Detector, threshold float64) (*Alarmer, error) {
	if threshold <= 0 || threshold > 1 {
		return nil, fmt.Errorf("online: threshold %v outside (0,1]", threshold)
	}
	scorer, err := NewScorer(det)
	if err != nil {
		return nil, err
	}
	return &Alarmer{scorer: scorer, threshold: threshold}, nil
}

// Push feeds one symbol and reports whether it completed an alarming
// window; if so the returned alarm describes it.
func (a *Alarmer) Push(sym alphabet.Symbol) (Alarm, bool, error) {
	r, ready, err := a.scorer.Push(sym)
	if err != nil || !ready || r < a.threshold {
		return Alarm{}, false, err
	}
	if a.alarms != nil {
		a.alarms.Inc()
	}
	return Alarm{
		Position: a.scorer.Seen() - a.scorer.extent,
		Response: r,
	}, true, nil
}

// PushAll feeds a slice and collects the alarms raised.
func (a *Alarmer) PushAll(stream seq.Stream) ([]Alarm, error) {
	var out []Alarm
	for _, sym := range stream {
		alarm, raised, err := a.Push(sym)
		if err != nil {
			return nil, err
		}
		if raised {
			out = append(out, alarm)
		}
	}
	return out, nil
}

// Reset clears the underlying scorer.
func (a *Alarmer) Reset() { a.scorer.Reset() }
