package online

import (
	"bytes"
	"strings"
	"testing"

	"adiv/internal/detector"
	"adiv/internal/detector/stide"
	"adiv/internal/detector/tstide"
	"adiv/internal/obs"
	"adiv/internal/seq"
)

// vetoTrainStream is the pipeline fixture stream: a 0 1 2 3 cycle with one
// rare "0 3" burst, so t-stide alarms on both rare and foreign pairs while
// stide alarms on foreign only.
func vetoTrainStream() seq.Stream {
	var train seq.Stream
	for i := 0; i < 200; i++ {
		train = append(train, 0, 1, 2, 3)
	}
	train = append(train, 0, 3)
	for i := 0; i < 200; i++ {
		train = append(train, 0, 1, 2, 3)
	}
	return train
}

func trainedVetoPipeline(t *testing.T) *VetoPipeline {
	t.Helper()
	primary, err := tstide.New(2, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	veto, err := stide.New(2)
	if err != nil {
		t.Fatal(err)
	}
	train := vetoTrainStream()
	if err := primary.Train(train); err != nil {
		t.Fatal(err)
	}
	if err := veto.Train(train); err != nil {
		t.Fatal(err)
	}
	pipe, err := NewVetoPipeline(primary, veto, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return pipe
}

// vetoTestStream exercises all three dispositions: (0,3) is rare-but-seen
// (primary only → suppressed), (3,1) and (1,1) are foreign (both detectors
// → escalated).
func vetoTestStream() seq.Stream {
	return mk(0, 1, 2, 3, 0, 3, 0, 1, 2, 3, 1, 1, 2, 3,
		0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3)
}

// TestVetoPipelineNilMetrics pins the never-instrumented path: a pipeline
// on which Instrument was never called pushes through all-nil telemetry
// handles without panicking and produces the same escalations.
func TestVetoPipelineNilMetrics(t *testing.T) {
	pipe := trainedVetoPipeline(t)
	escalated, err := pipe.PushAll(vetoTestStream())
	if err != nil {
		t.Fatal(err)
	}
	if len(escalated) != 2 {
		t.Fatalf("%d escalations, want 2: %+v", len(escalated), escalated)
	}
	if pipe.Suppressed() != 1 {
		t.Errorf("suppressed = %d, want 1", pipe.Suppressed())
	}
	// Explicit detach is also a supported no-op path.
	pipe2 := trainedVetoPipeline(t)
	pipe2.Instrument(obs.New())
	pipe2.Instrument(nil)
	pipe2.SetJournal(nil)
	if _, err := pipe2.PushAll(vetoTestStream()); err != nil {
		t.Fatal(err)
	}
}

// TestVetoPipelineJournalDispositions: the journal carries the full
// disposition history — the primary's raised records plus the pipeline's
// escalated/suppressed resolutions — and the accounting ties out against
// the pipeline's own counters.
func TestVetoPipelineJournalDispositions(t *testing.T) {
	pipe := trainedVetoPipeline(t)
	reg := obs.New()
	pipe.Instrument(reg)
	var buf bytes.Buffer
	j := obs.NewAlertJournal(&buf)
	pipe.SetJournal(j)

	escalated, err := pipe.PushAll(vetoTestStream())
	if err != nil {
		t.Fatal(err)
	}
	if len(escalated) != 2 {
		t.Fatalf("%d escalations, want 2", len(escalated))
	}

	recs, err := obs.ReadAlerts(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	byDisp := map[string][]obs.AlertRecord{}
	for _, rec := range recs {
		if rec.Detector != "tstide" {
			t.Errorf("journaled detector = %q, want tstide (veto must not journal)", rec.Detector)
		}
		if rec.Threshold != 1 {
			t.Errorf("journaled threshold = %v, want 1", rec.Threshold)
		}
		byDisp[rec.Disposition] = append(byDisp[rec.Disposition], rec)
	}
	raised := len(byDisp[obs.DispositionRaised])
	esc := len(byDisp[obs.DispositionEscalated])
	sup := len(byDisp[obs.DispositionSuppressed])
	if esc != 2 || sup != pipe.Suppressed() {
		t.Errorf("journal: %d escalated (want 2), %d suppressed (want %d)", esc, sup, pipe.Suppressed())
	}
	// raised = escalated + suppressed + pending.
	pending := raised - esc - sup
	if pending < 0 {
		t.Errorf("disposition accounting broken: raised %d < escalated %d + suppressed %d", raised, esc, sup)
	}
	if got := reg.Counter("online/pipeline/primary_alarms").Value(); got != int64(raised) {
		t.Errorf("primary_alarms counter = %d, journal raised = %d", got, raised)
	}
	// Escalated records carry the escalated alarms' positions and scores.
	wantPos := map[int]bool{}
	for _, e := range escalated {
		wantPos[e.Primary.Position] = true
	}
	for _, rec := range byDisp[obs.DispositionEscalated] {
		if !wantPos[rec.Position] {
			t.Errorf("escalated journal position %d not in %v", rec.Position, wantPos)
		}
		if rec.Score < 1 {
			t.Errorf("escalated record score = %v, want >= threshold 1", rec.Score)
		}
	}
	// The journal's dispositions double as watchdog/diagnose input: the
	// offline analysis must see the same split.
	rep := obs.AnalyzeAlerts(recs, obs.AlertAnalysisOptions{})
	if len(rep.Families) != 1 || rep.Families[0].Detector != "tstide" {
		t.Fatalf("families = %+v", rep.Families)
	}
	f := rep.Families[0]
	if f.Raised != raised || f.Escalated != esc || f.Suppressed != sup || f.Pending != pending {
		t.Errorf("analysis = %+v, want raised %d escalated %d suppressed %d pending %d",
			f, raised, esc, sup, pending)
	}
}

// TestScorerFamilyTelemetry pins the per-family sketch/counter names the
// streaming layer registers and their consistency with the shared metrics.
func TestScorerFamilyTelemetry(t *testing.T) {
	det := trained(t, func() (detector.Detector, error) { return stide.New(2) })
	alarmer, err := NewAlarmer(det, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	alarmer.Instrument(reg)
	// Foreign pairs: (3,1) at window 3, (1,1) at 4, then (3,3) at 7 and 8 —
	// alarm positions 3, 4, 7, 8, inter-arrival gaps 1, 3, 1.
	if _, err := alarmer.PushAll(mk(0, 1, 2, 3, 1, 1, 2, 3, 3, 3)); err != nil {
		t.Fatal(err)
	}
	snaps := reg.SketchSnapshots()
	lat, ok := snaps["online/push_latency/stide"]
	if !ok || lat.Count != 10 {
		t.Errorf("push latency sketch = %+v", lat)
	}
	if lat.Count > 0 && (lat.P50 < 0 || lat.Max <= 0) {
		t.Errorf("push latency stats = %+v", lat)
	}
	respQ, ok := snaps["online/responses_q/stide"]
	if !ok || respQ.Count != 9 {
		t.Errorf("responses_q sketch = %+v (9 completed windows expected)", respQ)
	}
	if got := reg.Counter("online/responses/stide").Value(); got != 9 {
		t.Errorf("online/responses/stide = %d, want 9", got)
	}
	if got := reg.Counter("online/alarms/stide").Value(); got != 4 {
		t.Errorf("online/alarms/stide = %d, want 4", got)
	}
	ia, ok := snaps["online/alarm_interarrival/stide"]
	if !ok || ia.Count != 3 {
		t.Fatalf("inter-arrival sketch = %+v (gaps 1, 3, 1 expected)", ia)
	}
	if ia.Min != 1 || ia.Max != 3 {
		t.Errorf("inter-arrival extremes = %+v, want min 1 max 3", ia)
	}
	// The per-family counter totals match the shared ones.
	if shared, fam := reg.Counter("online/alarms").Value(), reg.Counter("online/alarms/stide").Value(); shared != fam {
		t.Errorf("shared alarms %d != family alarms %d", shared, fam)
	}
}

// TestAlarmerJournalRaised: a bare Alarmer (no pipeline) journals raised
// records with its own family and threshold.
func TestAlarmerJournalRaised(t *testing.T) {
	det := trained(t, func() (detector.Detector, error) { return stide.New(2) })
	alarmer, err := NewAlarmer(det, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	alarmer.SetJournal(obs.NewAlertJournal(&buf))
	alarms, err := alarmer.PushAll(mk(0, 1, 2, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(alarms) != 1 {
		t.Fatalf("%d alarms, want 1", len(alarms))
	}
	raw := buf.String()
	recs, err := obs.ReadAlerts(strings.NewReader(raw))
	if err != nil || len(recs) != 1 {
		t.Fatalf("journal: %d recs, err %v", len(recs), err)
	}
	rec := recs[0]
	if rec.Detector != "stide" || rec.Disposition != obs.DispositionRaised ||
		rec.Position != alarms[0].Position || rec.Score != alarms[0].Response || rec.Threshold != 0.75 {
		t.Errorf("journal record = %+v, alarm = %+v", rec, alarms[0])
	}
	if !strings.Contains(raw, `"schema":"adiv.alerts/v1"`) {
		t.Errorf("journal line missing schema: %s", raw)
	}
}

// TestPipelinePushLatencySketch: instrumenting the pipeline registers the
// whole-pipeline latency sketch and it observes one value per push.
func TestPipelinePushLatencySketch(t *testing.T) {
	pipe := trainedVetoPipeline(t)
	reg := obs.New()
	pipe.Instrument(reg)
	stream := vetoTestStream()
	if _, err := pipe.PushAll(stream); err != nil {
		t.Fatal(err)
	}
	lat := reg.SketchSnapshots()["online/pipeline/push_latency"]
	if lat.Count != int64(len(stream)) {
		t.Errorf("pipeline push latency count = %d, want %d", lat.Count, len(stream))
	}
	esc := reg.SketchSnapshots()["online/pipeline/escalation_interarrival"]
	if esc.Count != 1 {
		t.Errorf("escalation inter-arrival count = %d, want 1 (two escalations, one gap)", esc.Count)
	}
}

// TestInstrumentedPushAllocs extends the steady-state zero-allocation
// contract to the thresholding and pipeline layers: with full telemetry
// (sketches included) and a journal attached, a non-alarming push
// allocates nothing — journal appends happen only when alarms fire.
func TestInstrumentedPushAllocs(t *testing.T) {
	det := trained(t, func() (detector.Detector, error) { return stide.New(2) })
	alarmer, err := NewAlarmer(det, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	alarmer.Instrument(obs.New())
	alarmer.SetJournal(obs.NewAlertJournal(nil))
	// Warm past the window fill, on in-training symbols (no alarms).
	warm := trainStream()
	if _, err := alarmer.PushAll(warm); err != nil {
		t.Fatal(err)
	}
	syms := mk(0, 1, 2, 3)
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		if _, raised, err := alarmer.Push(syms[i%4]); err != nil || raised {
			t.Fatalf("unexpected alarm/err mid-guard: %v %v", raised, err)
		}
		i++
	})
	if allocs != 0 {
		t.Errorf("instrumented alarmer push allocated %.2f/op, want 0", allocs)
	}
}
