package online

import (
	"testing"

	"adiv/internal/detector"
	"adiv/internal/detector/markovdet"
	"adiv/internal/detector/stide"
	"adiv/internal/detector/tstide"
	"adiv/internal/ensemble"
	"adiv/internal/inject"
	"adiv/internal/seq"
)

func TestNewVetoPipelineValidation(t *testing.T) {
	det := trained(t, func() (detector.Detector, error) { return stide.New(2) })
	if _, err := NewVetoPipeline(det, det, 0, 1); err == nil {
		t.Errorf("primary threshold 0 accepted")
	}
	if _, err := NewVetoPipeline(det, det, 1, 2); err == nil {
		t.Errorf("veto threshold 2 accepted")
	}
}

func TestVetoPipelineEscalatesCorroborated(t *testing.T) {
	// Primary: t-stide (alarms on rare AND foreign); veto: stide (foreign
	// only). Training: cycle 0 1 2 3 with one rare burst "0 3".
	var train seq.Stream
	for i := 0; i < 200; i++ {
		train = append(train, 0, 1, 2, 3)
	}
	train = append(train, 0, 3)
	for i := 0; i < 200; i++ {
		train = append(train, 0, 1, 2, 3)
	}
	primary, err := tstide.New(2, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	veto, err := stide.New(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := primary.Train(train); err != nil {
		t.Fatal(err)
	}
	if err := veto.Train(train); err != nil {
		t.Fatal(err)
	}
	pipe, err := NewVetoPipeline(primary, veto, 1, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Test stream: normal cycle, the rare-but-seen pair (0 3), more
	// cycle, then a genuinely foreign pair (1 1).
	test := mk(0, 1, 2, 3, 0, 3, 0, 1, 2, 3, 1, 1, 2, 3)
	escalated, err := pipe.PushAll(test)
	if err != nil {
		t.Fatal(err)
	}
	// Foreign windows: (3,0)? occurs in training (cycle wrap). (0,3) rare
	// → primary only → suppressed. (3,1) foreign → both. (1,1) foreign →
	// both. (1,2) after? occurs. So escalations at positions 9 and 10.
	if len(escalated) != 2 {
		t.Fatalf("%d escalations, want 2: %+v", len(escalated), escalated)
	}
	if escalated[0].Primary.Position != 9 || escalated[1].Primary.Position != 10 {
		t.Errorf("escalated positions %+v, want windows 9 and 10", escalated)
	}
	if pipe.Suppressed() == 0 {
		t.Errorf("rare-only alarm was not suppressed")
	}
}

// TestVetoPipelineMatchesBatchSuppress cross-checks the streaming pipeline
// against the batch ensemble.Suppress accounting on generated data.
func TestVetoPipelineMatchesBatchSuppress(t *testing.T) {
	var train seq.Stream
	for i := 0; i < 300; i++ {
		train = append(train, 0, 1, 2, 3)
	}
	train = append(train, 0, 3, 0, 1)
	for i := 0; i < 300; i++ {
		train = append(train, 0, 1, 2, 3)
	}

	mkPrimary := func() detector.Detector {
		d, err := markovdet.New(3)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Train(train); err != nil {
			t.Fatal(err)
		}
		return d
	}
	mkVeto := func() detector.Detector {
		d, err := stide.New(3)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Train(train); err != nil {
			t.Fatal(err)
		}
		return d
	}

	// Test stream with a foreign burst in the middle.
	var background seq.Stream
	for i := 0; i < 40; i++ {
		background = append(background, 0, 1, 2, 3)
	}
	p, err := inject.At(background, mk(2, 2, 2, 2), 80)
	if err != nil {
		t.Fatal(err)
	}

	batch, err := ensemble.Suppress(mkPrimary(), mkVeto(), p, 0.95, 1)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := NewVetoPipeline(mkPrimary(), mkVeto(), 0.95, 1)
	if err != nil {
		t.Fatal(err)
	}
	escalated, err := pipe.PushAll(p.Stream)
	if err != nil {
		t.Fatal(err)
	}
	// Both accountings must agree on whether anything was escalated and on
	// the total number of surviving primary alarms.
	survived := batch.Suppressed.SpanAlarms + batch.Suppressed.FalseAlarms
	if len(escalated) != survived {
		t.Errorf("streaming escalated %d alarms, batch kept %d", len(escalated), survived)
	}
	if (len(escalated) > 0) != batch.Suppressed.Hit && batch.Suppressed.FalseAlarms == 0 {
		t.Errorf("hit disagreement: streaming %v, batch %+v", len(escalated) > 0, batch.Suppressed)
	}
}
