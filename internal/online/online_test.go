package online

import (
	"testing"
	"testing/quick"

	"adiv/internal/alphabet"
	"adiv/internal/detector"
	"adiv/internal/detector/lbr"
	"adiv/internal/detector/markovdet"
	"adiv/internal/detector/stide"
	"adiv/internal/obs"
	"adiv/internal/seq"
)

func mk(vals ...int) seq.Stream {
	s := make(seq.Stream, len(vals))
	for i, v := range vals {
		s[i] = alphabet.Symbol(v)
	}
	return s
}

func trainStream() seq.Stream {
	var s seq.Stream
	for i := 0; i < 60; i++ {
		s = append(s, 0, 1, 2, 3)
	}
	return s
}

func trained(t *testing.T, build func() (detector.Detector, error)) detector.Detector {
	t.Helper()
	det, err := build()
	if err != nil {
		t.Fatal(err)
	}
	if err := det.Train(trainStream()); err != nil {
		t.Fatal(err)
	}
	return det
}

func TestNewScorerValidation(t *testing.T) {
	if _, err := NewScorer(nil); err == nil {
		t.Errorf("nil detector accepted")
	}
}

func TestPushUntrained(t *testing.T) {
	det, err := stide.New(2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScorer(det)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Push(0); err != nil {
		t.Fatalf("push during fill should not score: %v", err)
	}
	if _, _, err := s.Push(1); err == nil {
		t.Errorf("scoring with untrained detector succeeded")
	}
}

// TestStreamingMatchesBatch pins the core equivalence for all three
// deterministic detectors: pushing a stream symbol by symbol yields the
// batch Score of the same stream.
func TestStreamingMatchesBatch(t *testing.T) {
	builders := map[string]func() (detector.Detector, error){
		"stide":  func() (detector.Detector, error) { return stide.New(3) },
		"markov": func() (detector.Detector, error) { return markovdet.New(3) },
		"lb":     func() (detector.Detector, error) { return lbr.New(3) },
	}
	test := mk(0, 1, 2, 3, 0, 1, 3, 3, 2, 1, 0, 1, 2, 3)
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			det := trained(t, build)
			batch, err := det.Score(test)
			if err != nil {
				t.Fatal(err)
			}
			scorer, err := NewScorer(det)
			if err != nil {
				t.Fatal(err)
			}
			streamed, err := scorer.PushAll(test)
			if err != nil {
				t.Fatal(err)
			}
			if len(streamed) != len(batch) {
				t.Fatalf("%d streamed responses, %d batch", len(streamed), len(batch))
			}
			for i := range batch {
				if streamed[i] != batch[i] {
					t.Errorf("response[%d]: streamed %v, batch %v", i, streamed[i], batch[i])
				}
			}
		})
	}
}

// TestStreamingMatchesBatchProperty extends the equivalence to random
// streams and window lengths for Stide.
func TestStreamingMatchesBatchProperty(t *testing.T) {
	check := func(raw []byte, wRaw uint8) bool {
		w := int(wRaw%4) + 1
		test := make(seq.Stream, len(raw))
		for i, b := range raw {
			test[i] = alphabet.Symbol(b % 4)
		}
		if len(test) < w {
			return true
		}
		det, err := stide.New(w)
		if err != nil {
			return false
		}
		if err := det.Train(trainStream()); err != nil {
			return false
		}
		batch, err := det.Score(test)
		if err != nil {
			return false
		}
		scorer, err := NewScorer(det)
		if err != nil {
			return false
		}
		streamed, err := scorer.PushAll(test)
		if err != nil || len(streamed) != len(batch) {
			return false
		}
		for i := range batch {
			if streamed[i] != batch[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestReset(t *testing.T) {
	det := trained(t, func() (detector.Detector, error) { return stide.New(2) })
	scorer, err := NewScorer(det)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := scorer.PushAll(mk(0, 1, 2)); err != nil {
		t.Fatal(err)
	}
	scorer.Reset()
	if scorer.Seen() != 0 {
		t.Errorf("Seen() = %d after reset", scorer.Seen())
	}
	// After reset the first window must wait for a full fill again.
	_, ready, err := scorer.Push(3)
	if err != nil || ready {
		t.Errorf("first push after reset: ready=%v err=%v", ready, err)
	}
}

func TestAlarmer(t *testing.T) {
	det := trained(t, func() (detector.Detector, error) { return stide.New(2) })
	alarmer, err := NewAlarmer(det, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Stream 0 1 2 3 1 1: the pair (3,1) and (1,1) are foreign to the
	// 0 1 2 3 cycle.
	alarms, err := alarmer.PushAll(mk(0, 1, 2, 3, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(alarms) != 2 {
		t.Fatalf("%d alarms, want 2: %+v", len(alarms), alarms)
	}
	if alarms[0].Position != 3 || alarms[1].Position != 4 {
		t.Errorf("alarm positions %+v, want windows starting at 3 and 4", alarms)
	}
	for _, a := range alarms {
		if a.Response != 1 {
			t.Errorf("alarm response %v", a.Response)
		}
	}
}

func TestAlarmerValidation(t *testing.T) {
	det := trained(t, func() (detector.Detector, error) { return stide.New(2) })
	for _, th := range []float64{0, -1, 1.01} {
		if _, err := NewAlarmer(det, th); err == nil {
			t.Errorf("threshold %v accepted", th)
		}
	}
}

func TestAlarmerMatchesBatchAlarms(t *testing.T) {
	det := trained(t, func() (detector.Detector, error) { return markovdet.New(2) })
	test := mk(0, 1, 2, 3, 0, 2, 2, 3, 0, 1)
	batch, err := det.Score(test)
	if err != nil {
		t.Fatal(err)
	}
	alarmer, err := NewAlarmer(det, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	alarms, err := alarmer.PushAll(test)
	if err != nil {
		t.Fatal(err)
	}
	var wantPositions []int
	for i, r := range batch {
		if r >= 0.9 {
			wantPositions = append(wantPositions, i)
		}
	}
	if len(alarms) != len(wantPositions) {
		t.Fatalf("%d alarms, want %d", len(alarms), len(wantPositions))
	}
	for i := range alarms {
		if alarms[i].Position != wantPositions[i] {
			t.Errorf("alarm %d at %d, want %d", i, alarms[i].Position, wantPositions[i])
		}
	}
}

// TestInstrumentLiveGauges pins the streaming telemetry a /metrics scrape
// of a long-lived deployment reads: symbols pushed, alarms raised, the
// deployed threshold, and the detector's latest response.
func TestInstrumentLiveGauges(t *testing.T) {
	det := trained(t, func() (detector.Detector, error) { return stide.New(2) })
	alarmer, err := NewAlarmer(det, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	alarmer.Instrument(reg)
	if got := reg.Gauge("online/threshold").Value(); got != 0.75 {
		t.Errorf("online/threshold = %v, want 0.75", got)
	}
	// 0 1 2 3 1: the final pair (3,1) is foreign, so the last response is 1.
	if _, err := alarmer.PushAll(mk(0, 1, 2, 3, 1)); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("online/symbols").Value(); got != 5 {
		t.Errorf("online/symbols = %d, want 5", got)
	}
	if got := reg.Counter("online/alarms").Value(); got != 1 {
		t.Errorf("online/alarms = %d, want 1", got)
	}
	if got := reg.Gauge("online/last_response").Value(); got != 1 {
		t.Errorf("online/last_response = %v, want 1", got)
	}

	// Detaching restores the uninstrumented no-op path.
	alarmer.Instrument(nil)
	if _, err := alarmer.PushAll(mk(0, 1)); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("online/symbols").Value(); got != 5 {
		t.Errorf("detached scorer still counting: %d", got)
	}
}
