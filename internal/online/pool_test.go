package online

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"adiv/internal/detector/stide"
	"adiv/internal/obs"
)

func scorerFactory(t *testing.T) func() (*Scorer, error) {
	t.Helper()
	return func() (*Scorer, error) {
		det, err := stide.New(3)
		if err != nil {
			return nil, err
		}
		if err := det.Train(trainStream()); err != nil {
			return nil, err
		}
		return NewScorer(det)
	}
}

func TestPoolRecycledScorerIsClean(t *testing.T) {
	pool, err := NewScorerPool(scorerFactory(t))
	if err != nil {
		t.Fatal(err)
	}
	s1, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	first := mk(0, 1, 2, 3, 0, 1, 2, 3, 2, 1, 0)
	if _, err := s1.PushAll(first); err != nil {
		t.Fatal(err)
	}
	if s1.Seen() != len(first) {
		t.Fatalf("Seen = %d, want %d", s1.Seen(), len(first))
	}
	if got := s1.Recent(nil); len(got) == 0 {
		t.Fatal("first tenant recorded no responses")
	}

	pool.Put(s1)
	s2, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if s2 != s1 {
		t.Fatal("pool did not recycle the returned scorer")
	}
	// The recycled scorer must carry nothing of the previous tenant.
	if s2.Seen() != 0 {
		t.Fatalf("recycled scorer leaks Seen = %d", s2.Seen())
	}
	if got := s2.Recent(nil); len(got) != 0 {
		t.Fatalf("recycled scorer leaks %d ring responses: %v", len(got), got)
	}

	// And it must score a new tenant's stream bit-identically to a fresh
	// scorer — including the partial-ring case, where a stale ring would
	// be most visible.
	second := mk(3, 2, 1, 0, 3, 2, 1, 0, 1, 2)
	gotResp, err := s2.PushAll(second)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := scorerFactory(t)()
	if err != nil {
		t.Fatal(err)
	}
	wantResp, err := fresh.PushAll(second)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotResp) != len(wantResp) {
		t.Fatalf("recycled scorer yielded %d responses, fresh %d", len(gotResp), len(wantResp))
	}
	for i := range gotResp {
		if math.Float64bits(gotResp[i]) != math.Float64bits(wantResp[i]) {
			t.Fatalf("response %d: recycled %v != fresh %v", i, gotResp[i], wantResp[i])
		}
	}
	gotRing, wantRing := s2.Recent(nil), fresh.Recent(nil)
	if len(gotRing) != len(wantRing) {
		t.Fatalf("recycled ring holds %d responses, fresh %d", len(gotRing), len(wantRing))
	}
	for i := range gotRing {
		if math.Float64bits(gotRing[i]) != math.Float64bits(wantRing[i]) {
			t.Fatalf("ring %d: recycled %v != fresh %v", i, gotRing[i], wantRing[i])
		}
	}

	created, reused := pool.Stats()
	if created != 1 || reused != 1 {
		t.Fatalf("pool stats = (%d created, %d reused), want (1, 1)", created, reused)
	}
	if pool.Idle() != 0 {
		t.Fatalf("pool idle = %d, want 0", pool.Idle())
	}
}

func TestPoolFactoryRequired(t *testing.T) {
	if _, err := NewScorerPool(nil); err == nil {
		t.Fatal("nil factory accepted")
	}
}

func TestPoolFactoryErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	pool, err := NewPool(func() (*Scorer, error) { return nil, boom })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Get(); !errors.Is(err, boom) {
		t.Fatalf("Get error = %v, want %v", err, boom)
	}
}

func TestPooledAlarmerReStampsTenant(t *testing.T) {
	pool, err := NewAlarmerPool(func() (*Alarmer, error) {
		det, err := stide.New(3)
		if err != nil {
			return nil, err
		}
		if err := det.Train(trainStream()); err != nil {
			return nil, err
		}
		return NewAlarmer(det, 1.0)
	})
	if err != nil {
		t.Fatal(err)
	}
	journal := obs.NewAlertJournal(nil)
	// 3-window "3 3 3" never occurs in the 0-1-2-3 training cycle, so the
	// strict-threshold stide alarmer fires on it.
	foreign := mk(0, 1, 2, 3, 3, 3, 0, 1, 2, 3)

	a, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	a.SetJournal(journal)
	a.SetTenant("tenant-a")
	alarms, err := a.PushAll(foreign)
	if err != nil {
		t.Fatal(err)
	}
	if len(alarms) == 0 {
		t.Fatal("foreign stream raised no alarms")
	}
	pool.Put(a)

	b, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if b != a {
		t.Fatal("pool did not recycle the alarmer")
	}
	if b.Scorer().Seen() != 0 {
		t.Fatalf("recycled alarmer leaks Seen = %d", b.Scorer().Seen())
	}
	b.SetTenant("tenant-b")
	if _, err := b.PushAll(foreign); err != nil {
		t.Fatal(err)
	}

	recs := journalRecords(t, journal)
	var sawA, sawB bool
	for _, rec := range recs {
		switch rec.Tenant {
		case "tenant-a":
			sawA = true
		case "tenant-b":
			sawB = true
		default:
			t.Fatalf("record with unexpected tenant %q", rec.Tenant)
		}
	}
	if !sawA || !sawB {
		t.Fatalf("journal missing a tenant's records (a=%v b=%v) in %d records", sawA, sawB, len(recs))
	}
}

// journalRecords parses the journal's in-memory tail back into records.
func journalRecords(t *testing.T, j *obs.AlertJournal) []obs.AlertRecord {
	t.Helper()
	var buf bytes.Buffer
	if _, err := j.WriteTail(&buf, -1); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadAlerts(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}
