package online

import (
	"fmt"
	"time"

	"adiv/internal/alphabet"
	"adiv/internal/detector"
	"adiv/internal/obs"
)

// VetoPipeline is the Section-7 suppression recipe as a reusable streaming
// component: a rare-sensitive primary detector raises candidate alarms and
// a foreign-only veto detector corroborates them; only corroborated alarms
// are escalated. Corroboration is by element overlap within the trailing
// horizon, so the two detectors may have different extents.
type VetoPipeline struct {
	primary *Alarmer
	veto    *Alarmer

	// pending holds primary alarms still awaiting corroboration, oldest
	// first; an alarm expires once the stream has advanced past its
	// covered elements plus the veto's extent.
	pending []Alarm
	// vetoCovered tracks recently veto-alarmed element positions within
	// the horizon.
	vetoCovered []int

	primaryExtent, vetoExtent int
	seen                      int
	suppressed                int

	// Telemetry handles; nil when uninstrumented (the default).
	mSymbols         *obs.Counter
	mPrimary         *obs.Counter
	mEscalated       *obs.Counter
	mSuppressed      *obs.Counter
	mSuppressionRate *obs.Gauge
	mPushLatency     *obs.Sketch // whole-pipeline per-push latency, seconds
	mEscInterArrival *obs.Sketch // symbol-position gaps between escalations
	lastEscalatedPos int
	tracer           *obs.Tracer

	// journal receives escalated/suppressed disposition records; the
	// primary Alarmer journals the matching raised records.
	journal *obs.AlertJournal
	// tenant stamps the pipeline's own journal records; the primary
	// Alarmer stamps its raised records with the same value via SetTenant.
	tenant string
}

// Instrument records pipeline telemetry into reg: symbols pushed, primary
// candidate alarms, escalated (corroborated) alarms, suppressed alarms,
// the running suppression rate (suppressed / primary candidates), the
// online/pipeline/push_latency sketch (whole-pipeline per-push wall
// latency, both detectors plus corroboration), and the
// online/pipeline/escalation_interarrival sketch of symbol-position gaps
// between consecutive escalations. When the registry carries a tracer,
// escalations and suppressions additionally land as instant markers
// (category "alarm") on the execution timeline. A nil registry disables
// instrumentation; the nested Alarmers are instrumented separately (their
// metrics would collide — both scorers share the online/* names).
func (p *VetoPipeline) Instrument(reg *obs.Registry) {
	if reg == nil {
		p.mSymbols, p.mPrimary, p.mEscalated, p.mSuppressed, p.mSuppressionRate = nil, nil, nil, nil, nil
		p.mPushLatency, p.mEscInterArrival = nil, nil
		p.tracer = nil
		return
	}
	p.mSymbols = reg.Counter("online/pipeline/symbols")
	p.mPrimary = reg.Counter("online/pipeline/primary_alarms")
	p.mEscalated = reg.Counter("online/pipeline/escalated")
	p.mSuppressed = reg.Counter("online/pipeline/suppressed")
	p.mSuppressionRate = reg.Gauge("online/pipeline/suppression_rate")
	p.mPushLatency = reg.Sketch("online/pipeline/push_latency")
	p.mEscInterArrival = reg.Sketch("online/pipeline/escalation_interarrival")
	p.tracer = reg.Tracer()
}

// SetJournal attaches a structured alert journal to the pipeline and its
// primary Alarmer: the primary journals every candidate as raised, the
// pipeline resolves each candidate to escalated (corroborated) or
// suppressed (expired unanswered), so the journal carries the full
// disposition history and the invariant raised = escalated + suppressed +
// pending holds. The veto detector does not journal — its alarms are
// corroborations, not alerts. A nil journal detaches.
func (p *VetoPipeline) SetJournal(j *obs.AlertJournal) {
	p.journal = j
	p.primary.SetJournal(j)
}

// SetTenant stamps the tenant identity into every journal record the
// pipeline (and its primary Alarmer) appends; see Alarmer.SetTenant.
func (p *VetoPipeline) SetTenant(tenant string) {
	p.tenant = tenant
	p.primary.SetTenant(tenant)
}

// Reset clears all per-stream state — both detectors' sliding windows and
// rings, the pending and veto-coverage horizons, and the suppression
// counter — so a pooled pipeline recycled to a new tenant behaves exactly
// like a freshly constructed one. The trained models are retained.
func (p *VetoPipeline) Reset() {
	p.primary.Reset()
	p.veto.Reset()
	p.pending = p.pending[:0]
	p.vetoCovered = p.vetoCovered[:0]
	p.seen = 0
	p.suppressed = 0
	p.lastEscalatedPos = -1
}

// EscalatedAlarm is a primary alarm corroborated by the veto detector.
type EscalatedAlarm struct {
	// Primary is the corroborated alarm.
	Primary Alarm
	// VetoPosition is the window start of the corroborating veto alarm.
	VetoPosition int
}

// NewVetoPipeline wraps two trained detectors with their thresholds.
func NewVetoPipeline(primary, veto detector.Detector, primaryThreshold, vetoThreshold float64) (*VetoPipeline, error) {
	pa, err := NewAlarmer(primary, primaryThreshold)
	if err != nil {
		return nil, fmt.Errorf("online: primary: %w", err)
	}
	va, err := NewAlarmer(veto, vetoThreshold)
	if err != nil {
		return nil, fmt.Errorf("online: veto: %w", err)
	}
	return &VetoPipeline{
		primary:          pa,
		veto:             va,
		primaryExtent:    primary.Extent(),
		vetoExtent:       veto.Extent(),
		lastEscalatedPos: -1,
	}, nil
}

// Push feeds one symbol to both detectors and returns any alarms escalated
// by it (a symbol can complete both a primary and a corroborating veto
// window, or corroborate older pending alarms). Instrumented pipelines
// observe the whole push's wall latency; journaled pipelines append one
// disposition record per escalation.
func (p *VetoPipeline) Push(sym alphabet.Symbol) ([]EscalatedAlarm, error) {
	var start time.Time
	if p.mPushLatency != nil {
		start = time.Now()
	}
	escalated, err := p.push(sym)
	if p.mPushLatency != nil {
		p.mPushLatency.Observe(time.Since(start).Seconds())
	}
	return escalated, err
}

func (p *VetoPipeline) push(sym alphabet.Symbol) ([]EscalatedAlarm, error) {
	p.seen++
	if p.mSymbols != nil {
		p.mSymbols.Inc()
	}
	primaryAlarm, primaryRaised, err := p.primary.Push(sym)
	if err != nil {
		return nil, err
	}
	vetoAlarm, vetoRaised, err := p.veto.Push(sym)
	if err != nil {
		return nil, err
	}

	escalated := p.corroborate(primaryAlarm, primaryRaised, vetoAlarm, vetoRaised)
	p.expire()
	if len(escalated) > 0 {
		if p.mEscalated != nil {
			p.mEscalated.Add(int64(len(escalated)))
		}
		for _, e := range escalated {
			if p.mEscInterArrival != nil {
				if p.lastEscalatedPos >= 0 {
					p.mEscInterArrival.Observe(float64(e.Primary.Position - p.lastEscalatedPos))
				}
				p.lastEscalatedPos = e.Primary.Position
			}
			p.journal.Append(obs.AlertRecord{
				Tenant:      p.tenant,
				Position:    e.Primary.Position,
				Detector:    p.primary.scorer.det.Name(),
				Score:       e.Primary.Response,
				Threshold:   p.primary.threshold,
				Disposition: obs.DispositionEscalated,
			})
			p.tracer.Instant("online/escalated", "alarm",
				obs.TraceAttr{Key: "position", Value: fmt.Sprint(e.Primary.Position)},
				obs.TraceAttr{Key: "vetoPosition", Value: fmt.Sprint(e.VetoPosition)})
		}
	}
	return escalated, nil
}

// corroborate merges one push's alarm outcomes into the pending state and
// returns the alarms escalated by it. Whether the fresh primary was
// corroborated is tracked directly: this push's veto window may escalate an
// older pending alarm while the fresh primary is corroborated by an earlier
// veto window still inside the horizon, and both escalations must surface.
func (p *VetoPipeline) corroborate(primaryAlarm Alarm, primaryRaised bool, vetoAlarm Alarm, vetoRaised bool) []EscalatedAlarm {
	var escalated []EscalatedAlarm
	fresh := -1
	if primaryRaised {
		p.pending = append(p.pending, primaryAlarm)
		fresh = len(p.pending) - 1
		if p.mPrimary != nil {
			p.mPrimary.Inc()
		}
	}
	freshEscalated := false
	if vetoRaised {
		p.vetoCovered = append(p.vetoCovered, vetoAlarm.Position)
		// Corroborate pending primaries overlapping this veto window.
		kept := p.pending[:0]
		for i, pa := range p.pending {
			if overlaps(pa.Position, p.primaryExtent, vetoAlarm.Position, p.vetoExtent) {
				escalated = append(escalated, EscalatedAlarm{Primary: pa, VetoPosition: vetoAlarm.Position})
				if i == fresh {
					freshEscalated = true
				}
			} else {
				kept = append(kept, pa)
			}
		}
		p.pending = kept
	}
	if primaryRaised && !freshEscalated {
		// A fresh primary may be corroborated by a recent veto window. It
		// survived the loop above (if any), so it is still pending's last
		// element.
		for _, vp := range p.vetoCovered {
			if overlaps(primaryAlarm.Position, p.primaryExtent, vp, p.vetoExtent) {
				escalated = append(escalated, EscalatedAlarm{Primary: primaryAlarm, VetoPosition: vp})
				p.pending = p.pending[:len(p.pending)-1]
				break
			}
		}
	}
	return escalated
}

// PushAll feeds a slice and collects the escalated alarms.
func (p *VetoPipeline) PushAll(stream []alphabet.Symbol) ([]EscalatedAlarm, error) {
	var out []EscalatedAlarm
	for _, sym := range stream {
		e, err := p.Push(sym)
		if err != nil {
			return nil, err
		}
		out = append(out, e...)
	}
	return out, nil
}

// Suppressed returns the number of primary alarms that expired without
// corroboration so far.
func (p *VetoPipeline) Suppressed() int { return p.suppressed }

// expire drops pending primaries and stale veto windows that can no longer
// overlap anything new.
func (p *VetoPipeline) expire() {
	horizon := p.seen - p.primaryExtent - p.vetoExtent
	kept := p.pending[:0]
	expired := 0
	for _, pa := range p.pending {
		if pa.Position >= horizon {
			kept = append(kept, pa)
		} else {
			p.suppressed++
			expired++
			p.journal.Append(obs.AlertRecord{
				Tenant:      p.tenant,
				Position:    pa.Position,
				Detector:    p.primary.scorer.det.Name(),
				Score:       pa.Response,
				Threshold:   p.primary.threshold,
				Disposition: obs.DispositionSuppressed,
			})
		}
	}
	p.pending = kept
	if expired > 0 {
		if p.mSuppressed != nil {
			p.mSuppressed.Add(int64(expired))
			if candidates := p.mPrimary.Value(); candidates > 0 {
				p.mSuppressionRate.Set(float64(p.mSuppressed.Value()) / float64(candidates))
			}
		}
		p.tracer.Instant("online/suppressed", "alarm",
			obs.TraceAttr{Key: "count", Value: fmt.Sprint(expired)})
	}
	keptVeto := p.vetoCovered[:0]
	for _, vp := range p.vetoCovered {
		if vp >= horizon {
			keptVeto = append(keptVeto, vp)
		}
	}
	p.vetoCovered = keptVeto
}

// overlaps reports whether [aPos, aPos+aExt) and [bPos, bPos+bExt) share an
// element.
func overlaps(aPos, aExt, bPos, bExt int) bool {
	return aPos < bPos+bExt && bPos < aPos+aExt
}
