package online

// The pre-kernel streaming push path — slide a seq.Stream window, call the
// detector's batch Score per push — retained verbatim as refScorer, the
// behavioral reference for the zero-alloc fast path. The tests compare the
// new Scorer response-for-response (bit equality) against it for every
// detector family with a fast path, plus one without, and pin the
// steady-state push at zero allocations.

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"adiv/internal/alphabet"
	"adiv/internal/detector"
	"adiv/internal/detector/hmm"
	"adiv/internal/detector/lbr"
	"adiv/internal/detector/markovdet"
	"adiv/internal/detector/stide"
	"adiv/internal/detector/tstide"
	"adiv/internal/obs"
	"adiv/internal/rng"
	"adiv/internal/seq"
)

// refScorer is the retained pre-kernel Scorer: batch Score per push.
type refScorer struct {
	det    detector.Detector
	extent int
	buf    seq.Stream
	seen   int
}

func newRefScorer(det detector.Detector) (*refScorer, error) {
	if det == nil {
		return nil, errors.New("online: nil detector")
	}
	extent := det.Extent()
	if extent < 1 {
		return nil, fmt.Errorf("online: detector %s reports extent %d", det.Name(), extent)
	}
	return &refScorer{
		det:    det,
		extent: extent,
		buf:    make(seq.Stream, 0, extent),
	}, nil
}

func (s *refScorer) Push(sym alphabet.Symbol) (response float64, ready bool, err error) {
	s.seen++
	if len(s.buf) < s.extent {
		s.buf = append(s.buf, sym)
	} else {
		copy(s.buf, s.buf[1:])
		s.buf[s.extent-1] = sym
	}
	if len(s.buf) < s.extent {
		return 0, false, nil
	}
	responses, err := s.det.Score(s.buf)
	if err != nil {
		return 0, false, fmt.Errorf("online: %w", err)
	}
	if len(responses) != 1 {
		return 0, false, fmt.Errorf("online: scoring one window yielded %d responses", len(responses))
	}
	return responses[0], true, nil
}

func refStream(seed uint64, length, k int) seq.Stream {
	src := rng.New(seed)
	out := make(seq.Stream, length)
	for i := range out {
		if src.Float64() < 0.2 {
			out[i] = alphabet.Symbol(src.Intn(k))
		} else {
			out[i] = alphabet.Symbol(i % k)
		}
	}
	return out
}

// refDetectors builds one trained detector per family that offers the
// streaming fast path, plus labels.
func refDetectors(t *testing.T, train seq.Stream) map[string]detector.Detector {
	t.Helper()
	out := make(map[string]detector.Detector)

	st, err := stide.New(6)
	if err != nil {
		t.Fatal(err)
	}
	out["stide"] = st

	ts, err := tstide.New(6, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	out["tstide"] = ts

	mk, err := markovdet.New(4)
	if err != nil {
		t.Fatal(err)
	}
	out["markov"] = mk

	lb, err := lbr.New(6)
	if err != nil {
		t.Fatal(err)
	}
	out["lbr"] = lb

	cfg := hmm.DefaultConfig()
	cfg.Iterations = 4
	hm, err := hmm.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out["hmm"] = hm

	for name, d := range out {
		if err := d.Train(train); err != nil {
			t.Fatalf("train %s: %v", name, err)
		}
	}
	return out
}

// TestPushMatchesReference compares the fast-path Scorer push-for-push and
// bit-for-bit against the retained batch-Score-per-push reference, for
// every fast-path detector family.
func TestPushMatchesReference(t *testing.T) {
	train := refStream(3, 3000, 8)
	test := refStream(11, 1200, 9) // includes a symbol foreign to training
	for name, det := range refDetectors(t, train) {
		if _, ok := detector.AsWindowByteScorer(det); !ok {
			t.Fatalf("%s: expected a streaming fast path", name)
		}
		ref, err := newRefScorer(det)
		if err != nil {
			t.Fatal(err)
		}
		got, err := NewScorer(det)
		if err != nil {
			t.Fatal(err)
		}
		for i, sym := range test {
			wantR, wantReady, wantErr := ref.Push(sym)
			gotR, gotReady, gotErr := got.Push(sym)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("%s push %d: err %v, reference %v", name, i, gotErr, wantErr)
			}
			if wantReady != gotReady {
				t.Fatalf("%s push %d: ready %v, reference %v", name, i, gotReady, wantReady)
			}
			if math.Float64bits(wantR) != math.Float64bits(gotR) {
				t.Fatalf("%s push %d: response %v, reference %v", name, i, gotR, wantR)
			}
		}
	}
}

// TestPushUntrainedMatchesReference pins the error path: pushing into an
// untrained detector fails identically on both paths.
func TestPushUntrainedMatchesReference(t *testing.T) {
	st, err := stide.New(6)
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := newRefScorer(st)
	got, _ := NewScorer(st)
	stream := refStream(1, 10, 4)
	for _, sym := range stream {
		_, _, wantErr := ref.Push(sym)
		_, _, gotErr := got.Push(sym)
		if (wantErr == nil) != (gotErr == nil) || (wantErr != nil && !errors.Is(gotErr, detector.ErrNotTrained)) {
			t.Fatalf("err %v, reference %v", gotErr, wantErr)
		}
	}
}

// TestPushObservedUnwraps checks the fast path survives the Observed
// instrumentation wrapper (captured through Unwrap at construction).
func TestPushObservedUnwraps(t *testing.T) {
	train := refStream(3, 2000, 8)
	st, err := stide.New(6)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Train(train); err != nil {
		t.Fatal(err)
	}
	wrapped := detector.Observed(st, obs.New())
	s, err := NewScorer(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if s.fast == nil {
		t.Fatalf("Observed wrapper hid the streaming fast path")
	}
	test := refStream(9, 500, 8)
	got, err := s.PushAll(test)
	if err != nil {
		t.Fatal(err)
	}
	want, err := st.Score(test)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d responses, want %d", len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("response %d: %v, batch %v", i, got[i], want[i])
		}
	}
}

// TestPushSteadyStateAllocs is the regression guard for the streaming hot
// path: once the window is full, a push allocates nothing — instrumented
// or not.
func TestPushSteadyStateAllocs(t *testing.T) {
	train := refStream(3, 3000, 8)
	for name, det := range refDetectors(t, train) {
		s, err := NewScorer(det)
		if err != nil {
			t.Fatal(err)
		}
		s.Instrument(obs.New())
		warm := refStream(5, 64, 8)
		if _, err := s.PushAll(warm); err != nil {
			t.Fatal(err)
		}
		sym := alphabet.Symbol(1)
		allocs := testing.AllocsPerRun(200, func() {
			if _, _, err := s.Push(sym); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("%s: steady-state push allocated %.2f times, want 0", name, allocs)
		}
	}
}

// TestScorerRecent covers the preallocated response ring: fill, wrap,
// order, reset.
func TestScorerRecent(t *testing.T) {
	train := refStream(3, 2000, 8)
	st, err := stide.New(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Train(train); err != nil {
		t.Fatal(err)
	}
	s, err := NewScorer(st)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Recent(nil); len(got) != 0 {
		t.Fatalf("fresh scorer Recent returned %d responses", len(got))
	}
	test := refStream(5, 300, 9)
	want, err := s.PushAll(test)
	if err != nil {
		t.Fatal(err)
	}
	got := s.Recent(nil)
	if len(got) != responseRingLen {
		t.Fatalf("Recent returned %d responses, want %d", len(got), responseRingLen)
	}
	tail := want[len(want)-responseRingLen:]
	for i := range got {
		if got[i] != tail[i] {
			t.Fatalf("Recent[%d] = %v, want %v", i, got[i], tail[i])
		}
	}
	s.Reset()
	if got := s.Recent(nil); len(got) != 0 {
		t.Fatalf("Recent after Reset returned %d responses", len(got))
	}
}
