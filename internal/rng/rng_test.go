package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: sources with equal seeds diverged: %d vs %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("sources with different seeds agreed on %d of 100 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	child := parent.Split()
	// Drawing from the parent must not affect the child's stream.
	reference := New(99)
	referenceChild := reference.Split()
	for i := 0; i < 100; i++ {
		parent.Uint64()
	}
	for i := 0; i < 100; i++ {
		if got, want := child.Uint64(), referenceChild.Uint64(); got != want {
			t.Fatalf("draw %d: child stream affected by parent draws", i)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	src := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := src.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnRoughlyUniform(t *testing.T) {
	src := New(3)
	const n, draws = 8, 80000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[src.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d deviates from expectation %.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	src := New(11)
	sum := 0.0
	const draws = 50000
	for i := 0; i < draws; i++ {
		f := src.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean %v, want ≈0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	src := New(21)
	check := func(n uint8) bool {
		p := src.Perm(int(n))
		if len(p) != int(n) {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	src := New(5)
	vals := []int{1, 1, 2, 3, 5, 8, 13, 21}
	sum := 0
	for _, v := range vals {
		sum += v
	}
	src.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	got := 0
	for _, v := range vals {
		got += v
	}
	if got != sum {
		t.Errorf("shuffle changed element sum: %d vs %d", got, sum)
	}
}

func TestShuffleActuallyShuffles(t *testing.T) {
	src := New(17)
	n := 64
	vals := make([]int, n)
	for i := range vals {
		vals[i] = i
	}
	src.Shuffle(n, func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	fixed := 0
	for i, v := range vals {
		if i == v {
			fixed++
		}
	}
	if fixed > n/4 {
		t.Errorf("%d of %d elements left in place", fixed, n)
	}
}

func TestIntnCoversFullRange(t *testing.T) {
	src := New(31)
	const n = 16
	seen := make([]bool, n)
	for i := 0; i < 5000; i++ {
		seen[src.Intn(n)] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Errorf("Intn(%d) never produced %d in 5000 draws", n, v)
		}
	}
}
