// Package rng provides a small, deterministic pseudo-random number generator
// used throughout the data-synthesis substrate.
//
// Reproducibility is a hard requirement of the evaluation methodology: the
// training stream, the minimal-foreign-sequence anomalies, and the injection
// positions must be identical across runs so that the per-figure harnesses
// regenerate the same performance maps. The generator is a PCG-XSH-RR 64/32
// variant with explicit 64-bit state, independent of math/rand's global
// source and stable across Go releases.
package rng

import "math/bits"

// Source is a deterministic PCG-based pseudo-random source.
//
// The zero value is not useful; construct one with New. A Source is not safe
// for concurrent use; give each goroutine its own via Split.
type Source struct {
	state uint64
	inc   uint64
}

const pcgMultiplier = 6364136223846793005

// New returns a Source seeded with seed. Two Sources constructed with the
// same seed produce identical output forever.
func New(seed uint64) *Source {
	s := &Source{inc: (seed << 1) | 1}
	s.state = seed + s.inc
	s.next32()
	return s
}

// Split derives an independent Source from s. The derived stream is
// deterministic given s's current state, and advancing either Source does not
// affect the other.
func (s *Source) Split() *Source {
	seed := uint64(s.next32())<<32 | uint64(s.next32())
	return New(seed)
}

// next32 advances the PCG state and returns 32 uniformly distributed bits.
func (s *Source) next32() uint32 {
	old := s.state
	s.state = old*pcgMultiplier + s.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns a uniformly distributed 64-bit value.
func (s *Source) Uint64() uint64 {
	return uint64(s.next32())<<32 | uint64(s.next32())
}

// Intn returns a uniformly distributed integer in [0, n). It panics if n <= 0;
// that is a programming error, not a recoverable condition.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation, with rejection to
	// remove modulo bias.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		hi, lo := bits.Mul64(s.Uint64(), bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of the integers [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the provided swap
// function, matching the contract of math/rand.Shuffle.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
