// Package inject implements the paper's anomaly-injection procedure and the
// incident span (Section 5.4.2, Figure 2).
//
// Randomly dropping an anomaly into background data is undesirable: the
// sliding detector window composes "boundary sequences" from trailing
// background elements and leading anomaly elements (and vice versa), and an
// unlucky position turns those boundary sequences into unintended foreign or
// rare sequences that confound the results. A valid injection point is one
// at which every window that mixes anomaly and background elements — for
// every detector-window width under evaluation — already exists in the
// training data. Windows containing the entire anomaly are necessarily
// foreign (a superstring of a foreign sequence is foreign) and are exactly
// the signal the detectors are meant to see.
package inject

import (
	"errors"
	"fmt"

	"adiv/internal/seq"
)

// ErrNoValidPosition reports that no injection point in the background
// satisfies the boundary-sequence constraint; per the paper, "a new anomaly
// must be produced as a replacement, and the process repeated".
var ErrNoValidPosition = errors.New("inject: no position satisfies the boundary-sequence constraint")

// Placement is an anomaly injected into background data: the final test
// stream plus the location of the anomalous event within it.
type Placement struct {
	// Stream is the test stream: background with the anomaly inserted.
	Stream seq.Stream
	// Start is the index in Stream of the first anomaly element.
	Start int
	// AnomalyLen is the length of the injected anomaly.
	AnomalyLen int
}

// Anomaly returns the injected anomalous subsequence (a view into Stream).
func (p Placement) Anomaly() seq.Stream {
	return p.Stream[p.Start : p.Start+p.AnomalyLen]
}

// IncidentSpan returns the inclusive range [lo, hi] of window start indices
// such that the width-sized window starting there contains at least one
// element of the injected anomaly — the incident span of Figure 2. The
// range is clipped to valid window starts; ok is false when the width is
// non-positive or exceeds the stream length.
func (p Placement) IncidentSpan(width int) (lo, hi int, ok bool) {
	if width <= 0 || width > len(p.Stream) {
		return 0, 0, false
	}
	lo = p.Start - width + 1
	if lo < 0 {
		lo = 0
	}
	hi = p.Start + p.AnomalyLen - 1
	if last := len(p.Stream) - width; hi > last {
		hi = last
	}
	if hi < lo {
		return 0, 0, false
	}
	return lo, hi, true
}

// ContainsWholeAnomaly reports whether the width-sized window starting at
// start covers every element of the injected anomaly.
func (p Placement) ContainsWholeAnomaly(start, width int) bool {
	return start <= p.Start && start+width >= p.Start+p.AnomalyLen
}

// Options configures the injection search.
type Options struct {
	// MinWidth and MaxWidth are the detector-window widths the placement
	// must be valid for. The paper evaluates widths 2 through 15 on a single
	// injected stream per anomaly size.
	MinWidth, MaxWidth int
	// ContextWidths additionally validates mixed windows one element wider
	// than MaxWidth when true. The Markov and neural-network detectors
	// examine (width+1)-grams (context plus predicted element); validating
	// those grams keeps their boundary behaviour equally confound-free.
	ContextWidths bool
}

// Validate reports option errors.
func (o Options) Validate() error {
	if o.MinWidth < 1 || o.MaxWidth < o.MinWidth {
		return fmt.Errorf("inject: invalid width range [%d,%d]", o.MinWidth, o.MaxWidth)
	}
	return nil
}

// At builds the test stream with anomaly inserted into background before
// index pos (0 <= pos <= len(background)) without validating the boundary
// constraint. Most callers want Inject instead.
func At(background, anomaly seq.Stream, pos int) (Placement, error) {
	if pos < 0 || pos > len(background) {
		return Placement{}, fmt.Errorf("inject: position %d outside background of length %d", pos, len(background))
	}
	if len(anomaly) == 0 {
		return Placement{}, errors.New("inject: empty anomaly")
	}
	stream := make(seq.Stream, 0, len(background)+len(anomaly))
	stream = append(stream, background[:pos]...)
	stream = append(stream, anomaly...)
	stream = append(stream, background[pos:]...)
	return Placement{Stream: stream, Start: pos, AnomalyLen: len(anomaly)}, nil
}

// Valid reports whether the placement satisfies the boundary-sequence
// constraint against the training index: every window of every width in
// [opts.MinWidth, opts.MaxWidth] (plus one, with opts.ContextWidths) that
// contains at least one anomaly element but not the whole anomaly occurs in
// the training data.
func Valid(trainIx *seq.Index, p Placement, opts Options) (bool, error) {
	if err := opts.Validate(); err != nil {
		return false, err
	}
	maxW := opts.MaxWidth
	if opts.ContextWidths {
		maxW++
	}
	for width := opts.MinWidth; width <= maxW; width++ {
		lo, hi, ok := p.IncidentSpan(width)
		if !ok {
			continue
		}
		for start := lo; start <= hi; start++ {
			if p.ContainsWholeAnomaly(start, width) {
				continue
			}
			occurs, err := trainIx.Contains(p.Stream[start : start+width])
			if err != nil {
				return false, err
			}
			if !occurs {
				return false, nil
			}
		}
	}
	return true, nil
}

// Inject searches the background, from the middle outward, for an insertion
// point satisfying the boundary-sequence constraint and returns the first
// valid placement. Searching from the middle keeps the anomaly away from
// stream edges, so every width's incident span is fully populated on both
// sides.
func Inject(trainIx *seq.Index, background, anomaly seq.Stream, opts Options) (Placement, error) {
	if err := opts.Validate(); err != nil {
		return Placement{}, err
	}
	if len(background) < 2*(opts.MaxWidth+1) {
		return Placement{}, fmt.Errorf("inject: background of length %d too short for max width %d", len(background), opts.MaxWidth)
	}
	mid := len(background) / 2
	margin := opts.MaxWidth + 1
	for offset := 0; ; offset++ {
		candidates := []int{mid + offset}
		if offset > 0 {
			candidates = append(candidates, mid-offset)
		}
		tried := false
		for _, pos := range candidates {
			if pos < margin || pos > len(background)-margin {
				continue
			}
			tried = true
			p, err := At(background, anomaly, pos)
			if err != nil {
				return Placement{}, err
			}
			ok, err := Valid(trainIx, p, opts)
			if err != nil {
				return Placement{}, err
			}
			if ok {
				return p, nil
			}
		}
		if !tried && offset > 0 {
			return Placement{}, ErrNoValidPosition
		}
	}
}
