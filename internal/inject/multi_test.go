package inject

import (
	"errors"
	"testing"

	"adiv/internal/gen"
	"adiv/internal/seq"
)

func TestInjectMultiCanonical(t *testing.T) {
	ix := trainedIndex(t)
	background := gen.PureCycle(4_000)
	var anomalies []seq.Stream
	for _, size := range []int{3, 5, 7, 4} {
		m, err := gen.CanonicalMFS(size)
		if err != nil {
			t.Fatal(err)
		}
		anomalies = append(anomalies, m)
	}
	opts := Options{MinWidth: 2, MaxWidth: 10, ContextWidths: true}
	mp, err := InjectMulti(ix, background, anomalies, opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(mp.Events) != len(anomalies) {
		t.Fatalf("%d events, want %d", len(mp.Events), len(anomalies))
	}
	total := 0
	for i, e := range mp.Events {
		total += e.Len
		if e.Len != len(anomalies[i]) {
			t.Errorf("event %d length %d, want %d", i, e.Len, len(anomalies[i]))
		}
		got := mp.Stream[e.Start : e.Start+e.Len]
		for j := range anomalies[i] {
			if got[j] != anomalies[i][j] {
				t.Errorf("event %d content corrupted", i)
				break
			}
		}
		// Each event's single-anomaly view must satisfy Valid.
		p, err := mp.Placement(i)
		if err != nil {
			t.Fatal(err)
		}
		ok, err := Valid(ix, p, opts)
		if err != nil || !ok {
			t.Errorf("event %d fails boundary validation: %v, %v", i, ok, err)
		}
		if i > 0 {
			prev := mp.Events[i-1]
			if e.Start-(prev.Start+prev.Len) < opts.MaxWidth+1 {
				t.Errorf("events %d and %d closer than the gap", i-1, i)
			}
		}
	}
	if len(mp.Stream) != len(background)+total {
		t.Errorf("stream length %d, want %d", len(mp.Stream), len(background)+total)
	}
}

func TestInjectMultiErrors(t *testing.T) {
	ix := trainedIndex(t)
	background := gen.PureCycle(200)
	opts := Options{MinWidth: 2, MaxWidth: 6, ContextWidths: true}
	if _, err := InjectMulti(ix, background, nil, opts, 0); err == nil {
		t.Errorf("no anomalies accepted")
	}
	if _, err := InjectMulti(ix, background, []seq.Stream{{}}, opts, 0); err == nil {
		t.Errorf("empty anomaly accepted")
	}
	// Too many anomalies for the background length: placement must fail.
	m, err := gen.CanonicalMFS(4)
	if err != nil {
		t.Fatal(err)
	}
	many := make([]seq.Stream, 40)
	for i := range many {
		many[i] = m
	}
	if _, err := InjectMulti(ix, background, many, opts, 0); !errors.Is(err, ErrNoValidPosition) {
		t.Errorf("overfull injection: %v, want ErrNoValidPosition", err)
	}
}

func TestMultiPlacementInSpan(t *testing.T) {
	mp := MultiPlacement{
		Stream: make(seq.Stream, 100),
		Events: []Event{{Start: 20, Len: 3}, {Start: 60, Len: 2}},
	}
	tests := []struct {
		pos, extent int
		want        bool
	}{
		{20, 3, true},
		{18, 3, true},  // covers 18-20
		{17, 3, false}, // covers 17-19
		{22, 1, true},
		{23, 1, false},
		{59, 2, true},
		{40, 5, false},
	}
	for _, tt := range tests {
		if got := mp.InSpan(tt.pos, tt.extent); got != tt.want {
			t.Errorf("InSpan(%d,%d) = %v, want %v", tt.pos, tt.extent, got, tt.want)
		}
	}
	if _, err := mp.Placement(2); err == nil {
		t.Errorf("out-of-range event accepted")
	}
	p, err := mp.Placement(1)
	if err != nil || p.Start != 60 || p.AnomalyLen != 2 {
		t.Errorf("Placement(1) = %+v, %v", p, err)
	}
}
