package inject

import (
	"errors"
	"fmt"

	"adiv/internal/seq"
)

// Event is one injected anomaly within a multi-anomaly stream.
type Event struct {
	// Start is the index of the event's first element.
	Start int
	// Len is the event's length.
	Len int
}

// MultiPlacement is a test stream holding several injected anomalies, the
// substrate for hit-rate statistics over many independent events.
type MultiPlacement struct {
	Stream seq.Stream
	Events []Event
}

// Placement returns the single-anomaly view of event i (sharing the
// stream), so the standard assessment machinery applies per event.
func (m MultiPlacement) Placement(i int) (Placement, error) {
	if i < 0 || i >= len(m.Events) {
		return Placement{}, fmt.Errorf("inject: event %d of %d", i, len(m.Events))
	}
	e := m.Events[i]
	return Placement{Stream: m.Stream, Start: e.Start, AnomalyLen: e.Len}, nil
}

// InSpan reports whether a response at position pos with the given extent
// touches any injected event.
func (m MultiPlacement) InSpan(pos, extent int) bool {
	for _, e := range m.Events {
		if pos+extent > e.Start && pos < e.Start+e.Len {
			return true
		}
	}
	return false
}

// InjectMulti injects the anomalies, in order, into the background at
// boundary-safe positions separated by at least minGap background elements
// (minGap also keeps incident spans disjoint when it is at least the
// largest width validated). It returns ErrNoValidPosition when some
// anomaly cannot be placed in the remaining background.
func InjectMulti(trainIx *seq.Index, background seq.Stream, anomalies []seq.Stream, opts Options, minGap int) (MultiPlacement, error) {
	if err := opts.Validate(); err != nil {
		return MultiPlacement{}, err
	}
	if len(anomalies) == 0 {
		return MultiPlacement{}, errors.New("inject: no anomalies to inject")
	}
	if minGap < opts.MaxWidth+1 {
		minGap = opts.MaxWidth + 1
	}

	out := MultiPlacement{Stream: make(seq.Stream, 0, len(background)+len(anomalies)*8)}
	// cursor walks the background; each anomaly is placed at the first
	// valid boundary position at or after the cursor plus the gap.
	cursor := 0
	for idx, anomaly := range anomalies {
		if len(anomaly) == 0 {
			return MultiPlacement{}, fmt.Errorf("inject: anomaly %d is empty", idx)
		}
		placed := false
		for pos := cursor + minGap; pos <= len(background)-minGap; pos++ {
			candidate, err := At(background, anomaly, pos)
			if err != nil {
				return MultiPlacement{}, err
			}
			ok, err := Valid(trainIx, candidate, opts)
			if err != nil {
				return MultiPlacement{}, err
			}
			if !ok {
				continue
			}
			// Append the background up to pos, then the anomaly.
			out.Stream = append(out.Stream, background[cursor:pos]...)
			out.Events = append(out.Events, Event{Start: len(out.Stream), Len: len(anomaly)})
			out.Stream = append(out.Stream, anomaly...)
			cursor = pos
			placed = true
			break
		}
		if !placed {
			return MultiPlacement{}, fmt.Errorf("inject: anomaly %d (length %d): %w", idx, len(anomaly), ErrNoValidPosition)
		}
	}
	out.Stream = append(out.Stream, background[cursor:]...)
	return out, nil
}
