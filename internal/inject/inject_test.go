package inject

import (
	"errors"
	"testing"
	"testing/quick"

	"adiv/internal/alphabet"
	"adiv/internal/gen"
	"adiv/internal/seq"
)

func mk(vals ...int) seq.Stream {
	s := make(seq.Stream, len(vals))
	for i, v := range vals {
		s[i] = alphabet.Symbol(v)
	}
	return s
}

func TestAt(t *testing.T) {
	p, err := At(mk(1, 2, 3, 4), mk(8, 9), 2)
	if err != nil {
		t.Fatal(err)
	}
	want := mk(1, 2, 8, 9, 3, 4)
	if len(p.Stream) != len(want) {
		t.Fatalf("stream length %d", len(p.Stream))
	}
	for i := range want {
		if p.Stream[i] != want[i] {
			t.Fatalf("stream %v, want %v", p.Stream, want)
		}
	}
	if p.Start != 2 || p.AnomalyLen != 2 {
		t.Errorf("placement %+v", p)
	}
	if got := p.Anomaly(); got[0] != 8 || got[1] != 9 {
		t.Errorf("Anomaly() = %v", got)
	}
}

func TestAtBoundsAndEdges(t *testing.T) {
	if _, err := At(mk(1, 2), mk(9), -1); err == nil {
		t.Errorf("negative position accepted")
	}
	if _, err := At(mk(1, 2), mk(9), 3); err == nil {
		t.Errorf("out-of-range position accepted")
	}
	if _, err := At(mk(1, 2), nil, 1); err == nil {
		t.Errorf("empty anomaly accepted")
	}
	// Injection at the very ends is legal.
	for _, pos := range []int{0, 2} {
		p, err := At(mk(1, 2), mk(9), pos)
		if err != nil {
			t.Errorf("position %d: %v", pos, err)
			continue
		}
		if p.Start != pos {
			t.Errorf("position %d: start %d", pos, p.Start)
		}
	}
}

func TestIncidentSpan(t *testing.T) {
	// Background of 20, anomaly of 8 injected at 10 (the paper's Figure 2
	// uses DW=5, AS=8: the incident span holds all 5-element windows
	// containing at least one anomaly element — 12 of them).
	p, err := At(gen.PureCycle(20), mk(7, 0, 0, 0, 0, 0, 0, 7), 10)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, ok := p.IncidentSpan(5)
	if !ok {
		t.Fatal("no span")
	}
	if lo != 6 || hi != 17 {
		t.Errorf("span [%d,%d], want [6,17]", lo, hi)
	}
	if got := hi - lo + 1; got != 12 {
		t.Errorf("span size %d, want DW-1 + AS = 12", got)
	}
}

func TestIncidentSpanClipping(t *testing.T) {
	// Anomaly at the very start: the left side clips to 0.
	p, err := At(gen.PureCycle(10), mk(7, 7), 0)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, ok := p.IncidentSpan(4)
	if !ok || lo != 0 || hi != 1 {
		t.Errorf("span [%d,%d] ok=%v, want [0,1] true", lo, hi, ok)
	}
	// Width longer than stream: no span.
	if _, _, ok := p.IncidentSpan(100); ok {
		t.Errorf("span reported for width exceeding stream")
	}
	if _, _, ok := p.IncidentSpan(0); ok {
		t.Errorf("span reported for width 0")
	}
}

// TestIncidentSpanSizeProperty: away from stream edges the span holds
// exactly DW-1+AS windows.
func TestIncidentSpanSizeProperty(t *testing.T) {
	check := func(dwRaw, asRaw uint8) bool {
		dw := int(dwRaw%14) + 2
		as := int(asRaw%8) + 2
		background := gen.PureCycle(200)
		anomaly := make(seq.Stream, as)
		p, err := At(background, anomaly, 100)
		if err != nil {
			return false
		}
		lo, hi, ok := p.IncidentSpan(dw)
		return ok && hi-lo+1 == dw-1+as
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestContainsWholeAnomaly(t *testing.T) {
	p := Placement{Stream: make(seq.Stream, 30), Start: 10, AnomalyLen: 4}
	tests := []struct {
		start, width int
		want         bool
	}{
		{10, 4, true},
		{9, 5, true},
		{8, 8, true},
		{11, 4, false}, // misses first element
		{10, 3, false}, // too narrow
		{7, 6, false},  // ends at 13, missing index 13? 7+6=13 exclusive -> misses last
	}
	for _, tt := range tests {
		if got := p.ContainsWholeAnomaly(tt.start, tt.width); got != tt.want {
			t.Errorf("ContainsWholeAnomaly(%d,%d) = %v, want %v", tt.start, tt.width, got, tt.want)
		}
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := (Options{MinWidth: 2, MaxWidth: 15}).Validate(); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
	for _, o := range []Options{{MinWidth: 0, MaxWidth: 5}, {MinWidth: 6, MaxWidth: 5}} {
		if err := o.Validate(); err == nil {
			t.Errorf("invalid options %+v accepted", o)
		}
	}
}

// trainedIndex builds a generated training index shared by the heavier
// injection tests.
var trainedIndex = func() func(t *testing.T) *seq.Index {
	var ix *seq.Index
	return func(t *testing.T) *seq.Index {
		t.Helper()
		if ix == nil {
			cfg := gen.DefaultConfig()
			cfg.TrainLen = 150_000
			g, err := gen.New(cfg)
			if err != nil {
				t.Fatalf("gen.New: %v", err)
			}
			ix = seq.NewIndex(g.Training())
		}
		return ix
	}
}()

func TestInjectCanonicalAnomalies(t *testing.T) {
	ix := trainedIndex(t)
	background := gen.PureCycle(2_000)
	opts := Options{MinWidth: gen.MinWindow, MaxWidth: gen.MaxWindow, ContextWidths: true}
	for size := gen.MinAnomalySize; size <= gen.MaxAnomalySize; size++ {
		m, err := gen.CanonicalMFS(size)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Inject(ix, background, m, opts)
		if err != nil {
			t.Errorf("Inject(size=%d): %v", size, err)
			continue
		}
		ok, err := Valid(ix, p, opts)
		if err != nil || !ok {
			t.Errorf("size %d: returned placement fails Valid: %v, %v", size, ok, err)
		}
		// The injected stream must contain the anomaly verbatim.
		got := p.Anomaly()
		for i := range m {
			if got[i] != m[i] {
				t.Errorf("size %d: anomaly corrupted: %v", size, got)
				break
			}
		}
	}
}

func TestInjectRejectsUnplaceableAnomaly(t *testing.T) {
	ix := trainedIndex(t)
	background := gen.PureCycle(500)
	// An anomaly whose boundary mixes cannot occur: symbol 7 never follows
	// symbols 1-5 in training, and this "anomaly" is a wall of 7s whose
	// interior pairs (7,7) occur only... (7,7) occurs via the size-2
	// motif; but the mixes with mid-cycle phases are impossible for most
	// positions. Use an anomaly with an out-of-training interior instead:
	// (7,1,7) — the pair (7,1) occurs (motif end), (1,7) never does, so
	// every placement has a foreign mixed window at width 2.
	anomalous := mk(7, 1, 1, 7)
	opts := Options{MinWidth: 2, MaxWidth: 6, ContextWidths: true}
	_, err := Inject(ix, background, anomalous, opts)
	if !errors.Is(err, ErrNoValidPosition) {
		t.Errorf("Inject of unplaceable anomaly: %v, want ErrNoValidPosition", err)
	}
}

func TestInjectShortBackground(t *testing.T) {
	ix := trainedIndex(t)
	if _, err := Inject(ix, gen.PureCycle(10), mk(7, 7), Options{MinWidth: 2, MaxWidth: 15}); err == nil {
		t.Errorf("Inject into too-short background succeeded")
	}
}

func TestValidDetectsForeignBoundary(t *testing.T) {
	ix := trainedIndex(t)
	// Naive mid-cycle injection of the size-3 canonical MFS: unless the
	// position lands right after a 6, a boundary window like (3, 7) is
	// foreign and Valid must reject it.
	background := gen.PureCycle(100)
	m, err := gen.CanonicalMFS(3)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{MinWidth: 2, MaxWidth: 6, ContextWidths: true}
	valids := 0
	for pos := 20; pos < 80; pos++ {
		p, err := At(background, m, pos)
		if err != nil {
			t.Fatal(err)
		}
		ok, err := Valid(ix, p, opts)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			valids++
			// Valid positions must sit right after a 6 (cycle boundary).
			if background[pos-1] != 6 {
				t.Errorf("position %d validated but preceding symbol is %d", pos, background[pos-1])
			}
		}
	}
	if valids == 0 {
		t.Errorf("no valid positions found in 60 candidates (expected one per cycle)")
	}
}
