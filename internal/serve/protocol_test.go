package serve

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: FrameEvents, Tenant: "t0", Body: []byte{0, 1, 2, 3}},
		{Type: FrameEventsQuiet, Tenant: "a-much-longer-tenant-name", Body: bytes.Repeat([]byte{7}, 1000)},
		{Type: FrameScores, Tenant: "t1", Body: AppendScoresBody(nil, 4, 1, []float64{0, 0.5, 1})},
		{Type: FrameBusy, Tenant: "t2", Body: []byte("busy")},
		{Type: FrameError, Body: []byte("nope")},
		{Type: FrameClose, Tenant: "t3"},
		{Type: FrameClosed, Tenant: "t3", Body: AppendScoresBody(nil, 0, 0, nil)},
	}
	var wire []byte
	for _, f := range frames {
		wire = AppendFrame(wire, f)
	}
	// Decode from the concatenated buffer.
	rest := wire
	for i, want := range frames {
		got, n, err := DecodeFrame(rest, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type || got.Tenant != want.Tenant || !bytes.Equal(got.Body, want.Body) {
			t.Fatalf("frame %d: got %+v want %+v", i, got, want)
		}
		if !bytes.Equal(AppendFrame(nil, got), rest[:n]) {
			t.Fatalf("frame %d: re-encode is not canonical", i)
		}
		rest = rest[n:]
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	// And via the io path.
	r := bytes.NewReader(wire)
	for i, want := range frames {
		got, err := ReadFrame(r, 0)
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if got.Type != want.Type || got.Tenant != want.Tenant || !bytes.Equal(got.Body, want.Body) {
			t.Fatalf("ReadFrame %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := ReadFrame(r, 0); err != io.EOF {
		t.Fatalf("end of stream: %v, want io.EOF", err)
	}
}

func TestDecodeFrameRejects(t *testing.T) {
	valid := AppendFrame(nil, Frame{Type: FrameEvents, Tenant: "t", Body: []byte{1, 2}})
	cases := []struct {
		name string
		b    []byte
		max  int
		want error
	}{
		{"empty", nil, 0, ErrShortFrame},
		{"truncated prefix", valid[:3], 0, ErrShortFrame},
		{"truncated payload", valid[:len(valid)-1], 0, ErrShortFrame},
		{"oversized", valid, 4, ErrOversizedFrame},
		{"undersized length", []byte{0, 0, 0, 2, 0xAD, 0x5E}, 0, ErrBadFrame},
		{"foreign magic", []byte{0, 0, 0, 5, 0x12, 0x34, 1, 1, 0}, 0, ErrBadMagic},
		{"foreign magic (HTTP)", []byte("GET / HTTP/1.1\r\n\r\n"), 0, ErrOversizedFrame},
		{"bad version", mutate(valid, 6, 99), 0, ErrBadVersion},
		{"bad type", mutate(valid, 7, 200), 0, ErrBadFrameType},
		{"tenant overrun", mutate(valid, 8, 255), 0, ErrBadFrame},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := DecodeFrame(tc.b, tc.max)
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

// mutate copies b and sets b[i] = v.
func mutate(b []byte, i int, v byte) []byte {
	out := append([]byte(nil), b...)
	out[i] = v
	return out
}

func TestDecodeFrameForeignLengthNotTrusted(t *testing.T) {
	// A foreign stream whose first 4 bytes happen to decode as a huge length
	// must be rejected as oversized, not buffered.
	b := []byte("\xff\xff\xff\xff garbage")
	if _, _, err := DecodeFrame(b, 0); !errors.Is(err, ErrOversizedFrame) {
		t.Fatalf("err = %v, want ErrOversizedFrame", err)
	}
	if _, err := ReadFrame(bytes.NewReader(b), 0); !errors.Is(err, ErrOversizedFrame) {
		t.Fatalf("ReadFrame err = %v, want ErrOversizedFrame", err)
	}
}

func TestReadFrameTornPayload(t *testing.T) {
	valid := AppendFrame(nil, Frame{Type: FrameEvents, Tenant: "t", Body: []byte{1, 2, 3}})
	_, err := ReadFrame(bytes.NewReader(valid[:len(valid)-2]), 0)
	if err != io.ErrUnexpectedEOF {
		t.Fatalf("err = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestScoresBodyRoundTrip(t *testing.T) {
	resp := []float64{0, 1, 0.25, math.Inf(1), math.SmallestNonzeroFloat64}
	body := AppendScoresBody(nil, 5, 2, resp)
	accepted, alarms, got, err := ParseScoresBody(body)
	if err != nil {
		t.Fatal(err)
	}
	if accepted != 5 || alarms != 2 {
		t.Fatalf("counts = (%d, %d), want (5, 2)", accepted, alarms)
	}
	if len(got) != len(resp) {
		t.Fatalf("%d responses, want %d", len(got), len(resp))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(resp[i]) {
			t.Fatalf("response %d: %v != %v", i, got[i], resp[i])
		}
	}
	if _, _, _, err := ParseScoresBody(body[:7]); err == nil {
		t.Fatal("short scores body accepted")
	}
	if _, _, _, err := ParseScoresBody(body[:len(body)-3]); err == nil {
		t.Fatal("ragged scores body accepted")
	}
}

func TestParsePushRequest(t *testing.T) {
	req, err := ParsePushRequest([]byte(`{"tenant":"t0","symbols":[0,1,7],"quiet":true}`))
	if err != nil {
		t.Fatal(err)
	}
	if req.Tenant != "t0" || len(req.Symbols) != 3 || !req.Quiet || req.Close {
		t.Fatalf("bad parse: %+v", req)
	}
	syms := SymbolsOf(req)
	if len(syms) != 3 || syms[2] != 7 {
		t.Fatalf("bad symbols: %v", syms)
	}
	for _, bad := range []string{
		``,
		`not json`,
		`{"symbols":[1]}`,                // missing tenant
		`{"tenant":"t","symbols":[-1]}`,  // negative symbol
		`{"tenant":"t","symbols":[256]}`, // beyond byte range
		`{"tenant":"` + string(bytes.Repeat([]byte{'x'}, 300)) + `"}`, // tenant too long
	} {
		if _, err := ParsePushRequest([]byte(bad)); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

func FuzzFrameDecode(f *testing.F) {
	f.Add(AppendFrame(nil, Frame{Type: FrameEvents, Tenant: "t0", Body: []byte{1, 2, 3}}))
	f.Add(AppendFrame(nil, Frame{Type: FrameScores, Tenant: "x", Body: AppendScoresBody(nil, 3, 1, []float64{0.5})}))
	f.Add([]byte("GET / HTTP/1.1\r\n\r\n"))
	f.Add([]byte{0, 0, 0, 5, 0xAD, 0x5E, 1, 1, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		frame, n, err := DecodeFrame(b, 0)
		if err != nil {
			if n != 0 {
				t.Fatalf("error %v consumed %d bytes", err, n)
			}
			return
		}
		if n < frameHeaderLen+4 || n > len(b) {
			t.Fatalf("consumed %d of %d", n, len(b))
		}
		// Accepted frames must re-encode canonically.
		if !bytes.Equal(AppendFrame(nil, frame), b[:n]) {
			t.Fatalf("round-trip mismatch for %d-byte frame", n)
		}
		// And survive the io path identically.
		got, err := ReadFrame(bytes.NewReader(b[:n]), 0)
		if err != nil {
			t.Fatalf("ReadFrame rejects what DecodeFrame accepted: %v", err)
		}
		if got.Type != frame.Type || got.Tenant != frame.Tenant || !bytes.Equal(got.Body, frame.Body) {
			t.Fatal("ReadFrame disagrees with DecodeFrame")
		}
	})
}

func FuzzNDJSONRequest(f *testing.F) {
	f.Add([]byte(`{"tenant":"t0","symbols":[0,1,2]}`))
	f.Add([]byte(`{"tenant":"t0","close":true}`))
	f.Add([]byte(`{"tenant":"","symbols":[300]}`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, line []byte) {
		req, err := ParsePushRequest(line)
		if err != nil {
			return
		}
		if req.Tenant == "" || len(req.Tenant) > 255 {
			t.Fatalf("accepted invalid tenant %q", req.Tenant)
		}
		syms := SymbolsOf(req)
		if len(syms) != len(req.Symbols) {
			t.Fatalf("symbol conversion lost events: %d != %d", len(syms), len(req.Symbols))
		}
		for i, s := range req.Symbols {
			if s < 0 || s > 255 {
				t.Fatalf("accepted out-of-range symbol %d", s)
			}
			if int(syms[i]) != s {
				t.Fatalf("symbol %d mangled: %d -> %d", i, s, syms[i])
			}
		}
	})
}
