package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"adiv/internal/seq"
)

func TestHTTPPushEquivalence(t *testing.T) {
	g := testGen(t)
	s := newTestServer(t, 2, 8, 0)
	defer s.Drain()
	h := NewHTTPHandler(s)

	stream := g.Noisy(500, 3)
	want := serialResponses(t, g, stream)

	// Two tenants interleaved in one body; tenant b runs quiet.
	var body bytes.Buffer
	for off := 0; off < len(stream); off += 113 {
		end := off + 113
		if end > len(stream) {
			end = len(stream)
		}
		for _, req := range []PushRequest{
			{Tenant: "http-a", Symbols: intsOf(stream[off:end])},
			{Tenant: "http-b", Symbols: intsOf(stream[off:end]), Quiet: true},
		} {
			line, err := json.Marshal(req)
			if err != nil {
				t.Fatal(err)
			}
			body.Write(line)
			body.WriteByte('\n')
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/push", &body))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var got []float64
	accepted := 0
	sc := bufio.NewScanner(rec.Body)
	for sc.Scan() {
		var resp PushResponse
		if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
			t.Fatalf("bad response line %q: %v", sc.Text(), err)
		}
		if resp.Error != "" {
			t.Fatalf("response error: %s", resp.Error)
		}
		switch resp.Tenant {
		case "http-a":
			got = append(got, resp.Responses...)
			accepted += resp.Accepted
		case "http-b":
			if len(resp.Responses) != 0 {
				t.Fatal("quiet request returned responses")
			}
		default:
			t.Fatalf("unknown tenant %q", resp.Tenant)
		}
	}
	if accepted != len(stream) {
		t.Fatalf("accepted %d, want %d", accepted, len(stream))
	}
	if len(got) != len(want) {
		t.Fatalf("%d responses, want %d", len(got), len(want))
	}
	for i := range got {
		// JSON float64 encoding is shortest-round-trip, so even the HTTP
		// path must be bit-identical to the serial scorer.
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("response %d: %v != %v", i, got[i], want[i])
		}
	}
}

func TestHTTPPushRejections(t *testing.T) {
	s := newTestServer(t, 1, 4, 0)
	h := NewHTTPHandler(s)

	post := func(body string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/push", strings.NewReader(body)))
		return rec
	}
	if rec := post(`{"symbols":[1]}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("missing tenant: status %d", rec.Code)
	}
	if rec := post("not json\n"); rec.Code != http.StatusBadRequest {
		t.Fatalf("garbage line: status %d", rec.Code)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/push", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status %d", rec.Code)
	}

	s.Drain()
	if rec := post(`{"tenant":"t","symbols":[1]}`); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining: status %d", rec.Code)
	}
}

func intsOf(stream seq.Stream) []int {
	out := make([]int, len(stream))
	for i, s := range stream {
		out[i] = int(s)
	}
	return out
}

// tcpClient is a minimal synchronous client for the frame protocol.
type tcpClient struct {
	t    *testing.T
	conn net.Conn
	r    *bufio.Reader
}

func dialTCP(t *testing.T, addr string) *tcpClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &tcpClient{t: t, conn: conn, r: bufio.NewReader(conn)}
}

func (c *tcpClient) send(f Frame) {
	c.t.Helper()
	if _, err := c.conn.Write(AppendFrame(nil, f)); err != nil {
		c.t.Fatal(err)
	}
}

func (c *tcpClient) recv() Frame {
	c.t.Helper()
	f, err := ReadFrame(c.r, 0)
	if err != nil {
		c.t.Fatal(err)
	}
	return f
}

func startTCP(t *testing.T, s *Server) *TCPServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTCPServer(s, ln)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := ts.Serve(); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	t.Cleanup(func() { ts.Shutdown(); wg.Wait() })
	return ts
}

func TestTCPPushEquivalence(t *testing.T) {
	g := testGen(t)
	s := newTestServer(t, 2, 8, 0)
	defer s.Drain()
	ts := startTCP(t, s)

	stream := g.Noisy(700, 5)
	want := serialResponses(t, g, stream)

	c := dialTCP(t, ts.Addr().String())
	var got []float64
	scored := 0
	for off := 0; off < len(stream); off += 211 {
		end := off + 211
		if end > len(stream) {
			end = len(stream)
		}
		c.send(Frame{Type: FrameEvents, Tenant: "tcp-a", Body: symbolBytes(stream[off:end])})
		f := c.recv()
		if f.Type == FrameBusy {
			off -= 211 // retry the batch
			continue
		}
		if f.Type != FrameScores {
			t.Fatalf("frame type %d: %s", f.Type, f.Body)
		}
		accepted, _, responses, err := ParseScoresBody(f.Body)
		if err != nil {
			t.Fatal(err)
		}
		scored += accepted
		got = append(got, responses...)
	}
	c.send(Frame{Type: FrameClose, Tenant: "tcp-a"})
	if f := c.recv(); f.Type != FrameClosed {
		t.Fatalf("close ack type %d", f.Type)
	}

	if scored != len(stream) {
		t.Fatalf("accepted %d, want %d", scored, len(stream))
	}
	if len(got) != len(want) {
		t.Fatalf("%d responses, want %d", len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("response %d: served %v != serial %v", i, got[i], want[i])
		}
	}
}

func TestTCPRejectsForeignTraffic(t *testing.T) {
	s := newTestServer(t, 1, 4, 0)
	defer s.Drain()
	ts := startTCP(t, s)

	c := dialTCP(t, ts.Addr().String())
	if _, err := c.conn.Write([]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	f := c.recv()
	if f.Type != FrameError {
		t.Fatalf("frame type %d, want FrameError", f.Type)
	}
	// The server must then drop the connection.
	if _, err := ReadFrame(c.r, 0); err == nil {
		t.Fatal("connection stayed open after protocol error")
	}
}

func TestTCPShutdownMidLoadLosesNothing(t *testing.T) {
	g := testGen(t)
	s := newTestServer(t, 2, 16, 0)
	ts := startTCP(t, s)

	stream := g.Noisy(3_000, 9)
	const clients = 4
	var wg sync.WaitGroup
	acked := make([]int, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", ts.Addr().String())
			if err != nil {
				return // shutdown won the race before this client connected
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			tenant := fmt.Sprintf("shutdown-%d", i)
			for off := 0; off < len(stream); off += 97 {
				end := off + 97
				if end > len(stream) {
					end = len(stream)
				}
				frame := AppendFrame(nil, Frame{Type: FrameEventsQuiet, Tenant: tenant, Body: symbolBytes(stream[off:end])})
				if _, err := conn.Write(frame); err != nil {
					return // shutdown raced the write; nothing was accepted
				}
				f, err := ReadFrame(r, 0)
				if err != nil {
					return // connection torn down before the ack
				}
				switch f.Type {
				case FrameScores:
					accepted, _, _, err := ParseScoresBody(f.Body)
					if err != nil {
						t.Error(err)
						return
					}
					acked[i] += accepted
				case FrameBusy:
					off -= 97 // retry
				default:
					return
				}
			}
		}(i)
	}
	// Let the load get going, then shut down mid-stream and drain the core.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Accepted < 2_000 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	ts.Shutdown()
	s.Drain()
	wg.Wait()

	stats := s.Stats()
	if stats.Accepted != stats.Scored {
		t.Fatalf("accepted %d != scored %d", stats.Accepted, stats.Scored)
	}
	total := 0
	for _, n := range acked {
		total += n
	}
	// Every acked event was scored; the server may have scored a few more
	// whose acks were lost in the teardown race.
	if int64(total) > stats.Scored {
		t.Fatalf("clients hold acks for %d events, server scored %d", total, stats.Scored)
	}
}

func symbolBytes(stream seq.Stream) []byte {
	out := make([]byte, len(stream))
	for i, s := range stream {
		out[i] = byte(s)
	}
	return out
}
