package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"adiv/internal/alphabet"
	"adiv/internal/checkpoint"
	"adiv/internal/obs"
	"adiv/internal/online"
)

// Config assembles a Server. NewTenant is the only required field: it builds
// one TenantScorer with trained models (construction cost is amortized by
// pooling — a closed tenant's scorer is Reset and recycled).
type Config struct {
	// Shards is the worker count; tenants hash onto shards and all of a
	// tenant's batches execute serially on its shard. Default 1.
	Shards int
	// QueueDepth bounds each shard's pending-task queue. A full queue
	// rejects with ErrBusy — backpressure is explicit, memory never grows
	// with a slow consumer. Default 128.
	QueueDepth int
	// MaxBatch bounds the symbols accepted per submission. Default 8192.
	MaxBatch int
	// MaxFrameBytes bounds a TCP frame payload (DefaultMaxFrameBytes when
	// zero).
	MaxFrameBytes int
	// AlphabetSize rejects symbols >= it before acceptance, so the drain
	// invariant (accepted == scored) can never be broken by a mid-batch
	// domain error. Default alphabet.MaxSize.
	AlphabetSize int
	// NewTenant builds a trained per-tenant scorer (required).
	NewTenant func() (TenantScorer, error)
	// Registry receives serve/* telemetry and the online/* watchdog pulse;
	// nil disables instrumentation.
	Registry *obs.Registry
}

// Result is the outcome of one accepted submission, delivered to the
// submitter's callback from the shard worker.
type Result struct {
	// Responses holds the window responses that became ready during the
	// batch (nil in quiet submissions and alarm-only pipelines).
	Responses []float64
	// Alarms counts alarms (or escalations) the batch raised.
	Alarms int
	// Closed reports that the tenant's scorer was retired to the pool.
	Closed bool
	// Err is a scoring error; the batch may have partially applied.
	Err error
}

// Server routes tenant event batches to sharded workers. The zero value is
// unusable; construct with NewServer.
type Server struct {
	cfg    Config
	router *router
	pool   *online.Pool[TenantScorer]

	mu      sync.Mutex
	tenants map[string]*tenantState

	draining atomic.Bool

	// acceptedN / scoredN back the drain invariant (accepted == scored
	// after Drain) independently of the optional registry.
	acceptedN atomic.Int64
	scoredN   atomic.Int64
	alarmsN   atomic.Int64
	busyN     atomic.Int64

	mAccepted *obs.Counter
	mScored   *obs.Counter
	mBusy     *obs.Counter
	mAlarms   *obs.Counter
	mSymbols  *obs.Counter // online/symbols — feeds the silent-stream watchdog
	mWdAlarms *obs.Counter // online/alarms — feeds the alarm-storm watchdog
	mTenants  *obs.Gauge
	mLatency  *obs.Sketch
	tracer    *obs.Tracer
}

type tenantState struct {
	id    string
	shard int
	sc    TenantScorer
}

// NewServer validates cfg and starts the shard workers.
func NewServer(cfg Config) (*Server, error) {
	if cfg.NewTenant == nil {
		return nil, errors.New("serve: Config.NewTenant is required")
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 128
	}
	if cfg.MaxBatch < 1 {
		cfg.MaxBatch = 8192
	}
	if cfg.MaxFrameBytes <= 0 {
		cfg.MaxFrameBytes = DefaultMaxFrameBytes
	}
	if cfg.AlphabetSize < 1 || cfg.AlphabetSize > alphabet.MaxSize {
		cfg.AlphabetSize = alphabet.MaxSize
	}
	pool, err := online.NewPool(cfg.NewTenant)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		router:  newRouter(cfg.Shards, cfg.QueueDepth),
		pool:    pool,
		tenants: make(map[string]*tenantState),
	}
	if reg := cfg.Registry; reg != nil {
		s.mAccepted = reg.Counter("serve/accepted")
		s.mScored = reg.Counter("serve/scored")
		s.mBusy = reg.Counter("serve/busy")
		s.mAlarms = reg.Counter("serve/alarms")
		s.mSymbols = reg.Counter("online/symbols")
		s.mWdAlarms = reg.Counter("online/alarms")
		s.mTenants = reg.Gauge("serve/tenants")
		s.mLatency = reg.Sketch("serve/ingest_latency")
		s.tracer = reg.Tracer()
	}
	return s, nil
}

// Shards returns the worker shard count.
func (s *Server) Shards() int { return s.router.shards() }

// MaxFrameBytes returns the configured TCP frame payload bound.
func (s *Server) MaxFrameBytes() int { return s.cfg.MaxFrameBytes }

// TenantShard returns the shard a tenant id routes to — deterministic
// FNV-1a partitioning, the same recipe the checkpoint journal uses for grid
// sharding, so a tenant's placement is stable across restarts.
func (s *Server) TenantShard(id string) int {
	return checkpoint.ShardOf(id, 0, 0, s.router.shards())
}

// Submit routes one batch for tenant id. On acceptance (nil return) the
// batch WILL be scored — even through a drain — and done is invoked exactly
// once from the tenant's shard worker with the outcome. A non-nil return
// means nothing was accepted and done will not be called: ErrBusy (shard
// queue full — retry), ErrDraining, or a validation/pool error.
//
// closeAfter retires the tenant after the batch: its scorer is Reset and
// recycled, and a later Submit for the same id begins a fresh stream.
func (s *Server) Submit(id string, syms []alphabet.Symbol, closeAfter bool, done func(Result)) error {
	if s.draining.Load() {
		return ErrDraining
	}
	if id == "" {
		return errors.New("serve: empty tenant id")
	}
	if len(id) > 255 {
		return errors.New("serve: tenant id longer than 255 bytes")
	}
	if len(syms) > s.cfg.MaxBatch {
		return fmt.Errorf("serve: batch of %d exceeds max %d", len(syms), s.cfg.MaxBatch)
	}
	for i, sym := range syms {
		if int(sym) >= s.cfg.AlphabetSize {
			return fmt.Errorf("serve: symbol %d at offset %d outside alphabet of %d", sym, i, s.cfg.AlphabetSize)
		}
	}

	st, fresh, err := s.lookup(id, closeAfter)
	if err != nil {
		return err
	}

	start := time.Now()
	n := len(syms)
	task := func() {
		var span *obs.TraceSpan
		if s.tracer != nil {
			span = s.tracer.Start("serve/batch", "serve")
			span.SetLane(st.shard)
			span.SetAttr("tenant", st.id)
			span.SetAttrInt("events", n)
		}
		responses, alarms, serr := st.sc.PushBatch(syms)
		s.scoredN.Add(int64(n))
		s.alarmsN.Add(int64(alarms))
		if closeAfter {
			s.pool.Put(st.sc)
		}
		s.mScored.Add(int64(n))
		s.mSymbols.Add(int64(n))
		if alarms > 0 {
			s.mAlarms.Add(int64(alarms))
			s.mWdAlarms.Add(int64(alarms))
		}
		// One sketch observation per batch, not per event: the sketch is
		// mutex-guarded and a per-event observe would serialize the shards.
		s.mLatency.Observe(time.Since(start).Seconds())
		span.End()
		done(Result{Responses: responses, Alarms: alarms, Closed: closeAfter, Err: serr})
	}
	if err := s.router.submit(st.shard, task); err != nil {
		s.submitFailed(st, fresh, closeAfter)
		if errors.Is(err, ErrBusy) {
			s.busyN.Add(1)
			s.mBusy.Inc()
		}
		return err
	}
	s.acceptedN.Add(int64(n))
	s.mAccepted.Add(int64(n))
	return nil
}

// lookup finds or creates the tenant's state. When closeAfter is set the
// state is removed from the map here, at submission time: any later Submit
// for the same id creates a fresh stream, and because both route to the same
// shard queue, the close batch always scores before the fresh one.
func (s *Server) lookup(id string, closeAfter bool) (st *tenantState, fresh bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st = s.tenants[id]
	if st == nil {
		sc, err := s.pool.Get()
		if err != nil {
			return nil, false, fmt.Errorf("serve: tenant %q: %w", id, err)
		}
		sc.SetTenant(id)
		st = &tenantState{id: id, shard: s.TenantShard(id), sc: sc}
		fresh = true
		if !closeAfter {
			s.tenants[id] = st
		}
		s.mTenants.Set(float64(len(s.tenants)))
		return st, fresh, nil
	}
	if closeAfter {
		delete(s.tenants, id)
		s.mTenants.Set(float64(len(s.tenants)))
	}
	return st, false, nil
}

// submitFailed undoes lookup's map mutation after a rejected enqueue, so a
// busy shard does not leak the tenant's scorer or strand its stream state.
func (s *Server) submitFailed(st *tenantState, fresh, closeAfter bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if fresh {
		// Nothing was scored; recycle immediately.
		s.pool.Put(st.sc)
		delete(s.tenants, st.id) // no-op when closeAfter kept it out
	} else if closeAfter {
		if _, exists := s.tenants[st.id]; !exists {
			s.tenants[st.id] = st
		}
	}
	s.mTenants.Set(float64(len(s.tenants)))
}

// Stats is a consistent snapshot of the server's lifetime counters.
type Stats struct {
	Accepted int64 `json:"accepted"`
	Scored   int64 `json:"scored"`
	Alarms   int64 `json:"alarms"`
	Busy     int64 `json:"busy"`
	Tenants  int   `json:"tenants"`
}

// Stats reports accepted/scored/alarm/busy totals and the live tenant count.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	tenants := len(s.tenants)
	s.mu.Unlock()
	return Stats{
		Accepted: s.acceptedN.Load(),
		Scored:   s.scoredN.Load(),
		Alarms:   s.alarmsN.Load(),
		Busy:     s.busyN.Load(),
		Tenants:  tenants,
	}
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain stops intake and flushes every accepted batch: after it returns,
// accepted == scored and all shard workers have exited. Transports must stop
// feeding Submit first (they get ErrDraining regardless). Idempotent —
// concurrent callers all block until the flush completes.
func (s *Server) Drain() Stats {
	s.draining.Store(true)
	s.router.close()
	return s.Stats()
}
