package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
)

// maxRequestLine bounds one NDJSON request line; batches are bounded
// separately by Config.MaxBatch, this only guards the scanner.
const maxRequestLine = 1 << 20

// NewHTTPHandler serves the NDJSON ingest API on POST /v1/push: one
// PushRequest per body line, one PushResponse line back per processed
// request, in order. Lines are processed sequentially — a rejected line
// stops the batch, and the status code reports the first failure: 400 for a
// malformed line, 429 when the tenant's shard is saturated (the processed
// prefix is still returned, so the client resumes from the rejected line),
// 503 while draining.
func NewHTTPHandler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/push", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		status := http.StatusOK
		var out bytes.Buffer
		sc := bufio.NewScanner(r.Body)
		sc.Buffer(make([]byte, 0, 64*1024), maxRequestLine)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			req, err := ParsePushRequest(line)
			if err != nil {
				status = http.StatusBadRequest
				appendResponseLine(&out, PushResponse{Error: err.Error()})
				break
			}
			res, err := s.submitAndWait(req)
			if err != nil {
				switch {
				case errors.Is(err, ErrBusy):
					status = http.StatusTooManyRequests
				case errors.Is(err, ErrDraining):
					status = http.StatusServiceUnavailable
				default:
					status = http.StatusBadRequest
				}
				appendResponseLine(&out, PushResponse{Tenant: req.Tenant, Error: err.Error()})
				break
			}
			resp := PushResponse{
				Tenant:   req.Tenant,
				Accepted: len(req.Symbols),
				Alarms:   res.Alarms,
				Closed:   res.Closed,
			}
			if !req.Quiet {
				resp.Responses = res.Responses
			}
			if res.Err != nil {
				resp.Error = res.Err.Error()
				status = http.StatusInternalServerError
			}
			appendResponseLine(&out, resp)
			if res.Err != nil {
				break
			}
		}
		if err := sc.Err(); err != nil && status == http.StatusOK {
			status = http.StatusBadRequest
			appendResponseLine(&out, PushResponse{Error: err.Error()})
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(status)
		w.Write(out.Bytes()) //nolint:errcheck // client gone; nothing to do
	})
	return mux
}

// submitAndWait bridges the async Submit to the handler's sequential
// request/response model.
func (s *Server) submitAndWait(req PushRequest) (Result, error) {
	ch := make(chan Result, 1)
	err := s.Submit(req.Tenant, SymbolsOf(req), req.Close, func(res Result) { ch <- res })
	if err != nil {
		return Result{}, err
	}
	return <-ch, nil
}

func appendResponseLine(out *bytes.Buffer, resp PushResponse) {
	data, err := json.Marshal(resp)
	if err != nil {
		return
	}
	out.Write(data)
	out.WriteByte('\n')
}
