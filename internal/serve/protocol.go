// Package serve implements a multi-tenant streaming detection service:
// thousands of concurrent symbol streams, each scored by a per-tenant pool of
// trained detectors, routed across worker shards with bounded queues and
// explicit backpressure. Two transports share one submission path — NDJSON
// over HTTP for debuggability, and a compact length-prefixed TCP framing for
// throughput.
package serve

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"adiv/internal/alphabet"
)

// Frame types. A client sends Events (score and return responses),
// EventsQuiet (score, ack counts only — the load-generator fast path), or
// Close (retire the tenant's detector back to the pool). The server answers
// with Scores, Closed, Busy (shard queue full — retry later), or Error
// (protocol violation — the connection is dropped).
const (
	FrameEvents      = 1
	FrameScores      = 2
	FrameBusy        = 3
	FrameError       = 4
	FrameClose       = 5
	FrameClosed      = 6
	FrameEventsQuiet = 7
)

// frameMagic guards against foreign traffic hitting the TCP port: every
// frame payload leads with it, so an HTTP request or TLS hello is rejected
// on the first frame instead of being misparsed as a gigantic length.
const frameMagic = 0xAD5E

// frameVersion is the wire version; bump on incompatible layout changes.
const frameVersion = 1

// frameHeaderLen is the fixed payload header: magic (2) + version (1) +
// type (1) + tenant length (1).
const frameHeaderLen = 5

// DefaultMaxFrameBytes bounds a single frame's payload. At one byte per
// symbol this allows ~64k events per batch, far above the useful batch size;
// anything larger is a protocol error, not a buffering request.
const DefaultMaxFrameBytes = 1 << 16

// Frame decode errors. ErrShortFrame means the buffer holds a valid prefix
// of a frame — read more bytes and retry; every other error is terminal for
// the connection.
var (
	ErrShortFrame     = errors.New("serve: short frame")
	ErrOversizedFrame = errors.New("serve: oversized frame")
	ErrBadMagic       = errors.New("serve: bad frame magic")
	ErrBadVersion     = errors.New("serve: unsupported frame version")
	ErrBadFrameType   = errors.New("serve: unknown frame type")
	ErrBadFrame       = errors.New("serve: malformed frame")
)

// Frame is one decoded wire frame. Body holds the type-specific payload:
// one byte per symbol for Events/EventsQuiet, a scores block (see
// AppendScoresBody) for Scores, and human-readable text for Busy/Error.
type Frame struct {
	Type   uint8
	Tenant string
	Body   []byte
}

// AppendFrame appends f's canonical wire encoding to dst and returns the
// extended slice. It panics if the tenant exceeds 255 bytes or the frame
// would exceed the uint32 length prefix — both are programmer errors, not
// runtime conditions.
func AppendFrame(dst []byte, f Frame) []byte {
	if len(f.Tenant) > 255 {
		panic("serve: tenant longer than 255 bytes")
	}
	payload := frameHeaderLen + len(f.Tenant) + len(f.Body)
	if int64(payload) > math.MaxUint32 {
		panic("serve: frame exceeds uint32 length")
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(payload))
	dst = binary.BigEndian.AppendUint16(dst, frameMagic)
	dst = append(dst, frameVersion, f.Type, uint8(len(f.Tenant)))
	dst = append(dst, f.Tenant...)
	dst = append(dst, f.Body...)
	return dst
}

// DecodeFrame decodes one frame from the front of b. max bounds the payload
// length (DefaultMaxFrameBytes when max <= 0). On success it returns the
// frame and the total bytes consumed (length prefix included); the frame's
// Tenant and Body alias b. ErrShortFrame means b is a valid-so-far prefix;
// any other error means the stream is unrecoverable. A successfully decoded
// frame re-encodes via AppendFrame to exactly the consumed bytes.
func DecodeFrame(b []byte, max int) (Frame, int, error) {
	if max <= 0 {
		max = DefaultMaxFrameBytes
	}
	if len(b) < 4 {
		return Frame{}, 0, ErrShortFrame
	}
	payloadLen := int(binary.BigEndian.Uint32(b))
	if payloadLen < frameHeaderLen {
		return Frame{}, 0, fmt.Errorf("%w: payload length %d below header", ErrBadFrame, payloadLen)
	}
	if payloadLen > max {
		return Frame{}, 0, fmt.Errorf("%w: payload length %d exceeds limit %d", ErrOversizedFrame, payloadLen, max)
	}
	if len(b) < 4+payloadLen {
		return Frame{}, 0, ErrShortFrame
	}
	payload := b[4 : 4+payloadLen]
	if magic := binary.BigEndian.Uint16(payload); magic != frameMagic {
		return Frame{}, 0, fmt.Errorf("%w: 0x%04X", ErrBadMagic, magic)
	}
	if payload[2] != frameVersion {
		return Frame{}, 0, fmt.Errorf("%w: %d", ErrBadVersion, payload[2])
	}
	typ := payload[3]
	switch typ {
	case FrameEvents, FrameScores, FrameBusy, FrameError, FrameClose, FrameClosed, FrameEventsQuiet:
	default:
		return Frame{}, 0, fmt.Errorf("%w: %d", ErrBadFrameType, typ)
	}
	tenantLen := int(payload[4])
	if frameHeaderLen+tenantLen > payloadLen {
		return Frame{}, 0, fmt.Errorf("%w: tenant length %d overruns payload", ErrBadFrame, tenantLen)
	}
	f := Frame{
		Type:   typ,
		Tenant: string(payload[frameHeaderLen : frameHeaderLen+tenantLen]),
		Body:   payload[frameHeaderLen+tenantLen:],
	}
	return f, 4 + payloadLen, nil
}

// ReadFrame reads exactly one frame from r, enforcing max (see DecodeFrame).
// It blocks until a full frame, an error, or EOF; io.EOF at a frame boundary
// is returned as-is so callers can distinguish a clean close from a torn
// frame (io.ErrUnexpectedEOF).
func ReadFrame(r io.Reader, max int) (Frame, error) {
	if max <= 0 {
		max = DefaultMaxFrameBytes
	}
	var prefix [4]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		return Frame{}, err
	}
	payloadLen := int(binary.BigEndian.Uint32(prefix[:]))
	if payloadLen < frameHeaderLen {
		return Frame{}, fmt.Errorf("%w: payload length %d below header", ErrBadFrame, payloadLen)
	}
	if payloadLen > max {
		return Frame{}, fmt.Errorf("%w: payload length %d exceeds limit %d", ErrOversizedFrame, payloadLen, max)
	}
	buf := make([]byte, 4+payloadLen)
	copy(buf, prefix[:])
	if _, err := io.ReadFull(r, buf[4:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	f, _, err := DecodeFrame(buf, max)
	return f, err
}

// AppendScoresBody appends the FrameScores payload: accepted and alarm
// counts, then the per-event responses as little-endian float64 bits (bits,
// not text, so the scores round-trip bit-identically to the serial scorer).
func AppendScoresBody(dst []byte, accepted, alarms int, responses []float64) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(accepted))
	dst = binary.BigEndian.AppendUint32(dst, uint32(alarms))
	for _, r := range responses {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r))
	}
	return dst
}

// ParseScoresBody decodes an AppendScoresBody payload.
func ParseScoresBody(body []byte) (accepted, alarms int, responses []float64, err error) {
	if len(body) < 8 || (len(body)-8)%8 != 0 {
		return 0, 0, nil, fmt.Errorf("%w: scores body length %d", ErrBadFrame, len(body))
	}
	accepted = int(binary.BigEndian.Uint32(body))
	alarms = int(binary.BigEndian.Uint32(body[4:]))
	rest := body[8:]
	if n := len(rest) / 8; n > 0 {
		responses = make([]float64, n)
		for i := range responses {
			responses[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[i*8:]))
		}
	}
	return accepted, alarms, responses, nil
}

// PushRequest is one NDJSON request line on POST /v1/push: a tenant, a batch
// of symbols to score, and optional flags. Quiet suppresses the per-event
// responses in the reply (counts only); Close retires the tenant's detector
// after the batch.
type PushRequest struct {
	Tenant  string `json:"tenant"`
	Symbols []int  `json:"symbols,omitempty"`
	Close   bool   `json:"close,omitempty"`
	Quiet   bool   `json:"quiet,omitempty"`
}

// PushResponse is the NDJSON reply line matching one PushRequest.
type PushResponse struct {
	Tenant    string    `json:"tenant"`
	Accepted  int       `json:"accepted"`
	Alarms    int       `json:"alarms,omitempty"`
	Responses []float64 `json:"responses,omitempty"`
	Closed    bool      `json:"closed,omitempty"`
	Error     string    `json:"error,omitempty"`
}

// ParsePushRequest parses and validates one NDJSON request line. Symbols are
// range-checked against the wire byte (0..255) here; the alphabet-size check
// belongs to the server, which knows the trained model.
func ParsePushRequest(line []byte) (PushRequest, error) {
	var req PushRequest
	if err := json.Unmarshal(line, &req); err != nil {
		return PushRequest{}, fmt.Errorf("serve: bad request line: %w", err)
	}
	if req.Tenant == "" {
		return PushRequest{}, errors.New("serve: request missing tenant")
	}
	if len(req.Tenant) > 255 {
		return PushRequest{}, errors.New("serve: tenant longer than 255 bytes")
	}
	for i, s := range req.Symbols {
		if s < 0 || s > 255 {
			return PushRequest{}, fmt.Errorf("serve: symbol %d out of byte range: %d", i, s)
		}
	}
	return req, nil
}

// SymbolsOf converts a validated request's symbols to the alphabet type.
func SymbolsOf(req PushRequest) []alphabet.Symbol {
	if len(req.Symbols) == 0 {
		return nil
	}
	out := make([]alphabet.Symbol, len(req.Symbols))
	for i, s := range req.Symbols {
		out[i] = alphabet.Symbol(s)
	}
	return out
}
