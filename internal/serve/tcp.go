package serve

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"adiv/internal/alphabet"
)

// TCPServer runs the length-prefixed framing (see protocol.go) on a
// listener. Frames from one connection are submitted in arrival order and
// pipeline freely — the client does not need to wait for a Scores frame
// before sending the next batch; responses carry the tenant id for
// correlation and stay in per-tenant order (one tenant, one shard, FIFO).
type TCPServer struct {
	srv    *Server
	ln     net.Listener
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
}

// NewTCPServer wraps srv on ln; call Serve to start accepting.
func NewTCPServer(srv *Server, ln net.Listener) *TCPServer {
	return &TCPServer{srv: srv, ln: ln, conns: make(map[net.Conn]struct{})}
}

// Addr returns the listener address.
func (t *TCPServer) Addr() net.Addr { return t.ln.Addr() }

// Serve accepts connections until Shutdown closes the listener. It returns
// nil on clean shutdown.
func (t *TCPServer) Serve() error {
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			if t.closed.Load() {
				return nil
			}
			return err
		}
		t.mu.Lock()
		if t.closed.Load() {
			t.mu.Unlock()
			conn.Close()
			return nil
		}
		t.conns[conn] = struct{}{}
		t.wg.Add(1)
		t.mu.Unlock()
		go func() {
			defer func() {
				t.mu.Lock()
				delete(t.conns, conn)
				t.mu.Unlock()
				t.wg.Done()
			}()
			t.handle(conn)
		}()
	}
}

// Shutdown stops intake: closes the listener, kicks every open connection's
// read loop via a read deadline, and waits for the connection handlers to
// finish writing their in-flight responses. Accepted batches are NOT lost —
// handlers wait for their outstanding submissions before exiting.
func (t *TCPServer) Shutdown() {
	if !t.closed.CompareAndSwap(false, true) {
		t.wg.Wait()
		return
	}
	t.ln.Close()
	t.mu.Lock()
	for conn := range t.conns {
		conn.SetReadDeadline(time.Now()) //nolint:errcheck // best-effort kick
	}
	t.mu.Unlock()
	t.wg.Wait()
}

// handle runs one connection: a single read loop submits frames; shard
// workers deliver results to the write side, serialized by wmu. The read
// loop never blocks on a slow shard (Submit is non-blocking), so one
// stalled tenant cannot head-of-line-block a connection's other tenants.
func (t *TCPServer) handle(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReaderSize(conn, 64*1024)
	max := t.srv.MaxFrameBytes()

	var wmu sync.Mutex
	var outstanding sync.WaitGroup
	writeFrame := func(f Frame) {
		wmu.Lock()
		defer wmu.Unlock()
		conn.Write(AppendFrame(nil, f)) //nolint:errcheck // reader sees the broken conn
	}

	for {
		f, err := ReadFrame(r, max)
		if err != nil {
			var nerr net.Error
			switch {
			case err == io.EOF:
				// Clean close at a frame boundary.
			case errors.As(err, &nerr) && nerr.Timeout():
				// Shutdown kicked the read deadline; drain what we have.
			default:
				writeFrame(Frame{Type: FrameError, Body: []byte(err.Error())})
			}
			break
		}
		var closeAfter, quiet bool
		switch f.Type {
		case FrameEvents:
		case FrameEventsQuiet:
			quiet = true
		case FrameClose:
			closeAfter = true
		default:
			writeFrame(Frame{Type: FrameError, Tenant: f.Tenant, Body: []byte("serve: unexpected client frame type")})
			goto drain
		}

		{
			tenant := f.Tenant
			syms := bytesToSymbols(f.Body) // copies; f.Body dies with this frame
			outstanding.Add(1)
			err := t.srv.Submit(tenant, syms, closeAfter, func(res Result) {
				defer outstanding.Done()
				if res.Err != nil {
					writeFrame(Frame{Type: FrameError, Tenant: tenant, Body: []byte(res.Err.Error())})
					return
				}
				typ := uint8(FrameScores)
				if res.Closed {
					typ = FrameClosed
				}
				responses := res.Responses
				if quiet {
					responses = nil
				}
				writeFrame(Frame{
					Type:   typ,
					Tenant: tenant,
					Body:   AppendScoresBody(nil, len(syms), res.Alarms, responses),
				})
			})
			if err != nil {
				outstanding.Done()
				if errors.Is(err, ErrBusy) || errors.Is(err, ErrDraining) {
					writeFrame(Frame{Type: FrameBusy, Tenant: tenant, Body: []byte(err.Error())})
					continue
				}
				writeFrame(Frame{Type: FrameError, Tenant: tenant, Body: []byte(err.Error())})
				break
			}
		}
	}
drain:
	// Every accepted submission still owes this connection a response frame;
	// the conn stays open for writes (only the read side was deadlined).
	outstanding.Wait()
}

func bytesToSymbols(b []byte) []alphabet.Symbol {
	if len(b) == 0 {
		return nil
	}
	out := make([]alphabet.Symbol, len(b))
	for i, v := range b {
		out[i] = alphabet.Symbol(v)
	}
	return out
}
