package serve

import (
	"adiv/internal/alphabet"
	"adiv/internal/online"
)

// TenantScorer is the per-tenant detection unit the server pools and routes
// to. Implementations wrap the online package's streaming components; all
// carry trained models and are recycled across tenants via Reset, so they
// must satisfy the pool contract (Reset leaves no trace of the previous
// stream). None are safe for concurrent use — the router pins each tenant to
// one shard to guarantee serial access.
type TenantScorer interface {
	// PushBatch scores one batch in order, returning the window responses
	// that became ready and how many alarms the batch raised. Implementations
	// that do not expose responses (alarm-only pipelines) return nil.
	PushBatch(syms []alphabet.Symbol) (responses []float64, alarms int, err error)
	// SetTenant stamps the tenant identity into journaled alert records.
	SetTenant(tenant string)
	// Reset clears per-stream state; see online.Scorer.Reset.
	Reset()
}

// ScorerTenant serves raw responses with no alarm thresholding.
type ScorerTenant struct {
	S *online.Scorer
}

func (t ScorerTenant) PushBatch(syms []alphabet.Symbol) ([]float64, int, error) {
	responses, err := t.S.PushAll(syms)
	return responses, 0, err
}

func (t ScorerTenant) SetTenant(string) {}
func (t ScorerTenant) Reset()           { t.S.Reset() }

// AlarmerTenant serves responses plus threshold alarms, journaling each
// raised alarm under the tenant's identity.
type AlarmerTenant struct {
	A *online.Alarmer
}

func (t AlarmerTenant) PushBatch(syms []alphabet.Symbol) ([]float64, int, error) {
	var responses []float64
	alarms := 0
	for _, sym := range syms {
		r, ready, _, raised, err := t.A.PushScored(sym)
		if err != nil {
			return responses, alarms, err
		}
		if ready {
			responses = append(responses, r)
		}
		if raised {
			alarms++
		}
	}
	return responses, alarms, nil
}

func (t AlarmerTenant) SetTenant(tenant string) { t.A.SetTenant(tenant) }
func (t AlarmerTenant) Reset()                  { t.A.Reset() }

// PipelineTenant serves a veto pipeline: alarms are escalations (primary
// alarms corroborated by the veto family); per-event responses are not
// returned.
type PipelineTenant struct {
	P *online.VetoPipeline
}

func (t PipelineTenant) PushBatch(syms []alphabet.Symbol) ([]float64, int, error) {
	escalated, err := t.P.PushAll(syms)
	return nil, len(escalated), err
}

func (t PipelineTenant) SetTenant(tenant string) { t.P.SetTenant(tenant) }
func (t PipelineTenant) Reset()                  { t.P.Reset() }
