package serve

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"adiv/internal/alphabet"
	"adiv/internal/detector"
	"adiv/internal/detector/stide"
	"adiv/internal/gen"
	"adiv/internal/online"
	"adiv/internal/seq"
)

// testWindow keeps the test detectors cheap while still exercising the
// window machinery.
const testWindow = 4

// testGen builds a small deterministic generator shared by the serving
// tests.
func testGen(t testing.TB) *gen.Generator {
	t.Helper()
	cfg := gen.DefaultConfig()
	cfg.TrainLen = 20_000
	cfg.BackgroundLen = 2_000
	g, err := gen.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// tenantFactory returns a NewTenant hook training stide detectors against a
// shared corpus — the same amortization the real daemon uses.
func tenantFactory(t testing.TB, g *gen.Generator, threshold float64) func() (TenantScorer, error) {
	t.Helper()
	corpus := seq.NewCorpus(g.Training())
	return func() (TenantScorer, error) {
		det, err := stide.New(testWindow)
		if err != nil {
			return nil, err
		}
		if err := detector.TrainWith(det, corpus); err != nil {
			return nil, err
		}
		if threshold > 0 {
			a, err := online.NewAlarmer(det, threshold)
			if err != nil {
				return nil, err
			}
			return AlarmerTenant{A: a}, nil
		}
		s, err := online.NewScorer(det)
		if err != nil {
			return nil, err
		}
		return ScorerTenant{S: s}, nil
	}
}

func newTestServer(t testing.TB, shards, queueDepth int, threshold float64) *Server {
	t.Helper()
	s, err := NewServer(Config{
		Shards:     shards,
		QueueDepth: queueDepth,
		NewTenant:  tenantFactory(t, testGen(t), threshold),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// submitWait submits one batch and blocks for its result, retrying ErrBusy —
// the client contract under backpressure.
func submitWait(t testing.TB, s *Server, tenant string, syms []alphabet.Symbol, closeAfter bool) Result {
	t.Helper()
	ch := make(chan Result, 1)
	for {
		err := s.Submit(tenant, syms, closeAfter, func(res Result) { ch <- res })
		if err == nil {
			break
		}
		if !errors.Is(err, ErrBusy) {
			t.Fatalf("Submit(%s): %v", tenant, err)
		}
		runtime.Gosched()
	}
	return <-ch
}

// serialResponses is the ground truth: the same stream through a fresh
// serial Scorer.
func serialResponses(t testing.TB, g *gen.Generator, stream seq.Stream) []float64 {
	t.Helper()
	sc, err := tenantFactory(t, g, 0)()
	if err != nil {
		t.Fatal(err)
	}
	responses, _, err := sc.PushBatch(stream)
	if err != nil {
		t.Fatal(err)
	}
	return responses
}

// TestServingEquivalence is the core property: concurrent tenants batched
// through the sharded server receive responses bit-identical to a serial
// online.Scorer.PushAll of their stream, for every shard count.
func TestServingEquivalence(t *testing.T) {
	g := testGen(t)
	const tenants = 6
	const events = 1_500
	streams := make([]seq.Stream, tenants)
	want := make([][]float64, tenants)
	for i := range streams {
		streams[i] = g.Noisy(events, uint64(i))
		want[i] = serialResponses(t, g, streams[i])
	}
	for _, shards := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			s := newTestServer(t, shards, 8, 0)
			var wg sync.WaitGroup
			got := make([][]float64, tenants)
			for i := 0; i < tenants; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					tenant := fmt.Sprintf("tenant-%d", i)
					stream := streams[i]
					// Ragged batch size so batch boundaries never align
					// with window boundaries.
					for off := 0; off < len(stream); off += 97 {
						end := off + 97
						if end > len(stream) {
							end = len(stream)
						}
						res := submitWait(t, s, tenant, stream[off:end], end == len(stream))
						if res.Err != nil {
							t.Errorf("tenant %d: %v", i, res.Err)
							return
						}
						got[i] = append(got[i], res.Responses...)
					}
				}(i)
			}
			wg.Wait()
			stats := s.Drain()
			if stats.Accepted != stats.Scored {
				t.Fatalf("drain: accepted %d != scored %d", stats.Accepted, stats.Scored)
			}
			if stats.Accepted != int64(tenants*events) {
				t.Fatalf("accepted %d, want %d", stats.Accepted, tenants*events)
			}
			for i := range got {
				if len(got[i]) != len(want[i]) {
					t.Fatalf("tenant %d: %d responses, want %d", i, len(got[i]), len(want[i]))
				}
				for j := range got[i] {
					if math.Float64bits(got[i][j]) != math.Float64bits(want[i][j]) {
						t.Fatalf("tenant %d response %d: served %v != serial %v", i, j, got[i][j], want[i][j])
					}
				}
			}
		})
	}
}

// tenantOnShard finds a tenant id hashing to the given shard.
func tenantOnShard(t testing.TB, s *Server, shard int) string {
	t.Helper()
	for i := 0; i < 10_000; i++ {
		id := fmt.Sprintf("probe-%d", i)
		if s.TenantShard(id) == shard {
			return id
		}
	}
	t.Fatalf("no tenant id found for shard %d", shard)
	return ""
}

// TestBackpressureStalledShard pins one shard's worker and shows the
// contract: that shard's tenants get ErrBusy immediately (no blocking, no
// queue growth past the bound), while tenants on other shards stream
// unimpeded.
func TestBackpressureStalledShard(t *testing.T) {
	const depth = 2
	s := newTestServer(t, 2, depth, 0)
	defer s.Drain()

	stalled := tenantOnShard(t, s, 0)
	flowing := tenantOnShard(t, s, 1)
	syms := []alphabet.Symbol{0, 1, 2, 3}

	// Occupy shard 0's worker with a task that blocks until released.
	started := make(chan struct{})
	release := make(chan struct{})
	if err := s.Submit(stalled, syms, false, func(Result) {
		close(started)
		<-release
	}); err != nil {
		t.Fatal(err)
	}
	<-started

	// Fill shard 0's queue to its bound...
	for i := 0; i < depth; i++ {
		if err := s.Submit(stalled, syms, false, func(Result) {}); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	// ...after which submissions reject instantly instead of blocking.
	done := make(chan error, 1)
	go func() { done <- s.Submit(stalled, syms, false, func(Result) {}) }()
	select {
	case err := <-done:
		if !errors.Is(err, ErrBusy) {
			t.Fatalf("saturated shard: %v, want ErrBusy", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Submit blocked on a saturated shard")
	}
	if got := s.Stats().Busy; got == 0 {
		t.Fatal("busy rejection not counted")
	}

	// The other shard is unaffected.
	for i := 0; i < 2*depth; i++ {
		if res := submitWait(t, s, flowing, syms, false); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	close(release)
}

// TestDrainZeroLoss is the shutdown invariant: Drain mid-load loses no
// accepted event — every batch acknowledged to a submitter is scored, and
// its done callback fires, before Drain returns.
func TestDrainZeroLoss(t *testing.T) {
	s := newTestServer(t, 4, 16, 0)
	const submitters = 8
	syms := []alphabet.Symbol{0, 1, 2, 3, 4, 5}

	var accepted, completed atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := fmt.Sprintf("drain-%d", i)
			for {
				select {
				case <-stop:
					return
				default:
				}
				err := s.Submit(tenant, syms, false, func(Result) {
					completed.Add(int64(len(syms)))
				})
				switch {
				case err == nil:
					accepted.Add(int64(len(syms)))
				case errors.Is(err, ErrBusy):
					runtime.Gosched()
				case errors.Is(err, ErrDraining):
					return
				default:
					t.Errorf("tenant %d: %v", i, err)
					return
				}
			}
		}(i)
	}
	time.Sleep(50 * time.Millisecond)
	stats := s.Drain()
	close(stop)
	wg.Wait()

	if stats.Accepted != stats.Scored {
		t.Fatalf("accepted %d != scored %d after drain", stats.Accepted, stats.Scored)
	}
	// Submitters may have had acks in flight when Drain snapshotted; settle
	// against the final counters.
	final := s.Stats()
	if got := accepted.Load(); got != final.Accepted {
		t.Fatalf("submitters acked %d, server accepted %d", got, final.Accepted)
	}
	if got := completed.Load(); got != final.Scored {
		t.Fatalf("callbacks delivered %d events, server scored %d", got, final.Scored)
	}
	if final.Accepted == 0 {
		t.Fatal("drain test accepted no events")
	}
	// Post-drain submissions are refused.
	if err := s.Submit("late", syms, false, func(Result) {}); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain Submit: %v, want ErrDraining", err)
	}
}

// TestCloseRecyclesScorer checks the pool path end to end: closing a tenant
// returns its scorer, and a re-opened tenant starts a fresh stream rather
// than resuming the old window.
func TestCloseRecyclesScorer(t *testing.T) {
	g := testGen(t)
	s := newTestServer(t, 2, 8, 0)
	defer s.Drain()

	stream := g.Noisy(600, 1)
	want := serialResponses(t, g, stream)

	for round := 0; round < 3; round++ {
		res := submitWait(t, s, "recycled", stream, false)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if len(res.Responses) != len(want) {
			t.Fatalf("round %d: %d responses, want %d", round, len(res.Responses), len(want))
		}
		for j := range want {
			if math.Float64bits(res.Responses[j]) != math.Float64bits(want[j]) {
				t.Fatalf("round %d response %d: %v != %v", round, j, res.Responses[j], want[j])
			}
		}
		closed := submitWait(t, s, "recycled", nil, true)
		if !closed.Closed {
			t.Fatalf("round %d: close not acknowledged", round)
		}
	}
	if s.Stats().Tenants != 0 {
		t.Fatalf("%d tenants left after closes", s.Stats().Tenants)
	}
}

// TestSubmitValidation: invalid batches are rejected synchronously, before
// acceptance, so they can never violate the drain invariant.
func TestSubmitValidation(t *testing.T) {
	g := testGen(t)
	s, err := NewServer(Config{
		NewTenant:    tenantFactory(t, g, 0),
		AlphabetSize: g.Alphabet().Size(),
		MaxBatch:     8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()

	noop := func(Result) {}
	if err := s.Submit("", []alphabet.Symbol{1}, false, noop); err == nil {
		t.Fatal("empty tenant accepted")
	}
	if err := s.Submit("t", []alphabet.Symbol{255}, false, noop); err == nil {
		t.Fatal("out-of-alphabet symbol accepted")
	}
	if err := s.Submit("t", make([]alphabet.Symbol, 9), false, noop); err == nil {
		t.Fatal("oversized batch accepted")
	}
	if got := s.Stats().Accepted; got != 0 {
		t.Fatalf("rejections counted as accepted: %d", got)
	}
}

func TestAlarmerTenantCountsAlarms(t *testing.T) {
	g := testGen(t)
	s, err := NewServer(Config{NewTenant: tenantFactory(t, g, 1.0)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()

	// A noisy stream with a canonical rare sequence planted mid-stream must
	// raise at least one alarm at threshold 1 (stide alarms on any window
	// containing foreign content).
	mfs, err := gen.CanonicalMFS(6)
	if err != nil {
		t.Fatal(err)
	}
	stream := append(append(seq.Stream{}, g.Background()[:800]...), mfs...)
	stream = append(stream, g.Background()[800:1600]...)
	res := submitWait(t, s, "alarming", stream, false)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Alarms == 0 {
		t.Fatal("planted rare sequence raised no alarms")
	}
	if s.Stats().Alarms != int64(res.Alarms) {
		t.Fatalf("stats alarms %d != result %d", s.Stats().Alarms, res.Alarms)
	}
}

// BenchmarkServeIngest drives the submit path with a single hot tenant and
// reports per-event cost; the harness runs it with -benchmem so allocation
// regressions on the ingest path are visible.
func BenchmarkServeIngest(b *testing.B) {
	s := newTestServer(b, runtime.NumCPU(), 256, 0)
	const batch = 512
	g := testGen(b)
	stream := g.Noisy(batch, 42)
	ch := make(chan Result, 1)
	done := func(res Result) { ch <- res }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for {
			err := s.Submit("bench", stream, false, done)
			if err == nil {
				break
			}
			if !errors.Is(err, ErrBusy) {
				b.Fatal(err)
			}
			runtime.Gosched()
		}
		res := <-ch
		if res.Err != nil {
			b.Fatal(res.Err)
		}
	}
	b.StopTimer()
	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(batch*b.N)/elapsed, "events/s")
	}
	s.Drain()
}
