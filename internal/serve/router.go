package serve

import (
	"errors"
	"sync"
)

// Submission errors. ErrBusy is the backpressure signal — the tenant's shard
// queue is full and the caller must retry or shed load; it surfaces as HTTP
// 429 or a Busy frame, never as silent buffering. ErrDraining means the
// server is shutting down and no longer accepts work.
var (
	ErrBusy     = errors.New("serve: shard queue full")
	ErrDraining = errors.New("serve: draining")
)

// router runs one worker goroutine per shard, each consuming a bounded queue
// of closures. A tenant is pinned to one shard, so all of a tenant's work
// executes serially in submission order — which is what lets a pooled,
// concurrency-unsafe Scorer serve it without locks.
type router struct {
	// mu guards the submit/close race: submits hold it shared while
	// enqueueing, close holds it exclusively while flipping draining, so a
	// queue is never closed with a send in flight.
	mu       sync.RWMutex
	queues   []chan func()
	draining bool
	closed   bool
	wg       sync.WaitGroup
}

func newRouter(shards, depth int) *router {
	if shards < 1 {
		shards = 1
	}
	if depth < 1 {
		depth = 1
	}
	r := &router{queues: make([]chan func(), shards)}
	for i := range r.queues {
		q := make(chan func(), depth)
		r.queues[i] = q
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			for task := range q {
				task()
			}
		}()
	}
	return r
}

func (r *router) shards() int { return len(r.queues) }

// submit enqueues task on shard without blocking: a full queue returns
// ErrBusy immediately rather than stalling the caller (and with it, every
// other tenant on the same connection).
func (r *router) submit(shard int, task func()) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.draining {
		return ErrDraining
	}
	select {
	case r.queues[shard] <- task:
		return nil
	default:
		return ErrBusy
	}
}

// depth reports a shard's current queue occupancy (telemetry only).
func (r *router) depth(shard int) int { return len(r.queues[shard]) }

// close stops intake, then drains: every task accepted before close runs to
// completion before close returns. Idempotent.
func (r *router) close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.draining = true
	r.closed = true
	r.mu.Unlock()
	// No submit can be past the draining check now (the Lock above barriers
	// against in-flight RLock holders), so closing is safe.
	for _, q := range r.queues {
		close(q)
	}
	r.wg.Wait()
}
