package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"adiv/internal/rng"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || !almost(s.Mean, 5) || s.Min != 2 || s.Max != 9 {
		t.Errorf("summary %+v", s)
	}
	// Sample standard deviation of this classic data set is ~2.138.
	if math.Abs(s.Std-2.1380899) > 1e-6 {
		t.Errorf("Std = %v", s.Std)
	}
	if !almost(s.Median, 4.5) {
		t.Errorf("Median = %v", s.Median)
	}
}

func TestSummarizeEdge(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary %+v", s)
	}
	s := Summarize([]float64{3})
	if s.N != 1 || s.Mean != 3 || s.Std != 0 || s.Median != 3 {
		t.Errorf("singleton summary %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		q, want float64
	}{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.125, 1.5}, {-1, 1}, {2, 5},
	}
	for _, tt := range tests {
		if got := Quantile(sorted, tt.q); !almost(got, tt.want) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
}

func TestQuantilePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Quantile(empty) did not panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestWilsonInterval(t *testing.T) {
	iv, err := WilsonInterval(5, 100, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Contains(0.05) {
		t.Errorf("interval %+v excludes the point estimate", iv)
	}
	if iv.Lo < 0 || iv.Hi > 1 || iv.Lo >= iv.Hi {
		t.Errorf("interval %+v malformed", iv)
	}
	// Zero successes: the lower bound is exactly zero and the upper bound
	// is small but positive — the rule-of-three regime.
	iv, err = WilsonInterval(0, 1000, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo != 0 || iv.Hi <= 0 || iv.Hi > 0.01 {
		t.Errorf("zero-successes interval %+v", iv)
	}
}

func TestWilsonIntervalErrors(t *testing.T) {
	if _, err := WilsonInterval(1, 0, 1.96); err == nil {
		t.Errorf("n=0 accepted")
	}
	if _, err := WilsonInterval(-1, 10, 1.96); err == nil {
		t.Errorf("negative successes accepted")
	}
	if _, err := WilsonInterval(11, 10, 1.96); err == nil {
		t.Errorf("successes > n accepted")
	}
	if _, err := WilsonInterval(1, 10, 0); err == nil {
		t.Errorf("z=0 accepted")
	}
}

// TestWilsonContainsTruthUsually: for repeated Bernoulli samples the 95%
// interval should contain the true rate most of the time.
func TestWilsonContainsTruthUsually(t *testing.T) {
	src := rng.New(42)
	const p = 0.1
	const trials = 200
	contains := 0
	for rep := 0; rep < 100; rep++ {
		successes := 0
		for i := 0; i < trials; i++ {
			if src.Float64() < p {
				successes++
			}
		}
		iv, err := WilsonInterval(successes, trials, 1.96)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Contains(p) {
			contains++
		}
	}
	if contains < 85 {
		t.Errorf("95%% interval contained the truth only %d of 100 times", contains)
	}
}

func TestBootstrapMeanCI(t *testing.T) {
	xs := make([]float64, 200)
	src := rng.New(7)
	for i := range xs {
		xs[i] = src.Float64() // mean 0.5
	}
	iv, err := BootstrapMeanCI(xs, 500, 0.95, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Contains(0.5) {
		t.Errorf("bootstrap CI %+v excludes 0.5", iv)
	}
	if iv.Hi-iv.Lo > 0.2 {
		t.Errorf("bootstrap CI %+v implausibly wide", iv)
	}
	// Determinism: same source seed, same interval.
	iv2, err := BootstrapMeanCI(xs, 500, 0.95, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if iv != iv2 {
		t.Errorf("bootstrap not deterministic: %+v vs %+v", iv, iv2)
	}
}

func TestBootstrapErrors(t *testing.T) {
	src := rng.New(1)
	if _, err := BootstrapMeanCI(nil, 100, 0.95, src); err == nil {
		t.Errorf("empty sample accepted")
	}
	if _, err := BootstrapMeanCI([]float64{1}, 5, 0.95, src); err == nil {
		t.Errorf("too few resamples accepted")
	}
	if _, err := BootstrapMeanCI([]float64{1}, 100, 1.5, src); err == nil {
		t.Errorf("confidence 1.5 accepted")
	}
}

func TestAUC(t *testing.T) {
	// Unit step at 0: perfect classifier ROC → area 1.
	got, err := AUC([]float64{0, 0, 1}, []float64{0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got, 1) {
		t.Errorf("perfect AUC = %v", got)
	}
	// Diagonal → 0.5.
	got, err = AUC([]float64{0, 0.5, 1}, []float64{0, 0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got, 0.5) {
		t.Errorf("diagonal AUC = %v", got)
	}
	// Unsorted input is sorted internally.
	got, err = AUC([]float64{1, 0, 0.5}, []float64{1, 0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got, 0.5) {
		t.Errorf("unsorted AUC = %v", got)
	}
}

func TestAUCErrors(t *testing.T) {
	if _, err := AUC([]float64{0}, []float64{0, 1}); err == nil {
		t.Errorf("length mismatch accepted")
	}
	if _, err := AUC([]float64{0}, []float64{0}); err == nil {
		t.Errorf("single point accepted")
	}
}

// TestQuantileMonotone: quantiles are monotone in q for any sample.
func TestQuantileMonotone(t *testing.T) {
	check := func(raw []byte, q1Raw, q2Raw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, b := range raw {
			xs[i] = float64(b)
		}
		sort.Float64s(xs)
		q1 := float64(q1Raw) / 255
		q2 := float64(q2Raw) / 255
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		return Quantile(xs, q1) <= Quantile(xs, q2)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}
