// Package stats provides the small statistical toolkit the experiment
// harness reports with: descriptive summaries, proportion confidence
// intervals for hit/false-alarm rates, and deterministic bootstrap
// resampling for comparing detector configurations.
package stats

import (
	"fmt"
	"math"
	"sort"

	"adiv/internal/rng"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Median, Max float64
}

// Summarize computes descriptive statistics. An empty sample yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs)}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	s.Median = Quantile(sorted, 0.5)
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of an ascending-sorted
// sample by linear interpolation. It panics on an empty sample; that is a
// programming error in the caller.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Interval is a two-sided confidence interval.
type Interval struct {
	Lo, Hi float64
}

// Contains reports whether v lies within the interval.
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v <= iv.Hi }

// WilsonInterval returns the Wilson score interval for a proportion of
// successes among n trials at approximately the given z (1.96 ≈ 95%). It
// returns an error for invalid inputs. The Wilson interval behaves sanely
// at the extreme rates the suppression experiments produce (0 false alarms
// out of thousands of positions).
func WilsonInterval(successes, n int, z float64) (Interval, error) {
	if n <= 0 {
		return Interval{}, fmt.Errorf("stats: Wilson interval with n = %d", n)
	}
	if successes < 0 || successes > n {
		return Interval{}, fmt.Errorf("stats: %d successes out of %d trials", successes, n)
	}
	if z <= 0 {
		return Interval{}, fmt.Errorf("stats: non-positive z %v", z)
	}
	p := float64(successes) / float64(n)
	nn := float64(n)
	denom := 1 + z*z/nn
	center := (p + z*z/(2*nn)) / denom
	margin := z / denom * math.Sqrt(p*(1-p)/nn+z*z/(4*nn*nn))
	lo := center - margin
	hi := center + margin
	// The Wilson bounds are exactly 0 (resp. 1) at the empty (resp. full)
	// success count; pin them against floating-point residue.
	if lo < 0 || successes == 0 {
		lo = 0
	}
	if hi > 1 || successes == n {
		hi = 1
	}
	return Interval{Lo: lo, Hi: hi}, nil
}

// BootstrapMeanCI returns a percentile bootstrap confidence interval for
// the mean of xs, using resamples draws from the deterministic source.
// confidence is the two-sided level in (0,1), e.g. 0.95.
func BootstrapMeanCI(xs []float64, resamples int, confidence float64, src *rng.Source) (Interval, error) {
	if len(xs) == 0 {
		return Interval{}, fmt.Errorf("stats: bootstrap of empty sample")
	}
	if resamples < 10 {
		return Interval{}, fmt.Errorf("stats: too few resamples %d", resamples)
	}
	if confidence <= 0 || confidence >= 1 {
		return Interval{}, fmt.Errorf("stats: confidence %v outside (0,1)", confidence)
	}
	means := make([]float64, resamples)
	for r := 0; r < resamples; r++ {
		sum := 0.0
		for i := 0; i < len(xs); i++ {
			sum += xs[src.Intn(len(xs))]
		}
		means[r] = sum / float64(len(xs))
	}
	sort.Float64s(means)
	alpha := (1 - confidence) / 2
	return Interval{
		Lo: Quantile(means, alpha),
		Hi: Quantile(means, 1-alpha),
	}, nil
}

// AUC returns the area under a curve given as (x, y) points by trapezoidal
// integration after sorting by x. Points must have equal lengths and at
// least two entries; x values outside [0,1] are accepted (the caller
// normalizes).
func AUC(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("stats: AUC with %d x and %d y values", len(x), len(y))
	}
	if len(x) < 2 {
		return 0, fmt.Errorf("stats: AUC needs at least two points, got %d", len(x))
	}
	type pt struct{ x, y float64 }
	pts := make([]pt, len(x))
	for i := range x {
		pts[i] = pt{x[i], y[i]}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })
	area := 0.0
	for i := 1; i < len(pts); i++ {
		area += (pts[i].x - pts[i-1].x) * (pts[i].y + pts[i-1].y) / 2
	}
	return area, nil
}
