// Package core orchestrates the paper's evaluation methodology end to end
// (Section 5): define the anomaly, synthesize the training data, synthesize
// the background and inject one verified minimal foreign sequence per
// anomaly size, deploy detectors over the full (anomaly size × detector
// window) grid, and assemble performance maps.
package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"adiv/internal/anomaly"
	"adiv/internal/checkpoint"
	"adiv/internal/eval"
	"adiv/internal/gen"
	"adiv/internal/inject"
	"adiv/internal/obs"
	"adiv/internal/seq"
)

// Config parameterizes a full evaluation. Zero value is not useful; start
// from DefaultConfig (the paper's parameters) and shrink for quick runs.
type Config struct {
	// Gen configures the data generator (training length, excursion
	// probability, seed).
	Gen gen.Config
	// MinSize and MaxSize bound the injected minimal-foreign-sequence
	// lengths (paper: 2 to 9).
	MinSize, MaxSize int
	// MinWindow and MaxWindow bound the detector-window lengths
	// (paper: 2 to 15).
	MinWindow, MaxWindow int
	// RareCutoff is the rare-sequence relative-frequency bound
	// (paper: 0.5%).
	RareCutoff float64
}

// DefaultConfig returns the paper-faithful evaluation parameters: a
// one-million-element training stream, anomaly sizes 2–9, detector windows
// 2–15, rare cutoff 0.5%.
func DefaultConfig() Config {
	return Config{
		Gen:        gen.DefaultConfig(),
		MinSize:    gen.MinAnomalySize,
		MaxSize:    gen.MaxAnomalySize,
		MinWindow:  gen.MinWindow,
		MaxWindow:  gen.MaxWindow,
		RareCutoff: gen.RareCutoff,
	}
}

// QuickConfig returns a reduced configuration (shorter streams, same grid)
// sized for unit tests and example programs.
func QuickConfig() Config {
	cfg := DefaultConfig()
	cfg.Gen.TrainLen = 120_000
	cfg.Gen.BackgroundLen = 2_000
	return cfg
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Gen.Validate(); err != nil {
		return err
	}
	if c.MinSize < gen.MinAnomalySize || c.MaxSize > gen.MaxAnomalySize || c.MinSize > c.MaxSize {
		return fmt.Errorf("core: anomaly size range [%d,%d] outside [%d,%d]",
			c.MinSize, c.MaxSize, gen.MinAnomalySize, gen.MaxAnomalySize)
	}
	if c.MinWindow < 1 || c.MinWindow > c.MaxWindow {
		return fmt.Errorf("core: invalid window range [%d,%d]", c.MinWindow, c.MaxWindow)
	}
	if c.RareCutoff <= 0 || c.RareCutoff >= 1 {
		return fmt.Errorf("core: rare cutoff %v outside (0,1)", c.RareCutoff)
	}
	return nil
}

// Corpus is the paper's full evaluation data suite: one training stream and
// one test stream per anomaly size, each test stream holding a single
// verified minimal foreign sequence injected under the boundary-sequence
// constraint for every window width in the configured range. (The paper
// counts 8 sizes × 14 window lengths = 112 test streams; the streams are
// identical across window lengths, so the suite stores one per size and the
// harness deploys each at all fourteen widths.)
type Corpus struct {
	// Config records the parameters the corpus was built with.
	Config Config
	// Training is the synthesized training (normal) stream.
	Training seq.Stream
	// TrainIndex serves sequence-database queries over Training.
	TrainIndex *seq.Index
	// Background is the clean test background (pure common-cycle).
	Background seq.Stream
	// Anomalies holds the verification report of the injected MFS for each
	// anomaly size.
	Anomalies map[int]anomaly.Report
	// Placements holds the injected test stream for each anomaly size.
	Placements map[int]inject.Placement
}

// BuildCorpus synthesizes and verifies the full evaluation suite.
func BuildCorpus(cfg Config) (*Corpus, error) {
	return BuildCorpusObserved(cfg, nil)
}

// BuildCorpusObserved is BuildCorpus with run telemetry recorded into reg
// (nil disables it, reducing to BuildCorpus): an overall corpus/build span
// with nested spans for training-stream synthesis, sequence indexing, and
// anomaly injection, plus corpus.start/corpus.done events.
func BuildCorpusObserved(cfg Config, reg *obs.Registry) (*Corpus, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	reg.Event("corpus.start", obs.Fields{
		"trainLen":      cfg.Gen.TrainLen,
		"backgroundLen": cfg.Gen.BackgroundLen,
		"sizes":         fmt.Sprintf("%d-%d", cfg.MinSize, cfg.MaxSize),
		"windows":       fmt.Sprintf("%d-%d", cfg.MinWindow, cfg.MaxWindow),
		"seed":          cfg.Gen.Seed,
	})
	build := reg.SpanTraced("corpus/build", "corpus")
	build.SetLane(obs.LaneMain)
	g, err := gen.New(cfg.Gen)
	if err != nil {
		return nil, err
	}
	g.Instrument(reg)
	trainSpan := build.Child("train")
	training := g.Training()
	trainSpan.End()
	indexSpan := build.Child("index")
	ix := seq.NewIndex(training)
	ix.Corpus().Instrument(reg)
	indexSpan.End()
	background := g.Background()

	corpus := &Corpus{
		Config:     cfg,
		Training:   training,
		TrainIndex: ix,
		Background: background,
		Anomalies:  make(map[int]anomaly.Report, cfg.MaxSize-cfg.MinSize+1),
		Placements: make(map[int]inject.Placement, cfg.MaxSize-cfg.MinSize+1),
	}
	opts := inject.Options{
		MinWidth:      cfg.MinWindow,
		MaxWidth:      cfg.MaxWindow,
		ContextWidths: true, // keep (DW+1)-gram boundaries clean for the predictors
	}
	spec := g.Spec()
	injectSpan := build.Child("inject")
	for size := cfg.MinSize; size <= cfg.MaxSize; size++ {
		m, err := spec.CanonicalMFS(size)
		if err != nil {
			return nil, fmt.Errorf("core: anomaly size %d: %w", size, err)
		}
		report, err := anomaly.MustBeMFS(ix, m, cfg.RareCutoff)
		if err != nil {
			return nil, fmt.Errorf("core: anomaly size %d: %w", size, err)
		}
		placement, err := inject.Inject(ix, background, report.Sequence, opts)
		if err != nil {
			return nil, fmt.Errorf("core: injecting size-%d anomaly: %w", size, err)
		}
		corpus.Anomalies[size] = report
		corpus.Placements[size] = placement
	}
	injectSpan.End()
	buildMs := float64(build.End().Nanoseconds()) / 1e6
	reg.Event("corpus.done", obs.Fields{
		"trainLen": len(training),
		"sizes":    len(corpus.Placements),
		"ms":       buildMs,
	})
	return corpus, nil
}

// TrainingDBs returns the shared per-width sequence-database cache over the
// training stream — the same cache the verification and injection steps
// populated while the corpus was built, so detector training typically
// finds its databases already present. Callers must treat every *seq.DB it
// hands out as read-only.
func (c *Corpus) TrainingDBs() *seq.Corpus { return c.TrainIndex.Corpus() }

// Hash digests the corpus content — the training stream, the background
// stream, and every placement's stream and anomaly position — as FNV-1a
// over the raw symbol bytes. Two corpora hash equal exactly when a detector
// trained and deployed on one behaves identically on the other, which is
// what checkpoint fingerprints need: the hash catches any data difference
// (a regenerated stream, an edited corpus directory) that the
// configuration fields cannot express.
func (c *Corpus) Hash() string {
	h := fnv.New64a()
	var buf [8]byte
	writeInt := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeStream := func(s seq.Stream) {
		writeInt(len(s))
		h.Write(s.Bytes())
	}
	writeStream(c.Training)
	writeStream(c.Background)
	for _, size := range c.Sizes() {
		p := c.Placements[size]
		writeInt(size)
		writeInt(p.Start)
		writeInt(p.AnomalyLen)
		writeStream(p.Stream)
	}
	return fmt.Sprintf("fnv1a:%016x", h.Sum64())
}

// Fingerprint summarizes everything a resumed checkpoint journal must share
// with the run that wrote it: the driver command, the generator parameters,
// the evaluated grid bounds, the detector families, the corpus content
// hash, and any run-mode qualifier (classification regime, sweep mode) the
// caller passes as extra. checkpoint.Open refuses a journal whose
// fingerprint differs in any field — the resume-equivalence contract only
// holds between identically configured runs.
func (c *Corpus) Fingerprint(command string, detectors []string, extra string) checkpoint.Fingerprint {
	sorted := append([]string(nil), detectors...)
	sort.Strings(sorted)
	spec := gen.DefaultSpec()
	if c.Config.Gen.Spec != nil {
		spec = *c.Config.Gen.Spec
	}
	return checkpoint.Fingerprint{
		Command:       command,
		AlphabetSize:  spec.AlphabetSize(),
		Seed:          c.Config.Gen.Seed,
		TrainLen:      c.Config.Gen.TrainLen,
		BackgroundLen: c.Config.Gen.BackgroundLen,
		MinSize:       c.Config.MinSize,
		MaxSize:       c.Config.MaxSize,
		MinWindow:     c.Config.MinWindow,
		MaxWindow:     c.Config.MaxWindow,
		RareCutoff:    c.Config.RareCutoff,
		Detectors:     sorted,
		CorpusHash:    c.Hash(),
		Extra:         extra,
	}
}

// Sizes returns the anomaly sizes present in the corpus, ascending.
func (c *Corpus) Sizes() []int {
	sizes := make([]int, 0, len(c.Placements))
	for s := range c.Placements {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	return sizes
}

// NoisyStream generates n symbols of test data containing naturally
// occurring rare sequences (the same Markov model as the training stream,
// an independent substream of the seed) — the substrate of the Section-7
// false-alarm experiments. stream selects the substream.
func (c *Corpus) NoisyStream(n int, stream uint64) (seq.Stream, error) {
	g, err := gen.New(c.Config.Gen)
	if err != nil {
		return nil, err
	}
	return g.Noisy(n, stream), nil
}

// InjectInto injects the corpus's verified anomaly of the given size into an
// arbitrary background stream at a position satisfying the
// boundary-sequence constraint for the given detector window (and its
// (window+1)-gram contexts).
func (c *Corpus) InjectInto(background seq.Stream, size, window int) (inject.Placement, error) {
	report, ok := c.Anomalies[size]
	if !ok {
		// A corpus loaded from disk carries placements but no verification
		// reports; fall back to the configured spec's canonical sequence.
		g, err := gen.New(c.Config.Gen)
		if err != nil {
			return inject.Placement{}, err
		}
		m, err := g.Spec().CanonicalMFS(size)
		if err != nil {
			return inject.Placement{}, fmt.Errorf("core: no size-%d anomaly in corpus: %w", size, err)
		}
		report = anomaly.Report{Sequence: m}
	}
	opts := inject.Options{MinWidth: window, MaxWidth: window, ContextWidths: true}
	return inject.Inject(c.TrainIndex, background, report.Sequence, opts)
}

// InjectMultiInto injects one verified anomaly per requested size (in
// order, repeats allowed) into an arbitrary background stream at
// boundary-safe, non-overlapping positions for the given detector window —
// the substrate for hit-rate statistics over many independent events.
func (c *Corpus) InjectMultiInto(background seq.Stream, sizes []int, window int) (inject.MultiPlacement, error) {
	anomalies := make([]seq.Stream, 0, len(sizes))
	for _, size := range sizes {
		report, ok := c.Anomalies[size]
		if !ok {
			return inject.MultiPlacement{}, fmt.Errorf("core: no size-%d anomaly in corpus", size)
		}
		anomalies = append(anomalies, report.Sequence)
	}
	opts := inject.Options{MinWidth: window, MaxWidth: window, ContextWidths: true}
	return inject.InjectMulti(c.TrainIndex, background, anomalies, opts, 0)
}

// PerformanceMap deploys a detector family (one instance per window length,
// via factory) across the whole corpus and returns its performance map.
func (c *Corpus) PerformanceMap(name string, factory eval.Factory, opts eval.Options) (*eval.Map, error) {
	return c.PerformanceMapObserved(name, factory, opts, nil)
}

// PerformanceMapObserved is PerformanceMap with run telemetry — per-window
// training durations, scoring throughput, per-cell evaluation timing, and
// cell-completion progress events — recorded into reg (nil disables it).
// All rows train from the corpus's shared sequence-database cache, so
// repeated maps over one corpus (the 4-detector × 14-window figure runs)
// never rebuild a width's database twice.
func (c *Corpus) PerformanceMapObserved(name string, factory eval.Factory, opts eval.Options, reg *obs.Registry) (*eval.Map, error) {
	return eval.BuildMapCorpus(name, factory, c.TrainingDBs(), c.Placements,
		c.Config.MinWindow, c.Config.MaxWindow, opts, reg)
}
