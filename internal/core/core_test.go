package core

import (
	"testing"

	"adiv/internal/detector"
	"adiv/internal/detector/lbr"
	"adiv/internal/detector/markovdet"
	"adiv/internal/detector/stide"
	"adiv/internal/eval"
)

// buildQuickCorpus builds a reduced corpus once per test binary run.
var quickCorpus = func() func(t *testing.T) *Corpus {
	var c *Corpus
	var err error
	built := false
	return func(t *testing.T) *Corpus {
		t.Helper()
		if !built {
			c, err = BuildCorpus(QuickConfig())
			built = true
		}
		if err != nil {
			t.Fatalf("BuildCorpus(QuickConfig()): %v", err)
		}
		return c
	}
}()

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig().Validate() = %v", err)
	}
	if err := QuickConfig().Validate(); err != nil {
		t.Fatalf("QuickConfig().Validate() = %v", err)
	}
}

func TestConfigValidateRejectsBadRanges(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"size below minimum", func(c *Config) { c.MinSize = 1 }},
		{"size above maximum", func(c *Config) { c.MaxSize = 10 }},
		{"inverted sizes", func(c *Config) { c.MinSize, c.MaxSize = 5, 3 }},
		{"zero window", func(c *Config) { c.MinWindow = 0 }},
		{"inverted windows", func(c *Config) { c.MinWindow, c.MaxWindow = 9, 3 }},
		{"rare cutoff zero", func(c *Config) { c.RareCutoff = 0 }},
		{"rare cutoff one", func(c *Config) { c.RareCutoff = 1 }},
		{"train too short", func(c *Config) { c.Gen.TrainLen = 5 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := QuickConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Errorf("Validate() accepted invalid config")
			}
		})
	}
}

func TestBuildCorpusVerifiesAnomalies(t *testing.T) {
	c := quickCorpus(t)
	if got, want := len(c.Sizes()), c.Config.MaxSize-c.Config.MinSize+1; got != want {
		t.Fatalf("corpus has %d anomaly sizes, want %d", got, want)
	}
	for size, report := range c.Anomalies {
		if !report.IsMFS() {
			t.Errorf("size %d: anomaly is not a verified MFS: %+v", size, report)
		}
		if len(report.Sequence) != size {
			t.Errorf("size %d: anomaly has length %d", size, len(report.Sequence))
		}
	}
	for size, p := range c.Placements {
		if p.AnomalyLen != size {
			t.Errorf("size %d: placement anomaly length %d", size, p.AnomalyLen)
		}
		if len(p.Stream) != len(c.Background)+size {
			t.Errorf("size %d: test stream length %d, want %d", size, len(p.Stream), len(c.Background)+size)
		}
	}
}

// TestPerformanceMapShapes is the repository's smoke test for the paper's
// headline result: the three deterministic detectors produce the coverage
// shapes of Figures 3–5.
func TestPerformanceMapShapes(t *testing.T) {
	c := quickCorpus(t)
	opts := eval.DefaultOptions()

	stideMap, err := c.PerformanceMap("stide", func(dw int) (detector.Detector, error) { return stide.New(dw) }, opts)
	if err != nil {
		t.Fatalf("stide map: %v", err)
	}
	markovMap, err := c.PerformanceMap("markov", func(dw int) (detector.Detector, error) { return markovdet.New(dw) }, opts)
	if err != nil {
		t.Fatalf("markov map: %v", err)
	}
	lbMap, err := c.PerformanceMap("lb", func(dw int) (detector.Detector, error) { return lbr.New(dw) }, opts)
	if err != nil {
		t.Fatalf("lb map: %v", err)
	}

	for size := c.Config.MinSize; size <= c.Config.MaxSize; size++ {
		for dw := c.Config.MinWindow; dw <= c.Config.MaxWindow; dw++ {
			// Figure 5: Stide detects iff DW >= AS.
			want := eval.Weak
			if dw >= size {
				want = eval.Capable
			} else {
				want = eval.Blind
			}
			if got := stideMap.Outcome(size, dw); got != want {
				t.Errorf("stide AS=%d DW=%d: outcome %v, want %v (resp %v)",
					size, dw, got, want, stideMap.At(size, dw).MaxResponse)
			}
			// Figure 4: Markov detects iff DW >= AS-1 (edge gain), weak below.
			if dw >= size-1 {
				want = eval.Capable
			} else {
				want = eval.Weak
			}
			if got := markovMap.Outcome(size, dw); got != want {
				t.Errorf("markov AS=%d DW=%d: outcome %v, want %v (resp %v)",
					size, dw, got, want, markovMap.At(size, dw).MaxResponse)
			}
			// Figure 3: L&B never reaches a maximal response anywhere.
			if got := lbMap.Outcome(size, dw); got == eval.Capable {
				t.Errorf("lb AS=%d DW=%d: capable, want blind/weak (resp %v)",
					size, dw, lbMap.At(size, dw).MaxResponse)
			}
		}
	}

	if !markovMap.CoversAtLeast(stideMap) {
		t.Errorf("markov coverage does not include stide coverage")
	}
}
