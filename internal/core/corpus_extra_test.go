package core

import (
	"testing"

	"adiv/internal/eval"
	"adiv/internal/gen"
	"adiv/internal/inject"
)

func TestNoisyStream(t *testing.T) {
	c := quickCorpus(t)
	a, err := c.NoisyStream(3_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 3_000 {
		t.Fatalf("length %d", len(a))
	}
	// Reproducible per substream, distinct across substreams.
	b, err := c.NoisyStream(3_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("substream 1 not reproducible at %d", i)
		}
	}
	other, err := c.NoisyStream(3_000, 2)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i] == other[i] {
			same++
		}
	}
	if same == len(a) {
		t.Errorf("substreams 1 and 2 identical")
	}
	// Noisy data must contain rare symbols (excursions) — that is its point.
	rare := 0
	for _, s := range a {
		if s == 0 || s == 7 {
			rare++
		}
	}
	if rare == 0 {
		t.Errorf("noisy stream has no rare content")
	}
}

func TestNoisyStreamInvalidConfig(t *testing.T) {
	c := &Corpus{Config: Config{}} // zero Gen config fails validation
	if _, err := c.NoisyStream(100, 1); err == nil {
		t.Errorf("NoisyStream with invalid config succeeded")
	}
}

func TestInjectInto(t *testing.T) {
	c := quickCorpus(t)
	noisy, err := c.NoisyStream(4_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.InjectInto(noisy, 6, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p.AnomalyLen != 6 || len(p.Stream) != len(noisy)+6 {
		t.Errorf("placement %+v", p)
	}
	ok, err := inject.Valid(c.TrainIndex, p, inject.Options{MinWidth: 8, MaxWidth: 8, ContextWidths: true})
	if err != nil || !ok {
		t.Errorf("placement fails boundary validation: %v, %v", ok, err)
	}
}

func TestInjectIntoWithoutReports(t *testing.T) {
	// A corpus restored from disk has no Anomalies map; InjectInto must
	// fall back to the spec's canonical sequence.
	c := quickCorpus(t)
	restored := &Corpus{
		Config:     c.Config,
		Training:   c.Training,
		TrainIndex: c.TrainIndex,
		Background: c.Background,
		Placements: c.Placements,
		Anomalies:  nil,
	}
	p, err := restored.InjectInto(gen.PureCycle(2_000), 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	want, err := gen.CanonicalMFS(4)
	if err != nil {
		t.Fatal(err)
	}
	got := p.Anomaly()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("fallback anomaly %v, want %v", got, want)
			break
		}
	}
}

func TestInjectIntoUnknownSize(t *testing.T) {
	c := quickCorpus(t)
	if _, err := c.InjectInto(gen.PureCycle(2_000), 1, 6); err == nil {
		t.Errorf("size 1 accepted")
	}
}

func TestInjectMultiInto(t *testing.T) {
	c := quickCorpus(t)
	mp, err := c.InjectMultiInto(gen.PureCycle(3_000), []int{3, 5, 3}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(mp.Events) != 3 {
		t.Fatalf("%d events, want 3", len(mp.Events))
	}
	if mp.Events[0].Len != 3 || mp.Events[1].Len != 5 || mp.Events[2].Len != 3 {
		t.Errorf("event lengths %+v", mp.Events)
	}
	if _, err := c.InjectMultiInto(gen.PureCycle(3_000), []int{1}, 7); err == nil {
		t.Errorf("unknown size accepted")
	}
}

func TestBuildCorpusWithCustomSpec(t *testing.T) {
	spec, err := gen.NewSpec(16, 6)
	if err != nil {
		t.Fatal(err)
	}
	cfg := QuickConfig()
	cfg.Gen.TrainLen = 80_000
	cfg.Gen.Spec = &spec
	corpus, err := BuildCorpus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The injected anomalies carry the custom spec's rare symbol 15.
	m := corpus.Anomalies[3].Sequence
	if m[0] != 15 || m[2] != 15 {
		t.Errorf("custom-spec anomaly %v", m)
	}
}

func TestPerformanceMapInvalidOptions(t *testing.T) {
	c := quickCorpus(t)
	if _, err := c.PerformanceMap("x", nil, eval.Options{CapableAt: 2}); err == nil {
		t.Errorf("invalid options accepted")
	}
}
