package alphabet

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNewBounds(t *testing.T) {
	tests := []struct {
		size    int
		wantErr bool
	}{
		{0, true},
		{-1, true},
		{1, false},
		{8, false},
		{MaxSize, false},
		{MaxSize + 1, true},
	}
	for _, tt := range tests {
		_, err := New(tt.size)
		if (err != nil) != tt.wantErr {
			t.Errorf("New(%d) error = %v, wantErr %v", tt.size, err, tt.wantErr)
		}
	}
}

func TestMustNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("MustNew(0) did not panic")
		}
	}()
	MustNew(0)
}

func TestContains(t *testing.T) {
	a := MustNew(8)
	if !a.Contains(0) || !a.Contains(7) {
		t.Errorf("alphabet of size 8 should contain 0 and 7")
	}
	if a.Contains(8) {
		t.Errorf("alphabet of size 8 should not contain 8")
	}
}

func TestNamesRoundTrip(t *testing.T) {
	names := []string{"open", "read", "write", "close"}
	a, err := WithNames(names)
	if err != nil {
		t.Fatalf("WithNames: %v", err)
	}
	if a.Size() != len(names) {
		t.Fatalf("Size() = %d, want %d", a.Size(), len(names))
	}
	for i, name := range names {
		if got := a.Name(Symbol(i)); got != name {
			t.Errorf("Name(%d) = %q, want %q", i, got, name)
		}
		s, err := a.Index(name)
		if err != nil || s != Symbol(i) {
			t.Errorf("Index(%q) = %v, %v; want %d, nil", name, s, err, i)
		}
	}
	if _, err := a.Index("nosuch"); err == nil {
		t.Errorf("Index of unknown name succeeded")
	}
}

func TestWithNamesEmpty(t *testing.T) {
	if _, err := WithNames(nil); err == nil {
		t.Errorf("WithNames(nil) succeeded")
	}
}

func TestNumericNames(t *testing.T) {
	a := MustNew(10)
	if got := a.Name(7); got != "7" {
		t.Errorf("Name(7) = %q, want \"7\"", got)
	}
	s, err := a.Index("3")
	if err != nil || s != 3 {
		t.Errorf("Index(\"3\") = %v, %v", s, err)
	}
	for _, bad := range []string{"10", "-1", "x", ""} {
		if _, err := a.Index(bad); err == nil {
			t.Errorf("Index(%q) succeeded", bad)
		}
	}
}

func TestValidate(t *testing.T) {
	a := MustNew(4)
	if err := a.Validate([]Symbol{0, 1, 2, 3}); err != nil {
		t.Errorf("Validate of in-range stream: %v", err)
	}
	err := a.Validate([]Symbol{0, 1, 4})
	if err == nil {
		t.Fatalf("Validate accepted out-of-range symbol")
	}
	if !strings.Contains(err.Error(), "position 2") {
		t.Errorf("error %q does not identify the position", err)
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	a := MustNew(16)
	check := func(raw []byte) bool {
		stream := make([]Symbol, len(raw))
		for i, b := range raw {
			stream[i] = Symbol(b % 16)
		}
		parsed, err := a.Parse(a.Format(stream))
		if err != nil || len(parsed) != len(stream) {
			return false
		}
		for i := range parsed {
			if parsed[i] != stream[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestFormatEmpty(t *testing.T) {
	a := MustNew(4)
	if got := a.Format(nil); got != "" {
		t.Errorf("Format(nil) = %q, want empty", got)
	}
	parsed, err := a.Parse("")
	if err != nil || len(parsed) != 0 {
		t.Errorf("Parse(\"\") = %v, %v; want empty, nil", parsed, err)
	}
}
