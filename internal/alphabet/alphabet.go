// Package alphabet defines the categorical symbol domain that every stream,
// sequence and detector in this repository operates over.
//
// The evaluation data of Tan & Maxion (DSN 2005) is categorical: a stream of
// symbols drawn from a small, fixed alphabet (size 8 in the paper's training
// data). Symbols are represented as small unsigned integers so that windows
// over a stream can be used directly as map keys via a byte-string encoding.
package alphabet

import (
	"fmt"
	"strconv"
	"strings"
)

// Symbol is one categorical element of a data stream. Symbols are dense:
// a stream over an Alphabet of size K contains only symbols 0..K-1.
type Symbol uint8

// MaxSize is the largest supported alphabet size. It exists because symbols
// are stored in a byte; real-world categorical alphabets (system calls,
// shell commands, audit events) fit comfortably.
const MaxSize = 256

// Alphabet describes a symbol domain of a fixed size, with optional
// human-readable names for rendering traces and reports.
type Alphabet struct {
	size  int
	names []string
}

// New returns an alphabet of the given size with default numeric symbol
// names ("0", "1", ...). It returns an error if size is out of range.
func New(size int) (*Alphabet, error) {
	if size < 1 || size > MaxSize {
		return nil, fmt.Errorf("alphabet: size %d out of range [1,%d]", size, MaxSize)
	}
	return &Alphabet{size: size}, nil
}

// WithNames returns an alphabet whose symbols carry the given names, in
// symbol order. It returns an error if names is empty or too large.
func WithNames(names []string) (*Alphabet, error) {
	a, err := New(len(names))
	if err != nil {
		return nil, err
	}
	a.names = make([]string, len(names))
	copy(a.names, names)
	return a, nil
}

// MustNew is like New but panics on error. It is intended for package-level
// construction of compile-time-constant alphabets.
func MustNew(size int) *Alphabet {
	a, err := New(size)
	if err != nil {
		panic(err)
	}
	return a
}

// Size returns the number of symbols in the alphabet.
func (a *Alphabet) Size() int { return a.size }

// Contains reports whether s is a valid symbol of the alphabet.
func (a *Alphabet) Contains(s Symbol) bool { return int(s) < a.size }

// Name returns the human-readable name of symbol s. Symbols without explicit
// names render as their decimal value.
func (a *Alphabet) Name(s Symbol) string {
	if a.names != nil && int(s) < len(a.names) {
		return a.names[s]
	}
	return strconv.Itoa(int(s))
}

// Index returns the symbol whose name is name, or an error if the alphabet
// has no such symbol. For unnamed alphabets the name is the decimal value.
func (a *Alphabet) Index(name string) (Symbol, error) {
	if a.names != nil {
		for i, n := range a.names {
			if n == name {
				return Symbol(i), nil
			}
		}
		return 0, fmt.Errorf("alphabet: unknown symbol name %q", name)
	}
	v, err := strconv.Atoi(name)
	if err != nil || v < 0 || v >= a.size {
		return 0, fmt.Errorf("alphabet: unknown symbol name %q", name)
	}
	return Symbol(v), nil
}

// Validate reports the first out-of-alphabet symbol in stream, if any.
func (a *Alphabet) Validate(stream []Symbol) error {
	for i, s := range stream {
		if !a.Contains(s) {
			return fmt.Errorf("alphabet: symbol %d at position %d outside alphabet of size %d", s, i, a.size)
		}
	}
	return nil
}

// Format renders a stream slice as space-separated symbol names, a compact
// form used by the CLIs and test failure messages.
func (a *Alphabet) Format(stream []Symbol) string {
	var b strings.Builder
	for i, s := range stream {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(a.Name(s))
	}
	return b.String()
}

// Parse converts a space-separated list of symbol names back to symbols.
func (a *Alphabet) Parse(text string) ([]Symbol, error) {
	fields := strings.Fields(text)
	out := make([]Symbol, 0, len(fields))
	for _, f := range fields {
		s, err := a.Index(f)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}
