// Package runflags is the shared runtime wiring of the command-line tools:
// every long-running command (sweep, perfmap, report, ensemble) registers
// the same flags —
//
//	-metrics-out FILE   write a JSON metrics snapshot (schema adiv.obs/v2)
//	-progress           emit NDJSON progress events to stderr during the run
//	-status ADDR        serve live introspection (/metrics, /runz, /eventz,
//	                    /alertz, /tracez, /healthz, /debug/pprof) on ADDR
//	                    during the run
//	-trace FILE         record per-event execution spans and export them as a
//	                    Chrome trace_event JSON file (loads in Perfetto) at exit
//	-alerts FILE        journal streaming alarm dispositions as NDJSON
//	                    (schema adiv.alerts/v1) and arm the detector-health
//	                    watchdog (silent / saturated / storm rules over the
//	                    online counters, degradations surfaced on /healthz)
//	-cpuprofile FILE    write a CPU profile (runtime/pprof)
//	-memprofile FILE    write a heap profile at exit
//	-j N                bound concurrent grid work (default runtime.NumCPU)
//	-checkpoint DIR     journal completed grid cells to DIR/grid.journal
//	-resume             continue an existing journal in -checkpoint DIR
//	-shard i/N          evaluate only shard i of an N-way grid partition,
//	                    journaling to DIR/shard-i-of-N/grid.journal
//
// — and threads the resulting *obs.Registry, *obs.Progress, shared
// *eval.Scheduler and *checkpoint.Journal through the corpus builders and
// map builders. With none of the observability flags set the registry,
// tracker, and status server are all nil and every instrumented path is
// disabled at zero cost; likewise a run without -checkpoint threads a nil
// journal.
package runflags

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"adiv/internal/checkpoint"
	"adiv/internal/eval"
	"adiv/internal/obs"
)

// Flags holds the shared runtime flag values.
type Flags struct {
	MetricsOut string
	Progress   bool
	// Status is the -status listen address; empty disables the embedded
	// introspection server.
	Status string
	// Trace is the -trace Chrome trace output path; empty disables
	// execution tracing.
	Trace string
	// Alerts is the -alerts NDJSON alert-journal path; empty disables
	// alert journaling and the detector-health watchdog.
	Alerts     string
	CPUProfile string
	MemProfile string
	// Jobs is the -j bound on concurrent grid tasks (row trainings and
	// cell evaluations across every performance map the command builds).
	Jobs int
	// Checkpoint is the -checkpoint journal directory; empty disables
	// cell journaling.
	Checkpoint string
	// Resume is the -resume opt-in to continue an existing journal.
	Resume bool
	// Shard is the -shard worker identity, "i/N" (1-based): this process
	// evaluates only the grid cells checkpoint.ShardOf assigns to shard i-1
	// of N, journaling them under -checkpoint DIR/shard-i-of-N. Empty means
	// the run covers the whole grid. checkpoint.Merge reassembles the shard
	// journals into DIR/grid.journal for the final rendering run.
	Shard string
}

// Register adds the shared runtime flags to fs.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.MetricsOut, "metrics-out", "", "write a JSON metrics snapshot (schema "+obs.SchemaVersion+") to this file at exit")
	fs.BoolVar(&f.Progress, "progress", false, "emit NDJSON progress events to stderr during the run")
	fs.StringVar(&f.Status, "status", "", "serve live run introspection (/metrics, /runz, /eventz, /healthz, /debug/pprof) on this address, e.g. 127.0.0.1:6060 (:0 picks a free port, announced as statusAddr in run.start)")
	fs.StringVar(&f.Trace, "trace", "", "record per-event execution spans and write a Chrome trace_event JSON file (open in Perfetto or chrome://tracing) at exit")
	fs.StringVar(&f.Alerts, "alerts", "", "journal streaming alarm dispositions to this file as NDJSON (schema "+obs.AlertSchemaVersion+") and arm the detector-health watchdog; served live at /alertz under -status")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to this file at exit")
	fs.IntVar(&f.Jobs, "j", runtime.NumCPU(), "worker goroutines for grid evaluation (shared across all maps of the run)")
	fs.StringVar(&f.Checkpoint, "checkpoint", "", "journal completed grid cells to DIR/grid.journal so an interrupted run can resume (see -resume)")
	fs.BoolVar(&f.Resume, "resume", false, "resume from the journal in -checkpoint DIR: journaled cells replay bit-identically, remaining cells run live")
	fs.StringVar(&f.Shard, "shard", "", "evaluate shard i of an N-way grid partition, format i/N with 1 <= i <= N; requires -checkpoint, journals to DIR/shard-i-of-N/grid.journal")
	return f
}

// Run is one observed command execution. Metrics is nil unless -metrics-out,
// -progress, or -status enabled observation; instrumented callees accept
// nil.
type Run struct {
	// Metrics is the run's registry, or nil when observation is disabled.
	Metrics *obs.Registry

	flags                  Flags
	shardIndex, shardCount int // parsed -shard identity; 0/0 unsharded
	announce               *obs.EventLog
	cpu                    *os.File
	schedOnce              sync.Once
	sched                  *eval.Scheduler

	progress *obs.Progress
	ring     *obs.EventRing
	status   *obs.Server
	journal  *checkpoint.Journal
	tracer   *obs.Tracer

	alerts     *obs.AlertJournal
	alertsFile *os.File
	watchdog   *obs.Watchdog
	watchStop  chan struct{}
	watchDone  sync.WaitGroup
}

// Alerts returns the run's structured alert journal, or nil when -alerts is
// unset — journal methods are nil-safe, so drivers attach it unconditionally
// (Alarmer.SetJournal / VetoPipeline.SetJournal accept the nil).
func (r *Run) Alerts() *obs.AlertJournal {
	if r == nil {
		return nil
	}
	return r.alerts
}

// AlertsPath returns the -alerts journal path, or "" when unset — drivers
// name it in their output so the operator knows what to hand diagnose.
func (r *Run) AlertsPath() string {
	if r == nil {
		return ""
	}
	return r.flags.Alerts
}

// Watchdog returns the run's detector-health watchdog, or nil when -alerts
// is unset. The default rules watch the shared online counters —
//
//	silent:alarm-stream   online/symbols stopped after having flowed
//	saturated:alarm-rate  online/alarms sustained above watchSaturatedPerTick
//	storm:alarm-storm     online/alarms burst of watchStormBurst in one tick
//
// — and drivers may add per-family rules before the stream starts. The run
// ticks the watchdog every watchTickInterval on a background goroutine;
// firings land as watch.* events on the run's event stream and degrade
// /healthz until they clear.
func (r *Run) Watchdog() *obs.Watchdog {
	if r == nil {
		return nil
	}
	return r.watchdog
}

// Watchdog defaults: the tick cadence and the rule bounds over the shared
// online counters. The bounds are deliberately loose — the watchdog flags
// pathologies (a detector gone quiet, an alarm storm drowning the operator),
// not ordinary detection activity.
const (
	watchTickInterval    = time.Second
	watchSilentWindows   = 5   // ticks of silence after activity
	watchSaturatedPer    = 100 // alarms per tick, sustained
	watchSaturatedEpochs = 3   // consecutive over-bound ticks
	watchStormBurst      = 500 // alarms in a single tick
)

// Tracer returns the run's execution tracer, or nil when -trace is unset —
// tracer methods are nil-safe, so callers wire it unconditionally.
func (r *Run) Tracer() *obs.Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// Shard returns the run's parsed -shard identity as a 1-based (index, count)
// pair, or (0, 0) when the run covers the whole grid. Drivers assign the pair
// to EvalOptions.ShardIndex/ShardCount on every map of the run.
func (r *Run) Shard() (index, count int) {
	if r == nil {
		return 0, 0
	}
	return r.shardIndex, r.shardCount
}

// parseShard parses a -shard value "i/N" into its 1-based (index, count)
// pair; an empty value is the unsharded (0, 0).
func parseShard(s string) (index, count int, err error) {
	if s == "" {
		return 0, 0, nil
	}
	if n, _ := fmt.Sscanf(s, "%d/%d", &index, &count); n != 2 || fmt.Sprintf("%d/%d", index, count) != s {
		return 0, 0, fmt.Errorf("runflags: -shard %q: want i/N, e.g. 2/3", s)
	}
	if count < 1 || index < 1 || index > count {
		return 0, 0, fmt.Errorf("runflags: -shard %s: need 1 <= i <= N", s)
	}
	return index, count, nil
}

// Scheduler returns the run's shared grid-work pool, sized by -j and
// created on first use. Every performance map of the run should evaluate on
// this one pool (set it as Options.Scheduler) so concurrent work stays
// bounded across detector families, not merely within each map.
func (r *Run) Scheduler() *eval.Scheduler {
	r.schedOnce.Do(func() {
		r.sched = eval.NewScheduler(r.flags.Jobs)
		r.sched.Instrument(r.Metrics)
	})
	return r.sched
}

// Progress returns the run's grid-progress tracker (set it as
// Options.Progress on every map of the run), or nil when observation is
// disabled — the tracker's methods are nil-safe, so callers wire it
// unconditionally.
func (r *Run) Progress() *obs.Progress {
	if r == nil {
		return nil
	}
	return r.progress
}

// OpenJournal opens (or, under -resume, continues) the run's checkpoint
// journal with the given configuration fingerprint, instruments it against
// the run's registry (ckpt/cells_replayed, ckpt/cells_appended,
// ckpt/bytes), and announces a ckpt.open event carrying the journal path
// and how many cells it recovered. It returns (nil, nil) when -checkpoint
// is unset — eval's journal paths are nil-safe, so drivers assign the
// result unconditionally. Call it once the corpus exists (the fingerprint
// embeds the corpus hash) and set the journal as EvalOptions.Checkpoint on
// every map of the run; Close closes it.
// Under -shard i/N the journal lives in DIR/shard-i-of-N and its fingerprint
// carries the shard qualifier, so one shard's journal can never be resumed as
// another shard's (or as the whole grid's) by mistake; checkpoint.Merge strips
// the qualifier when it reassembles DIR/grid.journal.
func (r *Run) OpenJournal(fp checkpoint.Fingerprint) (*checkpoint.Journal, error) {
	if r == nil || r.flags.Checkpoint == "" {
		return nil, nil
	}
	dir := r.flags.Checkpoint
	if r.shardCount > 0 {
		dir = filepath.Join(dir, checkpoint.ShardDirName(r.shardIndex, r.shardCount))
		fp = checkpoint.WithShard(fp, r.shardIndex, r.shardCount)
	}
	j, err := checkpoint.Open(dir, fp, r.flags.Resume)
	if err != nil {
		return nil, err
	}
	j.Instrument(r.Metrics)
	r.journal = j
	if preserved := j.CorruptPath(); preserved != "" {
		r.Announce("ckpt.corrupt", obs.Fields{
			"preserved": preserved,
			"journal":   j.Path(),
		})
	}
	fields := obs.Fields{
		"journal": j.Path(),
		"resumed": j.Resumed(),
	}
	if label := checkpoint.ShardLabel(j.Fingerprint()); label != "" {
		fields["shard"] = label
	}
	r.Announce("ckpt.open", fields)
	return j, nil
}

// StatusAddr returns the bound address of the run's status server, or ""
// when -status is unset.
func (r *Run) StatusAddr() string {
	if r == nil {
		return ""
	}
	return r.status.Addr()
}

// Start begins an observed run: it creates the metrics registry and
// progress tracker (when -metrics-out, -progress, or -status asked for
// observation), attaches the NDJSON progress log, binds the -status
// introspection server, and starts CPU profiling. announceW receives
// run-level announcement events (run.start, run.done) regardless of
// -progress — the event log is how commands state their active
// configuration instead of running silently; pass os.Stderr from main.
func (f *Flags) Start(announceW io.Writer) (*Run, error) {
	if f.Resume && f.Checkpoint == "" {
		return nil, fmt.Errorf("runflags: -resume requires -checkpoint DIR")
	}
	shardIndex, shardCount, err := parseShard(f.Shard)
	if err != nil {
		return nil, err
	}
	if shardCount > 0 && f.Checkpoint == "" {
		// A shard's only output is its journal slice — without -checkpoint
		// the work would evaporate and the partial map it renders would be
		// mistaken for the whole grid.
		return nil, fmt.Errorf("runflags: -shard requires -checkpoint DIR (the shard's results live in its journal)")
	}
	r := &Run{flags: *f, shardIndex: shardIndex, shardCount: shardCount, announce: obs.NewEventLog(announceW)}
	if f.MetricsOut != "" || f.Progress || f.Status != "" || f.Trace != "" || f.Alerts != "" {
		r.Metrics = obs.New()
		r.progress = obs.NewProgress()
		r.progress.AttachEvents(r.Metrics)
		var sinks []io.Writer
		if f.Progress {
			sinks = append(sinks, announceW)
		}
		if f.Status != "" {
			// /eventz serves the tail of the same NDJSON stream -progress
			// prints, whether or not -progress is also set.
			r.ring = obs.NewEventRing(obs.DefaultEventRingLines)
			sinks = append(sinks, r.ring)
		}
		switch len(sinks) {
		case 0:
		case 1:
			r.Metrics.SetEventLog(obs.NewEventLog(sinks[0]))
		default:
			r.Metrics.SetEventLog(obs.NewEventLog(io.MultiWriter(sinks...)))
		}
		if f.Trace != "" {
			r.tracer = obs.NewTracer(obs.DefaultTraceSpans)
			r.tracer.Instrument(r.Metrics)
			if len(sinks) > 0 {
				// Mirror completed spans onto the NDJSON event stream (the
				// one -progress prints and /eventz tails) so a live tail sees
				// spans as they finish, not only at export time.
				reg := r.Metrics
				r.tracer.SetSink(func(ev obs.SpanEvent) {
					reg.Event("trace.span", obs.Fields{
						"name": ev.Name,
						"cat":  ev.Cat,
						"lane": ev.Lane,
						"us":   ev.Dur.Microseconds(),
					})
				})
			}
			r.Metrics.SetTracer(r.tracer)
		}
	}
	if f.Alerts != "" {
		af, err := os.Create(f.Alerts)
		if err != nil {
			return nil, fmt.Errorf("runflags: creating -alerts journal: %w", err)
		}
		r.alertsFile = af
		r.alerts = obs.NewAlertJournal(af)
		r.watchdog = obs.NewWatchdog(r.Metrics)
		r.watchdog.AddSilent("alarm-stream", "online/symbols", watchSilentWindows)
		r.watchdog.AddSaturated("alarm-rate", "online/alarms", watchSaturatedPer, watchSaturatedEpochs)
		r.watchdog.AddStorm("alarm-storm", "online/alarms", watchStormBurst)
		r.watchStop = make(chan struct{})
		r.watchDone.Add(1)
		go func(wd *obs.Watchdog, stop <-chan struct{}) {
			defer r.watchDone.Done()
			tick := time.NewTicker(watchTickInterval)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					wd.Tick()
				}
			}
		}(r.watchdog, r.watchStop)
	}
	if f.Status != "" {
		srv, err := obs.StartServer(f.Status, obs.Endpoints{
			Registry: r.Metrics,
			Progress: r.progress,
			Events:   r.ring,
			Tracer:   r.tracer,
			Alerts:   r.alerts,
			Watchdog: r.watchdog,
		})
		if err != nil {
			r.stopWatchdog()
			return nil, fmt.Errorf("runflags: binding -status %s: %w", f.Status, err)
		}
		r.status = srv
	}
	if f.CPUProfile != "" {
		cpu, err := os.Create(f.CPUProfile)
		if err != nil {
			r.stopWatchdog()
			r.status.Close() //nolint:errcheck // unwinding a failed Start
			return nil, fmt.Errorf("runflags: %w", err)
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			r.stopWatchdog()
			r.status.Close() //nolint:errcheck // unwinding a failed Start
			return nil, fmt.Errorf("runflags: starting CPU profile: %w", err)
		}
		r.cpu = cpu
	}
	return r, nil
}

// stopWatchdog halts the watchdog ticker goroutine. Safe to call more than
// once; a run without -alerts has no goroutine and this is a no-op.
func (r *Run) stopWatchdog() {
	if r.watchStop != nil {
		close(r.watchStop)
		r.watchDone.Wait()
		r.watchStop = nil
	}
}

// Announce emits a run-level event to the announcement log (always on,
// unlike -progress-gated cell events). The run.start event is augmented
// with the status server's bound address (so a :0-bound server is
// reachable) and its fields are retained as the /runz run configuration.
func (r *Run) Announce(event string, fields obs.Fields) {
	if r == nil {
		return
	}
	if event == "run.start" {
		extra := obs.Fields{}
		if addr := r.status.Addr(); addr != "" {
			extra["statusAddr"] = addr
		}
		if r.shardCount > 0 {
			extra["shard"] = fmt.Sprintf("%d/%d", r.shardIndex, r.shardCount)
			r.progress.SetShard(fmt.Sprintf("%d/%d", r.shardIndex, r.shardCount))
		}
		if len(extra) > 0 {
			augmented := make(obs.Fields, len(fields)+len(extra))
			for k, v := range fields {
				augmented[k] = v
			}
			for k, v := range extra {
				augmented[k] = v
			}
			fields = augmented
		}
		r.progress.SetRunInfo(fields)
	}
	r.announce.Emit(event, fields)
}

// writeHeap is the heap-profile writer; a package variable so the teardown
// regression test can observe when in the Close sequence it runs.
var writeHeap = writeHeapProfile

// Close finishes the run: stops the CPU profile, drains the status server,
// writes the heap profile, exports the Chrome trace, closes the checkpoint
// journal, writes the metrics snapshot, and announces run.done.
// The status server shuts down BEFORE the heap profile is captured — while
// the server is up its connection and ring buffers are live heap, and a
// profile taken under them misattributes the run's own allocations; the
// drain also bounds the window where a scrape races teardown. Safe to call
// once; use with a deferred error join in run functions.
func (r *Run) Close() error {
	if r == nil {
		return nil
	}
	var errs []error
	if r.cpu != nil {
		pprof.StopCPUProfile()
		if err := r.cpu.Close(); err != nil {
			errs = append(errs, fmt.Errorf("runflags: closing CPU profile: %w", err))
		}
		r.cpu = nil
	}
	// The watchdog gets one final tick (so alarms raised since the last
	// wall-clock tick still register) before its goroutine stops; the alert
	// journal file closes only after the status server has drained, so a
	// late /alertz scrape never races the close.
	if r.watchdog != nil {
		r.watchdog.Tick()
		r.stopWatchdog()
	}
	if r.status != nil {
		if err := r.status.Close(); err != nil {
			errs = append(errs, fmt.Errorf("runflags: draining status server: %w", err))
		}
		r.status = nil
	}
	if r.alertsFile != nil {
		if err := r.alertsFile.Close(); err != nil {
			errs = append(errs, fmt.Errorf("runflags: closing -alerts journal: %w", err))
		}
		r.alertsFile = nil
	}
	if r.flags.MemProfile != "" {
		if err := writeHeap(r.flags.MemProfile); err != nil {
			errs = append(errs, err)
		}
	}
	done := obs.Fields{}
	if r.flags.Trace != "" && r.tracer != nil {
		if err := r.tracer.WriteChromeFile(r.flags.Trace); err != nil {
			errs = append(errs, err)
		} else {
			total, dropped := r.tracer.Stats()
			done["traceOut"] = r.flags.Trace
			done["traceSpans"] = total
			if dropped > 0 {
				done["traceDropped"] = dropped
			}
		}
		r.tracer = nil
	}
	if r.journal != nil {
		done["journal"] = r.journal.Path()
		done["journalCells"] = r.journal.Cells()
		if err := r.journal.Close(); err != nil {
			errs = append(errs, err)
		}
		r.journal = nil
	}
	if r.flags.Alerts != "" && r.alerts != nil {
		done["alertsOut"] = r.flags.Alerts
		done["alertsRecords"] = r.alerts.Total()
		if deg := r.watchdog.Degraded(); len(deg) > 0 {
			done["watchdog"] = deg
		}
	}
	if r.flags.MetricsOut != "" && r.Metrics != nil {
		if err := r.Metrics.WriteSnapshotFile(r.flags.MetricsOut); err != nil {
			errs = append(errs, err)
		} else {
			done["metricsOut"] = r.flags.MetricsOut
		}
	}
	r.Announce("run.done", done)
	return errors.Join(errs...)
}

// writeHeapProfile records an up-to-date heap profile at path.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("runflags: %w", err)
	}
	runtime.GC() // materialize up-to-date allocation statistics
	werr := pprof.WriteHeapProfile(f)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("runflags: writing heap profile: %w", werr)
	}
	if cerr != nil {
		return fmt.Errorf("runflags: closing heap profile: %w", cerr)
	}
	return nil
}
