// Package runflags is the shared runtime wiring of the command-line tools:
// every long-running command (sweep, perfmap, report, ensemble) registers
// the same flags —
//
//	-metrics-out FILE   write a JSON metrics snapshot (schema adiv.obs/v1)
//	-progress           emit NDJSON progress events to stderr during the run
//	-cpuprofile FILE    write a CPU profile (runtime/pprof)
//	-memprofile FILE    write a heap profile at exit
//	-j N                bound concurrent grid work (default runtime.NumCPU)
//
// — and threads the resulting *obs.Registry and shared *eval.Scheduler
// through the corpus builders and map builders. With none of the
// observability flags set the registry is nil and every instrumented path
// is disabled at zero cost.
package runflags

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"

	"adiv/internal/eval"
	"adiv/internal/obs"
)

// Flags holds the shared runtime flag values.
type Flags struct {
	MetricsOut string
	Progress   bool
	CPUProfile string
	MemProfile string
	// Jobs is the -j bound on concurrent grid tasks (row trainings and
	// cell evaluations across every performance map the command builds).
	Jobs int
}

// Register adds the shared runtime flags to fs.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.MetricsOut, "metrics-out", "", "write a JSON metrics snapshot (schema "+obs.SchemaVersion+") to this file at exit")
	fs.BoolVar(&f.Progress, "progress", false, "emit NDJSON progress events to stderr during the run")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to this file at exit")
	fs.IntVar(&f.Jobs, "j", runtime.NumCPU(), "worker goroutines for grid evaluation (shared across all maps of the run)")
	return f
}

// Run is one observed command execution. Metrics is nil unless -metrics-out
// or -progress enabled observation; instrumented callees accept nil.
type Run struct {
	// Metrics is the run's registry, or nil when observation is disabled.
	Metrics *obs.Registry

	flags     Flags
	announce  *obs.EventLog
	cpu       *os.File
	schedOnce sync.Once
	sched     *eval.Scheduler
}

// Scheduler returns the run's shared grid-work pool, sized by -j and
// created on first use. Every performance map of the run should evaluate on
// this one pool (set it as Options.Scheduler) so concurrent work stays
// bounded across detector families, not merely within each map.
func (r *Run) Scheduler() *eval.Scheduler {
	r.schedOnce.Do(func() { r.sched = eval.NewScheduler(r.flags.Jobs) })
	return r.sched
}

// Start begins an observed run: it creates the metrics registry (when
// -metrics-out or -progress asked for one), attaches the NDJSON progress
// log, and starts CPU profiling. announceW receives run-level announcement
// events (run.start, run.done) regardless of -progress — the event log is
// how commands state their active configuration instead of running
// silently; pass os.Stderr from main.
func (f *Flags) Start(announceW io.Writer) (*Run, error) {
	r := &Run{flags: *f, announce: obs.NewEventLog(announceW)}
	if f.MetricsOut != "" || f.Progress {
		r.Metrics = obs.New()
		if f.Progress {
			r.Metrics.SetEventLog(obs.NewEventLog(announceW))
		}
	}
	if f.CPUProfile != "" {
		cpu, err := os.Create(f.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("runflags: %w", err)
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, fmt.Errorf("runflags: starting CPU profile: %w", err)
		}
		r.cpu = cpu
	}
	return r, nil
}

// Announce emits a run-level event to the announcement log (always on,
// unlike -progress-gated cell events).
func (r *Run) Announce(event string, fields obs.Fields) {
	if r == nil {
		return
	}
	r.announce.Emit(event, fields)
}

// Close finishes the run: stops the CPU profile, writes the heap profile
// and the metrics snapshot, and announces run.done. Safe to call once; use
// with a deferred error join in run functions.
func (r *Run) Close() error {
	if r == nil {
		return nil
	}
	var errs []error
	if r.cpu != nil {
		pprof.StopCPUProfile()
		if err := r.cpu.Close(); err != nil {
			errs = append(errs, fmt.Errorf("runflags: closing CPU profile: %w", err))
		}
		r.cpu = nil
	}
	if r.flags.MemProfile != "" {
		if err := writeHeapProfile(r.flags.MemProfile); err != nil {
			errs = append(errs, err)
		}
	}
	done := obs.Fields{}
	if r.flags.MetricsOut != "" && r.Metrics != nil {
		if err := r.Metrics.WriteSnapshotFile(r.flags.MetricsOut); err != nil {
			errs = append(errs, err)
		} else {
			done["metricsOut"] = r.flags.MetricsOut
		}
	}
	r.Announce("run.done", done)
	return errors.Join(errs...)
}

// writeHeapProfile records an up-to-date heap profile at path.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("runflags: %w", err)
	}
	runtime.GC() // materialize up-to-date allocation statistics
	werr := pprof.WriteHeapProfile(f)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("runflags: writing heap profile: %w", werr)
	}
	if cerr != nil {
		return fmt.Errorf("runflags: closing heap profile: %w", cerr)
	}
	return nil
}
