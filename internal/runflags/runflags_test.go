package runflags

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"adiv/internal/obs"
)

func parse(t *testing.T, args ...string) *Flags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return f
}

func TestDisabledByDefault(t *testing.T) {
	var announce bytes.Buffer
	run, err := parse(t).Start(&announce)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if run.Metrics != nil {
		t.Errorf("registry created without -metrics-out or -progress")
	}
	run.Announce("run.start", obs.Fields{"mode": "x"})
	if !strings.Contains(announce.String(), `"event":"run.start"`) {
		t.Errorf("announcement missing: %q", announce.String())
	}
	if err := run.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func TestMetricsOutWritesSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	var announce bytes.Buffer
	run, err := parse(t, "-metrics-out", path).Start(&announce)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if run.Metrics == nil {
		t.Fatalf("no registry with -metrics-out")
	}
	run.Metrics.Counter("x").Add(7)
	if err := run.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if snap.Schema != obs.SchemaVersion || snap.Counters["x"] != 7 {
		t.Errorf("snapshot = %+v", snap)
	}
	if !strings.Contains(announce.String(), `"event":"run.done"`) {
		t.Errorf("run.done not announced: %q", announce.String())
	}
}

func TestProgressAttachesEventLog(t *testing.T) {
	var announce bytes.Buffer
	run, err := parse(t, "-progress").Start(&announce)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	run.Metrics.Event("cell", obs.Fields{"done": 1})
	if err := run.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !strings.Contains(announce.String(), `"event":"cell"`) {
		t.Errorf("progress event not written: %q", announce.String())
	}
}

func TestProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var announce bytes.Buffer
	run, err := parse(t, "-cpuprofile", cpu, "-memprofile", mem).Start(&announce)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := run.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for _, p := range []string{cpu, mem} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", p, err)
		}
	}
}

func TestJobsFlag(t *testing.T) {
	if f := parse(t); f.Jobs != runtime.NumCPU() {
		t.Errorf("default -j = %d, want %d", f.Jobs, runtime.NumCPU())
	}
	var announce bytes.Buffer
	run, err := parse(t, "-j", "3").Start(&announce)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	sched := run.Scheduler()
	if sched.Workers() != 3 {
		t.Errorf("Scheduler().Workers() = %d, want 3", sched.Workers())
	}
	if run.Scheduler() != sched {
		t.Errorf("Scheduler() is not a stable singleton")
	}
	if err := run.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func TestNilRunIsSafe(t *testing.T) {
	var run *Run
	run.Announce("x", nil)
	if err := run.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}

func TestStatusServerServes(t *testing.T) {
	var announce bytes.Buffer
	run, err := parse(t, "-status", "127.0.0.1:0").Start(&announce)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if run.Metrics == nil {
		t.Fatal("no registry with -status")
	}
	if run.Progress() == nil {
		t.Fatal("no progress tracker with -status")
	}
	addr := run.StatusAddr()
	if addr == "" {
		t.Fatal("StatusAddr empty with -status")
	}
	run.Metrics.Counter("eval/cells/stide").Add(3)
	run.Metrics.Event("cell", obs.Fields{"done": 1})
	run.Announce("run.start", obs.Fields{"mode": "test"})
	if !strings.Contains(announce.String(), `"statusAddr":"`+addr+`"`) {
		t.Errorf("run.start missing statusAddr: %q", announce.String())
	}

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}
	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "adiv_eval_cells_stide 3") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	if code, body := get("/runz"); code != http.StatusOK || !strings.Contains(body, `"mode": "test"`) {
		t.Errorf("/runz = %d %q (want run.start fields retained)", code, body)
	}
	if code, body := get("/eventz"); code != http.StatusOK || !strings.Contains(body, `"event":"cell"`) {
		t.Errorf("/eventz = %d %q (want the emitted event teed into the ring)", code, body)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Errorf("/healthz = %d", code)
	}

	if err := run.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("status server still serving after Close")
	}
}

// TestCloseDrainsServerBeforeHeapProfile pins the teardown order of
// satellite concern #2: the heap profile must be written AFTER the status
// server has fully shut down, never while it still serves scrapes.
func TestCloseDrainsServerBeforeHeapProfile(t *testing.T) {
	mem := filepath.Join(t.TempDir(), "mem.pprof")
	var announce bytes.Buffer
	run, err := parse(t, "-status", "127.0.0.1:0", "-memprofile", mem).Start(&announce)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	addr := run.StatusAddr()

	serverUpDuringHeapWrite := false
	orig := writeHeap
	writeHeap = func(path string) error {
		if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
			serverUpDuringHeapWrite = true
		}
		return orig(path)
	}
	defer func() { writeHeap = orig }()

	if err := run.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if serverUpDuringHeapWrite {
		t.Error("status server still reachable while heap profile was written")
	}
	if st, err := os.Stat(mem); err != nil || st.Size() == 0 {
		t.Errorf("heap profile missing or empty (err=%v)", err)
	}
}

func TestStatusBindFailure(t *testing.T) {
	var announce bytes.Buffer
	if _, err := parse(t, "-status", "256.0.0.1:http-no-such").Start(&announce); err == nil {
		t.Fatal("Start succeeded with an unbindable -status address")
	}
}
