package runflags

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"adiv/internal/checkpoint"
	"adiv/internal/obs"
)

func parse(t *testing.T, args ...string) *Flags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return f
}

func TestDisabledByDefault(t *testing.T) {
	var announce bytes.Buffer
	run, err := parse(t).Start(&announce)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if run.Metrics != nil {
		t.Errorf("registry created without -metrics-out or -progress")
	}
	run.Announce("run.start", obs.Fields{"mode": "x"})
	if !strings.Contains(announce.String(), `"event":"run.start"`) {
		t.Errorf("announcement missing: %q", announce.String())
	}
	if err := run.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func TestMetricsOutWritesSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	var announce bytes.Buffer
	run, err := parse(t, "-metrics-out", path).Start(&announce)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if run.Metrics == nil {
		t.Fatalf("no registry with -metrics-out")
	}
	run.Metrics.Counter("x").Add(7)
	if err := run.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if snap.Schema != obs.SchemaVersion || snap.Counters["x"] != 7 {
		t.Errorf("snapshot = %+v", snap)
	}
	if !strings.Contains(announce.String(), `"event":"run.done"`) {
		t.Errorf("run.done not announced: %q", announce.String())
	}
}

func TestProgressAttachesEventLog(t *testing.T) {
	var announce bytes.Buffer
	run, err := parse(t, "-progress").Start(&announce)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	run.Metrics.Event("cell", obs.Fields{"done": 1})
	if err := run.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !strings.Contains(announce.String(), `"event":"cell"`) {
		t.Errorf("progress event not written: %q", announce.String())
	}
}

func TestProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var announce bytes.Buffer
	run, err := parse(t, "-cpuprofile", cpu, "-memprofile", mem).Start(&announce)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := run.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for _, p := range []string{cpu, mem} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", p, err)
		}
	}
}

func TestJobsFlag(t *testing.T) {
	if f := parse(t); f.Jobs != runtime.NumCPU() {
		t.Errorf("default -j = %d, want %d", f.Jobs, runtime.NumCPU())
	}
	var announce bytes.Buffer
	run, err := parse(t, "-j", "3").Start(&announce)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	sched := run.Scheduler()
	if sched.Workers() != 3 {
		t.Errorf("Scheduler().Workers() = %d, want 3", sched.Workers())
	}
	if run.Scheduler() != sched {
		t.Errorf("Scheduler() is not a stable singleton")
	}
	if err := run.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func TestNilRunIsSafe(t *testing.T) {
	var run *Run
	run.Announce("x", nil)
	if err := run.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}

func TestStatusServerServes(t *testing.T) {
	var announce bytes.Buffer
	run, err := parse(t, "-status", "127.0.0.1:0").Start(&announce)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if run.Metrics == nil {
		t.Fatal("no registry with -status")
	}
	if run.Progress() == nil {
		t.Fatal("no progress tracker with -status")
	}
	addr := run.StatusAddr()
	if addr == "" {
		t.Fatal("StatusAddr empty with -status")
	}
	run.Metrics.Counter("eval/cells/stide").Add(3)
	run.Metrics.Event("cell", obs.Fields{"done": 1})
	run.Announce("run.start", obs.Fields{"mode": "test"})
	if !strings.Contains(announce.String(), `"statusAddr":"`+addr+`"`) {
		t.Errorf("run.start missing statusAddr: %q", announce.String())
	}

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}
	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "adiv_eval_cells_stide 3") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	if code, body := get("/runz"); code != http.StatusOK || !strings.Contains(body, `"mode": "test"`) {
		t.Errorf("/runz = %d %q (want run.start fields retained)", code, body)
	}
	if code, body := get("/eventz"); code != http.StatusOK || !strings.Contains(body, `"event":"cell"`) {
		t.Errorf("/eventz = %d %q (want the emitted event teed into the ring)", code, body)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Errorf("/healthz = %d", code)
	}

	if err := run.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("status server still serving after Close")
	}
}

// TestCloseDrainsServerBeforeHeapProfile pins the teardown order of
// satellite concern #2: the heap profile must be written AFTER the status
// server has fully shut down, never while it still serves scrapes.
func TestCloseDrainsServerBeforeHeapProfile(t *testing.T) {
	mem := filepath.Join(t.TempDir(), "mem.pprof")
	var announce bytes.Buffer
	run, err := parse(t, "-status", "127.0.0.1:0", "-memprofile", mem).Start(&announce)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	addr := run.StatusAddr()

	serverUpDuringHeapWrite := false
	orig := writeHeap
	writeHeap = func(path string) error {
		if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
			serverUpDuringHeapWrite = true
		}
		return orig(path)
	}
	defer func() { writeHeap = orig }()

	if err := run.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if serverUpDuringHeapWrite {
		t.Error("status server still reachable while heap profile was written")
	}
	if st, err := os.Stat(mem); err != nil || st.Size() == 0 {
		t.Errorf("heap profile missing or empty (err=%v)", err)
	}
}

func TestResumeRequiresCheckpoint(t *testing.T) {
	var announce bytes.Buffer
	if _, err := parse(t, "-resume").Start(&announce); err == nil {
		t.Fatal("Start accepted -resume without -checkpoint")
	}
}

func TestOpenJournalDisabledWithoutCheckpoint(t *testing.T) {
	var announce bytes.Buffer
	run, err := parse(t).Start(&announce)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	j, err := run.OpenJournal(checkpoint.Fingerprint{Command: "test"})
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	if j != nil {
		t.Errorf("journal opened without -checkpoint")
	}
	if err := run.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// TestOpenJournalLifecycle walks the full driver sequence: a -checkpoint run
// opens (and announces) the journal, records cells, and closes it with the
// journal named in run.done; a second run over the same directory is refused
// without -resume and continues with it, seeing the recorded cells.
func TestOpenJournalLifecycle(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	fp := checkpoint.Fingerprint{Command: "test", AlphabetSize: 8, CorpusHash: "fnv1a:x"}
	rec := checkpoint.CellRecord{Key: "stide", Detector: "stide", Window: 2, Size: 2}

	var announce bytes.Buffer
	run, err := parse(t, "-checkpoint", dir, "-metrics-out", filepath.Join(t.TempDir(), "m.json")).Start(&announce)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	j, err := run.OpenJournal(fp)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	if j == nil {
		t.Fatal("no journal with -checkpoint")
	}
	if !strings.Contains(announce.String(), `"event":"ckpt.open"`) {
		t.Errorf("ckpt.open not announced: %q", announce.String())
	}
	if run.Metrics.Counter("ckpt/cells_appended").Value() != 0 {
		t.Errorf("journal not instrumented against the run registry")
	}
	if err := j.Append(rec); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := run.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !strings.Contains(announce.String(), `"journalCells":1`) {
		t.Errorf("run.done missing journal fields: %q", announce.String())
	}

	// Same directory without -resume: refused, pointing at the flag.
	again, err := parse(t, "-checkpoint", dir).Start(io.Discard)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if _, err := again.OpenJournal(fp); err == nil || !strings.Contains(err.Error(), "-resume") {
		t.Errorf("re-open without -resume: err = %v, want a refusal naming -resume", err)
	}
	if err := again.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}

	// With -resume the journal continues where the first run stopped.
	resumed, err := parse(t, "-checkpoint", dir, "-resume").Start(io.Discard)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	j2, err := resumed.OpenJournal(fp)
	if err != nil {
		t.Fatalf("resumed OpenJournal: %v", err)
	}
	if j2.Resumed() != 1 {
		t.Errorf("Resumed() = %d, want 1", j2.Resumed())
	}
	if _, ok := j2.Lookup("stide", 2, 2); !ok {
		t.Errorf("recorded cell lost across runs")
	}
	if err := resumed.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func TestStatusBindFailure(t *testing.T) {
	var announce bytes.Buffer
	if _, err := parse(t, "-status", "256.0.0.1:http-no-such").Start(&announce); err == nil {
		t.Fatal("Start succeeded with an unbindable -status address")
	}
}

// TestTraceFlagLifecycle is the -trace contract: Start creates a registry
// and tracer, spans recorded during the run land in the Chrome trace the
// Close writes, and run.done announces the export.
func TestTraceFlagLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var announce bytes.Buffer
	run, err := parse(t, "-trace", path).Start(&announce)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if run.Metrics == nil {
		t.Fatal("-trace alone did not create a registry")
	}
	tr := run.Tracer()
	if tr == nil || run.Metrics.Tracer() != tr {
		t.Fatal("tracer not created or not attached to the registry")
	}

	sp := run.Metrics.SpanTraced("cell/fake", "cell")
	sp.SetLane(0)
	sp.SetAttr("detector", "fake")
	sp.End()
	tr.Instant("online/escalated", "alarm")

	if err := run.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	defer f.Close()
	meta, spans, err := obs.ReadChromeTrace(f)
	if err != nil {
		t.Fatalf("exported trace unreadable: %v", err)
	}
	if meta.Schema != obs.TraceSchemaVersion || meta.Total != 2 {
		t.Errorf("trace meta = %+v", meta)
	}
	names := map[string]bool{}
	for _, ev := range spans {
		names[ev.Name] = true
	}
	if !names["cell/fake"] || !names["online/escalated"] {
		t.Errorf("exported spans = %v", names)
	}
	if out := announce.String(); !strings.Contains(out, `"traceOut"`) || !strings.Contains(out, `"traceSpans":2`) {
		t.Errorf("run.done missing trace fields: %q", out)
	}
}

// TestTraceSinkFeedsEventLog: with -progress alongside -trace, completed
// spans surface live on the NDJSON stream as trace.span events.
func TestTraceSinkFeedsEventLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var announce bytes.Buffer
	run, err := parse(t, "-trace", path, "-progress").Start(&announce)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	run.Metrics.SpanTraced("cell/fake", "cell").End()
	if err := run.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if out := announce.String(); !strings.Contains(out, `"event":"trace.span"`) || !strings.Contains(out, `"name":"cell/fake"`) {
		t.Errorf("trace.span event not on the stream: %q", out)
	}
}

// TestTraceWithoutSinksStaysQuiet: -trace alone must not force span events
// into the announcement stream (no -progress, no ring).
func TestTraceWithoutSinksStaysQuiet(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var announce bytes.Buffer
	run, err := parse(t, "-trace", path).Start(&announce)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	run.Metrics.SpanTraced("cell/fake", "cell").End()
	if err := run.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if strings.Contains(announce.String(), "trace.span") {
		t.Errorf("span events leaked into the announcement log: %q", announce.String())
	}
}

// TestStatusServesTracez: with -status and -trace both set, /tracez serves
// the live span ring.
func TestStatusServesTracez(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var announce bytes.Buffer
	run, err := parse(t, "-status", "127.0.0.1:0", "-trace", path).Start(&announce)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	run.Metrics.SpanTraced("cell/fake", "cell").End()
	resp, err := http.Get("http://" + run.StatusAddr() + "/tracez")
	if err != nil {
		t.Fatalf("GET /tracez: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var st obs.TraceStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("/tracez not JSON: %v\n%s", err, body)
	}
	if st.Schema != obs.TraceSchemaVersion || len(st.Spans) != 1 || st.Spans[0].Name != "cell/fake" {
		t.Errorf("/tracez = %+v", st)
	}
	if err := run.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// TestAlertsFlagLifecycle is the -alerts contract: Start creates a registry,
// the journal, and the armed watchdog; records appended during the run land
// in the NDJSON file and on /alertz; watchdog firings degrade /healthz; and
// run.done announces the journal.
func TestAlertsFlagLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "alerts.ndjson")
	var announce bytes.Buffer
	run, err := parse(t, "-alerts", path, "-status", "127.0.0.1:0").Start(&announce)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if run.Metrics == nil {
		t.Fatal("-alerts alone did not create a registry")
	}
	j := run.Alerts()
	if j == nil {
		t.Fatal("no alert journal with -alerts")
	}
	wd := run.Watchdog()
	if wd == nil {
		t.Fatal("no watchdog with -alerts")
	}

	j.Append(obs.AlertRecord{Position: 41, Detector: "stide", Score: 1, Threshold: 0.75, Disposition: obs.DispositionRaised})

	// Drive the storm rule by hand (the background ticker's cadence is a
	// second; tests tick directly against the same watchdog). The counter
	// must exist before the baseline tick — rules over unregistered
	// counters stay dormant.
	alarms := run.Metrics.Counter("online/alarms")
	wd.Tick() // baseline
	alarms.Add(2 * watchStormBurst)
	wd.Tick()
	if !wd.Firing("alarm-storm") {
		t.Fatalf("storm rule not firing; degraded = %v", wd.Degraded())
	}

	addr := run.StatusAddr()
	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}
	if code, body := get("/alertz"); code != http.StatusOK || !strings.Contains(body, `"detector":"stide"`) {
		t.Errorf("/alertz = %d %q", code, body)
	}
	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "degraded: alarm-storm:") {
		t.Errorf("/healthz = %d %q (want a degraded line while the storm fires)", code, body)
	}

	if err := run.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	recs, err := obs.ReadAlertsFile(path)
	if err != nil || len(recs) != 1 || recs[0].Detector != "stide" {
		t.Errorf("journal file: %d recs, err %v", len(recs), err)
	}
	out := announce.String()
	if !strings.Contains(out, `"alertsOut"`) || !strings.Contains(out, `"alertsRecords":1`) {
		t.Errorf("run.done missing alert fields: %q", out)
	}
}

// TestAlertsUnsetIsNil: without -alerts every handle is nil and attaching
// them anyway is the supported no-op.
func TestAlertsUnsetIsNil(t *testing.T) {
	var announce bytes.Buffer
	run, err := parse(t).Start(&announce)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if run.Alerts() != nil || run.Watchdog() != nil {
		t.Errorf("alert handles non-nil without -alerts")
	}
	run.Alerts().Append(obs.AlertRecord{Detector: "x"})
	run.Watchdog().Tick()
	if err := run.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func TestParseShard(t *testing.T) {
	for _, tc := range []struct {
		in           string
		index, count int
		ok           bool
	}{
		{"", 0, 0, true},
		{"1/1", 1, 1, true},
		{"2/3", 2, 3, true},
		{"3/3", 3, 3, true},
		{"0/3", 0, 0, false},
		{"4/3", 0, 0, false},
		{"-1/3", 0, 0, false},
		{"2/-3", 0, 0, false},
		{"2", 0, 0, false},
		{"2/3/4", 0, 0, false},
		{"02/3", 0, 0, false},
		{"2/3x", 0, 0, false},
		{"a/b", 0, 0, false},
	} {
		index, count, err := parseShard(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("parseShard(%q): err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if index != tc.index || count != tc.count {
			t.Errorf("parseShard(%q) = %d/%d, want %d/%d", tc.in, index, count, tc.index, tc.count)
		}
	}
}

func TestShardRequiresCheckpoint(t *testing.T) {
	if _, err := parse(t, "-shard", "1/3").Start(io.Discard); err == nil || !strings.Contains(err.Error(), "-checkpoint") {
		t.Fatalf("Start with -shard but no -checkpoint: err = %v, want a refusal naming -checkpoint", err)
	}
	if _, err := parse(t, "-shard", "bogus", "-checkpoint", t.TempDir()).Start(io.Discard); err == nil {
		t.Fatal("Start accepted a malformed -shard value")
	}
}

// TestShardJournalIdentity pins the shard journal layout and identity: the
// journal lands in DIR/shard-i-of-N under a shard-qualified fingerprint (so a
// different shard, or the unsharded run, refuses to resume it), run.start and
// ckpt.open announce the shard, and /runz progress carries the label.
func TestShardJournalIdentity(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	fp := checkpoint.Fingerprint{Command: "test", AlphabetSize: 8, CorpusHash: "fnv1a:x"}

	var announce bytes.Buffer
	run, err := parse(t, "-shard", "2/3", "-checkpoint", dir, "-progress").Start(&announce)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if i, n := run.Shard(); i != 2 || n != 3 {
		t.Fatalf("Shard() = %d/%d, want 2/3", i, n)
	}
	j, err := run.OpenJournal(fp)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	wantPath := filepath.Join(dir, "shard-2-of-3", checkpoint.JournalFile)
	if j.Path() != wantPath {
		t.Errorf("journal path %q, want %q", j.Path(), wantPath)
	}
	if got := checkpoint.ShardLabel(j.Fingerprint()); got != "2/3" {
		t.Errorf("journal fingerprint shard label %q, want 2/3", got)
	}
	run.Announce("run.start", obs.Fields{"cmd": "test"})
	if !strings.Contains(announce.String(), `"shard":"2/3"`) {
		t.Errorf("announcements missing shard identity: %q", announce.String())
	}
	if got := run.Progress().Status().Shard; got != "2/3" {
		t.Errorf("progress shard %q, want 2/3", got)
	}
	if err := run.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// An unsharded run pointed at the shard's directory must not adopt its
	// journal: the shard qualifier in the fingerprint refuses the resume.
	other, err := parse(t, "-checkpoint", filepath.Join(dir, "shard-2-of-3"), "-resume").Start(io.Discard)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer other.Close()
	if _, err := other.OpenJournal(fp); err == nil {
		t.Error("unsharded run resumed shard 2/3's journal")
	}
}

// TestOpenJournalAnnouncesCorruptHeader pins the corrupt-header recovery
// announcement: a journal whose header is unreadable is preserved as
// grid.journal.corrupt under -resume, and the rename is announced.
func TestOpenJournalAnnouncesCorruptHeader(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, checkpoint.JournalFile), []byte("not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	var announce bytes.Buffer
	run, err := parse(t, "-checkpoint", dir, "-resume").Start(&announce)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer run.Close()
	j, err := run.OpenJournal(checkpoint.Fingerprint{Command: "test"})
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	if j.CorruptPath() == "" {
		t.Fatal("corrupt journal not preserved")
	}
	if !strings.Contains(announce.String(), `"event":"ckpt.corrupt"`) {
		t.Errorf("ckpt.corrupt not announced: %q", announce.String())
	}
}
