package seq

import "testing"

// FuzzMinimalityShortcut cross-checks the two-subsequence minimality
// shortcut against the exhaustive definition on fuzzer-chosen streams and
// candidates.
func FuzzMinimalityShortcut(f *testing.F) {
	f.Add([]byte{0, 1, 3, 1, 2}, []byte{0, 1, 2})
	f.Add([]byte{2, 3, 2, 4, 2}, []byte{2, 3, 4})
	f.Add([]byte{0, 0, 0}, []byte{0, 0})
	f.Add([]byte{}, []byte{1, 2})
	f.Fuzz(func(t *testing.T, streamRaw, candRaw []byte) {
		if len(candRaw) > 8 || len(streamRaw) > 256 {
			return
		}
		stream := FromBytes(streamRaw)
		candidate := FromBytes(candRaw)
		ix := NewIndex(stream)
		shortcut, err := ix.IsMinimalForeign(candidate)
		if err != nil {
			t.Fatalf("IsMinimalForeign: %v", err)
		}
		if len(candidate) < 2 {
			if shortcut {
				t.Fatalf("short candidate classified minimal foreign")
			}
			return
		}
		foreign, err := ix.IsForeign(candidate)
		if err != nil {
			t.Fatal(err)
		}
		proper, err := ix.ProperSubsequencesOccur(candidate)
		if err != nil {
			t.Fatal(err)
		}
		if shortcut != (foreign && proper) {
			t.Fatalf("shortcut %v, exhaustive %v (stream %v, candidate %v)",
				shortcut, foreign && proper, stream, candidate)
		}
	})
}

// FuzzBuildCounts guards the sequence database against arbitrary streams:
// counts must sum to the window total at every width.
func FuzzBuildCounts(f *testing.F) {
	f.Add([]byte{1, 2, 3, 1, 2, 3}, uint8(2))
	f.Add([]byte{}, uint8(1))
	f.Fuzz(func(t *testing.T, raw []byte, widthRaw uint8) {
		width := int(widthRaw%16) + 1
		db, err := Build(FromBytes(raw), width)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		sum := 0
		db.Each(func(_ Stream, count int) { sum += count })
		if sum != db.Total() || db.Total() != NumWindows(len(raw), width) {
			t.Fatalf("counts %d, total %d, windows %d", sum, db.Total(), NumWindows(len(raw), width))
		}
	})
}
