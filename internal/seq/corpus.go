package seq

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"adiv/internal/obs"
)

// Corpus is a concurrency-safe cache of sequence databases over one
// immutable training stream. The evaluation grid trains every detector at
// every window width on the same stream — stide, t-stide and Lane &
// Brodley all want the width-w database and the next-element predictors
// want width w+1 — so a shared Corpus turns dozens of near-identical
// seq.Build passes over the (million-element) stream into one build per
// distinct width.
//
// DB is singleflight per width: concurrent callers asking for the same
// width block on a single build instead of duplicating it, and callers
// asking for different widths build in parallel. Every *DB handed out is
// shared; callers must treat it as read-only (DB is immutable after Build,
// so honest users need no further synchronization).
type Corpus struct {
	stream Stream

	mu      sync.Mutex
	entries map[int]*corpusEntry

	alphaOnce sync.Once
	alphaSize int

	hits   atomic.Int64
	misses atomic.Int64

	// Telemetry handles; nil when uninstrumented (the default).
	mHits   *obs.Counter
	mMisses *obs.Counter
	tBuild  *obs.Timing
	gWidths *obs.Gauge
	tracer  *obs.Tracer
}

// corpusEntry is one width's build slot. The goroutine that creates the
// entry performs the build and closes done; everyone else waits on done.
type corpusEntry struct {
	done chan struct{}
	db   *DB
	err  error
}

// NewCorpus returns a Corpus over stream. The stream is copied so later
// caller mutations cannot corrupt cached databases.
func NewCorpus(stream Stream) *Corpus {
	return &Corpus{
		stream:  stream.Clone(),
		entries: make(map[int]*corpusEntry),
	}
}

// Instrument records cache telemetry into reg: the seq/corpus/hit and
// seq/corpus/miss counters, the seq/corpus/build timing (one record per
// database built), and the seq/corpus/widths gauge (distinct widths
// cached). A nil registry disables instrumentation. Instrument is safe to
// call concurrently with DB.
func (c *Corpus) Instrument(reg *obs.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if reg == nil {
		c.mHits, c.mMisses, c.tBuild, c.gWidths, c.tracer = nil, nil, nil, nil, nil
		return
	}
	c.mHits = reg.Counter("seq/corpus/hit")
	c.mMisses = reg.Counter("seq/corpus/miss")
	c.tBuild = reg.Timing("seq/corpus/build")
	c.gWidths = reg.Gauge("seq/corpus/widths")
	c.tracer = reg.Tracer()
}

// Stream returns the corpus's training stream. The returned slice is the
// corpus's own copy: callers must not modify it. It exists so corpus-aware
// code can fall back to plain Detector.Train for detectors that model the
// stream directly (e.g. the HMM) rather than through sequence databases.
func (c *Corpus) Stream() Stream { return c.stream }

// Len returns the length of the training stream.
func (c *Corpus) Len() int { return len(c.stream) }

// AlphabetSize returns the number of symbols in the training stream's
// alphabet (largest symbol observed plus one; 0 for an empty stream),
// computed once and cached — the predictors' smoothing and one-hot layers
// otherwise rescan the whole stream per training.
func (c *Corpus) AlphabetSize() int {
	c.alphaOnce.Do(func() {
		k := 0
		for _, s := range c.stream {
			if int(s)+1 > k {
				k = int(s) + 1
			}
		}
		c.alphaSize = k
	})
	return c.alphaSize
}

// DB returns the sequence database at the given width, building it at most
// once per width. It returns an error for a non-positive width.
func (c *Corpus) DB(width int) (*DB, error) {
	if width <= 0 {
		return nil, fmt.Errorf("seq: non-positive window width %d", width)
	}
	c.mu.Lock()
	if e, ok := c.entries[width]; ok {
		hits := c.mHits
		c.mu.Unlock()
		<-e.done
		c.hits.Add(1)
		hits.Inc()
		return e.db, e.err
	}
	e := &corpusEntry{done: make(chan struct{})}
	c.entries[width] = e
	misses, tBuild, gWidths, tracer := c.mMisses, c.tBuild, c.gWidths, c.tracer
	widths := len(c.entries)
	c.mu.Unlock()

	c.misses.Add(1)
	misses.Inc()
	// The singleflight build has no worker identity (whichever training
	// task lost the race performs it), so the trace span stays laneless.
	tsp := tracer.Start("seq/db", "db")
	tsp.SetAttrInt("width", width)
	start := time.Now()
	e.db, e.err = Build(c.stream, width)
	tBuild.Record(time.Since(start))
	tsp.End()
	gWidths.Set(float64(widths))
	close(e.done)
	return e.db, e.err
}

// Contains reports whether w occurs in the stream (at w's own length). An
// empty sequence trivially occurs.
func (c *Corpus) Contains(w Stream) (bool, error) {
	if len(w) == 0 {
		return true, nil
	}
	db, err := c.DB(len(w))
	if err != nil {
		return false, err
	}
	return db.Contains(w), nil
}

// Stats returns the cache's lifetime hit and miss counts. Each miss
// corresponds to exactly one seq.Build over the stream, so a grid run's
// training work is provable from the miss count alone.
func (c *Corpus) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Widths returns the distinct widths cached so far, ascending. Widths
// whose builds are still in flight are included.
func (c *Corpus) Widths() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int, 0, len(c.entries))
	for w := range c.entries {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}
