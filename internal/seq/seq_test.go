package seq

import (
	"testing"
	"testing/quick"

	"adiv/internal/alphabet"
)

// mk builds a stream from ints for test readability.
func mk(vals ...int) Stream {
	s := make(Stream, len(vals))
	for i, v := range vals {
		s[i] = alphabet.Symbol(v)
	}
	return s
}

func TestNumWindows(t *testing.T) {
	tests := []struct {
		n, width, want int
	}{
		{0, 1, 0},
		{5, 0, 0},
		{5, -1, 0},
		{5, 6, 0},
		{5, 5, 1},
		{5, 1, 5},
		{10, 3, 8},
	}
	for _, tt := range tests {
		if got := NumWindows(tt.n, tt.width); got != tt.want {
			t.Errorf("NumWindows(%d, %d) = %d, want %d", tt.n, tt.width, got, tt.want)
		}
	}
}

func TestBuildRejectsBadWidth(t *testing.T) {
	for _, w := range []int{0, -3} {
		if _, err := Build(mk(1, 2, 3), w); err == nil {
			t.Errorf("Build with width %d succeeded", w)
		}
	}
}

func TestBuildCounts(t *testing.T) {
	// Stream: a b a b a — windows of width 2: ab ba ab ba.
	db, err := Build(mk(0, 1, 0, 1, 0), 2)
	if err != nil {
		t.Fatal(err)
	}
	if db.Width() != 2 {
		t.Errorf("Width() = %d", db.Width())
	}
	if db.Total() != 4 {
		t.Errorf("Total() = %d, want 4", db.Total())
	}
	if db.Distinct() != 2 {
		t.Errorf("Distinct() = %d, want 2", db.Distinct())
	}
	if got := db.Count(mk(0, 1)); got != 2 {
		t.Errorf("Count(ab) = %d, want 2", got)
	}
	if got := db.Count(mk(1, 0)); got != 2 {
		t.Errorf("Count(ba) = %d, want 2", got)
	}
	if got := db.Count(mk(1, 1)); got != 0 {
		t.Errorf("Count(bb) = %d, want 0", got)
	}
	if got := db.Count(mk(0, 1, 0)); got != 0 {
		t.Errorf("Count of wrong-length sequence = %d, want 0", got)
	}
}

func TestBuildShortStream(t *testing.T) {
	db, err := Build(mk(1, 2), 5)
	if err != nil {
		t.Fatal(err)
	}
	if db.Total() != 0 || db.Distinct() != 0 {
		t.Errorf("short stream produced %d windows, %d distinct", db.Total(), db.Distinct())
	}
	if db.RelFreq(mk(1, 2, 3, 4, 5)) != 0 {
		t.Errorf("RelFreq on empty DB should be 0")
	}
}

func TestForeignRareCommon(t *testing.T) {
	// 96 copies of "0 1" then 4 copies of "2 3": pairs (1,0),(0,1) are
	// common; (1,2),(2,3),(3,2) occur; (3,0) etc.
	var s Stream
	for i := 0; i < 96; i++ {
		s = append(s, 0, 1)
	}
	for i := 0; i < 4; i++ {
		s = append(s, 2, 3)
	}
	db, err := Build(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if db.IsForeign(mk(0, 1)) {
		t.Errorf("(0,1) classified foreign")
	}
	if !db.IsForeign(mk(0, 3)) {
		t.Errorf("(0,3) not classified foreign")
	}
	if db.IsForeign(mk(0, 1, 2)) {
		t.Errorf("wrong-length sequence classified foreign at width 2")
	}
	// (2,3) occurs 4 times of 199 windows ≈ 2%: rare at 5%, not at 1%.
	if !db.IsRare(mk(2, 3), 0.05) {
		t.Errorf("(2,3) not rare at cutoff 5%%")
	}
	if db.IsRare(mk(2, 3), 0.01) {
		t.Errorf("(2,3) rare at cutoff 1%%")
	}
	if db.IsRare(mk(0, 3), 0.05) {
		t.Errorf("foreign sequence classified rare")
	}

	rare := db.Rare(0.05)
	common := db.Common(0.05)
	if len(rare)+len(common) != db.Distinct() {
		t.Errorf("Rare+Common = %d+%d, want %d distinct", len(rare), len(common), db.Distinct())
	}
	for _, r := range rare {
		if !db.IsRare(r, 0.05) {
			t.Errorf("Rare() returned non-rare %v", r)
		}
	}
	for _, c := range common {
		if db.IsRare(c, 0.05) {
			t.Errorf("Common() returned rare %v", c)
		}
	}
}

func TestEachVisitsAll(t *testing.T) {
	db, err := Build(mk(0, 1, 2, 0, 1, 2), 3)
	if err != nil {
		t.Fatal(err)
	}
	total, distinct := 0, 0
	db.Each(func(w Stream, count int) {
		distinct++
		total += count
		if len(w) != 3 {
			t.Errorf("Each yielded sequence of length %d", len(w))
		}
	})
	if total != db.Total() || distinct != db.Distinct() {
		t.Errorf("Each visited %d/%d, want %d/%d", distinct, total, db.Distinct(), db.Total())
	}
}

func TestBytesRoundTrip(t *testing.T) {
	check := func(raw []byte) bool {
		s := FromBytes(raw)
		b := s.Bytes()
		if len(b) != len(raw) {
			return false
		}
		for i := range b {
			if b[i] != raw[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	s := mk(1, 2, 3)
	c := s.Clone()
	c[0] = 9
	if s[0] != 1 {
		t.Errorf("Clone aliases the original")
	}
}

// TestCountsSumToTotal is the fundamental multiset invariant, checked over
// random streams.
func TestCountsSumToTotal(t *testing.T) {
	check := func(raw []byte, w uint8) bool {
		width := int(w%6) + 1
		s := FromBytes(raw)
		db, err := Build(s, width)
		if err != nil {
			return false
		}
		sum := 0
		db.Each(func(_ Stream, count int) { sum += count })
		return sum == db.Total() && db.Total() == NumWindows(len(s), width)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// TestEveryWindowContained: every window of the source stream must be
// contained in its own database with count >= 1.
func TestEveryWindowContained(t *testing.T) {
	check := func(raw []byte, w uint8) bool {
		width := int(w%5) + 1
		s := FromBytes(raw)
		db, err := Build(s, width)
		if err != nil {
			return false
		}
		for i := 0; i+width <= len(s); i++ {
			if !db.Contains(s[i : i+width]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}
