package seq

import (
	"sync"
	"testing"

	"adiv/internal/alphabet"
	"adiv/internal/obs"
)

func TestCorpusDBMatchesDirectBuild(t *testing.T) {
	stream := Stream{0, 1, 2, 3, 0, 1, 2, 3, 0, 3}
	c := NewCorpus(stream)
	for width := 1; width <= 4; width++ {
		cached, err := c.DB(width)
		if err != nil {
			t.Fatalf("DB(%d): %v", width, err)
		}
		direct, err := Build(stream, width)
		if err != nil {
			t.Fatalf("Build(%d): %v", width, err)
		}
		if cached.Total() != direct.Total() || cached.Distinct() != direct.Distinct() {
			t.Errorf("width %d: cached DB (total %d, distinct %d) differs from direct build (total %d, distinct %d)",
				width, cached.Total(), cached.Distinct(), direct.Total(), direct.Distinct())
		}
	}
}

func TestCorpusBuildsEachWidthOnce(t *testing.T) {
	c := NewCorpus(Stream{0, 1, 2, 3, 0, 1, 2, 3})
	var first [5]*DB
	for width := 1; width <= 4; width++ {
		db, err := c.DB(width)
		if err != nil {
			t.Fatal(err)
		}
		first[width] = db
	}
	for round := 0; round < 3; round++ {
		for width := 1; width <= 4; width++ {
			db, err := c.DB(width)
			if err != nil {
				t.Fatal(err)
			}
			if db != first[width] {
				t.Fatalf("width %d returned a different *DB on reuse", width)
			}
		}
	}
	hits, misses := c.Stats()
	if misses != 4 {
		t.Errorf("misses = %d, want 4 (one build per distinct width)", misses)
	}
	if hits != 12 {
		t.Errorf("hits = %d, want 12", hits)
	}
}

func TestCorpusSingleflightUnderConcurrency(t *testing.T) {
	var stream Stream
	for i := 0; i < 2000; i++ {
		stream = append(stream, alphabet.Symbol(i%7))
	}
	c := NewCorpus(stream)
	const goroutines = 16
	widths := []int{2, 3, 5, 8}
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*len(widths))
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, w := range widths {
				if _, err := c.DB(w); err != nil {
					errs <- err
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	hits, misses := c.Stats()
	if misses != int64(len(widths)) {
		t.Errorf("misses = %d, want %d: concurrent same-width requests must share one build", misses, len(widths))
	}
	if hits != int64(goroutines*len(widths))-misses {
		t.Errorf("hits = %d, want %d", hits, int64(goroutines*len(widths))-misses)
	}
}

func TestCorpusRejectsNonPositiveWidth(t *testing.T) {
	c := NewCorpus(Stream{0, 1, 2})
	for _, w := range []int{0, -1} {
		if _, err := c.DB(w); err == nil {
			t.Errorf("DB(%d) accepted", w)
		}
	}
	if _, misses := c.Stats(); misses != 0 {
		t.Errorf("invalid widths counted as builds")
	}
}

func TestCorpusAlphabetSize(t *testing.T) {
	if got := NewCorpus(Stream{0, 4, 2, 4, 1}).AlphabetSize(); got != 5 {
		t.Errorf("AlphabetSize() = %d, want 5", got)
	}
	if got := NewCorpus(nil).AlphabetSize(); got != 0 {
		t.Errorf("empty stream AlphabetSize() = %d, want 0", got)
	}
}

func TestCorpusContains(t *testing.T) {
	c := NewCorpus(Stream{0, 1, 2, 3, 0, 1})
	cases := []struct {
		w    Stream
		want bool
	}{
		{Stream{}, true},
		{Stream{1, 2, 3}, true},
		{Stream{3, 2, 1}, false},
	}
	for _, tc := range cases {
		got, err := c.Contains(tc.w)
		if err != nil {
			t.Fatalf("Contains(%v): %v", tc.w, err)
		}
		if got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.w, got, tc.want)
		}
	}
}

func TestCorpusCloneIsolatesStream(t *testing.T) {
	orig := Stream{0, 1, 2, 3, 0, 1, 2, 3}
	c := NewCorpus(orig)
	orig[0] = 3 // caller mutation after construction
	db, err := c.DB(2)
	if err != nil {
		t.Fatal(err)
	}
	if !db.Contains(Stream{0, 1}) {
		t.Errorf("cache built from mutated caller stream: (0 1) missing")
	}
}

func TestCorpusInstrumentation(t *testing.T) {
	reg := obs.New()
	c := NewCorpus(Stream{0, 1, 2, 3, 0, 1, 2, 3})
	c.Instrument(reg)
	for _, w := range []int{2, 3, 2, 2, 3} {
		if _, err := c.DB(w); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter("seq/corpus/miss").Value(); got != 2 {
		t.Errorf("seq/corpus/miss = %d, want 2", got)
	}
	if got := reg.Counter("seq/corpus/hit").Value(); got != 3 {
		t.Errorf("seq/corpus/hit = %d, want 3", got)
	}
	if count, _, _, _ := reg.Timing("seq/corpus/build").Stats(); count != 2 {
		t.Errorf("seq/corpus/build recorded %d builds, want 2", count)
	}
	if got := reg.Gauge("seq/corpus/widths").Value(); got != 2 {
		t.Errorf("seq/corpus/widths = %v, want 2", got)
	}
	want := []int{2, 3}
	got := c.Widths()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Widths() = %v, want %v", got, want)
	}
}
