package seq

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestIndexDBCaching(t *testing.T) {
	ix := NewIndex(mk(0, 1, 2, 3, 0, 1, 2, 3))
	db1, err := ix.DB(3)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := ix.DB(3)
	if err != nil {
		t.Fatal(err)
	}
	if db1 != db2 {
		t.Errorf("DB(3) rebuilt instead of cached")
	}
	if _, err := ix.DB(0); err == nil {
		t.Errorf("DB(0) succeeded")
	}
}

func TestIndexCopiesStream(t *testing.T) {
	s := mk(0, 1, 2, 3)
	ix := NewIndex(s)
	s[0] = 7
	ok, err := ix.Contains(mk(0, 1))
	if err != nil || !ok {
		t.Errorf("index affected by caller mutation: Contains(0 1) = %v, %v", ok, err)
	}
}

func TestIndexContains(t *testing.T) {
	ix := NewIndex(mk(0, 1, 2, 0, 1, 3))
	tests := []struct {
		w    Stream
		want bool
	}{
		{Stream{}, true},
		{mk(0), true},
		{mk(4), false},
		{mk(0, 1), true},
		{mk(1, 3), true},
		{mk(3, 0), false},
		{mk(0, 1, 2), true},
		{mk(0, 1, 3), true},
		{mk(1, 2, 3), false},
		{mk(0, 1, 2, 0, 1, 3), true},
		{mk(0, 1, 2, 0, 1, 3, 0), false}, // longer than stream
	}
	for _, tt := range tests {
		got, err := ix.Contains(tt.w)
		if err != nil || got != tt.want {
			t.Errorf("Contains(%v) = %v, %v; want %v", tt.w, got, err, tt.want)
		}
	}
}

func TestIsMinimalForeign(t *testing.T) {
	// Stream 0 1 3 1 2 contains the pairs 01, 13, 31, 12 but not the
	// triple 012, making "0 1 2" a minimal foreign sequence.
	ix := NewIndex(mk(0, 1, 3, 1, 2))
	tests := []struct {
		w    Stream
		want bool
	}{
		{mk(0, 1, 2), true}, // foreign; prefix "0 1" and suffix "1 2" occur
		{mk(0, 1), false},   // occurs → not foreign
		{mk(2, 0), true},    // foreign pair over occurring symbols
		{mk(4, 0), false},   // prefix symbol 4 never occurs → not minimal
		{mk(0), false},      // too short
		{Stream{}, false},
	}
	for _, tt := range tests {
		got, err := ix.IsMinimalForeign(tt.w)
		if err != nil {
			t.Fatalf("IsMinimalForeign(%v): %v", tt.w, err)
		}
		if got != tt.want {
			t.Errorf("IsMinimalForeign(%v) = %v, want %v", tt.w, got, tt.want)
		}
	}
}

func TestIsMinimalForeignRejectsNonMinimal(t *testing.T) {
	// "3 4" never occurs, so "2 3 4" is foreign but NOT minimal (its
	// subsequence "3 4" is itself foreign).
	ix := NewIndex(mk(2, 3, 2, 4, 2))
	got, err := ix.IsMinimalForeign(mk(2, 3, 4))
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Errorf("non-minimal foreign sequence classified minimal")
	}
}

// TestMinimalityShortcutEquivalence validates the two-subsequence shortcut
// against the exhaustive definition on random streams and candidates.
func TestMinimalityShortcutEquivalence(t *testing.T) {
	check := func(raw []byte, cand []byte) bool {
		if len(cand) < 2 || len(cand) > 6 {
			return true
		}
		stream := FromBytes(clampSymbols(raw, 4))
		if len(stream) < 8 {
			return true
		}
		candidate := FromBytes(clampSymbols(cand, 4))
		ix := NewIndex(stream)
		foreign, err := ix.IsForeign(candidate)
		if err != nil {
			return false
		}
		proper, err := ix.ProperSubsequencesOccur(candidate)
		if err != nil {
			return false
		}
		shortcut, err := ix.IsMinimalForeign(candidate)
		if err != nil {
			return false
		}
		return shortcut == (foreign && proper)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func clampSymbols(raw []byte, k byte) []byte {
	out := make([]byte, len(raw))
	for i, b := range raw {
		out[i] = b % k
	}
	return out
}

func TestIndexConcurrentAccess(t *testing.T) {
	ix := NewIndex(mk(0, 1, 2, 3, 4, 5, 0, 1, 2, 3, 4, 5))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(width int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := ix.DB(width%6 + 1); err != nil {
					t.Errorf("DB: %v", err)
					return
				}
				if _, err := ix.Contains(mk(0, 1)); err != nil {
					t.Errorf("Contains: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
