package seq

// The map-per-state suffix automaton construction retained verbatim as the
// reference for the dense flat-table construction: refBuildAutomaton is the
// exact pre-kernel BuildAutomaton (modulo renamed helpers), and the tests
// pin the dense automaton's structure — state count, links, lengths,
// counts, and every transition — against it on random streams, then check
// the matching-statistics walk against a brute-force suffix search.

import (
	"testing"
	"testing/quick"

	"adiv/internal/alphabet"
	"adiv/internal/rng"
)

type refAutomaton struct {
	next   []map[byte]int32
	link   []int32
	length []int32
	count  []int64
	n      int
}

// refBuildAutomaton is the retained pre-kernel map-based construction.
func refBuildAutomaton(stream Stream) *refAutomaton {
	a := &refAutomaton{n: len(stream)}
	cap := 2*len(stream) + 2
	a.next = make([]map[byte]int32, 0, cap)
	a.link = make([]int32, 0, cap)
	a.length = make([]int32, 0, cap)
	a.count = make([]int64, 0, cap)

	newState := func(length, link int32) int32 {
		a.next = append(a.next, nil)
		a.link = append(a.link, link)
		a.length = append(a.length, length)
		a.count = append(a.count, 0)
		return int32(len(a.next) - 1)
	}
	root := newState(0, -1)
	last := root

	for _, sym := range stream {
		c := byte(sym)
		cur := newState(a.length[last]+1, root)
		a.count[cur] = 1
		p := last
		for p != -1 && !hasEdge(a.next[p], c) {
			setEdge(&a.next[p], c, cur)
			p = a.link[p]
		}
		if p == -1 {
			a.link[cur] = root
		} else {
			q := a.next[p][c]
			if a.length[p]+1 == a.length[q] {
				a.link[cur] = q
			} else {
				clone := newState(a.length[p]+1, a.link[q])
				a.next[clone] = cloneEdges(a.next[q])
				for p != -1 && hasEdge(a.next[p], c) && a.next[p][c] == q {
					setEdge(&a.next[p], c, clone)
					p = a.link[p]
				}
				a.link[q] = clone
				a.link[cur] = clone
			}
		}
		last = cur
	}

	// Counting-sort aggregation, as in aggregateCounts.
	maxLen := 0
	for _, l := range a.length {
		if int(l) > maxLen {
			maxLen = int(l)
		}
	}
	buckets := make([]int, maxLen+2)
	for _, l := range a.length {
		buckets[l]++
	}
	for i := 1; i <= maxLen; i++ {
		buckets[i] += buckets[i-1]
	}
	order := make([]int32, len(a.length))
	for s := range a.length {
		buckets[a.length[s]]--
		order[buckets[a.length[s]]] = int32(s)
	}
	for i := len(order) - 1; i >= 0; i-- {
		s := order[i]
		if a.link[s] >= 0 {
			a.count[a.link[s]] += a.count[s]
		}
	}
	return a
}

func refRandomStream(seed uint64, length, k int) Stream {
	src := rng.New(seed)
	out := make(Stream, length)
	for i := range out {
		if src.Float64() < 0.2 {
			out[i] = alphabet.Symbol(src.Intn(k))
		} else {
			out[i] = alphabet.Symbol(i % k)
		}
	}
	return out
}

// TestAutomatonMatchesReferenceStructure pins the dense construction
// state-for-state against the retained map-based reference: the two
// constructions visit states in the same order, so every array must match
// element-wise and every transition must agree.
func TestAutomatonMatchesReferenceStructure(t *testing.T) {
	for _, k := range []int{2, 5, 11, 31} {
		for seed := uint64(1); seed <= 6; seed++ {
			stream := refRandomStream(seed, 700, k)
			got := BuildAutomaton(stream)
			want := refBuildAutomaton(stream)

			if got.States() != len(want.next) {
				t.Fatalf("k=%d seed=%d: %d states, reference %d", k, seed, got.States(), len(want.next))
			}
			for s := 0; s < got.States(); s++ {
				if got.link[s] != want.link[s] {
					t.Fatalf("k=%d seed=%d state %d: link %d, reference %d", k, seed, s, got.link[s], want.link[s])
				}
				if got.length[s] != want.length[s] {
					t.Fatalf("k=%d seed=%d state %d: length %d, reference %d", k, seed, s, got.length[s], want.length[s])
				}
				if got.count[s] != want.count[s] {
					t.Fatalf("k=%d seed=%d state %d: count %d, reference %d", k, seed, s, got.count[s], want.count[s])
				}
				for c := 0; c < k+2; c++ {
					wantTo := int32(-1)
					if to, ok := want.next[s][byte(c)]; ok {
						wantTo = to
					}
					if gotTo := got.edge(int32(s), byte(c)); gotTo != wantTo {
						t.Fatalf("k=%d seed=%d state %d symbol %d: edge %d, reference %d", k, seed, s, c, gotTo, wantTo)
					}
				}
			}
		}
	}
}

// TestAutomatonWideAlphabetFallback drives the map-mode fallback (alphabet
// beyond the dense cutoff) through the same structural pin.
func TestAutomatonWideAlphabetFallback(t *testing.T) {
	stream := refRandomStream(9, 500, denseMaxAlphabet+30)
	got := BuildAutomaton(stream)
	if got.k != 0 {
		t.Fatalf("alphabet of %d symbols should select map mode, got dense stride %d", denseMaxAlphabet+30, got.k)
	}
	want := refBuildAutomaton(stream)
	if got.States() != len(want.next) {
		t.Fatalf("%d states, reference %d", got.States(), len(want.next))
	}
	for s := 0; s < got.States(); s++ {
		if got.link[s] != want.link[s] || got.length[s] != want.length[s] || got.count[s] != want.count[s] {
			t.Fatalf("state %d diverges from reference", s)
		}
	}
}

// TestAppendMatchLens checks the matching-statistics walk against a
// brute-force longest-occurring-suffix search on random stream pairs.
func TestAppendMatchLens(t *testing.T) {
	check := func(rawTrain, rawTest []byte) bool {
		train := FromBytes(clampSymbols(rawTrain, 4))
		test := FromBytes(clampSymbols(rawTest, 5)) // one symbol foreign by construction
		if len(train) > 200 {
			train = train[:200]
		}
		if len(test) > 120 {
			test = test[:120]
		}
		a := BuildAutomaton(train)
		ms := a.AppendMatchLens(nil, test)
		if len(ms) != len(test) {
			return false
		}
		for j := 1; j <= len(test); j++ {
			want := int32(0)
			for l := 1; l <= j; l++ {
				if a.Contains(test[j-l : j]) {
					want = int32(l)
				} else {
					break // a non-occurring suffix can't extend to occurring
				}
			}
			if ms[j-1] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestBuildAutomatonAllocs bounds construction allocations: the dense build
// replaces one map per state (~2n maps) with a fixed handful of slices.
func TestBuildAutomatonAllocs(t *testing.T) {
	stream := refRandomStream(4, 3000, 12)
	allocs := testing.AllocsPerRun(5, func() {
		BuildAutomaton(stream)
	})
	if allocs > 16 {
		t.Fatalf("dense automaton build allocated %.0f times, want <= 16", allocs)
	}
}
