// Package seq provides the fixed-length-sequence machinery that the entire
// evaluation rests on: sliding windows over symbol streams, per-width
// sequence databases with occurrence counts, and the foreignness, rarity and
// minimality predicates of Tan & Maxion's methodology.
//
// Terminology (paper, Section 5.1):
//
//   - A sequence of length N is "foreign" with respect to a training stream
//     if every symbol is in the training alphabet but the length-N sequence
//     itself never occurs in the training stream.
//   - A sequence is "rare" if its relative frequency among same-length
//     windows of the training stream is below a cutoff (0.5% in the paper).
//   - A "minimal foreign sequence" (MFS) is a foreign sequence all of whose
//     proper contiguous subsequences occur in the training stream: a foreign
//     sequence containing no smaller foreign sequence.
package seq

import (
	"fmt"
	"sort"

	"adiv/internal/alphabet"
)

// Stream is a stream of categorical symbols, the unit of data every detector
// trains on and scores.
type Stream []alphabet.Symbol

// Clone returns an independent copy of the stream.
func (s Stream) Clone() Stream {
	out := make(Stream, len(s))
	copy(out, s)
	return out
}

// Bytes returns the stream as a byte slice usable for map keying. The result
// aliases freshly allocated memory, never the stream itself.
func (s Stream) Bytes() []byte {
	b := make([]byte, len(s))
	for i, sym := range s {
		b[i] = byte(sym)
	}
	return b
}

// AppendBytes appends the stream's byte encoding to dst and returns the
// extended slice — the allocation-free counterpart of Bytes for callers that
// own a scratch buffer (score loops, window cursors) and re-encode many
// streams without garbage.
func (s Stream) AppendBytes(dst []byte) []byte {
	for _, sym := range s {
		dst = append(dst, byte(sym))
	}
	return dst
}

// FromBytes converts a byte-encoded window back to a Stream.
func FromBytes(b []byte) Stream {
	s := make(Stream, len(b))
	for i, c := range b {
		s[i] = alphabet.Symbol(c)
	}
	return s
}

// NumWindows returns the number of width-sized windows in a stream of length
// n: max(0, n-width+1).
func NumWindows(n, width int) int {
	if width <= 0 || n < width {
		return 0
	}
	return n - width + 1
}

// DB is a sequence database for one fixed window width: the multiset of all
// width-length windows of a stream, with occurrence counts. It answers the
// membership and frequency queries behind every detector and every
// data-synthesis verification step.
//
// A DB is immutable after Build and safe for concurrent readers.
type DB struct {
	width int
	total int
	// counts stores an out-of-line counter per distinct window. The
	// indirection is what makes Build allocate per *distinct* sequence
	// rather than per window: incrementing through the pointer needs only
	// an allocation-free map read (`m[string(b)]` compiles to a no-copy
	// lookup), where a map[string]int would re-materialize the key string
	// on every `m[string(b)]++`.
	counts map[string]*int
}

// Build slides a window of the given width across the stream and records
// every window with its occurrence count. It returns an error for a
// non-positive width; a stream shorter than the width yields an empty DB.
func Build(stream Stream, width int) (*DB, error) {
	if width <= 0 {
		return nil, fmt.Errorf("seq: non-positive window width %d", width)
	}
	n := NumWindows(len(stream), width)
	db := &DB{
		width:  width,
		total:  n,
		counts: make(map[string]*int, min(n, 1<<16)),
	}
	b := stream.Bytes()
	for i := 0; i < n; i++ {
		if p := db.counts[string(b[i:i+width])]; p != nil {
			*p++
		} else {
			p = new(int)
			*p = 1
			db.counts[string(b[i:i+width])] = p
		}
	}
	return db, nil
}

// Width returns the window width the database was built for.
func (db *DB) Width() int { return db.width }

// Total returns the total number of windows recorded (with multiplicity).
func (db *DB) Total() int { return db.total }

// Distinct returns the number of distinct sequences in the database.
func (db *DB) Distinct() int { return len(db.counts) }

// Count returns the number of occurrences of w. Sequences of the wrong
// length never occur and count zero.
func (db *DB) Count(w Stream) int {
	if len(w) != db.width {
		return 0
	}
	// Encode into a stack buffer so the common widths (the evaluation grid
	// tops out at 16) query without allocating; CountBytes documents the
	// fully allocation-free path for callers that already hold bytes.
	var tmp [64]byte
	if db.width <= len(tmp) {
		for i, sym := range w {
			tmp[i] = byte(sym)
		}
		if p := db.counts[string(tmp[:db.width])]; p != nil {
			return *p
		}
		return 0
	}
	return db.CountBytes(w.Bytes())
}

// CountBytes returns the number of occurrences of the byte-encoded window b
// (as produced by Stream.Bytes, Stream.AppendBytes, or a Cursor). It never
// allocates: the hot score loops of the window detectors slice one encoded
// test stream and query every window through here. Sequences of the wrong
// length count zero.
func (db *DB) CountBytes(b []byte) int {
	if len(b) != db.width {
		return 0
	}
	if p := db.counts[string(b)]; p != nil {
		return *p
	}
	return 0
}

// Contains reports whether w occurs at least once.
func (db *DB) Contains(w Stream) bool { return db.Count(w) > 0 }

// ContainsBytes reports whether the byte-encoded window b occurs at least
// once, without allocating.
func (db *DB) ContainsBytes(b []byte) bool { return db.CountBytes(b) > 0 }

// RelFreq returns the relative frequency of w among all recorded windows,
// in [0,1]. An empty database yields 0.
func (db *DB) RelFreq(w Stream) float64 {
	if db.total == 0 {
		return 0
	}
	return float64(db.Count(w)) / float64(db.total)
}

// RelFreqBytes is RelFreq for a byte-encoded window, without allocating.
func (db *DB) RelFreqBytes(b []byte) float64 {
	if db.total == 0 {
		return 0
	}
	return float64(db.CountBytes(b)) / float64(db.total)
}

// IsForeign reports whether w (of the database's width) never occurs:
// the paper's definition of a foreign sequence at this width.
func (db *DB) IsForeign(w Stream) bool {
	return len(w) == db.width && !db.Contains(w)
}

// IsForeignBytes is IsForeign for a byte-encoded window, without
// allocating.
func (db *DB) IsForeignBytes(b []byte) bool {
	return len(b) == db.width && db.CountBytes(b) == 0
}

// IsRare reports whether w occurs with relative frequency in (0, cutoff).
// A foreign sequence is not rare: it does not occur at all.
func (db *DB) IsRare(w Stream, cutoff float64) bool {
	c := db.Count(w)
	return c > 0 && float64(c) < cutoff*float64(db.total)
}

// IsRareBytes is IsRare for a byte-encoded window, without allocating.
func (db *DB) IsRareBytes(b []byte, cutoff float64) bool {
	c := db.CountBytes(b)
	return c > 0 && float64(c) < cutoff*float64(db.total)
}

// Each calls fn for every distinct sequence with its count, in unspecified
// order. fn must not retain the Stream beyond the call.
func (db *DB) Each(fn func(w Stream, count int)) {
	for k, c := range db.counts {
		fn(FromBytes([]byte(k)), *c)
	}
}

// EachKey calls fn for every distinct sequence with its count, in
// unspecified order, passing the byte-encoded window as a string — the
// allocation-free counterpart of Each for callers (e.g. the neural-network
// trainer) that consume the encoded form directly.
func (db *DB) EachKey(fn func(key string, count int)) {
	for k, c := range db.counts {
		fn(k, *c)
	}
}

// Rare returns all distinct sequences whose relative frequency is below
// cutoff, sorted lexicographically for determinism.
func (db *DB) Rare(cutoff float64) []Stream {
	keys := make([]string, 0)
	limit := cutoff * float64(db.total)
	for k, c := range db.counts {
		if float64(*c) < limit {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	out := make([]Stream, len(keys))
	for i, k := range keys {
		out[i] = FromBytes([]byte(k))
	}
	return out
}

// Common returns all distinct sequences whose relative frequency is at least
// cutoff, sorted lexicographically for determinism.
func (db *DB) Common(cutoff float64) []Stream {
	keys := make([]string, 0)
	limit := cutoff * float64(db.total)
	for k, c := range db.counts {
		if float64(*c) >= limit {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	out := make([]Stream, len(keys))
	for i, k := range keys {
		out[i] = FromBytes([]byte(k))
	}
	return out
}
