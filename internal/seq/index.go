package seq

import (
	"sync"
)

// Index provides sequence databases of a training stream at every window
// width, built lazily and cached. The anomaly synthesizer and the injection
// verifier query many widths (1 through the largest detector window plus
// one); the Index amortizes those builds and is safe for concurrent use.
//
// Database caching is delegated to a Corpus, so the per-width databases an
// Index builds during corpus verification are the very databases detector
// training later fetches — one build per width across the whole evaluation.
type Index struct {
	corpus *Corpus

	mu   sync.Mutex
	auto *Automaton
}

// NewIndex returns an Index over stream. The Index copies the stream so that
// later caller mutations cannot corrupt cached databases.
func NewIndex(stream Stream) *Index {
	return &Index{corpus: NewCorpus(stream)}
}

// Corpus returns the shared per-width database cache backing the index.
// Detector-training code paths take it to reuse the databases already built
// for verification and injection.
func (ix *Index) Corpus() *Corpus { return ix.corpus }

// StreamLen returns the length of the indexed stream.
func (ix *Index) StreamLen() int { return ix.corpus.Len() }

// DB returns the sequence database at the given width, building it on first
// use. It returns an error for a non-positive width.
func (ix *Index) DB(width int) (*DB, error) {
	return ix.corpus.DB(width)
}

// Automaton returns a suffix automaton over the indexed stream, built on
// first use and cached. It answers membership and occurrence counts for
// sequences of any length in O(len) — the index of choice for scans that
// probe many lengths per position.
func (ix *Index) Automaton() *Automaton {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.auto == nil {
		ix.auto = BuildAutomaton(ix.corpus.Stream())
	}
	return ix.auto
}

// Contains reports whether w occurs in the indexed stream (at w's own
// length). An empty sequence trivially occurs.
func (ix *Index) Contains(w Stream) (bool, error) {
	if len(w) == 0 {
		return true, nil
	}
	db, err := ix.DB(len(w))
	if err != nil {
		return false, err
	}
	return db.Contains(w), nil
}

// IsForeign reports whether w never occurs in the indexed stream.
func (ix *Index) IsForeign(w Stream) (bool, error) {
	ok, err := ix.Contains(w)
	return err == nil && !ok, err
}

// IsMinimalForeign reports whether w is a minimal foreign sequence with
// respect to the indexed stream: w itself is foreign and every proper
// contiguous subsequence of w occurs.
//
// It suffices to check the two (len(w)-1)-length subsequences: every shorter
// contiguous subsequence of w is contained in one of them, and containment
// in an occurring sequence implies occurrence. Sequences of length < 2 can
// never be minimal foreign (a length-1 foreign sequence would be a symbol
// absent from training, which the paper's definition of foreignness — every
// element a member of the training alphabet — rules out).
func (ix *Index) IsMinimalForeign(w Stream) (bool, error) {
	if len(w) < 2 {
		return false, nil
	}
	foreign, err := ix.IsForeign(w)
	if err != nil || !foreign {
		return false, err
	}
	prefix, err := ix.Contains(w[:len(w)-1])
	if err != nil || !prefix {
		return false, err
	}
	suffix, err := ix.Contains(w[1:])
	return err == nil && suffix, err
}

// ProperSubsequencesOccur reports whether every proper contiguous
// subsequence of w occurs in the indexed stream, checking each length
// explicitly. IsMinimalForeign uses the equivalent two-subsequence shortcut;
// this exhaustive form backs the property tests that validate the shortcut.
func (ix *Index) ProperSubsequencesOccur(w Stream) (bool, error) {
	for width := 1; width < len(w); width++ {
		for i := 0; i+width <= len(w); i++ {
			ok, err := ix.Contains(w[i : i+width])
			if err != nil || !ok {
				return false, err
			}
		}
	}
	return true, nil
}
