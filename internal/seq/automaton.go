package seq

// Automaton is a suffix automaton over one stream: a minimal DFA of all the
// stream's substrings, answering "does w occur?" in O(len(w)) and "how many
// times?" in O(len(w)) for *any* length, without building per-width
// databases. The MFS scanner probes many widths per position, which makes
// the automaton the natural index there; the per-width DB remains the tool
// for enumerating and classifying whole width-classes (rare/common lists).
//
// Construction is Blumer/Crochemore online construction in O(n · alphabet)
// time and O(n) states; occurrence counts are endpos-set sizes, aggregated
// over the suffix-link tree in a counting sort by state length.
//
// Transitions live in a flat dense table when the stream's alphabet is at
// most denseMaxAlphabet symbols: one []int32 row of stride k per state,
// storing target+1 so the zero value means "no edge". System-call alphabets
// sit far below the cutoff, so the map-per-state representation (kept as a
// fallback for wide alphabets, and verbatim as the construction reference
// in automaton_reference_test.go) is off the hot path: building the dense
// automaton performs a handful of slice allocations instead of one map per
// state — the churn that used to dominate the MFS scan.
type Automaton struct {
	k      int              // dense transition stride; 0 selects map mode
	dense  []int32          // states×k rows; dense[s*k+c] = target+1, 0 = absent
	next   []map[byte]int32 // map-mode transitions (alphabet > denseMaxAlphabet)
	link   []int32          // suffix links
	length []int32          // longest substring length per state
	count  []int64          // occurrence count (endpos size) per state
	n      int              // stream length
}

// denseMaxAlphabet bounds the alphabet size for the dense transition table:
// beyond it the k-per-state rows would outgrow the map representation they
// replace (256 symbols × ~2n states ≈ 2 KiB per state).
const denseMaxAlphabet = 64

// BuildAutomaton constructs the suffix automaton of the stream.
func BuildAutomaton(stream Stream) *Automaton {
	k := 0
	for _, sym := range stream {
		if int(sym)+1 > k {
			k = int(sym) + 1
		}
	}
	if k > denseMaxAlphabet {
		return buildAutomatonMap(stream)
	}
	if k == 0 {
		k = 1 // empty stream: keep a non-degenerate dense stride
	}

	a := &Automaton{k: k, n: len(stream)}
	// Reserve for the worst case of 2n-1 states plus the root.
	states := 2*len(stream) + 2
	a.dense = make([]int32, 0, states*k)
	a.link = make([]int32, 0, states)
	a.length = make([]int32, 0, states)
	a.count = make([]int64, 0, states)
	zeroRow := make([]int32, k)

	newState := func(length, link int32) int32 {
		a.dense = append(a.dense, zeroRow...)
		a.link = append(a.link, link)
		a.length = append(a.length, length)
		a.count = append(a.count, 0)
		return int32(len(a.link) - 1)
	}
	root := newState(0, -1)
	last := root

	for _, sym := range stream {
		c := int32(sym)
		cur := newState(a.length[last]+1, root)
		a.count[cur] = 1 // cur's endpos gains this position
		p := last
		for p != -1 && a.dense[int(p)*k+int(c)] == 0 {
			a.dense[int(p)*k+int(c)] = cur + 1
			p = a.link[p]
		}
		if p == -1 {
			a.link[cur] = root
		} else {
			q := a.dense[int(p)*k+int(c)] - 1
			if a.length[p]+1 == a.length[q] {
				a.link[cur] = q
			} else {
				clone := newState(a.length[p]+1, a.link[q])
				copy(a.dense[int(clone)*k:int(clone+1)*k], a.dense[int(q)*k:int(q+1)*k])
				for p != -1 && a.dense[int(p)*k+int(c)] == q+1 {
					a.dense[int(p)*k+int(c)] = clone + 1
					p = a.link[p]
				}
				a.link[q] = clone
				a.link[cur] = clone
			}
		}
		last = cur
	}

	a.aggregateCounts()
	return a
}

// buildAutomatonMap is the map-per-state construction, used when the
// alphabet is too wide for the dense table.
func buildAutomatonMap(stream Stream) *Automaton {
	a := &Automaton{n: len(stream)}
	states := 2*len(stream) + 2
	a.next = make([]map[byte]int32, 0, states)
	a.link = make([]int32, 0, states)
	a.length = make([]int32, 0, states)
	a.count = make([]int64, 0, states)

	newState := func(length, link int32) int32 {
		a.next = append(a.next, nil)
		a.link = append(a.link, link)
		a.length = append(a.length, length)
		a.count = append(a.count, 0)
		return int32(len(a.next) - 1)
	}
	root := newState(0, -1)
	last := root

	for _, sym := range stream {
		c := byte(sym)
		cur := newState(a.length[last]+1, root)
		a.count[cur] = 1 // cur's endpos gains this position
		p := last
		for p != -1 && !hasEdge(a.next[p], c) {
			setEdge(&a.next[p], c, cur)
			p = a.link[p]
		}
		if p == -1 {
			a.link[cur] = root
		} else {
			q := a.next[p][c]
			if a.length[p]+1 == a.length[q] {
				a.link[cur] = q
			} else {
				clone := newState(a.length[p]+1, a.link[q])
				a.next[clone] = cloneEdges(a.next[q])
				for p != -1 && hasEdge(a.next[p], c) && a.next[p][c] == q {
					setEdge(&a.next[p], c, clone)
					p = a.link[p]
				}
				a.link[q] = clone
				a.link[cur] = clone
			}
		}
		last = cur
	}

	a.aggregateCounts()
	return a
}

func hasEdge(m map[byte]int32, c byte) bool {
	_, ok := m[c]
	return ok
}

func setEdge(m *map[byte]int32, c byte, to int32) {
	if *m == nil {
		*m = make(map[byte]int32, 2)
	}
	(*m)[c] = to
}

func cloneEdges(m map[byte]int32) map[byte]int32 {
	out := make(map[byte]int32, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// edge returns the transition from state s on symbol c, or -1.
func (a *Automaton) edge(s int32, c byte) int32 {
	if a.k > 0 {
		if int(c) >= a.k {
			return -1
		}
		return a.dense[int(s)*a.k+int(c)] - 1
	}
	t, ok := a.next[s][c]
	if !ok {
		return -1
	}
	return t
}

// aggregateCounts propagates endpos sizes up the suffix-link tree by
// processing states in decreasing length order (counting sort on length).
func (a *Automaton) aggregateCounts() {
	maxLen := 0
	for _, l := range a.length {
		if int(l) > maxLen {
			maxLen = int(l)
		}
	}
	buckets := make([]int, maxLen+2)
	for _, l := range a.length {
		buckets[l]++
	}
	for i := 1; i <= maxLen; i++ {
		buckets[i] += buckets[i-1]
	}
	order := make([]int32, len(a.length))
	for s := range a.length {
		buckets[a.length[s]]--
		order[buckets[a.length[s]]] = int32(s)
	}
	for i := len(order) - 1; i >= 0; i-- {
		s := order[i]
		if a.link[s] >= 0 {
			a.count[a.link[s]] += a.count[s]
		}
	}
}

// state walks the automaton along w, returning the reached state or -1.
func (a *Automaton) state(w Stream) int32 {
	s := int32(0)
	for _, sym := range w {
		t := a.edge(s, byte(sym))
		if t < 0 {
			return -1
		}
		s = t
	}
	return s
}

// Contains reports whether w occurs in the indexed stream (the empty
// sequence trivially occurs).
func (a *Automaton) Contains(w Stream) bool { return a.state(w) >= 0 }

// Count returns the number of occurrences of w in the indexed stream; the
// empty sequence occurs n+1 times by convention (every boundary).
func (a *Automaton) Count(w Stream) int {
	if len(w) == 0 {
		return a.n + 1
	}
	s := a.state(w)
	if s < 0 {
		return 0
	}
	return int(a.count[s])
}

// IsForeign reports whether w never occurs in the stream.
func (a *Automaton) IsForeign(w Stream) bool { return len(w) > 0 && !a.Contains(w) }

// IsMinimalForeign reports whether w is a minimal foreign sequence with
// respect to the indexed stream, via the two-subsequence shortcut.
func (a *Automaton) IsMinimalForeign(w Stream) bool {
	if len(w) < 2 {
		return false
	}
	return a.IsForeign(w) && a.Contains(w[:len(w)-1]) && a.Contains(w[1:])
}

// AppendMatchLens appends the matching statistics of test against the
// indexed stream to dst and returns it: for every prefix test[:j+1], the
// length of the longest suffix of that prefix that occurs in the indexed
// stream. The walk follows suffix links on mismatch — the classic matching
// statistics traversal — and visits each symbol O(1) amortized times,
// allocating nothing when dst has capacity.
//
// Matching statistics turn foreignness queries into arithmetic: with
// S = AppendMatchLens(nil, test), the window test[i:j] occurs in the
// indexed stream if and only if j-S[j-1] <= i, because S[j-1] is the
// longest occurring suffix ending at j. The MFS scanner builds its whole
// single-pass sweep on that identity.
func (a *Automaton) AppendMatchLens(dst []int32, test Stream) []int32 {
	s, l := int32(0), int32(0)
	for _, sym := range test {
		c := byte(sym)
		if t := a.edge(s, c); t >= 0 {
			s, l = t, l+1
		} else {
			for {
				s = a.link[s]
				if s < 0 {
					s, l = 0, 0
					break
				}
				if t := a.edge(s, c); t >= 0 {
					l = a.length[s] + 1
					s = t
					break
				}
			}
		}
		dst = append(dst, l)
	}
	return dst
}

// States returns the number of automaton states (diagnostics).
func (a *Automaton) States() int { return len(a.link) }

// StreamLen returns the length of the indexed stream.
func (a *Automaton) StreamLen() int { return a.n }
