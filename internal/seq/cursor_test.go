package seq

import (
	"testing"

	"adiv/internal/alphabet"
)

func testStream(n int) Stream {
	s := make(Stream, n)
	for i := range s {
		s[i] = alphabet.Symbol((i*7 + i/3) % 8)
	}
	return s
}

func TestCursorWindows(t *testing.T) {
	s := testStream(100)
	const width = 6
	cur := NewCursor(s, width)
	if got, want := cur.Len(), NumWindows(len(s), width); got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	i := 0
	for {
		w, ok := cur.Next()
		if !ok {
			break
		}
		want := s[i : i+width].Bytes()
		if string(w) != string(want) {
			t.Fatalf("window %d = %v, want %v", i, w, want)
		}
		i++
	}
	if i != cur.Len() {
		t.Fatalf("iterated %d windows, want %d", i, cur.Len())
	}
	if w, ok := cur.Next(); ok {
		t.Fatalf("Next after exhaustion returned %v", w)
	}
}

func TestCursorDegenerate(t *testing.T) {
	s := testStream(4)
	for _, width := range []int{0, -1, 5} {
		cur := NewCursor(s, width)
		if cur.Len() != 0 {
			t.Fatalf("width %d: Len = %d, want 0", width, cur.Len())
		}
		if _, ok := cur.Next(); ok {
			t.Fatalf("width %d: Next succeeded on empty cursor", width)
		}
	}
}

func TestCursorAt(t *testing.T) {
	s := testStream(50)
	cur := NewCursor(s, 8)
	for i := 0; i < cur.Len(); i++ {
		if got, want := string(cur.At(i)), string(s[i:i+8].Bytes()); got != want {
			t.Fatalf("At(%d) = %q, want %q", i, got, want)
		}
	}
}

// TestCursorResetNoAlloc pins the zero-allocation contract: a cursor reused
// across streams of steady length must not allocate on Reset or Next.
func TestCursorResetNoAlloc(t *testing.T) {
	s := testStream(2000)
	cur := NewCursor(s, 8)
	allocs := testing.AllocsPerRun(50, func() {
		cur.Reset(s, 8)
		for {
			if _, ok := cur.Next(); !ok {
				break
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("cursor iteration allocated %.1f times per run, want 0", allocs)
	}
}

// TestByteLookupsNoAlloc pins the allocation-free contract of the keyed
// byte lookups the detector score paths depend on.
func TestByteLookupsNoAlloc(t *testing.T) {
	s := testStream(5000)
	db, err := Build(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	cur := NewCursor(s, 8)
	allocs := testing.AllocsPerRun(20, func() {
		cur.Reset(s, 8)
		for {
			w, ok := cur.Next()
			if !ok {
				break
			}
			if db.CountBytes(w) == 0 {
				t.Fatal("training window reported absent")
			}
			_ = db.IsRareBytes(w, 0.005)
			_ = db.IsForeignBytes(w)
			_ = db.RelFreqBytes(w)
		}
	})
	if allocs != 0 {
		t.Fatalf("byte lookups allocated %.1f times per run, want 0", allocs)
	}
}

// TestCountNoAlloc pins the stack-buffer fast path of the Stream-typed
// Count for grid-sized widths.
func TestCountNoAlloc(t *testing.T) {
	s := testStream(5000)
	db, err := Build(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	w := s[17:25]
	allocs := testing.AllocsPerRun(100, func() {
		if db.Count(w) == 0 {
			t.Fatal("training window reported absent")
		}
	})
	if allocs != 0 {
		t.Fatalf("Count allocated %.1f times per run, want 0", allocs)
	}
}

func TestByteLookupsMatchStreamLookups(t *testing.T) {
	s := testStream(3000)
	db, err := Build(s, 5)
	if err != nil {
		t.Fatal(err)
	}
	cur := NewCursor(s, 5)
	for i := 0; i < cur.Len(); i++ {
		b := cur.At(i)
		w := s[i : i+5]
		if db.CountBytes(b) != db.Count(w) {
			t.Fatalf("window %d: CountBytes %d != Count %d", i, db.CountBytes(b), db.Count(w))
		}
		if db.ContainsBytes(b) != db.Contains(w) {
			t.Fatalf("window %d: ContainsBytes mismatch", i)
		}
		if db.IsForeignBytes(b) != db.IsForeign(w) {
			t.Fatalf("window %d: IsForeignBytes mismatch", i)
		}
		if db.IsRareBytes(b, 0.005) != db.IsRare(w, 0.005) {
			t.Fatalf("window %d: IsRareBytes mismatch", i)
		}
		if db.RelFreqBytes(b) != db.RelFreq(w) {
			t.Fatalf("window %d: RelFreqBytes mismatch", i)
		}
	}
	// Wrong-length and absent keys.
	if db.CountBytes([]byte{0, 1}) != 0 {
		t.Fatal("wrong-length key counted")
	}
	if db.CountBytes([]byte{9, 9, 9, 9, 9}) != 0 {
		t.Fatal("absent key counted")
	}
	if db.IsForeignBytes([]byte{0, 1}) {
		t.Fatal("wrong-length key reported foreign")
	}
}
