package seq

import (
	"testing"
	"testing/quick"
)

func TestAutomatonBasics(t *testing.T) {
	// Stream "abcbc" (0 1 2 1 2).
	a := BuildAutomaton(mk(0, 1, 2, 1, 2))
	tests := []struct {
		w     Stream
		count int
	}{
		{Stream{}, 6},
		{mk(0), 1},
		{mk(1), 2},
		{mk(2), 2},
		{mk(3), 0},
		{mk(1, 2), 2},
		{mk(2, 1), 1},
		{mk(0, 1, 2), 1},
		{mk(1, 2, 1, 2), 1},
		{mk(0, 1, 2, 1, 2), 1},
		{mk(2, 2), 0},
		{mk(0, 1, 2, 1, 2, 0), 0},
	}
	for _, tt := range tests {
		if got := a.Count(tt.w); got != tt.count {
			t.Errorf("Count(%v) = %d, want %d", tt.w, got, tt.count)
		}
		if got, want := a.Contains(tt.w), tt.count > 0; got != want {
			t.Errorf("Contains(%v) = %v, want %v", tt.w, got, want)
		}
	}
	if a.StreamLen() != 5 {
		t.Errorf("StreamLen() = %d", a.StreamLen())
	}
	if a.States() < 6 || a.States() > 11 {
		t.Errorf("States() = %d, outside the suffix-automaton bound", a.States())
	}
}

func TestAutomatonEmptyStream(t *testing.T) {
	a := BuildAutomaton(nil)
	if !a.Contains(Stream{}) {
		t.Errorf("empty sequence should occur in empty stream")
	}
	if a.Contains(mk(0)) {
		t.Errorf("symbol found in empty stream")
	}
	if a.Count(Stream{}) != 1 {
		t.Errorf("Count(empty) = %d", a.Count(Stream{}))
	}
}

// TestAutomatonMatchesDB cross-checks the automaton against the per-width
// database on random streams: same membership, same counts, every width.
func TestAutomatonMatchesDB(t *testing.T) {
	check := func(raw []byte, probeRaw []byte) bool {
		stream := FromBytes(clampSymbols(raw, 4))
		if len(stream) > 300 {
			stream = stream[:300]
		}
		a := BuildAutomaton(stream)
		// Check every window of the stream itself at widths 1..6.
		for width := 1; width <= 6 && width <= len(stream); width++ {
			db, err := Build(stream, width)
			if err != nil {
				return false
			}
			for i := 0; i+width <= len(stream); i++ {
				w := stream[i : i+width]
				if a.Count(w) != db.Count(w) {
					return false
				}
			}
		}
		// And arbitrary probes, occurring or not.
		probe := FromBytes(clampSymbols(probeRaw, 4))
		if len(probe) > 0 && len(probe) <= len(stream) {
			db, err := Build(stream, len(probe))
			if err != nil {
				return false
			}
			if a.Count(probe) != db.Count(probe) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestAutomatonMinimalForeignMatchesIndex cross-checks the automaton's MFS
// predicate against the Index implementation.
func TestAutomatonMinimalForeignMatchesIndex(t *testing.T) {
	check := func(raw []byte, candRaw []byte) bool {
		if len(candRaw) > 6 {
			return true
		}
		stream := FromBytes(clampSymbols(raw, 3))
		candidate := FromBytes(clampSymbols(candRaw, 3))
		a := BuildAutomaton(stream)
		ix := NewIndex(stream)
		want, err := ix.IsMinimalForeign(candidate)
		if err != nil {
			return false
		}
		return a.IsMinimalForeign(candidate) == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAutomatonStateBound(t *testing.T) {
	// The suffix automaton of a length-n stream has at most 2n-1 states
	// (n >= 3); verify on a worst-case-ish string.
	stream := mk(0, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1)
	a := BuildAutomaton(stream)
	if a.States() > 2*len(stream) {
		t.Errorf("%d states for stream of length %d", a.States(), len(stream))
	}
}
