package seq

// Cursor is a zero-allocation iterator over the width-length windows of a
// stream. It byte-encodes the stream once into an internal buffer that is
// reused across Reset calls, and each Next returns an overlapping subslice
// of that buffer — suitable for keyed DB lookups (CountBytes, IsRareBytes)
// without materializing a fresh window per step.
//
// The slice returned by Next aliases the cursor's buffer and is valid only
// until the next Reset; callers must not modify or retain it. A Cursor is
// not safe for concurrent use.
type Cursor struct {
	buf   []byte
	width int
	pos   int
}

// NewCursor returns a cursor over the width-length windows of s. A
// non-positive width or a stream shorter than width yields an exhausted
// cursor (Len 0), mirroring NumWindows.
func NewCursor(s Stream, width int) *Cursor {
	c := &Cursor{}
	c.Reset(s, width)
	return c
}

// Reset repositions the cursor at the first window of s with the given
// width, re-encoding s into the cursor's buffer. When the buffer capacity
// already fits the stream — the steady state for a cursor reused across
// streams of similar length — Reset performs no allocation.
func (c *Cursor) Reset(s Stream, width int) {
	c.buf = s.AppendBytes(c.buf[:0])
	c.width = width
	c.pos = 0
}

// Len returns the total number of windows the cursor iterates over.
func (c *Cursor) Len() int { return NumWindows(len(c.buf), c.width) }

// Next returns the next window as a byte-encoded subslice and true, or
// (nil, false) once all windows have been consumed.
func (c *Cursor) Next() ([]byte, bool) {
	if c.width <= 0 || c.pos+c.width > len(c.buf) {
		return nil, false
	}
	w := c.buf[c.pos : c.pos+c.width]
	c.pos++
	return w, true
}

// At returns the i-th window without moving the cursor. It panics if i is
// out of [0, Len()).
func (c *Cursor) At(i int) []byte {
	return c.buf[i : i+c.width]
}
