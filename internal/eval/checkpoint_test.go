package eval

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"adiv/internal/checkpoint"
	"adiv/internal/detector"
	"adiv/internal/inject"
	"adiv/internal/obs"
	"adiv/internal/seq"
)

// gradedPlacements gives each anomaly size a distinct stream length so the
// graded factory's responses vary per cell — the resume-equivalence checks
// below compare raw IEEE-754 bits, and identical responses everywhere would
// let a broken replay path pass unnoticed.
func gradedPlacements() map[int]inject.Placement {
	return map[int]inject.Placement{
		2: placementOf(60, 25, 2),
		3: placementOf(66, 25, 3),
		4: placementOf(72, 25, 4),
	}
}

// gradedFactory builds deterministic fakes whose maximum response is an
// awkward float of (window, stream length) — bit-exactness actually bites —
// with enough windows capable that the maps mix all three outcomes.
func gradedFactory() Factory {
	return func(window int) (detector.Detector, error) {
		return &fakeDetector{
			name:   "fake",
			window: window,
			extent: window,
			scoreFunc: func(test seq.Stream) []float64 {
				out := make([]float64, seq.NumWindows(len(test), window))
				resp := 1 / (1.7 + float64(window)*0.31 + float64(len(test))*0.013)
				if window >= 6 {
					resp = 1
				}
				out[25] = resp
				return out
			},
		}, nil
	}
}

func evalTestFingerprint() checkpoint.Fingerprint {
	return checkpoint.Fingerprint{
		Command:      "eval-test",
		AlphabetSize: 8,
		Seed:         1,
		MinSize:      2, MaxSize: 4,
		MinWindow: 2, MaxWindow: 8,
		Detectors:  []string{"fake"},
		CorpusHash: "fnv1a:test",
	}
}

// buildGraded runs the graded grid with the given options and fails the
// test on error.
func buildGraded(t *testing.T, opts Options) *Map {
	t.Helper()
	m, err := BuildMapCorpus("fake", gradedFactory(), seq.NewCorpus(make(seq.Stream, 100)),
		gradedPlacements(), 2, 8, opts, nil)
	if err != nil {
		t.Fatalf("BuildMapCorpus: %v", err)
	}
	return m
}

// requireSameCells asserts got and want are identical cell for cell, with
// MaxResponse compared as raw bits — the resume-equivalence contract.
func requireSameCells(t *testing.T, got, want []Assessment) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("cell count %d, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Detector != w.Detector || g.Window != w.Window || g.AnomalySize != w.AnomalySize ||
			g.Outcome != w.Outcome || math.Float64bits(g.MaxResponse) != math.Float64bits(w.MaxResponse) {
			t.Errorf("cell %d = %+v (resp bits %#x), want %+v (resp bits %#x)",
				i, g, math.Float64bits(g.MaxResponse), w, math.Float64bits(w.MaxResponse))
		}
	}
}

// TestBuildMapCrashResume is the crash-recovery property test: a run killed
// by an injected fault after K units of grid work, resumed from its journal,
// must produce a map identical — bit for bit in every response — to an
// uninterrupted single-worker run, for several K at several worker counts.
func TestBuildMapCrashResume(t *testing.T) {
	serial := DefaultOptions()
	serial.Workers = 1
	want := buildGraded(t, serial).Cells()

	for _, workers := range []int{1, 2, 8} {
		for _, k := range []int{1, 4, 9, 20} {
			t.Run(fmt.Sprintf("workers=%d/k=%d", workers, k), func(t *testing.T) {
				dir := t.TempDir()

				// Crashed run: the fault hook lets K grid tasks start, then
				// every subsequent task dies the way a killed process would.
				j, err := checkpoint.Open(dir, evalTestFingerprint(), false)
				if err != nil {
					t.Fatalf("Open: %v", err)
				}
				sched := NewScheduler(workers)
				var tasks atomic.Int64
				sched.SetFaultHook(func() {
					if tasks.Add(1) > int64(k) {
						panic(ErrInjectedFault)
					}
				})
				opts := DefaultOptions()
				opts.Scheduler = sched
				opts.Checkpoint = j
				_, err = BuildMapCorpus("fake", gradedFactory(), seq.NewCorpus(make(seq.Stream, 100)),
					gradedPlacements(), 2, 8, opts, nil)
				if err == nil {
					t.Fatal("crashed run reported success")
				}
				if !errors.Is(err, ErrInjectedFault) {
					t.Fatalf("crash error = %v, want ErrInjectedFault in its chain", err)
				}
				if err := j.Close(); err != nil {
					t.Fatalf("Close: %v", err)
				}

				// Resume: journaled cells replay, the rest run live.
				j2, err := checkpoint.Open(dir, evalTestFingerprint(), true)
				if err != nil {
					t.Fatalf("reopen: %v", err)
				}
				defer j2.Close()
				resumed := DefaultOptions()
				resumed.Scheduler = NewScheduler(workers)
				resumed.Checkpoint = j2
				m, err := BuildMapCorpus("fake", gradedFactory(), seq.NewCorpus(make(seq.Stream, 100)),
					gradedPlacements(), 2, 8, resumed, nil)
				if err != nil {
					t.Fatalf("resumed run: %v", err)
				}
				requireSameCells(t, m.Cells(), want)
			})
		}
	}
}

// TestBuildMapResumeSkipsTraining pins the resume perf win: when every cell
// of the grid is journaled, the resumed build must not construct (let alone
// train) a single detector.
func TestBuildMapResumeSkipsTraining(t *testing.T) {
	dir := t.TempDir()
	j, err := checkpoint.Open(dir, evalTestFingerprint(), false)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	opts := DefaultOptions()
	opts.Checkpoint = j
	want := buildGraded(t, opts).Cells()
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2, err := checkpoint.Open(dir, evalTestFingerprint(), true)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	var constructed atomic.Int64
	counting := func(window int) (detector.Detector, error) {
		constructed.Add(1)
		return gradedFactory()(window)
	}
	resumed := DefaultOptions()
	resumed.Checkpoint = j2
	m, err := BuildMapCorpus("fake", counting, seq.NewCorpus(make(seq.Stream, 100)),
		gradedPlacements(), 2, 8, resumed, nil)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if n := constructed.Load(); n != 0 {
		t.Errorf("fully journaled resume constructed %d detectors, want 0", n)
	}
	requireSameCells(t, m.Cells(), want)
}

// TestBuildMapReplayIgnoresForeignKeys: records journaled under a different
// checkpoint key (another parameter point of a sweep) must not replay into
// this map.
func TestBuildMapReplayIgnoresForeignKeys(t *testing.T) {
	dir := t.TempDir()
	j, err := checkpoint.Open(dir, evalTestFingerprint(), false)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	opts := DefaultOptions()
	opts.Checkpoint = j
	opts.CheckpointKey = "fake[param=1]"
	buildGraded(t, opts)
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2, err := checkpoint.Open(dir, evalTestFingerprint(), true)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	var constructed atomic.Int64
	counting := func(window int) (detector.Detector, error) {
		constructed.Add(1)
		return gradedFactory()(window)
	}
	other := DefaultOptions()
	other.Checkpoint = j2
	other.CheckpointKey = "fake[param=2]"
	if _, err := BuildMapCorpus("fake", counting, seq.NewCorpus(make(seq.Stream, 100)),
		gradedPlacements(), 2, 8, other, nil); err != nil {
		t.Fatalf("second parameter point: %v", err)
	}
	if n := constructed.Load(); n != 7 {
		t.Errorf("second parameter point constructed %d detectors, want 7 (no cross-key replay)", n)
	}
}

// flakyDetector fails its first `failures` Score calls, then behaves like
// its embedded fake. Cells within a row run sequentially, so the counter
// needs no synchronization.
type flakyDetector struct {
	fakeDetector
	failures int
}

func (f *flakyDetector) Score(test seq.Stream) ([]float64, error) {
	if f.failures > 0 {
		f.failures--
		return nil, errors.New("transient scoring failure")
	}
	return f.fakeDetector.Score(test)
}

// stubRetrySleep replaces the retry backoff with a recorder for the duration
// of the test. BuildMapCorpus's WaitGroup orders the recorded appends before
// the test's reads.
func stubRetrySleep(t *testing.T) *[]time.Duration {
	t.Helper()
	var delays []time.Duration
	orig := retrySleep
	retrySleep = func(d time.Duration) { delays = append(delays, d) }
	t.Cleanup(func() { retrySleep = orig })
	return &delays
}

// TestBuildMapRetriesFlakyCell: a cell failing twice under CellRetries: 2
// succeeds on the third attempt, with the documented backoff schedule and
// the retry counter recording both attempts.
func TestBuildMapRetriesFlakyCell(t *testing.T) {
	delays := stubRetrySleep(t)
	factory := func(window int) (detector.Detector, error) {
		return &flakyDetector{
			fakeDetector: fakeDetector{name: "fake", window: window, extent: window,
				scoreFunc: constantScores(0.5)},
			failures: 2,
		}, nil
	}
	reg := obs.New()
	opts := DefaultOptions()
	placements := map[int]inject.Placement{2: placementOf(50, 25, 2)}
	m, err := BuildMapCorpus("fake", factory, seq.NewCorpus(make(seq.Stream, 100)),
		placements, 3, 3, opts, reg)
	if err != nil {
		t.Fatalf("BuildMapCorpus: %v", err)
	}
	if got := m.Outcome(2, 3); got != Weak {
		t.Errorf("outcome after retries = %v, want Weak", got)
	}
	if want := []time.Duration{retryDelay(1), retryDelay(2)}; len(*delays) != 2 ||
		(*delays)[0] != want[0] || (*delays)[1] != want[1] {
		t.Errorf("backoff sleeps = %v, want %v", *delays, want)
	}
	if got := reg.Counter("ckpt/cells_retried").Value(); got != 2 {
		t.Errorf("ckpt/cells_retried = %d, want 2", got)
	}
}

// TestBuildMapRetriesExhausted: a cell that keeps failing exhausts its
// retries and the map error names its exact coordinates.
func TestBuildMapRetriesExhausted(t *testing.T) {
	stubRetrySleep(t)
	factory := func(window int) (detector.Detector, error) {
		return &flakyDetector{
			fakeDetector: fakeDetector{name: "fake", window: window, extent: window,
				scoreFunc: constantScores(0)},
			failures: 100,
		}, nil
	}
	opts := DefaultOptions()
	opts.CellRetries = 1
	_, err := BuildMapCorpus("fake", factory, seq.NewCorpus(make(seq.Stream, 100)),
		map[int]inject.Placement{2: placementOf(50, 25, 2)}, 3, 3, opts, nil)
	if err == nil {
		t.Fatal("exhausted retries reported success")
	}
	for _, want := range []string{"window 3", "size 2", "transient scoring failure"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

// TestBuildMapPanicNamesCell is the satellite regression test: a panicking
// cell must surface as an error naming the map, window, and size — before
// the fix the row coordinators lost which cell blew up.
func TestBuildMapPanicNamesCell(t *testing.T) {
	factory := func(window int) (detector.Detector, error) {
		return &fakeDetector{
			name: "fake", window: window, extent: window,
			scoreFunc: func(test seq.Stream) []float64 {
				if window == 4 {
					panic("score exploded")
				}
				return fill(make([]float64, seq.NumWindows(len(test), window)), 0)
			},
		}, nil
	}
	opts := DefaultOptions()
	opts.CellRetries = 0
	_, err := BuildMapCorpus("fake", factory, seq.NewCorpus(make(seq.Stream, 100)),
		map[int]inject.Placement{2: placementOf(50, 25, 2)}, 2, 5, opts, nil)
	if err == nil {
		t.Fatal("panicking cell reported success")
	}
	for _, want := range []string{"fake", "window 4", "size 2", "panic: score exploded"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

// TestBuildMapInjectedFaultNotRetried: the simulated crash must never enter
// the retry loop — retrying a crash would defeat every recovery test built
// on it.
func TestBuildMapInjectedFaultNotRetried(t *testing.T) {
	delays := stubRetrySleep(t)
	sched := NewScheduler(1)
	var tasks atomic.Int64
	sched.SetFaultHook(func() {
		if tasks.Add(1) > 1 { // let the row's training through, kill its first cell
			panic(ErrInjectedFault)
		}
	})
	opts := DefaultOptions()
	opts.Scheduler = sched
	opts.CellRetries = 5
	_, err := BuildMapCorpus("fake", gradedFactory(), seq.NewCorpus(make(seq.Stream, 100)),
		map[int]inject.Placement{2: placementOf(60, 25, 2)}, 3, 3, opts, nil)
	if !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("error = %v, want ErrInjectedFault", err)
	}
	if len(*delays) != 0 {
		t.Errorf("injected fault slept %v before failing — it was retried", *delays)
	}
}

// TestBuildMapRejectsNegativeRetries: Options.Validate guards the retry
// loop's attempt arithmetic.
func TestBuildMapRejectsNegativeRetries(t *testing.T) {
	opts := DefaultOptions()
	opts.CellRetries = -1
	if err := opts.Validate(); err == nil {
		t.Error("negative CellRetries validated")
	}
}

func TestRetryDelay(t *testing.T) {
	tests := []struct {
		attempt int
		want    time.Duration
	}{
		{1, 10 * time.Millisecond},
		{2, 20 * time.Millisecond},
		{3, 40 * time.Millisecond},
		{5, 160 * time.Millisecond},
		{6, cellRetryCap},
		{40, cellRetryCap},
		{100, cellRetryCap}, // shift overflow must clamp, not wrap
	}
	for _, tt := range tests {
		if got := retryDelay(tt.attempt); got != tt.want {
			t.Errorf("retryDelay(%d) = %v, want %v", tt.attempt, got, tt.want)
		}
	}
}
