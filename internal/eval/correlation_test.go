package eval

import (
	"math"
	"testing"

	"adiv/internal/seq"
)

func scriptedDet(extent int, responses []float64) *fakeDetector {
	return &fakeDetector{name: "scripted", window: extent, extent: extent, trained: true,
		scoreFunc: func(test seq.Stream) []float64 {
			out := make([]float64, len(test)-extent+1)
			copy(out, responses)
			return out
		}}
}

func TestResponseCorrelationPerfect(t *testing.T) {
	resp := []float64{0, 0.5, 1, 0.25, 0.75}
	a := scriptedDet(2, resp)
	b := scriptedDet(2, resp)
	r, err := ResponseCorrelation(a, b, make(seq.Stream, 6))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Errorf("identical responses: r = %v, want 1", r)
	}
}

func TestResponseCorrelationInverse(t *testing.T) {
	a := scriptedDet(2, []float64{0, 0.25, 0.5, 0.75, 1})
	b := scriptedDet(2, []float64{1, 0.75, 0.5, 0.25, 0})
	r, err := ResponseCorrelation(a, b, make(seq.Stream, 6))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r+1) > 1e-12 {
		t.Errorf("anti-correlated responses: r = %v, want -1", r)
	}
}

func TestResponseCorrelationErrors(t *testing.T) {
	a := scriptedDet(2, []float64{0, 1})
	b := scriptedDet(3, []float64{0, 1})
	if _, err := ResponseCorrelation(a, b, make(seq.Stream, 6)); err == nil {
		t.Errorf("extent mismatch accepted")
	}
	constant := scriptedDet(2, []float64{0.5, 0.5, 0.5, 0.5, 0.5})
	varied := scriptedDet(2, []float64{0, 1, 0, 1, 0})
	if _, err := ResponseCorrelation(constant, varied, make(seq.Stream, 6)); err == nil {
		t.Errorf("constant sequence accepted")
	}
	untrained := &fakeDetector{name: "u", window: 2, extent: 2, scoreFunc: constantScores(0)}
	if _, err := ResponseCorrelation(untrained, varied, make(seq.Stream, 6)); err == nil {
		t.Errorf("untrained detector accepted")
	}
}
