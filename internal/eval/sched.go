package eval

import (
	"errors"
	"runtime"

	"adiv/internal/obs"
)

// ErrInjectedFault is the sentinel a Scheduler fault hook conventionally
// panics with to simulate the process dying mid-grid. The grid builders'
// task recovery treats it as fatal — unlike an ordinary cell failure it is
// never retried, because retrying a crash defeats the crash-recovery tests
// that inject it.
var ErrInjectedFault = errors.New("eval: injected fault")

// Scheduler is a bounded worker pool for grid tasks: a counting semaphore
// that caps how many row trainings and cell evaluations execute at once.
// One scheduler can — and in the drivers does — back several performance
// maps at a time, so an expensive neural-network row never serializes a
// whole map behind itself while the cheap families' rows could be running:
// every (window, size) task from every map competes for the same slots.
//
// Each slot is a numbered lane: a task learns which lane it occupies
// (RunLane), and because a lane runs one task at a time, lane-stamped trace
// spans never overlap within a lane — the property the trace timeline's
// per-worker tracks and occupancy analysis are built on.
//
// A Scheduler is safe for concurrent use. The zero value is not usable;
// construct with NewScheduler.
type Scheduler struct {
	slots chan int

	// Telemetry handles; nil when uninstrumented (the default). The live
	// in-flight task count is the difference of the two counters — /metrics
	// scrapes both, and counters stay lock-free on the task path.
	started, finished *obs.Counter

	// fault, when non-nil, runs at the start of every task (see
	// SetFaultHook); nil — the production state — costs one pointer test.
	fault func()
}

// NewScheduler returns a scheduler executing at most workers tasks
// concurrently; workers < 1 means runtime.NumCPU.
func NewScheduler(workers int) *Scheduler {
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	s := &Scheduler{slots: make(chan int, workers)}
	for lane := 0; lane < workers; lane++ {
		s.slots <- lane
	}
	return s
}

// Instrument records pool telemetry into reg: the sched/workers bound as a
// gauge plus sched/tasks_started and sched/tasks_done counters (their
// difference is the live in-flight task count). Call before submitting
// work; a nil registry disables instrumentation.
func (s *Scheduler) Instrument(reg *obs.Registry) {
	if reg == nil {
		s.started, s.finished = nil, nil
		return
	}
	s.started = reg.Counter("sched/tasks_started")
	s.finished = reg.Counter("sched/tasks_done")
	reg.Gauge("sched/workers").Set(float64(cap(s.slots)))
}

// Workers returns the scheduler's concurrency bound.
func (s *Scheduler) Workers() int { return cap(s.slots) }

// SetFaultHook installs fn to run at the start of every task, after its
// slot is acquired and before the task's function. It exists for the
// crash-recovery tests: a hook that counts invocations and then panics
// with ErrInjectedFault simulates the process dying after K units of grid
// work — the panic unwinds into the row coordinator's recovery, is treated
// as fatal (never retried), and fails the build while the checkpoint
// journal keeps every cell completed before the "crash". Must be set
// before any Run call; passing nil removes the hook.
func (s *Scheduler) SetFaultHook(fn func()) { s.fault = fn }

// Run executes fn while holding one of the scheduler's slots, blocking
// until a slot is free. fn must not call Run on the same scheduler (a task
// waiting for a slot while holding one can deadlock the pool). A panic out
// of fn (or the fault hook) releases the slot before propagating to the
// caller.
func (s *Scheduler) Run(fn func()) {
	s.RunLane(func(int) { fn() })
}

// RunLane is Run for tasks that want their worker identity: fn receives the
// index of the slot it occupies, in [0, Workers()). Execution tracing
// stamps this lane onto task spans so the exported timeline has one track
// per worker.
func (s *Scheduler) RunLane(fn func(lane int)) {
	lane := <-s.slots
	s.started.Inc()
	defer func() {
		s.finished.Inc()
		s.slots <- lane
	}()
	if s.fault != nil {
		s.fault()
	}
	fn(lane)
}
