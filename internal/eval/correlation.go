package eval

import (
	"fmt"
	"math"

	"adiv/internal/detector"
	"adiv/internal/seq"
)

// ResponseCorrelation returns the Pearson correlation of two trained
// detectors' response sequences over the same stream. It quantifies
// mimicry — the paper's observation that the neural network "appears to be
// as good as the Markov-based detector" becomes a measurable statement
// about their response streams. The detectors must share an extent so that
// responses at the same index judge the same elements.
func ResponseCorrelation(a, b detector.Detector, stream seq.Stream) (float64, error) {
	if a.Extent() != b.Extent() {
		return 0, fmt.Errorf("eval: correlating extents %d and %d", a.Extent(), b.Extent())
	}
	ra, err := a.Score(stream)
	if err != nil {
		return 0, fmt.Errorf("eval: scoring %s: %w", a.Name(), err)
	}
	rb, err := b.Score(stream)
	if err != nil {
		return 0, fmt.Errorf("eval: scoring %s: %w", b.Name(), err)
	}
	if len(ra) != len(rb) {
		return 0, fmt.Errorf("eval: response lengths %d and %d", len(ra), len(rb))
	}
	return pearson(ra, rb)
}

// pearson computes the sample Pearson correlation coefficient. Constant
// sequences have undefined correlation and are reported as an error.
func pearson(x, y []float64) (float64, error) {
	n := len(x)
	if n < 2 {
		return 0, fmt.Errorf("eval: correlation of %d samples", n)
	}
	var sumX, sumY float64
	for i := range x {
		sumX += x[i]
		sumY += y[i]
	}
	meanX, meanY := sumX/float64(n), sumY/float64(n)
	var cov, varX, varY float64
	for i := range x {
		dx, dy := x[i]-meanX, y[i]-meanY
		cov += dx * dy
		varX += dx * dx
		varY += dy * dy
	}
	if varX == 0 || varY == 0 {
		return 0, fmt.Errorf("eval: correlation with a constant response sequence")
	}
	r := cov / math.Sqrt(varX*varY)
	// Clamp floating-point overshoot.
	if r > 1 {
		r = 1
	}
	if r < -1 {
		r = -1
	}
	return r, nil
}
