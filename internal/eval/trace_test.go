package eval

import (
	"sync"
	"testing"

	"adiv/internal/checkpoint"
	"adiv/internal/obs"
	"adiv/internal/seq"
)

// tracedRegistry returns a registry with a tracer attached, plus the tracer.
func tracedRegistry() (*obs.Registry, *obs.Tracer) {
	reg := obs.New()
	tr := obs.NewTracer(1 << 12)
	tr.Instrument(reg)
	reg.SetTracer(tr)
	return reg, tr
}

// attrOf returns the value of one span attribute ("" when absent).
func attrOf(ev obs.SpanEvent, key string) string {
	for _, a := range ev.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// TestBuildMapCorpusTraces is the grid-tracing integration test: a traced
// build must emit one lane-stamped span per live cell and per row training,
// each carrying the (map, detector, window, size) attributes the timeline
// and family rollups key on.
func TestBuildMapCorpusTraces(t *testing.T) {
	reg, tr := tracedRegistry()
	const workers = 2
	opts := DefaultOptions()
	opts.Scheduler = NewScheduler(workers)
	opts.Scheduler.Instrument(reg)
	_, err := BuildMapCorpus("fake", gradedFactory(), seq.NewCorpus(make(seq.Stream, 100)),
		gradedPlacements(), 2, 8, opts, reg)
	if err != nil {
		t.Fatalf("BuildMapCorpus: %v", err)
	}

	byCat := map[string][]obs.SpanEvent{}
	for _, ev := range tr.Snapshot() {
		byCat[ev.Cat] = append(byCat[ev.Cat], ev)
	}
	const rows, cells = 7, 21 // windows 2-8, sizes {2,3,4}
	if got := len(byCat["train"]); got != rows {
		t.Errorf("train spans = %d, want %d", got, rows)
	}
	if got := len(byCat["cell"]); got != cells {
		t.Errorf("cell spans = %d, want %d", got, cells)
	}
	if got := len(byCat["map"]); got != 1 {
		t.Errorf("map spans = %d, want 1", got)
	}
	// Scoring inside each cell is traced separately (detector.Observed).
	if got := len(byCat["score"]); got != cells {
		t.Errorf("score spans = %d, want %d", got, cells)
	}
	for _, ev := range append(byCat["train"], byCat["cell"]...) {
		if ev.Lane < 0 || ev.Lane >= workers {
			t.Errorf("%s span %s lane = %d, want a worker lane in [0,%d)", ev.Cat, ev.Name, ev.Lane, workers)
		}
		if attrOf(ev, "detector") != "fake" || attrOf(ev, "map") != "fake" {
			t.Errorf("%s span attrs = %v, missing detector/map", ev.Cat, ev.Attrs)
		}
		if attrOf(ev, "window") == "" {
			t.Errorf("%s span missing window attr: %v", ev.Cat, ev.Attrs)
		}
	}
	for _, ev := range byCat["cell"] {
		if attrOf(ev, "size") == "" {
			t.Errorf("cell span missing size attr: %v", ev.Attrs)
		}
	}
	if got := reg.Counter("trace/spans").Value(); got == 0 {
		t.Error("trace/spans counter never incremented")
	}
	if dropped := reg.Counter("trace/dropped").Value(); dropped != 0 {
		t.Errorf("trace/dropped = %d on an under-capacity run", dropped)
	}
}

// TestBuildMapResumeTracesReplay pins the replay category: on a fully
// journaled resume every cell appears on the timeline as a "replay" span —
// and stays OUT of the cell/<name> Timing, whose rate must keep measuring
// real evaluation work only.
func TestBuildMapResumeTracesReplay(t *testing.T) {
	dir := t.TempDir()
	j, err := checkpoint.Open(dir, evalTestFingerprint(), false)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Checkpoint = j
	if _, err := BuildMapCorpus("fake", gradedFactory(), seq.NewCorpus(make(seq.Stream, 100)),
		gradedPlacements(), 2, 8, opts, nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := checkpoint.Open(dir, evalTestFingerprint(), true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	reg, tr := tracedRegistry()
	resumed := DefaultOptions()
	resumed.Checkpoint = j2
	if _, err := BuildMapCorpus("fake", gradedFactory(), seq.NewCorpus(make(seq.Stream, 100)),
		gradedPlacements(), 2, 8, resumed, reg); err != nil {
		t.Fatal(err)
	}

	replays, lives := 0, 0
	for _, ev := range tr.Snapshot() {
		switch ev.Cat {
		case "replay":
			replays++
			if attrOf(ev, "size") == "" || attrOf(ev, "window") == "" {
				t.Errorf("replay span missing coordinates: %v", ev.Attrs)
			}
		case "cell":
			lives++
		}
	}
	if replays != 21 || lives != 0 {
		t.Errorf("replay/cell spans = %d/%d, want 21/0 on a fully journaled resume", replays, lives)
	}
	if count, _, _, _ := reg.Timing("cell/fake").Stats(); count != 0 {
		t.Errorf("cell/fake Timing recorded %d replays; replays must be trace-only", count)
	}
}

// TestSchedulerRunLane pins the lane contract: every task sees a lane in
// [0, Workers()), no two concurrently running tasks share one, and lanes are
// reused once released.
func TestSchedulerRunLane(t *testing.T) {
	const workers = 3
	sched := NewScheduler(workers)
	inUse := make([]bool, workers)
	seen := make([]int, 0, 60)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 60; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sched.RunLane(func(lane int) {
				mu.Lock()
				if lane < 0 || lane >= workers {
					t.Errorf("lane %d out of [0,%d)", lane, workers)
				} else if inUse[lane] {
					t.Errorf("lane %d handed to two concurrent tasks", lane)
				} else {
					inUse[lane] = true
				}
				seen = append(seen, lane)
				mu.Unlock()
				mu.Lock()
				if lane >= 0 && lane < workers {
					inUse[lane] = false
				}
				mu.Unlock()
			})
		}()
	}
	wg.Wait()
	if len(seen) != 60 {
		t.Fatalf("ran %d tasks, want 60", len(seen))
	}
	distinct := map[int]bool{}
	for _, lane := range seen {
		distinct[lane] = true
	}
	if len(distinct) != workers {
		t.Errorf("lanes used = %v, want all %d reused across tasks", distinct, workers)
	}
}
