package eval

import (
	"encoding/json"
	"strings"
	"testing"
)

func jsonSampleMap(t *testing.T) *Map {
	t.Helper()
	m, err := NewMap("stide", 2, 3, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for size := 2; size <= 3; size++ {
		for dw := 2; dw <= 3; dw++ {
			o := Blind
			resp := 0.0
			if dw >= size {
				o, resp = Capable, 1
			}
			m.Set(Assessment{Detector: "stide", AnomalySize: size, Window: dw, Outcome: o, MaxResponse: resp})
		}
	}
	return m
}

func TestMapJSONRoundTrip(t *testing.T) {
	orig := jsonSampleMap(t)
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"detector":"stide"`) {
		t.Errorf("serialized form missing detector: %s", data)
	}
	var back Map
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Detector != orig.Detector || back.MinSize != orig.MinSize || back.MaxWindow != orig.MaxWindow {
		t.Errorf("metadata changed: %+v", back)
	}
	for size := 2; size <= 3; size++ {
		for dw := 2; dw <= 3; dw++ {
			if back.Outcome(size, dw) != orig.Outcome(size, dw) {
				t.Errorf("cell (%d,%d): %v vs %v", size, dw, back.Outcome(size, dw), orig.Outcome(size, dw))
			}
			if back.At(size, dw).MaxResponse != orig.At(size, dw).MaxResponse {
				t.Errorf("cell (%d,%d) response changed", size, dw)
			}
		}
	}
}

func TestMapJSONRejectsCorrupt(t *testing.T) {
	var m Map
	for _, bad := range []string{
		`not json`,
		`{"detector":"x","minSize":0,"maxSize":3,"minWindow":2,"maxWindow":3}`,
		`{"detector":"x","minSize":2,"maxSize":3,"minWindow":2,"maxWindow":3,"cells":[{"anomalySize":2,"window":2,"outcome":"nosuch"}]}`,
	} {
		if err := json.Unmarshal([]byte(bad), &m); err == nil {
			t.Errorf("corrupt map %q accepted", bad)
		}
	}
}

func TestParseOutcomeRoundTrip(t *testing.T) {
	for _, o := range []Outcome{Blind, Weak, Capable, Undefined} {
		got, err := parseOutcome(o.String())
		if err != nil || got != o {
			t.Errorf("parseOutcome(%q) = %v, %v", o.String(), got, err)
		}
	}
}
