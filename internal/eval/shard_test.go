package eval

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"adiv/internal/checkpoint"
	"adiv/internal/detector"
	"adiv/internal/obs"
	"adiv/internal/seq"
)

// TestBuildMapShardPartition is the sharding property test: for several shard
// counts, every shard-filtered build records exactly the cells ShardOf assigns
// to it — no more, no fewer — and the shards' union is cell-for-cell (bit for
// bit in every response) the unsharded map. Disjointness follows: each cell
// appears in exactly one shard because ShardOf is a function.
func TestBuildMapShardPartition(t *testing.T) {
	serial := DefaultOptions()
	serial.Workers = 1
	want := buildGraded(t, serial).Cells()

	for _, count := range []int{1, 2, 3, 5} {
		t.Run(fmt.Sprintf("count=%d", count), func(t *testing.T) {
			union := make([]Assessment, 0, len(want))
			for index := 1; index <= count; index++ {
				opts := DefaultOptions()
				opts.Workers = 2
				opts.ShardIndex, opts.ShardCount = index, count
				cells := buildGraded(t, opts).Cells()
				for _, a := range cells {
					// ShardOf keys on the checkpoint key, which defaults to
					// the map name.
					if got := checkpoint.ShardOf("fake", a.Window, a.AnomalySize, count); got != index-1 {
						t.Errorf("shard %d/%d recorded cell (window %d, size %d) owned by shard %d",
							index, count, a.Window, a.AnomalySize, got+1)
					}
				}
				union = append(union, cells...)
			}
			sort.Slice(union, func(i, j int) bool {
				if union[i].AnomalySize != union[j].AnomalySize {
					return union[i].AnomalySize < union[j].AnomalySize
				}
				return union[i].Window < union[j].Window
			})
			requireSameCells(t, union, want)
		})
	}
}

// TestBuildMapShardJournalMerge is the end-to-end distributed-run property at
// the eval layer: three sharded builds journal into their own shard
// directories under shard-qualified fingerprints, Merge assembles one journal
// under the base fingerprint, and a final unsharded build over the merged
// journal replays every cell — zero new evaluations — into a map identical to
// the serial reference.
func TestBuildMapShardJournalMerge(t *testing.T) {
	serial := DefaultOptions()
	serial.Workers = 1
	want := buildGraded(t, serial).Cells()

	const count = 3
	dir := t.TempDir()
	var srcs []string
	for index := 1; index <= count; index++ {
		shardDir := filepath.Join(dir, checkpoint.ShardDirName(index, count))
		j, err := checkpoint.Open(shardDir, checkpoint.WithShard(evalTestFingerprint(), index, count), false)
		if err != nil {
			t.Fatalf("Open shard %d: %v", index, err)
		}
		opts := DefaultOptions()
		opts.Workers = 2
		opts.ShardIndex, opts.ShardCount = index, count
		opts.Checkpoint = j
		buildGraded(t, opts)
		if err := j.Close(); err != nil {
			t.Fatalf("Close shard %d: %v", index, err)
		}
		srcs = append(srcs, filepath.Join(shardDir, checkpoint.JournalFile))
	}

	dst := filepath.Join(dir, checkpoint.JournalFile)
	stats, err := checkpoint.Merge(dst, srcs)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if stats.Cells != len(want) {
		t.Fatalf("merged %d cells, want %d", stats.Cells, len(want))
	}
	if stats.Duplicates != 0 || stats.Superseded != 0 || stats.TornBytes != 0 {
		t.Fatalf("clean shard run reported duplicates=%d superseded=%d torn=%d",
			stats.Duplicates, stats.Superseded, stats.TornBytes)
	}

	merged, err := checkpoint.Open(dir, evalTestFingerprint(), true)
	if err != nil {
		t.Fatalf("Open merged: %v", err)
	}
	defer merged.Close()
	if merged.Resumed() != len(want) {
		t.Fatalf("merged journal resumed %d cells, want %d", merged.Resumed(), len(want))
	}
	opts := DefaultOptions()
	opts.Workers = 4
	opts.Checkpoint = merged
	requireSameCells(t, buildGraded(t, opts).Cells(), want)
	if merged.Cells() != len(want) {
		t.Fatalf("replaying a complete merged journal changed it: %d cells, want %d", merged.Cells(), len(want))
	}
}

// TestShardOptionsValidate pins the shard-identity envelope: 1-based index,
// index within count, and no index without a count.
func TestShardOptionsValidate(t *testing.T) {
	for _, tc := range []struct{ index, count int }{
		{-1, 3}, {1, -3}, {2, 0}, {0, 3}, {4, 3},
	} {
		opts := DefaultOptions()
		opts.ShardIndex, opts.ShardCount = tc.index, tc.count
		if err := opts.Validate(); err == nil {
			t.Errorf("Validate accepted shard %d/%d", tc.index, tc.count)
		}
	}
	opts := DefaultOptions()
	opts.ShardIndex, opts.ShardCount = 2, 3
	if err := opts.Validate(); err != nil {
		t.Errorf("Validate rejected shard 2/3: %v", err)
	}
}

// TestCellPanicStackInEvent asserts a panicking detector surfaces the
// goroutine stack of the panic site in the cell.fail event — the forensics a
// retried-then-failed cell otherwise discards.
func TestCellPanicStackInEvent(t *testing.T) {
	factory := func(window int) (detector.Detector, error) {
		return &fakeDetector{
			name: "boomer", window: window, extent: window,
			scoreFunc: func(test seq.Stream) []float64 {
				panic("synthetic cell explosion")
			},
		}, nil
	}

	var buf bytes.Buffer
	reg := obs.New()
	reg.SetEventLog(obs.NewEventLog(&buf))

	opts := DefaultOptions()
	opts.Workers = 1
	opts.CellRetries = 0
	_, err := BuildMapCorpus("boomer", factory, seq.NewCorpus(make(seq.Stream, 100)),
		gradedPlacements(), 2, 3, opts, reg)
	if err == nil {
		t.Fatal("BuildMapCorpus succeeded with a panicking detector")
	}
	if !strings.Contains(err.Error(), "panic: synthetic cell explosion") {
		t.Fatalf("error does not surface the panic value: %v", err)
	}
	log := buf.String()
	if !strings.Contains(log, "cell.fail") {
		t.Fatalf("no cell.fail event emitted:\n%s", log)
	}
	// The stack must point at the panic site, not the recovery site.
	if !strings.Contains(log, "goroutine") || !strings.Contains(log, "scoreFunc") && !strings.Contains(log, "shard_test") {
		t.Fatalf("cell.fail event carries no usable stack:\n%s", log)
	}
}
