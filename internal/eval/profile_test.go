package eval

import (
	"math"
	"testing"

	"adiv/internal/seq"
)

func TestProfileResponses(t *testing.T) {
	det := &fakeDetector{name: "fake", window: 2, extent: 2, trained: true,
		scoreFunc: func(test seq.Stream) []float64 {
			return []float64{0, 0, 0.25, 0.5, 0.75, 1, 1, 1}
		}}
	p, err := ProfileResponses(det, make(seq.Stream, 9), 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Detector != "fake" || p.Window != 2 {
		t.Errorf("metadata %+v", p)
	}
	if p.Summary.N != 8 {
		t.Errorf("N = %d", p.Summary.N)
	}
	if p.AtZero != 2 || p.AtOne != 3 {
		t.Errorf("AtZero=%d AtOne=%d, want 2 and 3", p.AtZero, p.AtOne)
	}
	// Bins of width 0.25: [0,.25)=2, [.25,.5)=1, [.5,.75)=1, [.75,1]=4.
	want := []int{2, 1, 1, 4}
	for i := range want {
		if p.Histogram[i] != want[i] {
			t.Errorf("histogram %v, want %v", p.Histogram, want)
			break
		}
	}
	if mean := p.Summary.Mean; math.Abs(mean-0.5625) > 1e-12 {
		t.Errorf("mean %v", mean)
	}
}

func TestProfileAlarmFraction(t *testing.T) {
	det := &fakeDetector{name: "fake", window: 2, extent: 2, trained: true,
		scoreFunc: func(test seq.Stream) []float64 {
			return []float64{0, 0.3, 0.6, 0.9}
		}}
	p, err := ProfileResponses(det, make(seq.Stream, 5), 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.AlarmFraction(0.5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("AlarmFraction(0.5) = %v, want 0.5", got)
	}
	if got := p.AlarmFraction(0); got != 1 {
		t.Errorf("AlarmFraction(0) = %v, want 1", got)
	}
	if got := p.AlarmFraction(1); got != 0 {
		t.Errorf("AlarmFraction(1) = %v, want 0 (no responses at 1)", got)
	}
}

func TestProfileValidation(t *testing.T) {
	det := &fakeDetector{name: "fake", window: 2, extent: 2, trained: true, scoreFunc: constantScores(0)}
	if _, err := ProfileResponses(det, make(seq.Stream, 5), 1); err == nil {
		t.Errorf("1 bin accepted")
	}
	untrained := &fakeDetector{name: "fake", window: 2, extent: 2, scoreFunc: constantScores(0)}
	if _, err := ProfileResponses(untrained, make(seq.Stream, 5), 4); err == nil {
		t.Errorf("untrained detector accepted")
	}
}

func TestProfileEmptyStreamSummary(t *testing.T) {
	var p Profile
	if p.AlarmFraction(0.5) != 0 {
		t.Errorf("empty profile alarm fraction nonzero")
	}
}
