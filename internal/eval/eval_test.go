package eval

import (
	"errors"
	"testing"

	"adiv/internal/detector"
	"adiv/internal/inject"
	"adiv/internal/seq"
)

// fakeDetector returns canned responses: response r at positions covering
// the anomaly region per a fixed rule, 0 elsewhere. It lets the harness be
// tested independently of real detectors.
type fakeDetector struct {
	name      string
	window    int
	extent    int
	trained   bool
	trainErr  error
	scoreFunc func(test seq.Stream) []float64
}

func (f *fakeDetector) Name() string { return f.name }
func (f *fakeDetector) Window() int  { return f.window }
func (f *fakeDetector) Extent() int  { return f.extent }
func (f *fakeDetector) Train(seq.Stream) error {
	if f.trainErr != nil {
		return f.trainErr
	}
	f.trained = true
	return nil
}
func (f *fakeDetector) Score(test seq.Stream) ([]float64, error) {
	if err := detector.CheckScorable(f.trained, f.extent, test); err != nil {
		return nil, err
	}
	return f.scoreFunc(test), nil
}

var _ detector.Detector = (*fakeDetector)(nil)

// constantScores returns n-extent+1 responses all equal to v.
func constantScores(v float64) func(test seq.Stream) []float64 {
	return func(test seq.Stream) []float64 {
		panicIf(len(test) == 0)
		return fill(make([]float64, len(test)), v)
	}
}

func fill(xs []float64, v float64) []float64 {
	for i := range xs {
		xs[i] = v
	}
	return xs
}

func panicIf(b bool) {
	if b {
		panic("bad fake")
	}
}

func placementOf(streamLen, start, anomalyLen int) inject.Placement {
	return inject.Placement{
		Stream:     make(seq.Stream, streamLen),
		Start:      start,
		AnomalyLen: anomalyLen,
	}
}

func TestOutcomeString(t *testing.T) {
	tests := []struct {
		o    Outcome
		want string
	}{
		{Blind, "blind"},
		{Weak, "weak"},
		{Capable, "capable"},
		{Undefined, "undefined"},
		{Outcome(99), "undefined"},
	}
	for _, tt := range tests {
		if got := tt.o.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.o, got, tt.want)
		}
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Errorf("DefaultOptions invalid: %v", err)
	}
	bad := []Options{
		{CapableAt: 0, BlindBelow: 0},
		{CapableAt: 1.5, BlindBelow: 0},
		{CapableAt: 0.5, BlindBelow: 0.6},
		{CapableAt: 0.5, BlindBelow: -0.1},
	}
	for _, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", o)
		}
	}
}

func TestClassify(t *testing.T) {
	opts := DefaultOptions()
	tests := []struct {
		resp float64
		want Outcome
	}{
		{0, Blind},
		{1e-12, Blind},
		{0.5, Weak},
		{1 - 1e-6, Weak},
		{1, Capable},
		{1 - 1e-12, Capable}, // within the capable tolerance
	}
	for _, tt := range tests {
		if got := Classify(tt.resp, opts); got != tt.want {
			t.Errorf("Classify(%v) = %v, want %v", tt.resp, got, tt.want)
		}
	}
}

func TestSpanMax(t *testing.T) {
	p := placementOf(20, 10, 3)
	// Extent 4: span = window starts [7, 12].
	responses := make([]float64, 17)
	responses[6] = 1.0  // outside span
	responses[7] = 0.4  // inside
	responses[12] = 0.8 // inside (last)
	responses[13] = 1.0 // outside
	maxResp, ok := SpanMax(p, 4, responses)
	if !ok {
		t.Fatal("no span")
	}
	if maxResp != 0.8 {
		t.Errorf("SpanMax = %v, want 0.8", maxResp)
	}
}

func TestSpanMaxTruncatedResponses(t *testing.T) {
	p := placementOf(20, 18, 2)
	// Only 10 responses though the span extends to index 19: the clip must
	// not read out of range.
	responses := make([]float64, 10)
	if _, ok := SpanMax(p, 2, responses); ok {
		t.Errorf("SpanMax reported ok with responses ending before the span")
	}
}

func TestAssess(t *testing.T) {
	p := placementOf(30, 15, 2)
	det := &fakeDetector{name: "fake", window: 3, extent: 3, scoreFunc: constantScores(0.5)}
	if err := det.Train(nil); err != nil {
		t.Fatal(err)
	}
	a, err := Assess(det, p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.Outcome != Weak || a.MaxResponse != 0.5 || a.AnomalySize != 2 || a.Window != 3 {
		t.Errorf("assessment %+v", a)
	}
}

func TestAssessUntrained(t *testing.T) {
	p := placementOf(30, 15, 2)
	det := &fakeDetector{name: "fake", window: 3, extent: 3, scoreFunc: constantScores(0)}
	if _, err := Assess(det, p, DefaultOptions()); err == nil {
		t.Errorf("Assess with untrained detector succeeded")
	}
}

func TestAssessInvalidOptions(t *testing.T) {
	p := placementOf(30, 15, 2)
	det := &fakeDetector{name: "fake", window: 3, extent: 3, trained: true, scoreFunc: constantScores(0)}
	if _, err := Assess(det, p, Options{CapableAt: 2}); err == nil {
		t.Errorf("Assess with invalid options succeeded")
	}
}

func TestBuildMap(t *testing.T) {
	placements := map[int]inject.Placement{
		2: placementOf(50, 25, 2),
		3: placementOf(50, 25, 3),
	}
	// The fake family detects iff window >= anomaly size, mirroring Stide.
	factory := func(window int) (detector.Detector, error) {
		return &fakeDetector{
			name:   "fake",
			window: window,
			extent: window,
			scoreFunc: func(test seq.Stream) []float64 {
				n := seq.NumWindows(len(test), window)
				out := make([]float64, n)
				// Mark the window at the anomaly start (index 25) when it
				// fits: windows starting at 25 cover [25, 25+window).
				for size := 2; size <= 3; size++ {
					if window >= size && len(test) == 50 {
						out[25] = 1
					}
				}
				return out
			},
		}, nil
	}
	m, err := BuildMap("fake", factory, make(seq.Stream, 100), placements, 2, 5, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if m.MinSize != 2 || m.MaxSize != 3 || m.MinWindow != 2 || m.MaxWindow != 5 {
		t.Errorf("grid %+v", m)
	}
	if got := len(m.Cells()); got != 8 {
		t.Errorf("%d cells, want 8", got)
	}
	for _, a := range m.Cells() {
		want := Capable // fake marks position 25 for every size once window >= 2
		if a.Outcome != want {
			t.Errorf("cell (%d,%d) = %v", a.AnomalySize, a.Window, a.Outcome)
		}
	}
}

func TestBuildMapPropagatesErrors(t *testing.T) {
	placements := map[int]inject.Placement{2: placementOf(50, 25, 2)}
	factory := func(window int) (detector.Detector, error) {
		if window == 4 {
			return nil, errors.New("boom")
		}
		return &fakeDetector{name: "fake", window: window, extent: window, scoreFunc: constantScores(0)}, nil
	}
	if _, err := BuildMap("fake", factory, make(seq.Stream, 10), placements, 2, 5, DefaultOptions()); err == nil {
		t.Errorf("BuildMap swallowed a factory error")
	}

	trainErr := func(window int) (detector.Detector, error) {
		return &fakeDetector{name: "fake", window: window, extent: window,
			trainErr: errors.New("train boom"), scoreFunc: constantScores(0)}, nil
	}
	if _, err := BuildMap("fake", trainErr, make(seq.Stream, 10), placements, 2, 3, DefaultOptions()); err == nil {
		t.Errorf("BuildMap swallowed a training error")
	}

	if _, err := BuildMap("fake", factory, nil, nil, 2, 3, DefaultOptions()); err == nil {
		t.Errorf("BuildMap with no placements succeeded")
	}
}

func TestMapAtUndefined(t *testing.T) {
	m, err := NewMap("x", 2, 9, 2, 15)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Outcome(1, 2); got != Undefined {
		t.Errorf("unrecorded cell outcome %v", got)
	}
	a := m.At(4, 4)
	if a.Outcome != Undefined || a.AnomalySize != 4 || a.Window != 4 {
		t.Errorf("At on empty map: %+v", a)
	}
}

func TestNewMapValidation(t *testing.T) {
	for _, args := range [][4]int{{0, 5, 2, 3}, {3, 2, 2, 3}, {2, 3, 0, 3}, {2, 3, 5, 4}} {
		if _, err := NewMap("x", args[0], args[1], args[2], args[3]); err == nil {
			t.Errorf("NewMap(%v) succeeded", args)
		}
	}
}

func TestCoversAtLeast(t *testing.T) {
	a, err := NewMap("a", 2, 3, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMap("b", 2, 3, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	set := func(m *Map, size, window int, o Outcome) {
		m.Set(Assessment{Detector: m.Detector, AnomalySize: size, Window: window, Outcome: o})
	}
	set(a, 2, 2, Capable)
	set(a, 2, 3, Capable)
	set(b, 2, 2, Capable)
	set(b, 2, 3, Weak)
	if !a.CoversAtLeast(b) {
		t.Errorf("a should cover b")
	}
	if b.CoversAtLeast(a) {
		t.Errorf("b should not cover a")
	}
	if got := a.CountOutcome(Capable); got != 2 {
		t.Errorf("CountOutcome = %d", got)
	}
	if got := a.DetectionRegion(); len(got) != 2 {
		t.Errorf("DetectionRegion = %v", got)
	}
}
