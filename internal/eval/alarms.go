package eval

import (
	"fmt"
	"sort"

	"adiv/internal/detector"
	"adiv/internal/inject"
)

// Alarm is one thresholded detector response.
type Alarm struct {
	// Position is the response index; the alarmed elements are
	// [Position, Position+extent).
	Position int
	// Response is the raw detector response that crossed the threshold.
	Response float64
}

// Alarms thresholds a response sequence: every response >= threshold raises
// an alarm at its position.
func Alarms(responses []float64, threshold float64) []Alarm {
	var out []Alarm
	for i, r := range responses {
		if r >= threshold {
			out = append(out, Alarm{Position: i, Response: r})
		}
	}
	return out
}

// AlarmStats summarizes thresholded detector output against ground truth:
// alarms inside the incident span are (candidate) hits, alarms outside are
// false alarms, and a span with no alarm at all is a miss.
type AlarmStats struct {
	// Detector, Window, Threshold identify the deployment.
	Detector  string
	Window    int
	Threshold float64
	// Hit reports that at least one alarm fell inside the incident span.
	Hit bool
	// SpanAlarms counts alarms inside the incident span.
	SpanAlarms int
	// FalseAlarms counts alarms outside the incident span.
	FalseAlarms int
	// Positions is the number of scored positions outside the span, the
	// denominator of FalseAlarmRate.
	Positions int
}

// FalseAlarmRate returns false alarms per scored out-of-span position.
func (s AlarmStats) FalseAlarmRate() float64 {
	if s.Positions == 0 {
		return 0
	}
	return float64(s.FalseAlarms) / float64(s.Positions)
}

// AssessAlarms deploys a trained detector on a placement's stream at a
// detection threshold and tallies hits and false alarms. Unlike Assess,
// which implements the paper's capability charting, this implements the
// conventional hit/miss/false-alarm accounting used by the Section 7
// combination experiments.
func AssessAlarms(det detector.Detector, p inject.Placement, threshold float64) (AlarmStats, error) {
	if threshold <= 0 || threshold > 1 {
		return AlarmStats{}, fmt.Errorf("eval: detection threshold %v outside (0,1]", threshold)
	}
	responses, err := det.Score(p.Stream)
	if err != nil {
		return AlarmStats{}, fmt.Errorf("eval: scoring with %s(DW=%d): %w", det.Name(), det.Window(), err)
	}
	lo, hi, ok := p.IncidentSpan(det.Extent())
	if !ok {
		return AlarmStats{}, fmt.Errorf("eval: incident span empty for %s(DW=%d)", det.Name(), det.Window())
	}
	if hi >= len(responses) {
		hi = len(responses) - 1
	}
	stats := AlarmStats{
		Detector:  det.Name(),
		Window:    det.Window(),
		Threshold: threshold,
		Positions: len(responses) - (hi - lo + 1),
	}
	for _, a := range Alarms(responses, threshold) {
		if a.Position >= lo && a.Position <= hi {
			stats.SpanAlarms++
		} else {
			stats.FalseAlarms++
		}
	}
	stats.Hit = stats.SpanAlarms > 0
	return stats, nil
}

// MultiAlarmStats tallies thresholded output against a multi-anomaly
// stream: per-event hits and out-of-span false alarms.
type MultiAlarmStats struct {
	// Detector, Window, Threshold identify the deployment.
	Detector  string
	Window    int
	Threshold float64
	// Hits counts events with at least one in-span alarm; Events is the
	// total injected.
	Hits, Events int
	// FalseAlarms counts alarms touching no event; Positions is the number
	// of scored positions outside every span.
	FalseAlarms, Positions int
}

// HitRate returns the fraction of events hit.
func (s MultiAlarmStats) HitRate() float64 {
	if s.Events == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Events)
}

// FalseAlarmRate returns false alarms per out-of-span position.
func (s MultiAlarmStats) FalseAlarmRate() float64 {
	if s.Positions == 0 {
		return 0
	}
	return float64(s.FalseAlarms) / float64(s.Positions)
}

// AssessMultiAlarms deploys a trained detector on a multi-anomaly stream
// at a detection threshold and tallies per-event hits and false alarms.
func AssessMultiAlarms(det detector.Detector, mp inject.MultiPlacement, threshold float64) (MultiAlarmStats, error) {
	if threshold <= 0 || threshold > 1 {
		return MultiAlarmStats{}, fmt.Errorf("eval: detection threshold %v outside (0,1]", threshold)
	}
	responses, err := det.Score(mp.Stream)
	if err != nil {
		return MultiAlarmStats{}, fmt.Errorf("eval: scoring with %s(DW=%d): %w", det.Name(), det.Window(), err)
	}
	extent := det.Extent()
	stats := MultiAlarmStats{
		Detector:  det.Name(),
		Window:    det.Window(),
		Threshold: threshold,
		Events:    len(mp.Events),
	}
	hitEvent := make([]bool, len(mp.Events))
	for pos, r := range responses {
		inSpan := mp.InSpan(pos, extent)
		if !inSpan {
			stats.Positions++
		}
		if r < threshold {
			continue
		}
		if !inSpan {
			stats.FalseAlarms++
			continue
		}
		for i, e := range mp.Events {
			if pos+extent > e.Start && pos < e.Start+e.Len {
				hitEvent[i] = true
			}
		}
	}
	for _, h := range hitEvent {
		if h {
			stats.Hits++
		}
	}
	return stats, nil
}

// OperatingPoint is one point of a threshold sweep.
type OperatingPoint struct {
	Threshold      float64
	Hit            bool
	FalseAlarmRate float64
}

// Sweep evaluates the detector on the placement across the given detection
// thresholds, returning one operating point per threshold, sorted by
// threshold. It reproduces the paper's observation that detector coverage
// and false-alarm behaviour are heavily dependent on parameter values.
func Sweep(det detector.Detector, p inject.Placement, thresholds []float64) ([]OperatingPoint, error) {
	ts := append([]float64(nil), thresholds...)
	sort.Float64s(ts)
	out := make([]OperatingPoint, 0, len(ts))
	for _, t := range ts {
		stats, err := AssessAlarms(det, p, t)
		if err != nil {
			return nil, err
		}
		out = append(out, OperatingPoint{
			Threshold:      t,
			Hit:            stats.Hit,
			FalseAlarmRate: stats.FalseAlarmRate(),
		})
	}
	return out, nil
}
