package eval

import (
	"math"
	"testing"

	"adiv/internal/inject"
	"adiv/internal/seq"
)

// rocDetector responds 1 inside each trial's anomaly region (trials are
// distinguished by stream length) and 0.6 at one fixed out-of-span
// position, so lowering the threshold below 0.6 buys false alarms without
// changing the hit rate.
func rocDetector() *fakeDetector {
	return &fakeDetector{name: "fake", window: 3, extent: 3, trained: true,
		scoreFunc: func(test seq.Stream) []float64 {
			out := make([]float64, len(test)-2)
			out[5] = 0.6
			if len(test) == 60 {
				out[20] = 1
			} else {
				out[40] = 1
			}
			return out
		}}
}

func rocPlacements() []inject.Placement {
	return []inject.Placement{placementOf(60, 20, 2), placementOf(61, 40, 2)}
}

func TestROCCurve(t *testing.T) {
	placements := rocPlacements()
	curve, err := ROC(rocDetector(), placements, []float64{1, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if curve.Detector != "fake" || curve.Window != 3 {
		t.Errorf("curve metadata %+v", curve)
	}
	if len(curve.Points) != 2 {
		t.Fatalf("%d points, want 2", len(curve.Points))
	}
	// Ascending threshold order.
	if curve.Points[0].Threshold != 0.5 || curve.Points[1].Threshold != 1 {
		t.Errorf("thresholds %v", curve.Points)
	}
	// Both trials hit at both thresholds (maximal in-span response).
	for _, pt := range curve.Points {
		if pt.HitRate != 1 {
			t.Errorf("threshold %v: hit rate %v, want 1", pt.Threshold, pt.HitRate)
		}
	}
	// At 0.5 the out-of-span 0.6 response false-alarms; at 1 it does not.
	if curve.Points[0].FalseAlarmRate <= 0 {
		t.Errorf("low threshold produced no false alarms")
	}
	if curve.Points[1].FalseAlarmRate != 0 {
		t.Errorf("strict threshold false-alarm rate %v, want 0", curve.Points[1].FalseAlarmRate)
	}
}

func TestROCErrors(t *testing.T) {
	placements := rocPlacements()[:1]
	if _, err := ROC(rocDetector(), nil, []float64{1}); err == nil {
		t.Errorf("no trials accepted")
	}
	if _, err := ROC(rocDetector(), placements, nil); err == nil {
		t.Errorf("no thresholds accepted")
	}
	if _, err := ROC(rocDetector(), placements, []float64{2}); err == nil {
		t.Errorf("invalid threshold accepted")
	}
}

func TestROCMulti(t *testing.T) {
	mp := multiPlacementOf() // events at 20(len 3) and 60(len 2)
	det := &fakeDetector{name: "fake", window: 3, extent: 3, trained: true,
		scoreFunc: func(test seq.Stream) []float64 {
			out := make([]float64, len(test)-2)
			out[21] = 1   // hits event 0 at every threshold
			out[59] = 0.7 // hits event 1 only below 0.7
			out[5] = 0.7  // false alarm at thresholds below 0.7
			return out
		}}
	curve, err := ROCMulti(det, mp, []float64{1, 0.65})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Points) != 2 {
		t.Fatalf("%d points", len(curve.Points))
	}
	low, high := curve.Points[0], curve.Points[1]
	if low.Threshold != 0.65 || high.Threshold != 1 {
		t.Fatalf("thresholds %v", curve.Points)
	}
	if high.HitRate != 0.5 || high.FalseAlarmRate != 0 {
		t.Errorf("strict point %+v, want hit 0.5, FA 0", high)
	}
	if low.HitRate != 1 || low.FalseAlarmRate == 0 {
		t.Errorf("loose point %+v, want hit 1 with false alarms", low)
	}

	if _, err := ROCMulti(det, inject.MultiPlacement{Stream: make(seq.Stream, 10)}, []float64{1}); err == nil {
		t.Errorf("no events accepted")
	}
	if _, err := ROCMulti(det, mp, nil); err == nil {
		t.Errorf("no thresholds accepted")
	}
}

func TestROCAUC(t *testing.T) {
	placements := rocPlacements()
	curve, err := ROC(rocDetector(), placements, []float64{1, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	auc, err := curve.AUC()
	if err != nil {
		t.Fatal(err)
	}
	// Hit rate 1 already at false-alarm rate 0: the curve is the perfect
	// step and the anchored area is 1.
	if math.Abs(auc-1) > 1e-9 {
		t.Errorf("AUC = %v, want 1", auc)
	}

	var empty ROCCurve
	if _, err := empty.AUC(); err == nil {
		t.Errorf("AUC of empty curve succeeded")
	}
}
