package eval

// The live-introspection round trip: a status server scraping a grid run
// while BuildMapCorpus executes. This lives in package eval (not obs)
// because obs cannot import the grid builder it observes.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"adiv/internal/detector"
	"adiv/internal/inject"
	"adiv/internal/obs"
	"adiv/internal/seq"
)

// slowFakeFactory builds fake detectors whose Score sleeps briefly, so a
// quick grid run stays in flight long enough to be scraped mid-run.
func slowFakeFactory(delay time.Duration) Factory {
	return func(window int) (detector.Detector, error) {
		return &fakeDetector{
			name:   "fake",
			window: window,
			extent: window,
			scoreFunc: func(test seq.Stream) []float64 {
				time.Sleep(delay)
				return make([]float64, seq.NumWindows(len(test), window))
			},
		}, nil
	}
}

// TestStatusServerDuringBuildMapCorpus scrapes /runz and /healthz while a
// small grid run executes at -j 4 and asserts the reported cells-done count
// only ever grows, reaching cells_total once the builder returns.
func TestStatusServerDuringBuildMapCorpus(t *testing.T) {
	reg := obs.New()
	prog := obs.NewProgress()
	prog.AttachEvents(reg)
	prog.SetPhase("grid")
	ts := httptest.NewServer(obs.NewHandler(obs.Endpoints{Registry: reg, Progress: prog}))
	defer ts.Close()

	scrape := func(path string) (int, []byte) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	placements := map[int]inject.Placement{
		2: placementOf(60, 30, 2),
		3: placementOf(60, 30, 3),
	}
	const minWindow, maxWindow = 2, 7
	wantCells := len(placements) * (maxWindow - minWindow + 1)

	opts := DefaultOptions()
	sched := NewScheduler(4)
	sched.Instrument(reg)
	opts.Scheduler = sched
	opts.Progress = prog

	buildDone := make(chan error, 1)
	go func() {
		tc := seq.NewCorpus(make(seq.Stream, 100))
		_, err := BuildMapCorpus("fake", slowFakeFactory(2*time.Millisecond), tc,
			placements, minWindow, maxWindow, opts, reg)
		buildDone <- err
	}()

	var last obs.RunStatus
	prev := -1
	sawInFlight := false
	deadline := time.After(30 * time.Second)
	for done := false; !done; {
		select {
		case err := <-buildDone:
			if err != nil {
				t.Fatalf("BuildMapCorpus: %v", err)
			}
			done = true
		case <-deadline:
			t.Fatal("grid run did not finish")
		default:
			code, body := scrape("/healthz")
			if code != http.StatusOK {
				t.Fatalf("/healthz mid-run = %d", code)
			}
			code, body = scrape("/runz")
			if code != http.StatusOK {
				t.Fatalf("/runz mid-run = %d", code)
			}
			if err := json.Unmarshal(body, &last); err != nil {
				t.Fatalf("/runz not JSON: %v\n%s", err, body)
			}
			if last.CellsDone < prev {
				t.Fatalf("cells done went backwards: %d after %d", last.CellsDone, prev)
			}
			prev = last.CellsDone
			if last.CellsDone > 0 && last.CellsDone < wantCells {
				sawInFlight = true
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Final barrier: the tracker must read complete once the builder
	// returned, and the scrape endpoints must still serve.
	_, body := scrape("/runz")
	if err := json.Unmarshal(body, &last); err != nil {
		t.Fatal(err)
	}
	if last.CellsDone != wantCells || last.CellsTotal != wantCells {
		t.Errorf("final cells %d/%d, want %d/%d", last.CellsDone, last.CellsTotal, wantCells, wantCells)
	}
	if len(last.Maps) != 1 || !last.Maps[0].Done || last.Maps[0].RowsDone != maxWindow-minWindow+1 {
		t.Errorf("final map status = %+v", last.Maps)
	}
	if !sawInFlight {
		t.Logf("never observed a partial grid (run too fast for the poll loop); monotonicity still held over %d scrapes", prev)
	}
	if got := reg.Counter("sched/tasks_done").Value(); got < int64(wantCells) {
		t.Errorf("sched/tasks_done = %d, want >= %d (cells + row trainings)", got, wantCells)
	}
	if s, d := reg.Counter("sched/tasks_started").Value(), reg.Counter("sched/tasks_done").Value(); s != d {
		t.Errorf("scheduler in-flight count nonzero after run: started %d, done %d", s, d)
	}
}

// TestSchedulerInstrumentNilRegistry pins the disabled path: an
// uninstrumented scheduler runs tasks with nil counter handles.
func TestSchedulerInstrumentNilRegistry(t *testing.T) {
	s := NewScheduler(2)
	s.Instrument(nil)
	ran := false
	s.Run(func() { ran = true })
	if !ran {
		t.Fatal("task did not run")
	}
	s.Instrument(obs.New())
	s.Run(func() {})
}
