package eval

import (
	"errors"
	"strings"
	"testing"

	"adiv/internal/detector"
	"adiv/internal/inject"
	"adiv/internal/seq"
)

// corpusFake is a fakeDetector that trains through the shared corpus cache,
// fetching its own-width database like the real window detectors do.
type corpusFake struct {
	fakeDetector
}

func (f *corpusFake) TrainCorpus(c *seq.Corpus) error {
	if _, err := c.DB(f.window); err != nil {
		return err
	}
	f.trained = true
	return nil
}

var _ detector.CorpusTrainer = (*corpusFake)(nil)

// TestBuildMapCorpusSharesDatabases is the cache-sharing guarantee: two
// detector families evaluated over one corpus build each width's database
// exactly once; the second family's rows are all cache hits.
func TestBuildMapCorpusSharesDatabases(t *testing.T) {
	placements := map[int]inject.Placement{2: placementOf(50, 25, 2)}
	factory := func(window int) (detector.Detector, error) {
		return &corpusFake{fakeDetector{
			name: "fake", window: window, extent: window,
			scoreFunc: constantScores(0),
		}}, nil
	}
	tc := seq.NewCorpus(make(seq.Stream, 100))
	const minWindow, maxWindow = 2, 5
	for _, family := range []string{"fakeA", "fakeB"} {
		if _, err := BuildMapCorpus(family, factory, tc, placements, minWindow, maxWindow, DefaultOptions(), nil); err != nil {
			t.Fatalf("%s: %v", family, err)
		}
	}
	hits, misses := tc.Stats()
	widths := maxWindow - minWindow + 1
	if misses != int64(widths) {
		t.Errorf("misses = %d, want %d: each width's database must be built exactly once across families", misses, widths)
	}
	if hits != int64(widths) {
		t.Errorf("hits = %d, want %d: the second family's rows must reuse the first family's builds", hits, widths)
	}
}

// TestBuildMapAggregatesRowErrors pins the multi-row failure report: every
// failing window appears in the error, not just the lowest-numbered row.
func TestBuildMapAggregatesRowErrors(t *testing.T) {
	placements := map[int]inject.Placement{2: placementOf(50, 25, 2)}
	factory := func(window int) (detector.Detector, error) {
		return &fakeDetector{name: "fake", window: window, extent: window,
			trainErr: errors.New("train boom"), scoreFunc: constantScores(0)}, nil
	}
	_, err := BuildMap("fake", factory, make(seq.Stream, 10), placements, 2, 4, DefaultOptions())
	if err == nil {
		t.Fatal("BuildMap swallowed training errors")
	}
	for _, want := range []string{"DW=2", "DW=3", "DW=4"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("aggregated error %q missing failing row %s", err, want)
		}
	}
}

// TestBuildMapRejectsDegeneratePlacementKey: a size-0 placement key cannot
// be evaluated (no grid row holds it) and must fail loudly instead of
// silently shaping the grid bounds.
func TestBuildMapRejectsDegeneratePlacementKey(t *testing.T) {
	placements := map[int]inject.Placement{
		0: placementOf(50, 25, 2),
		2: placementOf(50, 25, 2),
	}
	factory := func(window int) (detector.Detector, error) {
		return &fakeDetector{name: "fake", window: window, extent: window, scoreFunc: constantScores(0)}, nil
	}
	_, err := BuildMap("fake", factory, make(seq.Stream, 10), placements, 2, 3, DefaultOptions())
	if err == nil {
		t.Fatal("BuildMap accepted a size-0 placement key")
	}
	if !strings.Contains(err.Error(), "non-positive anomaly size") {
		t.Errorf("error %q does not name the degenerate key", err)
	}
}

func TestMapSetRejectsOutOfGrid(t *testing.T) {
	m, err := NewMap("x", 2, 3, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	bad := []Assessment{
		{AnomalySize: 1, Window: 2},
		{AnomalySize: 4, Window: 2},
		{AnomalySize: 2, Window: 1},
		{AnomalySize: 2, Window: 4},
	}
	for _, a := range bad {
		if err := m.Set(a); err == nil {
			t.Errorf("Set accepted out-of-grid cell (size %d, window %d)", a.AnomalySize, a.Window)
		}
	}
	if len(m.Cells()) != 0 {
		t.Errorf("rejected cells were recorded: %v", m.Cells())
	}
	if err := m.Set(Assessment{AnomalySize: 2, Window: 3, Outcome: Capable}); err != nil {
		t.Errorf("Set rejected in-grid cell: %v", err)
	}
	if m.Outcome(2, 3) != Capable {
		t.Errorf("in-grid cell not recorded")
	}
}

func TestSpanMaxClampsToResponses(t *testing.T) {
	// Span [7, 12] for extent 4, but only 10 responses: hi clamps to 9 and
	// the maximum over [7, 9] is reported.
	p := placementOf(20, 10, 3)
	responses := make([]float64, 10)
	responses[5] = 1.0 // before the span; must not count
	responses[8] = 0.3
	responses[9] = 0.7
	maxResp, ok := SpanMax(p, 4, responses)
	if !ok {
		t.Fatal("clamped span reported no overlap")
	}
	if maxResp != 0.7 {
		t.Errorf("SpanMax = %v, want 0.7 (maximum over the clamped span [7,9])", maxResp)
	}
}

func TestSpanMaxAnomalyAtStreamStart(t *testing.T) {
	// Anomaly at position 0: lo would be negative and clamps to 0.
	p := placementOf(20, 0, 3)
	responses := make([]float64, 17)
	responses[0] = 0.9
	responses[3] = 1.0 // past the span [0, 2]
	maxResp, ok := SpanMax(p, 4, responses)
	if !ok {
		t.Fatal("span at stream start reported no overlap")
	}
	if maxResp != 0.9 {
		t.Errorf("SpanMax = %v, want 0.9 over span [0,2]", maxResp)
	}
}

func TestSpanMaxSingleResponseSpan(t *testing.T) {
	// Anomaly of length 1 at the last coverable position: the span is the
	// single window start 16.
	p := placementOf(20, 19, 1)
	responses := make([]float64, 17)
	responses[16] = 0.9
	maxResp, ok := SpanMax(p, 4, responses)
	if !ok {
		t.Fatal("single-response span reported no overlap")
	}
	if maxResp != 0.9 {
		t.Errorf("SpanMax = %v, want 0.9", maxResp)
	}
}

func TestSpanMaxInvalidExtent(t *testing.T) {
	p := placementOf(20, 10, 3)
	responses := make([]float64, 17)
	for _, extent := range []int{0, -1, 21} {
		if _, ok := SpanMax(p, extent, responses); ok {
			t.Errorf("SpanMax ok with extent %d", extent)
		}
	}
}
