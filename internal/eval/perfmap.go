package eval

import (
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"adiv/internal/checkpoint"
	"adiv/internal/detector"
	"adiv/internal/inject"
	"adiv/internal/obs"
	"adiv/internal/seq"
)

// Map is a detector's performance map (paper Figures 3–6): for every
// (anomaly size, detector window) cell in the evaluated grid, the outcome of
// deploying the detector on the test stream holding an injected minimal
// foreign sequence of that size.
type Map struct {
	// Detector names the detector the map describes.
	Detector string
	// MinSize/MaxSize span the anomaly-size axis (x-axis in the paper).
	MinSize, MaxSize int
	// MinWindow/MaxWindow span the detector-window axis (y-axis).
	MinWindow, MaxWindow int

	cells map[[2]int]Assessment // key: {anomaly size, window}
}

// NewMap returns an empty map covering the given grid.
func NewMap(name string, minSize, maxSize, minWindow, maxWindow int) (*Map, error) {
	if minSize < 1 || maxSize < minSize || minWindow < 1 || maxWindow < minWindow {
		return nil, fmt.Errorf("eval: invalid map grid sizes [%d,%d] windows [%d,%d]",
			minSize, maxSize, minWindow, maxWindow)
	}
	return &Map{
		Detector:  name,
		MinSize:   minSize,
		MaxSize:   maxSize,
		MinWindow: minWindow,
		MaxWindow: maxWindow,
		cells:     make(map[[2]int]Assessment, (maxSize-minSize+1)*(maxWindow-minWindow+1)),
	}, nil
}

// Set records the assessment for one cell. Assessments outside the map's
// declared [MinSize,MaxSize]×[MinWindow,MaxWindow] grid are rejected: a
// silently accepted stray cell would surface in Cells(), CountOutcome and
// the rendered figures while At() for every in-grid cell still reads
// Undefined.
func (m *Map) Set(a Assessment) error {
	if a.AnomalySize < m.MinSize || a.AnomalySize > m.MaxSize ||
		a.Window < m.MinWindow || a.Window > m.MaxWindow {
		return fmt.Errorf("eval: assessment cell (size %d, window %d) outside map grid sizes [%d,%d] windows [%d,%d]",
			a.AnomalySize, a.Window, m.MinSize, m.MaxSize, m.MinWindow, m.MaxWindow)
	}
	m.cells[[2]int{a.AnomalySize, a.Window}] = a
	return nil
}

// At returns the assessment at the cell, with Outcome Undefined for cells
// never recorded (including everything outside the grid).
func (m *Map) At(size, window int) Assessment {
	if a, ok := m.cells[[2]int{size, window}]; ok {
		return a
	}
	return Assessment{
		Detector:    m.Detector,
		Window:      window,
		AnomalySize: size,
		Outcome:     Undefined,
	}
}

// Outcome is shorthand for At(size, window).Outcome.
func (m *Map) Outcome(size, window int) Outcome { return m.At(size, window).Outcome }

// Cells returns all recorded assessments ordered by (size, window), for
// deterministic rendering and comparison.
func (m *Map) Cells() []Assessment {
	out := make([]Assessment, 0, len(m.cells))
	for _, a := range m.cells {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].AnomalySize != out[j].AnomalySize {
			return out[i].AnomalySize < out[j].AnomalySize
		}
		return out[i].Window < out[j].Window
	})
	return out
}

// CountOutcome returns how many recorded cells have the given outcome.
func (m *Map) CountOutcome(o Outcome) int {
	n := 0
	for _, a := range m.cells {
		if a.Outcome == o {
			n++
		}
	}
	return n
}

// DetectionRegion returns the set of (size, window) cells classified
// Capable, ordered by (size, window).
func (m *Map) DetectionRegion() [][2]int {
	var out [][2]int
	for _, a := range m.Cells() {
		if a.Outcome == Capable {
			out = append(out, [2]int{a.AnomalySize, a.Window})
		}
	}
	return out
}

// CoversAtLeast reports whether every cell Capable in other is also Capable
// in m — the paper's "Stide's detection coverage is a subset of the
// Markov-based detector's coverage" relation.
func (m *Map) CoversAtLeast(other *Map) bool {
	for _, cell := range other.DetectionRegion() {
		if m.Outcome(cell[0], cell[1]) != Capable {
			return false
		}
	}
	return true
}

// Factory builds a detector for a window length; eval uses it to construct
// one detector per row of the map.
type Factory func(window int) (detector.Detector, error)

// BuildMap deploys a detector family over the full evaluation grid: for
// every window in [minWindow, maxWindow] a detector is constructed and
// trained once on the training stream, then scored against every placement
// (one per anomaly size). Grid work — row trainings and (window, size) cell
// evaluations — runs on a bounded worker pool (opts.Workers slots, default
// runtime.NumCPU, or a shared opts.Scheduler), so training the neural
// network fourteen times overlaps across rows without the grid ever
// spawning unbounded concurrent work. Cells within a row run sequentially:
// a trained detector's Score may reuse per-detector scratch buffers and is
// not safe for concurrent use (see DESIGN.md).
func BuildMap(name string, factory Factory, train seq.Stream, placements map[int]inject.Placement,
	minWindow, maxWindow int, opts Options) (*Map, error) {
	return BuildMapObserved(name, factory, train, placements, minWindow, maxWindow, opts, nil)
}

// BuildMapObserved is BuildMap with run telemetry recorded into reg (nil
// disables it, reducing to BuildMap). It wraps the training stream in a
// fresh seq.Corpus, so the per-width sequence databases the rows train from
// are built once and shared across the whole grid; callers evaluating
// several detector families over one training stream should construct the
// corpus themselves and call BuildMapCorpus so the sharing spans families
// too.
func BuildMapObserved(name string, factory Factory, train seq.Stream, placements map[int]inject.Placement,
	minWindow, maxWindow int, opts Options, reg *obs.Registry) (*Map, error) {
	tc := seq.NewCorpus(train)
	tc.Instrument(reg)
	return BuildMapCorpus(name, factory, tc, placements, minWindow, maxWindow, opts, reg)
}

// BuildMapCorpus is the corpus-sharing grid builder behind BuildMap and
// BuildMapObserved: all rows fetch their training databases from tc
// (detectors implementing detector.CorpusTrainer reuse a width's database
// instead of rebuilding it; others fall back to Train on the corpus's
// stream). Each detector is wrapped with detector.Observed (per-window
// training durations, scoring throughput, response distribution), every
// grid cell records its evaluation timing under cell/<name>, and
// cell-completion progress events carry a running cells/sec rate — the
// visibility a multi-minute grid run otherwise lacks. Row failures are
// aggregated: a multi-row failure reports every failing window, not just
// the first.
func BuildMapCorpus(name string, factory Factory, tc *seq.Corpus, placements map[int]inject.Placement,
	minWindow, maxWindow int, opts Options, reg *obs.Registry) (*Map, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if tc == nil {
		return nil, fmt.Errorf("eval: nil training corpus")
	}
	if len(placements) == 0 {
		return nil, fmt.Errorf("eval: no placements to evaluate")
	}
	minSize, maxSize, first := 0, 0, true
	for size := range placements {
		if size < 1 {
			// A degenerate key would silently fall outside the row loop
			// (and, before the first-iteration flag below, corrupt the
			// grid bounds); fail loudly instead.
			return nil, fmt.Errorf("eval: non-positive anomaly size %d in placements", size)
		}
		if first || size < minSize {
			minSize = size
		}
		if first || size > maxSize {
			maxSize = size
		}
		first = false
	}
	m, err := NewMap(name, minSize, maxSize, minWindow, maxWindow)
	if err != nil {
		return nil, err
	}

	ckKey := opts.CheckpointKey
	if ckKey == "" {
		ckKey = name
	}
	// Shard partition: a sharded worker owns only the cells ShardOf hashes
	// to it; everything else is skipped outright, so N workers cover the
	// grid exactly once between them. The unsharded run owns every cell.
	inShard := func(window, size int) bool {
		if opts.ShardCount == 0 {
			return true
		}
		return checkpoint.ShardOf(ckKey, window, size, opts.ShardCount) == opts.ShardIndex-1
	}

	rows := maxWindow - minWindow + 1
	totalCells := 0
	for window := minWindow; window <= maxWindow; window++ {
		for size := range placements {
			if inShard(window, size) {
				totalCells++
			}
		}
	}
	startFields := obs.Fields{
		"detector": name,
		"windows":  fmt.Sprintf("%d-%d", minWindow, maxWindow),
		"sizes":    fmt.Sprintf("%d-%d", minSize, maxSize),
		"cells":    totalCells,
	}
	if opts.ShardCount > 0 {
		startFields["shard"] = fmt.Sprintf("%d/%d", opts.ShardIndex, opts.ShardCount)
	}
	reg.Event("map.start", startFields)
	prog := opts.Progress
	prog.StartMap(name, rows, totalCells)
	tr := reg.Tracer()
	mapSpan := reg.SpanTraced("map/"+name, "map")
	mapSpan.SetAttr("detector", name)
	cellTiming := reg.Timing("cell/" + name)
	cellCounter := reg.Counter("eval/cells/" + name)
	retryCounter := reg.Counter("ckpt/cells_retried")
	var done atomic.Int64

	sched := opts.Scheduler
	if sched == nil {
		sched = NewScheduler(opts.Workers)
	}
	ck := opts.Checkpoint

	type rowResult struct {
		assessments []Assessment
		err         error
	}
	results := make([]rowResult, maxWindow-minWindow+1)
	var wg sync.WaitGroup
	for window := minWindow; window <= maxWindow; window++ {
		wg.Add(1)
		// One coordinator goroutine per row. The goroutines themselves are
		// nearly free — all real work (training, cell evaluation) happens
		// inside sched.Run, so at most sched.Workers() grid tasks execute at
		// any moment, across rows and across any other maps sharing the
		// scheduler. Cells stay sequential within their row: each row's
		// trained detector may reuse scoring scratch and must not score two
		// streams at once.
		go func(window int) {
			defer wg.Done()
			prog.RowStarted(name, window)
			defer prog.RowFinished(name, window)
			res := &results[window-minWindow]

			// Consult the journal first: cells evaluated before an
			// interruption replay instead of recomputing, and a row whose
			// every cell is journaled never constructs or trains its
			// detector — on resume the expensive rows (fourteen neural-net
			// trainings at paper scale) cost nothing already paid for.
			type rowCell struct {
				size   int
				rec    checkpoint.CellRecord
				replay bool
			}
			cells := make([]rowCell, 0, maxSize-minSize+1)
			live := 0
			for size := minSize; size <= maxSize; size++ {
				if _, ok := placements[size]; !ok {
					continue
				}
				if !inShard(window, size) {
					continue
				}
				rec, ok := ck.Lookup(ckKey, window, size)
				cells = append(cells, rowCell{size: size, rec: rec, replay: ok})
				if !ok {
					live++
				}
			}

			var det detector.Detector
			if live > 0 {
				var err error
				det, err = factory(window)
				if err != nil {
					res.err = fmt.Errorf("eval: constructing %s(DW=%d): %w", name, window, err)
					return
				}
				det = detector.Observed(det, reg)
				err = runTaskLane(sched, func(lane int) error {
					// One lane-stamped trace span per row training: the
					// timeline's worker tracks show exactly which rows
					// serialized behind the expensive trainings. The name is
					// formatted only when a tracer is live, so untraced runs
					// skip the Sprintf along with the span.
					var tsp *obs.TraceSpan
					if tr != nil {
						tsp = tr.Start(fmt.Sprintf("train/%s/dw%02d", name, window), "train")
						tsp.SetLane(lane)
						tsp.SetAttr("map", ckKey)
						tsp.SetAttr("detector", name)
						tsp.SetAttrInt("window", window)
					}
					defer tsp.End()
					return detector.TrainWith(det, tc)
				})
				if err != nil {
					res.err = fmt.Errorf("eval: training %s(DW=%d): %w", name, window, err)
					return
				}
			}
			for _, c := range cells {
				var (
					a      Assessment
					cellMs float64
				)
				if c.replay {
					// Replayed cells are trace-only (category "replay"):
					// they must stay out of the cell/<name> Timing so the
					// cells-per-busy-second rate keeps measuring real work.
					var rsp *obs.TraceSpan
					if tr != nil {
						rsp = tr.Start("cell/"+name, "replay")
						rsp.SetAttr("map", ckKey)
						rsp.SetAttr("detector", name)
						rsp.SetAttrInt("window", window)
						rsp.SetAttrInt("size", c.size)
					}
					a = recordAssessment(c.rec)
					rsp.End()
					prog.CellReplayed(name)
				} else {
					placement := placements[c.size]
					attempt := 0
					for {
						err := runTaskLane(sched, func(lane int) error {
							cellSpan := reg.SpanTraced("cell/"+name, "cell")
							cellSpan.SetLane(lane)
							cellSpan.SetAttr("map", ckKey)
							cellSpan.SetAttr("detector", name)
							cellSpan.SetAttrInt("window", window)
							cellSpan.SetAttrInt("size", c.size)
							var aerr error
							a, aerr = Assess(det, placement, opts)
							cellMs = float64(cellSpan.End().Nanoseconds()) / 1e6
							// Live cells only: replays complete in
							// microseconds and would collapse the latency
							// quantiles.
							reg.Sketch("cell_latency/" + name).Observe(cellMs / 1e3)
							return aerr
						})
						if err == nil {
							break
						}
						// An injected scheduler fault simulates the process
						// dying: fatal, never retried. Everything else gets
						// opts.CellRetries more attempts with capped
						// exponential backoff before the row gives up and the
						// joined map error names this exact cell.
						if errors.Is(err, ErrInjectedFault) || attempt >= opts.CellRetries {
							// The cell.fail event carries the recovered
							// panic's stack (when the failure was a panic):
							// the joined map error names the cell, but only
							// the stack says which detector frame blew up.
							failFields := obs.Fields{
								"detector": name,
								"window":   window,
								"size":     c.size,
								"attempts": attempt + 1,
								"error":    err.Error(),
							}
							var pe *panicError
							if errors.As(err, &pe) {
								failFields["stack"] = string(pe.stack)
							}
							reg.Event("cell.fail", failFields)
							res.err = fmt.Errorf("eval: %s cell (window %d, size %d): %w", name, window, c.size, err)
							return
						}
						attempt++
						retryCounter.Inc()
						reg.Event("cell.retry", obs.Fields{
							"detector": name,
							"window":   window,
							"size":     c.size,
							"attempt":  attempt,
							"error":    err.Error(),
						})
						retrySleep(retryDelay(attempt))
					}
					if err := ck.Append(cellRecord(ckKey, a)); err != nil {
						res.err = fmt.Errorf("eval: journaling %s cell (window %d, size %d): %w", name, window, c.size, err)
						return
					}
					prog.CellDone(name)
				}
				cellCounter.Inc()
				n := done.Add(1)
				if reg != nil {
					var rate float64
					_, total, _, _ := cellTiming.Stats()
					if total > 0 {
						// Cells run concurrently across rows, so the sum of
						// per-cell durations overstates wall time; the rate
						// is per core-busy second, a stable progress signal.
						rate = float64(n) / total.Seconds()
					}
					reg.Event("cell", obs.Fields{
						"detector":        name,
						"window":          window,
						"size":            c.size,
						"outcome":         a.Outcome.String(),
						"ms":              cellMs,
						"replayed":        c.replay,
						"done":            n,
						"total":           totalCells,
						"cellsPerBusySec": rate,
					})
				}
				res.assessments = append(res.assessments, a)
			}
		}(window)
	}
	wg.Wait()
	// The grid is over (successfully or not) once every row returns; /runz
	// flips the map to done here, before result assembly.
	prog.FinishMap(name)
	mapMs := float64(mapSpan.End().Nanoseconds()) / 1e6
	var errs []error
	for _, res := range results {
		if res.err != nil {
			errs = append(errs, res.err)
		}
	}
	if len(errs) > 0 {
		// Report every failing window, not just the lowest-numbered row.
		return nil, errors.Join(errs...)
	}
	for _, res := range results {
		for _, a := range res.assessments {
			if err := m.Set(a); err != nil {
				return nil, err
			}
		}
	}
	reg.Event("map.done", obs.Fields{
		"detector": name,
		"cells":    done.Load(),
		"ms":       mapMs,
	})
	return m, nil
}

// runTask executes fn on the scheduler and converts any panic — fn's own,
// or an injected scheduler fault — into the returned error, preserving a
// panicked error value for errors.Is. Without this a single panicking cell
// (a detector bug on one pathological stream) would kill the whole process
// and with it every other row's completed work; recovered here, the row
// coordinator can retry the cell or report it with its exact coordinates.
func runTask(sched *Scheduler, fn func() error) (err error) {
	return runTaskLane(sched, func(int) error { return fn() })
}

// runTaskLane is runTask for tasks that stamp their worker lane onto trace
// spans.
func runTaskLane(sched *Scheduler, fn func(lane int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			// The stack is captured here, inside the recovering frame,
			// because it is gone the moment this deferred call returns —
			// reducing a panic to its value alone would leave the
			// cell-failure report with "panic: index out of range" and no
			// way back to the detector frame that blew up.
			err = &panicError{val: r, stack: debug.Stack()}
		}
	}()
	sched.RunLane(func(lane int) { err = fn(lane) })
	return err
}

// panicError is a recovered grid-task panic: the panicked value plus the
// goroutine stack at recovery time. Unwrap exposes a panicked error value,
// so errors.Is(err, ErrInjectedFault) still recognizes injected scheduler
// faults through the wrapper.
type panicError struct {
	val   any
	stack []byte
}

func (p *panicError) Error() string { return fmt.Sprintf("panic: %v", p.val) }

func (p *panicError) Unwrap() error {
	if err, ok := p.val.(error); ok {
		return err
	}
	return nil
}

// Cell-retry backoff: first retry after cellRetryBase, doubling per
// attempt, capped at cellRetryCap.
const (
	cellRetryBase = 10 * time.Millisecond
	cellRetryCap  = 250 * time.Millisecond
)

// retrySleep is time.Sleep, a seam so the retry tests run instantly.
var retrySleep = time.Sleep

// retryDelay returns the backoff before retry attempt n (1-based).
func retryDelay(attempt int) time.Duration {
	d := cellRetryBase << (attempt - 1)
	if d > cellRetryCap || d <= 0 {
		return cellRetryCap
	}
	return d
}

// cellRecord converts a completed assessment into its journal record under
// the map's checkpoint key. The response crosses as raw IEEE-754 bits: a
// replayed cell must render byte-identically to the original.
func cellRecord(key string, a Assessment) checkpoint.CellRecord {
	return checkpoint.CellRecord{
		Key:      key,
		Detector: a.Detector,
		Window:   a.Window,
		Size:     a.AnomalySize,
		RespBits: math.Float64bits(a.MaxResponse),
		Outcome:  int(a.Outcome),
	}
}

// recordAssessment is cellRecord's inverse, rebuilding the assessment a
// journaled cell recorded.
func recordAssessment(rec checkpoint.CellRecord) Assessment {
	return Assessment{
		Detector:    rec.Detector,
		Window:      rec.Window,
		AnomalySize: rec.Size,
		MaxResponse: math.Float64frombits(rec.RespBits),
		Outcome:     Outcome(rec.Outcome),
	}
}
