package eval

import (
	"encoding/json"
	"fmt"
)

// mapJSON is the serialized form of a performance map, consumable by
// external plotting tools.
type mapJSON struct {
	Detector  string     `json:"detector"`
	MinSize   int        `json:"minSize"`
	MaxSize   int        `json:"maxSize"`
	MinWindow int        `json:"minWindow"`
	MaxWindow int        `json:"maxWindow"`
	Cells     []cellJSON `json:"cells"`
}

type cellJSON struct {
	AnomalySize int     `json:"anomalySize"`
	Window      int     `json:"window"`
	Outcome     string  `json:"outcome"`
	MaxResponse float64 `json:"maxResponse"`
}

// MarshalJSON implements json.Marshaler with deterministic cell order.
func (m *Map) MarshalJSON() ([]byte, error) {
	out := mapJSON{
		Detector:  m.Detector,
		MinSize:   m.MinSize,
		MaxSize:   m.MaxSize,
		MinWindow: m.MinWindow,
		MaxWindow: m.MaxWindow,
	}
	for _, a := range m.Cells() {
		out.Cells = append(out.Cells, cellJSON{
			AnomalySize: a.AnomalySize,
			Window:      a.Window,
			Outcome:     a.Outcome.String(),
			MaxResponse: a.MaxResponse,
		})
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *Map) UnmarshalJSON(data []byte) error {
	var raw mapJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	restored, err := NewMap(raw.Detector, raw.MinSize, raw.MaxSize, raw.MinWindow, raw.MaxWindow)
	if err != nil {
		return fmt.Errorf("eval: restoring map: %w", err)
	}
	for _, c := range raw.Cells {
		outcome, err := parseOutcome(c.Outcome)
		if err != nil {
			return err
		}
		if err := restored.Set(Assessment{
			Detector:    raw.Detector,
			AnomalySize: c.AnomalySize,
			Window:      c.Window,
			Outcome:     outcome,
			MaxResponse: c.MaxResponse,
		}); err != nil {
			return fmt.Errorf("eval: restoring map: %w", err)
		}
	}
	*m = *restored
	return nil
}

func parseOutcome(s string) (Outcome, error) {
	switch s {
	case "blind":
		return Blind, nil
	case "weak":
		return Weak, nil
	case "capable":
		return Capable, nil
	case "undefined":
		return Undefined, nil
	default:
		return Undefined, fmt.Errorf("eval: unknown outcome %q", s)
	}
}
