// Package eval implements the paper's deployment and scoring methodology
// (Sections 5.5 and 6): detectors are deployed on test streams containing a
// single injected anomaly, the maximum response within the incident span
// classifies the detector as blind, weak, or capable for that (anomaly size,
// detector window) cell, and the cells assemble into the per-detector
// performance maps of Figures 3–6.
package eval

import (
	"fmt"

	"adiv/internal/checkpoint"
	"adiv/internal/detector"
	"adiv/internal/inject"
	"adiv/internal/obs"
)

// Outcome classifies a detector's reaction to an injected anomaly from the
// maximum response it registered anywhere in the incident span.
type Outcome int

// Outcome values. Undefined marks cells outside the evaluated region (the
// paper's "undefined region", e.g. anomaly size 1).
const (
	Undefined Outcome = iota
	// Blind: response 0 for every sequence of the incident span; the
	// detector perceives the anomaly as completely normal.
	Blind
	// Weak: a maximum response strictly between 0 and the capable floor;
	// something abnormal was seen but not a maximal response.
	Weak
	// Capable: at least one maximal response registered in the span. Such a
	// response registers as an alarm regardless of where a detection
	// threshold is later placed.
	Capable
)

// String renders the outcome for reports.
func (o Outcome) String() string {
	switch o {
	case Blind:
		return "blind"
	case Weak:
		return "weak"
	case Capable:
		return "capable"
	default:
		return "undefined"
	}
}

// Options tunes response classification.
type Options struct {
	// CapableAt is the response value at or above which a response counts
	// as maximal. Binary and count-ratio detectors emit exactly 1; the
	// neural network's softmax approaches but never reaches it, so its
	// harness uses a documented floor (e.g. 0.999) — the "detection
	// threshold becomes critical" tuning knob of Section 7.
	CapableAt float64
	// BlindBelow is the response value below which a response counts as
	// zero, absorbing floating-point fuzz.
	BlindBelow float64
	// Workers bounds how many grid tasks (row trainings, cell evaluations)
	// BuildMap runs concurrently; 0 means runtime.NumCPU. Ignored when
	// Scheduler is set. It affects only wall-clock, never the resulting
	// map: every cell's assessment is a pure function of (detector, data).
	Workers int
	// Scheduler, when non-nil, supplies the bounded worker pool for grid
	// tasks instead of a pool created from Workers. Drivers that build
	// several maps share one scheduler (the -j flag) so expensive rows of
	// one family interleave with cheap rows of another instead of each map
	// bringing up its own unbounded fan-out.
	Scheduler *Scheduler
	// Progress, when non-nil, receives grid lifecycle callbacks (map
	// registered, row started/finished, cell completed) so a status server
	// can report live per-map progress, throughput, and ETA. Drivers share
	// one tracker across every map of the run, like the scheduler. The
	// callbacks fire at row/cell granularity — never inside a detector's
	// Score hot path — and a nil tracker costs a single pointer test.
	Progress *obs.Progress
	// Checkpoint, when non-nil, is the run's cell journal (the -checkpoint
	// flag): cells already journaled under this map's key replay instantly
	// — a row whose every cell is journaled skips detector construction
	// and training outright — and each live cell's result is appended the
	// moment it completes, so an interrupted run resumes from its last
	// finished cell. Replay is bit-exact (responses travel as IEEE-754
	// bits), preserving the worker-count invariance contract: a resumed
	// map is byte-identical to an uninterrupted one.
	Checkpoint *checkpoint.Journal
	// CheckpointKey namespaces this map's cells in the journal; empty uses
	// the map name. Drivers that rebuild one family under several
	// parameter configurations (the nn tuning grid, the t-stide cutoff
	// sweep) must set a parameter-qualified key — identical (map, window,
	// size) coordinates from different configurations would otherwise
	// collide.
	CheckpointKey string
	// CellRetries is how many additional attempts a failed cell evaluation
	// (error or recovered panic) gets before its row gives up and reports
	// the failure through the map's joined error. Retries back off
	// exponentially from cellRetryBase, capped at cellRetryCap; an
	// injected scheduler fault (ErrInjectedFault) is never retried — it
	// simulates the process dying. 0 disables retry.
	CellRetries int
	// ShardIndex/ShardCount partition the grid across cooperating worker
	// processes (the commands' -shard i/N flag): when ShardCount > 0, only
	// cells that checkpoint.ShardOf assigns to shard ShardIndex-1 are
	// evaluated (or replayed); every other cell is skipped outright — not
	// trained for, not journaled, not counted in progress totals. The
	// partition is a pure function of (checkpoint key, window, size, N),
	// so N workers running the same configuration cover the grid exactly
	// once with no coordination, and checkpoint.Merge reassembles their
	// journals into the full map. ShardIndex is 1-based; 0/0 (the zero
	// value) evaluates everything.
	ShardIndex int
	ShardCount int
}

// DefaultOptions matches the paper's exact-threshold regime: only responses
// of 1 are maximal. Cell evaluations get DefaultCellRetries attempts beyond
// the first before failing their row.
func DefaultOptions() Options {
	return Options{CapableAt: 1 - 1e-9, BlindBelow: 1e-9, CellRetries: DefaultCellRetries}
}

// DefaultCellRetries is the default Options.CellRetries: transient per-cell
// failures get two more chances (10ms then 20ms later) before the row
// aggregates the error.
const DefaultCellRetries = 2

// Validate reports option errors.
func (o Options) Validate() error {
	if !(o.BlindBelow >= 0 && o.BlindBelow < o.CapableAt && o.CapableAt <= 1) {
		return fmt.Errorf("eval: need 0 <= BlindBelow < CapableAt <= 1, got %v and %v", o.BlindBelow, o.CapableAt)
	}
	if o.Workers < 0 {
		return fmt.Errorf("eval: negative worker count %d", o.Workers)
	}
	if o.CellRetries < 0 {
		return fmt.Errorf("eval: negative cell retry count %d", o.CellRetries)
	}
	if o.ShardCount < 0 || o.ShardIndex < 0 {
		return fmt.Errorf("eval: negative shard identity %d/%d", o.ShardIndex, o.ShardCount)
	}
	if o.ShardCount == 0 && o.ShardIndex != 0 {
		return fmt.Errorf("eval: shard index %d without a shard count", o.ShardIndex)
	}
	if o.ShardCount > 0 && (o.ShardIndex < 1 || o.ShardIndex > o.ShardCount) {
		return fmt.Errorf("eval: shard index %d outside 1..%d", o.ShardIndex, o.ShardCount)
	}
	return nil
}

// SpanMax returns the maximum response over the incident span of the
// placement: all responses whose covered elements [i, i+extent) include at
// least one element of the injected anomaly. ok is false when no response
// touches the anomaly (stream too short for the extent).
func SpanMax(p inject.Placement, extent int, responses []float64) (maxResp float64, ok bool) {
	lo, hi, ok := p.IncidentSpan(extent)
	if !ok {
		return 0, false
	}
	if hi >= len(responses) {
		hi = len(responses) - 1
	}
	if hi < lo {
		return 0, false
	}
	maxResp = responses[lo]
	for i := lo + 1; i <= hi; i++ {
		if responses[i] > maxResp {
			maxResp = responses[i]
		}
	}
	return maxResp, true
}

// Classify converts a span-maximum response into an Outcome under opts.
func Classify(maxResp float64, opts Options) Outcome {
	switch {
	case maxResp < opts.BlindBelow:
		return Blind
	case maxResp >= opts.CapableAt:
		return Capable
	default:
		return Weak
	}
}

// Assessment is the result of deploying one trained detector on one test
// stream containing one injected anomaly.
type Assessment struct {
	// Detector and Window identify the deployment.
	Detector string
	Window   int
	// AnomalySize is the length of the injected anomaly.
	AnomalySize int
	// MaxResponse is the maximum response registered in the incident span.
	MaxResponse float64
	// Outcome classifies MaxResponse under the evaluation options.
	Outcome Outcome
}

// Assess scores the placement's stream with an already-trained detector and
// classifies the span-maximum response.
func Assess(det detector.Detector, p inject.Placement, opts Options) (Assessment, error) {
	if err := opts.Validate(); err != nil {
		return Assessment{}, err
	}
	responses, err := det.Score(p.Stream)
	if err != nil {
		return Assessment{}, fmt.Errorf("eval: scoring with %s(DW=%d): %w", det.Name(), det.Window(), err)
	}
	maxResp, ok := SpanMax(p, det.Extent(), responses)
	if !ok {
		return Assessment{}, fmt.Errorf("eval: incident span empty for %s(DW=%d) on stream of length %d",
			det.Name(), det.Window(), len(p.Stream))
	}
	return Assessment{
		Detector:    det.Name(),
		Window:      det.Window(),
		AnomalySize: p.AnomalyLen,
		MaxResponse: maxResp,
		Outcome:     Classify(maxResp, opts),
	}, nil
}
