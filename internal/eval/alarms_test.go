package eval

import (
	"math"
	"testing"

	"adiv/internal/seq"
)

func TestAlarms(t *testing.T) {
	responses := []float64{0, 0.5, 0.98, 1, 0.97}
	got := Alarms(responses, 0.98)
	if len(got) != 2 {
		t.Fatalf("%d alarms, want 2", len(got))
	}
	if got[0].Position != 2 || got[1].Position != 3 {
		t.Errorf("alarm positions %v", got)
	}
	if len(Alarms(responses, 1.1)) != 0 {
		t.Errorf("alarms above the response range")
	}
}

func TestAssessAlarms(t *testing.T) {
	p := placementOf(40, 20, 2)
	// Extent 3: span = [18, 21].
	d := &fakeDetector{name: "fake", window: 3, extent: 3, trained: true,
		scoreFunc: func(test seq.Stream) []float64 {
			out := make([]float64, len(test)-2)
			out[5] = 1  // false alarm
			out[19] = 1 // span alarm
			out[30] = 1 // false alarm
			return out
		}}
	stats, err := AssessAlarms(d, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Hit || stats.SpanAlarms != 1 || stats.FalseAlarms != 2 {
		t.Errorf("stats %+v", stats)
	}
	wantPositions := 38 - 4 // 38 responses minus 4 span positions
	if stats.Positions != wantPositions {
		t.Errorf("Positions = %d, want %d", stats.Positions, wantPositions)
	}
	if rate := stats.FalseAlarmRate(); math.Abs(rate-2.0/float64(wantPositions)) > 1e-12 {
		t.Errorf("FalseAlarmRate = %v", rate)
	}
}

func TestAssessAlarmsThresholdValidation(t *testing.T) {
	p := placementOf(40, 20, 2)
	d := &fakeDetector{name: "fake", window: 3, extent: 3, trained: true, scoreFunc: constantScores(0)}
	for _, th := range []float64{0, -0.5, 1.5} {
		if _, err := AssessAlarms(d, p, th); err == nil {
			t.Errorf("threshold %v accepted", th)
		}
	}
}

func TestFalseAlarmRateEmpty(t *testing.T) {
	var s AlarmStats
	if s.FalseAlarmRate() != 0 {
		t.Errorf("empty stats rate %v", s.FalseAlarmRate())
	}
}

func TestSweepMonotone(t *testing.T) {
	p := placementOf(60, 30, 2)
	d := &fakeDetector{name: "fake", window: 2, extent: 2, trained: true,
		scoreFunc: func(test seq.Stream) []float64 {
			out := make([]float64, len(test)-1)
			for i := range out {
				out[i] = float64(i%10) / 10
			}
			out[30] = 1
			return out
		}}
	points, err := Sweep(d, p, []float64{0.9, 0.5, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points", len(points))
	}
	// Sorted ascending by threshold; false-alarm rate must be
	// non-increasing in the threshold.
	for i := 1; i < len(points); i++ {
		if points[i].Threshold < points[i-1].Threshold {
			t.Errorf("points not sorted by threshold")
		}
		if points[i].FalseAlarmRate > points[i-1].FalseAlarmRate {
			t.Errorf("false-alarm rate increased with threshold: %+v", points)
		}
	}
	for _, pt := range points {
		if !pt.Hit {
			t.Errorf("maximal in-span response should hit at every threshold: %+v", pt)
		}
	}
}
