package eval

import (
	"fmt"
	"sort"

	"adiv/internal/detector"
	"adiv/internal/inject"
	"adiv/internal/stats"
)

// ROCPoint is one operating point of a receiver-operating-characteristic
// estimate: the fraction of trials whose injected anomaly was hit, against
// the mean false-alarm rate, at one detection threshold.
type ROCPoint struct {
	Threshold      float64
	HitRate        float64
	FalseAlarmRate float64
}

// ROCCurve is a detector's threshold-swept operating characteristic over a
// set of trials.
type ROCCurve struct {
	Detector string
	Window   int
	Points   []ROCPoint
}

// ROC evaluates a trained detector over multiple trials (one placement per
// trial — ideally on test streams with natural rare content) at each
// threshold and assembles the operating characteristic. Thresholds are
// evaluated in ascending order.
func ROC(det detector.Detector, placements []inject.Placement, thresholds []float64) (ROCCurve, error) {
	if len(placements) == 0 {
		return ROCCurve{}, fmt.Errorf("eval: ROC with no trials")
	}
	if len(thresholds) == 0 {
		return ROCCurve{}, fmt.Errorf("eval: ROC with no thresholds")
	}
	ts := append([]float64(nil), thresholds...)
	sort.Float64s(ts)
	curve := ROCCurve{Detector: det.Name(), Window: det.Window()}
	for _, th := range ts {
		hits, faSum := 0, 0.0
		for _, p := range placements {
			s, err := AssessAlarms(det, p, th)
			if err != nil {
				return ROCCurve{}, err
			}
			if s.Hit {
				hits++
			}
			faSum += s.FalseAlarmRate()
		}
		curve.Points = append(curve.Points, ROCPoint{
			Threshold:      th,
			HitRate:        float64(hits) / float64(len(placements)),
			FalseAlarmRate: faSum / float64(len(placements)),
		})
	}
	return curve, nil
}

// ROCMulti assembles an operating characteristic from one multi-anomaly
// stream: the hit rate is the fraction of injected events detected at each
// threshold, a tighter estimate than one-event trials when the stream
// holds many independent events.
func ROCMulti(det detector.Detector, mp inject.MultiPlacement, thresholds []float64) (ROCCurve, error) {
	if len(mp.Events) == 0 {
		return ROCCurve{}, fmt.Errorf("eval: ROC over a stream with no events")
	}
	if len(thresholds) == 0 {
		return ROCCurve{}, fmt.Errorf("eval: ROC with no thresholds")
	}
	ts := append([]float64(nil), thresholds...)
	sort.Float64s(ts)
	curve := ROCCurve{Detector: det.Name(), Window: det.Window()}
	for _, th := range ts {
		stats, err := AssessMultiAlarms(det, mp, th)
		if err != nil {
			return ROCCurve{}, err
		}
		curve.Points = append(curve.Points, ROCPoint{
			Threshold:      th,
			HitRate:        stats.HitRate(),
			FalseAlarmRate: stats.FalseAlarmRate(),
		})
	}
	return curve, nil
}

// AUC returns the area under the curve's (false-alarm rate, hit rate)
// points, anchored at (0,0) and (1,1), by trapezoidal integration. It is a
// single-number summary of the coverage-versus-false-alarm trade-off the
// paper's Section 7 discusses qualitatively.
func (c ROCCurve) AUC() (float64, error) {
	if len(c.Points) == 0 {
		return 0, fmt.Errorf("eval: AUC of empty curve")
	}
	xs := make([]float64, 0, len(c.Points)+2)
	ys := make([]float64, 0, len(c.Points)+2)
	xs = append(xs, 0)
	ys = append(ys, 0)
	for _, p := range c.Points {
		xs = append(xs, p.FalseAlarmRate)
		ys = append(ys, p.HitRate)
	}
	xs = append(xs, 1)
	ys = append(ys, 1)
	return stats.AUC(xs, ys)
}
