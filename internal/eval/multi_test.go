package eval

import (
	"testing"

	"adiv/internal/inject"
	"adiv/internal/seq"
)

func multiPlacementOf() inject.MultiPlacement {
	return inject.MultiPlacement{
		Stream: make(seq.Stream, 100),
		Events: []inject.Event{{Start: 20, Len: 3}, {Start: 60, Len: 2}},
	}
}

func TestAssessMultiAlarms(t *testing.T) {
	mp := multiPlacementOf()
	det := &fakeDetector{name: "fake", window: 3, extent: 3, trained: true,
		scoreFunc: func(test seq.Stream) []float64 {
			out := make([]float64, len(test)-2)
			out[21] = 1 // inside event 0
			out[5] = 1  // false alarm
			out[90] = 1 // false alarm
			return out
		}}
	stats, err := AssessMultiAlarms(det, mp, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events != 2 || stats.Hits != 1 {
		t.Errorf("hits %d of %d events, want 1 of 2", stats.Hits, stats.Events)
	}
	if stats.FalseAlarms != 2 {
		t.Errorf("false alarms %d, want 2", stats.FalseAlarms)
	}
	if stats.HitRate() != 0.5 {
		t.Errorf("hit rate %v", stats.HitRate())
	}
	// Spans (extent 3): event 0 positions 18-22 (5), event 1 positions
	// 58-61 (4); 98 responses - 9 in-span = 89 outside.
	if stats.Positions != 89 {
		t.Errorf("out-of-span positions %d, want 89", stats.Positions)
	}
	if rate := stats.FalseAlarmRate(); rate != 2.0/89 {
		t.Errorf("false-alarm rate %v", rate)
	}
}

func TestAssessMultiAlarmsValidation(t *testing.T) {
	mp := multiPlacementOf()
	det := &fakeDetector{name: "fake", window: 3, extent: 3, trained: true, scoreFunc: constantScores(0)}
	for _, th := range []float64{0, 1.5} {
		if _, err := AssessMultiAlarms(det, mp, th); err == nil {
			t.Errorf("threshold %v accepted", th)
		}
	}
	untrained := &fakeDetector{name: "fake", window: 3, extent: 3, scoreFunc: constantScores(0)}
	if _, err := AssessMultiAlarms(untrained, mp, 1); err == nil {
		t.Errorf("untrained detector accepted")
	}
}

func TestMultiAlarmStatsEmpty(t *testing.T) {
	var s MultiAlarmStats
	if s.HitRate() != 0 || s.FalseAlarmRate() != 0 {
		t.Errorf("empty stats rates %v, %v", s.HitRate(), s.FalseAlarmRate())
	}
}
