package eval

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"adiv/internal/detector"
	"adiv/internal/inject"
	"adiv/internal/seq"
)

func TestSchedulerDefaultsToNumCPU(t *testing.T) {
	for _, workers := range []int{0, -3} {
		if got := NewScheduler(workers).Workers(); got != runtime.NumCPU() {
			t.Errorf("NewScheduler(%d).Workers() = %d, want %d", workers, got, runtime.NumCPU())
		}
	}
	if got := NewScheduler(5).Workers(); got != 5 {
		t.Errorf("NewScheduler(5).Workers() = %d", got)
	}
}

// TestSchedulerBoundsConcurrency submits far more tasks than slots and
// checks that the observed peak concurrency never exceeds the bound.
func TestSchedulerBoundsConcurrency(t *testing.T) {
	const bound = 3
	sched := NewScheduler(bound)
	var running, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sched.Run(func() {
				n := running.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				runtime.Gosched()
				running.Add(-1)
			})
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > bound {
		t.Errorf("peak concurrency %d exceeded bound %d", p, bound)
	}
	if p := peak.Load(); p < 1 {
		t.Errorf("no task ever ran")
	}
}

// TestBuildMapWorkerCountInvariance pins the grid scheduler's determinism
// contract: the built map is a pure function of (detector family, data) —
// the worker count moves only wall-clock, never a cell.
func TestBuildMapWorkerCountInvariance(t *testing.T) {
	placements := map[int]inject.Placement{
		2: placementOf(60, 30, 2),
		3: placementOf(60, 30, 3),
		5: placementOf(60, 30, 5),
	}
	factory := func(window int) (detector.Detector, error) {
		return &fakeDetector{
			name:   "fake",
			window: window,
			extent: window,
			scoreFunc: func(test seq.Stream) []float64 {
				n := seq.NumWindows(len(test), window)
				out := make([]float64, n)
				// Capable iff the window is at least the anomaly size,
				// mirroring Stide: mark the anomaly-start position with a
				// graded response so Weak/Capable both appear in the map.
				resp := 1.0
				if window < 4 {
					resp = 0.5
				}
				out[30] = resp
				return out
			},
		}, nil
	}

	build := func(opts Options) *Map {
		m, err := BuildMap("fake", factory, make(seq.Stream, 100), placements, 2, 8, opts)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	serial := DefaultOptions()
	serial.Workers = 1
	want := build(serial).Cells()

	wide := DefaultOptions()
	wide.Workers = 8
	shared := DefaultOptions()
	shared.Scheduler = NewScheduler(4)
	for _, opts := range []Options{wide, shared} {
		got := build(opts).Cells()
		if len(got) != len(want) {
			t.Fatalf("cell count %d, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("cell %d = %+v, want %+v", i, got[i], want[i])
			}
		}
	}
}

func TestOptionsRejectNegativeWorkers(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = -1
	if err := opts.Validate(); err == nil {
		t.Error("negative Workers validated")
	}
}
