package eval

import (
	"fmt"

	"adiv/internal/detector"
	"adiv/internal/seq"
	"adiv/internal/stats"
)

// Profile characterizes a detector's response distribution over a stream:
// the raw summary statistics, a fixed-bin histogram, and exact counts of
// the two special values (0 = completely normal, 1 = maximal anomaly) that
// the paper's blind/capable classification keys on. Profiling clean versus
// rare-containing data is how an operator chooses a detection threshold.
type Profile struct {
	// Detector and Window identify the deployment.
	Detector string
	Window   int
	// Summary holds descriptive statistics of the responses.
	Summary stats.Summary
	// Histogram counts responses per equal-width bin over [0,1];
	// Histogram[len-1] includes the value 1.
	Histogram []int
	// AtZero and AtOne count responses exactly at the extremes.
	AtZero, AtOne int
}

// ProfileResponses scores the stream with a trained detector and profiles
// the responses into the given number of bins (at least 2).
func ProfileResponses(det detector.Detector, stream seq.Stream, bins int) (Profile, error) {
	if bins < 2 {
		return Profile{}, fmt.Errorf("eval: profile with %d bins", bins)
	}
	responses, err := det.Score(stream)
	if err != nil {
		return Profile{}, fmt.Errorf("eval: profiling %s(DW=%d): %w", det.Name(), det.Window(), err)
	}
	p := Profile{
		Detector:  det.Name(),
		Window:    det.Window(),
		Summary:   stats.Summarize(responses),
		Histogram: make([]int, bins),
	}
	for _, r := range responses {
		switch {
		case r <= 0:
			p.AtZero++
		case r >= 1:
			p.AtOne++
		}
		idx := int(r * float64(bins))
		if idx < 0 {
			idx = 0
		}
		if idx >= bins {
			idx = bins - 1
		}
		p.Histogram[idx]++
	}
	return p, nil
}

// AlarmFraction returns the fraction of responses at or above the
// threshold, estimated from the histogram's bin boundaries (exact when the
// threshold falls on a boundary).
func (p Profile) AlarmFraction(threshold float64) float64 {
	if p.Summary.N == 0 {
		return 0
	}
	bins := len(p.Histogram)
	start := int(threshold * float64(bins))
	if start < 0 {
		start = 0
	}
	count := 0
	for i := start; i < bins; i++ {
		count += p.Histogram[i]
	}
	return float64(count) / float64(p.Summary.N)
}
