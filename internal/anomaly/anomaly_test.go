package anomaly

import (
	"errors"
	"testing"

	"adiv/internal/alphabet"
	"adiv/internal/gen"
	"adiv/internal/rng"
	"adiv/internal/seq"
)

func mk(vals ...int) seq.Stream {
	s := make(seq.Stream, len(vals))
	for i, v := range vals {
		s[i] = alphabet.Symbol(v)
	}
	return s
}

// handIndex builds a small handcrafted training stream:
// 0 1 0 1 ... with a few "2 3" bursts, so pairs (0,1),(1,0) are common,
// (1,2),(2,3),(3,0) are rare, and e.g. (3,1) is foreign.
func handIndex() *seq.Index {
	var s seq.Stream
	for i := 0; i < 200; i++ {
		s = append(s, 0, 1)
	}
	s = append(s, 2, 3)
	for i := 0; i < 200; i++ {
		s = append(s, 0, 1)
	}
	s = append(s, 2, 3)
	s = append(s, 0, 1)
	return seq.NewIndex(s)
}

func TestVerifyShortCandidate(t *testing.T) {
	r, err := Verify(handIndex(), mk(0), 0.005)
	if err != nil {
		t.Fatal(err)
	}
	if r.Foreign || r.Minimal || r.RareParts || r.IsMFS() {
		t.Errorf("length-1 candidate classified as %+v", r)
	}
}

func TestVerifyNonForeign(t *testing.T) {
	r, err := Verify(handIndex(), mk(0, 1), 0.005)
	if err != nil {
		t.Fatal(err)
	}
	if r.Foreign {
		t.Errorf("occurring pair classified foreign")
	}
	if !r.Minimal {
		t.Errorf("proper subsequences (single symbols) do occur; Minimal should hold")
	}
}

func TestVerifyMinimalForeign(t *testing.T) {
	ix := handIndex()
	// (3,1): both symbols occur, pair never does.
	r, err := Verify(ix, mk(3, 1), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Foreign || !r.Minimal {
		t.Errorf("foreign pair misclassified: %+v", r)
	}
	// Parts are single symbols: 3 occurs twice (rare), 1 is common — the
	// max part frequency governs RareParts.
	if r.RareParts {
		t.Errorf("pair with one common part classified rare-composed")
	}
}

func TestVerifyNonMinimalForeign(t *testing.T) {
	ix := handIndex()
	// (3,1,0): foreign, and its subsequence (3,1) is also foreign → not minimal.
	r, err := Verify(ix, mk(3, 1, 0), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Foreign {
		t.Errorf("(3,1,0) not foreign")
	}
	if r.Minimal {
		t.Errorf("(3,1,0) classified minimal though (3,1) is foreign")
	}
	if r.IsMFS() {
		t.Errorf("non-minimal candidate classified MFS")
	}
}

func TestVerifyRareCompositeMFS(t *testing.T) {
	// 1000 copies of "0 1", plus single occurrences of "2 3 4" and
	// "3 4 5". The candidate "2 3 4 5" is then foreign, minimal (every
	// proper substring occurs inside one of the two bursts), and composed
	// of rare parts.
	var s seq.Stream
	for i := 0; i < 500; i++ {
		s = append(s, 0, 1)
	}
	s = append(s, 2, 3, 4)
	for i := 0; i < 500; i++ {
		s = append(s, 0, 1)
	}
	s = append(s, 3, 4, 5)
	ix := seq.NewIndex(s)

	r, err := Verify(ix, mk(2, 3, 4, 5), 0.005)
	if err != nil {
		t.Fatal(err)
	}
	if !r.IsMFS() {
		t.Errorf("expected a verified MFS, got %+v", r)
	}
	if r.MaxPartFreq <= 0 || r.MaxPartFreq >= 0.005 {
		t.Errorf("MaxPartFreq = %v, want a small positive frequency", r.MaxPartFreq)
	}
}

func TestCanonicalAgainstGeneratedData(t *testing.T) {
	cfg := gen.DefaultConfig()
	cfg.TrainLen = 150_000
	g, err := gen.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ix := seq.NewIndex(g.Training())
	for size := gen.MinAnomalySize; size <= gen.MaxAnomalySize; size++ {
		r, err := Canonical(ix, size, gen.RareCutoff)
		if err != nil {
			t.Errorf("Canonical(size=%d): %v", size, err)
			continue
		}
		if !r.IsMFS() {
			t.Errorf("size %d: report %+v", size, r)
		}
	}
	if _, err := Canonical(ix, 1, gen.RareCutoff); err == nil {
		t.Errorf("Canonical(size=1) succeeded")
	}
}

func TestCanonicalFailsOnUnsupportiveStream(t *testing.T) {
	// A pure-cycle stream has no rare excursions, so the canonical MFS's
	// parts never occur: verification must fail with ErrNotFound.
	ix := seq.NewIndex(gen.PureCycle(5_000))
	_, err := Canonical(ix, 4, gen.RareCutoff)
	if !errors.Is(err, ErrNotFound) {
		t.Errorf("Canonical on pure cycle: error %v, want ErrNotFound", err)
	}
}

func TestSynthesizeFindsMFS(t *testing.T) {
	cfg := gen.DefaultConfig()
	cfg.TrainLen = 150_000
	g, err := gen.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ix := seq.NewIndex(g.Training())
	src := rng.New(77)
	for _, size := range []int{2, 3, 4, 5} {
		r, err := Synthesize(ix, size, gen.AlphabetSize, gen.RareCutoff, src, 0)
		if err != nil {
			t.Errorf("Synthesize(size=%d): %v", size, err)
			continue
		}
		if len(r.Sequence) != size {
			t.Errorf("size %d: got length %d", size, len(r.Sequence))
		}
		if !r.Foreign || !r.Minimal {
			t.Errorf("size %d: synthesized candidate not minimal foreign: %+v", size, r)
		}
		// Independent re-verification.
		minimal, err := ix.IsMinimalForeign(r.Sequence)
		if err != nil || !minimal {
			t.Errorf("size %d: re-verification failed: %v, %v", size, minimal, err)
		}
	}
}

func TestSynthesizeErrors(t *testing.T) {
	ix := handIndex()
	if _, err := Synthesize(ix, 1, 4, 0.05, rng.New(1), 0); err == nil {
		t.Errorf("Synthesize(size=1) succeeded")
	}
	// With a candidate budget of 1 the search usually exhausts; accept
	// either ErrNotFound or success, but never a different error.
	if _, err := Synthesize(ix, 3, 4, 0.05, rng.New(1), 1); err != nil && !errors.Is(err, ErrNotFound) {
		t.Errorf("Synthesize with tiny budget: %v", err)
	}
}

func TestSynthesizeAll(t *testing.T) {
	cfg := gen.DefaultConfig()
	cfg.TrainLen = 150_000
	g, err := gen.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ix := seq.NewIndex(g.Training())
	found, err := SynthesizeAll(ix, 2, 5, gen.AlphabetSize, gen.RareCutoff, rng.New(9), 0)
	if err != nil {
		t.Fatal(err)
	}
	for size, r := range found {
		if len(r.Sequence) != size || !r.Foreign || !r.Minimal {
			t.Errorf("size %d: bad report %+v", size, r)
		}
	}
	if len(found) == 0 {
		t.Errorf("SynthesizeAll found nothing")
	}
}
