// Package anomaly synthesizes and verifies the paper's anomalous event: the
// minimal foreign sequence (MFS, Section 5.1), a sequence that never occurs
// in the training data while every proper contiguous subsequence of it does,
// composed of rare sub-sequences.
//
// Two synthesis paths are provided. Canonical retrieves the MFS family the
// data generator was engineered to support and verifies it against the
// actual training stream — the verification the paper performs after its
// "brute force" generation. Synthesize is the generic brute-force search
// itself (grow a rare sequence until it turns foreign while its proper
// subsequences keep occurring), usable against any stream, including the
// quasi-natural traces of package trace.
package anomaly

import (
	"errors"
	"fmt"

	"adiv/internal/alphabet"
	"adiv/internal/gen"
	"adiv/internal/rng"
	"adiv/internal/seq"
)

// ErrNotFound reports that the brute-force search exhausted its candidates
// without finding a minimal foreign sequence of the requested size.
var ErrNotFound = errors.New("anomaly: no minimal foreign sequence found")

// Report describes how a candidate sequence relates to a training stream.
type Report struct {
	// Sequence is the candidate under examination.
	Sequence seq.Stream
	// Foreign reports that the full sequence never occurs in training.
	Foreign bool
	// Minimal reports that every proper contiguous subsequence occurs.
	Minimal bool
	// RareParts reports that both proper (len-1)-subsequences are rare in
	// training under the cutoff used (the paper composes its MFSs from rare
	// sub-sequences).
	RareParts bool
	// MaxPartFreq is the larger relative frequency of the two proper
	// (len-1)-subsequences.
	MaxPartFreq float64
}

// IsMFS reports whether the candidate satisfies the full definition used in
// the paper: foreign, minimal, and composed of rare sub-sequences.
func (r Report) IsMFS() bool { return r.Foreign && r.Minimal && r.RareParts }

// Verify checks a candidate sequence against the training index and returns
// a Report. rareCutoff is the relative-frequency bound below which a
// sequence counts as rare (the paper uses 0.5%).
//
// Sequences of length < 2 are never minimal foreign; their report has all
// predicates false.
func Verify(ix *seq.Index, candidate seq.Stream, rareCutoff float64) (Report, error) {
	r := Report{Sequence: candidate.Clone()}
	if len(candidate) < 2 {
		return r, nil
	}
	foreign, err := ix.IsForeign(candidate)
	if err != nil {
		return r, fmt.Errorf("anomaly: verify foreignness: %w", err)
	}
	r.Foreign = foreign
	minimal, err := ix.IsMinimalForeign(candidate)
	if err != nil {
		return r, fmt.Errorf("anomaly: verify minimality: %w", err)
	}
	// IsMinimalForeign includes foreignness; split the minimality component
	// out so the report distinguishes "not foreign" from "not minimal".
	if foreign {
		r.Minimal = minimal
	} else {
		occur, perr := ix.ProperSubsequencesOccur(candidate)
		if perr != nil {
			return r, fmt.Errorf("anomaly: verify minimality: %w", perr)
		}
		r.Minimal = occur
	}

	db, err := ix.DB(len(candidate) - 1)
	if err != nil {
		return r, fmt.Errorf("anomaly: verify rarity: %w", err)
	}
	prefix, suffix := candidate[:len(candidate)-1], candidate[1:]
	pf, sf := db.RelFreq(prefix), db.RelFreq(suffix)
	r.MaxPartFreq = pf
	if sf > pf {
		r.MaxPartFreq = sf
	}
	r.RareParts = db.Contains(prefix) && db.Contains(suffix) && r.MaxPartFreq < rareCutoff
	return r, nil
}

// MustBeMFS verifies a candidate and fails unless it satisfies the full
// MFS definition with respect to the indexed training stream.
func MustBeMFS(ix *seq.Index, candidate seq.Stream, rareCutoff float64) (Report, error) {
	r, err := Verify(ix, candidate, rareCutoff)
	if err != nil {
		return Report{}, err
	}
	if !r.IsMFS() {
		return r, fmt.Errorf("anomaly: size-%d candidate is not an MFS of this training stream (foreign=%v minimal=%v rareParts=%v): %w",
			len(candidate), r.Foreign, r.Minimal, r.RareParts, ErrNotFound)
	}
	return r, nil
}

// Canonical returns the verified canonical MFS of the given size for a
// training stream produced by package gen under the paper spec. It fails
// if the stream does not actually support the canonical sequence (for
// example, a training stream too short to have emitted both motifs).
func Canonical(ix *seq.Index, size int, rareCutoff float64) (Report, error) {
	m, err := gen.CanonicalMFS(size)
	if err != nil {
		return Report{}, err
	}
	return MustBeMFS(ix, m, rareCutoff)
}

// Synthesize searches for a minimal foreign sequence of the given size with
// respect to the indexed stream, by the brute-force strategy the paper
// describes: start from rare (size-1)-sequences that occur in the data and
// extend each with every alphabet symbol, keeping extensions that are
// foreign while their other (size-1)-subsequence occurs. The search order is
// randomized by src for variety but is deterministic given the source state.
//
// alphabetSize bounds the extension symbols tried. maxCandidates caps the
// number of (base, symbol) pairs examined; 0 means unlimited.
func Synthesize(ix *seq.Index, size, alphabetSize int, rareCutoff float64, src *rng.Source, maxCandidates int) (Report, error) {
	if size < 2 {
		return Report{}, fmt.Errorf("anomaly: size %d too small for a minimal foreign sequence", size)
	}
	db, err := ix.DB(size - 1)
	if err != nil {
		return Report{}, err
	}
	bases := db.Rare(rareCutoff)
	if len(bases) == 0 {
		// Fall back to all occurring (size-1)-sequences: data without rare
		// content can still harbor foreign extensions, though the resulting
		// sequence will not satisfy the rare-parts requirement.
		bases = db.Common(0)
	}
	src.Shuffle(len(bases), func(i, j int) { bases[i], bases[j] = bases[j], bases[i] })

	tried := 0
	for _, base := range bases {
		perm := src.Perm(alphabetSize)
		for _, s := range perm {
			if maxCandidates > 0 && tried >= maxCandidates {
				return Report{}, ErrNotFound
			}
			tried++
			candidate := append(base.Clone(), alphabet.Symbol(s))
			r, err := Verify(ix, candidate, rareCutoff)
			if err != nil {
				return Report{}, err
			}
			if r.Foreign && r.Minimal {
				return r, nil
			}
		}
	}
	return Report{}, ErrNotFound
}

// SynthesizeAll finds one MFS per size in [minSize, maxSize], preferring
// candidates whose parts are rare. Sizes for which no MFS exists are
// reported in the returned map with a zero-value Report and ok=false via
// absence.
func SynthesizeAll(ix *seq.Index, minSize, maxSize, alphabetSize int, rareCutoff float64, src *rng.Source, maxCandidates int) (map[int]Report, error) {
	out := make(map[int]Report, maxSize-minSize+1)
	for size := minSize; size <= maxSize; size++ {
		r, err := Synthesize(ix, size, alphabetSize, rareCutoff, src, maxCandidates)
		if errors.Is(err, ErrNotFound) {
			continue
		}
		if err != nil {
			return nil, err
		}
		out[size] = r
	}
	return out, nil
}
