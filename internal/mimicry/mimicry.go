// Package mimicry constructs camouflaged sequences: streams that are
// invisible to window-matching anomaly detectors up to a chosen window
// length, because every window of that length occurs in the training data.
//
// The paper's background section leans on exactly this possibility:
// "attacks may manifest, or even be manipulated to manifest, as normal
// behavior or as anomalous events that are invisible to a given
// anomaly-based intrusion detection system" (Section 2, after Tan,
// Killourhy & Maxion 2002 and Wagner & Soto 2002). The construction here is
// the classic one — a walk on the training stream's window-overlap graph:
// each step appends a symbol such that the trailing window of the target
// width still occurs in training. Any detector that only checks width-w
// windows (Stide at DW <= w; the Markov detector's (DW+1)-grams at
// DW < w) sees nothing but normal sequences. Detectors looking through
// *longer* windows can still catch the seams where the walk jumps between
// training contexts — the window-size lesson from the other side.
package mimicry

import (
	"errors"
	"fmt"

	"adiv/internal/alphabet"
	"adiv/internal/rng"
	"adiv/internal/seq"
)

// ErrDeadEnd reports that every attempted walk ran into a window with no
// continuation before reaching the requested length.
var ErrDeadEnd = errors.New("mimicry: walk dead-ended; training data too sparse at this width")

// Camouflage generates a sequence of the given length whose every
// width-window occurs in the training stream indexed by ix. The walk is
// randomized by src but deterministic given the source state; attempts
// bounds the number of restarts after dead ends (0 means a generous
// default).
func Camouflage(ix *seq.Index, width, length int, src *rng.Source, attempts int) (seq.Stream, error) {
	if width < 2 {
		return nil, fmt.Errorf("mimicry: width %d too small", width)
	}
	if length < width {
		return nil, fmt.Errorf("mimicry: length %d shorter than width %d", length, width)
	}
	if attempts <= 0 {
		attempts = 64
	}
	db, err := ix.DB(width)
	if err != nil {
		return nil, err
	}
	if db.Distinct() == 0 {
		return nil, fmt.Errorf("mimicry: training stream holds no width-%d window", width)
	}

	// Adjacency: (width-1)-suffix -> possible next symbols, from the
	// distinct training windows.
	starts := db.Common(0) // all distinct windows, deterministic order
	nextSyms := make(map[string][]alphabet.Symbol)
	for _, w := range starts {
		b := w.Bytes()
		prefix := string(b[:width-1])
		nextSyms[prefix] = append(nextSyms[prefix], alphabet.Symbol(b[width-1]))
	}

	for attempt := 0; attempt < attempts; attempt++ {
		out := append(seq.Stream(nil), starts[src.Intn(len(starts))]...)
		for len(out) < length {
			suffix := string(out[len(out)-width+1:].Bytes())
			candidates := nextSyms[suffix]
			if len(candidates) == 0 {
				out = nil
				break
			}
			out = append(out, candidates[src.Intn(len(candidates))])
		}
		if out != nil {
			return out, nil
		}
	}
	return nil, ErrDeadEnd
}

// Invisible reports whether every width-window of s occurs in the indexed
// training stream — the property Camouflage guarantees at its own width.
func Invisible(ix *seq.Index, s seq.Stream, width int) (bool, error) {
	if width < 1 || width > len(s) {
		return false, fmt.Errorf("mimicry: width %d outside [1,%d]", width, len(s))
	}
	db, err := ix.DB(width)
	if err != nil {
		return false, err
	}
	for i := 0; i+width <= len(s); i++ {
		if !db.Contains(s[i : i+width]) {
			return false, nil
		}
	}
	return true, nil
}

// DetectionWidth returns the smallest window width in [minWidth, maxWidth]
// at which s stops being invisible (some window of s is foreign to
// training), or 0 if s stays invisible across the whole range. It charts
// how far a camouflaged attack survives as the defender widens the
// detector window.
func DetectionWidth(ix *seq.Index, s seq.Stream, minWidth, maxWidth int) (int, error) {
	if minWidth < 1 || maxWidth < minWidth {
		return 0, fmt.Errorf("mimicry: invalid width range [%d,%d]", minWidth, maxWidth)
	}
	for width := minWidth; width <= maxWidth && width <= len(s); width++ {
		inv, err := Invisible(ix, s, width)
		if err != nil {
			return 0, err
		}
		if !inv {
			return width, nil
		}
	}
	return 0, nil
}
