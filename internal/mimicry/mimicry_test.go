package mimicry

import (
	"errors"
	"testing"

	"adiv/internal/gen"
	"adiv/internal/rng"
	"adiv/internal/seq"
)

// sharedIx caches one generated training index for the package.
var sharedIx = func() func(t *testing.T) *seq.Index {
	var ix *seq.Index
	return func(t *testing.T) *seq.Index {
		t.Helper()
		if ix == nil {
			cfg := gen.DefaultConfig()
			cfg.TrainLen = 120_000
			g, err := gen.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ix = seq.NewIndex(g.Training())
		}
		return ix
	}
}()

func TestCamouflageValidation(t *testing.T) {
	ix := sharedIx(t)
	src := rng.New(1)
	if _, err := Camouflage(ix, 1, 10, src, 0); err == nil {
		t.Errorf("width 1 accepted")
	}
	if _, err := Camouflage(ix, 6, 3, src, 0); err == nil {
		t.Errorf("length shorter than width accepted")
	}
}

func TestCamouflageInvisibleAtItsWidth(t *testing.T) {
	ix := sharedIx(t)
	for _, width := range []int{3, 6, 8} {
		s, err := Camouflage(ix, width, 40, rng.New(uint64(width)), 0)
		if err != nil {
			t.Fatalf("Camouflage(width=%d): %v", width, err)
		}
		if len(s) != 40 {
			t.Errorf("width %d: length %d", width, len(s))
		}
		inv, err := Invisible(ix, s, width)
		if err != nil {
			t.Fatal(err)
		}
		if !inv {
			t.Errorf("width %d: camouflaged sequence not invisible at its own width", width)
		}
		// Invisibility at width w implies invisibility at every width
		// below (sub-windows of occurring windows occur).
		for below := 2; below < width; below++ {
			inv, err := Invisible(ix, s, below)
			if err != nil {
				t.Fatal(err)
			}
			if !inv {
				t.Errorf("width %d: not invisible at smaller width %d", width, below)
			}
		}
	}
}

func TestCamouflageDeterministic(t *testing.T) {
	ix := sharedIx(t)
	a, err := Camouflage(ix, 6, 30, rng.New(9), 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Camouflage(ix, 6, 30, rng.New(9), 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(a.Bytes()) != string(b.Bytes()) {
		t.Errorf("same seed produced different camouflage")
	}
}

func TestDetectionWidth(t *testing.T) {
	ix := sharedIx(t)
	// A camouflaged walk at width 4 that deliberately crosses contexts:
	// search seeds until one produces a walk that becomes visible at some
	// width <= 12 (virtually all do; pin the first for determinism).
	found := false
	for seedIdx := uint64(0); seedIdx < 20; seedIdx++ {
		s, err := Camouflage(ix, 4, 60, rng.New(100+seedIdx), 0)
		if err != nil {
			t.Fatal(err)
		}
		w, err := DetectionWidth(ix, s, 2, 12)
		if err != nil {
			t.Fatal(err)
		}
		if w == 0 {
			continue // this walk happens to exist verbatim in training
		}
		found = true
		if w <= 4 {
			t.Errorf("seed %d: detection width %d within the camouflage width", seedIdx, w)
		}
		break
	}
	if !found {
		t.Errorf("no seed in 20 produced a walk visible by width 12")
	}
}

func TestDetectionWidthValidation(t *testing.T) {
	ix := sharedIx(t)
	if _, err := DetectionWidth(ix, gen.PureCycle(20), 0, 5); err == nil {
		t.Errorf("zero minimum width accepted")
	}
	// The pure cycle is training data itself: invisible at every width.
	w, err := DetectionWidth(ix, gen.PureCycle(30), 2, 15)
	if err != nil {
		t.Fatal(err)
	}
	if w != 0 {
		t.Errorf("pure cycle reported visible at width %d", w)
	}
}

func TestInvisibleValidation(t *testing.T) {
	ix := sharedIx(t)
	if _, err := Invisible(ix, gen.PureCycle(5), 9); err == nil {
		t.Errorf("width beyond sequence accepted")
	}
}

func TestCamouflageDeadEnd(t *testing.T) {
	// A training stream that is one straight line (no repetition): walks
	// hit the end and cannot continue past it at the requested length.
	line := seq.Stream{0, 1, 2, 3, 4, 5, 6, 7}
	ix := seq.NewIndex(line)
	_, err := Camouflage(ix, 3, 50, rng.New(1), 4)
	if !errors.Is(err, ErrDeadEnd) {
		t.Errorf("error %v, want ErrDeadEnd", err)
	}
}
