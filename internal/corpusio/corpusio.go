// Package corpusio persists evaluation data suites to disk and loads them
// back: symbol streams as whitespace-separated decimal text (one stream per
// file, diff-friendly and language-neutral) and a JSON manifest tying the
// suite together (configuration, anomaly inventory, injection positions).
package corpusio

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"adiv/internal/alphabet"
	"adiv/internal/core"
	"adiv/internal/inject"
	"adiv/internal/seq"
)

// Manifest describes a persisted corpus.
type Manifest struct {
	// Config is the configuration the corpus was built with.
	Config core.Config `json:"config"`
	// TrainingFile and BackgroundFile name the stream files, relative to
	// the manifest's directory.
	TrainingFile   string `json:"trainingFile"`
	BackgroundFile string `json:"backgroundFile"`
	// Tests holds one entry per anomaly size.
	Tests []ManifestTest `json:"tests"`
}

// ManifestTest describes one persisted test stream.
type ManifestTest struct {
	// AnomalySize is the injected MFS length.
	AnomalySize int `json:"anomalySize"`
	// File names the stream file, relative to the manifest's directory.
	File string `json:"file"`
	// Start is the index of the first anomaly element in the stream.
	Start int `json:"start"`
	// Anomaly is the injected sequence, space-separated.
	Anomaly string `json:"anomaly"`
}

// WriteStream writes a stream as whitespace-separated decimals, 20 symbols
// per line.
func WriteStream(w io.Writer, s seq.Stream) error {
	bw := bufio.NewWriter(w)
	for i, sym := range s {
		sep := byte(' ')
		if i%20 == 19 || i == len(s)-1 {
			sep = '\n'
		}
		if _, err := bw.WriteString(strconv.Itoa(int(sym))); err != nil {
			return err
		}
		if err := bw.WriteByte(sep); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadStream parses a whitespace-separated decimal stream.
func ReadStream(r io.Reader) (seq.Stream, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	sc.Split(bufio.ScanWords)
	var out seq.Stream
	for sc.Scan() {
		v, err := strconv.Atoi(sc.Text())
		if err != nil {
			return nil, fmt.Errorf("corpusio: parsing symbol %q: %w", sc.Text(), err)
		}
		if v < 0 || v >= alphabet.MaxSize {
			return nil, fmt.Errorf("corpusio: symbol %d outside [0,%d)", v, alphabet.MaxSize)
		}
		out = append(out, alphabet.Symbol(v))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteStreamFile writes a stream to path.
func WriteStreamFile(path string, s seq.Stream) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return WriteStream(f, s)
}

// ReadStreamFile reads a stream from path.
func ReadStreamFile(path string) (seq.Stream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadStream(f)
}

// Save persists a corpus under dir, creating it if necessary, and returns
// the manifest path.
func Save(c *core.Corpus, dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	man := Manifest{
		Config:         c.Config,
		TrainingFile:   "training.txt",
		BackgroundFile: "background.txt",
	}
	if err := WriteStreamFile(filepath.Join(dir, man.TrainingFile), c.Training); err != nil {
		return "", fmt.Errorf("corpusio: writing training stream: %w", err)
	}
	if err := WriteStreamFile(filepath.Join(dir, man.BackgroundFile), c.Background); err != nil {
		return "", fmt.Errorf("corpusio: writing background stream: %w", err)
	}
	a := alphabet.MustNew(alphabet.MaxSize)
	for _, size := range c.Sizes() {
		p := c.Placements[size]
		name := fmt.Sprintf("test_as%d.txt", size)
		if err := WriteStreamFile(filepath.Join(dir, name), p.Stream); err != nil {
			return "", fmt.Errorf("corpusio: writing test stream (size %d): %w", size, err)
		}
		man.Tests = append(man.Tests, ManifestTest{
			AnomalySize: size,
			File:        name,
			Start:       p.Start,
			Anomaly:     a.Format(p.Anomaly()),
		})
	}
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return "", err
	}
	manPath := filepath.Join(dir, "manifest.json")
	if err := os.WriteFile(manPath, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return manPath, nil
}

// Load restores a corpus from a directory written by Save. The training
// index is rebuilt lazily; anomaly verification reports are not persisted
// and are re-derived from the loaded streams.
func Load(dir string) (*core.Corpus, error) {
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, err
	}
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("corpusio: parsing manifest: %w", err)
	}
	training, err := ReadStreamFile(filepath.Join(dir, man.TrainingFile))
	if err != nil {
		return nil, fmt.Errorf("corpusio: reading training stream: %w", err)
	}
	background, err := ReadStreamFile(filepath.Join(dir, man.BackgroundFile))
	if err != nil {
		return nil, fmt.Errorf("corpusio: reading background stream: %w", err)
	}
	c := &core.Corpus{
		Config:     man.Config,
		Training:   training,
		TrainIndex: seq.NewIndex(training),
		Background: background,
		Placements: make(map[int]inject.Placement, len(man.Tests)),
		Anomalies:  nil,
	}
	for _, t := range man.Tests {
		stream, err := ReadStreamFile(filepath.Join(dir, t.File))
		if err != nil {
			return nil, fmt.Errorf("corpusio: reading test stream %q: %w", t.File, err)
		}
		if t.Start < 0 || t.Start+t.AnomalySize > len(stream) {
			return nil, fmt.Errorf("corpusio: test %q: anomaly [%d,%d) outside stream of length %d",
				t.File, t.Start, t.Start+t.AnomalySize, len(stream))
		}
		c.Placements[t.AnomalySize] = inject.Placement{
			Stream:     stream,
			Start:      t.Start,
			AnomalyLen: t.AnomalySize,
		}
	}
	return c, nil
}
