package corpusio

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"adiv/internal/core"
)

// writeManifest persists a manifest literal for corruption tests.
func writeManifest(t *testing.T, dir string, man Manifest) {
	t.Helper()
	data, err := json.Marshal(man)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func validManifest() Manifest {
	return Manifest{
		Config:         core.QuickConfig(),
		TrainingFile:   "training.txt",
		BackgroundFile: "background.txt",
		Tests: []ManifestTest{
			{AnomalySize: 3, File: "test_as3.txt", Start: 4, Anomaly: "7 0 7"},
		},
	}
}

func TestLoadMissingTrainingFile(t *testing.T) {
	dir := t.TempDir()
	writeManifest(t, dir, validManifest())
	if _, err := Load(dir); err == nil {
		t.Errorf("Load without training file succeeded")
	}
}

func TestLoadMissingBackground(t *testing.T) {
	dir := t.TempDir()
	writeManifest(t, dir, validManifest())
	if err := os.WriteFile(filepath.Join(dir, "training.txt"), []byte("1 2 3 4 5 6"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Errorf("Load without background file succeeded")
	}
}

func TestLoadMissingTestStream(t *testing.T) {
	dir := t.TempDir()
	writeManifest(t, dir, validManifest())
	for _, f := range []string{"training.txt", "background.txt"} {
		if err := os.WriteFile(filepath.Join(dir, f), []byte("1 2 3 4 5 6"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Load(dir); err == nil {
		t.Errorf("Load without test stream succeeded")
	}
}

func TestLoadOutOfRangeAnomaly(t *testing.T) {
	dir := t.TempDir()
	man := validManifest()
	man.Tests[0].Start = 100 // beyond the tiny stream written below
	writeManifest(t, dir, man)
	for _, f := range []string{"training.txt", "background.txt", "test_as3.txt"} {
		if err := os.WriteFile(filepath.Join(dir, f), []byte("1 2 3 4 5 6"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Load(dir); err == nil {
		t.Errorf("Load with out-of-range anomaly position succeeded")
	}
}

func TestSaveToUnwritableDir(t *testing.T) {
	cfg := core.QuickConfig()
	cfg.Gen.TrainLen = 60_000
	cfg.Gen.BackgroundLen = 500
	corpus, err := core.BuildCorpus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A file where the directory should be forces MkdirAll to fail.
	base := t.TempDir()
	blocker := filepath.Join(base, "blocked")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Save(corpus, filepath.Join(blocker, "corpus")); err == nil {
		t.Errorf("Save into a path through a file succeeded")
	}
}
