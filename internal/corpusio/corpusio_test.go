package corpusio

import (
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"adiv/internal/core"
	"adiv/internal/seq"
)

func TestStreamRoundTrip(t *testing.T) {
	check := func(raw []byte) bool {
		s := seq.FromBytes(raw)
		var sb strings.Builder
		if err := WriteStream(&sb, s); err != nil {
			return false
		}
		back, err := ReadStream(strings.NewReader(sb.String()))
		if err != nil || len(back) != len(s) {
			return false
		}
		for i := range back {
			if back[i] != s[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestReadStreamRejectsBadInput(t *testing.T) {
	for _, bad := range []string{"1 2 x", "1 -3", "300"} {
		if _, err := ReadStream(strings.NewReader(bad)); err == nil {
			t.Errorf("ReadStream(%q) succeeded", bad)
		}
	}
}

func TestReadStreamEmpty(t *testing.T) {
	s, err := ReadStream(strings.NewReader(""))
	if err != nil || len(s) != 0 {
		t.Errorf("ReadStream(\"\") = %v, %v", s, err)
	}
}

func TestStreamFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.txt")
	s := seq.Stream{1, 2, 3, 4, 5, 6, 7, 0}
	if err := WriteStreamFile(path, s); err != nil {
		t.Fatal(err)
	}
	back, err := ReadStreamFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(s) {
		t.Fatalf("length %d, want %d", len(back), len(s))
	}
	for i := range s {
		if back[i] != s[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestSaveLoadCorpus(t *testing.T) {
	cfg := core.QuickConfig()
	cfg.Gen.TrainLen = 60_000
	cfg.Gen.BackgroundLen = 500
	corpus, err := core.BuildCorpus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	manPath, err := Save(corpus, dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(manPath) != dir {
		t.Errorf("manifest written to %q", manPath)
	}

	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Training) != len(corpus.Training) {
		t.Fatalf("training length %d, want %d", len(loaded.Training), len(corpus.Training))
	}
	for i := range corpus.Training {
		if loaded.Training[i] != corpus.Training[i] {
			t.Fatalf("training mismatch at %d", i)
		}
	}
	if len(loaded.Placements) != len(corpus.Placements) {
		t.Fatalf("placements %d, want %d", len(loaded.Placements), len(corpus.Placements))
	}
	for size, p := range corpus.Placements {
		lp, ok := loaded.Placements[size]
		if !ok {
			t.Errorf("size %d missing after load", size)
			continue
		}
		if lp.Start != p.Start || lp.AnomalyLen != p.AnomalyLen || len(lp.Stream) != len(p.Stream) {
			t.Errorf("size %d placement %+v vs %+v", size, lp, p)
		}
		got, want := lp.Anomaly(), p.Anomaly()
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("size %d anomaly mismatch", size)
				break
			}
		}
	}
	// The loaded index must serve queries identically.
	minimal, err := loaded.TrainIndex.IsMinimalForeign(corpus.Placements[4].Anomaly())
	if err != nil || !minimal {
		t.Errorf("loaded index verification failed: %v, %v", minimal, err)
	}
}

func TestLoadMissingDir(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nonexistent")); err == nil {
		t.Errorf("Load of missing directory succeeded")
	}
}

func TestLoadCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	if err := WriteStreamFile(filepath.Join(dir, "manifest.json"), seq.Stream{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Errorf("Load with corrupt manifest succeeded")
	}
}
