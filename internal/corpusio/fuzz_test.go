package corpusio

import (
	"strings"
	"testing"
)

// FuzzReadStream guards the parser against arbitrary input: it must never
// panic, and whatever it accepts must round-trip through WriteStream.
func FuzzReadStream(f *testing.F) {
	f.Add("1 2 3 4 5 6 7 0")
	f.Add("")
	f.Add("255\n0 17")
	f.Add("1 2 x")
	f.Add("-4")
	f.Add("999999999999999999999")
	f.Fuzz(func(t *testing.T, input string) {
		s, err := ReadStream(strings.NewReader(input))
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := WriteStream(&sb, s); err != nil {
			t.Fatalf("WriteStream of accepted stream: %v", err)
		}
		back, err := ReadStream(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("re-parsing own output: %v", err)
		}
		if len(back) != len(s) {
			t.Fatalf("round trip changed length: %d vs %d", len(back), len(s))
		}
		for i := range s {
			if back[i] != s[i] {
				t.Fatalf("round trip changed element %d", i)
			}
		}
	})
}
