package ensemble

import (
	"strings"
	"testing"

	"adiv/internal/eval"
)

func TestRelate(t *testing.T) {
	stideLike := mkMap(t, "stide", [][2]int{{2, 2}, {2, 3}, {3, 3}})
	markovLike := mkMap(t, "markov", [][2]int{{2, 2}, {2, 3}, {3, 2}, {3, 3}})
	lbLike := mkMap(t, "lb", nil)
	other := mkMap(t, "other", [][2]int{{2, 2}, {4, 4}})

	tests := []struct {
		name string
		a, b *eval.Map
		want Relation
	}{
		{"self", stideLike, stideLike, Equal},
		{"stide subset of markov", stideLike, markovLike, SubsetOf},
		{"markov superset of stide", markovLike, stideLike, SupersetOf},
		{"blind vs anything", lbLike, stideLike, Disjoint},
		{"anything vs blind", stideLike, lbLike, Disjoint},
		{"blind vs blind", lbLike, lbLike, Equal},
		{"partial overlap", stideLike, other, Overlapping},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Relate(tt.a, tt.b); got != tt.want {
				t.Errorf("Relate(%s,%s) = %v, want %v", tt.a.Detector, tt.b.Detector, got, tt.want)
			}
		})
	}
}

func TestRelationString(t *testing.T) {
	for r, want := range map[Relation]string{
		Equal: "equal", SubsetOf: "subset", SupersetOf: "superset",
		Overlapping: "overlapping", Disjoint: "disjoint", Relation(42): "relation(42)",
	} {
		if got := r.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", r, got, want)
		}
	}
}

func TestWriteRelationMatrix(t *testing.T) {
	a := mkMap(t, "stide", [][2]int{{2, 2}})
	b := mkMap(t, "markov", [][2]int{{2, 2}, {3, 3}})
	var sb strings.Builder
	if err := WriteRelationMatrix(&sb, []*eval.Map{a, b}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"stide", "markov", "subset", "superset"} {
		if !strings.Contains(out, want) {
			t.Errorf("matrix missing %q:\n%s", want, out)
		}
	}
}
